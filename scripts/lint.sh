#!/usr/bin/env bash
# Repo lint: invariant audit (always) + clang-tidy (when installed).
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir defaults to $MIMIR_BUILD_DIR, then ./build. clang-tidy
#   needs the compile database (CMAKE_EXPORT_COMPILE_COMMANDS is on by
#   default in the top-level CMakeLists).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${MIMIR_BUILD_DIR:-${repo_root}/build}}"

python3 "${repo_root}/scripts/check_headers.py"

# KV payloads are binary-safe byte ranges, not C strings: the single
# sanctioned strlen lives in the kString decode path in kv.hpp, which is
# guarded by the embedded-NUL check in field_size(). Any other
# strlen/strcpy on the core KV paths treats payload bytes as
# NUL-terminated and silently truncates binary data.
kv_cstring_hits="$(grep -rnE '\bstr(len|cpy)\s*\(' "${repo_root}/src/core" \
  --include='*.cpp' --include='*.hpp' \
  | grep -v 'include/mimir/kv.hpp' || true)"
if [ -n "${kv_cstring_hits}" ]; then
  echo "lint: strlen/strcpy on KV payload paths (use sized byte ranges):" >&2
  echo "${kv_cstring_hits}" >&2
  exit 1
fi
if ! grep -q 'embedded NUL' "${repo_root}/src/core/include/mimir/kv.hpp"; then
  echo "lint: kv.hpp lost the embedded-NUL guard that makes its strlen" \
       "decode sound" >&2
  exit 1
fi

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint: clang-tidy not installed; skipping static analysis" >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint: no compile_commands.json in ${build_dir};" \
       "configure with cmake first" >&2
  exit 1
fi

# Library and bench sources; tests lean on gtest macros that trip
# readability checks without adding signal.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/bench" \
  -name '*.cpp' | sort)

clang-tidy -p "${build_dir}" --quiet "${sources[@]}"
echo "lint: clang-tidy clean"
