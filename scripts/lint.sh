#!/usr/bin/env bash
# Repo lint: invariant audit (always) + clang-tidy (when installed).
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir defaults to $MIMIR_BUILD_DIR, then ./build. clang-tidy
#   needs the compile database (CMAKE_EXPORT_COMPILE_COMMANDS is on by
#   default in the top-level CMakeLists).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${MIMIR_BUILD_DIR:-${repo_root}/build}}"

python3 "${repo_root}/scripts/check_headers.py"

# By-reference lambda captures flowing into rank bodies / sched callback
# slots (see scripts/lint_capture.py; suppress with `// mimir: shared-ok`).
python3 "${repo_root}/scripts/lint_capture.py" \
  "${repo_root}/examples" "${repo_root}/src/apps"

# KV payloads are binary-safe byte ranges, not C strings: the single
# sanctioned strlen lives in the kString decode path in kv.hpp, which is
# guarded by the embedded-NUL check in field_size(). Any other
# strlen/strcpy on the core KV paths treats payload bytes as
# NUL-terminated and silently truncates binary data.
kv_cstring_hits="$(grep -rnE '\bstr(len|cpy)\s*\(' "${repo_root}/src/core" \
  --include='*.cpp' --include='*.hpp' \
  | grep -v 'include/mimir/kv.hpp' || true)"
if [ -n "${kv_cstring_hits}" ]; then
  echo "lint: strlen/strcpy on KV payload paths (use sized byte ranges):" >&2
  echo "${kv_cstring_hits}" >&2
  exit 1
fi
if ! grep -q 'embedded NUL' "${repo_root}/src/core/include/mimir/kv.hpp"; then
  echo "lint: kv.hpp lost the embedded-NUL guard that makes its strlen" \
       "decode sound" >&2
  exit 1
fi

# clang-tidy is required in CI (a missing tool must not silently pass a
# PR) but optional on developer machines. Pin a minimum version: older
# releases miss checks in .clang-tidy and report false positives.
min_clang_tidy_major=14
in_ci() { [ "${CI:-}" = "true" ] || [ -n "${GITHUB_ACTIONS:-}" ]; }

if ! command -v clang-tidy > /dev/null 2>&1; then
  if in_ci; then
    echo "lint: clang-tidy not installed but this is a CI run;" \
         "install clang-tidy >= ${min_clang_tidy_major} (the CI image" \
         "must not silently skip static analysis)" >&2
    exit 1
  fi
  echo "lint: SKIP clang-tidy (not installed locally; invariant checks" \
       "above still ran — CI runs the full static analysis)" >&2
  exit 0
fi

tidy_version="$(clang-tidy --version \
  | sed -nE 's/.*version ([0-9]+)\..*/\1/p' | head -n1)"
if [ -z "${tidy_version}" ] || \
   [ "${tidy_version}" -lt "${min_clang_tidy_major}" ]; then
  if in_ci; then
    echo "lint: clang-tidy ${tidy_version:-unknown} is older than the" \
         "required ${min_clang_tidy_major}; upgrade the CI image" >&2
    exit 1
  fi
  echo "lint: SKIP clang-tidy (version ${tidy_version:-unknown} <" \
       "${min_clang_tidy_major}; invariant checks above still ran)" >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint: no compile_commands.json in ${build_dir};" \
       "configure with cmake first" >&2
  exit 1
fi

# Library and bench sources; tests lean on gtest macros that trip
# readability checks without adding signal.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/bench" \
  -name '*.cpp' | sort)

clang-tidy -p "${build_dir}" --quiet "${sources[@]}"
echo "lint: clang-tidy clean"
