#!/usr/bin/env bash
# Repo lint: invariant audit (always) + clang-tidy (when installed).
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir defaults to $MIMIR_BUILD_DIR, then ./build. clang-tidy
#   needs the compile database (CMAKE_EXPORT_COMPILE_COMMANDS is on by
#   default in the top-level CMakeLists).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${MIMIR_BUILD_DIR:-${repo_root}/build}}"

python3 "${repo_root}/scripts/check_headers.py"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint: clang-tidy not installed; skipping static analysis" >&2
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "lint: no compile_commands.json in ${build_dir};" \
       "configure with cmake first" >&2
  exit 1
fi

# Library and bench sources; tests lean on gtest macros that trip
# readability checks without adding signal.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/bench" \
  -name '*.cpp' | sort)

clang-tidy -p "${build_dir}" --quiet "${sources[@]}"
echo "lint: clang-tidy clean"
