#!/usr/bin/env python3
"""Compare two BENCH_<figure>.json documents for performance regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [options]

Points are matched by their (app, x, series) sweep coordinates. For every
matched point the tool compares:

  * sim_time       (relative threshold, --time-pct)
  * node_peak      (relative threshold, --mem-pct)
  * rank_peak      (relative threshold, --mem-pct): the worst single
    rank's memory high-water; only present when the point carries a
    stats profile. Baselines written before the metric existed simply
    lack the field — the diff reports "n/a" and moves on.
  * shuffle_bytes  (relative threshold, --shuffle-pct)
  * wait fraction  (absolute threshold, --wait-abs): the run's total
    collective wait divided by nranks * sim_time, i.e. the mean share of
    rank time spent blocked in collectives. Only computed when both
    documents carry the schema-2 "wait" stats section.
  * imbalance_ratio (absolute threshold, --imbalance-abs): max over mean
    of per-rank received shuffle bytes — the metric mimir.balance exists
    to push down. Compared only when both documents carry it.
  * io_wait_fraction (absolute threshold, --io-wait-abs): the run's
    total exposed PFS stall divided by nranks * sim_time — the share of
    rank time spent blocked on the filesystem. An increase beyond the
    threshold is a regression.
  * io_hidden_seconds (relative threshold, --io-hidden-pct): PFS cost
    the async I/O pipeline covered with compute. Unlike every other
    metric, a *decrease* is the regression — less overlap means the
    pipeline stopped hiding I/O. Baselines written before the "io"
    stats section existed simply lack it: the diff reports "n/a" for
    both io metrics and never fails on them.

A point whose status degrades (ok/spill -> oom/err) is always a
regression; a baseline point missing from the candidate is too. New
points in the candidate are reported but never fail the diff. A metric
that is zero or absent in the baseline has no meaningful relative
change: it is reported as "n/a" and never counts as a regression (the
presence checks above still guard the point itself).

--require NAME=VALUE (repeatable) asserts a flag in the candidate's
top-level "flags" object — e.g. `--require race_checked=false` lets a
perf-smoke baseline refuse numbers collected with the mimir-race
analyzer on (the accounting adds host-side work, and a perf baseline
must describe the configuration it claims to). Values compare as
strings after lowercasing, so booleans are written true/false.

Exit codes: 0 = no regression, 1 = regression found, 2 = usage error.
Simulated times and shuffle volume are deterministic, so those compare
exactly; node peaks of workloads that run rank groups concurrently
depend on real thread interleaving, which is what the memory threshold
absorbs.
"""

import argparse
import json
import sys

RUNNABLE = {"ok", "spill"}


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)
    if "points" not in doc:
        print(f"bench_diff: {path} has no points array", file=sys.stderr)
        raise SystemExit(2)
    return doc


def point_key(point):
    return (point.get("app", ""), point.get("x", ""), point.get("series", ""))


def wait_fraction(point):
    """Mean share of rank time spent waiting, or None when unavailable."""
    stats = point.get("stats", {})
    wait = stats.get("wait")
    if wait is None:
        return None
    sim_time = point.get("sim_time", 0.0)
    nranks = len(wait.get("per_rank", []))
    if sim_time <= 0.0 or nranks == 0:
        return None
    return wait.get("total_seconds", 0.0) / (nranks * sim_time)


def io_stats(point):
    """The point's (wait_fraction, hidden_seconds) I/O attribution, or
    (None, None) when the document predates the "io" stats section."""
    stats = point.get("stats", {})
    io = stats.get("io")
    if io is None:
        return None, None
    hidden = io.get("hidden_seconds", 0.0)
    sim_time = point.get("sim_time", 0.0)
    nranks = len(io.get("per_rank_wait", []))
    if sim_time <= 0.0 or nranks == 0:
        return None, hidden
    return io.get("wait_seconds", 0.0) / (nranks * sim_time), hidden


def rel_change(base, cand):
    if base == 0:
        return 0.0 if cand == 0 else float("inf")
    return (cand - base) / base


def fmt_pct(x):
    if x == float("inf"):
        return "+inf"
    return f"{x * 100:+.2f}%"


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="bench_diff.py",
        description="Diff two BENCH_*.json files for regressions.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--time-pct", type=float, default=5.0,
                        help="allowed sim_time increase, percent (default 5)")
    parser.add_argument("--mem-pct", type=float, default=5.0,
                        help="allowed node_peak increase, percent (default 5)")
    parser.add_argument("--shuffle-pct", type=float, default=5.0,
                        help="allowed shuffle_bytes increase, percent "
                             "(default 5)")
    parser.add_argument("--wait-abs", type=float, default=0.05,
                        help="allowed wait-fraction increase, absolute "
                             "(default 0.05)")
    parser.add_argument("--imbalance-abs", type=float, default=0.5,
                        help="allowed imbalance_ratio increase, absolute "
                             "(default 0.5)")
    parser.add_argument("--io-wait-abs", type=float, default=0.05,
                        help="allowed io-wait-fraction increase, absolute "
                             "(default 0.05)")
    parser.add_argument("--io-hidden-pct", type=float, default=25.0,
                        help="allowed io_hidden_seconds DECREASE, percent "
                             "(default 25)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="assert candidate flags[NAME] == VALUE "
                             "(repeatable), e.g. race_checked=false")
    args = parser.parse_args(argv)
    requirements = []
    for spec in args.require:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            parser.error(f"--require needs NAME=VALUE, got {spec!r}")
        requirements.append((name, value))
    for name in ("time_pct", "mem_pct", "shuffle_pct", "wait_abs",
                 "imbalance_abs", "io_wait_abs", "io_hidden_pct"):
        if getattr(args, name) < 0:
            parser.error(f"--{name.replace('_', '-')} must be >= 0")

    base_doc = load(args.baseline)
    cand_doc = load(args.candidate)

    flag_failures = []
    cand_flags = cand_doc.get("flags", {})
    for name, want in requirements:
        if name not in cand_flags:
            flag_failures.append(
                f"required flag {name!r} missing from candidate "
                f"(flags present: {sorted(cand_flags) or 'none'})")
            continue
        got = json.dumps(cand_flags[name]) \
            if not isinstance(cand_flags[name], str) else cand_flags[name]
        if got.lower() != want.lower():
            flag_failures.append(
                f"flag {name!r} is {got}, required {want}")
    if flag_failures:
        for failure in flag_failures:
            print(f"bench_diff: {failure}", file=sys.stderr)
        print("bench_diff: FAIL")
        return 1

    base_points = {point_key(p): p for p in base_doc["points"]}
    cand_points = {point_key(p): p for p in cand_doc["points"]}

    rows = []
    regressions = []

    def note(key, metric, text, regressed):
        rows.append((" / ".join(k for k in key if k) or "(unlabelled)",
                     metric, text, regressed))
        if regressed:
            regressions.append(f"{' / '.join(k for k in key if k)}: {text}")

    for key, base in base_points.items():
        cand = cand_points.get(key)
        if cand is None:
            note(key, "presence", "point missing from candidate", True)
            continue

        b_status, c_status = base.get("status"), cand.get("status")
        if b_status in RUNNABLE and c_status not in RUNNABLE:
            note(key, "status", f"{b_status} -> {c_status}", True)
            continue
        if b_status != c_status:
            note(key, "status", f"{b_status} -> {c_status}", False)
        if c_status not in RUNNABLE:
            continue

        for metric, field, pct in (("sim_time", "sim_time", args.time_pct),
                                   ("node_peak", "node_peak", args.mem_pct),
                                   ("rank_peak", "rank_peak", args.mem_pct),
                                   ("shuffle_bytes", "shuffle_bytes",
                                    args.shuffle_pct)):
            b_val, c_val = base.get(field, 0), cand.get(field, 0)
            if field not in base and field not in cand:
                continue  # metric predates both documents (e.g. rank_peak)
            if field not in base or b_val == 0:
                # A relative threshold is meaningless against a zero or
                # absent baseline: report the value, never fail on it.
                why = ("absent from baseline" if field not in base
                       else "baseline is 0")
                if c_val != 0 or field not in base:
                    note(key, metric,
                         f"n/a ({why}; candidate {c_val})", False)
                continue
            change = rel_change(b_val, c_val)
            over = change * 100.0 > pct
            if over or change != 0.0:
                note(key, metric,
                     f"{b_val} -> {c_val} "
                     f"({fmt_pct(change)}, limit +{pct:g}%)", over)

        b_wait, c_wait = wait_fraction(base), wait_fraction(cand)
        if b_wait is not None and c_wait is not None:
            delta = c_wait - b_wait
            over = delta > args.wait_abs
            if over or abs(delta) > 1e-12:
                note(key, "wait_fraction",
                     f"{b_wait:.4f} -> {c_wait:.4f} "
                     f"({delta:+.4f}, limit +{args.wait_abs:g})", over)

        b_imb, c_imb = base.get("imbalance_ratio"), cand.get("imbalance_ratio")
        if b_imb is None and c_imb is not None:
            # Baseline predates the metric: report, never regress.
            note(key, "imbalance_ratio",
                 f"n/a (absent from baseline; candidate {c_imb:.4f})", False)
        elif b_imb is not None and c_imb is not None:
            delta = c_imb - b_imb
            over = delta > args.imbalance_abs
            if over or abs(delta) > 1e-12:
                note(key, "imbalance_ratio",
                     f"{b_imb:.4f} -> {c_imb:.4f} "
                     f"({delta:+.4f}, limit +{args.imbalance_abs:g})", over)

        b_io_wait, b_io_hidden = io_stats(base)
        c_io_wait, c_io_hidden = io_stats(cand)
        if b_io_hidden is None and c_io_hidden is not None:
            # Baseline predates the "io" stats section: report, never
            # regress (mirrors imbalance_ratio above).
            note(key, "io_wait_fraction",
                 "n/a (absent from baseline; candidate "
                 f"{c_io_wait:.4f})" if c_io_wait is not None
                 else "n/a (absent from baseline)", False)
            note(key, "io_hidden_seconds",
                 f"n/a (absent from baseline; candidate {c_io_hidden:.4f})",
                 False)
        else:
            if b_io_wait is not None and c_io_wait is not None:
                delta = c_io_wait - b_io_wait
                over = delta > args.io_wait_abs
                if over or abs(delta) > 1e-12:
                    note(key, "io_wait_fraction",
                         f"{b_io_wait:.4f} -> {c_io_wait:.4f} "
                         f"({delta:+.4f}, limit +{args.io_wait_abs:g})",
                         over)
            if b_io_hidden is not None and c_io_hidden is not None:
                if b_io_hidden == 0:
                    if c_io_hidden != 0:
                        note(key, "io_hidden_seconds",
                             f"n/a (baseline is 0; candidate "
                             f"{c_io_hidden:.4f})", False)
                else:
                    change = rel_change(b_io_hidden, c_io_hidden)
                    # Hidden I/O shrinking means the pipeline stopped
                    # overlapping: the regression direction is down.
                    over = -change * 100.0 > args.io_hidden_pct
                    if over or change != 0.0:
                        note(key, "io_hidden_seconds",
                             f"{b_io_hidden:.4f} -> {c_io_hidden:.4f} "
                             f"({fmt_pct(change)}, limit "
                             f"-{args.io_hidden_pct:g}%)", over)

    for key in cand_points:
        if key not in base_points:
            note(key, "presence", "new point (not in baseline)", False)

    if rows:
        widths = [max(len(r[i]) for r in rows) for i in range(3)]
        print(f"{'point':<{widths[0]}}  {'metric':<{widths[1]}}  change")
        print(f"{'-' * widths[0]}  {'-' * widths[1]}  {'-' * widths[2]}")
        for point, metric, text, regressed in rows:
            marker = "  <-- REGRESSION" if regressed else ""
            print(f"{point:<{widths[0]}}  {metric:<{widths[1]}}  "
                  f"{text}{marker}")
    matched = sum(1 for k in base_points if k in cand_points)
    print(f"\n{matched} matched points, {len(regressions)} regressions")
    if regressions:
        print("bench_diff: FAIL")
        return 1
    print("bench_diff: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
