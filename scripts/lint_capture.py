#!/usr/bin/env python3
"""Flag by-reference lambda captures flowing into cross-rank code.

simmpi ranks are threads: a `[&]` lambda handed to `simmpi::run` (or one
of the bench/recovery wrappers, or a sched JobNode callback slot) runs
concurrently on every rank, so every by-reference capture is shared
mutable state unless the author proves otherwise. mimir-race catches the
unsynchronized ones at run time; this lint catches the pattern at review
time, before any test runs.

Usage:
    lint_capture.py [--strict] [path...]

Paths may be files or directories (searched recursively for .cpp/.hpp);
the default is examples/ and src/apps/ relative to the repo root.

A finding is a lambda whose capture list contains `&` appearing in the
argument region of a *sink*:

  * rank-body runners: simmpi::run, run_test, run_config, run_repeated,
    run_driver, run_with_recovery, run_graph, run_graph_with_recovery
  * sched callback slots: assignments to .producer / .kv_map / .reduce /
    .partial / .consume / .skip / .make_state
  * with --strict, also per-job map/reduce callbacks (job.map_custom,
    job.map_kvs, job.map, job.reduce, job.partial_reduce) — these run on
    one rank thread, but the callback may still leak a captured
    reference across jobs.

Suppression: an intentional shared capture (e.g. synchronized via
check::Shared<T>, a barrier protocol, or only ever touched by one rank)
is annotated with `// mimir: shared-ok` on the lambda's line, the line
above it, or the sink's line.

Implementation is AST-free by design: when libclang (clang.cindex) is
importable its lexer is used to blank comments and string literals,
otherwise a built-in tokenizer does the same job — no compile database
needed either way. Exit codes: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import os
import re
import sys

ANNOTATION = "mimir: shared-ok"

# Call-style sinks: the lambda appears inside the call's parentheses.
CALL_SINKS = [
    r"simmpi\s*::\s*run",
    r"\brun_test",
    r"\brun_config",
    r"\brun_repeated",
    r"\brun_driver",
    r"\brun_with_recovery",
    r"\brun_graph_with_recovery",
    r"\brun_graph",
]

# Assignment-style sinks: sched JobNode / GraphOptions callback slots;
# the lambda appears between `=` and the statement's `;`.
ASSIGN_SINKS = [
    r"\.\s*producer\s*=",
    r"\.\s*kv_map\s*=",
    r"\.\s*reduce\s*=",
    r"\.\s*partial\s*=",
    r"\.\s*consume\s*=",
    r"\.\s*skip\s*=",
    r"\.\s*make_state\s*=",
    r"\.\s*on_plan\s*=",
]

# --strict: per-job callbacks too (same-thread, but a captured reference
# can outlive the job through emitted state).
STRICT_CALL_SINKS = [
    r"\.\s*map_custom",
    r"\.\s*map_kvs",
    r"\.\s*map_file",
    r"\.\s*map\b",
    r"\.\s*reduce\b",
    r"\.\s*partial_reduce",
]

# A capture list followed by something only a lambda can be followed by.
LAMBDA_RE = re.compile(
    r"\[([^\[\]]*)\]\s*(?=\(|\{|mutable\b|noexcept\b|->)")


def blank_comments_and_strings_builtin(text):
    """Replace comment/string contents with spaces, preserving offsets."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j < n - 1 and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n - 1:
                out[j] = out[j + 1] = " "
                j += 2
            i = j
        elif c in "\"'":
            quote = c
            out[i] = " "
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\" and j + 1 < n:
                    out[j] = " "
                    j += 1
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            if j < n:
                out[j] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def blank_comments_and_strings_clang(text):
    """Same contract as the builtin stripper, via libclang's lexer."""
    import clang.cindex as cindex  # noqa: import guarded by caller

    index = cindex.Index.create()
    tu = index.parse("lint_capture.cpp",
                     unsaved_files=[("lint_capture.cpp", text)],
                     args=["-std=c++20", "-fsyntax-only"])
    out = list(text)
    for token in tu.get_tokens(extent=tu.cursor.extent):
        if token.kind in (cindex.TokenKind.COMMENT,
                          cindex.TokenKind.LITERAL):
            if token.kind == cindex.TokenKind.LITERAL and not (
                    token.spelling.startswith('"')
                    or token.spelling.startswith("'")):
                continue  # keep numeric literals, they are harmless
            start = token.extent.start.offset
            end = token.extent.end.offset
            for k in range(start, min(end, len(out))):
                if out[k] != "\n":
                    out[k] = " "
    return "".join(out)


def blank_comments_and_strings(text):
    try:
        return blank_comments_and_strings_clang(text)
    except Exception:  # libclang missing or unusable: regex fallback
        return blank_comments_and_strings_builtin(text)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def balanced_region(code, open_paren):
    """Offset one past the `(`'s matching `)`, or len(code) if unclosed."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def statement_end(code, start):
    """Offset of the `;` ending the statement at `start` (depth 0)."""
    depth = 0
    for i in range(start, len(code)):
        c = code[i]
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        elif c == ";" and depth <= 0:
            return i
    return len(code)


def annotated(raw_lines, *line_numbers):
    for ln in line_numbers:
        for candidate in (ln, ln - 1):
            if 1 <= candidate <= len(raw_lines) and \
                    ANNOTATION in raw_lines[candidate - 1]:
                return True
    return False


def ref_captures(capture_list):
    """True when a lambda capture list captures anything by reference."""
    return "&" in capture_list


def scan_file(path, strict):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"lint_capture: cannot read {path}: {e}", file=sys.stderr)
        raise SystemExit(2)

    raw_lines = text.splitlines()
    code = blank_comments_and_strings(text)
    findings = []

    call_sinks = list(CALL_SINKS) + (STRICT_CALL_SINKS if strict else [])
    for pattern in call_sinks:
        for m in re.finditer(pattern, code):
            open_paren = code.find("(", m.end())
            if open_paren < 0 or "\n" in code[m.end():open_paren].strip():
                continue
            region_end = balanced_region(code, open_paren)
            region = code[open_paren:region_end]
            sink_line = line_of(code, m.start())
            for lm in LAMBDA_RE.finditer(region):
                if not ref_captures(lm.group(1)):
                    continue
                # Only direct arguments: a lambda nested inside another
                # lambda's body captures that body's per-rank locals,
                # which is ordinary same-thread code.
                if region.count("{", 0, lm.start()) \
                        > region.count("}", 0, lm.start()):
                    continue
                lam_line = line_of(code, open_paren + lm.start())
                if annotated(raw_lines, lam_line, sink_line):
                    continue
                findings.append(
                    (path, lam_line, sink_line,
                     code[m.start():open_paren].strip(),
                     lm.group(0).split("\n")[0].strip()))

    for pattern in ASSIGN_SINKS:
        for m in re.finditer(pattern, code):
            end = statement_end(code, m.end())
            region = code[m.end():end]
            sink_line = line_of(code, m.start())
            for lm in LAMBDA_RE.finditer(region):
                if not ref_captures(lm.group(1)):
                    continue
                if region.count("{", 0, lm.start()) \
                        > region.count("}", 0, lm.start()):
                    continue
                lam_line = line_of(code, m.end() + lm.start())
                if annotated(raw_lines, lam_line, sink_line):
                    continue
                findings.append(
                    (path, lam_line, sink_line,
                     code[m.start():m.end()].strip().rstrip("="). strip(),
                     lm.group(0).split("\n")[0].strip()))

    # A lambda can sit in two overlapping regions (nested or aliased
    # sinks, e.g. simmpi::run_test matching both the simmpi::run and
    # run_test patterns); report each capture site once.
    unique = []
    seen = set()
    for f in sorted(findings, key=lambda f: (f[0], f[1], f[2])):
        if (f[0], f[1]) not in seen:
            seen.add((f[0], f[1]))
            unique.append(f)
    return unique


def collect_paths(args_paths):
    if not args_paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        args_paths = [os.path.join(root, "examples"),
                      os.path.join(root, "src", "apps")]
    files = []
    for p in args_paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for name in sorted(filenames):
                    if name.endswith((".cpp", ".hpp", ".cc", ".h")):
                        files.append(os.path.join(dirpath, name))
        else:
            print(f"lint_capture: no such path: {p}", file=sys.stderr)
            raise SystemExit(2)
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="lint_capture.py",
        description="Flag by-reference lambda captures flowing into "
                    "rank bodies and map/reduce callbacks.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: examples/ "
                             "and src/apps/)")
    parser.add_argument("--strict", action="store_true",
                        help="also flag per-job map/reduce callbacks")
    args = parser.parse_args(argv)

    total = 0
    for path in collect_paths(args.paths):
        for fpath, lam_line, sink_line, sink, capture in scan_file(
                path, args.strict):
            total += 1
            print(f"{fpath}:{lam_line}: by-reference capture {capture} "
                  f"flows into {sink} (line {sink_line}); ranks run "
                  f"concurrently — capture by value, use check::Shared<T>, "
                  f"or annotate '// {ANNOTATION}'")
    if total:
        print(f"lint_capture: {total} unannotated by-reference "
              f"capture(s)", file=sys.stderr)
        return 1
    print("lint_capture: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
