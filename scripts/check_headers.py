#!/usr/bin/env python3
"""Repo invariant audit, wired into the lint target and ctest.

Checks (kept cheap so they run on every test invocation):
  * every C++ header under src/ carries `#pragma once`
  * no `std::cout` / `std::cerr` outside bench/, examples/, and tools —
    library code must report through mutil::logging or check::Report
  * no naked `new` / `delete` in src/core — container memory must flow
    through memtrack::TrackedBuffer so the lifecycle auditor sees it

Exit code 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

HEADER_DIRS = ["src"]
COUT_DIRS = ["src"]
NAKED_NEW_DIRS = ["src/core"]

COUT_RE = re.compile(r"std::c(out|err)\b")
# A naked allocation: `new` after whitespace/punctuation, excluding
# placement-new and words like "renewed". Deletes likewise.
NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_:]")
DELETE_RE = re.compile(r"(?<![\w.])delete(\[\])?\s+[A-Za-z_]")
SMART_NEW_RE = re.compile(r"(make_unique|make_shared|unique_ptr|shared_ptr)")


def cpp_files(roots: list[str], suffixes: tuple[str, ...]) -> list[Path]:
    out: list[Path] = []
    for root in roots:
        base = REPO / root
        if not base.is_dir():
            continue
        out.extend(
            p for p in sorted(base.rglob("*")) if p.suffix in suffixes
        )
    return out


def strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def main() -> int:
    problems: list[str] = []

    for path in cpp_files(HEADER_DIRS, (".hpp", ".h")):
        if "#pragma once" not in path.read_text(encoding="utf-8"):
            problems.append(f"{path.relative_to(REPO)}: missing #pragma once")

    for path in cpp_files(COUT_DIRS, (".hpp", ".h", ".cpp")):
        body = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(body.splitlines(), start=1):
            if COUT_RE.search(line):
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: std::cout/cerr in "
                    "library code (use mutil logging)"
                )

    for path in cpp_files(NAKED_NEW_DIRS, (".hpp", ".h", ".cpp")):
        body = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(body.splitlines(), start=1):
            if SMART_NEW_RE.search(line):
                continue
            if NEW_RE.search(line) or DELETE_RE.search(line):
                problems.append(
                    f"{path.relative_to(REPO)}:{lineno}: naked new/delete in "
                    "src/core (route memory through memtrack)"
                )

    if problems:
        print("check_headers: FAILED")
        for p in problems:
            print("  " + p)
        return 1
    print("check_headers: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
