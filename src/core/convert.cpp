#include "mimir/convert.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <vector>

#include "inject/fault.hpp"
#include "memtrack/tracker.hpp"
#include "mutil/hash.hpp"
#include "stats/registry.hpp"

namespace mimir {

namespace {

/// Hash index over unique keys used by both convert passes. Key bytes
/// are *referenced*, not copied: during pass 1 they point into the
/// source KV pages; after layout they are swung to the KMV container's
/// stable copies so pass 2 can free source pages as it drains them.
class ConvertIndex {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Group {
    KMVContainer::Slot slot;
    std::string_view key;  ///< borrowed; rebound to KMVC storage at layout
    std::uint32_t count = 0;
    std::uint64_t values_total = 0;
  };

  /// `copy_keys` must be true when the input container streams from a
  /// spill file: its key views are transient, so pass-1 copies them
  /// into a tracked arena; in-memory inputs are borrowed (no copies,
  /// which keeps the paper's memory profile).
  ConvertIndex(memtrack::Tracker& tracker, bool copy_keys)
      : tracker_(&tracker), copy_keys_(copy_keys) {
    const memtrack::TagScope tag("convert");
    slots_ = memtrack::TrackedBuffer(*tracker_, kInitial * sizeof(Entry));
    slot_count_ = kInitial;
    std::fill_n(reinterpret_cast<Entry*>(slots_.data()), slot_count_,
                Entry{});
  }

  /// Find or create the group for `key`; returns its index.
  std::uint32_t upsert(std::string_view key) {
    const std::uint64_t hash = mutil::hash_bytes(key);
    Entry* slot = probe(hash, key);
    if (slot->group != kNone) return slot->group;
    if (static_cast<double>(groups_.size() + 1) >
        0.7 * static_cast<double>(slot_count_)) {
      grow();
      slot = probe(hash, key);
    }
    if (copy_keys_) key = stash(key);
    slot->hash = hash;
    slot->key = key.data();
    slot->key_len = static_cast<std::uint32_t>(key.size());
    slot->group = static_cast<std::uint32_t>(groups_.size());
    groups_.emplace_back();
    groups_.back().key = key;
    return slot->group;
  }

  /// Lookup only (pass 2); the key must exist.
  std::uint32_t find(std::string_view key) const {
    const std::uint64_t hash = mutil::hash_bytes(key);
    const Entry* slot =
        const_cast<ConvertIndex*>(this)->probe(hash, key);
    return slot->group;
  }

  /// Re-point an entry's key bytes at stable storage. Probing with the
  /// new view finds the old entry because the contents are identical.
  void rebind_key(std::string_view key) {
    Entry* slot = probe(mutil::hash_bytes(key), key);
    slot->key = key.data();
  }

  std::vector<Group>& groups() noexcept { return groups_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    const char* key = nullptr;
    std::uint32_t key_len = 0;
    std::uint32_t group = kNone;
  };

  static constexpr std::uint64_t kInitial = 1024;

  Entry* probe(std::uint64_t hash, std::string_view key) {
    auto* entries = reinterpret_cast<Entry*>(slots_.data());
    std::uint64_t idx = hash & (slot_count_ - 1);
    for (;;) {
      Entry& e = entries[idx];
      if (e.group == kNone ||
          (e.hash == hash &&
           std::string_view(e.key, e.key_len) == key)) {
        return &e;
      }
      idx = (idx + 1) & (slot_count_ - 1);
    }
  }

  /// Copy a key into the arena and return a stable view of it.
  std::string_view stash(std::string_view key) {
    if (arena_.empty() || arena_used_ + key.size() > arena_.back().size()) {
      const memtrack::TagScope tag("convert");
      arena_.push_back(memtrack::TrackedBuffer(
          *tracker_,
          std::max<std::size_t>(key.size(), std::size_t{64} << 10)));
      arena_used_ = 0;
    }
    std::byte* dst = arena_.back().data() + arena_used_;
    std::memcpy(dst, key.data(), key.size());
    arena_used_ += key.size();
    return {reinterpret_cast<const char*>(dst), key.size()};
  }

  void grow() {
    const std::uint64_t bigger_count = slot_count_ * 2;
    const memtrack::TagScope tag("convert");
    memtrack::TrackedBuffer bigger(*tracker_,
                                   bigger_count * sizeof(Entry));
    auto* fresh = reinterpret_cast<Entry*>(bigger.data());
    std::fill_n(fresh, bigger_count, Entry{});
    const auto* old = reinterpret_cast<const Entry*>(slots_.data());
    for (std::uint64_t i = 0; i < slot_count_; ++i) {
      if (old[i].group == kNone) continue;
      std::uint64_t idx = old[i].hash & (bigger_count - 1);
      while (fresh[idx].group != kNone) {
        idx = (idx + 1) & (bigger_count - 1);
      }
      fresh[idx] = old[i];
    }
    slots_ = std::move(bigger);
    slot_count_ = bigger_count;
  }

  memtrack::Tracker* tracker_;
  bool copy_keys_;
  memtrack::TrackedBuffer slots_;
  std::uint64_t slot_count_ = 0;
  std::vector<Group> groups_;
  std::deque<memtrack::TrackedBuffer> arena_;
  std::size_t arena_used_ = 0;
};

}  // namespace

KMVContainer convert(simmpi::Context& ctx, KVContainer& input,
                     std::uint64_t page_size, ConvertStats* stats) {
  const stats::PhaseScope phase("convert");
  inject::phase_point("convert");
  const KVHint hint = input.codec().hint();
  KMVContainer kmvc(ctx.tracker, page_size, hint);
  ConvertIndex index(ctx.tracker, input.spilled());

  // Pass 1: per-key sizes and counts.
  const std::uint64_t input_kvs = input.num_kvs();
  {
    const stats::PhaseScope pass1("convert.pass1");
    input.scan([&](const KVView& kv) {
      auto& group = index.groups()[index.upsert(kv.key)];
      ++group.count;
      group.values_total += kv.value.size();
    });
    ctx.clock().advance(static_cast<double>(input.data_bytes()) /
                        ctx.machine.reduce_rate);
  }

  // Layout: reserve every KMV record in first-encounter order, then
  // swing the index's key references to the KMVC's stable copies so the
  // source pages can be freed while pass 2 still performs lookups.
  for (auto& group : index.groups()) {
    group.slot = kmvc.reserve(group.key, group.count, group.values_total);
    const std::string_view stable = kmvc.key_of(group.slot);
    index.rebind_key(stable);
    group.key = stable;
  }

  // Pass 2: drain the source, filling reserved value slots; source pages
  // are freed page by page.
  {
    const stats::PhaseScope pass2("convert.pass2");
    input.consume([&](const KVView& kv) {
      auto& group = index.groups()[index.find(kv.key)];
      kmvc.add_value(group.slot, kv.value);
    });
    ctx.clock().advance(static_cast<double>(kmvc.data_bytes()) /
                        ctx.machine.reduce_rate);
  }

  if (stats::Registry* reg = stats::current()) {
    reg->add("convert.input_kvs", input_kvs);
    reg->add("convert.unique_keys", kmvc.num_kmvs());
    reg->add("convert.kmv_bytes", kmvc.data_bytes());
  }
  if (stats != nullptr) {
    stats->input_kvs = input_kvs;
    stats->unique_keys = kmvc.num_kmvs();
    stats->kmv_bytes = kmvc.data_bytes();
  }
  return kmvc;
}

}  // namespace mimir
