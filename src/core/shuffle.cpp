#include "mimir/shuffle.hpp"

#include <numeric>

#include "inject/fault.hpp"
#include "memtrack/tracker.hpp"
#include "mutil/hash.hpp"
#include "stats/registry.hpp"

namespace mimir {

Shuffle::Shuffle(simmpi::Context& ctx, std::uint64_t comm_buffer,
                 KVHint hint, KVContainer& dest, PartitionFn partitioner)
    : ctx_(ctx),
      codec_(hint),
      dest_(dest),
      partitioner_(std::move(partitioner)),
      part_cap_(comm_buffer / static_cast<std::uint64_t>(ctx.size())),
      part_used_(static_cast<std::size_t>(ctx.size()), 0),
      part_displs_(static_cast<std::size_t>(ctx.size()), 0) {
  // Charge the communication buffers before the capacity check, in the
  // same order the member initializers used to, so the observable charge
  // sequence (and any OOM point) is unchanged.
  const memtrack::TagScope tag("shuffle");
  send_ = memtrack::TrackedBuffer(ctx.tracker, comm_buffer);
  recv_ = memtrack::TrackedBuffer(ctx.tracker, comm_buffer);
  if (part_cap_ == 0) {
    throw mutil::ConfigError(
        "Shuffle: communication buffer smaller than one byte per rank");
  }
  for (std::size_t i = 0; i < part_displs_.size(); ++i) {
    part_displs_[i] = static_cast<std::uint64_t>(i) * part_cap_;
  }
}

void Shuffle::emit(std::string_view key, std::string_view value) {
  if (finalized_) {
    throw mutil::UsageError("Shuffle: emit after finalize");
  }
  const std::size_t bytes = codec_.encoded_size(key, value);
  if (bytes > part_cap_) {
    throw mutil::UsageError(
        "Shuffle: a single KV (" + std::to_string(bytes) +
        " bytes) exceeds the send partition capacity (" +
        std::to_string(part_cap_) + " bytes); increase the comm buffer");
  }
  // Validate the partitioner's result while it is still signed: casting
  // a negative return to size_t first would report a huge bogus rank
  // and hide the real bug (a partitioner returning -1).
  int dest = 0;
  if (partitioner_) {
    dest = partitioner_(key, ctx_.size());
    if (dest < 0 || dest >= ctx_.size()) {
      throw mutil::UsageError(
          "Shuffle: partitioner returned rank " + std::to_string(dest) +
          ", violating the partitioner contract (must return a rank in "
          "[0, " +
          std::to_string(ctx_.size()) + "))");
    }
  } else {
    dest = static_cast<int>(mutil::hash_bytes(key) %
                            static_cast<std::uint64_t>(ctx_.size()));
  }
  const auto dest_rank = static_cast<std::size_t>(dest);
  if (part_used_[dest_rank] + bytes > part_cap_) {
    // Suspend the map and run the implicit aggregate phase.
    (void)exchange_round(false);
  }
  codec_.encode(send_.data() + part_displs_[dest_rank] +
                    part_used_[dest_rank],
                key, value);
  part_used_[dest_rank] += bytes;
  ++kvs_emitted_;
  bytes_emitted_ += bytes;
  // Framework handling cost of the emitted KV (hash + encode).
  ctx_.clock().advance(static_cast<double>(bytes) / ctx_.machine.kv_rate);
}

bool Shuffle::exchange_round(bool this_rank_done) {
  ++rounds_;
  // Each exchange round is one aggregate phase: the map is suspended,
  // send partitions are drained through alltoallv, and the received KVs
  // land in the destination container.
  const stats::PhaseScope phase("aggregate");
  inject::phase_point("aggregate");
  if (stats::Registry* reg = stats::current()) {
    reg->instant("exchange_round");
    reg->add("shuffle.rounds", 1);
    for (std::size_t dst = 0; dst < part_used_.size(); ++dst) {
      reg->record_traffic(static_cast<int>(dst), part_used_[dst]);
      reg->add("shuffle.bytes_sent", part_used_[dst]);
    }
  }
  const auto recv_counts = ctx_.comm.alltoall_u64(part_used_);

  std::vector<std::uint64_t> recv_displs(recv_counts.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < recv_counts.size(); ++i) {
    recv_displs[i] = total;
    total += recv_counts[i];
  }
  // Receive volume is bounded by the send-buffer size by construction.
  ctx_.comm.alltoallv(send_.span(), part_used_, part_displs_,
                      recv_.span(), recv_counts, recv_displs);

  // Move received KVs into the destination container; pages grow (and
  // are charged) as needed.
  dest_.append_encoded(recv_.span().subspan(0, total));
  ctx_.clock().advance(static_cast<double>(total) / ctx_.machine.kv_rate);

  std::fill(part_used_.begin(), part_used_.end(), 0);
  return ctx_.comm.allreduce_lor(!this_rank_done);
}

void Shuffle::finalize() {
  if (finalized_) {
    throw mutil::UsageError("Shuffle: finalize called twice");
  }
  finalized_ = true;
  // First round flushes our leftover data; afterwards we participate
  // with empty partitions until every rank reports done.
  while (exchange_round(true)) {
  }
}

}  // namespace mimir
