#include "mimir/shuffle.hpp"

#include <algorithm>
#include <numeric>

#include "balance/balancer.hpp"
#include "check/race.hpp"
#include "inject/fault.hpp"
#include "memtrack/tracker.hpp"
#include "mutil/hash.hpp"
#include "stats/registry.hpp"

namespace mimir {

Shuffle::Shuffle(simmpi::Context& ctx, std::uint64_t comm_buffer,
                 KVHint hint, KVContainer& dest, PartitionFn partitioner,
                 bool overlap, balance::Balancer* balancer)
    : ctx_(ctx),
      codec_(hint),
      dest_(dest),
      partitioner_(std::move(partitioner)),
      overlap_(overlap),
      balancer_(balancer),
      part_cap_(comm_buffer / static_cast<std::uint64_t>(ctx.size())),
      part_displs_(static_cast<std::size_t>(ctx.size()), 0) {
  if (part_cap_ == 0) {
    throw mutil::ConfigError(
        "Shuffle: communication buffer smaller than one byte per rank");
  }
  // Allocate (and charge) exactly p * part_cap_ bytes per buffer: when
  // comm_buffer does not divide evenly by the rank count, the remainder
  // would sit past the last partition — charged but unusable. Rounding
  // the allocation down keeps charged == usable.
  const std::uint64_t usable =
      part_cap_ * static_cast<std::uint64_t>(ctx.size());
  const memtrack::TagScope tag("shuffle");
  send_[0] = memtrack::TrackedBuffer(ctx.tracker, usable);
  recv_ = memtrack::TrackedBuffer(ctx.tracker, usable);
  if (overlap_) {
    send_[1] = memtrack::TrackedBuffer(ctx.tracker, usable);
  }
  part_used_[0].assign(static_cast<std::size_t>(ctx.size()), 0);
  part_used_[1].assign(static_cast<std::size_t>(ctx.size()), 0);
  for (std::size_t i = 0; i < part_displs_.size(); ++i) {
    part_displs_[i] = static_cast<std::uint64_t>(i) * part_cap_;
  }
}

void Shuffle::emit(std::string_view key, std::string_view value) {
  if (finalized_) {
    throw mutil::UsageError("Shuffle: emit after finalize");
  }
  const std::size_t bytes = codec_.encoded_size(key, value);
  if (bytes > part_cap_) {
    throw mutil::UsageError(
        "Shuffle: a single KV (" + std::to_string(bytes) +
        " bytes) exceeds the send partition capacity (" +
        std::to_string(part_cap_) + " bytes); increase the comm buffer");
  }
  // Validate the partitioner's result while it is still signed: casting
  // a negative return to size_t first would report a huge bogus rank
  // and hide the real bug (a partitioner returning -1).
  int dest = 0;
  if (partitioner_) {
    dest = partitioner_(key, ctx_.size());
    if (dest < 0 || dest >= ctx_.size()) {
      throw mutil::UsageError(
          "Shuffle: partitioner returned rank " + std::to_string(dest) +
          ", violating the partitioner contract (must return a rank in "
          "[0, " +
          std::to_string(ctx_.size()) + "))");
    }
  } else {
    dest = static_cast<int>(mutil::hash_bytes(key) %
                            static_cast<std::uint64_t>(ctx_.size()));
  }
  if (balancer_ != nullptr) {
    if (!balancer_->planned()) {
      // Pre-plan: feed the key-frequency sketch. Routing is unchanged,
      // so the first-round payload is identical with balance on or off.
      balancer_->sample(key, static_cast<std::uint64_t>(bytes), dest);
    } else {
      dest = balancer_->route(key, dest, ctx_.rank());
      if (dest < 0 || dest >= ctx_.size()) {
        throw mutil::UsageError(
            "Shuffle: balance plan routed to rank " + std::to_string(dest) +
            ", outside [0, " + std::to_string(ctx_.size()) + ")");
      }
    }
  }
  const auto dest_rank = static_cast<std::size_t>(dest);
  if (part_used_[cur_][dest_rank] + bytes > part_cap_) {
    if (overlap_) {
      // The active buffer is full. Free the other buffer (wait for the
      // previous round if it is still in flight), ship the full one,
      // and keep mapping into the freed buffer — round k's exchange now
      // hides under round k+1's map compute.
      if (in_flight_) (void)complete_round();
      start_round(false);
      cur_ ^= 1;
    } else {
      // Suspend the map and run the implicit aggregate phase.
      (void)exchange_round(false);
    }
  }
  // Under mimir-race, the emit write is noted against the send buffer:
  // writing into a buffer an in-flight ialltoallv still owns is exactly
  // the write-after-initiate hazard the detector freezes regions for.
  check::race_note_access(send_[cur_].data(), /*write=*/true);
  codec_.encode(send_[cur_].data() + part_displs_[dest_rank] +
                    part_used_[cur_][dest_rank],
                key, value);
  part_used_[cur_][dest_rank] += bytes;
  ++kvs_emitted_;
  bytes_emitted_ += bytes;
  // Framework handling cost of the emitted KV (hash + encode).
  ctx_.clock().advance(static_cast<double>(bytes) / ctx_.machine.kv_rate);
}

bool Shuffle::exchange_round(bool this_rank_done) {
  ++rounds_;
  // Each exchange round is one aggregate phase: the map is suspended,
  // send partitions are drained through alltoallv, and the received KVs
  // land in the destination container.
  const stats::PhaseScope phase("aggregate");
  inject::phase_point("aggregate");
  // The first round doubles as the balance plan exchange: every rank
  // reaches its first round's collectives in the same order (whichever
  // rank's partition filled first merely arrives at the rendezvous
  // earlier in simulated time), so prepending the allgatherv here keeps
  // the global collective sequence aligned.
  if (balancer_ != nullptr && !balancer_->planned()) {
    balancer_->exchange_and_plan(ctx_);
  }
  std::vector<std::uint64_t>& used = part_used_[cur_];
  if (stats::Registry* reg = stats::current()) {
    reg->instant("exchange_round");
    reg->add("shuffle.rounds", 1);
    for (std::size_t dst = 0; dst < used.size(); ++dst) {
      reg->record_traffic(static_cast<int>(dst), used[dst]);
      reg->add("shuffle.bytes_sent", used[dst]);
    }
  }
  const auto recv_counts = ctx_.comm.alltoall_u64(used);

  std::vector<std::uint64_t> recv_displs(recv_counts.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < recv_counts.size(); ++i) {
    recv_displs[i] = total;
    total += recv_counts[i];
  }
  // Receive volume is bounded by the send-buffer size by construction.
  ctx_.comm.alltoallv(send_[cur_].span(), used, part_displs_,
                      recv_.span(), recv_counts, recv_displs);

  // Move received KVs into the destination container; pages grow (and
  // are charged) as needed.
  dest_.append_encoded(recv_.span().subspan(0, total));
  ctx_.clock().advance(static_cast<double>(total) / ctx_.machine.kv_rate);

  std::fill(used.begin(), used.end(), 0);
  return ctx_.comm.allreduce_lor(!this_rank_done);
}

void Shuffle::start_round(bool this_rank_done) {
  ++rounds_;
  const stats::PhaseScope phase("aggregate");
  inject::phase_point("aggregate");
  // Plan exchange before the first overlapped round, mirroring the
  // blocking path (see exchange_round).
  if (balancer_ != nullptr && !balancer_->planned()) {
    balancer_->exchange_and_plan(ctx_);
  }
  std::vector<std::uint64_t>& used = part_used_[cur_];
  if (stats::Registry* reg = stats::current()) {
    reg->instant("exchange_round");
    reg->add("shuffle.rounds", 1);
    for (std::size_t dst = 0; dst < used.size(); ++dst) {
      reg->record_traffic(static_cast<int>(dst), used[dst]);
      reg->add("shuffle.bytes_sent", used[dst]);
    }
  }
  // The non-blocking alltoallv discovers receive counts at completion
  // and packs the payload contiguously in source-rank order — the same
  // order the blocking path's cumulative displacements produce, which
  // is what keeps the destination container bit-identical across modes.
  // The continue vote rides the same round as a second request.
  data_req_ = ctx_.comm.ialltoallv(send_[cur_].span(), used, part_displs_,
                                   recv_.span());
  vote_req_ = ctx_.comm.iallreduce_u64(this_rank_done ? 0 : 1,
                                       simmpi::Op::kLor);
  flight_ = cur_;
  in_flight_ = true;
  inject::phase_point("aggregate.initiate");
}

bool Shuffle::complete_round() {
  const stats::PhaseScope phase("aggregate");
  inject::phase_point("aggregate.wait");
  data_req_.wait();
  vote_req_.wait();
  const std::uint64_t total = data_req_.bytes_received();
  dest_.append_encoded(recv_.span().subspan(0, total));
  ctx_.clock().advance(static_cast<double>(total) / ctx_.machine.kv_rate);
  std::fill(part_used_[flight_].begin(), part_used_[flight_].end(), 0);
  in_flight_ = false;
  return vote_req_.value() != 0;
}

void Shuffle::finalize() {
  if (finalized_) {
    throw mutil::UsageError("Shuffle: finalize called twice");
  }
  finalized_ = true;
  if (overlap_) {
    // Settle any round still hiding under the map before draining: its
    // vote is stale (cast mid-map) but its payload must land first.
    if (in_flight_) (void)complete_round();
    // Drain rounds flush our leftover data, then keep participating
    // with empty partitions until every rank reports done. Each round
    // is initiated and immediately completed — there is no map compute
    // left to hide communication under.
    bool more = true;
    while (more) {
      start_round(true);
      more = complete_round();
    }
  } else {
    // First round flushes our leftover data; afterwards we participate
    // with empty partitions until every rank reports done.
    while (exchange_round(true)) {
    }
  }
}

}  // namespace mimir
