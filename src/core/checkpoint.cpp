#include "mimir/checkpoint.hpp"

#include <cstring>
#include <vector>

#include "mutil/error.hpp"
#include "stats/registry.hpp"

namespace mimir {

namespace {

constexpr std::uint64_t kMagic = 0x4d494d4952434b50ULL;  // "MIMIRCKP"

struct ShardHeader {
  std::uint64_t magic;
  std::int32_t key_len;
  std::int32_t value_len;
  std::uint64_t num_kvs;
  std::uint64_t data_bytes;
  std::int32_t ranks;
  std::int32_t reserved;
};
static_assert(sizeof(ShardHeader) == 40);

std::string shard_name(const std::string& name, int rank) {
  return "ckpt/" + name + "/shard" + std::to_string(rank);
}

}  // namespace

void save_container(simmpi::Context& ctx, const KVContainer& kvc,
                    const std::string& name) {
  const stats::PhaseScope phase("checkpoint_save");
  if (stats::Registry* reg = stats::current()) {
    reg->add("checkpoint.bytes_written",
             sizeof(ShardHeader) + kvc.data_bytes());
    reg->add("checkpoint.saves", 1);
  }
  ShardHeader header{};
  header.magic = kMagic;
  header.key_len = kvc.codec().hint().key_len;
  header.value_len = kvc.codec().hint().value_len;
  header.num_kvs = kvc.num_kvs();
  header.data_bytes = kvc.data_bytes();
  header.ranks = ctx.size();
  header.reserved = 0;

  pfs::Writer writer = ctx.fs.create(shard_name(name, ctx.rank()));
  writer.write(std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(&header),
                   sizeof(header)),
               ctx.clock());
  // Re-encode each KV through a small staging buffer; pages hold whole
  // records so serializing page contents verbatim would also work, but
  // going record-by-record keeps the format independent of page size.
  std::vector<std::byte> record;
  const KVCodec& codec = kvc.codec();
  kvc.scan([&](const KVView& kv) {
    record.resize(codec.encoded_size(kv.key, kv.value));
    codec.encode(record.data(), kv.key, kv.value);
    writer.write(record, ctx.clock());
  });
  ctx.comm.barrier();  // checkpoint is complete only when everyone wrote
}

bool checkpoint_exists(simmpi::Context& ctx, const std::string& name) {
  bool mine = ctx.fs.exists(shard_name(name, ctx.rank()));
  return ctx.comm.allreduce_land(mine);
}

KVContainer load_container(simmpi::Context& ctx, const std::string& name,
                           std::uint64_t page_size) {
  const stats::PhaseScope phase("checkpoint_load");
  pfs::Reader reader = ctx.fs.open(shard_name(name, ctx.rank()));
  ShardHeader header{};
  std::byte raw[sizeof(header)];
  if (reader.read(raw, ctx.clock()) != sizeof(header)) {
    throw mutil::IoError("checkpoint '" + name + "': truncated header");
  }
  std::memcpy(&header, raw, sizeof(header));
  if (header.magic != kMagic) {
    throw mutil::IoError("checkpoint '" + name + "': bad magic");
  }
  if (header.ranks != ctx.size()) {
    throw mutil::IoError(
        "checkpoint '" + name + "': saved with " +
        std::to_string(header.ranks) + " ranks, loading with " +
        std::to_string(ctx.size()) +
        " (shards are partitioned by the saving world's key hash)");
  }

  KVContainer kvc(ctx.tracker, page_size,
                  KVHint{header.key_len, header.value_len});
  const std::vector<std::byte> body = reader.read_all(ctx.clock());
  if (body.size() != header.data_bytes) {
    throw mutil::IoError("checkpoint '" + name + "': truncated data");
  }
  kvc.append_encoded(body);
  if (kvc.num_kvs() != header.num_kvs) {
    throw mutil::IoError("checkpoint '" + name + "': KV count mismatch");
  }
  if (stats::Registry* reg = stats::current()) {
    reg->add("checkpoint.bytes_read", sizeof(header) + body.size());
    reg->add("checkpoint.loads", 1);
  }
  return kvc;
}

void remove_checkpoint(simmpi::Context& ctx, const std::string& name) {
  ctx.fs.remove(shard_name(name, ctx.rank()));
  ctx.comm.barrier();
}

void checkpoint_job(Job& job, const std::string& name) {
  save_container(job.context(), job.intermediate(), name);
}

Job resume_job(simmpi::Context& ctx, JobConfig cfg,
               const std::string& name) {
  KVContainer intermediate = load_container(ctx, name, cfg.page_size);
  cfg.hint = intermediate.codec().hint();  // the checkpoint's hint wins
  return Job::resumed(ctx, cfg, std::move(intermediate));
}

}  // namespace mimir
