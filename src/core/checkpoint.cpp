#include "mimir/checkpoint.hpp"

#include <cstring>
#include <vector>

#include "inject/fault.hpp"
#include "memtrack/tracker.hpp"
#include "mutil/error.hpp"
#include "pfs/async.hpp"
#include "stats/registry.hpp"

namespace mimir {

namespace {

constexpr std::uint64_t kMagic = 0x4d494d4952434b50ULL;  // "MIMIRCKP"

struct ShardHeader {
  std::uint64_t magic;
  std::int32_t key_len;
  std::int32_t value_len;
  std::uint64_t num_kvs;
  std::uint64_t data_bytes;
  std::int32_t ranks;
  std::int32_t reserved;
};
static_assert(sizeof(ShardHeader) == 40);

std::string shard_name(const std::string& name, int rank) {
  return "ckpt/" + name + "/shard" + std::to_string(rank);
}

/// Commit marker written by rank 0 after every shard is on the PFS. A
/// checkpoint without the marker (e.g. a rank died mid-save) is treated
/// as absent, so recovery restarts from scratch instead of loading a
/// truncated shard.
std::string commit_name(const std::string& name) {
  return "ckpt/" + name + "/commit";
}

}  // namespace

void save_container(simmpi::Context& ctx, const KVContainer& kvc,
                    const std::string& name, bool write_behind) {
  const stats::PhaseScope phase("checkpoint_save");
  inject::phase_point("checkpoint_save");
  if (stats::Registry* reg = stats::current()) {
    reg->add("checkpoint.bytes_written",
             sizeof(ShardHeader) + kvc.data_bytes());
    reg->add("checkpoint.saves", 1);
  }
  ShardHeader header{};
  header.magic = kMagic;
  header.key_len = kvc.codec().hint().key_len;
  header.value_len = kvc.codec().hint().value_len;
  header.num_kvs = kvc.num_kvs();
  header.data_bytes = kvc.data_bytes();
  header.ranks = ctx.size();
  header.reserved = 0;

  pfs::Writer writer = ctx.fs.create(shard_name(name, ctx.rank()));
  // Write-behind: shard chunks mutate the file at enqueue; their
  // charges drain at behind.flush() below, before the commit barrier.
  pfs::AsyncWriter behind(write_behind);
  // Re-encode each KV through a staging buffer flushed in large chunks:
  // going record-by-record keeps the format independent of page size,
  // but issuing one PFS op per record would charge the PFS latency (and
  // expose one fault-injection point) per KV instead of per few hundred
  // KB, which is not how any real checkpoint writer behaves.
  constexpr std::size_t kFlushBytes = 256 << 10;
  std::vector<std::byte> staged;
  staged.reserve(kFlushBytes);
  const auto* header_bytes = reinterpret_cast<const std::byte*>(&header);
  staged.insert(staged.end(), header_bytes, header_bytes + sizeof(header));
  const KVCodec& codec = kvc.codec();
  kvc.scan([&](const KVView& kv) {
    const std::size_t bytes = codec.encoded_size(kv.key, kv.value);
    const std::size_t old = staged.size();
    staged.resize(old + bytes);
    codec.encode(staged.data() + old, kv.key, kv.value);
    if (staged.size() >= kFlushBytes) {
      behind.write(writer, staged, ctx.clock());
      staged.clear();
    }
  });
  if (!staged.empty()) behind.write(writer, staged, ctx.clock());
  // Drain before the commit protocol: the barrier below must only be
  // reached once this rank's shard charges (or fault) have landed.
  behind.flush(ctx.clock());
  ctx.comm.barrier();  // checkpoint is complete only when everyone wrote
  if (ctx.rank() == 0) {
    ctx.fs.write_file(commit_name(name), std::string_view("ok"),
                      ctx.clock());
  }
  ctx.comm.barrier();  // ...and the commit marker is visible everywhere
}

bool checkpoint_exists(simmpi::Context& ctx, const std::string& name) {
  const bool mine = ctx.fs.exists(shard_name(name, ctx.rank())) &&
                    ctx.fs.exists(commit_name(name));
  return ctx.comm.allreduce_land(mine);
}

KVContainer load_container(simmpi::Context& ctx, const std::string& name,
                           std::uint64_t page_size) {
  const stats::PhaseScope phase("checkpoint_load");
  inject::phase_point("checkpoint_load");
  // Pages restored here belong to the checkpoint component unless an
  // enclosing component (e.g. the scheduler's handoff) claimed them.
  const memtrack::TagScope tag("checkpoint",
                               memtrack::TagScope::Mode::kFallback);
  pfs::Reader reader = ctx.fs.open(shard_name(name, ctx.rank()));
  ShardHeader header{};
  std::byte raw[sizeof(header)];
  if (reader.read(raw, ctx.clock()) != sizeof(header)) {
    throw mutil::IoError("checkpoint '" + name + "': truncated header");
  }
  std::memcpy(&header, raw, sizeof(header));
  if (header.magic != kMagic) {
    throw mutil::IoError("checkpoint '" + name + "': bad magic");
  }
  if (header.ranks != ctx.size()) {
    throw mutil::IoError(
        "checkpoint '" + name + "': saved with " +
        std::to_string(header.ranks) + " ranks, loading with " +
        std::to_string(ctx.size()) +
        " (shards are partitioned by the saving world's key hash)");
  }

  KVContainer kvc(ctx.tracker, page_size,
                  KVHint{header.key_len, header.value_len});
  const std::vector<std::byte> body = reader.read_all(ctx.clock());
  if (body.size() != header.data_bytes) {
    throw mutil::IoError("checkpoint '" + name + "': truncated data");
  }
  kvc.append_encoded(body);
  if (kvc.num_kvs() != header.num_kvs) {
    throw mutil::IoError("checkpoint '" + name + "': KV count mismatch");
  }
  if (stats::Registry* reg = stats::current()) {
    reg->add("checkpoint.bytes_read", sizeof(header) + body.size());
    reg->add("checkpoint.loads", 1);
  }
  return kvc;
}

void remove_checkpoint(simmpi::Context& ctx, const std::string& name) {
  // Agree that every rank is done with the checkpoint before touching
  // it: phases after the save can be rank-local, so without this fence a
  // surviving rank could delete the marker and then discover (at the
  // next barrier) that a peer died mid-phase — destroying exactly the
  // checkpoint the retry needs. If anyone failed, this barrier throws
  // on all ranks before any deletion happens.
  ctx.comm.barrier();
  // Drop the commit marker first so a checkpoint never looks valid
  // while its shards are being deleted.
  if (ctx.rank() == 0) ctx.fs.remove(commit_name(name));
  ctx.comm.barrier();
  ctx.fs.remove(shard_name(name, ctx.rank()));
  ctx.comm.barrier();
}

void checkpoint_job(Job& job, const std::string& name) {
  save_container(job.context(), job.intermediate(), name,
                 job.config().prefetch);
}

Job resume_job(simmpi::Context& ctx, JobConfig cfg,
               const std::string& name) {
  KVContainer intermediate = load_container(ctx, name, cfg.page_size);
  cfg.hint = intermediate.codec().hint();  // the checkpoint's hint wins
  return Job::resumed(ctx, cfg, std::move(intermediate));
}

}  // namespace mimir
