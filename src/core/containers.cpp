#include "mimir/containers.hpp"

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "mutil/error.hpp"

namespace mimir {

// --- KVContainer ---------------------------------------------------------

KVContainer::KVContainer(memtrack::Tracker& tracker, std::uint64_t page_size,
                         KVHint hint)
    : tracker_(&tracker), page_size_(page_size), codec_(hint) {
  if (page_size == 0) {
    throw mutil::ConfigError("KVContainer: page size must be positive");
  }
}

KVContainer::~KVContainer() { drop_spill_file(); }

KVContainer::KVContainer(KVContainer&& other) noexcept
    : tracker_(other.tracker_),
      page_size_(other.page_size_),
      codec_(other.codec_),
      pages_(std::move(other.pages_)),
      num_kvs_(std::exchange(other.num_kvs_, 0)),
      data_bytes_(std::exchange(other.data_bytes_, 0)),
      spill_(std::exchange(other.spill_, SpillConfig{})),
      spill_writer_(std::exchange(other.spill_writer_, pfs::AsyncWriter{})),
      spilled_bytes_(std::exchange(other.spilled_bytes_, 0)),
      segments_(std::exchange(other.segments_, 0)) {}

KVContainer& KVContainer::operator=(KVContainer&& other) noexcept {
  if (this != &other) {
    drop_spill_file();
    tracker_ = other.tracker_;
    page_size_ = other.page_size_;
    codec_ = other.codec_;
    pages_ = std::move(other.pages_);
    num_kvs_ = std::exchange(other.num_kvs_, 0);
    data_bytes_ = std::exchange(other.data_bytes_, 0);
    spill_ = std::exchange(other.spill_, SpillConfig{});
    spill_writer_ = std::exchange(other.spill_writer_, pfs::AsyncWriter{});
    spilled_bytes_ = std::exchange(other.spilled_bytes_, 0);
    segments_ = std::exchange(other.segments_, 0);
  }
  return *this;
}

void KVContainer::enable_spill(SpillConfig spill) {
  if (num_kvs_ != 0) {
    throw mutil::UsageError(
        "KVContainer: enable_spill on a non-empty container");
  }
  if (spill.enabled() && spill.file.empty()) {
    throw mutil::ConfigError("KVContainer: spill needs a file name");
  }
  spill_ = std::move(spill);
  spill_writer_ = pfs::AsyncWriter(spill_.enabled() && spill_.write_behind);
}

std::byte* KVContainer::grab(std::size_t bytes) {
  if (pages_.empty() || pages_.back().room() < bytes) {
    maybe_spill();
    // Generic container pages: attributed to the enclosing component
    // when one is active (e.g. checkpoint restore), else to "pages".
    const memtrack::TagScope tag("pages",
                                 memtrack::TagScope::Mode::kFallback);
    detail::Page page;
    page.buffer = memtrack::TrackedBuffer(
        *tracker_, std::max<std::size_t>(bytes, page_size_));
    pages_.push_back(std::move(page));
  }
  detail::Page& page = pages_.back();
  std::byte* out = page.buffer.data() + page.used;
  page.used += bytes;
  return out;
}

void KVContainer::maybe_spill() {
  if (!spill_.enabled()) return;
  // Keep the freshest pages in memory; push the oldest ones out as
  // length-prefixed, record-aligned segments.
  while (pages_.size() > 1 &&
         allocated_bytes() + page_size_ > spill_.max_live_bytes) {
    detail::Page& front = pages_.front();
    pfs::Writer writer = segments_ == 0 ? spill_.fs->create(spill_.file)
                                        : spill_.fs->append(spill_.file);
    const std::uint64_t len = front.used;
    // Routed through the write-behind queue: with spill_.write_behind
    // these mutate the file now but charge the clock at the drain
    // (stream_spilled / drop); disabled, they write synchronously.
    spill_writer_.write(
        writer,
        std::span<const std::byte>(reinterpret_cast<const std::byte*>(&len),
                                   sizeof(len)),
        *spill_.clock);
    spill_writer_.write(writer, front.contents(), *spill_.clock);
    spilled_bytes_ += len;
    ++segments_;
    pages_.pop_front();
  }
}

void KVContainer::stream_spilled(
    const std::function<void(std::span<const std::byte>)>& fn) const {
  if (segments_ == 0) return;
  // Drain pending write-behind charges before reading the segments
  // back — the read must queue behind its own data's writes.
  spill_writer_.flush(*spill_.clock);
  pfs::Reader reader = spill_.fs->open(spill_.file);
  std::vector<std::byte> segment;
  for (std::uint64_t s = 0; s < segments_; ++s) {
    std::uint64_t len = 0;
    std::byte header[sizeof(len)];
    if (reader.read(header, *spill_.clock) != sizeof(len)) {
      throw mutil::IoError("KVContainer: truncated spill file '" +
                           spill_.file + "'");
    }
    std::memcpy(&len, header, sizeof(len));
    segment.resize(len);
    if (reader.read(segment, *spill_.clock) != len) {
      throw mutil::IoError("KVContainer: truncated spill file '" +
                           spill_.file + "'");
    }
    fn(segment);
  }
}

void KVContainer::drop_spill_file() {
  // The data is deleted unread; abandon any queued charges (recorded
  // as hidden so the io accounting still closes).
  spill_writer_.discard();
  if (segments_ != 0 && spill_.fs != nullptr &&
      spill_.fs->exists(spill_.file)) {
    spill_.fs->remove(spill_.file);
  }
  segments_ = 0;
  spilled_bytes_ = 0;
}

void KVContainer::append(std::string_view key, std::string_view value) {
  const std::size_t bytes = codec_.encoded_size(key, value);
  codec_.encode(grab(bytes), key, value);
  ++num_kvs_;
  data_bytes_ += bytes;
}

void KVContainer::append_encoded(std::span<const std::byte> bytes) {
  codec_.for_each(bytes, [this](const KVView& kv) { append(kv); });
}

void KVContainer::clear() {
  drop_spill_file();
  pages_.clear();
  num_kvs_ = 0;
  data_bytes_ = 0;
}

std::uint64_t KVContainer::allocated_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& page : pages_) total += page.capacity();
  return total;
}

// --- ValueReader -----------------------------------------------------------

bool ValueReader::next(std::string_view& value) {
  if (remaining_ == 0) return false;
  const char* chars = reinterpret_cast<const char*>(cursor_);
  if (value_hint_ == KVHint::kVariable) {
    std::uint32_t len = 0;
    std::memcpy(&len, cursor_, 4);
    value = std::string_view(chars + 4, len);
    cursor_ += 4 + len;
  } else if (value_hint_ == KVHint::kString) {
    value = std::string_view(chars);
    cursor_ += value.size() + 1;
  } else {
    value = std::string_view(chars, static_cast<std::size_t>(value_hint_));
    cursor_ += value_hint_;
  }
  --remaining_;
  return true;
}

// --- KMVContainer ----------------------------------------------------------

KMVContainer::KMVContainer(memtrack::Tracker& tracker,
                           std::uint64_t page_size, KVHint hint)
    : tracker_(&tracker), page_size_(page_size), hint_(hint) {
  if (page_size == 0) {
    throw mutil::ConfigError("KMVContainer: page size must be positive");
  }
}

std::size_t KMVContainer::record_size(std::string_view key,
                                      std::uint32_t value_count,
                                      std::uint64_t values_total) const {
  std::size_t size = 8;  // value_count + values_section
  if (hint_.key_is_variable()) size += 4;
  size += key.size();
  if (hint_.key_len == KVHint::kString) size += 1;
  size += values_total;
  if (hint_.value_is_variable()) {
    size += 4ull * value_count;
  } else if (hint_.value_len == KVHint::kString) {
    size += value_count;  // one NUL per value
  }
  return size;
}

KMVContainer::Slot KMVContainer::reserve(std::string_view key,
                                         std::uint32_t value_count,
                                         std::uint64_t values_total) {
  if (!hint_.key_is_variable() && hint_.key_len != KVHint::kString &&
      key.size() != static_cast<std::size_t>(hint_.key_len)) {
    throw mutil::UsageError("KMVContainer: key violates fixed-length hint");
  }
  const std::size_t bytes = record_size(key, value_count, values_total);
  std::uint32_t values_section = static_cast<std::uint32_t>(values_total);
  if (hint_.value_is_variable()) {
    values_section += 4u * value_count;
  } else if (hint_.value_len == KVHint::kString) {
    values_section += value_count;
  }

  if (pages_.empty() || pages_.back().room() < bytes) {
    const memtrack::TagScope tag("pages",
                                 memtrack::TagScope::Mode::kFallback);
    detail::Page page;
    page.buffer = memtrack::TrackedBuffer(
        *tracker_, std::max<std::size_t>(bytes, page_size_));
    pages_.push_back(std::move(page));
  }
  detail::Page& page = pages_.back();
  Slot slot;
  slot.page = static_cast<std::uint32_t>(pages_.size() - 1);
  slot.record_offset = static_cast<std::uint32_t>(page.used);

  std::byte* p = page.buffer.data() + page.used;
  std::byte* cursor = p;
  if (hint_.key_is_variable()) {
    const auto len = static_cast<std::uint32_t>(key.size());
    std::memcpy(cursor, &len, 4);
    cursor += 4;
  }
  std::memcpy(cursor, &value_count, 4);
  cursor += 4;
  std::memcpy(cursor, &values_section, 4);
  cursor += 4;
  std::memcpy(cursor, key.data(), key.size());
  cursor += key.size();
  if (hint_.key_len == KVHint::kString) {
    *cursor = std::byte{0};
    ++cursor;
  }
  slot.value_cursor = static_cast<std::uint32_t>(cursor - page.buffer.data());

  page.used += bytes;
  ++num_kmvs_;
  data_bytes_ += bytes;
  return slot;
}

void KMVContainer::add_value(Slot& slot, std::string_view value) {
  if (!hint_.value_is_variable() && hint_.value_len != KVHint::kString &&
      value.size() != static_cast<std::size_t>(hint_.value_len)) {
    throw mutil::UsageError(
        "KMVContainer: value violates fixed-length hint");
  }
  std::byte* base = page_data(slot.page);
  std::byte* cursor = base + slot.value_cursor;
  if (hint_.value_is_variable()) {
    const auto len = static_cast<std::uint32_t>(value.size());
    std::memcpy(cursor, &len, 4);
    cursor += 4;
  }
  std::memcpy(cursor, value.data(), value.size());
  cursor += value.size();
  if (hint_.value_len == KVHint::kString) {
    *cursor = std::byte{0};
    ++cursor;
  }
  slot.value_cursor = static_cast<std::uint32_t>(cursor - base);
}

std::string_view KMVContainer::key_of(const Slot& slot) const {
  const std::byte* p = page_data(slot.page) + slot.record_offset;
  std::uint32_t key_len = 0;
  if (hint_.key_is_variable()) {
    std::memcpy(&key_len, p, 4);
    p += 4;
  }
  p += 8;  // value_count + values_section
  const char* chars = reinterpret_cast<const char*>(p);
  if (hint_.key_len == KVHint::kString) return std::string_view(chars);
  if (hint_.key_is_variable()) return {chars, key_len};
  return {chars, static_cast<std::size_t>(hint_.key_len)};
}

std::byte* KMVContainer::page_data(std::uint32_t page) noexcept {
  return pages_[page].buffer.data();
}
const std::byte* KMVContainer::page_data(std::uint32_t page) const noexcept {
  return pages_[page].buffer.data();
}

void KMVContainer::clear() {
  pages_.clear();
  num_kmvs_ = 0;
  data_bytes_ = 0;
}

std::uint64_t KMVContainer::allocated_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& page : pages_) total += page.capacity();
  return total;
}

}  // namespace mimir
