#include "mimir/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>

#include "check/checker.hpp"
#include "mimir/checkpoint.hpp"
#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "stats/registry.hpp"

namespace mimir {

RecoveryPolicy RecoveryPolicy::from(const mutil::Config& cfg) {
  RecoveryPolicy policy;
  policy.max_attempts = static_cast<int>(
      cfg.get_int("mimir.recovery.max_attempts", policy.max_attempts));
  policy.backoff_base =
      cfg.get_double("mimir.recovery.backoff_base", policy.backoff_base);
  policy.backoff_factor =
      cfg.get_double("mimir.recovery.backoff_factor", policy.backoff_factor);
  policy.degrade_on_oom =
      cfg.get_bool("mimir.recovery.degrade_on_oom", policy.degrade_on_oom);
  policy.checkpoint =
      cfg.get_string("mimir.recovery.checkpoint", policy.checkpoint);
  policy.keep_checkpoint =
      cfg.get_bool("mimir.recovery.keep_checkpoint", policy.keep_checkpoint);
  if (policy.max_attempts < 1) {
    throw mutil::ConfigError("mimir.recovery.max_attempts must be >= 1");
  }
  if (policy.backoff_base < 0.0 || policy.backoff_factor < 1.0) {
    throw mutil::ConfigError(
        "mimir.recovery: backoff_base must be >= 0 and backoff_factor "
        "must be >= 1");
  }
  return policy;
}

RecoveryOutcome run_with_recovery(int nranks,
                                  const simtime::MachineProfile& machine,
                                  pfs::FileSystem& fs,
                                  const RecoveryJob& jobspec,
                                  const RecoveryPolicy& policy,
                                  const inject::FaultPlan* plan,
                                  stats::Collector* collector,
                                  check::JobChecker* checker) {
  if (!jobspec.map) {
    throw mutil::UsageError("run_with_recovery: jobspec.map is required");
  }

  RecoveryOutcome out;
  JobConfig cfg = jobspec.config;
  // Every rank starts attempt k with its clock advanced by the
  // accumulated offset (previous failure time + backoff), so the
  // successful attempt's JobStats.sim_time is the total simulated
  // time-to-completion including the failed attempts.
  double start_offset = 0.0;
  std::atomic<bool> resumed_any{false};

  const auto diag = [&](check::Severity severity, std::string code,
                        std::string message, int failed_rank,
                        double failed_time) {
    if (checker == nullptr) return;
    check::Diagnostic d;
    d.severity = severity;
    d.analyzer = "recovery";
    d.code = std::move(code);
    d.message = std::move(message);
    if (failed_rank >= 0) d.ranks = {failed_rank};
    d.sim_time = failed_time;
    checker->report().add(std::move(d));
  };

  for (int attempt = 1;; ++attempt) {
    AttemptRecord rec;
    rec.attempt = attempt;
    rec.live_budget = cfg.ooc_live_bytes;

    std::exception_ptr failure;
    bool oom = false;
    try {
      out.stats = simmpi::run(
          nranks, machine, fs,
          [&](simmpi::Context& ctx) {
            std::optional<inject::Injector> injector;
            std::optional<inject::ScopedInject> scope;
            if (plan != nullptr && !plan->empty()) {
              injector.emplace(*plan, ctx.rank(), attempt);
              injector->bind(&ctx.clock(), &ctx.tracker);
              injector->set_topology(machine.ranks_per_node);
              scope.emplace(&*injector);
            }
            if (start_offset > 0.0) ctx.clock().advance(start_offset);

            const bool resume =
                attempt > 1 && checkpoint_exists(ctx, policy.checkpoint);
            if (resume) {
              resumed_any.store(true, std::memory_order_relaxed);
            }
            Job job = [&]() -> Job {
              if (resume) return resume_job(ctx, cfg, policy.checkpoint);
              Job fresh(ctx, cfg);
              jobspec.map(fresh);
              checkpoint_job(fresh, policy.checkpoint);
              return fresh;
            }();
            if (jobspec.finish) jobspec.finish(job);
            if (!policy.keep_checkpoint) {
              remove_checkpoint(ctx, policy.checkpoint);
            }
            if (stats::Registry* reg = stats::current()) {
              reg->add("recovery.attempts",
                       static_cast<std::uint64_t>(attempt));
              if (resume) reg->add("recovery.resumed", 1);
              if (out.degraded) reg->add("recovery.degraded", 1);
              reg->add_seconds("recovery.backoff_seconds",
                               out.total_backoff);
            }
          },
          collector, checker);
      rec.ok = true;
      out.history.push_back(rec);
      out.attempts = attempt;
      out.resumed = resumed_any.load(std::memory_order_relaxed);
      return out;
    } catch (const mutil::UsageError&) {
      throw;  // caller bug, not a fault — never retried
    } catch (const mutil::ConfigError&) {
      throw;
    } catch (const mutil::OutOfMemoryError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      oom = true;
    } catch (const mutil::RankFailedError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      rec.failed_rank = e.rank();
      rec.failed_time = e.sim_time();
    } catch (const mutil::TransientIoError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      rec.failed_time = e.sim_time();
    }

    if (oom) {
      // Graceful degradation: restart with out-of-core spill enabled and
      // the live-bytes budget halved. The starting budget is either the
      // configured one or this rank's share of the node memory; at one
      // page the job genuinely does not fit and the OOM is final.
      std::uint64_t base = cfg.ooc_live_bytes;
      if (base == 0 && machine.node_memory != 0) {
        base = machine.node_memory /
               static_cast<std::uint64_t>(std::max(1, machine.ranks_per_node));
      }
      const std::uint64_t next = base / 2;
      if (!policy.degrade_on_oom || next < cfg.page_size) {
        out.history.push_back(rec);
        std::rethrow_exception(failure);
      }
      cfg.ooc_live_bytes = next;
      out.degraded = true;
      out.degraded_live_bytes = next;
      diag(check::Severity::kWarning, "oom-degraded",
           "attempt " + std::to_string(attempt) +
               " ran out of memory; retrying with ooc_live_bytes=" +
               std::to_string(next),
           -1, rec.failed_time);
    }

    if (attempt >= policy.max_attempts) {
      out.history.push_back(rec);
      out.attempts = attempt;
      diag(check::Severity::kError, "retries-exhausted",
           "giving up after " + std::to_string(attempt) +
               " attempts: " + rec.error,
           rec.failed_rank, rec.failed_time);
      std::rethrow_exception(failure);
    }

    const double backoff =
        policy.backoff_base *
        std::pow(policy.backoff_factor, static_cast<double>(attempt - 1));
    rec.backoff = backoff;
    out.total_backoff += backoff;
    start_offset = std::max(start_offset, rec.failed_time) + backoff;
    out.history.push_back(rec);
    diag(check::Severity::kWarning, "attempt-failed",
         "attempt " + std::to_string(attempt) + " failed (" + rec.error +
             "); retrying after " + std::to_string(backoff) +
             "s simulated backoff",
         rec.failed_rank, rec.failed_time);
  }
}

}  // namespace mimir
