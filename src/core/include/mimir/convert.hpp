// Two-pass KV -> KMV conversion (paper §III-A, Figure 5).
//
// Pass 1 scans the aggregated KVs and gathers, per unique key, the value
// count and total value bytes in a hash bucket; that is enough to
// reserve every KMV record at its final position in the KMV container.
// Pass 2 re-reads the KVs and copies each value into its reserved slot.
// Pass 2 *consumes* the source container, so its pages are freed as the
// KMVC fills — the transient peak is what the paper's partial-reduction
// optimization exists to avoid.
#pragma once

#include <cstdint>

#include "mimir/containers.hpp"
#include "simmpi/runtime.hpp"

namespace mimir {

struct ConvertStats {
  std::uint64_t input_kvs = 0;
  std::uint64_t unique_keys = 0;
  std::uint64_t kmv_bytes = 0;
};

/// Convert `input` (consumed) into a KMV container with the same hint.
/// Charges reduce-phase compute cost to the rank's clock.
KMVContainer convert(simmpi::Context& ctx, KVContainer& input,
                     std::uint64_t page_size, ConvertStats* stats = nullptr);

}  // namespace mimir
