// Paged KV and KMV containers (the paper's KVC / KMVC objects, §III).
//
// Unlike MR-MPI's statically pre-allocated pages, these containers grow
// one fixed-size page at a time as data is inserted and — crucially —
// free pages as data is consumed, so peak memory tracks live data rather
// than a per-phase worst case. Every page is charged to the rank's
// memory Tracker, which is how the benchmark's peak-usage curves see
// them. A record never straddles a page boundary; a record larger than
// the configured page size gets a dedicated oversized page.
#pragma once

#include <cstdint>
#include <functional>
#include <deque>
#include <span>
#include <string>
#include <string_view>

#include "memtrack/tracker.hpp"
#include "mimir/kv.hpp"
#include "pfs/async.hpp"
#include "pfs/filesystem.hpp"

namespace mimir {

namespace detail {

/// One data page: a tracked buffer plus a fill cursor.
struct Page {
  memtrack::TrackedBuffer buffer;
  std::size_t used = 0;

  std::size_t capacity() const noexcept { return buffer.size(); }
  std::size_t room() const noexcept { return buffer.size() - used; }
  std::span<const std::byte> contents() const noexcept {
    return buffer.span().subspan(0, used);
  }
};

}  // namespace detail

/// Out-of-core backend for a KVContainer (extension; the original Mimir
/// gained this ability in follow-up work). When the container's live
/// pages exceed `max_live_bytes`, the oldest full pages are written as
/// record-aligned segments to the parallel file system and freed;
/// scans/consumes stream them back at PFS cost. 0 = never spill.
struct SpillConfig {
  pfs::FileSystem* fs = nullptr;
  simtime::Clock* clock = nullptr;
  std::string file;
  std::uint64_t max_live_bytes = 0;
  /// Write-behind spill (mimir.prefetch): segment writes mutate the
  /// file at enqueue but their clock charges drain when the container
  /// is next streamed (or as hidden cost if the file is dropped
  /// unread). File bytes are bit-identical either way.
  bool write_behind = false;

  bool enabled() const noexcept {
    return fs != nullptr && max_live_bytes != 0;
  }
};

/// Container of encoded KVs in insertion order.
class KVContainer {
 public:
  KVContainer(memtrack::Tracker& tracker, std::uint64_t page_size,
              KVHint hint = {});
  ~KVContainer();

  KVContainer(KVContainer&& other) noexcept;
  KVContainer& operator=(KVContainer&& other) noexcept;
  KVContainer(const KVContainer&) = delete;
  KVContainer& operator=(const KVContainer&) = delete;

  const KVCodec& codec() const noexcept { return codec_; }
  std::uint64_t page_size() const noexcept { return page_size_; }

  /// Turn on out-of-core spilling (must be set before data arrives).
  void enable_spill(SpillConfig spill);
  bool spilled() const noexcept { return spilled_bytes_ != 0; }
  std::uint64_t spilled_bytes() const noexcept { return spilled_bytes_; }

  /// Append one KV (encodes into the last page, growing as needed).
  void append(std::string_view key, std::string_view value);
  void append(const KVView& kv) { append(kv.key, kv.value); }

  /// Append every KV of an encoded byte region (e.g. a receive buffer).
  /// Records are re-packed so none straddles a page boundary.
  void append_encoded(std::span<const std::byte> bytes);

  /// Visit every KV without consuming. Spilled segments are re-read
  /// from the PFS (at full cost) on every scan; views passed to `fn`
  /// are valid only for the duration of the callback when the
  /// container has spilled.
  template <typename Fn>
  void scan(Fn&& fn) const {
    stream_spilled(
        [&](std::span<const std::byte> segment) {
          codec_.for_each(segment, fn);
        });
    for (const auto& page : pages_) {
      codec_.for_each(page.contents(), fn);
    }
  }

  /// Visit every KV, freeing each page right after it is processed;
  /// the container is empty afterwards. This is the "memory returns as
  /// data is consumed" behaviour the paper's KVC provides. Spilled
  /// segments are streamed first and their file is deleted.
  template <typename Fn>
  void consume(Fn&& fn) {
    stream_spilled(
        [&](std::span<const std::byte> segment) {
          codec_.for_each(segment, fn);
        });
    drop_spill_file();
    while (!pages_.empty()) {
      codec_.for_each(pages_.front().contents(), fn);
      pages_.pop_front();  // releases the tracked buffer
    }
    num_kvs_ = 0;
    data_bytes_ = 0;
    spilled_bytes_ = 0;
    segments_ = 0;
  }

  void clear();

  std::uint64_t num_kvs() const noexcept { return num_kvs_; }
  /// Encoded payload bytes currently held.
  std::uint64_t data_bytes() const noexcept { return data_bytes_; }
  /// Bytes of page memory currently allocated (>= data_bytes).
  std::uint64_t allocated_bytes() const noexcept;
  std::size_t num_pages() const noexcept { return pages_.size(); }
  bool empty() const noexcept { return num_kvs_ == 0; }

 private:
  std::byte* grab(std::size_t bytes);
  /// Push the oldest full pages out to the spill file until the live
  /// footprint fits the configured bound.
  void maybe_spill();
  /// Stream every spilled segment (record-aligned) through `fn`.
  void stream_spilled(
      const std::function<void(std::span<const std::byte>)>& fn) const;
  void drop_spill_file();

  memtrack::Tracker* tracker_;
  std::uint64_t page_size_;
  KVCodec codec_;
  std::deque<detail::Page> pages_;
  std::uint64_t num_kvs_ = 0;
  std::uint64_t data_bytes_ = 0;

  SpillConfig spill_;
  /// Write-behind queue for spill segments. Mutable because the const
  /// scan path must drain it before streaming segments back — it holds
  /// timing/accounting state only, never data (the file mutates at
  /// enqueue), so const-ness of the data is preserved.
  mutable pfs::AsyncWriter spill_writer_;
  std::uint64_t spilled_bytes_ = 0;
  std::uint64_t segments_ = 0;
};

/// Sequential reader over one KMV record's value list.
class ValueReader {
 public:
  ValueReader(const std::byte* values, std::uint32_t count,
              std::int32_t value_hint)
      : cursor_(values), remaining_(count), count_(count),
        begin_(values), value_hint_(value_hint) {}

  std::uint32_t count() const noexcept { return count_; }

  /// Fetch the next value; returns false when exhausted.
  bool next(std::string_view& value);

  /// Restart iteration from the first value.
  void rewind() noexcept {
    cursor_ = begin_;
    remaining_ = count_;
  }

 private:
  const std::byte* cursor_;
  std::uint32_t remaining_;
  std::uint32_t count_;
  const std::byte* begin_;
  std::int32_t value_hint_;
};

/// Container of KMV records (key + list of values), built by the
/// two-pass convert phase: pass 1 reserves fully-sized records, pass 2
/// fills values in place.
class KMVContainer {
 public:
  KMVContainer(memtrack::Tracker& tracker, std::uint64_t page_size,
               KVHint hint = {});

  KMVContainer(KMVContainer&&) noexcept = default;
  KMVContainer& operator=(KMVContainer&&) noexcept = default;
  KMVContainer(const KMVContainer&) = delete;
  KMVContainer& operator=(const KMVContainer&) = delete;

  /// Opaque handle to a reserved record, used to append values.
  struct Slot {
    std::uint32_t page = 0;
    std::uint32_t record_offset = 0;
    std::uint32_t value_cursor = 0;  ///< offset of next value write
  };

  /// Reserve a record for `key` with `value_count` values whose raw
  /// lengths sum to `values_total`. Writes header + key immediately.
  Slot reserve(std::string_view key, std::uint32_t value_count,
               std::uint64_t values_total);

  /// Append the next value into a reserved record.
  void add_value(Slot& slot, std::string_view value);

  /// Read the key stored in a reserved record (stable storage).
  std::string_view key_of(const Slot& slot) const;

  /// Visit every record: fn(std::string_view key, ValueReader&).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& page : pages_) {
      walk_page(page, fn);
    }
  }

  /// Like for_each but frees each page after processing (paper: reduce
  /// consumes the KMVC progressively).
  template <typename Fn>
  void consume(Fn&& fn) {
    while (!pages_.empty()) {
      walk_page(pages_.front(), fn);
      pages_.pop_front();
    }
    num_kmvs_ = 0;
    data_bytes_ = 0;
  }

  void clear();

  std::uint64_t num_kmvs() const noexcept { return num_kmvs_; }
  std::uint64_t data_bytes() const noexcept { return data_bytes_; }
  std::uint64_t allocated_bytes() const noexcept;
  bool empty() const noexcept { return num_kmvs_ == 0; }

 private:
  template <typename Fn>
  void walk_page(const detail::Page& page, Fn&& fn) const {
    std::size_t offset = 0;
    const std::span<const std::byte> bytes = page.contents();
    while (offset < bytes.size()) {
      std::size_t consumed = 0;
      decode_record(bytes.data() + offset, &consumed, fn);
      offset += consumed;
    }
  }

  template <typename Fn>
  void decode_record(const std::byte* p, std::size_t* consumed,
                     Fn&& fn) const;

  /// Size of the encoded record.
  std::size_t record_size(std::string_view key, std::uint32_t value_count,
                          std::uint64_t values_total) const;

  std::byte* page_data(std::uint32_t page) noexcept;
  const std::byte* page_data(std::uint32_t page) const noexcept;

  memtrack::Tracker* tracker_;
  std::uint64_t page_size_;
  KVHint hint_;
  std::deque<detail::Page> pages_;
  std::uint64_t num_kmvs_ = 0;
  std::uint64_t data_bytes_ = 0;
};

// --- KMVContainer inline template bodies --------------------------------

template <typename Fn>
void KMVContainer::decode_record(const std::byte* p, std::size_t* consumed,
                                 Fn&& fn) const {
  const std::byte* cursor = p;
  std::uint32_t key_len = 0;
  if (hint_.key_is_variable()) {
    std::memcpy(&key_len, cursor, 4);
    cursor += 4;
  }
  std::uint32_t value_count = 0;
  std::memcpy(&value_count, cursor, 4);
  cursor += 4;
  std::uint32_t values_section = 0;
  std::memcpy(&values_section, cursor, 4);
  cursor += 4;

  std::string_view key;
  if (hint_.key_len == KVHint::kString) {
    const char* chars = reinterpret_cast<const char*>(cursor);
    key = std::string_view(chars);
    cursor += key.size() + 1;
  } else if (hint_.key_is_variable()) {
    key = std::string_view(reinterpret_cast<const char*>(cursor), key_len);
    cursor += key_len;
  } else {
    key = std::string_view(reinterpret_cast<const char*>(cursor),
                           static_cast<std::size_t>(hint_.key_len));
    cursor += hint_.key_len;
  }

  ValueReader reader(cursor, value_count, hint_.value_len);
  fn(key, reader);
  cursor += values_section;
  *consumed = static_cast<std::size_t>(cursor - p);
}

}  // namespace mimir
