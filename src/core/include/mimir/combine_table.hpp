// Combiner hash bucket (paper §III-C1 partial-reduction and §III-C2 KV
// compression).
//
// Both optional optimizations share one mechanism: a hash bucket of
// unique keys whose entry is combined with each incoming duplicate via a
// user callback. Partial reduction applies it *after* the shuffle (in
// place of convert+reduce); KV compression applies it *before* the
// shuffle (shrinking communication). The difference is purely where the
// Job wires it in.
//
// Entries live in a paged arena. When combining changes the value size,
// the record is rewritten at the arena tail and the old record becomes
// garbage — the paper's observation that KV compression "uses extra
// buffers" and only pays off above a compression-ratio threshold shows
// up here as dead_bytes.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "memtrack/tracker.hpp"
#include "mimir/containers.hpp"
#include "mimir/kv.hpp"

namespace mimir {

/// User combiner: reduce (key, a, b) into `out` (a reused scratch
/// string). Must be associative and commutative for correct results —
/// Mimir cannot verify this, which is why the paper makes these
/// optimizations opt-in.
using CombineFn = std::function<void(
    std::string_view key, std::string_view a, std::string_view b,
    std::string& out)>;

class CombineTable {
 public:
  CombineTable(memtrack::Tracker& tracker, std::uint64_t page_size,
               KVHint hint, CombineFn combiner);

  CombineTable(CombineTable&&) noexcept = default;
  CombineTable(const CombineTable&) = delete;
  CombineTable& operator=(const CombineTable&) = delete;

  /// Insert a KV, combining with an existing entry for the same key.
  void upsert(std::string_view key, std::string_view value);

  /// Visit every live (combined) KV.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const Entry* entries =
        reinterpret_cast<const Entry*>(slots_.data());
    for (std::uint64_t i = 0; i < slot_count_; ++i) {
      if (entries[i].occupied()) {
        std::size_t consumed = 0;
        fn(codec_.decode(record_ptr(entries[i]), &consumed));
      }
    }
  }

  /// Drop all entries and arena pages.
  void clear();

  std::uint64_t size() const noexcept { return live_entries_; }
  bool empty() const noexcept { return live_entries_ == 0; }
  /// Encoded bytes of live entries.
  std::uint64_t live_bytes() const noexcept { return live_bytes_; }
  /// Garbage left behind by size-changing combines. Bounded: once dead
  /// bytes exceed live bytes (and at least one page), the arena is
  /// compacted, so the bucket's footprint stays proportional to its
  /// live contents no matter how many values change size.
  std::uint64_t dead_bytes() const noexcept { return dead_bytes_; }
  /// KVs that were merged away (inputs - live entries).
  std::uint64_t combined_kvs() const noexcept { return combined_kvs_; }
  /// Arena compactions performed so far.
  std::uint64_t compactions() const noexcept { return compactions_; }
  /// Bytes currently held by arena pages (live + dead + page slack).
  std::uint64_t arena_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& page : arena_) total += page.buffer.size();
    return total;
  }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint32_t page = kEmpty;
    std::uint32_t offset = 0;

    static constexpr std::uint32_t kEmpty = 0xffffffffu;
    bool occupied() const noexcept { return page != kEmpty; }
  };

  const std::byte* record_ptr(const Entry& e) const noexcept {
    return arena_[e.page].buffer.data() + e.offset;
  }

  Entry* find_slot(std::uint64_t hash, std::string_view key);
  void grow();
  void compact();
  Entry append_record(std::uint64_t hash, std::string_view key,
                      std::string_view value);

  memtrack::Tracker* tracker_;
  std::uint64_t page_size_;
  KVCodec codec_;
  CombineFn combiner_;

  memtrack::TrackedBuffer slots_;
  std::uint64_t slot_count_ = 0;
  std::uint64_t live_entries_ = 0;

  std::deque<detail::Page> arena_;
  std::uint64_t live_bytes_ = 0;
  std::uint64_t dead_bytes_ = 0;
  std::uint64_t combined_kvs_ = 0;
  std::uint64_t compactions_ = 0;
  std::string scratch_;
};

}  // namespace mimir
