// Mimir public API: a MapReduce job over the simmpi substrate.
//
// Usage mirrors the paper's programming model. The user supplies a map
// callback and a reduce callback; aggregate (shuffle) and convert are
// implicit phases run by the library:
//
//   mimir::Job job(ctx, cfg);
//   job.map_text_files(files, [](std::string_view chunk, Emitter& out) {
//     for (word : split(chunk)) out.emit(word, one);
//   });
//   job.reduce([](std::string_view key, ValueReader& vals, Emitter& out) {
//     ... out.emit(key, total);
//   });
//
// Optional optimizations (paper §III-C) are selected via JobConfig and
// the callbacks passed:
//   * KV-hint          — cfg.hint (fixed/string key and value lengths)
//   * KV compression   — cfg.kv_compression + a combiner on the map call
//   * partial reduction— call partial_reduce(combiner) instead of
//                        reduce(fn)
//
// Input sources (paper §III-A): text files on the parallel file system
// (map_text_files), KVs from a previous job for multistage/iterative
// pipelines (map_kvs), and arbitrary in-situ producers (map_custom).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "balance/balancer.hpp"
#include "mimir/combine_table.hpp"
#include "mimir/containers.hpp"
#include "mimir/kv.hpp"
#include "mimir/shuffle.hpp"
#include "mutil/config.hpp"
#include "simmpi/runtime.hpp"

namespace mimir {

/// Sink for KVs produced by map and reduce callbacks.
class Emitter {
 public:
  virtual void emit(std::string_view key, std::string_view value) = 0;
  void emit(std::string_view key, std::uint64_t value) {
    emit(key, as_view(value));
  }

 protected:
  ~Emitter() = default;
};

using MapRecordFn = std::function<void(std::string_view record, Emitter&)>;
using MapKvFn = std::function<void(std::string_view key,
                                   std::string_view value, Emitter&)>;
using CustomMapFn = std::function<void(Emitter&)>;
using ReduceFn =
    std::function<void(std::string_view key, ValueReader&, Emitter&)>;

/// Job-level configuration (sizes follow the repository's 1/1024 scale:
/// the paper's 64 MB default page becomes 64 KB here).
struct JobConfig {
  std::uint64_t page_size = 64 << 10;    ///< KVC/KMVC page unit
  std::uint64_t comm_buffer = 64 << 10;  ///< send buffer (recv matches)
  KVHint hint{};                         ///< KV-hint optimization
  /// Hint for the reduce-output container when it differs from the
  /// intermediate data's (hints are per-container, paper §III-C3) —
  /// e.g. fixed-size intermediate values reduced into variable-length
  /// postings lists. Unset = same as `hint`.
  std::optional<KVHint> output_hint{};
  bool kv_compression = false;           ///< cps: combine before shuffle
  /// Pipelined KV compression (extension; paper §III-C2 lists the
  /// delayed aggregate as a shortcoming "to improve in a future
  /// version"): when nonzero, the combiner bucket is flushed into the
  /// shuffle whenever its live bytes reach this bound, so compression
  /// memory stays bounded and communication overlaps the map phase.
  /// 0 keeps the paper's behaviour (flush only after the whole input).
  std::uint64_t cps_max_bucket = 0;
  /// Out-of-core intermediate data (extension; added to the original
  /// Mimir in follow-up work). When nonzero, the aggregated intermediate
  /// container keeps at most this many live bytes per rank and spills
  /// the rest to the parallel file system; reduce/partial_reduce stream
  /// it back at PFS cost. 0 = in-memory only (the paper's behaviour:
  /// exceeding the node budget throws OutOfMemoryError). Note: the
  /// reduce() path still materializes grouped KMVs in memory; the
  /// partial_reduce() path streams end to end.
  std::uint64_t ooc_live_bytes = 0;
  std::uint64_t input_chunk = 64 << 10;  ///< text-file read granularity
  /// Overlapped shuffle (extension): double-buffer the send side and
  /// run exchange rounds on non-blocking collectives, so round k's
  /// communication hides under round k+1's map compute. Charges one
  /// extra send buffer. Results are bit-identical with overlap on or
  /// off; only the wait/overlap time attribution changes.
  bool overlap = false;
  /// Asynchronous I/O pipeline (extension, src/pfs/async.hpp):
  /// read-ahead on text-file map input (chunk k maps while chunk k+1
  /// is in flight) and write-behind on checkpoint shards and OOC spill
  /// writes (queued at enqueue, drained at the commit point). Results,
  /// intermediate placement, and checkpoint bytes are bit-identical
  /// with prefetch on or off; only the wait/hidden time attribution
  /// changes. Charges prefetch_depth input-chunk buffers.
  bool prefetch = false;
  /// Read-ahead depth: in-flight input chunks per file (>= 1).
  int prefetch_depth = 2;
  /// Alternative key-to-rank routing (paper §III-A). Empty = hash.
  PartitionFn partitioner{};
  /// Skew-aware load balancing (extension, src/balance): sample key
  /// frequencies while the first send buffer fills, merge the sketches
  /// globally at the first exchange round's collective, then route heavy
  /// keys by a balanced plan (splitting the heaviest across several
  /// ranks). A merge pass at the end of the map phase re-homes planned
  /// keys to their original partitioner/hash destination, so
  /// intermediate() placement is identical with balance on or off.
  balance::Options balance{};

  /// Parse "mimir.*" keys from a Config (page_size, comm_buffer,
  /// kv_compression, key_hint, value_hint, input_chunk, overlap,
  /// prefetch, prefetch_depth, balance.*). Hints accept "var", "str",
  /// or a fixed byte count.
  static JobConfig from(const mutil::Config& cfg);
};

/// Counters exposed after each phase (per rank).
struct JobMetrics {
  std::uint64_t input_bytes = 0;
  std::uint64_t map_emitted_kvs = 0;
  std::uint64_t map_emitted_bytes = 0;   ///< encoded bytes sent to shuffle
  std::uint64_t combined_kvs = 0;        ///< merged away by cps
  std::uint64_t exchange_rounds = 0;
  std::uint64_t intermediate_kvs = 0;
  std::uint64_t intermediate_bytes = 0;
  std::uint64_t unique_keys = 0;
  std::uint64_t output_kvs = 0;
  std::uint64_t output_bytes = 0;
  double map_end_time = 0.0;     ///< rank clock when map+aggregate ended
  double reduce_end_time = 0.0;  ///< rank clock when reduce ended
};

class Job {
 public:
  Job(simmpi::Context& ctx, JobConfig cfg = {});

  Job(Job&&) noexcept = default;
  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Reconstruct a Job in the mapped state from previously aggregated
  /// intermediate KVs (checkpoint restart, see checkpoint.hpp).
  static Job resumed(simmpi::Context& ctx, JobConfig cfg,
                     KVContainer intermediate);

  // --- map phase (implicit aggregate) -----------------------------------

  /// Map text files stored on the parallel file system. Files are
  /// assigned round-robin by rank; callbacks receive chunks that end on
  /// line boundaries. Collective.
  void map_text_files(std::span<const std::string> files,
                      const MapRecordFn& fn,
                      const CombineFn& combiner = {});

  /// Map the KVs of a previous job (consumed). Collective.
  void map_kvs(KVContainer input, const MapKvFn& fn,
               const CombineFn& combiner = {});

  /// Map with a user-driven producer (in-situ analytics, generators).
  /// `fn` is called once per rank. Collective.
  void map_custom(const CustomMapFn& fn, const CombineFn& combiner = {});

  // --- reduce phase ------------------------------------------------------

  /// Convert aggregated KVs to KMVs and run the reduce callback.
  /// Returns the number of output KVs on this rank.
  std::uint64_t reduce(const ReduceFn& fn);

  /// Partial reduction (paper §III-C1): combine duplicates directly in a
  /// hash bucket, never materializing KMVs. The combined KVs become the
  /// job output. Requires a commutative/associative combiner.
  std::uint64_t partial_reduce(const CombineFn& combiner);

  // --- results -----------------------------------------------------------

  /// Aggregated intermediate KVs on this rank (valid after map, before
  /// reduce). For map-only jobs this is the result.
  KVContainer& intermediate() { return intermediate_; }
  KVContainer take_intermediate() { return std::move(intermediate_); }

  KVContainer& output() { return output_; }
  KVContainer take_output() { return std::move(output_); }

  const JobMetrics& metrics() const noexcept { return metrics_; }
  simmpi::Context& context() noexcept { return ctx_; }
  const JobConfig& config() const noexcept { return cfg_; }

  /// The job's load balancer (valid after a map phase with
  /// cfg.balance.enabled; nullptr otherwise). Exposes the exchanged plan
  /// and sketch for tests and reports.
  const balance::Balancer* balancer() const noexcept {
    return balancer_.get();
  }

 private:
  void run_map(const std::function<void(Emitter&)>& producer,
               const CombineFn& combiner);
  /// Re-home plan-scattered heavy keys to their original partitioner
  /// destination (local combine first when a combiner is available).
  void merge_planned(const CombineFn& combiner);

  simmpi::Context& ctx_;
  JobConfig cfg_;
  KVContainer intermediate_;
  KVContainer output_;
  JobMetrics metrics_;
  std::unique_ptr<balance::Balancer> balancer_;

  enum class Phase { kCreated, kMapped, kReduced };
  Phase phase_ = Phase::kCreated;
};

}  // namespace mimir
