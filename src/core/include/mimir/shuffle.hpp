// Interleaved map+aggregate engine (paper §III-A/B, Figure 4).
//
// Each rank owns one send buffer statically divided into p equal
// partitions (one per destination rank) and one receive buffer of the
// same total size. The user map callback emits KVs straight into the
// send partition chosen by hashing the key — there is no staging copy
// and no temporary partitioning buffers (MR-MPI needs seven pages here;
// Mimir needs these two buffers plus the destination KVC).
//
// When a partition fills, the rank enters an exchange round: all ranks
// meet in MPI_Alltoallv, received KVs are moved into the destination
// KVContainer, and the suspended map resumes. Ranks that exhaust their
// input keep participating in rounds (with empty partitions) until an
// allreduce agrees that nobody has data left — that is how the implicit
// aggregate phase avoids a global map barrier while staying collective.
//
// Because every sender can hold at most partition_capacity bytes for any
// destination, the total received per round can never exceed the send
// buffer size: the receive buffer never needs to be larger than the send
// buffer, even under extreme key skew (§III-B).
//
// Overlapped mode (`overlap = true`) double-buffers the send side: when
// a partition fills, the exchange round is *initiated* with non-blocking
// collectives (ialltoallv + iallreduce vote) and the map keeps emitting
// into the second send buffer. The round is completed — waited on and
// drained into the destination container — only when the second buffer
// also fills or at finalize, so communication of round k hides under the
// map compute of round k+1. At most one round is in flight, which is
// what lets both rounds share the single receive buffer. Round
// boundaries, payloads, and the receive drain order are identical to the
// blocking mode, so job results are bit-identical with overlap on or
// off; only the time attribution (blocked wait vs hidden overlap)
// changes.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "memtrack/tracker.hpp"
#include "mimir/containers.hpp"
#include "mimir/kv.hpp"
#include "simmpi/runtime.hpp"

namespace balance {
class Balancer;
}

namespace mimir {

/// Maps a key to its destination rank. The paper (§III-A): "Users can
/// provide alternative hash functions that suit their needs, but the
/// workflow stays the same." Must be pure and identical on all ranks.
using PartitionFn = std::function<int(std::string_view key, int nranks)>;

class Shuffle {
 public:
  /// `dest` receives this rank's share of the shuffled KVs. `comm_buffer`
  /// is the total send-buffer size (the receive buffer matches it; the
  /// usable — and charged — size is rounded down to p equal partitions).
  /// `partitioner` overrides the default key-hash routing when set.
  /// `overlap` enables the double-buffered non-blocking exchange (one
  /// extra send buffer is charged). `balancer` (optional, not owned)
  /// enables skew-aware routing: emits are sampled until the first
  /// exchange round, whose collective doubles as the plan exchange;
  /// later emits route heavy keys by the plan instead of the fallback.
  Shuffle(simmpi::Context& ctx, std::uint64_t comm_buffer, KVHint hint,
          KVContainer& dest, PartitionFn partitioner = {},
          bool overlap = false, balance::Balancer* balancer = nullptr);

  Shuffle(const Shuffle&) = delete;
  Shuffle& operator=(const Shuffle&) = delete;

  /// Emit one KV toward hash(key) % p. May trigger a collective
  /// exchange round; every rank of the job must be inside the shuffle
  /// protocol (mapping or finalizing) when that happens.
  void emit(std::string_view key, std::string_view value);

  /// Flush remaining data and keep participating in exchange rounds
  /// until every rank is done. Must be called exactly once per rank.
  void finalize();

  std::uint64_t kvs_emitted() const noexcept { return kvs_emitted_; }
  std::uint64_t bytes_emitted() const noexcept { return bytes_emitted_; }
  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint64_t partition_capacity() const noexcept { return part_cap_; }
  bool overlapped() const noexcept { return overlap_; }

 private:
  /// Blocking path: one collective round; returns true while any rank
  /// still has data.
  bool exchange_round(bool this_rank_done);
  /// Overlap path: initiate a round on the active send buffer (the
  /// buffer then belongs to the operation until complete_round).
  void start_round(bool this_rank_done);
  /// Overlap path: wait for the in-flight round, drain the receive
  /// buffer, and release the round's send buffer. Returns the round's
  /// continue vote (true while any rank still has data).
  bool complete_round();

  simmpi::Context& ctx_;
  KVCodec codec_;
  KVContainer& dest_;
  PartitionFn partitioner_;
  bool overlap_;
  balance::Balancer* balancer_;  ///< not owned; nullptr = balance off

  memtrack::TrackedBuffer send_[2];  ///< [1] allocated only with overlap
  memtrack::TrackedBuffer recv_;
  std::uint64_t part_cap_;
  std::vector<std::uint64_t> part_used_[2];
  std::vector<std::uint64_t> part_displs_;

  int cur_ = 0;              ///< send buffer the map emits into
  bool in_flight_ = false;   ///< a started round awaits complete_round
  int flight_ = 0;           ///< send buffer owned by the in-flight round
  simmpi::Request data_req_;
  simmpi::Request vote_req_;

  std::uint64_t kvs_emitted_ = 0;
  std::uint64_t bytes_emitted_ = 0;
  std::uint64_t rounds_ = 0;
  bool finalized_ = false;
};

}  // namespace mimir
