// Interleaved map+aggregate engine (paper §III-A/B, Figure 4).
//
// Each rank owns one send buffer statically divided into p equal
// partitions (one per destination rank) and one receive buffer of the
// same total size. The user map callback emits KVs straight into the
// send partition chosen by hashing the key — there is no staging copy
// and no temporary partitioning buffers (MR-MPI needs seven pages here;
// Mimir needs these two buffers plus the destination KVC).
//
// When a partition fills, the rank enters an exchange round: all ranks
// meet in MPI_Alltoallv, received KVs are moved into the destination
// KVContainer, and the suspended map resumes. Ranks that exhaust their
// input keep participating in rounds (with empty partitions) until an
// allreduce agrees that nobody has data left — that is how the implicit
// aggregate phase avoids a global map barrier while staying collective.
//
// Because every sender can hold at most partition_capacity bytes for any
// destination, the total received per round can never exceed the send
// buffer size: the receive buffer never needs to be larger than the send
// buffer, even under extreme key skew (§III-B).
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "memtrack/tracker.hpp"
#include "mimir/containers.hpp"
#include "mimir/kv.hpp"
#include "simmpi/runtime.hpp"

namespace mimir {

/// Maps a key to its destination rank. The paper (§III-A): "Users can
/// provide alternative hash functions that suit their needs, but the
/// workflow stays the same." Must be pure and identical on all ranks.
using PartitionFn = std::function<int(std::string_view key, int nranks)>;

class Shuffle {
 public:
  /// `dest` receives this rank's share of the shuffled KVs. `comm_buffer`
  /// is the total send-buffer size (the receive buffer matches it).
  /// `partitioner` overrides the default key-hash routing when set.
  Shuffle(simmpi::Context& ctx, std::uint64_t comm_buffer, KVHint hint,
          KVContainer& dest, PartitionFn partitioner = {});

  Shuffle(const Shuffle&) = delete;
  Shuffle& operator=(const Shuffle&) = delete;

  /// Emit one KV toward hash(key) % p. May trigger a collective
  /// exchange round; every rank of the job must be inside the shuffle
  /// protocol (mapping or finalizing) when that happens.
  void emit(std::string_view key, std::string_view value);

  /// Flush remaining data and keep participating in exchange rounds
  /// until every rank is done. Must be called exactly once per rank.
  void finalize();

  std::uint64_t kvs_emitted() const noexcept { return kvs_emitted_; }
  std::uint64_t bytes_emitted() const noexcept { return bytes_emitted_; }
  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint64_t partition_capacity() const noexcept { return part_cap_; }

 private:
  /// One collective round; returns true while any rank still has data.
  bool exchange_round(bool this_rank_done);

  simmpi::Context& ctx_;
  KVCodec codec_;
  KVContainer& dest_;
  PartitionFn partitioner_;

  memtrack::TrackedBuffer send_;
  memtrack::TrackedBuffer recv_;
  std::uint64_t part_cap_;
  std::vector<std::uint64_t> part_used_;
  std::vector<std::uint64_t> part_displs_;

  std::uint64_t kvs_emitted_ = 0;
  std::uint64_t bytes_emitted_ = 0;
  std::uint64_t rounds_ = 0;
  bool finalized_ = false;
};

}  // namespace mimir
