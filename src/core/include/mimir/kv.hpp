// Key/value encoding with the paper's KV-hint optimization (§III-C3).
//
// By default every KV carries an 8-byte header — two 32-bit lengths —
// before the key and value bytes, because keys and values are arbitrary
// byte sequences. The KV-hint lets the application declare that the key
// and/or value length is constant for the whole job (no length stored),
// or that it is a NUL-terminated string (no length stored; computed with
// strlen on read). The hint applies uniformly to every stage that holds
// KV bytes — send buffer, KV containers, KMV containers — which is where
// the paper's ~26 % size reduction for WordCount comes from.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>

#include "mutil/error.hpp"

namespace mimir {

/// Declares how key and value lengths are encoded.
struct KVHint {
  /// Length is per-KV and stored as a 32-bit header field.
  static constexpr std::int32_t kVariable = -2;
  /// NUL-terminated string: stored with its terminator, length computed.
  static constexpr std::int32_t kString = -1;

  std::int32_t key_len = kVariable;
  std::int32_t value_len = kVariable;

  static KVHint variable() { return {}; }
  /// WordCount-style hint: string key, fixed 8-byte value.
  static KVHint string_key_u64_value() { return {kString, 8}; }
  static KVHint fixed(std::int32_t key, std::int32_t value) {
    return {key, value};
  }

  bool key_is_variable() const noexcept { return key_len == kVariable; }
  bool value_is_variable() const noexcept { return value_len == kVariable; }

  friend bool operator==(const KVHint&, const KVHint&) = default;
};

/// A decoded view of one KV inside a buffer. Views borrow the buffer.
struct KVView {
  std::string_view key;
  std::string_view value;
};

/// Encoder/decoder for one KVHint. All methods are branch-light and
/// inline; codecs are freely copyable value types.
class KVCodec {
 public:
  explicit KVCodec(KVHint hint = {}) : hint_(hint) {
    if (hint.key_len < KVHint::kVariable) {
      throw mutil::ConfigError("KVCodec: bad key hint");
    }
    if (hint.value_len < KVHint::kVariable) {
      throw mutil::ConfigError("KVCodec: bad value hint");
    }
  }

  const KVHint& hint() const noexcept { return hint_; }

  /// Bytes this KV occupies when encoded.
  std::size_t encoded_size(std::string_view key,
                           std::string_view value) const {
    return header_size() + field_size(key, hint_.key_len, "key") +
           field_size(value, hint_.value_len, "value");
  }

  /// Encode into `dst`, which must hold at least encoded_size() bytes.
  /// Returns the number of bytes written.
  std::size_t encode(std::byte* dst, std::string_view key,
                     std::string_view value) const {
    std::byte* p = dst;
    if (hint_.key_is_variable()) {
      const auto len = static_cast<std::uint32_t>(key.size());
      std::memcpy(p, &len, 4);
      p += 4;
    }
    if (hint_.value_is_variable()) {
      const auto len = static_cast<std::uint32_t>(value.size());
      std::memcpy(p, &len, 4);
      p += 4;
    }
    p = put_field(p, key, hint_.key_len);
    p = put_field(p, value, hint_.value_len);
    return static_cast<std::size_t>(p - dst);
  }

  /// Decode the KV starting at `p`; `*consumed` receives its byte size.
  KVView decode(const std::byte* p, std::size_t* consumed) const {
    const std::byte* cursor = p;
    std::uint32_t klen = 0, vlen = 0;
    if (hint_.key_is_variable()) {
      std::memcpy(&klen, cursor, 4);
      cursor += 4;
    }
    if (hint_.value_is_variable()) {
      std::memcpy(&vlen, cursor, 4);
      cursor += 4;
    }
    const auto [key, after_key] = get_field(cursor, klen, hint_.key_len);
    const auto [value, after_value] =
        get_field(after_key, vlen, hint_.value_len);
    *consumed = static_cast<std::size_t>(after_value - p);
    return {key, value};
  }

  /// Visit every KV in an encoded byte range, in order.
  template <typename Fn>
  void for_each(std::span<const std::byte> bytes, Fn&& fn) const {
    std::size_t offset = 0;
    while (offset < bytes.size()) {
      std::size_t consumed = 0;
      const KVView kv = decode(bytes.data() + offset, &consumed);
      fn(kv);
      offset += consumed;
    }
  }

 private:
  std::size_t header_size() const noexcept {
    return (hint_.key_is_variable() ? 4u : 0u) +
           (hint_.value_is_variable() ? 4u : 0u);
  }

  static std::size_t field_size(std::string_view data, std::int32_t hint,
                                const char* what) {
    if (hint == KVHint::kVariable) return data.size();
    if (hint == KVHint::kString) {
      // The string encoding stores the bytes followed by a NUL and
      // decodes with strlen, so an embedded NUL would silently truncate
      // the field on every read after this point (and desynchronize the
      // byte cursor for everything behind it). Reject it here: every
      // encode path calls encoded_size() before writing a single byte.
      if (data.find('\0') != std::string_view::npos) {
        throw mutil::UsageError(
            std::string("KVCodec: ") + what +
            " contains an embedded NUL, which the kString hint cannot "
            "represent (use kVariable or a fixed-length hint)");
      }
      return data.size() + 1;  // NUL
    }
    if (data.size() != static_cast<std::size_t>(hint)) {
      throw mutil::UsageError(std::string("KVCodec: ") + what + " length " +
                              std::to_string(data.size()) +
                              " violates fixed-length hint " +
                              std::to_string(hint));
    }
    return data.size();
  }

  static std::byte* put_field(std::byte* p, std::string_view data,
                              std::int32_t hint) {
    std::memcpy(p, data.data(), data.size());
    p += data.size();
    if (hint == KVHint::kString) {
      *p = std::byte{0};
      ++p;
    }
    return p;
  }

  static std::pair<std::string_view, const std::byte*> get_field(
      const std::byte* p, std::uint32_t stored_len, std::int32_t hint) {
    const char* chars = reinterpret_cast<const char*>(p);
    if (hint == KVHint::kVariable) {
      return {std::string_view(chars, stored_len), p + stored_len};
    }
    if (hint == KVHint::kString) {
      const std::size_t len = std::strlen(chars);
      return {std::string_view(chars, len), p + len + 1};
    }
    const auto len = static_cast<std::size_t>(hint);
    return {std::string_view(chars, len), p + len};
  }

  KVHint hint_;
};

/// Helpers for packing integer values into KV byte fields.
inline std::string_view as_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), sizeof(v)};
}
inline std::string_view as_view(const std::int64_t& v) {
  return {reinterpret_cast<const char*>(&v), sizeof(v)};
}
inline std::uint64_t as_u64(std::string_view v) {
  std::uint64_t out = 0;
  std::memcpy(&out, v.data(), sizeof(out));
  return out;
}
inline std::int64_t as_i64(std::string_view v) {
  std::int64_t out = 0;
  std::memcpy(&out, v.data(), sizeof(out));
  return out;
}
inline std::string_view as_view(const double& v) {
  return {reinterpret_cast<const char*>(&v), sizeof(v)};
}
inline double as_f64(std::string_view v) {
  double out = 0;
  std::memcpy(&out, v.data(), sizeof(out));
  return out;
}

}  // namespace mimir
