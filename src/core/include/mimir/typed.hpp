// Typed convenience layer over the byte-oriented core API.
//
// Keys and values in Mimir are byte sequences; most scientific
// applications move fixed-width PODs (vertex ids, counts, coordinates).
// This header removes the reinterpret-cast boilerplate and picks the
// right KV-hint automatically:
//
//   using Pair = mimir::Typed<std::uint64_t, double>;
//   mimir::JobConfig cfg;
//   cfg.hint = Pair::hint();                // fixed 8/8
//   job.map_custom([&](mimir::Emitter& out) {
//     Pair::emit(out, vertex, rank_share);
//   });
//   job.reduce([](std::string_view key, mimir::ValueReader& vals,
//                 mimir::Emitter& out) {
//     double total = 0;
//     for (const double share : Pair::values(vals)) total += share;
//     Pair::emit(out, Pair::key(key), total);
//   });
#pragma once

#include <cstring>
#include <string_view>
#include <type_traits>

#include "mimir/containers.hpp"
#include "mimir/job.hpp"
#include "mimir/kv.hpp"

namespace mimir {

template <typename T>
concept FixedPod = std::is_trivially_copyable_v<T> &&
                   !std::is_pointer_v<T>;

/// View the bytes of a POD (valid while `v` lives).
template <FixedPod T>
std::string_view view_of(const T& v) {
  return {reinterpret_cast<const char*>(&v), sizeof(T)};
}

/// Reconstruct a POD from a value/key view.
template <FixedPod T>
T from_view(std::string_view bytes) {
  T out{};
  std::memcpy(&out, bytes.data(), sizeof(T));
  return out;
}

/// Iterate a ValueReader as typed values (single pass, range-for).
template <FixedPod V>
class TypedValueRange {
 public:
  explicit TypedValueRange(ValueReader& reader) : reader_(&reader) {}

  class iterator {
   public:
    iterator() = default;
    explicit iterator(ValueReader* reader) : reader_(reader) { advance(); }

    V operator*() const { return current_; }
    iterator& operator++() {
      advance();
      return *this;
    }
    bool operator!=(const iterator& other) const {
      return reader_ != other.reader_;
    }

   private:
    void advance() {
      std::string_view v;
      if (reader_ != nullptr && reader_->next(v)) {
        current_ = from_view<V>(v);
      } else {
        reader_ = nullptr;  // end
      }
    }

    ValueReader* reader_ = nullptr;
    V current_{};
  };

  iterator begin() const { return iterator(reader_); }
  iterator end() const { return iterator(); }

 private:
  ValueReader* reader_;
};

/// Bundle of typed helpers for one (Key, Value) pair shape.
template <FixedPod K, FixedPod V>
struct Typed {
  /// The natural KV-hint: both lengths are compile-time constants.
  static constexpr KVHint hint() {
    return KVHint{static_cast<std::int32_t>(sizeof(K)),
                  static_cast<std::int32_t>(sizeof(V))};
  }

  static void emit(Emitter& out, const K& key, const V& value) {
    out.emit(view_of(key), view_of(value));
  }

  static K key(std::string_view bytes) { return from_view<K>(bytes); }
  static V value(std::string_view bytes) { return from_view<V>(bytes); }

  static TypedValueRange<V> values(ValueReader& reader) {
    return TypedValueRange<V>(reader);
  }

  /// Visit a container as typed pairs: fn(K, V).
  template <typename Fn>
  static void scan(const KVContainer& kvc, Fn&& fn) {
    kvc.scan([&](const KVView& kv) {
      fn(from_view<K>(kv.key), from_view<V>(kv.value));
    });
  }
};

}  // namespace mimir
