// Checkpoint-based job recovery (companion to src/inject).
//
// Mimir's substrate aborts a job as a unit: the first rank to throw
// (a crash injected by inject::Injector, a transient PFS error, or a
// genuine OutOfMemoryError) unwinds every other rank out of its
// collectives. run_with_recovery wraps simmpi::run in a bounded retry
// loop around that unit-abort behaviour:
//
//   * after the map+aggregate phase completes, the intermediate data is
//     checkpointed to the PFS (mimir/checkpoint.hpp); a retry that finds
//     a committed checkpoint resumes from it instead of re-running map;
//   * each retry waits an exponential backoff on the *simulated* clock —
//     every rank starts attempt k with its clock advanced past the
//     previous failure time plus base*factor^(k-1), so the returned
//     JobStats.sim_time is the total simulated time-to-completion
//     including failed attempts;
//   * an OutOfMemoryError retry degrades gracefully: the job restarts
//     with the out-of-core spill enabled and the live-bytes budget
//     halved (starting from the configured budget, or from the per-rank
//     share of the node budget when out-of-core was off), trading PFS
//     traffic for survival instead of failing the job;
//   * mutil::UsageError/ConfigError are never retried — they indicate a
//     caller bug, not a fault.
//
// Attempt counts and backoff schedules are deterministic for a fixed
// FaultPlan seed (see inject/fault.hpp); recovery activity is recorded
// through stats::Registry counters (recovery.*) on the successful
// attempt and surfaced as "recovery" diagnostics in the check::Report
// when a checker is attached.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "inject/fault.hpp"
#include "mimir/job.hpp"
#include "simmpi/runtime.hpp"

namespace mutil {
class Config;
}

namespace mimir {

/// Retry/degradation knobs for run_with_recovery.
struct RecoveryPolicy {
  int max_attempts = 5;          ///< total attempts (first try included)
  double backoff_base = 0.5;     ///< simulated seconds before retry 1
  double backoff_factor = 2.0;   ///< exponential growth per retry
  /// Retry an OutOfMemoryError with out-of-core spill enabled and the
  /// live-bytes budget halved (repeatedly, down to one page). Off =
  /// OOM is rethrown like any other non-recoverable error.
  bool degrade_on_oom = true;
  std::string checkpoint = "recovery";  ///< checkpoint name on the PFS
  bool keep_checkpoint = false;  ///< leave the checkpoint after success

  /// Parse "mimir.recovery.*" keys (max_attempts, backoff_base,
  /// backoff_factor, degrade_on_oom, checkpoint, keep_checkpoint).
  static RecoveryPolicy from(const mutil::Config& cfg);
};

/// One attempt of the retry loop, successful or not.
struct AttemptRecord {
  int attempt = 1;
  bool ok = false;
  std::string error;        ///< what() of the failure; empty on success
  int failed_rank = -1;     ///< dead rank for rank-death failures
  double failed_time = 0.0; ///< simulated failure time when known
  double backoff = 0.0;     ///< simulated backoff charged before retry
  std::uint64_t live_budget = 0;  ///< ooc_live_bytes in effect (0 = off)
};

/// Result of a recovered job.
struct RecoveryOutcome {
  simmpi::JobStats stats;   ///< stats of the successful attempt
  int attempts = 1;
  bool resumed = false;     ///< some attempt resumed from the checkpoint
  bool degraded = false;    ///< OOM degradation kicked in
  std::uint64_t degraded_live_bytes = 0;  ///< final live budget if so
  double total_backoff = 0.0;             ///< simulated seconds
  std::vector<AttemptRecord> history;     ///< one entry per attempt
};

/// The job to run under recovery. `map` must complete the Job's map
/// phase (map_text_files/map_kvs/map_custom); `finish` consumes the
/// mapped job (reduce or partial_reduce) and handles the output. Both
/// run on every rank and may be called several times (once per
/// attempt), so they must be idempotent with respect to captured state.
struct RecoveryJob {
  JobConfig config{};
  std::function<void(Job&)> map;
  std::function<void(Job&)> finish;
};

/// Run `jobspec` on `nranks` ranks with checkpoint-based retry. When
/// `plan` is non-null and non-empty, each rank thread gets a bound
/// inject::Injector for the duration of the attempt. Throws the last
/// failure once `policy.max_attempts` is exhausted; rethrows
/// non-recoverable errors (UsageError, ConfigError) immediately.
RecoveryOutcome run_with_recovery(int nranks,
                                  const simtime::MachineProfile& machine,
                                  pfs::FileSystem& fs,
                                  const RecoveryJob& jobspec,
                                  const RecoveryPolicy& policy = {},
                                  const inject::FaultPlan* plan = nullptr,
                                  stats::Collector* collector = nullptr,
                                  check::JobChecker* checker = nullptr);

}  // namespace mimir
