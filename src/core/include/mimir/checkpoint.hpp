// Checkpoint/restart for Mimir jobs.
//
// The paper's companion work (Guo et al., "Fault Tolerant MapReduce-MPI
// for HPC Clusters", SC'15 — cited as having fixed MR-MPI's inability
// to handle system faults) checkpoints intermediate KV data to the
// parallel file system so a failed job can resume without redoing the
// map phase. This module provides the same capability for Mimir:
//
//   * save_container / load_container — serialize one rank's
//     KVContainer to the PFS under a named checkpoint (collective:
//     every rank writes/reads its own shard);
//   * Job::checkpoint / Job::resume — persist the aggregated
//     intermediate data right after map+aggregate (the expensive,
//     communication-heavy part) and reconstruct a mapped Job from it,
//     ready for reduce()/partial_reduce().
//
// Checkpoint I/O is charged to the simulated clock at PFS rates, so
// benchmarks can weigh checkpoint cost against re-execution cost.
#pragma once

#include <cstdint>
#include <string>

#include "mimir/containers.hpp"
#include "mimir/job.hpp"
#include "simmpi/runtime.hpp"

namespace mimir {

/// Per-rank shard metadata stored alongside the data.
struct CheckpointInfo {
  KVHint hint;
  std::uint64_t num_kvs = 0;
  std::uint64_t data_bytes = 0;
  int ranks = 0;  ///< world size at save time (must match at load)
};

/// Write this rank's shard of `kvc` under checkpoint `name`.
/// Collective; all ranks must call it with the same name. With
/// `write_behind` (mimir.prefetch), shard writes enqueue against the
/// async pipeline and drain right before the commit barrier — shard
/// bytes are bit-identical either way, and the commit marker still
/// appears only after every charge landed.
void save_container(simmpi::Context& ctx, const KVContainer& kvc,
                    const std::string& name, bool write_behind = false);

/// True if a complete checkpoint `name` exists for this world size.
bool checkpoint_exists(simmpi::Context& ctx, const std::string& name);

/// Read back this rank's shard (page size from `page_size`). Throws
/// mutil::IoError on a missing or corrupt checkpoint, or a world-size
/// mismatch (shards are partitioned by the rank hash of the saving
/// world).
KVContainer load_container(simmpi::Context& ctx, const std::string& name,
                           std::uint64_t page_size);

/// Remove checkpoint `name` (rank 0 removes shared metadata; each rank
/// removes its shard). Collective.
void remove_checkpoint(simmpi::Context& ctx, const std::string& name);

/// Persist a mapped Job's intermediate KVs under `name`.
void checkpoint_job(Job& job, const std::string& name);

/// Reconstruct a Job in the mapped state from checkpoint `name`; the
/// returned Job is ready for reduce() / partial_reduce().
Job resume_job(simmpi::Context& ctx, JobConfig cfg,
               const std::string& name);

}  // namespace mimir
