// Umbrella header for the Mimir core library.
//
// Mimir is a memory-efficient MapReduce implementation over an MPI-style
// substrate, reproducing Gao et al., "Mimir: Memory-Efficient and
// Scalable MapReduce for Large Supercomputing Systems" (IPDPS 2017).
//
// Typical entry point is mimir::Job (see job.hpp). Lower layers are
// exposed for advanced use and benchmarking: containers.hpp (KVC/KMVC),
// shuffle.hpp (interleaved map+aggregate), convert.hpp (two-pass
// KV->KMV), combine_table.hpp (pr/cps combiner bucket).
#pragma once

#include "mimir/checkpoint.hpp"     // IWYU pragma: export
#include "mimir/combine_table.hpp"  // IWYU pragma: export
#include "mimir/containers.hpp"     // IWYU pragma: export
#include "mimir/convert.hpp"        // IWYU pragma: export
#include "mimir/job.hpp"            // IWYU pragma: export
#include "mimir/kv.hpp"             // IWYU pragma: export
#include "mimir/shuffle.hpp"        // IWYU pragma: export
