#include "mimir/combine_table.hpp"

#include <algorithm>
#include <cstring>

#include "memtrack/tracker.hpp"
#include "mutil/hash.hpp"

namespace mimir {

namespace {
constexpr std::uint64_t kInitialSlots = 1024;
constexpr double kMaxLoad = 0.7;
}  // namespace

CombineTable::CombineTable(memtrack::Tracker& tracker,
                           std::uint64_t page_size, KVHint hint,
                           CombineFn combiner)
    : tracker_(&tracker),
      page_size_(page_size),
      codec_(hint),
      combiner_(std::move(combiner)) {
  if (!combiner_) {
    throw mutil::ConfigError("CombineTable: combiner callback required");
  }
  const memtrack::TagScope tag("combine_table");
  slots_ = memtrack::TrackedBuffer(*tracker_,
                                   kInitialSlots * sizeof(Entry));
  slot_count_ = kInitialSlots;
  auto* entries = reinterpret_cast<Entry*>(slots_.data());
  std::fill_n(entries, slot_count_, Entry{});
}

CombineTable::Entry* CombineTable::find_slot(std::uint64_t hash,
                                             std::string_view key) {
  auto* entries = reinterpret_cast<Entry*>(slots_.data());
  std::uint64_t idx = hash & (slot_count_ - 1);
  for (;;) {
    Entry& slot = entries[idx];
    if (!slot.occupied()) return &slot;
    if (slot.hash == hash) {
      std::size_t consumed = 0;
      const KVView kv = codec_.decode(record_ptr(slot), &consumed);
      if (kv.key == key) return &slot;
    }
    idx = (idx + 1) & (slot_count_ - 1);
  }
}

CombineTable::Entry CombineTable::append_record(std::uint64_t hash,
                                                std::string_view key,
                                                std::string_view value) {
  const std::size_t bytes = codec_.encoded_size(key, value);
  if (arena_.empty() || arena_.back().room() < bytes) {
    const memtrack::TagScope tag("combine_table");
    detail::Page page;
    page.buffer = memtrack::TrackedBuffer(
        *tracker_, std::max<std::size_t>(bytes, page_size_));
    arena_.push_back(std::move(page));
  }
  detail::Page& page = arena_.back();
  Entry entry;
  entry.hash = hash;
  entry.page = static_cast<std::uint32_t>(arena_.size() - 1);
  entry.offset = static_cast<std::uint32_t>(page.used);
  codec_.encode(page.buffer.data() + page.used, key, value);
  page.used += bytes;
  live_bytes_ += bytes;
  return entry;
}

void CombineTable::grow() {
  const std::uint64_t new_count = slot_count_ * 2;
  const memtrack::TagScope tag("combine_table");
  memtrack::TrackedBuffer bigger(*tracker_, new_count * sizeof(Entry));
  auto* fresh = reinterpret_cast<Entry*>(bigger.data());
  std::fill_n(fresh, new_count, Entry{});
  const auto* old = reinterpret_cast<const Entry*>(slots_.data());
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    if (!old[i].occupied()) continue;
    std::uint64_t idx = old[i].hash & (new_count - 1);
    while (fresh[idx].occupied()) idx = (idx + 1) & (new_count - 1);
    fresh[idx] = old[i];
  }
  slots_ = std::move(bigger);
  slot_count_ = new_count;
}

void CombineTable::upsert(std::string_view key, std::string_view value) {
  const std::uint64_t hash = mutil::hash_bytes(key);
  Entry* slot = find_slot(hash, key);
  if (!slot->occupied()) {
    if (static_cast<double>(live_entries_ + 1) >
        kMaxLoad * static_cast<double>(slot_count_)) {
      grow();
      slot = find_slot(hash, key);
    }
    *slot = append_record(hash, key, value);
    ++live_entries_;
    return;
  }

  // Duplicate key: combine the stored value with the incoming one.
  std::size_t consumed = 0;
  const std::byte* rec = record_ptr(*slot);
  const KVView existing = codec_.decode(rec, &consumed);
  scratch_.clear();
  combiner_(key, existing.value, value, scratch_);
  ++combined_kvs_;

  if (scratch_.size() == existing.value.size()) {
    // Same size: overwrite the value bytes in place.
    auto* dst = const_cast<std::byte*>(
        reinterpret_cast<const std::byte*>(existing.value.data()));
    std::memcpy(dst, scratch_.data(), scratch_.size());
    return;
  }
  // Size changed: retire the old record and append a fresh one.
  dead_bytes_ += consumed;
  live_bytes_ -= consumed;
  *slot = append_record(hash, key, scratch_);
  // Without a bound, a workload whose combines keep changing value
  // sizes (e.g. growing postings lists) leaves every superseded record
  // in the arena and the bucket's footprint grows without limit even
  // though its live contents do not. Compact once garbage exceeds the
  // live data (the page_size_ floor avoids churning on tiny tables);
  // the transient copy during compaction keeps the peak bounded by a
  // constant multiple of the live bytes.
  if (dead_bytes_ > live_bytes_ && dead_bytes_ >= page_size_) {
    compact();
  }
}

void CombineTable::compact() {
  const memtrack::TagScope tag("combine_table");
  std::deque<detail::Page> fresh;
  auto* entries = reinterpret_cast<Entry*>(slots_.data());
  for (std::uint64_t i = 0; i < slot_count_; ++i) {
    Entry& e = entries[i];
    if (!e.occupied()) continue;
    const std::byte* src = record_ptr(e);
    std::size_t consumed = 0;
    (void)codec_.decode(src, &consumed);
    if (fresh.empty() || fresh.back().room() < consumed) {
      detail::Page page;
      page.buffer = memtrack::TrackedBuffer(
          *tracker_, std::max<std::uint64_t>(consumed, page_size_));
      fresh.push_back(std::move(page));
    }
    detail::Page& page = fresh.back();
    std::memcpy(page.buffer.data() + page.used, src, consumed);
    e.page = static_cast<std::uint32_t>(fresh.size() - 1);
    e.offset = static_cast<std::uint32_t>(page.used);
    page.used += consumed;
  }
  arena_ = std::move(fresh);
  dead_bytes_ = 0;
  ++compactions_;
}

void CombineTable::clear() {
  arena_.clear();
  live_bytes_ = 0;
  dead_bytes_ = 0;
  live_entries_ = 0;
  combined_kvs_ = 0;
  auto* entries = reinterpret_cast<Entry*>(slots_.data());
  std::fill_n(entries, slot_count_, Entry{});
}

}  // namespace mimir
