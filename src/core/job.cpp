#include "mimir/job.hpp"

#include <algorithm>
#include <cstdio>

#include "check/checker.hpp"
#include "inject/fault.hpp"
#include "mimir/convert.hpp"
#include "mimir/shuffle.hpp"
#include "mutil/error.hpp"
#include "pfs/async.hpp"
#include "stats/registry.hpp"

namespace mimir {

namespace {

std::int32_t parse_hint(const mutil::Config& cfg, std::string_view key,
                        std::int32_t fallback) {
  if (!cfg.contains(key)) return fallback;
  const std::string text = cfg.get_string(key, "");
  if (text == "var" || text == "variable") return KVHint::kVariable;
  if (text == "str" || text == "string") return KVHint::kString;
  const auto n = cfg.get_int(key, 0);
  if (n < 0) {
    throw mutil::ConfigError("bad KV hint '" + text + "'");
  }
  return static_cast<std::int32_t>(n);
}

/// Routes map emissions into the shuffle's send partitions.
class ShuffleEmitter final : public Emitter {
 public:
  explicit ShuffleEmitter(Shuffle& shuffle) : shuffle_(shuffle) {}
  void emit(std::string_view key, std::string_view value) override {
    shuffle_.emit(key, value);
  }

 private:
  Shuffle& shuffle_;
};

/// Routes map emissions into the KV-compression bucket (paper §III-C2):
/// the aggregate phase is delayed until the whole input is combined —
/// unless a bucket bound is set (pipelined-cps extension), in which case
/// the bucket is drained into the shuffle whenever it reaches the bound.
class BucketEmitter final : public Emitter {
 public:
  BucketEmitter(CombineTable& bucket, Shuffle& shuffle,
                std::uint64_t max_bucket, simmpi::Context& ctx)
      : bucket_(bucket), shuffle_(shuffle), max_bucket_(max_bucket),
        ctx_(ctx) {}

  void emit(std::string_view key, std::string_view value) override {
    bucket_.upsert(key, value);
    ctx_.clock().advance(
        static_cast<double>(key.size() + value.size() + 8) /
        ctx_.machine.kv_rate);
    if (max_bucket_ != 0 &&
        bucket_.live_bytes() + bucket_.dead_bytes() >= max_bucket_) {
      flush();
    }
  }

  /// Drain the bucket into the shuffle. Cross-flush duplicates are
  /// re-combined by the reduce side, so correctness is unaffected.
  void flush() {
    combined_ += bucket_.combined_kvs();
    bucket_.for_each(
        [&](const KVView& kv) { shuffle_.emit(kv.key, kv.value); });
    bucket_.clear();
  }

  /// KVs merged away across all flushes.
  std::uint64_t combined() const noexcept { return combined_; }

 private:
  CombineTable& bucket_;
  Shuffle& shuffle_;
  std::uint64_t max_bucket_;
  simmpi::Context& ctx_;
  std::uint64_t combined_ = 0;
};

/// Routes reduce emissions into the local output container.
class OutputEmitter final : public Emitter {
 public:
  OutputEmitter(KVContainer& out, simmpi::Context& ctx)
      : out_(out), ctx_(ctx) {}
  void emit(std::string_view key, std::string_view value) override {
    out_.append(key, value);
    ctx_.clock().advance(
        static_cast<double>(key.size() + value.size() + 8) /
        ctx_.machine.kv_rate);
  }

 private:
  KVContainer& out_;
  simmpi::Context& ctx_;
};

}  // namespace

JobConfig JobConfig::from(const mutil::Config& cfg) {
  JobConfig out;
  out.page_size = cfg.get_size("mimir.page_size", out.page_size);
  out.comm_buffer = cfg.get_size("mimir.comm_buffer", out.comm_buffer);
  out.kv_compression =
      cfg.get_bool("mimir.kv_compression", out.kv_compression);
  out.cps_max_bucket =
      cfg.get_size("mimir.cps_max_bucket", out.cps_max_bucket);
  out.ooc_live_bytes =
      cfg.get_size("mimir.ooc_live_bytes", out.ooc_live_bytes);
  out.input_chunk = cfg.get_size("mimir.input_chunk", out.input_chunk);
  out.overlap = cfg.get_bool("mimir.overlap", out.overlap);
  out.prefetch = cfg.get_bool("mimir.prefetch", out.prefetch);
  out.prefetch_depth = std::max<int>(
      1, static_cast<int>(cfg.get_size(
             "mimir.prefetch_depth",
             static_cast<std::uint64_t>(out.prefetch_depth))));
  out.balance = balance::Options::from(cfg);
  out.hint.key_len = parse_hint(cfg, "mimir.key_hint", out.hint.key_len);
  out.hint.value_len =
      parse_hint(cfg, "mimir.value_hint", out.hint.value_len);
  if (cfg.contains("mimir.output_key_hint") ||
      cfg.contains("mimir.output_value_hint")) {
    KVHint oh = out.hint;
    oh.key_len = parse_hint(cfg, "mimir.output_key_hint", oh.key_len);
    oh.value_len = parse_hint(cfg, "mimir.output_value_hint", oh.value_len);
    out.output_hint = oh;
  }
  return out;
}

Job::Job(simmpi::Context& ctx, JobConfig cfg)
    : ctx_(ctx),
      cfg_(cfg),
      intermediate_(ctx.tracker, cfg.page_size, cfg.hint),
      output_(ctx.tracker, cfg.page_size,
              cfg.output_hint.value_or(cfg.hint)) {
  if (cfg.ooc_live_bytes != 0) {
    // Unique per rank and per Job object; removed when the container
    // is consumed, cleared, or destroyed.
    char tag[32];
    std::snprintf(tag, sizeof(tag), "%p", static_cast<void*>(this));
    intermediate_.enable_spill(
        {&ctx.fs, &ctx.clock(),
         "mimir/ooc/r" + std::to_string(ctx.rank()) + "." + tag,
         cfg.ooc_live_bytes, cfg.prefetch});
  }
}

Job Job::resumed(simmpi::Context& ctx, JobConfig cfg,
                 KVContainer intermediate) {
  Job job(ctx, cfg);
  job.intermediate_ = std::move(intermediate);
  job.metrics_.intermediate_kvs = job.intermediate_.num_kvs();
  job.metrics_.intermediate_bytes = job.intermediate_.data_bytes();
  job.metrics_.map_end_time = ctx.clock().now();
  job.phase_ = Phase::kMapped;
  return job;
}

void Job::run_map(const std::function<void(Emitter&)>& producer,
                  const CombineFn& combiner) {
  if (phase_ != Phase::kCreated) {
    throw mutil::UsageError("mimir::Job: map phase already ran");
  }
  if (cfg_.kv_compression && !combiner) {
    throw mutil::UsageError(
        "mimir::Job: kv_compression requires a combiner callback");
  }

  // The aggregate scopes opened by Shuffle::exchange_round nest inside
  // this map scope, mirroring Mimir's map phase with interleaved
  // communication.
  const stats::PhaseScope phase("map");
  inject::phase_point("map");
  if (cfg_.balance.enabled) {
    balancer_ =
        std::make_unique<balance::Balancer>(cfg_.balance, ctx_.size());
  }
  Shuffle shuffle(ctx_, cfg_.comm_buffer, cfg_.hint, intermediate_,
                  cfg_.partitioner, cfg_.overlap, balancer_.get());
  if (cfg_.kv_compression) {
    // cps: combine locally first, then shuffle the survivors (either at
    // the end of the input, or incrementally under cps_max_bucket).
    CombineTable bucket(ctx_.tracker, cfg_.page_size, cfg_.hint, combiner);
    BucketEmitter emitter(bucket, shuffle, cfg_.cps_max_bucket, ctx_);
    producer(emitter);
    emitter.flush();
    metrics_.combined_kvs = emitter.combined();
  } else {
    ShuffleEmitter emitter(shuffle);
    producer(emitter);
  }
  shuffle.finalize();
  if (balancer_ != nullptr) {
    merge_planned(combiner);
  }

  metrics_.map_emitted_kvs = shuffle.kvs_emitted();
  metrics_.map_emitted_bytes = shuffle.bytes_emitted();
  metrics_.exchange_rounds = shuffle.rounds();
  metrics_.intermediate_kvs = intermediate_.num_kvs();
  metrics_.intermediate_bytes = intermediate_.data_bytes();
  metrics_.map_end_time = ctx_.clock().now();
  if (stats::Registry* reg = stats::current()) {
    reg->add("map.emitted_kvs", metrics_.map_emitted_kvs);
    reg->add("map.emitted_bytes", metrics_.map_emitted_bytes);
    reg->add("map.input_bytes", metrics_.input_bytes);
    reg->add("map.combined_kvs", metrics_.combined_kvs);
    reg->add("map.intermediate_kvs", metrics_.intermediate_kvs);
    reg->add("map.intermediate_bytes", metrics_.intermediate_bytes);
  }
  check::audit_point(ctx_.tracker, "map end");
  phase_ = Phase::kMapped;
}

void Job::merge_planned(const CombineFn& combiner) {
  // The plan is built from the same merged sketch on every rank, so it
  // is empty on all ranks or on none — the early return cannot desync
  // the collective protocol below.
  const balance::Plan& plan = balancer_->plan();
  if (plan.empty()) return;
  // Planned keys were scattered across their plan ranks to balance the
  // map/aggregate work; re-home them to the original partitioner/hash
  // destination so downstream consumers (reduce, checkpoints, map-only
  // outputs, placement-sensitive apps) observe exactly the balance-off
  // placement. With a combiner the split shares are combined locally
  // first — the combine work and memory stay distributed, and only the
  // combined partials travel home.
  const stats::PhaseScope merge_phase("balance.merge");
  inject::phase_point("balance.merge");
  KVContainer keep(ctx_.tracker, cfg_.page_size, cfg_.hint);
  if (cfg_.ooc_live_bytes != 0) {
    char tag[32];
    std::snprintf(tag, sizeof(tag), "%pm", static_cast<void*>(this));
    keep.enable_spill(
        {&ctx_.fs, &ctx_.clock(),
         "mimir/ooc/r" + std::to_string(ctx_.rank()) + "." + tag,
         cfg_.ooc_live_bytes, cfg_.prefetch});
  }
  KVContainer merged(ctx_.tracker, cfg_.page_size, cfg_.hint);
  Shuffle shuffle(ctx_, cfg_.comm_buffer, cfg_.hint, merged,
                  cfg_.partitioner);
  std::uint64_t merge_kvs = 0;
  std::uint64_t merge_bytes = 0;
  const double rate = ctx_.machine.kv_rate;
  const auto classify = [&](const KVView& kv, auto&& planned_sink) {
    ctx_.clock().advance(
        static_cast<double>(kv.key.size() + kv.value.size() + 8) / rate);
    if (balancer_->is_planned_key(kv.key)) {
      planned_sink(kv);
    } else {
      keep.append(kv);
    }
  };
  if (combiner) {
    CombineTable table(ctx_.tracker, cfg_.page_size, cfg_.hint, combiner);
    intermediate_.consume(
        [&](const KVView& kv) {
          classify(kv, [&](const KVView& p) { table.upsert(p.key, p.value); });
        });
    table.for_each([&](const KVView& kv) {
      ++merge_kvs;
      merge_bytes += kv.key.size() + kv.value.size();
      shuffle.emit(kv.key, kv.value);
    });
  } else {
    intermediate_.consume([&](const KVView& kv) {
      classify(kv, [&](const KVView& p) {
        ++merge_kvs;
        merge_bytes += p.key.size() + p.value.size();
        shuffle.emit(p.key, p.value);
      });
    });
  }
  shuffle.finalize();
  merged.consume([&](const KVView& kv) { keep.append(kv); });
  intermediate_ = std::move(keep);
  if (stats::Registry* reg = stats::current()) {
    reg->add("balance.merge_kvs", merge_kvs);
    reg->add("balance.merge_bytes", merge_bytes);
  }
}

void Job::map_text_files(std::span<const std::string> files,
                         const MapRecordFn& fn, const CombineFn& combiner) {
  run_map(
      [&](Emitter& emitter) {
        std::string carry;
        // Shared per-chunk body: both input paths feed identical chunk
        // boundaries through it, so emissions (and therefore shuffle
        // rounds and results) are bit-identical prefetch on or off.
        const auto feed = [&](const std::byte* data, std::size_t n) {
          carry.append(reinterpret_cast<const char*>(data), n);
          // Hand over whole lines; keep the partial tail for the next
          // chunk so words never split across callbacks.
          const std::size_t cut = carry.rfind('\n');
          if (cut == std::string::npos) return;
          const std::string_view record(carry.data(), cut + 1);
          metrics_.input_bytes += record.size();
          ctx_.clock().advance(static_cast<double>(record.size()) /
                               ctx_.machine.map_rate);
          fn(record, emitter);
          carry.erase(0, cut + 1);
        };
        const auto flush_tail = [&] {
          if (carry.empty()) return;
          metrics_.input_bytes += carry.size();
          ctx_.clock().advance(static_cast<double>(carry.size()) /
                               ctx_.machine.map_rate);
          fn(carry, emitter);
          carry.clear();
        };
        std::vector<std::byte> chunk;
        if (!cfg_.prefetch) chunk.resize(cfg_.input_chunk);
        for (std::size_t i = static_cast<std::size_t>(ctx_.rank());
             i < files.size();
             i += static_cast<std::size_t>(ctx_.size())) {
          carry.clear();
          if (cfg_.prefetch) {
            // Read-ahead: map chunk k while chunk k+1 is in flight.
            pfs::AsyncReader reader(ctx_.fs.open(files[i]), ctx_.tracker,
                                    cfg_.input_chunk, cfg_.prefetch_depth,
                                    ctx_.clock());
            for (;;) {
              const std::span<const std::byte> data = reader.next(ctx_.clock());
              if (data.empty()) break;
              feed(data.data(), data.size());
            }
          } else {
            pfs::Reader reader = ctx_.fs.open(files[i]);
            for (;;) {
              const std::size_t n = reader.read(chunk, ctx_.clock());
              if (n == 0) break;
              feed(chunk.data(), n);
            }
          }
          flush_tail();
        }
      },
      combiner);
}

void Job::map_kvs(KVContainer input, const MapKvFn& fn,
                  const CombineFn& combiner) {
  run_map(
      [&](Emitter& emitter) {
        const double rate = ctx_.machine.map_rate;
        input.consume([&](const KVView& kv) {
          metrics_.input_bytes += kv.key.size() + kv.value.size();
          ctx_.clock().advance(
              static_cast<double>(kv.key.size() + kv.value.size()) / rate);
          fn(kv.key, kv.value, emitter);
        });
      },
      combiner);
}

void Job::map_custom(const CustomMapFn& fn, const CombineFn& combiner) {
  run_map([&](Emitter& emitter) { fn(emitter); }, combiner);
}

std::uint64_t Job::reduce(const ReduceFn& fn) {
  if (phase_ != Phase::kMapped) {
    throw mutil::UsageError("mimir::Job: reduce requires a completed map");
  }
  ConvertStats stats;
  KMVContainer kmvc = convert(ctx_, intermediate_, cfg_.page_size, &stats);
  metrics_.unique_keys = stats.unique_keys;

  const stats::PhaseScope phase("reduce");
  inject::phase_point("reduce");
  OutputEmitter emitter(output_, ctx_);
  const double rate = ctx_.machine.reduce_rate;
  const std::uint64_t kmv_bytes = kmvc.data_bytes();
  kmvc.consume([&](std::string_view key, ValueReader& values) {
    fn(key, values, emitter);
  });
  ctx_.clock().advance(static_cast<double>(kmv_bytes) / rate);

  metrics_.output_kvs = output_.num_kvs();
  metrics_.output_bytes = output_.data_bytes();
  metrics_.reduce_end_time = ctx_.clock().now();
  if (stats::Registry* reg = stats::current()) {
    reg->add("reduce.unique_keys", metrics_.unique_keys);
    reg->add("reduce.output_kvs", metrics_.output_kvs);
    reg->add("reduce.output_bytes", metrics_.output_bytes);
  }
  check::audit_point(ctx_.tracker, "reduce end");
  phase_ = Phase::kReduced;
  return metrics_.output_kvs;
}

std::uint64_t Job::partial_reduce(const CombineFn& combiner) {
  if (phase_ != Phase::kMapped) {
    throw mutil::UsageError(
        "mimir::Job: partial_reduce requires a completed map");
  }
  const stats::PhaseScope phase("partial_reduce");
  inject::phase_point("partial_reduce");
  CombineTable bucket(ctx_.tracker, cfg_.page_size, cfg_.hint, combiner);
  const double rate = ctx_.machine.reduce_rate;
  intermediate_.consume([&](const KVView& kv) {
    ctx_.clock().advance(
        static_cast<double>(kv.key.size() + kv.value.size()) / rate);
    bucket.upsert(kv.key, kv.value);
  });
  metrics_.unique_keys = bucket.size();

  bucket.for_each([&](const KVView& kv) { output_.append(kv); });
  ctx_.clock().advance(static_cast<double>(output_.data_bytes()) / rate);

  metrics_.output_kvs = output_.num_kvs();
  metrics_.output_bytes = output_.data_bytes();
  metrics_.reduce_end_time = ctx_.clock().now();
  if (stats::Registry* reg = stats::current()) {
    reg->add("reduce.unique_keys", metrics_.unique_keys);
    reg->add("reduce.output_kvs", metrics_.output_kvs);
    reg->add("reduce.output_bytes", metrics_.output_bytes);
  }
  check::audit_point(ctx_.tracker, "partial_reduce end");
  phase_ = Phase::kReduced;
  return metrics_.output_kvs;
}

}  // namespace mimir
