#include "simtime/machine.hpp"

#include "mutil/error.hpp"

namespace simtime {

namespace {
constexpr std::uint64_t kMiB = 1ULL << 20;
}

MachineProfile MachineProfile::comet_sim() {
  MachineProfile p;
  p.name = "comet_sim";
  p.ranks_per_node = 24;            // two 12-core Xeon E5-2680v3
  p.node_memory = 128 * kMiB;       // 128 GB scaled by 1/1024
  p.map_rate = 200e3;               // ~200 MB/s/core scaled by 1/1024
  p.kv_rate = 400e3;
  p.reduce_rate = 400e3;
  p.net_latency = 2e-6;             // FDR InfiniBand
  p.net_bandwidth = 280e3;          // ~7 GB/s node / 24 ranks, scaled
  p.pfs_latency = 5e-3;             // Lustre metadata + RPC round trip
  p.pfs_bandwidth = 4e6;            // aggregate backend, scaled
  p.pfs_client_bandwidth = 20e3;    // per-rank share of one node's link
  return p;
}

MachineProfile MachineProfile::mira_sim() {
  MachineProfile p;
  p.name = "mira_sim";
  p.ranks_per_node = 16;            // 16 PowerPC A2 cores per node
  p.node_memory = 16 * kMiB;        // 16 GB scaled by 1/1024
  p.map_rate = 40e3;                // A2 cores ~5x slower than Xeon
  p.kv_rate = 80e3;
  p.reduce_rate = 80e3;
  p.net_latency = 3e-6;             // 5-D torus
  p.net_bandwidth = 120e3;          // ~2 GB/s node / 16 ranks, scaled
  p.pfs_latency = 10e-3;            // GPFS through 1:128 I/O forwarding
  p.pfs_bandwidth = 3e6;            // aggregate backend, scaled
  p.pfs_client_bandwidth = 15e3;    // per-rank share via I/O forwarding
  return p;
}

MachineProfile MachineProfile::test_profile() {
  MachineProfile p;
  p.name = "test";
  p.ranks_per_node = 4;
  p.node_memory = 0;  // unlimited
  p.map_rate = 1e12;
  p.kv_rate = 1e12;
  p.reduce_rate = 1e12;
  p.net_latency = 0.0;
  p.net_bandwidth = 1e12;
  p.pfs_latency = 0.0;
  p.pfs_bandwidth = 1e12;
  p.pfs_client_bandwidth = 1e12;
  return p;
}

MachineProfile MachineProfile::by_name(const std::string& name) {
  if (name == "comet" || name == "comet_sim") return comet_sim();
  if (name == "mira" || name == "mira_sim") return mira_sim();
  if (name == "test") return test_profile();
  throw mutil::ConfigError("unknown machine profile '" + name + "'");
}

void MachineProfile::apply_overrides(const mutil::Config& cfg) {
  ranks_per_node = static_cast<int>(
      cfg.get_int("machine.ranks_per_node", ranks_per_node));
  node_memory = cfg.get_size("machine.node_memory", node_memory);
  map_rate = cfg.get_double("machine.map_rate", map_rate);
  kv_rate = cfg.get_double("machine.kv_rate", kv_rate);
  reduce_rate = cfg.get_double("machine.reduce_rate", reduce_rate);
  net_latency = cfg.get_double("machine.net_latency", net_latency);
  net_bandwidth = cfg.get_double("machine.net_bandwidth", net_bandwidth);
  pfs_latency = cfg.get_double("machine.pfs_latency", pfs_latency);
  pfs_bandwidth = cfg.get_double("machine.pfs_bandwidth", pfs_bandwidth);
  pfs_client_bandwidth = cfg.get_double("machine.pfs_client_bandwidth",
                                        pfs_client_bandwidth);
}

}  // namespace simtime
