#include "simtime/clock.hpp"

// Clock is header-only; this TU exists so the library has a stable
// archive member and a place for future out-of-line additions.
namespace simtime {}
