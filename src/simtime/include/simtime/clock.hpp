// Simulated per-rank clocks.
//
// Wall-clock on a single oversubscribed core cannot reproduce the paper's
// timing figures, so every framework operation charges a deterministic
// cost (from the MachineProfile) to the calling rank's Clock. Collectives
// synchronize clocks to the slowest participant, which is exactly the
// mechanism behind the paper's load-imbalance observations: a rank holding
// more intermediate data charges more time and drags everyone with it.
#pragma once

#include <algorithm>

namespace simtime {

/// One rank's simulated clock, in seconds. Owned by a single thread;
/// synchronization happens explicitly through collective operations.
class Clock {
 public:
  Clock() noexcept = default;

  void advance(double seconds) noexcept { now_ += seconds; }
  double now() const noexcept { return now_; }
  void set(double t) noexcept { now_ = t; }
  void sync_to(double t) noexcept { now_ = std::max(now_, t); }
  void reset() noexcept { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

}  // namespace simtime
