// Machine cost-model profiles.
//
// Two profiles stand in for the paper's testbeds, with every *size*
// scaled by 1/1024 (datasets, pages, node memory) so laptop runs keep the
// paper's size:page:memory ratios:
//
//   comet_sim — SDSC Comet:   24-core Xeon nodes, 128 GB -> 128 MB,
//               FDR InfiniBand, Lustre.
//   mira_sim  — ALCF Mira:    16-core BG/Q nodes, 16 GB -> 16 MB,
//               5-D torus, GPFS (shared I/O forwarding, 1:128).
//
// Rates are chosen so that the relative magnitudes match the real
// machines (Mira cores ~5x slower than Comet cores; PFS bandwidth orders
// of magnitude below memory processing rates), which is what the
// reproduced figures' *shapes* depend on.
#pragma once

#include <cstdint>
#include <string>

#include "mutil/config.hpp"

namespace simtime {

struct MachineProfile {
  std::string name;

  // Topology.
  int ranks_per_node = 1;
  std::uint64_t node_memory = 0;  ///< bytes of DRAM per node (0 = unlimited)

  // Compute rates, bytes/second per rank.
  double map_rate = 0;      ///< user map callback processing of input bytes
  double kv_rate = 0;       ///< framework KV handling (hash, copy, insert)
  double reduce_rate = 0;   ///< convert/reduce processing of KV bytes

  // Network (alpha-beta model per collective).
  double net_latency = 0;    ///< seconds per collective round
  double net_bandwidth = 0;  ///< bytes/second injection per rank

  // Parallel file system. A client moves bytes at
  // min(pfs_client_bandwidth, pfs_bandwidth / num_clients): small jobs
  // are limited by their own link to the PFS, very wide jobs contend
  // for the aggregate backend bandwidth.
  double pfs_latency = 0;           ///< seconds per I/O operation
  double pfs_bandwidth = 0;         ///< aggregate backend bytes/second
  double pfs_client_bandwidth = 0;  ///< per-rank ceiling, bytes/second

  /// SDSC Comet stand-in (sizes scaled 1/1024).
  static MachineProfile comet_sim();
  /// ALCF Mira (BG/Q) stand-in (sizes scaled 1/1024).
  static MachineProfile mira_sim();
  /// Unlimited-memory, zero-cost profile for unit tests.
  static MachineProfile test_profile();

  /// Look up by name ("comet", "mira", "test"); throws ConfigError.
  static MachineProfile by_name(const std::string& name);

  /// Apply "machine.*" overrides from a Config (e.g. machine.node_memory).
  void apply_overrides(const mutil::Config& cfg);
};

}  // namespace simtime
