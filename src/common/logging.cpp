#include "mutil/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

#include "mutil/error.hpp"

namespace mutil {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

LogContext& thread_context() {
  thread_local LogContext context;
  return context;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn" || name == "warning") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  throw ConfigError("log level must be debug|info|warn|error, got '" +
                    std::string(name) + "'");
}

void set_thread_log_context(LogContext context) {
  thread_context() = std::move(context);
}

void clear_thread_log_context() noexcept { thread_context() = LogContext{}; }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const LogContext& context = thread_context();
  char prefix[64] = "";
  if (context.rank >= 0) {
    // Read the simulated clock outside the lock: the clock belongs to
    // the calling rank thread, so this is race-free by construction.
    if (context.sim_now) {
      std::snprintf(prefix, sizeof(prefix), "[r%d @ %.6fs]", context.rank,
                    context.sim_now());
    } else {
      std::snprintf(prefix, sizeof(prefix), "[r%d]", context.rank);
    }
  }
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s]%s %s\n", level_name(level), prefix,
               message.c_str());
}

}  // namespace mutil
