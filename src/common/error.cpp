#include "mutil/error.hpp"

// Out-of-line anchor for the vtables of the error hierarchy.
namespace mutil {}
