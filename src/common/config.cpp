#include "mutil/config.hpp"

#include <algorithm>
#include <charconv>

#include "mutil/error.hpp"
#include "mutil/sizes.hpp"

namespace mutil {

Config Config::from_args(const std::vector<std::string>& args) {
  Config cfg;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError("expected key=value, got '" + arg + "'");
    }
    cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return cfg;
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::contains(std::string_view key) const noexcept {
  return entries_.find(key) != entries_.end();
}

std::string Config::get_string(std::string_view key,
                               std::string_view fallback) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? std::string(fallback) : it->second;
}

std::int64_t Config::get_int(std::string_view key,
                             std::int64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::int64_t value = 0;
  const auto& text = it->second;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ConfigError("config key '" + std::string(key) +
                      "': bad integer '" + text + "'");
  }
  return value;
}

double Config::get_double(std::string_view key, double fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  double value = 0.0;
  const auto& text = it->second;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ConfigError("config key '" + std::string(key) + "': bad double '" +
                      text + "'");
  }
  return value;
}

bool Config::get_bool(std::string_view key, bool fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  std::string text = it->second;
  std::transform(text.begin(), text.end(), text.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  throw ConfigError("config key '" + std::string(key) + "': bad bool '" +
                    it->second + "'");
}

std::uint64_t Config::get_size(std::string_view key,
                               std::uint64_t fallback) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return fallback;
  return parse_size(it->second);
}

void Config::merge(const Config& other) {
  for (const auto& [key, value] : other.entries_) {
    entries_[key] = value;
  }
}

}  // namespace mutil
