// Key/value configuration store.
//
// Every framework object (Mimir job, MR-MPI instance, machine profile)
// is configured through a Config so that examples and benchmarks can
// accept "key=value" command-line overrides exactly like the original
// Mimir accepted environment variables.
//
// Process-wide keys honored by the drivers (bench::parse_cli):
//   * mimir.log_level = debug|info|warn|error — global mutil logging
//     threshold (the benchmark default is warn, keeping tables clean);
//     see mutil/logging.hpp.
//   * stats=1, trace=1, bench_dir=<path> — machine-readable bench
//     metrics and Chrome trace output; see bench/harness.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mutil {

class Config {
 public:
  Config() = default;

  /// Parse a list of "key=value" tokens (e.g. argv tail).
  static Config from_args(const std::vector<std::string>& args);

  void set(std::string key, std::string value);
  bool contains(std::string_view key) const noexcept;

  /// Typed getters; throw ConfigError when present but malformed.
  std::string get_string(std::string_view key,
                         std::string_view fallback) const;
  std::int64_t get_int(std::string_view key, std::int64_t fallback) const;
  double get_double(std::string_view key, double fallback) const;
  bool get_bool(std::string_view key, bool fallback) const;
  /// Accepts size suffixes ("64K", "1G").
  std::uint64_t get_size(std::string_view key, std::uint64_t fallback) const;

  /// Merge other into this, other's entries winning.
  void merge(const Config& other);

  const std::map<std::string, std::string, std::less<>>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string, std::less<>> entries_;
};

}  // namespace mutil
