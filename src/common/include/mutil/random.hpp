// Deterministic random number generation for dataset synthesis.
//
// Xoshiro256** seeded through SplitMix64; plus the distributions the
// paper's workloads need: uniform words, Zipf-distributed word ranks
// (Wikipedia-like skew), normal 3-D points (octree clustering), and the
// Kronecker edge sampler used by the Graph500-style generator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mutil {

/// SplitMix64 — used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 — fast, high-quality, reproducible across platforms.
/// Satisfies UniformRandomBitGenerator so <random> distributions accept it.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Unbiased integer in [0, bound) via Lemire's multiply-shift method.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Standard normal via Marsaglia polar method (cached spare).
  double normal() noexcept;

  /// Split off an independent stream (for per-rank generators).
  Xoshiro256 split() noexcept;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Zipf(s, n) sampler over ranks {1..n} using the rejection-inversion
/// method of Hörmann & Derflinger — O(1) per sample, no O(n) tables.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t num_elements, double exponent);

  /// Returns a rank in [0, num_elements).
  std::uint64_t sample(Xoshiro256& rng) const noexcept;

  std::uint64_t size() const noexcept { return n_; }
  double exponent() const noexcept { return s_; }

 private:
  double h(double x) const noexcept;
  double h_inv(double x) const noexcept;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double base_;  // normalizer for the rejection test
};

}  // namespace mutil
