// Human-readable byte-size parsing and formatting.
//
// Benchmark tables print dataset sizes exactly like the paper's axes
// ("256M", "1G", "2^24"), and configuration accepts the same syntax.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mutil {

/// Parse "64", "64K", "64M", "1G", "2T" (case-insensitive, optional "B"
/// and "iB" suffixes) into a byte count. Throws ConfigError on garbage.
std::uint64_t parse_size(std::string_view text);

/// Format a byte count the way the paper labels its axes: powers of two
/// collapse to "256M", "1G"; other values get one decimal ("1.5G").
std::string format_size(std::uint64_t bytes);

/// Format a count as a power of two if exact ("2^24"), else plain digits.
std::string format_pow2(std::uint64_t count);

}  // namespace mutil
