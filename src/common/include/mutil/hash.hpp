// Hash functions used for KV partitioning and combiner hash buckets.
//
// The project deliberately uses its own hash implementations instead of
// std::hash so that partitioning decisions are stable across standard
// libraries — reproducibility of every benchmark table depends on the
// same key landing on the same rank everywhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace mutil {

/// FNV-1a 64-bit hash. Stable, endian-independent, byte-oriented.
std::uint64_t fnv1a(std::span<const std::byte> data) noexcept;
std::uint64_t fnv1a(std::string_view data) noexcept;

/// A stronger 64-bit mix (xxHash-style avalanche) applied on top of
/// FNV-1a. Used where clustering of adjacent keys must be avoided,
/// e.g. open-addressing combiner buckets.
std::uint64_t hash_bytes(std::span<const std::byte> data) noexcept;
std::uint64_t hash_bytes(std::string_view data) noexcept;

/// Finalizing mix for integer keys (SplitMix64 finalizer).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace mutil
