// Minimal thread-safe leveled logger.
//
// Rank threads log concurrently; lines are serialized under one mutex so
// output never interleaves mid-line. Level is process-global and set once
// by the driver (benchmarks default to warn to keep tables clean; pass
// mimir.log_level=debug|info|warn|error on any bench command line).
//
// Rank attribution: simmpi binds a per-thread LogContext to every rank
// thread, so a line emitted from inside a rank function is prefixed with
// the emitting rank id and its *simulated* timestamp —
//
//     [INFO][r3 @ 0.014625s] spilling 64K to mimir/ooc/r3
//
// while off-rank callers (drivers, tests) keep the plain prefix.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace mutil {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "debug" / "info" / "warn" / "error" (the mimir.log_level config
/// values); throws ConfigError on anything else.
LogLevel parse_log_level(std::string_view name);

/// Identity attached to every log line emitted by the calling thread.
struct LogContext {
  int rank = -1;                    ///< < 0 = no rank prefix
  std::function<double()> sim_now;  ///< simulated seconds; may be empty
};

/// Bind/clear the calling thread's log context (simmpi rank threads).
void set_thread_log_context(LogContext context);
void clear_thread_log_context() noexcept;

/// RAII binding of the calling thread's log context.
class ScopedLogContext {
 public:
  explicit ScopedLogContext(LogContext context) {
    set_thread_log_context(std::move(context));
  }
  ~ScopedLogContext() { clear_thread_log_context(); }

  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;
};

/// Emit one line at the given level (no-op if below the global level).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_error(Args&&... args) {
  log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace mutil
