// Minimal thread-safe leveled logger.
//
// Rank threads log concurrently; lines are serialized under one mutex so
// output never interleaves mid-line. Level is process-global and set once
// by the driver (benchmarks default to warn to keep tables clean).
#pragma once

#include <sstream>
#include <string>

namespace mutil {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line at the given level (no-op if below the global level).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
  }
}

template <typename... Args>
void log_error(Args&&... args) {
  log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace mutil
