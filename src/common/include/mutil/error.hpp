// Error hierarchy shared by all modules of the Mimir reproduction.
//
// All recoverable failures are reported as exceptions derived from
// mutil::Error so that callers can catch one base type at framework
// boundaries. The two subclasses that benchmarks rely on are
// OutOfMemoryError (a rank exceeded its simulated node memory budget)
// and IoError (simulated parallel file system failures).
#pragma once

#include <stdexcept>
#include <string>

namespace mutil {

/// Base class for all errors raised by this project.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a tracked allocation would exceed the configured memory
/// limit of a rank or node. Benchmarks catch this to mark a configuration
/// as "cannot run in memory", mirroring the paper's missing data points.
class OutOfMemoryError : public Error {
 public:
  OutOfMemoryError(const std::string& what, std::size_t requested,
                   std::size_t limit)
      : Error(what), requested_(requested), limit_(limit) {}

  std::size_t requested() const noexcept { return requested_; }
  std::size_t limit() const noexcept { return limit_; }

 private:
  std::size_t requested_;
  std::size_t limit_;
};

/// Raised on simulated parallel-file-system failures (missing file,
/// read past end, write to a read-only stream, ...).
class IoError : public Error {
 public:
  using Error::Error;
};

/// Raised for *injected* transient PFS failures (src/inject). Carries
/// the simulated time of the failed operation so a recovery policy can
/// account the lost work; distinguishable from a real IoError (corrupt
/// checkpoint, missing file) which is not retryable.
class TransientIoError : public IoError {
 public:
  explicit TransientIoError(const std::string& what, double sim_time = 0.0)
      : IoError(what), sim_time_(sim_time) {}

  double sim_time() const noexcept { return sim_time_; }

 private:
  double sim_time_;
};

/// Raised when a simulated rank dies (fault injection or a future node
/// failure model). Thrown by the dying rank itself and re-thrown by
/// peers blocked in collectives/recv so a whole job unwinds cleanly
/// instead of hanging; simmpi::run rethrows the original. Recovery
/// policies treat it as retryable.
class RankFailedError : public Error {
 public:
  RankFailedError(const std::string& what, int rank, double sim_time = 0.0)
      : Error(what), rank_(rank), sim_time_(sim_time) {}

  /// The job-global rank that died.
  int rank() const noexcept { return rank_; }
  /// Simulated seconds on the dying rank's clock at the point of death.
  double sim_time() const noexcept { return sim_time_; }

 private:
  int rank_;
  double sim_time_;
};

/// Raised on malformed configuration values.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Raised on misuse of the simmpi communication substrate (mismatched
/// collective participation, invalid rank, type size disagreement, ...).
class CommError : public Error {
 public:
  using Error::Error;
};

/// Raised when a framework API is driven through an invalid phase
/// transition (e.g. MR-MPI convert() before aggregate()).
class UsageError : public Error {
 public:
  using Error::Error;
};

}  // namespace mutil
