#include "mutil/sizes.hpp"

#include <array>
#include <bit>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "mutil/error.hpp"

namespace mutil {

std::uint64_t parse_size(std::string_view text) {
  if (text.empty()) throw ConfigError("parse_size: empty string");
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || value < 0) {
    throw ConfigError("parse_size: bad number in '" + std::string(text) + "'");
  }
  std::uint64_t multiplier = 1;
  if (ptr != end) {
    switch (std::toupper(static_cast<unsigned char>(*ptr))) {
      case 'K': multiplier = 1ULL << 10; ++ptr; break;
      case 'M': multiplier = 1ULL << 20; ++ptr; break;
      case 'G': multiplier = 1ULL << 30; ++ptr; break;
      case 'T': multiplier = 1ULL << 40; ++ptr; break;
      case 'B': break;  // bare byte suffix handled below
      default:
        throw ConfigError("parse_size: bad suffix in '" + std::string(text) +
                          "'");
    }
    // Optional trailing "iB"/"B".
    std::string_view rest(ptr, static_cast<std::size_t>(end - ptr));
    if (!(rest.empty() || rest == "B" || rest == "b" || rest == "iB" ||
          rest == "ib")) {
      throw ConfigError("parse_size: trailing junk in '" + std::string(text) +
                        "'");
    }
  }
  return static_cast<std::uint64_t>(value * static_cast<double>(multiplier));
}

std::string format_size(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"", "K", "M", "G",
                                                         "T"};
  int tier = 0;
  auto value = static_cast<double>(bytes);
  while (value >= 1024.0 && tier < 4) {
    value /= 1024.0;
    ++tier;
  }
  char buf[32];
  if (bytes != 0 && (bytes & (bytes - 1)) == 0) {
    // Power of two: print exactly, paper style ("256M").
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, kSuffix[tier]);
  } else if (value == static_cast<std::uint64_t>(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, kSuffix[tier]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, kSuffix[tier]);
  }
  return buf;
}

std::string format_pow2(std::uint64_t count) {
  if (count != 0 && (count & (count - 1)) == 0) {
    return "2^" + std::to_string(std::countr_zero(count));
  }
  return std::to_string(count);
}

}  // namespace mutil
