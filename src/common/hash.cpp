#include "mutil/hash.hpp"

namespace mutil {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a_raw(const void* p, std::size_t n) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(p);
  std::uint64_t h = kFnvOffset;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t fnv1a(std::span<const std::byte> data) noexcept {
  return fnv1a_raw(data.data(), data.size());
}

std::uint64_t fnv1a(std::string_view data) noexcept {
  return fnv1a_raw(data.data(), data.size());
}

std::uint64_t hash_bytes(std::span<const std::byte> data) noexcept {
  return mix64(fnv1a(data));
}

std::uint64_t hash_bytes(std::string_view data) noexcept {
  return mix64(fnv1a(data));
}

}  // namespace mutil
