#include "mutil/random.hpp"

#include <cmath>

#include "mutil/error.hpp"

namespace mutil {

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift with rejection for exact uniformity.
  if (bound == 0) return 0;
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

Xoshiro256 Xoshiro256::split() noexcept {
  return Xoshiro256(next() ^ 0xa5a5a5a55a5a5a5aULL);
}

ZipfSampler::ZipfSampler(std::uint64_t num_elements, double exponent)
    : n_(num_elements), s_(exponent) {
  if (num_elements == 0) throw ConfigError("ZipfSampler: empty domain");
  if (exponent <= 0.0) throw ConfigError("ZipfSampler: exponent must be > 0");
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n_) + 0.5);
  base_ = h_x1_ - h_n_;
}

double ZipfSampler::h(double x) const noexcept {
  // H(x) = integral of t^(-s) dt: (x^(1-s) - 1)/(1 - s), log(x) at s == 1.
  if (s_ == 1.0) return std::log(x);
  return std::expm1((1.0 - s_) * std::log(x)) / (1.0 - s_);
}

double ZipfSampler::h_inv(double x) const noexcept {
  if (s_ == 1.0) return std::exp(x);
  return std::exp(std::log1p(x * (1.0 - s_)) / (1.0 - s_));
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const noexcept {
  // Rejection-inversion (Hörmann & Derflinger 1996). Each iteration
  // accepts with high probability for s in (0, ~4].
  for (;;) {
    const double u = h_n_ + rng.uniform() * base_;
    const double x = h_inv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double pmf =
        std::exp(-s_ * std::log(static_cast<double>(k)));  // k^-s
    if (u >= h(static_cast<double>(k) + 0.5) - pmf) {
      return k - 1;
    }
  }
}

}  // namespace mutil
