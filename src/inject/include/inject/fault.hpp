// Deterministic fault injection (the "mimir-inject" layer).
//
// The paper motivates Mimir partly by MR-MPI's fault intolerance, fixed
// by the authors' companion checkpoint/restart work (Guo et al., SC'15)
// that this repo reproduces in src/core/checkpoint.cpp. To exercise that
// recovery path systematically — not ad hoc per test — this module
// injects failures at deterministic points of the *simulation*:
//
//   * rank crash  — a chosen rank throws mutil::RankFailedError when it
//     enters a chosen phase (or when its simulated clock passes a chosen
//     time), on a chosen attempt;
//   * transient PFS errors — each read/write fails with
//     mutil::TransientIoError with a configured probability, drawn from
//     a counter-based per-rank RNG; optionally, surviving operations run
//     at degraded bandwidth (a cost multiplier);
//   * memory spikes — a temporary charge through the rank's
//     memtrack::Tracker at a phase entry, recording a peak (and possibly
//     throwing OutOfMemoryError against the node budget).
//
// Determinism contract: every trigger is evaluated at a hook point of
// the simulation (phase entry, PFS operation) against per-rank state
// only — the rank's own operation counter, its own simulated clock, and
// an RNG seeded from (plan seed, rank, attempt). Host-thread scheduling
// never influences which faults fire, so a fixed FaultPlan yields the
// same failure schedule on every run.
//
// Wiring follows the stats/check pattern: an Injector is bound
// thread-local per rank (ScopedInject); framework hook sites call the
// free functions below, which are no-ops when nothing is bound — with
// injection disabled, simulated results are bit-identical to an
// uninstrumented run (enforced by test).
//
// Plan grammar (one spec string, e.g. from config key "mimir.inject"):
//
//   spec      := clause (',' clause)*
//   clause    := 'rank_crash:' rank '@' trigger ['#' attempt]
//              | 'node_crash:' node '@' trigger ['#' attempt]
//              | 'mem_spike:' size '@' trigger
//              | 'pfs_error:' probability
//              | 'pfs_slow:'  factor
//              | 'seed:' integer
//   trigger   := phase-name | simulated-seconds (number)
//
// e.g. "rank_crash:2@reduce,pfs_error:0.01,mem_spike:8K@convert".
// Phase names are the framework's hook names: map, aggregate, convert,
// reduce, partial_reduce, checkpoint_save, checkpoint_load — plus, in
// the overlapped shuffle, aggregate.initiate (right after the
// non-blocking round is started) and aggregate.wait (right before the
// in-flight round is waited on), for faults between initiate and wait.
// With mimir.balance=1 there are two more: balance.plan (right before
// the sketch allgatherv at the first exchange round) and balance.merge
// (at the start of the end-of-map merge pass that re-homes planned
// keys). With mimir.prefetch=1 the async I/O pipeline adds
// pfs.prefetch (right after a read-ahead request is issued, for faults
// in the issue→wait window) and pfs.flush (at a write-behind drain,
// right before the queued costs are charged).
// Crash and spike clauses fire on attempt 1 unless '#N' says otherwise,
// so a retried job is not killed again by the same clause.
//
// node_crash models a whole-node failure domain: every rank in the
// ranks_per_node group of simulated node N dies at the trigger (the
// first one to reach it aborts the job, which unwinds the rest — the
// unit-abort semantics real node loss has). Requires set_topology();
// without it each injector assumes one rank per node.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "memtrack/tracker.hpp"
#include "mutil/random.hpp"
#include "simtime/clock.hpp"

namespace mutil {
class Config;
}

namespace inject {

/// When a clause fires: at entry of a named phase, or at the first hook
/// point once the rank's simulated clock reaches `at_time`.
struct Trigger {
  std::string phase;     ///< empty for time triggers
  double at_time = -1.0; ///< < 0 for phase triggers

  bool is_time() const noexcept { return at_time >= 0.0; }
};

/// Kill one rank at a trigger point (on one attempt).
struct CrashFault {
  int rank = -1;
  Trigger trigger;
  int attempt = 1;
};

/// Kill every rank of one simulated node at a trigger point (on one
/// attempt). Which ranks belong to the node comes from set_topology().
struct NodeCrash {
  int node = -1;
  Trigger trigger;
  int attempt = 1;
};

/// Charge a temporary allocation on every rank at a trigger point.
struct MemSpike {
  std::uint64_t bytes = 0;
  Trigger trigger;
  int attempt = 1;
};

/// A parsed, immutable failure schedule.
struct FaultPlan {
  std::uint64_t seed = 0x6d696d6972ULL;  // "mimir"
  double pfs_error_rate = 0.0;  ///< probability per PFS operation
  double pfs_slowdown = 1.0;    ///< cost multiplier for surviving ops
  std::vector<CrashFault> crashes;
  std::vector<NodeCrash> node_crashes;
  std::vector<MemSpike> spikes;

  bool empty() const noexcept {
    return pfs_error_rate == 0.0 && pfs_slowdown == 1.0 &&
           crashes.empty() && node_crashes.empty() && spikes.empty();
  }

  /// Parse the spec grammar above; throws mutil::ConfigError.
  static FaultPlan parse(std::string_view spec);

  /// Read key "mimir.inject" from `cfg`; nullopt when absent/empty.
  static std::optional<FaultPlan> from(const mutil::Config& cfg);
};

/// Counters of what actually fired (per rank, per attempt).
struct InjectStats {
  std::uint64_t pfs_ops = 0;
  std::uint64_t pfs_errors = 0;
  std::uint64_t mem_spikes = 0;
};

/// One rank's injector for one attempt. Owns the deterministic RNG and
/// the once-only flags for time triggers. Bound to the rank thread via
/// ScopedInject; all hooks run on that thread only.
class Injector {
 public:
  Injector(const FaultPlan& plan, int rank, int attempt = 1);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Attach the rank's substrate (needed for crash timestamps and
  /// memory spikes). Hooks fire without these but report sim_time 0 and
  /// skip spikes.
  void bind(simtime::Clock* clock, memtrack::Tracker* tracker);

  /// Declare the machine's rank-to-node mapping so node_crash clauses
  /// know which node this rank lives on. Default: one rank per node.
  void set_topology(int ranks_per_node);

  /// Phase-entry hook. May throw mutil::RankFailedError (crash) or
  /// mutil::OutOfMemoryError (spike against a node budget).
  void at_phase(const char* phase);

  /// PFS-operation hook. May throw mutil::TransientIoError; returns the
  /// cost multiplier for the surviving operation (1.0 = unchanged).
  double on_pfs(std::uint64_t bytes);

  const InjectStats& stats() const noexcept { return stats_; }
  int rank() const noexcept { return rank_; }
  int attempt() const noexcept { return attempt_; }

 private:
  double now() const noexcept;
  /// `phase` is null at PFS hook points (only time triggers can fire).
  bool trigger_matches(const Trigger& trigger, const char* phase) const;
  [[noreturn]] void crash(const CrashFault& fault, const char* where);
  [[noreturn]] void node_down(const NodeCrash& fault, const char* where);
  void spike(const MemSpike& spike);

  const FaultPlan* plan_;
  int rank_;
  int attempt_;
  simtime::Clock* clock_ = nullptr;
  memtrack::Tracker* tracker_ = nullptr;
  int ranks_per_node_ = 1;
  mutil::Xoshiro256 rng_;
  std::vector<bool> crash_fired_;
  std::vector<bool> node_crash_fired_;
  std::vector<bool> spike_fired_;
  InjectStats stats_;
};

/// The calling thread's injector, or nullptr (the default).
Injector* current() noexcept;

/// RAII thread-local injector binding (restores the previous one).
class ScopedInject {
 public:
  explicit ScopedInject(Injector* injector) noexcept;
  ~ScopedInject();

  ScopedInject(const ScopedInject&) = delete;
  ScopedInject& operator=(const ScopedInject&) = delete;

 private:
  Injector* previous_;
};

/// Framework hook: phase entry on the calling rank thread. No-op when
/// no injector is bound.
void phase_point(const char* phase);

/// Framework hook: one PFS operation of `bytes`. Returns the cost
/// multiplier (1.0 when unbound); may throw mutil::TransientIoError.
double pfs_point(std::uint64_t bytes);

}  // namespace inject
