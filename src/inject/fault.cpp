#include "inject/fault.hpp"

#include <charconv>
#include <cstdlib>

#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "mutil/sizes.hpp"
#include "stats/registry.hpp"

namespace inject {

namespace {

thread_local Injector* t_injector = nullptr;

[[noreturn]] void bad_spec(std::string_view spec, const std::string& why) {
  throw mutil::ConfigError("inject: bad fault spec '" + std::string(spec) +
                           "': " + why);
}

double parse_number(std::string_view text, std::string_view spec,
                    const char* what) {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) {
    bad_spec(spec, std::string(what) + " '" + std::string(text) +
                       "' is not a number");
  }
  return value;
}

/// "reduce" -> phase trigger; "1.5" -> time trigger.
Trigger parse_trigger(std::string_view text, std::string_view spec) {
  if (text.empty()) bad_spec(spec, "empty trigger after '@'");
  double t = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, t);
  if (ec == std::errc() && ptr == end) {
    if (t < 0.0) bad_spec(spec, "negative time trigger");
    return Trigger{"", t};
  }
  return Trigger{std::string(text), -1.0};
}

/// Split "body@trigger[#attempt]" off a clause tail.
struct TriggeredClause {
  std::string_view body;
  Trigger trigger;
  int attempt = 1;
};

TriggeredClause parse_triggered(std::string_view tail,
                                std::string_view spec) {
  TriggeredClause out;
  const std::size_t at = tail.find('@');
  if (at == std::string_view::npos) {
    bad_spec(spec, "'" + std::string(tail) + "' needs an '@trigger'");
  }
  std::string_view trigger = tail.substr(at + 1);
  out.body = tail.substr(0, at);
  const std::size_t hash = trigger.rfind('#');
  if (hash != std::string_view::npos) {
    const double a =
        parse_number(trigger.substr(hash + 1), spec, "attempt");
    if (a < 1.0 || a != static_cast<int>(a)) {
      bad_spec(spec, "attempt must be a positive integer");
    }
    out.attempt = static_cast<int>(a);
    trigger = trigger.substr(0, hash);
  }
  out.trigger = parse_trigger(trigger, spec);
  return out;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view clause = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                          : rest.substr(comma + 1);
    if (clause.empty()) continue;
    const std::size_t colon = clause.find(':');
    if (colon == std::string_view::npos) {
      bad_spec(spec, "clause '" + std::string(clause) + "' has no ':'");
    }
    const std::string_view kind = clause.substr(0, colon);
    const std::string_view tail = clause.substr(colon + 1);
    if (kind == "rank_crash") {
      const TriggeredClause tc = parse_triggered(tail, spec);
      const double r = parse_number(tc.body, spec, "rank");
      if (r < 0.0 || r != static_cast<int>(r)) {
        bad_spec(spec, "rank must be a non-negative integer");
      }
      plan.crashes.push_back(
          CrashFault{static_cast<int>(r), tc.trigger, tc.attempt});
    } else if (kind == "node_crash") {
      const TriggeredClause tc = parse_triggered(tail, spec);
      const double n = parse_number(tc.body, spec, "node");
      if (n < 0.0 || n != static_cast<int>(n)) {
        bad_spec(spec, "node must be a non-negative integer");
      }
      plan.node_crashes.push_back(
          NodeCrash{static_cast<int>(n), tc.trigger, tc.attempt});
    } else if (kind == "mem_spike") {
      const TriggeredClause tc = parse_triggered(tail, spec);
      plan.spikes.push_back(MemSpike{mutil::parse_size(tc.body),
                                     tc.trigger, tc.attempt});
    } else if (kind == "pfs_error") {
      const double p = parse_number(tail, spec, "probability");
      if (p < 0.0 || p > 1.0) bad_spec(spec, "probability not in [0,1]");
      plan.pfs_error_rate = p;
    } else if (kind == "pfs_slow") {
      const double f = parse_number(tail, spec, "factor");
      if (f < 1.0) bad_spec(spec, "slowdown factor must be >= 1");
      plan.pfs_slowdown = f;
    } else if (kind == "seed") {
      const double s = parse_number(tail, spec, "seed");
      if (s < 0.0 || s != static_cast<std::uint64_t>(s)) {
        bad_spec(spec, "seed must be a non-negative integer");
      }
      plan.seed = static_cast<std::uint64_t>(s);
    } else {
      bad_spec(spec, "unknown clause kind '" + std::string(kind) + "'");
    }
  }
  return plan;
}

std::optional<FaultPlan> FaultPlan::from(const mutil::Config& cfg) {
  const std::string spec = cfg.get_string("mimir.inject", "");
  if (spec.empty()) return std::nullopt;
  return parse(spec);
}

namespace {

/// Expand (seed, rank, attempt) into an independent per-rank stream.
std::uint64_t stream_seed(std::uint64_t seed, int rank, int attempt) {
  mutil::SplitMix64 mix(seed ^ (static_cast<std::uint64_t>(rank) << 32) ^
                        static_cast<std::uint64_t>(attempt));
  return mix.next();
}

}  // namespace

Injector::Injector(const FaultPlan& plan, int rank, int attempt)
    : plan_(&plan),
      rank_(rank),
      attempt_(attempt),
      rng_(stream_seed(plan.seed, rank, attempt)),
      crash_fired_(plan.crashes.size(), false),
      node_crash_fired_(plan.node_crashes.size(), false),
      spike_fired_(plan.spikes.size(), false) {}

void Injector::bind(simtime::Clock* clock, memtrack::Tracker* tracker) {
  clock_ = clock;
  tracker_ = tracker;
}

void Injector::set_topology(int ranks_per_node) {
  if (ranks_per_node < 1) {
    throw mutil::UsageError("inject: ranks_per_node must be >= 1");
  }
  ranks_per_node_ = ranks_per_node;
}

double Injector::now() const noexcept {
  return clock_ != nullptr ? clock_->now() : 0.0;
}

bool Injector::trigger_matches(const Trigger& trigger,
                               const char* phase) const {
  if (trigger.is_time()) {
    return clock_ != nullptr && clock_->now() >= trigger.at_time;
  }
  return phase != nullptr && trigger.phase == phase;
}

void Injector::crash(const CrashFault& /*fault*/, const char* where) {
  throw mutil::RankFailedError(
      "inject: rank " + std::to_string(rank_) + " crashed at " + where +
          " (attempt " + std::to_string(attempt_) + ")",
      rank_, now());
}

void Injector::node_down(const NodeCrash& fault, const char* where) {
  throw mutil::RankFailedError(
      "inject: node " + std::to_string(fault.node) + " lost at " + where +
          " (rank " + std::to_string(rank_) + ", attempt " +
          std::to_string(attempt_) + ")",
      rank_, now());
}

void Injector::spike(const MemSpike& s) {
  ++stats_.mem_spikes;
  if (stats::Registry* reg = stats::current()) {
    reg->add("inject.mem_spikes", 1);
    reg->add("inject.mem_spike_bytes", s.bytes);
  }
  // Charge-then-release: the spike shows up in the rank/node peak (and
  // may throw OutOfMemoryError against a node budget) without changing
  // steady-state accounting.
  tracker_->allocate(s.bytes);
  tracker_->release(s.bytes);
}

void Injector::at_phase(const char* phase) {
  // Spikes before crashes: a crash clause on the same point wins only
  // after the spike has been charged, mirroring "the allocation raced
  // the failure" and keeping ordering deterministic.
  for (std::size_t i = 0; i < plan_->spikes.size(); ++i) {
    const MemSpike& s = plan_->spikes[i];
    if (spike_fired_[i] || s.attempt != attempt_ || tracker_ == nullptr) {
      continue;
    }
    if (trigger_matches(s.trigger, phase)) {
      // Phase triggers fire on every occurrence of the phase (e.g. each
      // aggregate round); time triggers fire once.
      if (s.trigger.is_time()) spike_fired_[i] = true;
      spike(s);
    }
  }
  for (std::size_t i = 0; i < plan_->crashes.size(); ++i) {
    const CrashFault& c = plan_->crashes[i];
    if (crash_fired_[i] || c.rank != rank_ || c.attempt != attempt_) {
      continue;
    }
    if (trigger_matches(c.trigger, phase)) {
      crash_fired_[i] = true;
      crash(c, c.trigger.is_time()
                   ? ("t>=" + std::to_string(c.trigger.at_time)).c_str()
                   : phase);
    }
  }
  for (std::size_t i = 0; i < plan_->node_crashes.size(); ++i) {
    const NodeCrash& c = plan_->node_crashes[i];
    if (node_crash_fired_[i] || c.attempt != attempt_ ||
        rank_ / ranks_per_node_ != c.node) {
      continue;
    }
    if (trigger_matches(c.trigger, phase)) {
      node_crash_fired_[i] = true;
      node_down(c, c.trigger.is_time()
                       ? ("t>=" + std::to_string(c.trigger.at_time)).c_str()
                       : phase);
    }
  }
}

double Injector::on_pfs(std::uint64_t bytes) {
  ++stats_.pfs_ops;
  // Time-triggered crashes are also evaluated here, so a rank dies near
  // its deadline even inside a long I/O loop.
  for (std::size_t i = 0; i < plan_->crashes.size(); ++i) {
    const CrashFault& c = plan_->crashes[i];
    if (!crash_fired_[i] && c.rank == rank_ && c.attempt == attempt_ &&
        c.trigger.is_time() && trigger_matches(c.trigger, nullptr)) {
      crash_fired_[i] = true;
      crash(c, "pfs operation");
    }
  }
  for (std::size_t i = 0; i < plan_->node_crashes.size(); ++i) {
    const NodeCrash& c = plan_->node_crashes[i];
    if (!node_crash_fired_[i] && c.attempt == attempt_ &&
        rank_ / ranks_per_node_ == c.node && c.trigger.is_time() &&
        trigger_matches(c.trigger, nullptr)) {
      node_crash_fired_[i] = true;
      node_down(c, "pfs operation");
    }
  }
  if (plan_->pfs_error_rate > 0.0 &&
      rng_.uniform() < plan_->pfs_error_rate) {
    ++stats_.pfs_errors;
    if (stats::Registry* reg = stats::current()) {
      reg->add("inject.pfs_errors", 1);
    }
    throw mutil::TransientIoError(
        "inject: transient PFS error on rank " + std::to_string(rank_) +
            " (op " + std::to_string(stats_.pfs_ops) + ", " +
            std::to_string(bytes) + " bytes)",
        now());
  }
  return plan_->pfs_slowdown;
}

Injector* current() noexcept { return t_injector; }

ScopedInject::ScopedInject(Injector* injector) noexcept
    : previous_(t_injector) {
  t_injector = injector;
}

ScopedInject::~ScopedInject() { t_injector = previous_; }

void phase_point(const char* phase) {
  if (t_injector != nullptr) t_injector->at_phase(phase);
}

double pfs_point(std::uint64_t bytes) {
  return t_injector != nullptr ? t_injector->on_pfs(bytes) : 1.0;
}

}  // namespace inject
