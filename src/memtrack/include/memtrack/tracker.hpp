// Memory accounting substrate.
//
// The paper's primary metric is peak memory usage per node, and its
// feasibility boundaries ("MR-MPI runs out of memory beyond 4 GB") come
// from a hard node memory budget. This module reproduces both as pure
// accounting:
//
//   * NodeBudget   — shared by all ranks placed on one simulated node;
//                    tracks current/peak usage atomically and enforces an
//                    optional hard limit by throwing OutOfMemoryError.
//   * Tracker      — per-rank view; all framework allocations (pages,
//                    containers, hash buckets, communication buffers) are
//                    charged here and forwarded to the node budget.
//   * TrackedBuffer— RAII byte buffer charged against a Tracker.
//
// Spill files living on the simulated parallel file system are *not*
// charged: on the paper's machines those bytes live on Lustre/GPFS, not
// in node DRAM.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>

namespace memtrack {

/// Component label attached to Tracker traffic on the calling thread
/// (accounting-only: tags never change what is charged or when, they
/// only attribute the bytes to a component in the per-tag breakdown).
/// Untagged traffic lands under "other". The tag must be a string with
/// static storage duration (a literal): TrackedBuffers remember their
/// allocation tag by pointer and release under it, however far from the
/// allocation site they are destroyed.
class TagScope {
 public:
  enum class Mode {
    kOverride,  ///< replace the active tag for the scope (default)
    kFallback,  ///< apply only when no tag is active (e.g. generic
                ///< container pages inherit an enclosing component)
  };

  explicit TagScope(const char* tag, Mode mode = Mode::kOverride) noexcept;
  ~TagScope();

  TagScope(const TagScope&) = delete;
  TagScope& operator=(const TagScope&) = delete;

 private:
  const char* previous_;
};

/// The calling thread's active tag, or nullptr when untagged.
const char* current_tag() noexcept;

/// Per-tag usage entry of one Tracker's breakdown.
struct TagUsage {
  std::uint64_t current = 0;
  std::uint64_t peak = 0;
};

/// Node-wide memory budget shared by every rank of a simulated node.
/// Thread-safe; ranks are threads.
class NodeBudget {
 public:
  /// limit_bytes == 0 means unlimited (tracking only).
  explicit NodeBudget(std::uint64_t limit_bytes = 0) noexcept
      : limit_(limit_bytes) {}

  NodeBudget(const NodeBudget&) = delete;
  NodeBudget& operator=(const NodeBudget&) = delete;

  /// Charge `bytes`; throws mutil::OutOfMemoryError if the node limit
  /// would be exceeded (the charge is rolled back first).
  void charge(std::uint64_t bytes);

  /// Return `bytes` to the budget.
  void release(std::uint64_t bytes) noexcept;

  std::uint64_t current() const noexcept {
    return current_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t limit() const noexcept { return limit_; }

  /// Reset the high-water mark to the current usage (between bench runs).
  void reset_peak() noexcept {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

 private:
  std::uint64_t limit_;
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// Observer of one rank's memory accounting traffic, bound per thread
/// (each rank thread observes only its own Tracker). Implemented by the
/// mimir-check lifecycle auditor; the default (no observer) costs one
/// thread-local read per operation. Observers are passive: they must not
/// throw and must not charge trackers themselves.
class AllocObserver {
 public:
  /// A TrackedBuffer acquired `bytes` of page memory at `block`.
  virtual void on_page_alloc(const void* block, std::uint64_t bytes) = 0;
  /// A TrackedBuffer returned the page at `block`.
  virtual void on_page_release(const void* block, std::uint64_t bytes) = 0;
  /// Tracker::allocate charged `bytes` (includes page charges).
  virtual void on_charge(std::uint64_t bytes) = 0;
  /// Tracker::release returned `bytes`.
  virtual void on_release(std::uint64_t bytes) = 0;

 protected:
  ~AllocObserver() = default;
};

/// The calling thread's observer, or nullptr (the default).
AllocObserver* alloc_observer() noexcept;
/// Bind/clear the calling thread's observer (nullptr clears).
void set_alloc_observer(AllocObserver* observer) noexcept;

/// RAII thread-local observer binding; restores the previous observer.
class ScopedAllocObserver {
 public:
  explicit ScopedAllocObserver(AllocObserver* observer) noexcept
      : previous_(alloc_observer()) {
    set_alloc_observer(observer);
  }
  ~ScopedAllocObserver() { set_alloc_observer(previous_); }

  ScopedAllocObserver(const ScopedAllocObserver&) = delete;
  ScopedAllocObserver& operator=(const ScopedAllocObserver&) = delete;

 private:
  AllocObserver* previous_;
};

/// Per-rank accounting view over a NodeBudget. Not thread-safe by design:
/// each rank owns exactly one Tracker.
class Tracker {
 public:
  /// `node` may be nullptr for standalone (single-rank, unlimited) use.
  explicit Tracker(NodeBudget* node = nullptr) noexcept : node_(node) {}

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  /// Charge this rank (and its node) under the calling thread's active
  /// tag. Throws mutil::OutOfMemoryError.
  void allocate(std::uint64_t bytes);

  /// Release a previous charge under the calling thread's active tag.
  void release(std::uint64_t bytes) noexcept;

  /// Charge under an explicit tag (nullptr/empty means "other"). The
  /// tag only affects the per-tag breakdown, never the charge itself.
  void allocate_as(std::uint64_t bytes, const char* tag);

  /// Release a charge made under `tag`.
  void release_as(std::uint64_t bytes, const char* tag) noexcept;

  std::uint64_t current() const noexcept { return current_; }
  std::uint64_t peak() const noexcept { return peak_; }

  /// Reset the rank high-water mark and every tag's high-water mark to
  /// the respective current usage (between bench repetitions).
  void reset_peak() noexcept;

  /// Per-component attribution of this rank's charges. Invariant: the
  /// tag currents always sum to current(), and every tag peak is <=
  /// peak() (attribution is a partition of the untagged accounting).
  const std::map<std::string, TagUsage, std::less<>>& tags() const noexcept {
    return tags_;
  }

  NodeBudget* node() const noexcept { return node_; }

 private:
  NodeBudget* node_;
  std::uint64_t current_ = 0;
  std::uint64_t peak_ = 0;
  std::map<std::string, TagUsage, std::less<>> tags_;
};

/// RAII byte buffer charged against a Tracker for its whole lifetime.
/// Movable, not copyable. The backing storage is heap-allocated once.
class TrackedBuffer {
 public:
  TrackedBuffer() noexcept = default;
  TrackedBuffer(Tracker& tracker, std::size_t bytes);
  ~TrackedBuffer();

  TrackedBuffer(TrackedBuffer&& other) noexcept;
  TrackedBuffer& operator=(TrackedBuffer&& other) noexcept;
  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;

  std::span<std::byte> span() noexcept { return {data_.get(), size_}; }
  std::span<const std::byte> span() const noexcept {
    return {data_.get(), size_};
  }
  std::byte* data() noexcept { return data_.get(); }
  const std::byte* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Drop the buffer and return its bytes to the tracker immediately.
  void reset() noexcept;

 private:
  Tracker* tracker_ = nullptr;
  std::unique_ptr<std::byte[]> data_;
  std::size_t size_ = 0;
  const char* tag_ = nullptr;  ///< tag active at construction time
};

}  // namespace memtrack
