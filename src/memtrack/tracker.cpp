#include "memtrack/tracker.hpp"

#include <string_view>
#include <utility>

#include "mutil/error.hpp"
#include "mutil/sizes.hpp"

namespace memtrack {

namespace {
thread_local AllocObserver* t_observer = nullptr;
thread_local const char* t_tag = nullptr;

/// Map nullptr/empty tags to the catch-all component.
std::string_view tag_key(const char* tag) noexcept {
  return (tag == nullptr || *tag == '\0') ? std::string_view("other")
                                          : std::string_view(tag);
}
}  // namespace

AllocObserver* alloc_observer() noexcept { return t_observer; }

void set_alloc_observer(AllocObserver* observer) noexcept {
  t_observer = observer;
}

TagScope::TagScope(const char* tag, Mode mode) noexcept : previous_(t_tag) {
  if (mode == Mode::kOverride || t_tag == nullptr) t_tag = tag;
}

TagScope::~TagScope() { t_tag = previous_; }

const char* current_tag() noexcept { return t_tag; }

void NodeBudget::charge(std::uint64_t bytes) {
  const std::uint64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    throw mutil::OutOfMemoryError(
        "node memory limit exceeded: requested " + mutil::format_size(bytes) +
            " with " + mutil::format_size(now - bytes) + " in use, limit " +
            mutil::format_size(limit_),
        bytes, limit_);
  }
  // Lock-free high-water-mark update.
  std::uint64_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void NodeBudget::release(std::uint64_t bytes) noexcept {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void Tracker::allocate(std::uint64_t bytes) { allocate_as(bytes, t_tag); }

void Tracker::release(std::uint64_t bytes) noexcept {
  release_as(bytes, t_tag);
}

void Tracker::allocate_as(std::uint64_t bytes, const char* tag) {
  if (node_ != nullptr) node_->charge(bytes);  // may throw; rank unchanged
  current_ += bytes;
  if (current_ > peak_) peak_ = current_;
  // Attribute only after the charge succeeded, so failed charges never
  // show up in the breakdown and the tag currents keep summing to
  // current().
  TagUsage& usage = tags_[std::string(tag_key(tag))];
  usage.current += bytes;
  if (usage.current > usage.peak) usage.peak = usage.current;
  if (t_observer != nullptr) t_observer->on_charge(bytes);
}

void Tracker::release_as(std::uint64_t bytes, const char* tag) noexcept {
  if (t_observer != nullptr) t_observer->on_release(bytes);
  current_ -= bytes;
  if (node_ != nullptr) node_->release(bytes);
  // Saturating: a release under a tag that never charged that much (an
  // allocate/release tag mismatch in the caller) must not wrap.
  TagUsage& usage = tags_[std::string(tag_key(tag))];
  usage.current -= bytes > usage.current ? usage.current : bytes;
}

void Tracker::reset_peak() noexcept {
  peak_ = current_;
  for (auto& [tag, usage] : tags_) usage.peak = usage.current;
}

TrackedBuffer::TrackedBuffer(Tracker& tracker, std::size_t bytes)
    : tracker_(&tracker), size_(bytes), tag_(t_tag) {
  tracker.allocate_as(bytes, tag_);  // throws before the allocation happens
  try {
    data_ = std::make_unique<std::byte[]>(bytes);
  } catch (...) {
    tracker.release(bytes);
    throw;
  }
  if (t_observer != nullptr) t_observer->on_page_alloc(data_.get(), bytes);
}

TrackedBuffer::~TrackedBuffer() { reset(); }

TrackedBuffer::TrackedBuffer(TrackedBuffer&& other) noexcept
    : tracker_(std::exchange(other.tracker_, nullptr)),
      data_(std::move(other.data_)),
      size_(std::exchange(other.size_, 0)),
      tag_(std::exchange(other.tag_, nullptr)) {}

TrackedBuffer& TrackedBuffer::operator=(TrackedBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    tracker_ = std::exchange(other.tracker_, nullptr);
    data_ = std::move(other.data_);
    size_ = std::exchange(other.size_, 0);
    tag_ = std::exchange(other.tag_, nullptr);
  }
  return *this;
}

void TrackedBuffer::reset() noexcept {
  if (tracker_ != nullptr && size_ != 0) {
    if (t_observer != nullptr) {
      t_observer->on_page_release(data_.get(), size_);
    }
    // Release under the allocation-time tag, not whatever tag happens
    // to be active where the buffer dies.
    tracker_->release_as(size_, tag_);
  }
  data_.reset();
  tracker_ = nullptr;
  size_ = 0;
  tag_ = nullptr;
}

}  // namespace memtrack
