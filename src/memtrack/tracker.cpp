#include "memtrack/tracker.hpp"

#include <utility>

#include "mutil/error.hpp"
#include "mutil/sizes.hpp"

namespace memtrack {

namespace {
thread_local AllocObserver* t_observer = nullptr;
}  // namespace

AllocObserver* alloc_observer() noexcept { return t_observer; }

void set_alloc_observer(AllocObserver* observer) noexcept {
  t_observer = observer;
}

void NodeBudget::charge(std::uint64_t bytes) {
  const std::uint64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ != 0 && now > limit_) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
    throw mutil::OutOfMemoryError(
        "node memory limit exceeded: requested " + mutil::format_size(bytes) +
            " with " + mutil::format_size(now - bytes) + " in use, limit " +
            mutil::format_size(limit_),
        bytes, limit_);
  }
  // Lock-free high-water-mark update.
  std::uint64_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void NodeBudget::release(std::uint64_t bytes) noexcept {
  current_.fetch_sub(bytes, std::memory_order_relaxed);
}

void Tracker::allocate(std::uint64_t bytes) {
  if (node_ != nullptr) node_->charge(bytes);  // may throw; rank unchanged
  current_ += bytes;
  if (current_ > peak_) peak_ = current_;
  if (t_observer != nullptr) t_observer->on_charge(bytes);
}

void Tracker::release(std::uint64_t bytes) noexcept {
  if (t_observer != nullptr) t_observer->on_release(bytes);
  current_ -= bytes;
  if (node_ != nullptr) node_->release(bytes);
}

TrackedBuffer::TrackedBuffer(Tracker& tracker, std::size_t bytes)
    : tracker_(&tracker), size_(bytes) {
  tracker.allocate(bytes);  // throws before the allocation happens
  try {
    data_ = std::make_unique<std::byte[]>(bytes);
  } catch (...) {
    tracker.release(bytes);
    throw;
  }
  if (t_observer != nullptr) t_observer->on_page_alloc(data_.get(), bytes);
}

TrackedBuffer::~TrackedBuffer() { reset(); }

TrackedBuffer::TrackedBuffer(TrackedBuffer&& other) noexcept
    : tracker_(std::exchange(other.tracker_, nullptr)),
      data_(std::move(other.data_)),
      size_(std::exchange(other.size_, 0)) {}

TrackedBuffer& TrackedBuffer::operator=(TrackedBuffer&& other) noexcept {
  if (this != &other) {
    reset();
    tracker_ = std::exchange(other.tracker_, nullptr);
    data_ = std::move(other.data_);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void TrackedBuffer::reset() noexcept {
  if (tracker_ != nullptr && size_ != 0) {
    if (t_observer != nullptr) {
      t_observer->on_page_release(data_.get(), size_);
    }
    tracker_->release(size_);
  }
  data_.reset();
  tracker_ = nullptr;
  size_ = 0;
}

}  // namespace memtrack
