// MR-MPI's fixed-page data store with out-of-core spillover.
//
// MR-MPI (Plimpton & Devine) holds each dataset (KVs or KMVs) in exactly
// one statically allocated page; when the data outgrows the page it
// spills to the I/O subsystem — on a supercomputer, the globally shared
// parallel file system. This class reproduces that behaviour:
//
//   * exactly one page of DRAM, allocated up front and charged to the
//     rank's memory tracker for the store's lifetime;
//   * three out-of-core settings, matching the paper's description:
//     kAlways (always write to disk), kSpill (write only when data
//     exceeds one page — MR-MPI's default), kError (refuse to go
//     out of core);
//   * spilled bytes are framed as length-prefixed segments of whole
//     records, so streaming re-reads never split a record.
//
// The repeated full re-reads that MR-MPI's phases perform against
// spilled stores (and the shared-bandwidth PFS cost model underneath)
// are exactly what produces the paper's Figure 1 performance cliff.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "memtrack/tracker.hpp"
#include "simmpi/runtime.hpp"

namespace mrmpi {

/// Out-of-core policy (paper §II-B's three settings).
enum class OocMode {
  kAlways,  ///< (1) always write intermediate data to disk
  kSpill,   ///< (2) write to disk only when data exceeds one page
  kError,   ///< (3) report an error if data exceeds one page
};

class PagedData {
 public:
  /// Allocates the page immediately (MR-MPI allocates every phase's
  /// pages up front). `name` keys the spill file on the PFS.
  PagedData(simmpi::Context& ctx, std::string name, std::uint64_t page_size,
            OocMode mode);
  ~PagedData();

  PagedData(PagedData&&) noexcept = default;
  PagedData& operator=(PagedData&&) noexcept = default;
  PagedData(const PagedData&) = delete;
  PagedData& operator=(const PagedData&) = delete;

  /// Append one whole record. A record larger than the page itself is a
  /// hard error in every mode (MR-MPI cannot represent it).
  void append(std::span<const std::byte> record);

  /// Finish writing. In kAlways mode the in-memory tail is flushed so
  /// the entire dataset lives on disk.
  void freeze();

  /// Stream the data back in record-aligned segments (spilled segments
  /// first, then the in-memory tail). May be called repeatedly; each
  /// call re-reads any spilled bytes from the PFS at full cost.
  void stream(
      const std::function<void(std::span<const std::byte>)>& fn) const;

  /// Drop everything: release the page and delete the spill file.
  void clear();

  std::uint64_t data_bytes() const noexcept { return data_bytes_; }
  std::uint64_t num_records() const noexcept { return num_records_; }
  bool spilled() const noexcept { return spilled_bytes_ != 0; }
  std::uint64_t spilled_bytes() const noexcept { return spilled_bytes_; }
  std::uint64_t page_size() const noexcept { return page_size_; }
  bool empty() const noexcept { return num_records_ == 0; }

 private:
  void spill_page();

  simmpi::Context* ctx_;
  std::string name_;
  std::uint64_t page_size_;
  OocMode mode_;
  memtrack::TrackedBuffer page_;
  std::uint64_t used_ = 0;
  std::uint64_t data_bytes_ = 0;
  std::uint64_t num_records_ = 0;
  std::uint64_t spilled_bytes_ = 0;
  std::uint64_t segments_ = 0;
  bool frozen_ = false;
};

}  // namespace mrmpi
