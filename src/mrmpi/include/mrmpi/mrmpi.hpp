// Baseline: a faithful re-implementation of MR-MPI's execution model
// (Plimpton & Devine, "MapReduce in MPI for Large-Scale Graph
// Algorithms"), as characterized by the Mimir paper (§II-B).
//
// Key behavioural properties reproduced:
//   * fixed-size pages, all allocated at the *start* of each phase and
//     held for its duration — map/aggregate/convert/reduce use a minimum
//     of 1/7/4/3 pages respectively;
//   * explicit phases: the user calls aggregate() and convert() between
//     map() and reduce(), each ending in a global barrier;
//   * the aggregate phase stages KVs through two temporary partitioning
//     buffers and a separate send buffer (the redundant copies Mimir
//     eliminates), and sizes its receive buffer at two pages to absorb
//     partitioning skew;
//   * any dataset larger than its single page spills to the parallel
//     file system, governed by the three out-of-core settings;
//   * compress() implements MR-MPI's local pre-aggregation (the KV
//     compression the paper compares against): it reduces shuffle volume
//     but cannot reduce memory usage, because page allocation is fixed.
//
// Callback types are shared with the Mimir core library so that every
// application in this repository runs unmodified on both frameworks.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mimir/combine_table.hpp"
#include "mimir/job.hpp"
#include "mimir/kv.hpp"
#include "mrmpi/paged_data.hpp"
#include "simmpi/runtime.hpp"

namespace mrmpi {

struct MRConfig {
  std::uint64_t page_size = 64 << 10;  ///< paper default 64 MB, scaled
  OocMode out_of_core = OocMode::kSpill;
  std::uint64_t input_chunk = 64 << 10;  ///< text-file read granularity
  /// Alternative key-to-rank routing for aggregate(). Empty = hash
  /// (MR-MPI's aggregate likewise accepts a user hash function).
  mimir::PartitionFn partitioner{};

  /// Parse "mrmpi.*" keys (page_size, out_of_core = always|spill|error).
  static MRConfig from(const mutil::Config& cfg);
};

struct MRMetrics {
  std::uint64_t input_bytes = 0;
  std::uint64_t map_emitted_kvs = 0;
  std::uint64_t shuffled_bytes = 0;
  std::uint64_t exchange_rounds = 0;
  std::uint64_t unique_keys = 0;
  std::uint64_t output_kvs = 0;
  std::uint64_t combined_kvs = 0;  ///< merged by compress()
  bool spilled = false;            ///< any store went out of core
};

class MapReduce {
 public:
  MapReduce(simmpi::Context& ctx, MRConfig cfg = {});

  MapReduce(const MapReduce&) = delete;
  MapReduce& operator=(const MapReduce&) = delete;

  // --- phases (each is collective and must be called by every rank) ----

  /// Map text files from the parallel file system into local KVs.
  std::uint64_t map_text_files(std::span<const std::string> files,
                               const mimir::MapRecordFn& fn);

  /// Map with a user producer called once per rank.
  std::uint64_t map_custom(const mimir::CustomMapFn& fn);

  /// Map over the current KV store (iterative jobs): the callback sees
  /// every KV and its emissions replace the store's contents.
  std::uint64_t map_kv(const mimir::MapKvFn& fn);

  /// MR-MPI compress(): combine duplicate keys locally, before
  /// aggregate. Reduces shuffle volume only — memory is fixed pages.
  std::uint64_t compress(const mimir::CombineFn& combiner);

  /// Explicit all-to-all exchange of KVs by key hash (7 pages).
  std::uint64_t aggregate();

  /// Explicit KV -> KMV conversion (4 pages).
  std::uint64_t convert();

  /// Reduce the KMVs with the user callback (3 pages); emissions become
  /// the new KV store (so output can feed another map/aggregate cycle).
  std::uint64_t reduce(const mimir::ReduceFn& fn);

  // --- results ----------------------------------------------------------

  /// Stream the current KV store (after map/aggregate/reduce).
  void scan_kv(const std::function<void(const mimir::KVView&)>& fn) const;

  const MRMetrics& metrics() const noexcept { return metrics_; }
  simmpi::Context& context() noexcept { return ctx_; }
  const MRConfig& config() const noexcept { return cfg_; }

 private:
  std::uint64_t run_map(const std::function<void(mimir::Emitter&)>& producer);
  std::string store_name(const char* phase) const;

  /// Group duplicate keys of `input` through a page-budgeted hash table,
  /// recursively partitioning to bucket files when the table exceeds its
  /// two-page budget. `emit_group` receives (key, concatenated values).
  void group_by_key(
      PagedData& input, int depth,
      const std::function<void(std::string_view key,
                               const std::vector<std::string>& values)>&
          emit_group);

  simmpi::Context& ctx_;
  MRConfig cfg_;
  mimir::KVCodec codec_;  ///< MR-MPI has no KV-hint: always variable
  std::optional<PagedData> kv_;   ///< current KV dataset
  std::optional<PagedData> kmv_;  ///< current KMV dataset (after convert)
  MRMetrics metrics_;
  std::uint64_t generation_ = 0;  ///< distinguishes spill file names
};

}  // namespace mrmpi
