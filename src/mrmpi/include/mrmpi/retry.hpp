// Minimal fault handling for the MR-MPI baseline: restart from scratch.
//
// MR-MPI has no checkpoint/resume machinery — when a rank dies, the only
// recovery the model admits is re-submitting the whole job. This module
// reproduces exactly that (and nothing more), so the recovery benchmarks
// can report the overhead of Mimir's checkpoint-based resume against the
// honest baseline cost: every retry pays the full job again plus the
// scheduler's backoff, and nothing is salvaged from the failed attempt.
//
// The loop mirrors mimir::run_with_recovery's failure classification:
// rank/node crashes and transient PFS errors are retried with
// exponential backoff riding the simulated clock; UsageError/ConfigError
// are caller bugs and rethrown; OutOfMemoryError is final — MR-MPI's
// answer to memory pressure is its out-of-core spill mode, not a
// degradation ladder, so a job that OOMs once will OOM on every retry.
#pragma once

#include <functional>

#include "mimir/recovery.hpp"
#include "simmpi/runtime.hpp"

namespace mrmpi {

struct RetryPolicy {
  int max_attempts = 5;       ///< total attempts (first try included)
  double backoff_base = 0.5;  ///< simulated seconds before attempt 2
  double backoff_factor = 2.0;
};

struct RetryOutcome {
  simmpi::JobStats stats;  ///< the successful attempt (clock includes
                           ///< failed attempts and backoff)
  int attempts = 1;
  double total_backoff = 0.0;
  std::vector<mimir::AttemptRecord> history;
};

/// The whole MR-MPI job, re-run verbatim on every attempt. Must be
/// restartable: rank-local state it builds is recreated from scratch.
using RetryBody = std::function<void(simmpi::Context&)>;

/// Run `body` on `nranks` ranks, restarting the whole job on rank
/// crashes and transient PFS errors until it completes or
/// `policy.max_attempts` is exhausted (then the last failure is
/// rethrown). `fault_plan` injects failures with node topology bound
/// from `machine` (inject/fault.hpp).
RetryOutcome run_with_retry(int nranks,
                            const simtime::MachineProfile& machine,
                            pfs::FileSystem& fs, const RetryBody& body,
                            const RetryPolicy& policy = {},
                            const inject::FaultPlan* fault_plan = nullptr,
                            stats::Collector* collector = nullptr,
                            check::JobChecker* checker = nullptr);

}  // namespace mrmpi
