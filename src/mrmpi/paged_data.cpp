#include "mrmpi/paged_data.hpp"

#include <cstring>
#include <vector>

#include "mutil/error.hpp"

namespace mrmpi {

PagedData::PagedData(simmpi::Context& ctx, std::string name,
                     std::uint64_t page_size, OocMode mode)
    : ctx_(&ctx),
      name_(std::move(name)),
      page_size_(page_size),
      mode_(mode),
      page_(ctx.tracker, page_size) {
  if (page_size == 0) {
    throw mutil::ConfigError("mrmpi::PagedData: page size must be positive");
  }
}

PagedData::~PagedData() {
  if (ctx_ != nullptr && segments_ != 0 && ctx_->fs.exists(name_)) {
    ctx_->fs.remove(name_);
  }
}

void PagedData::spill_page() {
  if (used_ == 0) return;
  if (mode_ == OocMode::kError) {
    throw mutil::UsageError(
        "mrmpi: intermediate data exceeds a single page (" +
        std::to_string(page_size_) +
        " bytes) and the out-of-core setting forbids spilling");
  }
  pfs::Writer writer = segments_ == 0 ? ctx_->fs.create(name_)
                                      : ctx_->fs.append(name_);
  const std::uint64_t len = used_;
  writer.write(std::span<const std::byte>(
                   reinterpret_cast<const std::byte*>(&len), sizeof(len)),
               ctx_->clock());
  writer.write(page_.span().subspan(0, used_), ctx_->clock());
  spilled_bytes_ += used_;
  ++segments_;
  used_ = 0;
}

void PagedData::append(std::span<const std::byte> record) {
  if (frozen_) {
    throw mutil::UsageError("mrmpi::PagedData: append after freeze");
  }
  if (record.size() > page_size_) {
    throw mutil::UsageError(
        "mrmpi: a single record (" + std::to_string(record.size()) +
        " bytes) exceeds the page size (" + std::to_string(page_size_) +
        " bytes)");
  }
  if (used_ + record.size() > page_size_) {
    spill_page();
  }
  std::memcpy(page_.data() + used_, record.data(), record.size());
  used_ += record.size();
  data_bytes_ += record.size();
  ++num_records_;
}

void PagedData::freeze() {
  if (frozen_) return;
  frozen_ = true;
  if (mode_ == OocMode::kAlways && used_ != 0) {
    spill_page();
  }
}

void PagedData::stream(
    const std::function<void(std::span<const std::byte>)>& fn) const {
  if (segments_ != 0) {
    pfs::Reader reader = ctx_->fs.open(name_);
    std::vector<std::byte> segment;
    for (std::uint64_t s = 0; s < segments_; ++s) {
      std::uint64_t len = 0;
      std::byte header[sizeof(len)];
      if (reader.read(header, ctx_->clock()) != sizeof(len)) {
        throw mutil::IoError("mrmpi: truncated spill file '" + name_ + "'");
      }
      std::memcpy(&len, header, sizeof(len));
      segment.resize(len);
      if (reader.read(segment, ctx_->clock()) != len) {
        throw mutil::IoError("mrmpi: truncated spill file '" + name_ + "'");
      }
      fn(segment);
    }
  }
  if (used_ != 0) {
    fn(page_.span().subspan(0, used_));
  }
}

void PagedData::clear() {
  if (segments_ != 0 && ctx_->fs.exists(name_)) {
    ctx_->fs.remove(name_);
  }
  segments_ = 0;
  spilled_bytes_ = 0;
  used_ = 0;
  data_bytes_ = 0;
  num_records_ = 0;
  frozen_ = false;
  page_.reset();
}

}  // namespace mrmpi
