#include "mrmpi/mrmpi.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "inject/fault.hpp"
#include "memtrack/tracker.hpp"
#include "mutil/hash.hpp"
#include "stats/registry.hpp"

namespace mrmpi {

using mimir::KVView;

namespace {

/// Emitter that encodes KVs into a scratch buffer and appends whole
/// records to a PagedData store.
class StoreEmitter final : public mimir::Emitter {
 public:
  StoreEmitter(PagedData& store, const mimir::KVCodec& codec,
               simmpi::Context& ctx)
      : store_(store), codec_(codec), ctx_(ctx) {}

  void emit(std::string_view key, std::string_view value) override {
    const std::size_t bytes = codec_.encoded_size(key, value);
    scratch_.resize(bytes);
    codec_.encode(scratch_.data(), key, value);
    store_.append(scratch_);
    ctx_.clock().advance(static_cast<double>(bytes) / ctx_.machine.kv_rate);
    ++emitted_;
  }

  std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  PagedData& store_;
  const mimir::KVCodec& codec_;
  simmpi::Context& ctx_;
  std::vector<std::byte> scratch_;
  std::uint64_t emitted_ = 0;
};

}  // namespace

MRConfig MRConfig::from(const mutil::Config& cfg) {
  MRConfig out;
  out.page_size = cfg.get_size("mrmpi.page_size", out.page_size);
  out.input_chunk = cfg.get_size("mrmpi.input_chunk", out.input_chunk);
  const std::string mode = cfg.get_string("mrmpi.out_of_core", "spill");
  if (mode == "always") {
    out.out_of_core = OocMode::kAlways;
  } else if (mode == "spill") {
    out.out_of_core = OocMode::kSpill;
  } else if (mode == "error") {
    out.out_of_core = OocMode::kError;
  } else {
    throw mutil::ConfigError("mrmpi.out_of_core: unknown mode '" + mode +
                             "'");
  }
  return out;
}

MapReduce::MapReduce(simmpi::Context& ctx, MRConfig cfg)
    : ctx_(ctx), cfg_(cfg), codec_(mimir::KVHint::variable()) {}

std::string MapReduce::store_name(const char* phase) const {
  return "mrmpi/r" + std::to_string(ctx_.rank()) + "/g" +
         std::to_string(generation_) + "." + phase;
}

std::uint64_t MapReduce::run_map(
    const std::function<void(mimir::Emitter&)>& producer) {
  ++generation_;
  const stats::PhaseScope phase("map");
  inject::phase_point("map");
  const memtrack::TagScope tag("mrmpi");
  PagedData out(ctx_, store_name("map"), cfg_.page_size, cfg_.out_of_core);
  StoreEmitter emitter(out, codec_, ctx_);
  producer(emitter);
  out.freeze();
  metrics_.map_emitted_kvs += emitter.emitted();
  if (stats::Registry* reg = stats::current()) {
    reg->add("map.emitted_kvs", emitter.emitted());
  }
  metrics_.spilled = metrics_.spilled || out.spilled();
  kv_.emplace(std::move(out));
  ctx_.comm.barrier();  // MR-MPI: global barrier ends every phase
  return emitter.emitted();
}

std::uint64_t MapReduce::map_text_files(std::span<const std::string> files,
                                        const mimir::MapRecordFn& fn) {
  return run_map([&](mimir::Emitter& emitter) {
    std::string carry;
    std::vector<std::byte> chunk(cfg_.input_chunk);
    for (std::size_t i = static_cast<std::size_t>(ctx_.rank());
         i < files.size(); i += static_cast<std::size_t>(ctx_.size())) {
      pfs::Reader reader = ctx_.fs.open(files[i]);
      carry.clear();
      for (;;) {
        const std::size_t n = reader.read(chunk, ctx_.clock());
        if (n == 0) break;
        carry.append(reinterpret_cast<const char*>(chunk.data()), n);
        const std::size_t cut = carry.rfind('\n');
        if (cut == std::string::npos) continue;
        const std::string_view record(carry.data(), cut + 1);
        metrics_.input_bytes += record.size();
        ctx_.clock().advance(static_cast<double>(record.size()) /
                             ctx_.machine.map_rate);
        fn(record, emitter);
        carry.erase(0, cut + 1);
      }
      if (!carry.empty()) {
        metrics_.input_bytes += carry.size();
        ctx_.clock().advance(static_cast<double>(carry.size()) /
                             ctx_.machine.map_rate);
        fn(carry, emitter);
        carry.clear();
      }
    }
  });
}

std::uint64_t MapReduce::map_custom(const mimir::CustomMapFn& fn) {
  return run_map([&](mimir::Emitter& emitter) { fn(emitter); });
}

std::uint64_t MapReduce::map_kv(const mimir::MapKvFn& fn) {
  if (!kv_.has_value()) {
    throw mutil::UsageError("mrmpi: map_kv with no KV data");
  }
  PagedData input = std::move(*kv_);
  kv_.reset();
  const double rate = ctx_.machine.map_rate;
  const std::uint64_t emitted =
      run_map([&](mimir::Emitter& emitter) {
        input.stream([&](std::span<const std::byte> segment) {
          codec_.for_each(segment, [&](const KVView& kv) {
            metrics_.input_bytes += kv.key.size() + kv.value.size();
            ctx_.clock().advance(
                static_cast<double>(kv.key.size() + kv.value.size()) /
                rate);
            fn(kv.key, kv.value, emitter);
          });
        });
      });
  input.clear();
  return emitted;
}

std::uint64_t MapReduce::aggregate() {
  if (!kv_.has_value()) {
    throw mutil::UsageError("mrmpi: aggregate with no KV data");
  }
  ++generation_;
  const stats::PhaseScope phase("aggregate");
  inject::phase_point("aggregate");
  const memtrack::TagScope tag("mrmpi");
  const auto p = static_cast<std::uint64_t>(ctx_.size());
  const std::uint64_t page = cfg_.page_size;

  // Phase buffers, all allocated up front (with the input store's page
  // and the output store's page this phase holds seven pages).
  memtrack::TrackedBuffer send_buf(ctx_.tracker, page);       // 1 page
  memtrack::TrackedBuffer recv_buf(ctx_.tracker, 2 * page);   // 2 pages
  memtrack::TrackedBuffer temp_buf(ctx_.tracker, 2 * page);   // 2 pages
  PagedData out(ctx_, store_name("agg"), page, cfg_.out_of_core);

  // Per-destination cap keeps any single receiver within its two-page
  // receive buffer even under total key skew.
  const std::uint64_t dest_cap = std::max<std::uint64_t>(2 * page / p, 1);

  struct Staged {
    std::uint32_t dest;
    std::uint32_t offset;
    std::uint32_t length;
  };
  std::vector<Staged> staged;
  std::vector<std::uint64_t> dest_bytes(p, 0);
  std::uint64_t temp_used = 0;

  std::vector<std::uint64_t> send_counts(p), send_displs(p);
  std::vector<std::uint64_t> recv_displs(p);

  const double kv_rate = ctx_.machine.kv_rate;
  std::uint64_t rounds = 0;

  auto flush_round = [&](bool done) -> bool {
    ++rounds;
    // Copy staged records into the send buffer grouped by destination —
    // the extra copy Mimir's shared buffers eliminate.
    std::fill(send_counts.begin(), send_counts.end(), 0);
    for (const Staged& s : staged) send_counts[s.dest] += s.length;
    if (stats::Registry* reg = stats::current()) {
      reg->instant("exchange_round");
      reg->add("shuffle.rounds", 1);
      for (std::uint64_t d = 0; d < p; ++d) {
        reg->record_traffic(static_cast<int>(d), send_counts[d]);
        reg->add("shuffle.bytes_sent", send_counts[d]);
      }
    }
    std::uint64_t offset = 0;
    for (std::uint64_t d = 0; d < p; ++d) {
      send_displs[d] = offset;
      offset += send_counts[d];
    }
    std::vector<std::uint64_t> cursor = send_displs;
    for (const Staged& s : staged) {
      std::memcpy(send_buf.data() + cursor[s.dest],
                  temp_buf.data() + s.offset, s.length);
      cursor[s.dest] += s.length;
      ctx_.clock().advance(static_cast<double>(s.length) / kv_rate);
    }

    const auto recv_counts = ctx_.comm.alltoall_u64(send_counts);
    std::uint64_t total_in = 0;
    for (std::uint64_t d = 0; d < p; ++d) {
      recv_displs[d] = total_in;
      total_in += recv_counts[d];
    }
    ctx_.comm.alltoallv(send_buf.span(), send_counts, send_displs,
                        recv_buf.span(), recv_counts, recv_displs);
    metrics_.shuffled_bytes += offset;

    // Copy received KVs into the aggregate output store (page + spill).
    codec_.for_each(recv_buf.span().subspan(0, total_in),
                    [&](const KVView& kv) {
                      const std::size_t bytes =
                          codec_.encoded_size(kv.key, kv.value);
                      std::vector<std::byte> rec(bytes);
                      codec_.encode(rec.data(), kv.key, kv.value);
                      out.append(rec);
                      ctx_.clock().advance(static_cast<double>(bytes) /
                                           kv_rate);
                    });

    staged.clear();
    std::fill(dest_bytes.begin(), dest_bytes.end(), 0);
    temp_used = 0;
    return ctx_.comm.allreduce_lor(!done);
  };

  // Stream the input store (re-reading any spilled bytes from the PFS),
  // staging each KV through the temporary partitioning buffers.
  kv_->stream([&](std::span<const std::byte> segment) {
    std::size_t pos = 0;
    while (pos < segment.size()) {
      std::size_t consumed = 0;
      const KVView kv = codec_.decode(segment.data() + pos, &consumed);
      const auto dest = static_cast<std::uint32_t>(
          cfg_.partitioner
              ? cfg_.partitioner(kv.key, ctx_.size())
              : static_cast<int>(mutil::hash_bytes(kv.key) % p));
      if (dest >= p) {
        throw mutil::UsageError(
            "mrmpi: partitioner returned an out-of-range rank");
      }
      if (dest_bytes[dest] + consumed > dest_cap ||
          temp_used + consumed > page) {
        (void)flush_round(false);
      }
      std::memcpy(temp_buf.data() + temp_used, segment.data() + pos,
                  consumed);
      staged.push_back({dest, static_cast<std::uint32_t>(temp_used),
                        static_cast<std::uint32_t>(consumed)});
      dest_bytes[dest] += consumed;
      temp_used += consumed;
      ctx_.clock().advance(static_cast<double>(consumed) / kv_rate);
      pos += consumed;
    }
  });

  // Flush the tail, then keep participating until every rank is done.
  while (flush_round(true)) {
  }

  out.freeze();
  metrics_.exchange_rounds += rounds;
  metrics_.spilled =
      metrics_.spilled || out.spilled() || kv_->spilled();
  kv_->clear();
  kv_.emplace(std::move(out));
  ctx_.comm.barrier();
  return kv_->num_records();
}

void MapReduce::group_by_key(
    PagedData& input, int depth,
    const std::function<void(std::string_view,
                             const std::vector<std::string>&)>& emit_group) {
  constexpr int kMaxDepth = 4;
  const std::uint64_t budget = 2 * cfg_.page_size;  // the two hash pages

  if (input.data_bytes() <= budget || depth >= kMaxDepth) {
    if (input.data_bytes() > budget && depth >= kMaxDepth) {
      throw mutil::UsageError(
          "mrmpi: convert cannot partition data to fit in memory");
    }
    // Load the (bucket) data into tracked memory and group by sorting.
    memtrack::TrackedBuffer loaded(ctx_.tracker,
                                   std::max<std::uint64_t>(
                                       input.data_bytes(), 1));
    std::uint64_t used = 0;
    input.stream([&](std::span<const std::byte> segment) {
      std::memcpy(loaded.data() + used, segment.data(), segment.size());
      used += segment.size();
    });
    std::vector<KVView> views;
    views.reserve(static_cast<std::size_t>(input.num_records()));
    codec_.for_each(loaded.span().subspan(0, used),
                    [&](const KVView& kv) { views.push_back(kv); });
    std::stable_sort(views.begin(), views.end(),
                     [](const KVView& a, const KVView& b) {
                       return a.key < b.key;
                     });
    ctx_.clock().advance(static_cast<double>(used) /
                         ctx_.machine.reduce_rate);

    std::vector<std::string> values;
    std::size_t i = 0;
    while (i < views.size()) {
      std::size_t j = i;
      values.clear();
      while (j < views.size() && views[j].key == views[i].key) {
        values.emplace_back(views[j].value);
        ++j;
      }
      emit_group(views[i].key, values);
      i = j;
    }
    return;
  }

  // Out of core: hash-partition into bucket files on the PFS and recurse.
  if (cfg_.out_of_core == OocMode::kError) {
    throw mutil::UsageError(
        "mrmpi: convert data exceeds in-memory budget and the out-of-core "
        "setting forbids spilling");
  }
  // Over-partition by 2x so hash skew rarely leaves a bucket above the
  // budget (a still-oversized bucket recurses).
  const std::uint64_t nbuckets = std::max<std::uint64_t>(
      4, 2 * ((input.data_bytes() + budget - 1) / budget));
  // Bucket stores live on disk (kAlways); give them small pages so the
  // partitioning pass stays within a couple of pages of memory no
  // matter how many buckets the data needs.
  const std::uint64_t bucket_page =
      std::max<std::uint64_t>(4096, cfg_.page_size / 8);
  std::vector<PagedData> buckets;
  buckets.reserve(nbuckets);
  for (std::uint64_t b = 0; b < nbuckets; ++b) {
    buckets.emplace_back(ctx_,
                         store_name("cvt") + ".d" + std::to_string(depth) +
                             ".b" + std::to_string(b),
                         bucket_page, OocMode::kAlways);
  }
  std::vector<std::byte> scratch;
  input.stream([&](std::span<const std::byte> segment) {
    std::size_t pos = 0;
    while (pos < segment.size()) {
      std::size_t consumed = 0;
      const KVView kv = codec_.decode(segment.data() + pos, &consumed);
      // Second-level hash (mixed) so bucketing is independent of the
      // rank partitioning.
      const std::uint64_t h = mutil::mix64(mutil::hash_bytes(kv.key));
      buckets[h % nbuckets].append(segment.subspan(pos, consumed));
      pos += consumed;
    }
  });
  metrics_.spilled = true;
  for (auto& bucket : buckets) {
    bucket.freeze();
    group_by_key(bucket, depth + 1, emit_group);
    bucket.clear();
  }
}

std::uint64_t MapReduce::convert() {
  if (!kv_.has_value()) {
    throw mutil::UsageError("mrmpi: convert with no KV data");
  }
  ++generation_;
  const stats::PhaseScope phase("convert");
  inject::phase_point("convert");
  const memtrack::TagScope tag("mrmpi");
  PagedData out(ctx_, store_name("kmv"), cfg_.page_size, cfg_.out_of_core);
  std::uint64_t unique = 0;
  std::vector<std::byte> record;

  group_by_key(*kv_, 0, [&](std::string_view key,
                            const std::vector<std::string>& values) {
    // KMV record layout (matches mimir::KMVContainer, variable hint):
    // [key_len u32][count u32][section u32][key][(len u32, bytes)...]
    std::uint64_t section = 0;
    for (const auto& v : values) section += 4 + v.size();
    const std::size_t bytes = 4 + 4 + 4 + key.size() + section;
    record.resize(bytes);
    std::byte* cursor = record.data();
    const auto klen = static_cast<std::uint32_t>(key.size());
    const auto count = static_cast<std::uint32_t>(values.size());
    const auto sect = static_cast<std::uint32_t>(section);
    std::memcpy(cursor, &klen, 4);
    cursor += 4;
    std::memcpy(cursor, &count, 4);
    cursor += 4;
    std::memcpy(cursor, &sect, 4);
    cursor += 4;
    std::memcpy(cursor, key.data(), key.size());
    cursor += key.size();
    for (const auto& v : values) {
      const auto len = static_cast<std::uint32_t>(v.size());
      std::memcpy(cursor, &len, 4);
      cursor += 4;
      std::memcpy(cursor, v.data(), v.size());
      cursor += v.size();
    }
    out.append(record);
    ctx_.clock().advance(static_cast<double>(bytes) /
                         ctx_.machine.reduce_rate);
    ++unique;
  });

  out.freeze();
  metrics_.unique_keys += unique;
  if (stats::Registry* reg = stats::current()) {
    reg->add("convert.unique_keys", unique);
  }
  metrics_.spilled = metrics_.spilled || out.spilled();
  kv_->clear();
  kv_.reset();
  kmv_.emplace(std::move(out));
  ctx_.comm.barrier();
  return unique;
}

std::uint64_t MapReduce::compress(const mimir::CombineFn& combiner) {
  if (!kv_.has_value()) {
    throw mutil::UsageError("mrmpi: compress with no KV data");
  }
  if (!combiner) {
    throw mutil::UsageError("mrmpi: compress requires a combiner");
  }
  ++generation_;
  const stats::PhaseScope phase("compress");
  const memtrack::TagScope tag("mrmpi");
  PagedData out(ctx_, store_name("cps"), cfg_.page_size, cfg_.out_of_core);
  StoreEmitter emitter(out, codec_, ctx_);
  std::uint64_t before = kv_->num_records();
  std::string acc, scratch;

  group_by_key(*kv_, 0, [&](std::string_view key,
                            const std::vector<std::string>& values) {
    acc = values.front();
    for (std::size_t i = 1; i < values.size(); ++i) {
      scratch.clear();
      combiner(key, acc, values[i], scratch);
      acc = scratch;
    }
    emitter.emit(key, acc);
  });

  out.freeze();
  metrics_.combined_kvs += before - out.num_records();
  metrics_.spilled = metrics_.spilled || out.spilled();
  kv_->clear();
  kv_.emplace(std::move(out));
  ctx_.comm.barrier();
  return kv_->num_records();
}

std::uint64_t MapReduce::reduce(const mimir::ReduceFn& fn) {
  if (!kmv_.has_value()) {
    throw mutil::UsageError("mrmpi: reduce with no KMV data (call convert)");
  }
  ++generation_;
  const stats::PhaseScope phase("reduce");
  inject::phase_point("reduce");
  const memtrack::TagScope tag("mrmpi");
  PagedData out(ctx_, store_name("red"), cfg_.page_size, cfg_.out_of_core);
  StoreEmitter emitter(out, codec_, ctx_);
  const double rate = ctx_.machine.reduce_rate;

  kmv_->stream([&](std::span<const std::byte> segment) {
    std::size_t pos = 0;
    while (pos < segment.size()) {
      const std::byte* p = segment.data() + pos;
      std::uint32_t klen = 0, count = 0, section = 0;
      std::memcpy(&klen, p, 4);
      std::memcpy(&count, p + 4, 4);
      std::memcpy(&section, p + 8, 4);
      const std::string_view key(
          reinterpret_cast<const char*>(p + 12), klen);
      mimir::ValueReader values(p + 12 + klen, count,
                                mimir::KVHint::kVariable);
      fn(key, values, emitter);
      const std::size_t bytes = 12 + klen + section;
      ctx_.clock().advance(static_cast<double>(bytes) / rate);
      pos += bytes;
    }
  });

  out.freeze();
  metrics_.output_kvs += out.num_records();
  metrics_.spilled = metrics_.spilled || out.spilled();
  kmv_->clear();
  kmv_.reset();
  kv_.emplace(std::move(out));
  ctx_.comm.barrier();
  return kv_->num_records();
}

void MapReduce::scan_kv(
    const std::function<void(const KVView&)>& fn) const {
  if (!kv_.has_value()) return;
  kv_->stream([&](std::span<const std::byte> segment) {
    codec_.for_each(segment, fn);
  });
}

}  // namespace mrmpi
