#include "mrmpi/retry.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>

#include "check/checker.hpp"
#include "mutil/error.hpp"
#include "stats/registry.hpp"

namespace mrmpi {

RetryOutcome run_with_retry(int nranks,
                            const simtime::MachineProfile& machine,
                            pfs::FileSystem& fs, const RetryBody& body,
                            const RetryPolicy& policy,
                            const inject::FaultPlan* fault_plan,
                            stats::Collector* collector,
                            check::JobChecker* checker) {
  if (!body) {
    throw mutil::UsageError("run_with_retry: body is required");
  }
  if (policy.max_attempts < 1) {
    throw mutil::UsageError("run_with_retry: max_attempts must be >= 1");
  }

  RetryOutcome out;
  // Each attempt starts with the clock advanced past the previous
  // failure plus the backoff, so the successful attempt's sim_time is
  // the total simulated time-to-completion.
  double start_offset = 0.0;

  const auto diag = [&](check::Severity severity, std::string code,
                        std::string message, int failed_rank,
                        double failed_time) {
    if (checker == nullptr) return;
    check::Diagnostic d;
    d.severity = severity;
    d.analyzer = "mrmpi-retry";
    d.code = std::move(code);
    d.message = std::move(message);
    if (failed_rank >= 0) d.ranks = {failed_rank};
    d.sim_time = failed_time;
    checker->report().add(std::move(d));
  };

  for (int attempt = 1;; ++attempt) {
    mimir::AttemptRecord rec;
    rec.attempt = attempt;

    std::exception_ptr failure;
    try {
      out.stats = simmpi::run(
          nranks, machine, fs,
          [&](simmpi::Context& ctx) {
            std::optional<inject::Injector> injector;
            std::optional<inject::ScopedInject> scope;
            if (fault_plan != nullptr && !fault_plan->empty()) {
              injector.emplace(*fault_plan, ctx.rank(), attempt);
              injector->bind(&ctx.clock(), &ctx.tracker);
              injector->set_topology(machine.ranks_per_node);
              scope.emplace(&*injector);
            }
            if (start_offset > 0.0) ctx.clock().advance(start_offset);

            body(ctx);

            if (stats::Registry* reg = stats::current()) {
              reg->add("mrmpi.retry.attempts",
                       static_cast<std::uint64_t>(attempt));
              reg->add_seconds("mrmpi.retry.backoff_seconds",
                               out.total_backoff);
            }
          },
          collector, checker);
      rec.ok = true;
      out.history.push_back(rec);
      out.attempts = attempt;
      return out;
    } catch (const mutil::UsageError&) {
      throw;  // caller bug, not a fault — never retried
    } catch (const mutil::ConfigError&) {
      throw;
    } catch (const mutil::OutOfMemoryError&) {
      // No degradation ladder here: MR-MPI's fixed page allocation
      // means the retry would need the same memory and fail again.
      throw;
    } catch (const mutil::RankFailedError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      rec.failed_rank = e.rank();
      rec.failed_time = e.sim_time();
    } catch (const mutil::TransientIoError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      rec.failed_time = e.sim_time();
    }

    if (attempt >= policy.max_attempts) {
      out.history.push_back(rec);
      out.attempts = attempt;
      diag(check::Severity::kError, "retries-exhausted",
           "giving up after " + std::to_string(attempt) +
               " attempts: " + rec.error,
           rec.failed_rank, rec.failed_time);
      std::rethrow_exception(failure);
    }

    const double backoff =
        policy.backoff_base *
        std::pow(policy.backoff_factor, static_cast<double>(attempt - 1));
    rec.backoff = backoff;
    out.total_backoff += backoff;
    start_offset = std::max(start_offset, rec.failed_time) + backoff;
    out.history.push_back(rec);
    diag(check::Severity::kWarning, "attempt-failed",
         "attempt " + std::to_string(attempt) + " failed (" + rec.error +
             "); restarting from scratch after " +
             std::to_string(backoff) + "s simulated backoff",
         rec.failed_rank, rec.failed_time);
  }
}

}  // namespace mrmpi
