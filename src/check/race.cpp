#include "check/race.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "check/checker.hpp"
#include "memtrack/tracker.hpp"
#include "mutil/hash.hpp"
#include "simtime/clock.hpp"
#include "stats/registry.hpp"

namespace check {

namespace {

// Per rank-thread binding installed by simmpi::run (via ScopedRaceRank).
thread_local RaceDetector* t_detector = nullptr;
thread_local int t_rank = -1;
thread_local const simtime::Clock* t_clock = nullptr;

std::string bound_phase() {
  const stats::Registry* reg = stats::current();
  return reg != nullptr ? reg->phase_path() : std::string();
}

double bound_sim_time() noexcept {
  return t_clock != nullptr ? t_clock->now() : 0.0;
}

std::string describe_site(const AccessSite& site) {
  std::ostringstream oss;
  oss << "rank " << site.rank << (site.write ? " wrote" : " read");
  if (!site.phase.empty()) oss << " in phase '" << site.phase << "'";
  oss << " at t=" << site.sim_time << "s";
  return oss.str();
}

std::uint64_t fold(std::uint64_t h, std::uint64_t x) noexcept {
  return mutil::mix64(h ^ x);
}

}  // namespace

std::uint64_t DeterminismDigest::combined() const noexcept {
  std::uint64_t h = 0x6d696d6972ULL;  // "mimir"
  for (const auto& rank : ranks) {
    for (const DigestEntry& e : rank) h = fold(h, e.hash);
    h = fold(h, rank.size());
  }
  return h;
}

// --- RaceDetector ---------------------------------------------------------

RaceDetector::RaceDetector(Report& report, int max_region_reports)
    : report_(&report), max_region_reports_(max_region_reports) {}

void RaceDetector::reset(int nranks) {
  const std::scoped_lock lock(mutex_);
  nranks_ = nranks;
  clocks_.assign(static_cast<std::size_t>(nranks), VectorClock(nranks));
  for (int r = 0; r < nranks; ++r) {
    clocks_[static_cast<std::size_t>(r)].tick(r);
  }
  regions_.clear();
  handoffs_.clear();
  races_ = 0;
  digests_.assign(static_cast<std::size_t>(nranks), {});
}

void RaceDetector::collective_sync(std::span<const int> global_ranks) {
  const std::scoped_lock lock(mutex_);
  VectorClock joined(nranks_);
  for (const int g : global_ranks) {
    joined.join(clocks_[static_cast<std::size_t>(g)]);
  }
  for (const int g : global_ranks) {
    auto& clock = clocks_[static_cast<std::size_t>(g)];
    clock.join(joined);
    clock.tick(g);
  }
}

std::vector<std::uint64_t> RaceDetector::send_edge(int global_rank) {
  const std::scoped_lock lock(mutex_);
  auto& clock = clocks_[static_cast<std::size_t>(global_rank)];
  std::vector<std::uint64_t> snapshot = clock.snapshot();
  clock.tick(global_rank);
  return snapshot;
}

void RaceDetector::recv_edge(int global_rank,
                             std::span<const std::uint64_t> clock) {
  const std::scoped_lock lock(mutex_);
  clocks_[static_cast<std::size_t>(global_rank)].join(clock);
}

void RaceDetector::handoff_publish(int global_rank, std::uint64_t key) {
  const std::scoped_lock lock(mutex_);
  auto& clock = clocks_[static_cast<std::size_t>(global_rank)];
  auto [it, inserted] = handoffs_.try_emplace(key, VectorClock(nranks_));
  it->second.join(clock);
  clock.tick(global_rank);
}

void RaceDetector::handoff_acquire(int global_rank, std::uint64_t key) {
  const std::scoped_lock lock(mutex_);
  const auto it = handoffs_.find(key);
  if (it == handoffs_.end()) return;
  clocks_[static_cast<std::size_t>(global_rank)].join(it->second);
}

// --- non-blocking collective buffer freeze ---------------------------------

void RaceDetector::nb_initiate(const void* base, int global_rank,
                               bool op_writes, std::string_view what,
                               double sim_time, std::string phase) {
  // Initiating captures a send buffer's contents: count it as a read so
  // it orders against earlier writes like any other access.
  if (!op_writes) access(base, global_rank, false, sim_time, phase);
  const std::scoped_lock lock(mutex_);
  const auto it = regions_.find(base);
  if (it == regions_.end()) return;
  RegionState& region = it->second;
  region.frozen = true;
  region.frozen_op_writes = op_writes;
  region.frozen_what.assign(what);
  region.frozen_site.rank = global_rank;
  region.frozen_site.epoch =
      clocks_[static_cast<std::size_t>(global_rank)][global_rank];
  region.frozen_site.sim_time = sim_time;
  region.frozen_site.phase = std::move(phase);
  region.frozen_site.write = op_writes;
}

void RaceDetector::nb_complete(const void* base, int global_rank,
                               double sim_time, std::string phase) {
  bool op_writes = false;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = regions_.find(base);
    if (it == regions_.end()) return;
    op_writes = it->second.frozen_op_writes;
    it->second.frozen = false;
    it->second.frozen_what.clear();
    it->second.frozen_site = AccessSite{};
  }
  access(base, global_rank, op_writes, sim_time, std::move(phase));
}

// --- registered shared state ----------------------------------------------

void RaceDetector::region_register(const void* base, std::uint64_t bytes,
                                   std::string name) {
  const std::scoped_lock lock(mutex_);
  RegionState state;
  state.name = std::move(name);
  state.bytes = bytes;
  state.reads.assign(static_cast<std::size_t>(nranks_), AccessSite{});
  regions_.insert_or_assign(base, std::move(state));
}

void RaceDetector::region_unregister(const void* base) {
  const std::scoped_lock lock(mutex_);
  regions_.erase(base);
}

bool RaceDetector::ordered_before(const AccessSite& site,
                                  const VectorClock& clock) const noexcept {
  // The prior access happens-before the current one iff the current
  // rank's clock has caught up with the accessor's epoch at that access.
  return site.rank < 0 || clock[site.rank] >= site.epoch;
}

void RaceDetector::report_race(RegionState& region,
                               const AccessSite& previous,
                               const AccessSite& current) {
  ++races_;
  if (region.reports >= max_region_reports_) return;
  ++region.reports;

  const bool both_writes = previous.write && current.write;
  Diagnostic d;
  // Races are diagnostics, not errors that abort the job: the detector
  // must stay accounting-only, and a race does not change simulated
  // results (ranks are real threads, the access already happened).
  d.severity = Severity::kError;
  d.analyzer = "race";
  d.code = both_writes ? "write-write-race" : "read-write-race";
  std::ostringstream oss;
  oss << (both_writes ? "write-write" : "read-write") << " race on '"
      << region.name << "' (" << region.bytes << " bytes): "
      << describe_site(current) << " with no happens-before edge after "
      << describe_site(previous)
      << " (no barrier, collective, p2p message, or handoff orders the "
         "two accesses)";
  d.message = oss.str();
  d.ranks = {previous.rank, current.rank};
  std::sort(d.ranks.begin(), d.ranks.end());
  d.phase = current.phase;
  d.sim_time = current.sim_time;
  report_->add(std::move(d));
}

void RaceDetector::report_frozen(RegionState& region,
                                 const AccessSite& current) {
  ++races_;
  if (region.reports >= max_region_reports_) return;
  ++region.reports;

  Diagnostic d;
  d.severity = Severity::kError;
  d.analyzer = "race";
  d.code = current.write ? "write-after-initiate" : "read-after-initiate";
  std::ostringstream oss;
  oss << (current.write ? "write to '" : "read of '") << region.name
      << "' (" << region.bytes << " bytes) while a non-blocking "
      << region.frozen_what << " is in flight: " << describe_site(current)
      << "; rank " << region.frozen_site.rank
      << " initiated the operation";
  if (!region.frozen_site.phase.empty()) {
    oss << " in phase '" << region.frozen_site.phase << "'";
  }
  oss << " at t=" << region.frozen_site.sim_time
      << "s and has not completed it (the buffer belongs to the "
         "collective until Request::wait returns)";
  d.message = oss.str();
  d.ranks = {region.frozen_site.rank, current.rank};
  std::sort(d.ranks.begin(), d.ranks.end());
  d.ranks.erase(std::unique(d.ranks.begin(), d.ranks.end()),
                d.ranks.end());
  d.phase = current.phase;
  d.sim_time = current.sim_time;
  report_->add(std::move(d));
}

void RaceDetector::access(const void* base, int global_rank, bool write,
                          double sim_time, std::string phase) {
  const std::scoped_lock lock(mutex_);
  const auto it = regions_.find(base);
  if (it == regions_.end()) return;
  RegionState& region = it->second;
  const VectorClock& clock = clocks_[static_cast<std::size_t>(global_rank)];

  AccessSite cur;
  cur.rank = global_rank;
  cur.epoch = clock[global_rank];
  cur.sim_time = sim_time;
  cur.phase = std::move(phase);
  cur.write = write;

  if (region.frozen && (write || region.frozen_op_writes)) {
    report_frozen(region, cur);
  }

  // FastTrack epoch rule: every access must happen-after the last
  // write; a write must additionally happen-after every rank's last
  // read. Same-rank accesses are ordered by program order.
  const AccessSite& w = region.last_write;
  if (w.rank >= 0 && w.rank != global_rank && !ordered_before(w, clock)) {
    report_race(region, w, cur);
  } else if (write) {
    for (const AccessSite& r : region.reads) {
      if (r.rank >= 0 && r.rank != global_rank &&
          !ordered_before(r, clock)) {
        report_race(region, r, cur);
        break;
      }
    }
  }

  if (write) {
    region.last_write = std::move(cur);
    // A well-ordered write subsumes all prior reads; racing reads were
    // already reported, so either way the read set restarts here.
    for (AccessSite& r : region.reads) r = AccessSite{};
  } else {
    region.reads[static_cast<std::size_t>(global_rank)] = std::move(cur);
  }
}

void RaceDetector::ensure_and_access(const void* base, std::uint64_t bytes,
                                     std::string_view name, int global_rank,
                                     bool write, double sim_time,
                                     std::string phase) {
  {
    const std::scoped_lock lock(mutex_);
    if (regions_.find(base) == regions_.end()) {
      RegionState state;
      state.name.assign(name);
      state.bytes = bytes;
      state.reads.assign(static_cast<std::size_t>(nranks_), AccessSite{});
      regions_.emplace(base, std::move(state));
    }
  }
  access(base, global_rank, write, sim_time, std::move(phase));
}

void RaceDetector::page_alloc(int global_rank, const void* block,
                              std::uint64_t bytes, std::string_view tag,
                              double sim_time, std::string phase) {
  // A fresh allocation starts a new region history: the allocator (the
  // host heap) orders reuse of the address internally, which is not a
  // user-visible happens-before violation.
  std::string name = "page";
  if (!tag.empty()) {
    name += ':';
    name += tag;
  }
  region_register(block, bytes, std::move(name));
  access(block, global_rank, true, sim_time, std::move(phase));
}

void RaceDetector::page_release(int global_rank, const void* block,
                                double sim_time, std::string phase) {
  access(block, global_rank, true, sim_time, std::move(phase));
  region_unregister(block);
}

// --- determinism digest ---------------------------------------------------

void RaceDetector::record_fingerprint(int global_rank,
                                      const CollectiveFingerprint& fp,
                                      int npeers) {
  auto& chain = digests_[static_cast<std::size_t>(global_rank)];
  std::uint64_t h = chain.empty() ? 0 : chain.back().hash;
  h = fold(h, static_cast<std::uint64_t>(fp.op));
  h = fold(h, fp.seq);
  h = fold(h, fp.width);
  h = fold(h, fp.extra);
  h = fold(h, static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(fp.root)));
  h = fold(h, fp.bytes);
  h = fold(h, std::bit_cast<std::uint64_t>(fp.sim_time));
  h = fold(h, mutil::fnv1a(fp.phase));
  if (fp.send_counts != nullptr) {
    for (int i = 0; i < npeers; ++i) h = fold(h, fp.send_counts[i]);
  }
  if (fp.recv_counts != nullptr) {
    for (int i = 0; i < npeers; ++i) h = fold(h, fp.recv_counts[i]);
  }
  chain.push_back(DigestEntry{h, fp.phase});
}

DeterminismDigest RaceDetector::digest() const {
  DeterminismDigest out;
  out.ranks = digests_;
  return out;
}

std::size_t RaceDetector::races() const {
  const std::scoped_lock lock(mutex_);
  return races_;
}

// --- rank-thread binding --------------------------------------------------

ScopedRaceRank::ScopedRaceRank(RaceDetector* detector, int global_rank,
                               const simtime::Clock* clock) noexcept
    : previous_detector_(t_detector),
      previous_rank_(t_rank),
      previous_clock_(t_clock) {
  t_detector = detector;
  t_rank = global_rank;
  t_clock = clock;
}

ScopedRaceRank::~ScopedRaceRank() {
  t_detector = previous_detector_;
  t_rank = previous_rank_;
  t_clock = previous_clock_;
}

RaceDetector* current_race_detector() noexcept { return t_detector; }

void race_note_access(const void* base, bool write) {
  if (t_detector == nullptr) return;
  t_detector->access(base, t_rank, write, bound_sim_time(), bound_phase());
}

void race_handoff_publish(std::uint64_t key) {
  if (t_detector == nullptr) return;
  t_detector->handoff_publish(t_rank, key);
}

void race_handoff_acquire(std::uint64_t key) {
  if (t_detector == nullptr) return;
  t_detector->handoff_acquire(t_rank, key);
}

void race_nb_initiate(const void* base, bool op_writes,
                      std::string_view what) {
  if (t_detector == nullptr) return;
  t_detector->nb_initiate(base, t_rank, op_writes, what, bound_sim_time(),
                          bound_phase());
}

void race_nb_complete(const void* base) {
  if (t_detector == nullptr) return;
  t_detector->nb_complete(base, t_rank, bound_sim_time(), bound_phase());
}

void race_page_alloc(const void* block, std::uint64_t bytes) {
  if (t_detector == nullptr) return;
  const char* tag = memtrack::current_tag();
  t_detector->page_alloc(t_rank, block, bytes,
                         tag != nullptr ? tag : std::string_view(),
                         bound_sim_time(), bound_phase());
}

void race_page_release(const void* block) {
  if (t_detector == nullptr) return;
  t_detector->page_release(t_rank, block, bound_sim_time(), bound_phase());
}

// --- annotation API -------------------------------------------------------

SharedRegion::~SharedRegion() {
  if (t_detector != nullptr) t_detector->region_unregister(base_);
}

void SharedRegion::note(bool write) const {
  if (t_detector == nullptr) return;
  t_detector->ensure_and_access(base_, bytes_, name_, t_rank, write,
                                bound_sim_time(), bound_phase());
}

// --- cross-run determinism checker ----------------------------------------

DeterminismDigest determinism_digest(const JobChecker& checker) {
  const RaceDetector* detector = checker.race();
  return detector != nullptr ? detector->digest() : DeterminismDigest{};
}

std::optional<Divergence> compare_digests(const DeterminismDigest& a,
                                          const DeterminismDigest& b) {
  const std::size_t nranks = std::max(a.ranks.size(), b.ranks.size());
  for (std::size_t r = 0; r < nranks; ++r) {
    if (r >= a.ranks.size() || r >= b.ranks.size()) {
      Divergence div;
      div.rank = static_cast<int>(r);
      div.detail = "rank " + std::to_string(r) +
                   " present in only one run (" + std::to_string(a.ranks.size()) +
                   " vs " + std::to_string(b.ranks.size()) + " ranks)";
      return div;
    }
    const auto& ra = a.ranks[r];
    const auto& rb = b.ranks[r];
    const std::size_t n = std::max(ra.size(), rb.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= ra.size() || i >= rb.size()) {
        Divergence div;
        div.rank = static_cast<int>(r);
        div.index = i;
        div.phase = i >= ra.size() ? rb[i].phase : ra[i].phase;
        div.detail = "rank " + std::to_string(r) + " ran " +
                     std::to_string(ra.size()) + " collectives in one run, " +
                     std::to_string(rb.size()) + " in the other";
        return div;
      }
      if (ra[i].hash != rb[i].hash) {
        Divergence div;
        div.rank = static_cast<int>(r);
        div.index = i;
        // The chained hash pins the *first* divergent collective; its
        // phase names where the runs split.
        div.phase = ra[i].phase;
        div.detail = "rank " + std::to_string(r) + " collective #" +
                     std::to_string(i) + " fingerprint differs in phase '" +
                     (ra[i].phase.empty() ? std::string("<none>")
                                          : ra[i].phase) +
                     "'" +
                     (ra[i].phase == rb[i].phase
                          ? std::string()
                          : " (other run was in phase '" + rb[i].phase +
                                "')");
        return div;
      }
    }
  }
  return std::nullopt;
}

bool race_env_enabled() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv("MIMIR_RACE");
  if (value == nullptr) return false;
  const std::string_view v(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

}  // namespace check
