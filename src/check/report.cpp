#include "check/report.hpp"

#include <sstream>

#include "stats/jsonlite.hpp"

namespace check {

const char* to_string(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::text() const {
  std::ostringstream oss;
  oss << '[' << to_string(severity) << "][" << analyzer << "][" << code
      << ']';
  if (!ranks.empty()) {
    oss << " rank" << (ranks.size() > 1 ? "s " : " ");
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      if (i != 0) oss << ',';
      oss << ranks[i];
    }
  }
  if (!phase.empty()) oss << " (phase " << phase << ')';
  oss << ": " << message;
  return oss.str();
}

void Report::add(Diagnostic diagnostic) {
  const std::scoped_lock lock(mutex_);
  diagnostics_.push_back(std::move(diagnostic));
}

std::vector<Diagnostic> Report::diagnostics() const {
  const std::scoped_lock lock(mutex_);
  return diagnostics_;
}

std::size_t Report::size() const {
  const std::scoped_lock lock(mutex_);
  return diagnostics_.size();
}

std::size_t Report::errors() const {
  const std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t Report::warnings() const {
  const std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

std::size_t Report::count(std::string_view code) const {
  const std::scoped_lock lock(mutex_);
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) ++n;
  }
  return n;
}

Diagnostic Report::first(std::string_view code) const {
  const std::scoped_lock lock(mutex_);
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return d;
  }
  Diagnostic none;
  none.code.clear();
  return none;
}

std::string Report::text() const {
  const std::scoped_lock lock(mutex_);
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.text();
    out += '\n';
  }
  return out;
}

std::string Report::json() const {
  const std::scoped_lock lock(mutex_);
  std::ostringstream oss;
  oss << "{\"diagnostics\":[";
  std::size_t errors = 0;
  for (std::size_t i = 0; i < diagnostics_.size(); ++i) {
    const Diagnostic& d = diagnostics_[i];
    if (d.severity == Severity::kError) ++errors;
    if (i != 0) oss << ',';
    oss << "{\"severity\":\"" << to_string(d.severity) << "\",\"analyzer\":\""
        << stats::jsonlite::escape(d.analyzer) << "\",\"code\":\""
        << stats::jsonlite::escape(d.code) << "\",\"message\":\""
        << stats::jsonlite::escape(d.message) << "\",\"ranks\":[";
    for (std::size_t r = 0; r < d.ranks.size(); ++r) {
      if (r != 0) oss << ',';
      oss << d.ranks[r];
    }
    oss << "],\"phase\":\"" << stats::jsonlite::escape(d.phase)
        << "\",\"sim_time\":" << d.sim_time << '}';
  }
  oss << "],\"errors\":" << errors
      << ",\"warnings\":" << (diagnostics_.size() - errors) << '}';
  return oss.str();
}

void Report::clear() {
  const std::scoped_lock lock(mutex_);
  diagnostics_.clear();
}

}  // namespace check
