// mimir-race: a vector-clock happens-before race detector for simulated
// ranks, plus a cross-run determinism checker.
//
// simmpi ranks are host threads, so user map/reduce callbacks that share
// state across ranks can race exactly like any threaded program — the
// dominant correctness hazard once a MapReduce framework opens up to
// real applications. TSan finds such races only when the host scheduler
// happens to interleave the conflicting accesses; mimir-race instead
// exploits the fact that simmpi owns every synchronization edge and
// checks the *discipline*: it maintains one vector clock per global
// rank, joined on
//
//   * barrier entry/exit and every collective rendezvous (all ranks of
//     the communicator join to the pairwise max, then tick),
//   * point-to-point send -> recv edges (the receiver joins the clock
//     the sender snapshotted at send time),
//   * sched producer -> consumer container handoff (race_handoff_publish
//     / race_handoff_acquire keyed per (node, rank)),
//
// and verifies every access to *registered shared state* against the
// FastTrack epoch rule: a write must happen-after the previous write and
// every previous read; a read must happen-after the previous write.
// Violations are reported as check::Diagnostics naming BOTH access
// sites' rank, phase path, and simulated time — deterministically, on
// every run, regardless of host interleaving.
//
// Registered shared state comes from two sources:
//
//   * the annotation API below — wrap cross-rank shared variables in
//     check::Shared<T> (typed) or register a raw byte range as a
//     check::SharedRegion; accesses are checked only while a rank thread
//     of a race-checked job is bound (zero-cost passthrough otherwise);
//   * automatic registration of framework pages (KVContainer pages,
//     combine-table arenas, checkpoint buffers, sched handoff
//     containers) via the existing memtrack::AllocObserver hooks: page
//     alloc/release count as writes to the page region, so an
//     unsynchronized cross-rank page ownership transfer is itself a
//     reported race.
//
// The detector additionally folds every collective fingerprint a rank
// publishes into a per-rank, per-phase digest chain; determinism_digest
// snapshots it after a run and compare_digests names the first
// divergent (rank, phase) between two runs — turning "works on my
// machine" nondeterminism into a failing test.
//
// Enabling: CheckConfig{.race = true} on a JobChecker passed to
// simmpi::run, `mimir.race=1` on a bench/example command line, or
// MIMIR_RACE=1 in the environment. Like every mimir-check analyzer the
// detector is accounting-only: it never advances a simulated clock,
// never charges a tracker, and never aborts the job (races are
// diagnostics, not errors) — simulated results are bit-identical with
// the detector on or off, which the race equivalence tests enforce.
//
// See DESIGN.md "Memory model & race detection" for the happens-before
// argument this detector operationalizes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/report.hpp"

namespace simtime {
class Clock;
}

namespace check {

struct CollectiveFingerprint;

/// One rank's logical time: component r counts rank r's synchronization
/// epochs. a.happens_before(b) iff a <= b pointwise.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int nranks)
      : v_(static_cast<std::size_t>(nranks), 0) {}

  std::uint64_t operator[](int rank) const noexcept {
    return v_[static_cast<std::size_t>(rank)];
  }
  void tick(int rank) noexcept { ++v_[static_cast<std::size_t>(rank)]; }
  void join(std::span<const std::uint64_t> other) noexcept {
    for (std::size_t i = 0; i < v_.size() && i < other.size(); ++i) {
      if (other[i] > v_[i]) v_[i] = other[i];
    }
  }
  void join(const VectorClock& other) noexcept { join(other.v_); }
  std::span<const std::uint64_t> values() const noexcept { return v_; }
  std::vector<std::uint64_t> snapshot() const { return v_; }
  std::size_t size() const noexcept { return v_.size(); }

 private:
  std::vector<std::uint64_t> v_;
};

/// One recorded access to a registered region, kept for diagnostics.
struct AccessSite {
  int rank = -1;           ///< global rank, -1 = no access recorded
  std::uint64_t epoch = 0; ///< accessor's own clock component at access
  double sim_time = 0.0;
  std::string phase;       ///< accessor's phase path at access time
  bool write = false;
};

/// Per-rank, per-collective digest entry for the determinism checker.
struct DigestEntry {
  std::uint64_t hash = 0;  ///< chained fingerprint hash up to this entry
  std::string phase;       ///< publishing rank's phase path
};

/// Snapshot of one run's per-rank collective digests.
struct DeterminismDigest {
  std::vector<std::vector<DigestEntry>> ranks;

  bool empty() const noexcept { return ranks.empty(); }
  /// One value summarizing the whole run (order-sensitive).
  std::uint64_t combined() const noexcept;
};

/// First point where two runs' digests diverge.
struct Divergence {
  int rank = -1;
  std::size_t index = 0;   ///< collective index on that rank
  std::string phase;       ///< phase path at (or nearest before) the split
  std::string detail;      ///< human-readable what-differed
};

/// The happens-before engine. One per JobChecker (when CheckConfig.race
/// is set); reset per job by simmpi::run. All methods are thread-safe —
/// rank threads serialize on an internal mutex, which is fine because
/// the detector is off the simulated-cost path entirely.
class RaceDetector {
 public:
  /// Diagnostics go to `report` (analyzer "race"); at most
  /// `max_region_reports` races are reported per region.
  explicit RaceDetector(Report& report, int max_region_reports = 4);

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// Drop all per-job state and size clocks for `nranks` global ranks.
  void reset(int nranks);

  // -- happens-before edges (called from simmpi / sched) -----------------

  /// Collective rendezvous: join every participant's clock to the
  /// pairwise max, then tick each. Called by the communicator's rank 0
  /// between the entry barrier and the verification fence, while every
  /// other participant is blocked in the fence.
  void collective_sync(std::span<const int> global_ranks);

  /// Snapshot the sender's clock for a p2p message and tick it.
  std::vector<std::uint64_t> send_edge(int global_rank);

  /// Receiver joins the clock attached to the matched message.
  void recv_edge(int global_rank, std::span<const std::uint64_t> clock);

  /// Producer-side handoff edge: publish `global_rank`'s clock under
  /// `key` (joining any previous publication) and tick.
  void handoff_publish(int global_rank, std::uint64_t key);

  /// Consumer-side handoff edge: join the clock published under `key`.
  void handoff_acquire(int global_rank, std::uint64_t key);

  // -- non-blocking collective buffer freeze -------------------------------

  /// Freeze the registered region at `base` for the duration of an
  /// in-flight non-blocking collective named `what`: until nb_complete,
  /// every write to the region — and every read when `op_writes` is set
  /// (a receive buffer the operation will fill) — is reported as
  /// "write-after-initiate"/"read-after-initiate". This catches the one
  /// hazard the epoch rule cannot: a rank touching its *own* in-flight
  /// buffer, where program order trivially satisfies happens-before but
  /// the buffer belongs to the collective until Request::wait returns.
  /// The initiation itself counts as a read of a send buffer (the
  /// operation captures its contents). Unregistered bases are ignored.
  void nb_initiate(const void* base, int global_rank, bool op_writes,
                   std::string_view what, double sim_time,
                   std::string phase);

  /// Thaw the region at `base` and record the completion access (a
  /// write for op-written regions, a read otherwise) on the waiting
  /// rank — the join point of the initiate -> wait happens-before edge.
  void nb_complete(const void* base, int global_rank, double sim_time,
                   std::string phase);

  // -- registered shared state -------------------------------------------

  /// Register [base, base+bytes) as shared state named `name`.
  /// Re-registering the same base replaces the region (fresh state).
  void region_register(const void* base, std::uint64_t bytes,
                       std::string name);

  /// Forget a region (e.g. the page was released). No-op when unknown.
  void region_unregister(const void* base);

  /// Check one access by `global_rank` to the region at `base` against
  /// the FastTrack epoch rule; races are reported, never thrown.
  /// Unregistered bases are ignored.
  void access(const void* base, int global_rank, bool write,
              double sim_time, std::string phase);

  /// The lazy-registration path used by SharedRegion: register the
  /// region if this job has not seen it yet, then check the access.
  void ensure_and_access(const void* base, std::uint64_t bytes,
                         std::string_view name, int global_rank, bool write,
                         double sim_time, std::string phase);

  /// Page lifecycle events (forwarded by the lifecycle auditor): alloc
  /// registers the page region afresh and counts as a write; release
  /// counts as a write and unregisters, so an unsynchronized cross-rank
  /// page ownership transfer is itself a race.
  void page_alloc(int global_rank, const void* block, std::uint64_t bytes,
                  std::string_view tag, double sim_time, std::string phase);
  void page_release(int global_rank, const void* block, double sim_time,
                    std::string phase);

  // -- determinism digest -------------------------------------------------

  /// Fold `fp` into `global_rank`'s digest chain; `npeers` is the
  /// communicator size (length of any alltoallv count arrays). Called
  /// from the collective announce path; each rank only ever touches its
  /// own chain, so this takes no lock.
  void record_fingerprint(int global_rank, const CollectiveFingerprint& fp,
                          int npeers);

  /// Snapshot the per-rank digests accumulated since the last reset.
  DeterminismDigest digest() const;

  /// Number of race diagnostics reported since the last reset.
  std::size_t races() const;

 private:
  struct RegionState {
    std::string name;
    std::uint64_t bytes = 0;
    AccessSite last_write;
    std::vector<AccessSite> reads;  ///< per-rank last read
    int reports = 0;
    /// Non-blocking freeze window (nb_initiate .. nb_complete).
    bool frozen = false;
    bool frozen_op_writes = false;
    std::string frozen_what;
    AccessSite frozen_site;  ///< the initiator, for diagnostics
  };

  /// Phase/sim-time for an access on the calling rank thread.
  void report_race(RegionState& region, const AccessSite& previous,
                   const AccessSite& current);
  void report_frozen(RegionState& region, const AccessSite& current);
  bool ordered_before(const AccessSite& site,
                      const VectorClock& clock) const noexcept;

  Report* report_;
  const int max_region_reports_;

  mutable std::mutex mutex_;
  int nranks_ = 0;
  std::vector<VectorClock> clocks_;
  std::map<const void*, RegionState> regions_;
  std::map<std::uint64_t, VectorClock> handoffs_;
  std::size_t races_ = 0;

  // Determinism digests: outer vector sized at reset, inner vectors
  // owned exclusively by their rank's thread (same discipline as the
  // simmpi slot table).
  std::vector<std::vector<DigestEntry>> digests_;
};

// --- rank-thread binding ---------------------------------------------------

/// RAII binding of the calling rank thread to a job's race detector.
/// Installed by simmpi::run next to the lifecycle auditor; Shared<T>,
/// SharedRegion, and the sched handoff helpers resolve the detector,
/// global rank, and simulated clock through it.
class ScopedRaceRank {
 public:
  ScopedRaceRank(RaceDetector* detector, int global_rank,
                 const simtime::Clock* clock) noexcept;
  ~ScopedRaceRank();

  ScopedRaceRank(const ScopedRaceRank&) = delete;
  ScopedRaceRank& operator=(const ScopedRaceRank&) = delete;

 private:
  RaceDetector* previous_detector_;
  int previous_rank_;
  const simtime::Clock* previous_clock_;
};

/// The calling thread's bound detector, or nullptr outside a
/// race-checked job.
RaceDetector* current_race_detector() noexcept;

/// Note one access to registered shared state at `base` on the calling
/// rank thread. No-op without a binding.
void race_note_access(const void* base, bool write);

/// sched handoff edges on the calling rank thread (no-ops unbound).
void race_handoff_publish(std::uint64_t key);
void race_handoff_acquire(std::uint64_t key);

/// Freeze / thaw a registered region around an asynchronous operation
/// the calling rank initiated (e.g. a PFS read-ahead into `base`):
/// between initiate and complete, any same-rank touch of the region is
/// a reported race (write-after-initiate / read-after-initiate when
/// the op itself writes the buffer). No-ops unbound; unregistered
/// bases are ignored.
void race_nb_initiate(const void* base, bool op_writes,
                      std::string_view what);
void race_nb_complete(const void* base);

/// Page lifecycle forwarding on the calling rank thread (no-ops
/// unbound); the region name comes from the active memtrack tag.
void race_page_alloc(const void* block, std::uint64_t bytes);
void race_page_release(const void* block);

// --- annotation API --------------------------------------------------------

/// A raw byte range registered as shared state for the duration of the
/// object. Registration happens lazily per job (regions are cleared on
/// detector reset), so a SharedRegion may outlive many jobs.
class SharedRegion {
 public:
  SharedRegion(std::string name, const void* base,
               std::uint64_t bytes) noexcept
      : name_(std::move(name)), base_(base), bytes_(bytes) {}
  ~SharedRegion();

  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;

  void note_read() const { note(false); }
  void note_write() const { note(true); }
  const void* base() const noexcept { return base_; }

 private:
  void note(bool write) const;

  std::string name_;
  const void* base_;
  std::uint64_t bytes_;
};

/// Typed cross-rank shared variable. Every access goes through a
/// checked accessor; with no race-checked job bound the accessors are
/// plain reads/writes. The wrapped value itself is NOT synchronized —
/// Shared<T> detects missing happens-before edges, it does not add any.
template <typename T>
class Shared {
 public:
  explicit Shared(std::string name, T value = T{})
      : region_(std::move(name), &value_, sizeof(T)),
        value_(std::move(value)) {}

  /// Checked read.
  const T& read() const {
    region_.note_read();
    return value_;
  }

  /// Checked write.
  void write(T value) {
    region_.note_write();
    value_ = std::move(value);
  }

  /// Checked read-modify-write.
  template <typename Fn>
  void update(Fn&& fn) {
    region_.note_write();
    fn(value_);
  }

  /// Unchecked escape hatch for access outside any job (e.g. reading
  /// the result from the driver after simmpi::run returned).
  T& unchecked() noexcept { return value_; }
  const T& unchecked() const noexcept { return value_; }

 private:
  SharedRegion region_;
  T value_;
};

// --- cross-run determinism checker ----------------------------------------

class JobChecker;

/// Snapshot the collective digests of `checker`'s last race-checked
/// job. Empty when the checker has no race detector.
DeterminismDigest determinism_digest(const JobChecker& checker);

/// Compare two runs' digests; returns the first divergent (rank, phase)
/// or nullopt when the runs are indistinguishable.
std::optional<Divergence> compare_digests(const DeterminismDigest& a,
                                          const DeterminismDigest& b);

/// True when MIMIR_RACE is set to 1/true/yes/on in the environment.
bool race_env_enabled();

}  // namespace check
