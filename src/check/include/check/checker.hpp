// mimir-check: opt-in correctness analyzers for simmpi jobs.
//
// Mimir's whole design rides on MPI collective semantics: the
// interleaved map+aggregate loop is only correct if every rank enters
// the same collective sequence with consistent counts, and the paper's
// memory claims depend on KV/KMV pages being released exactly when the
// container lifecycle says they are. Because simmpi owns every rank
// thread and every collective rendezvous, these properties can be
// verified in-process instead of bolted on (cf. MUST for real MPI).
//
// Three analyzers, all reporting structured Diagnostics to one
// check::Report (see report.hpp):
//
//   * collective-matching verifier — every collective entry publishes a
//     CollectiveFingerprint (op kind, per-rank sequence number, element
//     width, root, per-peer counts) into the epoch-fenced slot area;
//     rank 0 of the communicator compares them after the entry barrier
//     and names the divergent ranks, including the classic alltoallv
//     "rank i's sendcounts[j] != rank j's recvcounts[i]" mismatch.
//   * progress watchdog — rank threads publish their blocked state
//     (collective name / recv peer, simulated time, phase stack); a
//     real-time watchdog thread flags a deadlock when every rank is
//     blocked or finished and nothing changed across consecutive
//     samples, reports the wait-for graph, and aborts the job.
//   * lifecycle auditor — a memtrack::AllocObserver tagging every
//     container page with the phase that allocated it; at phase
//     boundaries the charge balance is audited against the rank's
//     Tracker, and at job end still-live pages are reported as leaks.
//
// Enabling: pass a JobChecker* to simmpi::run, or set MIMIR_CHECK=1 in
// the environment / mimir.check=1 on a bench command line to route every
// job through the process-global checker (global_checker()).
//
// Guarantee: the analyzers are read-only with respect to the simulation.
// They never advance a simulated clock and never charge a tracker, so
// results are bit-identical with the checker on or off (covered by the
// checker equivalence test).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "check/report.hpp"
#include "memtrack/tracker.hpp"

namespace mutil {
class Config;
}

namespace check {

class RaceDetector;

/// Analyzer tuning; all times are real (wall-clock) milliseconds — the
/// watchdog watches host threads, not simulated time.
struct CheckConfig {
  /// Real time between watchdog progress samples.
  int watchdog_interval_ms = 200;
  /// Consecutive unchanged samples before a deadlock verdict.
  int watchdog_stalls = 2;
  /// Cap on reported alltoallv pairwise mismatches per collective.
  int max_pairwise_reports = 8;
  /// Run the mimir-race happens-before detector (see race.hpp).
  bool race = false;
  /// Cap on reported races per shared region.
  int max_region_reports = 4;

  /// Read mimir.check.* keys (watchdog_ms, stalls) and mimir.race.
  static CheckConfig from(const mutil::Config& cfg);
};

/// True when MIMIR_CHECK is set to 1/true/yes/on in the environment.
bool env_enabled();

// --- collective-matching verifier ---------------------------------------

enum class CollectiveOp : std::uint32_t {
  kNone = 0,
  kBarrier,
  kAlltoallv,
  kAlltoallU64,
  kAllreduceI64,
  kAllreduceU64,
  kAllreduceF64,
  kAllgatherI64,
  kAllgatherU64,
  kBcast,
  kBcastU64,
  kGatherv,
  kSplit,
  // Non-blocking collectives match on initiation order, not on the
  // shared-slot rendezvous, so they carry their own op kinds: the
  // kAlltoallv pairwise audit must not fire for them (an ialltoallv
  // fingerprint has no recv counts — they are discovered at completion).
  kIalltoallv,
  kIallreduceU64,
};

const char* to_string(CollectiveOp op) noexcept;

/// What one rank published on entering a collective. Written by its
/// owner rank before the entry barrier, read by the verifying rank
/// between the entry and exit barriers (same happens-before discipline
/// as the simmpi slot table). The counts pointers borrow the caller's
/// alltoallv count arrays, which stay alive until the exit barrier.
struct CollectiveFingerprint {
  CollectiveOp op = CollectiveOp::kNone;
  std::uint64_t seq = 0;   ///< per-rank collective sequence number
  std::uint32_t width = 0; ///< element width in bytes (1 for byte ops)
  std::uint32_t extra = 0; ///< op-specific (e.g. reduction operator)
  std::int32_t root = -1;  ///< root rank for rooted ops, -1 otherwise
  std::uint64_t bytes = 0; ///< payload size for size-checked ops (bcast)
  const std::uint64_t* send_counts = nullptr;  ///< alltoallv only
  const std::uint64_t* recv_counts = nullptr;  ///< alltoallv only
  double sim_time = 0.0;
  std::string phase;       ///< publishing rank's phase path
};

// --- progress watchdog ----------------------------------------------------

/// One rank's published wait state.
struct BlockedState {
  enum class Kind { kNone, kCollective, kRecv, kFinished };
  Kind kind = Kind::kNone;
  std::uint64_t id = 0;    ///< fresh per state change; watchdog compares
  std::string what;        ///< collective name or "recv"
  int peer = -1;           ///< recv source; -1 for collectives
  std::uint64_t seq = 0;   ///< collective sequence number, 0 for recv
  double sim_time = 0.0;
  std::string phase;       ///< phase path captured at block time
};

// --- lifecycle auditor ----------------------------------------------------

/// Per-rank page/charge auditor. Owned by a JobChecker and bound to the
/// rank thread as its memtrack::AllocObserver; all mutation happens on
/// that thread. Storage is plain heap — the auditor never charges the
/// tracker it audits.
class LifecycleAuditor final : public memtrack::AllocObserver {
 public:
  LifecycleAuditor(Report& report, int rank);

  void on_page_alloc(const void* block, std::uint64_t bytes) override;
  void on_page_release(const void* block, std::uint64_t bytes) override;
  void on_charge(std::uint64_t bytes) override;
  void on_release(std::uint64_t bytes) override;

  /// Phase-boundary audit: the observed charge balance must equal the
  /// tracker's live bytes (they are mirrored operation by operation, so
  /// divergence means bytes were charged or released outside the
  /// observed window — a lifecycle bug).
  void audit(const memtrack::Tracker& tracker, std::string_view where);

  /// Job-end audit: reports every still-live page as a leak (tagged
  /// with the phase that allocated it) and any residual charge balance.
  void final_audit(const memtrack::Tracker& tracker);

  std::uint64_t live_page_bytes() const noexcept { return live_bytes_; }
  std::size_t live_pages() const noexcept { return live_.size(); }
  std::int64_t charge_balance() const noexcept { return balance_; }

 private:
  struct PageInfo {
    std::uint64_t bytes = 0;
    std::string phase;
  };

  std::string current_phase() const;

  Report* report_;
  int rank_;
  std::map<const void*, PageInfo> live_;
  std::uint64_t live_bytes_ = 0;
  std::int64_t balance_ = 0;     ///< charges minus releases
  bool underflow_reported_ = false;
};

// --- job checker ----------------------------------------------------------

/// All analyzer state for one (or a sequence of) simmpi jobs.
/// simmpi::run resets it per job, starts/stops the watchdog, and binds
/// one LifecycleAuditor per rank thread. Diagnostics accumulate in the
/// Report across jobs until Report::clear().
class JobChecker {
 public:
  /// Diagnostics go to `report`; `report` must outlive the checker.
  explicit JobChecker(Report& report, CheckConfig cfg = {});
  ~JobChecker();

  JobChecker(const JobChecker&) = delete;
  JobChecker& operator=(const JobChecker&) = delete;

  Report& report() noexcept { return *report_; }
  const CheckConfig& config() const noexcept { return cfg_; }

  /// Discard per-job analyzer state and size tables for `nranks` global
  /// ranks. Called by simmpi::run before rank threads start.
  void reset(int nranks);

  // -- collective verifier (called from simmpi::Communicator) ------------

  /// Full fingerprint comparison across one communicator's ranks;
  /// called by the communicator's rank 0 between the entry and exit
  /// barriers. `global_ranks[i]` names slot i for diagnostics. Adds
  /// diagnostics and throws mutil::CommError on a mismatch.
  void verify_collective(std::span<const CollectiveFingerprint> fps,
                         std::span<const int> global_ranks);

  /// Record a locally-detected communication error (e.g. out-of-bounds
  /// alltoallv regions) before the caller throws.
  void local_error(int global_rank, std::string_view code,
                   std::string_view message, double sim_time);

  // -- progress watchdog --------------------------------------------------

  /// Publish that `global_rank` is entering a potentially-blocking wait;
  /// returns the previous state for BlockGuard-style nesting.
  BlockedState block_enter(int global_rank, BlockedState::Kind kind,
                           std::string what, int peer, std::uint64_t seq,
                           double sim_time);
  /// Restore the pre-enter state (with a fresh change id).
  void block_exit(int global_rank, BlockedState previous);
  /// Mark a rank as done communicating (its thread is about to exit).
  void rank_finished(int global_rank);

  /// Start the watchdog thread; `abort_job` is invoked (once, from the
  /// watchdog thread) with a description when a deadlock is detected.
  void start_watchdog(std::function<void(const std::string&)> abort_job);
  void stop_watchdog();

  // -- lifecycle auditor --------------------------------------------------

  LifecycleAuditor& auditor(int global_rank);

  // -- mimir-race ---------------------------------------------------------

  /// The happens-before race detector, or nullptr when CheckConfig.race
  /// is off. Reset per job alongside the other analyzers.
  RaceDetector* race() const noexcept { return race_.get(); }

 private:
  void watchdog_loop();
  /// Build the deadlock diagnostic from a blocked-state snapshot.
  std::string report_deadlock(const std::vector<BlockedState>& snapshot);

  Report* report_;
  CheckConfig cfg_;
  int nranks_ = 0;

  std::mutex block_mutex_;
  std::vector<BlockedState> blocked_;
  std::uint64_t block_counter_ = 0;

  std::vector<std::unique_ptr<LifecycleAuditor>> auditors_;
  std::unique_ptr<RaceDetector> race_;

  std::thread watchdog_;
  std::mutex wd_mutex_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::function<void(const std::string&)> abort_job_;
};

/// RAII blocked-state publication around a blocking primitive. No-op
/// when `checker` is null.
class BlockGuard {
 public:
  BlockGuard(JobChecker* checker, int global_rank, BlockedState::Kind kind,
             const char* what, int peer, std::uint64_t seq, double sim_time)
      : checker_(checker), rank_(global_rank) {
    if (checker_ != nullptr) {
      previous_ =
          checker_->block_enter(rank_, kind, what, peer, seq, sim_time);
    }
  }
  ~BlockGuard() {
    if (checker_ != nullptr) {
      checker_->block_exit(rank_, std::move(previous_));
    }
  }

  BlockGuard(const BlockGuard&) = delete;
  BlockGuard& operator=(const BlockGuard&) = delete;

 private:
  JobChecker* checker_;
  int rank_;
  BlockedState previous_;
};

// --- process-global checker ----------------------------------------------

/// Report backing the process-global checker.
Report& global_report();

/// The process-global checker when enabled (MIMIR_CHECK env or
/// enable_global()), else nullptr. simmpi::run falls back to this when
/// no explicit checker is passed. Intended for sequential drivers
/// (benches, examples): one job at a time.
JobChecker* global_checker();

/// Turn the process-global checker on programmatically (mimir.check=1
/// on a bench command line).
void enable_global(CheckConfig cfg = {});

/// Phase-boundary audit hook for framework code: audits the calling
/// thread's LifecycleAuditor (if one is bound) against `tracker`.
/// No-op outside a checked job.
void audit_point(const memtrack::Tracker& tracker, std::string_view where);

/// The calling thread's auditor, or nullptr (bound by simmpi::run).
LifecycleAuditor* current_auditor() noexcept;

/// RAII binding of a rank thread's auditor: binds both the check-local
/// thread pointer and the memtrack::AllocObserver.
class ScopedAudit {
 public:
  explicit ScopedAudit(LifecycleAuditor* auditor) noexcept;
  ~ScopedAudit();

  ScopedAudit(const ScopedAudit&) = delete;
  ScopedAudit& operator=(const ScopedAudit&) = delete;

 private:
  LifecycleAuditor* previous_;
  memtrack::ScopedAllocObserver observer_;
};

}  // namespace check
