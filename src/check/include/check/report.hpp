// Diagnostic sink of the mimir-check correctness analyzers.
//
// Every analyzer (collective-matching verifier, progress watchdog,
// container lifecycle auditor) reports findings as structured
// Diagnostics into one Report per checker, so failures are
// machine-readable exactly like the bench BENCH_*.json documents: the
// report renders both as human text and as a jsonlite JSON document.
//
// Thread-safety: rank threads and the watchdog thread add diagnostics
// concurrently; all access is serialized on an internal mutex. The
// report's own storage is untracked heap — adding a diagnostic never
// charges a memtrack::Tracker and never advances a simulated clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace check {

enum class Severity { kWarning, kError };

const char* to_string(Severity severity) noexcept;

/// One finding of one analyzer.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string analyzer;    ///< "collective" | "progress" | "lifecycle"
  std::string code;        ///< stable slug, e.g. "alltoallv-count-mismatch"
  std::string message;     ///< human-readable explanation
  std::vector<int> ranks;  ///< global ranks implicated (may be empty)
  std::string phase;       ///< phase path of the first implicated rank
  double sim_time = 0.0;   ///< simulated seconds at detection

  /// One-line rendering: "[error][collective] ranks 1,3: ...".
  std::string text() const;
};

class Report {
 public:
  Report() = default;

  Report(const Report&) = delete;
  Report& operator=(const Report&) = delete;

  void add(Diagnostic diagnostic);

  /// Snapshot of all diagnostics recorded so far.
  std::vector<Diagnostic> diagnostics() const;

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  std::size_t errors() const;
  std::size_t warnings() const;

  /// Number of diagnostics with the given code.
  std::size_t count(std::string_view code) const;
  /// First diagnostic with the given code, or a default-constructed one
  /// with an empty code when absent.
  Diagnostic first(std::string_view code) const;

  /// Human-readable listing, one diagnostic per line.
  std::string text() const;
  /// JSON document: {"diagnostics":[...],"errors":N,"warnings":N}.
  std::string json() const;

  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace check
