#include "check/checker.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "check/race.hpp"
#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "stats/registry.hpp"

namespace check {

namespace {

thread_local LifecycleAuditor* t_auditor = nullptr;

/// "alltoallv(seq 12, width 1)" — fingerprint identity for messages.
std::string describe(const CollectiveFingerprint& fp) {
  std::ostringstream oss;
  oss << to_string(fp.op) << "(seq " << fp.seq;
  if (fp.width != 0) oss << ", width " << fp.width;
  if (fp.root >= 0) oss << ", root " << fp.root;
  if (fp.extra != 0) oss << ", op " << fp.extra;
  oss << ')';
  return oss.str();
}

bool same_shape(const CollectiveFingerprint& a,
                const CollectiveFingerprint& b) noexcept {
  return a.op == b.op && a.seq == b.seq && a.width == b.width &&
         a.extra == b.extra && a.root == b.root;
}

}  // namespace

const char* to_string(CollectiveOp op) noexcept {
  switch (op) {
    case CollectiveOp::kNone: return "none";
    case CollectiveOp::kBarrier: return "barrier";
    case CollectiveOp::kAlltoallv: return "alltoallv";
    case CollectiveOp::kAlltoallU64: return "alltoall_u64";
    case CollectiveOp::kAllreduceI64: return "allreduce_i64";
    case CollectiveOp::kAllreduceU64: return "allreduce_u64";
    case CollectiveOp::kAllreduceF64: return "allreduce_f64";
    case CollectiveOp::kAllgatherI64: return "allgather_i64";
    case CollectiveOp::kAllgatherU64: return "allgather_u64";
    case CollectiveOp::kBcast: return "bcast";
    case CollectiveOp::kBcastU64: return "bcast_u64";
    case CollectiveOp::kGatherv: return "gatherv";
    case CollectiveOp::kSplit: return "split";
    case CollectiveOp::kIalltoallv: return "ialltoallv";
    case CollectiveOp::kIallreduceU64: return "iallreduce_u64";
  }
  return "unknown";
}

CheckConfig CheckConfig::from(const mutil::Config& cfg) {
  CheckConfig out;
  out.watchdog_interval_ms = static_cast<int>(
      cfg.get_int("mimir.check.watchdog_ms", out.watchdog_interval_ms));
  out.watchdog_stalls = static_cast<int>(
      cfg.get_int("mimir.check.stalls", out.watchdog_stalls));
  out.race = cfg.get_bool("mimir.race", out.race);
  return out;
}

bool env_enabled() {
  // Read once per call site is fine: the environment is set before
  // launch and never mutated by this process.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* value = std::getenv("MIMIR_CHECK");
  if (value == nullptr) return false;
  const std::string_view v(value);
  return !(v.empty() || v == "0" || v == "false" || v == "off" || v == "no");
}

// --- LifecycleAuditor ----------------------------------------------------

LifecycleAuditor::LifecycleAuditor(Report& report, int rank)
    : report_(&report), rank_(rank) {}

std::string LifecycleAuditor::current_phase() const {
  const stats::Registry* reg = stats::current();
  return reg != nullptr ? reg->phase_path() : std::string();
}

void LifecycleAuditor::on_page_alloc(const void* block,
                                     std::uint64_t bytes) {
  live_.insert_or_assign(block, PageInfo{bytes, current_phase()});
  live_bytes_ += bytes;
  // Automatic shared-state registration for mimir-race: every container
  // page (KV pages, combine-table arenas, handoff buffers) becomes a
  // tracked region whose alloc/release count as writes. No-op when the
  // rank thread has no race binding.
  race_page_alloc(block, bytes);
}

void LifecycleAuditor::on_page_release(const void* block,
                                       std::uint64_t bytes) {
  // Forward before the local-ownership check: a release of a page this
  // auditor never saw allocated is exactly the cross-thread transfer
  // the race detector must order (its global region table spans ranks).
  race_page_release(block);
  const auto it = live_.find(block);
  if (it == live_.end()) {
    // A page allocated before this auditor was bound (e.g. created on
    // another thread and moved in); not ours to account.
    return;
  }
  live_bytes_ -= it->second.bytes;
  live_.erase(it);
  (void)bytes;
}

void LifecycleAuditor::on_charge(std::uint64_t bytes) {
  balance_ += static_cast<std::int64_t>(bytes);
}

void LifecycleAuditor::on_release(std::uint64_t bytes) {
  balance_ -= static_cast<std::int64_t>(bytes);
  if (balance_ < 0 && !underflow_reported_) {
    underflow_reported_ = true;
    Diagnostic d;
    d.severity = Severity::kError;
    d.analyzer = "lifecycle";
    d.code = "tracker-double-release";
    d.message = "rank released " + std::to_string(bytes) +
                " bytes it never charged (balance went negative); a "
                "container page or buffer was released twice";
    d.ranks = {rank_};
    d.phase = current_phase();
    report_->add(std::move(d));
  }
}

void LifecycleAuditor::audit(const memtrack::Tracker& tracker,
                             std::string_view where) {
  if (balance_ < 0) return;  // already reported as a double release
  if (static_cast<std::uint64_t>(balance_) != tracker.current()) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.analyzer = "lifecycle";
    d.code = "tracker-imbalance";
    d.message = "at " + std::string(where) + ": observed charge balance " +
                std::to_string(balance_) + " bytes != tracker live bytes " +
                std::to_string(tracker.current()) +
                " (memory was charged or released outside the audited "
                "lifecycle)";
    d.ranks = {rank_};
    d.phase = current_phase();
    report_->add(std::move(d));
  }
}

void LifecycleAuditor::final_audit(const memtrack::Tracker& tracker) {
  audit(tracker, "job end");

  if (!live_.empty()) {
    // Group leaked pages by allocating phase: one diagnostic per phase.
    std::map<std::string, std::pair<std::size_t, std::uint64_t>> by_phase;
    for (const auto& [block, info] : live_) {
      auto& [pages, bytes] = by_phase[info.phase];
      ++pages;
      bytes += info.bytes;
    }
    for (const auto& [phase, counts] : by_phase) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.analyzer = "lifecycle";
      d.code = "page-leak";
      d.message = std::to_string(counts.first) + " container page(s), " +
                  std::to_string(counts.second) +
                  " bytes, still live at job end (allocated in phase '" +
                  (phase.empty() ? std::string("<none>") : phase) + "')";
      d.ranks = {rank_};
      d.phase = phase;
      report_->add(std::move(d));
    }
  }

  const std::int64_t residue =
      balance_ - static_cast<std::int64_t>(live_bytes_);
  if (residue > 0) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.analyzer = "lifecycle";
    d.code = "charge-leak";
    d.message = std::to_string(residue) +
                " bytes charged to the tracker but never released "
                "(outside container pages)";
    d.ranks = {rank_};
    report_->add(std::move(d));
  }
}

// --- JobChecker ----------------------------------------------------------

JobChecker::JobChecker(Report& report, CheckConfig cfg)
    : report_(&report), cfg_(cfg) {
  if (cfg_.race) {
    race_ = std::make_unique<RaceDetector>(report, cfg_.max_region_reports);
  }
}

JobChecker::~JobChecker() { stop_watchdog(); }

void JobChecker::reset(int nranks) {
  stop_watchdog();
  nranks_ = nranks;
  if (race_ != nullptr) race_->reset(nranks);
  {
    const std::scoped_lock lock(block_mutex_);
    blocked_.assign(static_cast<std::size_t>(nranks), BlockedState{});
    block_counter_ = 0;
  }
  auditors_.clear();
  auditors_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    auditors_.push_back(std::make_unique<LifecycleAuditor>(*report_, r));
  }
}

LifecycleAuditor& JobChecker::auditor(int global_rank) {
  return *auditors_[static_cast<std::size_t>(global_rank)];
}

// -- collective verifier --

void JobChecker::verify_collective(
    std::span<const CollectiveFingerprint> fps,
    std::span<const int> global_ranks) {
  if (fps.empty()) return;

  // Majority fingerprint shape; ties resolve to the lowest rank's.
  std::size_t majority = 0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    std::size_t votes = 0;
    for (const CollectiveFingerprint& other : fps) {
      if (same_shape(fps[i], other)) ++votes;
    }
    if (votes > best) {
      best = votes;
      majority = i;
    }
  }
  const CollectiveFingerprint& expect = fps[majority];

  std::vector<int> divergent;
  for (std::size_t i = 0; i < fps.size(); ++i) {
    if (!same_shape(fps[i], expect)) {
      divergent.push_back(global_ranks[i]);
    }
  }
  if (!divergent.empty()) {
    std::ostringstream oss;
    oss << "collective mismatch: " << best << "/" << fps.size()
        << " ranks entered " << describe(expect);
    for (std::size_t i = 0; i < fps.size(); ++i) {
      if (same_shape(fps[i], expect)) continue;
      oss << "; rank " << global_ranks[i] << " entered "
          << describe(fps[i]);
      if (!fps[i].phase.empty()) oss << " in phase " << fps[i].phase;
    }
    Diagnostic d;
    d.severity = Severity::kError;
    d.analyzer = "collective";
    d.code = "collective-mismatch";
    d.message = oss.str();
    d.ranks = std::move(divergent);
    d.phase = expect.phase;
    d.sim_time = expect.sim_time;
    const std::string text = d.text();
    report_->add(std::move(d));
    throw mutil::CommError("mimir-check: " + text);
  }

  if (expect.op == CollectiveOp::kBcast) {
    const std::uint64_t root_bytes =
        fps[static_cast<std::size_t>(expect.root)].bytes;
    std::vector<int> bad;
    for (std::size_t i = 0; i < fps.size(); ++i) {
      if (fps[i].bytes != root_bytes) bad.push_back(global_ranks[i]);
    }
    if (!bad.empty()) {
      Diagnostic d;
      d.severity = Severity::kError;
      d.analyzer = "collective";
      d.code = "bcast-size-mismatch";
      d.message = "bcast buffer size disagrees with root rank " +
                  std::to_string(global_ranks[static_cast<std::size_t>(
                      expect.root)]) +
                  " (" + std::to_string(root_bytes) + " bytes)";
      d.ranks = std::move(bad);
      d.phase = expect.phase;
      d.sim_time = expect.sim_time;
      const std::string text = d.text();
      report_->add(std::move(d));
      throw mutil::CommError("mimir-check: " + text);
    }
  }

  if (expect.op == CollectiveOp::kAlltoallv) {
    // The classic pairwise mismatch: what i advertises for j must equal
    // what j expects from i.
    int reported = 0;
    for (std::size_t i = 0; i < fps.size(); ++i) {
      for (std::size_t j = 0; j < fps.size(); ++j) {
        const std::uint64_t advertised = fps[i].send_counts[j];
        const std::uint64_t expected = fps[j].recv_counts[i];
        if (advertised == expected) continue;
        if (reported < cfg_.max_pairwise_reports) {
          Diagnostic d;
          d.severity = Severity::kError;
          d.analyzer = "collective";
          d.code = "alltoallv-count-mismatch";
          d.message =
              "rank " + std::to_string(global_ranks[i]) + "'s sendcounts[" +
              std::to_string(global_ranks[j]) + "] = " +
              std::to_string(advertised) + " but rank " +
              std::to_string(global_ranks[j]) + "'s recvcounts[" +
              std::to_string(global_ranks[i]) + "] = " +
              std::to_string(expected);
          d.ranks = {global_ranks[i], global_ranks[j]};
          d.phase = fps[j].phase;
          d.sim_time = expect.sim_time;
          report_->add(std::move(d));
        }
        ++reported;
      }
    }
    if (reported != 0) {
      throw mutil::CommError(
          "mimir-check: alltoallv count mismatch (" +
          std::to_string(reported) + " pair(s) disagree; see check report)");
    }
  }
}

void JobChecker::local_error(int global_rank, std::string_view code,
                             std::string_view message, double sim_time) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.analyzer = "collective";
  d.code.assign(code);
  d.message.assign(message);
  d.ranks = {global_rank};
  const stats::Registry* reg = stats::current();
  if (reg != nullptr) d.phase = reg->phase_path();
  d.sim_time = sim_time;
  report_->add(std::move(d));
}

// -- progress watchdog --

BlockedState JobChecker::block_enter(int global_rank,
                                     BlockedState::Kind kind,
                                     std::string what, int peer,
                                     std::uint64_t seq, double sim_time) {
  BlockedState next;
  next.kind = kind;
  next.what = std::move(what);
  next.peer = peer;
  next.seq = seq;
  next.sim_time = sim_time;
  const stats::Registry* reg = stats::current();
  if (reg != nullptr) next.phase = reg->phase_path();

  const std::scoped_lock lock(block_mutex_);
  next.id = ++block_counter_;
  auto& slot = blocked_[static_cast<std::size_t>(global_rank)];
  BlockedState previous = std::move(slot);
  slot = std::move(next);
  return previous;
}

void JobChecker::block_exit(int global_rank, BlockedState previous) {
  const std::scoped_lock lock(block_mutex_);
  // A fresh id: leaving-and-restoring is progress, not a stall.
  previous.id = ++block_counter_;
  blocked_[static_cast<std::size_t>(global_rank)] = std::move(previous);
}

void JobChecker::rank_finished(int global_rank) {
  const std::scoped_lock lock(block_mutex_);
  auto& slot = blocked_[static_cast<std::size_t>(global_rank)];
  slot = BlockedState{};
  slot.kind = BlockedState::Kind::kFinished;
  slot.id = ++block_counter_;
}

void JobChecker::start_watchdog(
    std::function<void(const std::string&)> abort_job) {
  stop_watchdog();
  {
    const std::scoped_lock lock(wd_mutex_);
    wd_stop_ = false;
    abort_job_ = std::move(abort_job);
  }
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void JobChecker::stop_watchdog() {
  {
    const std::scoped_lock lock(wd_mutex_);
    wd_stop_ = true;
  }
  wd_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void JobChecker::watchdog_loop() {
  std::vector<std::uint64_t> previous_ids;
  int stable = 0;
  std::unique_lock lock(wd_mutex_);
  for (;;) {
    const bool stopped = wd_cv_.wait_for(
        lock, std::chrono::milliseconds(cfg_.watchdog_interval_ms),
        [this] { return wd_stop_; });
    if (stopped) return;

    std::vector<BlockedState> snapshot;
    {
      const std::scoped_lock block_lock(block_mutex_);
      snapshot = blocked_;
    }
    bool all_waiting = !snapshot.empty();
    bool any_blocked = false;
    std::vector<std::uint64_t> ids;
    ids.reserve(snapshot.size());
    for (const BlockedState& s : snapshot) {
      if (s.kind == BlockedState::Kind::kNone) all_waiting = false;
      if (s.kind == BlockedState::Kind::kCollective ||
          s.kind == BlockedState::Kind::kRecv) {
        any_blocked = true;
      }
      ids.push_back(s.id);
    }

    if (all_waiting && any_blocked && ids == previous_ids) {
      if (++stable >= cfg_.watchdog_stalls) {
        const std::string message = report_deadlock(snapshot);
        const auto abort_fn = abort_job_;
        lock.unlock();
        if (abort_fn) abort_fn(message);
        return;
      }
    } else {
      stable = 0;
    }
    previous_ids = std::move(ids);
  }
}

std::string JobChecker::report_deadlock(
    const std::vector<BlockedState>& snapshot) {
  const int n = static_cast<int>(snapshot.size());

  // Wait-for edges: a recv waits on its peer; a collective waits on
  // every rank not currently inside the same collective entry.
  std::vector<std::vector<int>> waits_on(snapshot.size());
  for (int r = 0; r < n; ++r) {
    const BlockedState& s = snapshot[static_cast<std::size_t>(r)];
    if (s.kind == BlockedState::Kind::kRecv) {
      if (s.peer >= 0 && s.peer < n) {
        waits_on[static_cast<std::size_t>(r)].push_back(s.peer);
      }
    } else if (s.kind == BlockedState::Kind::kCollective) {
      for (int o = 0; o < n; ++o) {
        if (o == r) continue;
        const BlockedState& other = snapshot[static_cast<std::size_t>(o)];
        const bool same_entry =
            other.kind == BlockedState::Kind::kCollective &&
            other.what == s.what && other.seq == s.seq;
        if (!same_entry) waits_on[static_cast<std::size_t>(r)].push_back(o);
      }
    }
  }

  // Find one wait-for cycle by walking first edges (colors DFS).
  std::vector<int> cycle;
  {
    std::vector<int> color(snapshot.size(), 0);  // 0 new, 1 open, 2 done
    std::vector<int> stack;
    const std::function<bool(int)> dfs = [&](int r) {
      color[static_cast<std::size_t>(r)] = 1;
      stack.push_back(r);
      for (const int next : waits_on[static_cast<std::size_t>(r)]) {
        if (color[static_cast<std::size_t>(next)] == 1) {
          const auto begin =
              std::find(stack.begin(), stack.end(), next);
          cycle.assign(begin, stack.end());
          return true;
        }
        if (color[static_cast<std::size_t>(next)] == 0 && dfs(next)) {
          return true;
        }
      }
      stack.pop_back();
      color[static_cast<std::size_t>(r)] = 2;
      return false;
    };
    for (int r = 0; r < n && cycle.empty(); ++r) {
      if (color[static_cast<std::size_t>(r)] == 0) (void)dfs(r);
    }
  }

  std::ostringstream oss;
  oss << "no rank made progress for "
      << cfg_.watchdog_interval_ms * cfg_.watchdog_stalls << " ms;";
  double latest = 0.0;
  std::vector<int> blocked_ranks;
  std::string phase;
  for (int r = 0; r < n; ++r) {
    const BlockedState& s = snapshot[static_cast<std::size_t>(r)];
    if (s.kind == BlockedState::Kind::kFinished) {
      oss << " rank " << r << ": finished;";
      continue;
    }
    blocked_ranks.push_back(r);
    latest = std::max(latest, s.sim_time);
    if (phase.empty()) phase = s.phase;
    oss << " rank " << r << ": blocked in " << s.what;
    if (s.peer >= 0) oss << "(from " << s.peer << ')';
    if (!s.phase.empty()) oss << " in phase " << s.phase;
    oss << " since t=" << s.sim_time << "s;";
  }
  if (!cycle.empty()) {
    oss << " wait-for cycle:";
    for (const int r : cycle) oss << ' ' << r << " ->";
    oss << ' ' << cycle.front();
  }

  Diagnostic d;
  d.severity = Severity::kError;
  d.analyzer = "progress";
  d.code = "deadlock";
  d.message = oss.str();
  d.ranks = cycle.empty() ? blocked_ranks : cycle;
  std::sort(d.ranks.begin(), d.ranks.end());
  d.phase = phase;
  d.sim_time = latest;
  const std::string text = d.text();
  report_->add(std::move(d));
  return text;
}

// --- process-global checker ----------------------------------------------

Report& global_report() {
  static Report report;
  return report;
}

namespace {
std::mutex g_mutex;
std::unique_ptr<JobChecker> g_checker;      // NOLINT(cert-err58-cpp)
bool g_env_checked = false;
}  // namespace

void enable_global(CheckConfig cfg) {
  const std::scoped_lock lock(g_mutex);
  if (g_checker == nullptr) {
    g_checker = std::make_unique<JobChecker>(global_report(), cfg);
  }
}

JobChecker* global_checker() {
  const std::scoped_lock lock(g_mutex);
  if (!g_env_checked) {
    g_env_checked = true;
    // MIMIR_RACE implies checking: the race detector rides on the same
    // per-job analyzer lifecycle as the other analyzers.
    if (g_checker == nullptr && (env_enabled() || race_env_enabled())) {
      CheckConfig cfg;
      cfg.race = race_env_enabled();
      g_checker = std::make_unique<JobChecker>(global_report(), cfg);
    }
  }
  return g_checker.get();
}

// --- thread-local auditor binding ----------------------------------------

LifecycleAuditor* current_auditor() noexcept { return t_auditor; }

void audit_point(const memtrack::Tracker& tracker, std::string_view where) {
  if (t_auditor != nullptr) t_auditor->audit(tracker, where);
}

ScopedAudit::ScopedAudit(LifecycleAuditor* auditor) noexcept
    : previous_(t_auditor), observer_(auditor) {
  t_auditor = auditor;
}

ScopedAudit::~ScopedAudit() { t_auditor = previous_; }

}  // namespace check
