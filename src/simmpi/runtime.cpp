#include "simmpi/runtime.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <thread>

#include "check/checker.hpp"
#include "check/race.hpp"
#include "mutil/logging.hpp"
#include "shared_state.hpp"
#include "stats/registry.hpp"
#include "stats/trace.hpp"

namespace simmpi {

JobStats run(int nranks, const simtime::MachineProfile& machine,
             pfs::FileSystem& fs, const RankFn& fn,
             stats::Collector* collector, check::JobChecker* checker) {
  if (nranks <= 0) {
    throw mutil::ConfigError("simmpi::run: nranks must be positive");
  }
  if (checker == nullptr) checker = check::global_checker();
  const int ranks_per_node = std::max(1, machine.ranks_per_node);
  const int nodes = (nranks + ranks_per_node - 1) / ranks_per_node;

  auto shared = std::make_shared<detail::SharedState>(
      nranks, machine.net_latency, machine.net_bandwidth);

  std::vector<std::unique_ptr<memtrack::NodeBudget>> budgets;
  budgets.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    budgets.push_back(
        std::make_unique<memtrack::NodeBudget>(machine.node_memory));
  }

  std::vector<std::unique_ptr<memtrack::Tracker>> trackers(
      static_cast<std::size_t>(nranks));
  std::vector<std::unique_ptr<Communicator>> comms(
      static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    trackers[static_cast<std::size_t>(r)] =
        std::make_unique<memtrack::Tracker>(
            budgets[static_cast<std::size_t>(r / ranks_per_node)].get());
    comms[static_cast<std::size_t>(r)] =
        std::make_unique<Communicator>(shared, r);
  }

  const pfs::IoStats io_before = fs.stats();

  // Phase context for diagnostics comes from the stats registries; when
  // checking without a caller-provided collector, bind an internal one.
  std::optional<stats::Collector> internal_collector;
  if (checker != nullptr && collector == nullptr) {
    internal_collector.emplace();
    collector = &*internal_collector;
  }
  if (collector != nullptr) collector->reset(nranks);

  std::size_t diagnostics_before = 0;
  if (checker != nullptr) {
    diagnostics_before = checker->report().size();
    checker->reset(nranks);
    shared->checker = checker;
    std::weak_ptr<detail::SharedState> weak_shared = shared;
    checker->start_watchdog([weak_shared](const std::string& message) {
      if (const auto s = weak_shared.lock()) {
        s->abort(std::make_exception_ptr(
            mutil::CommError("mimir-check: " + message)));
      }
    });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      Context ctx{*comms[static_cast<std::size_t>(r)],
                  *trackers[static_cast<std::size_t>(r)], fs, machine};
      // Attribute this thread's log lines to the rank and its simulated
      // clock for the duration of the rank function.
      const mutil::ScopedLogContext log_context(
          {r, [&ctx] { return ctx.clock().now(); }});
      std::optional<stats::ScopedBind> stats_bind;
      if (collector != nullptr) {
        stats::Registry& registry = collector->rank(r);
        registry.bind(r, nranks, &ctx.clock(), &ctx.tracker);
        stats_bind.emplace(&registry);
      }
      std::optional<check::ScopedAudit> audit_bind;
      std::optional<check::ScopedRaceRank> race_bind;
      if (checker != nullptr) {
        audit_bind.emplace(&checker->auditor(r));
        // Null detector when race checking is off: the annotation API
        // and page hooks see no binding and stay zero-cost.
        race_bind.emplace(checker->race(), r, &ctx.clock());
      }
      try {
        fn(ctx);
        // Snapshot the rank's memory breakdown while the tracker is
        // still alive (the registry outlives this run, the tracker
        // does not).
        if (collector != nullptr) collector->rank(r).capture_memory();
        if (checker != nullptr) {
          // Only a successful rank is held to the lifecycle contract;
          // a throwing rank legitimately abandons in-flight pages.
          checker->auditor(r).final_audit(ctx.tracker);
          checker->rank_finished(r);
        }
      } catch (...) {
        if (collector != nullptr) {
          try {
            collector->rank(r).capture_memory();
          } catch (...) {
            // Best-effort on the failure path.
          }
        }
        if (checker != nullptr) checker->rank_finished(r);
        shared->abort(std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();

  if (checker != nullptr) {
    checker->stop_watchdog();
    for (const check::Diagnostic& d : checker->report().diagnostics()) {
      if (diagnostics_before > 0) {
        --diagnostics_before;
        continue;
      }
      mutil::log_warn("mimir-check: ", d.text());
    }
  }

  {
    const std::scoped_lock lock(shared->error_mutex);
    if (shared->first_error) std::rethrow_exception(shared->first_error);
  }

  JobStats stats;
  stats.ranks = nranks;
  stats.nodes = nodes;
  for (int r = 0; r < nranks; ++r) {
    auto& comm = *comms[static_cast<std::size_t>(r)];
    stats.sim_time = std::max(stats.sim_time, comm.clock().now());
    stats.shuffle_bytes += comm.stats().bytes_sent;
  }
  stats.node_peaks.reserve(budgets.size());
  for (const auto& budget : budgets) {
    stats.node_peaks.push_back(budget->peak());
    stats.node_peak = std::max<std::uint64_t>(stats.node_peak,
                                              budget->peak());
  }
  const pfs::IoStats io_after = fs.stats();
  stats.io.bytes_read = io_after.bytes_read - io_before.bytes_read;
  stats.io.bytes_written = io_after.bytes_written - io_before.bytes_written;
  stats.io.read_ops = io_after.read_ops - io_before.read_ops;
  stats.io.write_ops = io_after.write_ops - io_before.write_ops;
  return stats;
}

JobStats run_test(int nranks, const RankFn& fn,
                  stats::Collector* collector, check::JobChecker* checker) {
  const simtime::MachineProfile machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, nranks);
  return run(nranks, machine, fs, fn, collector, checker);
}

}  // namespace simmpi
