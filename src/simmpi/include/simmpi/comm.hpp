// simmpi: an MPI-subset message-passing substrate with ranks as threads.
//
// The paper's frameworks are written against MPI semantics — collective
// completion, byte-counted Alltoallv, reductions, barriers, matched
// point-to-point messages — not against any particular interconnect.
// This library provides exactly those semantics inside one process:
// every rank is a std::thread, collectives rendezvous through a shared
// epoch-fenced slot table, and each operation charges an alpha-beta cost
// model to the rank's simulated clock (synchronizing clocks to the
// slowest participant, which is how data skew becomes time skew).
//
// Error handling: if any rank throws, the job aborts; ranks blocked in
// collectives or recv() wake up with mutil::CommError and unwind. The
// first exception is rethrown from simmpi::run().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "simtime/clock.hpp"

namespace check {
enum class CollectiveOp : std::uint32_t;
}

namespace simmpi {

namespace detail {
struct SharedState;
}

/// Reduction operators for allreduce.
enum class Op { kSum, kMax, kMin, kLor, kLand };

/// Result of a gatherv: concatenated payloads plus per-rank byte counts.
/// Only the root rank receives data; other ranks get empty vectors.
struct GatherResult {
  std::vector<std::byte> data;
  std::vector<std::uint64_t> counts;
};

/// Per-rank communication statistics.
struct CommStats {
  std::uint64_t bytes_sent = 0;      ///< alltoallv + p2p payload out
  std::uint64_t bytes_received = 0;  ///< alltoallv + p2p payload in
  std::uint64_t collectives = 0;     ///< collective operations entered
};

/// One rank's endpoint. Each rank thread owns exactly one Communicator;
/// the object itself is not shared between threads.
class Communicator {
 public:
  Communicator(std::shared_ptr<detail::SharedState> shared, int rank);
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  simtime::Clock& clock() noexcept { return *clock_; }
  const CommStats& stats() const noexcept { return stats_; }

  /// Partition the communicator into sub-communicators (MPI_Comm_split):
  /// ranks sharing `color` form a group, ordered by (key, old rank).
  /// Collective; every rank receives its group's communicator. The child
  /// shares this rank's simulated clock, so costs accrue on one
  /// timeline.
  std::unique_ptr<Communicator> split(int color, int key);

  // --- Collectives (all ranks must call in the same order) -------------

  void barrier();

  /// Byte-counted all-to-all exchange (MPI_Alltoallv). Counts and
  /// displacements are in bytes; all spans must have size() == size().
  void alltoallv(std::span<const std::byte> send,
                 std::span<const std::uint64_t> send_counts,
                 std::span<const std::uint64_t> send_displs,
                 std::span<std::byte> recv,
                 std::span<const std::uint64_t> recv_counts,
                 std::span<const std::uint64_t> recv_displs);

  /// Exchange one u64 with every rank (MPI_Alltoall on a single value);
  /// used to learn recv counts before an alltoallv.
  std::vector<std::uint64_t> alltoall_u64(
      std::span<const std::uint64_t> values);

  std::int64_t allreduce_i64(std::int64_t value, Op op);
  std::uint64_t allreduce_u64(std::uint64_t value, Op op);
  double allreduce_f64(double value, Op op);
  bool allreduce_lor(bool value);
  bool allreduce_land(bool value);

  std::vector<std::int64_t> allgather_i64(std::int64_t value);
  std::vector<std::uint64_t> allgather_u64(std::uint64_t value);

  /// Broadcast `data` from `root` into every rank's buffer (all buffers
  /// must have the same size).
  void bcast(std::span<std::byte> data, int root);
  std::uint64_t bcast_u64(std::uint64_t value, int root);

  /// Gather variable-length payloads at `root`.
  GatherResult gatherv(int root, std::span<const std::byte> payload);

  // --- Point-to-point ---------------------------------------------------

  /// Blocking, buffered send (copies the payload).
  void send(int dest, int tag, std::span<const std::byte> payload);

  /// Blocking receive matching (source, tag). FIFO per (source, tag).
  std::vector<std::byte> recv(int source, int tag);

  /// Synchronize this rank's clock with all others (max), charging
  /// barrier latency. Used by frameworks at phase boundaries.
  double clock_sync();

 private:
  friend struct detail::SharedState;

  Communicator(std::shared_ptr<detail::SharedState> shared, int rank,
               simtime::Clock* borrowed_clock);

  // mimir-check hooks; all no-ops when the job's checker is null.
  bool checking() const noexcept;
  int check_global_rank() const noexcept;
  /// Publish this rank's fingerprint for the collective it is entering.
  /// Must run before the entry barrier.
  void check_announce(check::CollectiveOp op, std::uint32_t width,
                      std::uint32_t extra, std::int32_t root,
                      std::uint64_t bytes,
                      const std::uint64_t* send_counts,
                      const std::uint64_t* recv_counts);
  /// Verification fence after the entry barrier: the communicator's
  /// rank 0 compares all fingerprints (throwing mutil::CommError on a
  /// mismatch), then every rank rendezvouses once more so no rank reads
  /// peer slot data the verifier rejected. Pure thread synchronization —
  /// never advances a simulated clock.
  void check_verify();
  /// Record a locally-detected error in the check report before throwing.
  void check_local_error(const char* code, const std::string& message);
  /// barrier_wait with the blocked state published to the watchdog. Only
  /// the wait itself is marked blocked — a rank computing between
  /// barriers reads as making progress, so the deadlock verdict ("every
  /// rank blocked, nothing changed") cannot fire on slow compute.
  void checked_wait(const char* what);
  /// Report `released - entry` simulated seconds of rendezvous blocking
  /// to the rank's stats registry, if any. Accounting-only: reads
  /// timestamps already computed by the collective, touches no clock.
  static void note_wait(double entry, double released);

  std::shared_ptr<detail::SharedState> shared_;
  int rank_;
  simtime::Clock own_clock_;
  simtime::Clock* clock_ = &own_clock_;
  CommStats stats_;
  std::uint64_t check_seq_ = 0;  ///< per-rank collective sequence number
};

}  // namespace simmpi
