// simmpi: an MPI-subset message-passing substrate with ranks as threads.
//
// The paper's frameworks are written against MPI semantics — collective
// completion, byte-counted Alltoallv, reductions, barriers, matched
// point-to-point messages — not against any particular interconnect.
// This library provides exactly those semantics inside one process:
// every rank is a std::thread, collectives rendezvous through a shared
// epoch-fenced slot table, and each operation charges an alpha-beta cost
// model to the rank's simulated clock (synchronizing clocks to the
// slowest participant, which is how data skew becomes time skew).
//
// Error handling: if any rank throws, the job aborts; ranks blocked in
// collectives or recv() wake up with mutil::CommError and unwind. The
// first exception is rethrown from simmpi::run().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "simtime/clock.hpp"

namespace check {
enum class CollectiveOp : std::uint32_t;
}

namespace simmpi {

namespace detail {
struct SharedState;
}

/// Reduction operators for allreduce.
enum class Op { kSum, kMax, kMin, kLor, kLand };

/// Result of a gatherv: concatenated payloads plus per-rank byte counts.
/// Only the root rank receives data; other ranks get empty vectors.
struct GatherResult {
  std::vector<std::byte> data;
  std::vector<std::uint64_t> counts;
};

/// Per-rank communication statistics.
struct CommStats {
  std::uint64_t bytes_sent = 0;      ///< alltoallv + p2p payload out
  std::uint64_t bytes_received = 0;  ///< alltoallv + p2p payload in
  std::uint64_t collectives = 0;     ///< collective operations entered
};

class Communicator;

/// Handle for an in-flight non-blocking collective (ialltoallv /
/// iallreduce_u64). Move-only; owned by the initiating rank thread.
/// The buffers passed at initiation belong to the operation until
/// wait() returns — the race detector reports any touch in between.
/// Destroying an un-waited Request detaches: the operation still
/// completes for the peers (its shared entry is reclaimed when the
/// job's shared state dies), but this rank never learns the result.
class Request {
 public:
  Request() = default;
  Request(Request&& other) noexcept { *this = std::move(other); }
  Request& operator=(Request&& other) noexcept {
    comm_ = other.comm_;
    key_ = other.key_;
    alltoallv_ = other.alltoallv_;
    waited_ = other.waited_;
    send_base_ = other.send_base_;
    recv_base_ = other.recv_base_;
    recv_counts_ = std::move(other.recv_counts_);
    sent_ = other.sent_;
    received_ = other.received_;
    value_ = other.value_;
    other.comm_ = nullptr;
    return *this;
  }
  ~Request() = default;

  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  bool valid() const noexcept { return comm_ != nullptr; }
  bool done() const noexcept { return waited_; }

  /// True when the operation has completed (every rank has initiated
  /// it). Never blocks and never advances the simulated clock.
  bool test();

  /// Block until completion, charge the overlap-aware cost model
  /// (blocked seconds count as wait, in-flight seconds spent computing
  /// count as overlap), and make the results available. Idempotent.
  void wait();

  /// ialltoallv: bytes received from each source rank. Valid after
  /// wait(); the payload lands contiguously in source-rank order at
  /// the start of the receive buffer.
  const std::vector<std::uint64_t>& recv_counts() const noexcept {
    return recv_counts_;
  }
  std::uint64_t bytes_received() const noexcept { return received_; }
  std::uint64_t bytes_sent() const noexcept { return sent_; }
  /// iallreduce_u64: the reduction result. Valid after wait().
  std::uint64_t value() const noexcept { return value_; }

 private:
  friend class Communicator;
  Request(Communicator* comm, std::uint64_t key, bool alltoallv,
          const void* send_base, const void* recv_base) noexcept
      : comm_(comm),
        key_(key),
        alltoallv_(alltoallv),
        send_base_(send_base),
        recv_base_(recv_base) {}

  Communicator* comm_ = nullptr;
  std::uint64_t key_ = 0;
  bool alltoallv_ = false;
  bool waited_ = false;
  const void* send_base_ = nullptr;  ///< for the race-detector thaw
  const void* recv_base_ = nullptr;
  std::vector<std::uint64_t> recv_counts_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t value_ = 0;
};

/// One rank's endpoint. Each rank thread owns exactly one Communicator;
/// the object itself is not shared between threads.
class Communicator {
 public:
  Communicator(std::shared_ptr<detail::SharedState> shared, int rank);
  ~Communicator();

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  simtime::Clock& clock() noexcept { return *clock_; }
  const CommStats& stats() const noexcept { return stats_; }

  /// Partition the communicator into sub-communicators (MPI_Comm_split):
  /// ranks sharing `color` form a group, ordered by (key, old rank).
  /// Collective; every rank receives its group's communicator. The child
  /// shares this rank's simulated clock, so costs accrue on one
  /// timeline.
  std::unique_ptr<Communicator> split(int color, int key);

  // --- Collectives (all ranks must call in the same order) -------------

  void barrier();

  /// Byte-counted all-to-all exchange (MPI_Alltoallv). Counts and
  /// displacements are in bytes; all spans must have size() == size().
  void alltoallv(std::span<const std::byte> send,
                 std::span<const std::uint64_t> send_counts,
                 std::span<const std::uint64_t> send_displs,
                 std::span<std::byte> recv,
                 std::span<const std::uint64_t> recv_counts,
                 std::span<const std::uint64_t> recv_displs);

  /// Exchange one u64 with every rank (MPI_Alltoall on a single value);
  /// used to learn recv counts before an alltoallv.
  std::vector<std::uint64_t> alltoall_u64(
      std::span<const std::uint64_t> values);

  std::int64_t allreduce_i64(std::int64_t value, Op op);
  std::uint64_t allreduce_u64(std::uint64_t value, Op op);
  double allreduce_f64(double value, Op op);
  bool allreduce_lor(bool value);
  bool allreduce_land(bool value);

  std::vector<std::int64_t> allgather_i64(std::int64_t value);
  std::vector<std::uint64_t> allgather_u64(std::uint64_t value);

  /// Broadcast `data` from `root` into every rank's buffer (all buffers
  /// must have the same size).
  void bcast(std::span<std::byte> data, int root);
  std::uint64_t bcast_u64(std::uint64_t value, int root);

  /// Gather variable-length payloads at `root`.
  GatherResult gatherv(int root, std::span<const std::byte> payload);

  /// All-gather variable-length payloads: every rank receives the
  /// concatenation of all ranks' payloads (rank order) plus the
  /// per-rank byte counts. Composed from gatherv(0) + bcast, so the
  /// existing per-collective fingerprint checks cover it; intended for
  /// modest control-plane blobs (e.g. balance sketches), not bulk data.
  GatherResult allgatherv(std::span<const std::byte> payload);

  // --- Non-blocking collectives ----------------------------------------
  //
  // Initiations are collective calls too: all ranks must initiate the
  // same non-blocking operations in the same order relative to every
  // other collective. Initiation never blocks and charges nothing; the
  // full alpha-beta cost lands at wait(), measured from the *latest*
  // initiation — so a rank that keeps computing between initiate and
  // wait genuinely hides communication time (the hidden seconds are
  // attributed as "overlap" in the stats registry, blocked seconds as
  // "wait"). An immediate wait reproduces the blocking cost exactly.

  /// Non-blocking byte-counted all-to-all. Unlike the blocking
  /// alltoallv, receive counts are not an argument: they are discovered
  /// at completion (Request::recv_counts), and the payload lands
  /// contiguously in source-rank order at the start of `recv`, which
  /// must be large enough for whatever the peers send. The send and
  /// recv buffers belong to the operation until wait() returns.
  Request ialltoallv(std::span<const std::byte> send,
                     std::span<const std::uint64_t> send_counts,
                     std::span<const std::uint64_t> send_displs,
                     std::span<std::byte> recv);

  /// Non-blocking u64 allreduce; the result is Request::value().
  Request iallreduce_u64(std::uint64_t value, Op op);

  // --- Point-to-point ---------------------------------------------------

  /// Blocking, buffered send (copies the payload).
  void send(int dest, int tag, std::span<const std::byte> payload);

  /// Blocking receive matching (source, tag). FIFO per (source, tag).
  std::vector<std::byte> recv(int source, int tag);

  /// Synchronize this rank's clock with all others (max), charging
  /// barrier latency. Used by frameworks at phase boundaries.
  double clock_sync();

 private:
  friend struct detail::SharedState;
  friend class Request;

  Communicator(std::shared_ptr<detail::SharedState> shared, int rank,
               simtime::Clock* borrowed_clock);

  // Non-blocking machinery backing Request.
  bool nb_test(std::uint64_t key);
  void nb_wait(Request& request);

  // mimir-check hooks; all no-ops when the job's checker is null.
  bool checking() const noexcept;
  int check_global_rank() const noexcept;
  /// Publish this rank's fingerprint for the collective it is entering.
  /// Must run before the entry barrier.
  void check_announce(check::CollectiveOp op, std::uint32_t width,
                      std::uint32_t extra, std::int32_t root,
                      std::uint64_t bytes,
                      const std::uint64_t* send_counts,
                      const std::uint64_t* recv_counts);
  /// Verification fence after the entry barrier: the communicator's
  /// rank 0 compares all fingerprints (throwing mutil::CommError on a
  /// mismatch), then every rank rendezvouses once more so no rank reads
  /// peer slot data the verifier rejected. Pure thread synchronization —
  /// never advances a simulated clock.
  void check_verify();
  /// Record a locally-detected error in the check report before throwing.
  void check_local_error(const char* code, const std::string& message);
  /// barrier_wait with the blocked state published to the watchdog. Only
  /// the wait itself is marked blocked — a rank computing between
  /// barriers reads as making progress, so the deadlock verdict ("every
  /// rank blocked, nothing changed") cannot fire on slow compute.
  void checked_wait(const char* what);
  /// Report `released - entry` simulated seconds of rendezvous blocking
  /// to the rank's stats registry, if any. Accounting-only: reads
  /// timestamps already computed by the collective, touches no clock.
  static void note_wait(double entry, double released);

  std::shared_ptr<detail::SharedState> shared_;
  int rank_;
  simtime::Clock own_clock_;
  simtime::Clock* clock_ = &own_clock_;
  CommStats stats_;
  std::uint64_t check_seq_ = 0;  ///< per-rank collective sequence number
  std::uint64_t nb_count_ = 0;   ///< non-blocking initiations (op key)
};

}  // namespace simmpi
