// Job runner: spawns one thread per rank and wires each rank to the full
// substrate — communicator, simulated clock, memory tracker (per-rank,
// aggregated into per-node budgets), and the shared parallel file system.
//
// A job aborts as a unit: the first rank to throw (typically
// mutil::OutOfMemoryError) wakes everyone else out of collectives and its
// exception is rethrown from run(). Benchmarks use this to mark
// configurations as "cannot run in memory", exactly like the paper's
// missing data points.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "memtrack/tracker.hpp"
#include "pfs/filesystem.hpp"
#include "simmpi/comm.hpp"
#include "simtime/clock.hpp"
#include "simtime/machine.hpp"

namespace check {
class JobChecker;
}

namespace stats {
class Collector;
}

namespace simmpi {

/// Everything one rank sees. Passed by reference to the rank function;
/// valid only for the duration of the job.
struct Context {
  Communicator& comm;
  memtrack::Tracker& tracker;
  pfs::FileSystem& fs;
  const simtime::MachineProfile& machine;

  int rank() const noexcept { return comm.rank(); }
  int size() const noexcept { return comm.size(); }
  simtime::Clock& clock() noexcept { return comm.clock(); }
  /// Simulated node hosting this rank (block placement).
  int node() const noexcept {
    return comm.rank() / machine.ranks_per_node;
  }
};

/// Aggregated results of a completed job.
struct JobStats {
  double sim_time = 0.0;          ///< max final clock across ranks (s)
  std::uint64_t node_peak = 0;    ///< max per-node peak memory (bytes)
  std::vector<std::uint64_t> node_peaks;  ///< per-node peak memory
  std::uint64_t shuffle_bytes = 0;  ///< total bytes through collectives
  pfs::IoStats io;                ///< file-system traffic of the job
  int nodes = 0;
  int ranks = 0;
};

using RankFn = std::function<void(Context&)>;

/// Run `fn` on `nranks` rank threads against `machine`'s cost model.
///
/// `fs` is the shared parallel file system; callers create it up front so
/// input files survive across jobs. Node memory budgets are created per
/// simulated node (machine.node_memory; 0 = unlimited). Rethrows the
/// first rank exception after all threads have been joined.
///
/// When `collector` is non-null it is reset to `nranks` registries and
/// each rank thread is bound to its registry (stats::current()) for the
/// duration of `fn`, so framework phase scopes, counters, and the
/// shuffle traffic matrix are recorded per rank. Collection is
/// accounting-only: simulated times and peak-memory results are
/// identical with and without a collector.
///
/// When `checker` is non-null (or the process-global checker is enabled
/// via MIMIR_CHECK / check::enable_global()), the mimir-check analyzers
/// run for this job: collectives are fingerprint-verified, a watchdog
/// aborts genuine deadlocks, and each rank's container lifecycle is
/// audited. Checking is likewise accounting-only — simulated results are
/// bit-identical with the checker on or off.
JobStats run(int nranks, const simtime::MachineProfile& machine,
             pfs::FileSystem& fs, const RankFn& fn,
             stats::Collector* collector = nullptr,
             check::JobChecker* checker = nullptr);

/// Convenience for tests: run with an unlimited test profile and a
/// throwaway file system.
JobStats run_test(int nranks, const RankFn& fn,
                  stats::Collector* collector = nullptr,
                  check::JobChecker* checker = nullptr);

}  // namespace simmpi
