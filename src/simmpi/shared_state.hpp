// Internal shared state for a simmpi job: the collective rendezvous slot
// table, the global barrier, per-rank mailboxes, and the abort channel.
// Private to the simmpi library.
//
// Why the slot table is race-free: every collective is bracketed by
// barrier_wait() calls on the shared generation barrier, so every
// pre-entry-barrier slot write synchronizes-with every
// post-entry-barrier slot read, and no rank writes its slot again until
// after the exit barrier. The full happens-before argument — and the
// race detector (mimir-race) that checks user code against the same
// discipline — lives in DESIGN.md, "Memory model & race detection".
// The mimir-check fingerprints (check_fps) follow the slot discipline:
// written by the owner before the entry barrier, read by the
// communicator's rank 0 between the entry barrier and the verification
// fence barrier, never touched again until after the exit barrier.
#pragma once

#include <bit>
#include <condition_variable>
#include <map>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "check/checker.hpp"
#include "mutil/error.hpp"

namespace simmpi::detail {

/// Per-rank publication slot used by collectives. Written by its owner
/// before the entry barrier, read by everyone between the entry and exit
/// barriers. Cache-line aligned to avoid false sharing on the hot path.
struct alignas(64) Slot {
  const std::byte* send = nullptr;
  std::byte* recv = nullptr;
  const std::uint64_t* counts = nullptr;
  const std::uint64_t* displs = nullptr;
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;
  double f64 = 0.0;
  double clock = 0.0;
  std::uint64_t bytes = 0;
};

/// Point-to-point mailbox of one rank.
struct Mailbox {
  struct Message {
    int source = 0;
    int tag = 0;
    double arrival = 0.0;  ///< simulated arrival time at the receiver
    std::vector<std::byte> payload;
    /// mimir-race: the sender's vector clock snapshotted at send time;
    /// the receiver joins it on the matched recv (the send -> recv
    /// happens-before edge). Empty when race checking is off.
    std::vector<std::uint64_t> race_clock;
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> messages;
};

/// One in-flight non-blocking collective (ialltoallv / iallreduce_u64).
/// Keyed by the per-rank initiation counter: non-blocking collectives
/// are collective in *initiation order*, so every rank's Nth initiate
/// joins op N. Guarded by SharedState::mutex; completion (the last
/// initiator copies all data while holding the lock) is signaled on
/// SharedState::cv. Count/displacement arrays are copied in at initiate
/// because the caller's vectors may die before the op completes.
struct NbOp {
  enum class Kind { kAlltoallv, kAllreduceU64 };

  /// One rank's published arguments.
  struct Part {
    bool present = false;
    const std::byte* send = nullptr;
    std::byte* recv = nullptr;
    std::uint64_t recv_cap = 0;
    std::vector<std::uint64_t> counts;
    std::vector<std::uint64_t> displs;
    std::uint64_t u64 = 0;
    double clock = 0.0;  ///< initiator's sim time at initiate
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
  };

  Kind kind = Kind::kAlltoallv;
  std::uint32_t red_op = 0;  ///< reduction operator (iallreduce)
  int arrived = 0;           ///< initiations so far
  int waited = 0;            ///< completed waits; erase at nranks
  bool complete = false;
  double t_all = 0.0;        ///< max initiation clock across ranks
  std::uint64_t reduced = 0; ///< iallreduce result
  std::vector<Part> parts;
  /// Filled by the completing initiator: recv_counts[dst][src] bytes.
  /// Receive counts are *discovered* at completion — ialltoallv takes
  /// no recv-count argument, which is what lets the overlapped shuffle
  /// skip the blocking alltoall_u64 count pre-exchange.
  std::vector<std::vector<std::uint64_t>> recv_counts;
  /// Per-op fingerprint storage: the shared check_fps slots may be
  /// overwritten by a later blocking collective before this op's last
  /// initiator verifies, so non-blocking ops keep their own copies.
  std::vector<check::CollectiveFingerprint> fps;
};

struct SharedState {
  SharedState(int num_ranks, double latency, double bandwidth)
      : nranks(num_ranks),
        net_latency(latency),
        net_bandwidth(bandwidth),
        slots(static_cast<std::size_t>(num_ranks)),
        mailboxes(static_cast<std::size_t>(num_ranks)),
        check_fps(static_cast<std::size_t>(num_ranks)),
        check_ranks(static_cast<std::size_t>(num_ranks)) {
    for (auto& box : mailboxes) box = std::make_unique<Mailbox>();
    for (int r = 0; r < num_ranks; ++r) {
      check_ranks[static_cast<std::size_t>(r)] = r;
    }
  }

  const int nranks;
  const double net_latency;
  const double net_bandwidth;

  // Global generation barrier.
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
  bool aborted = false;
  // When the abort cause was a rank death (mutil::RankFailedError),
  // peers unwinding out of collectives/recv rethrow a RankFailedError
  // naming the dead rank instead of a generic CommError, so job-level
  // recovery can classify the failure. Guarded by `mutex` with
  // `aborted`.
  int failed_rank = -1;
  double failed_time = 0.0;

  // First exception wins; the rest are dropped.
  std::mutex error_mutex;
  std::exception_ptr first_error;

  std::vector<Slot> slots;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;

  // In-flight non-blocking collectives, keyed by initiation count.
  // Guarded by `mutex`; waiters sleep on `cv` (abort() already wakes
  // it, so a rank blocked in Request::wait unwinds on job abort like
  // any barrier waiter). An abandoned Request leaves its entry here
  // until every rank has waited or the job's SharedState dies.
  std::map<std::uint64_t, NbOp> nb_ops;

  // mimir-check hooks. `checker` is null when checking is off (the
  // common case); set once by simmpi::run before rank threads start, or
  // inherited from the parent by split() children. `check_fps` follows
  // the slot-table happens-before discipline above; `check_ranks[i]` is
  // the job-global rank of this communicator's rank i, so diagnostics
  // from split sub-communicators name the real ranks.
  check::JobChecker* checker = nullptr;
  std::vector<check::CollectiveFingerprint> check_fps;
  std::vector<int> check_ranks;

  // Rendezvous area for split(): group leaders publish the new group's
  // state here between two barriers.
  std::mutex split_mutex;
  std::map<int, std::shared_ptr<SharedState>> split_groups;

  // Children created by split(): an abort cascades into them so ranks
  // blocked in sub-communicator collectives unwind as well.
  std::mutex children_mutex;
  std::vector<std::weak_ptr<SharedState>> children;

  /// Number of rounds of a log-tree collective.
  int rounds() const noexcept {
    return nranks <= 1 ? 0
                       : std::bit_width(
                             static_cast<unsigned>(nranks - 1));
  }

  /// Latency charge for one collective.
  double collective_latency() const noexcept {
    return net_latency * rounds();
  }

  /// Throw the abort error for a peer rank: a RankFailedError naming
  /// the dead rank when the abort cause was a rank death, else a
  /// generic CommError. Caller must hold `mutex`.
  [[noreturn]] void throw_aborted_locked() const {
    if (failed_rank >= 0) {
      throw mutil::RankFailedError(
          "simmpi: job aborted: rank " + std::to_string(failed_rank) +
              " failed",
          failed_rank, failed_time);
    }
    throw mutil::CommError("simmpi: job aborted");
  }

  /// Enter the global barrier; throws once aborted (RankFailedError
  /// when a peer died, CommError otherwise).
  void barrier_wait() {
    std::unique_lock lock(mutex);
    if (aborted) throw_aborted_locked();
    const std::uint64_t gen = generation;
    if (++arrived == nranks) {
      arrived = 0;
      ++generation;
      cv.notify_all();
    } else {
      cv.wait(lock, [&] { return generation != gen || aborted; });
      if (aborted && generation == gen) {
        throw_aborted_locked();
      }
    }
  }

  /// Record the first error, mark the job aborted, wake every waiter.
  void abort(std::exception_ptr error) {
    bool first = false;
    {
      const std::scoped_lock lock(error_mutex);
      if (!first_error) {
        first_error = error;
        first = true;
      }
    }
    // Classify a rank death so blocked peers rethrow it by name. Only
    // the winning (first) error decides, keeping the verdict stable.
    int dead_rank = -1;
    double dead_time = 0.0;
    if (first) {
      try {
        std::rethrow_exception(error);
      } catch (const mutil::RankFailedError& e) {
        dead_rank = e.rank();
        dead_time = e.sim_time();
      } catch (...) {
      }
    }
    {
      const std::scoped_lock lock(mutex);
      aborted = true;
      if (first && dead_rank >= 0) {
        failed_rank = dead_rank;
        failed_time = dead_time;
      }
    }
    cv.notify_all();
    for (auto& box : mailboxes) {
      const std::scoped_lock lock(box->mutex);
      box->cv.notify_all();
    }
    std::vector<std::shared_ptr<SharedState>> kids;
    {
      const std::scoped_lock lock(children_mutex);
      for (auto& weak : children) {
        if (auto kid = weak.lock()) kids.push_back(std::move(kid));
      }
    }
    for (auto& kid : kids) kid->abort(error);
  }

  bool is_aborted() {
    const std::scoped_lock lock(mutex);
    return aborted;
  }

  /// Throw the (classified) abort error if the job has been aborted.
  void throw_if_aborted() {
    const std::scoped_lock lock(mutex);
    if (aborted) throw_aborted_locked();
  }
};

}  // namespace simmpi::detail
