#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "check/checker.hpp"
#include "check/race.hpp"
#include "shared_state.hpp"
#include "stats/registry.hpp"

namespace simmpi {

using detail::SharedState;
using detail::Slot;

bool Communicator::checking() const noexcept {
  return shared_->checker != nullptr;
}

int Communicator::check_global_rank() const noexcept {
  return shared_->check_ranks[static_cast<std::size_t>(rank_)];
}

void Communicator::check_announce(check::CollectiveOp op,
                                  std::uint32_t width, std::uint32_t extra,
                                  std::int32_t root, std::uint64_t bytes,
                                  const std::uint64_t* send_counts,
                                  const std::uint64_t* recv_counts) {
  auto& s = *shared_;
  if (s.checker == nullptr) return;
  ++check_seq_;
  check::CollectiveFingerprint& fp =
      s.check_fps[static_cast<std::size_t>(rank_)];
  fp.op = op;
  fp.seq = check_seq_;
  fp.width = width;
  fp.extra = extra;
  fp.root = root;
  fp.bytes = bytes;
  fp.send_counts = send_counts;
  fp.recv_counts = recv_counts;
  fp.sim_time = clock_->now();
  const stats::Registry* reg = stats::current();
  fp.phase = reg != nullptr ? reg->phase_path() : std::string();
  if (check::RaceDetector* race = s.checker->race()) {
    // Feed the cross-run determinism digest: each rank chains its own
    // fingerprint history (announce runs before the entry barrier, so
    // only the owner rank touches its chain).
    race->record_fingerprint(check_global_rank(), fp, s.nranks);
  }
}

void Communicator::check_verify() {
  auto& s = *shared_;
  if (s.checker == nullptr) return;
  if (rank_ == 0) {
    s.checker->verify_collective(s.check_fps, s.check_ranks);
    if (check::RaceDetector* race = s.checker->race()) {
      // Collective rendezvous joins every participant's vector clock.
      // Safe to apply on one rank's behalf: the peers are (or will be)
      // blocked in the verification fence below, and their
      // pre-collective accesses are ordered by the entry barrier.
      race->collective_sync(s.check_ranks);
    }
  }
  // Verification fence: hold every rank until rank 0 accepted the
  // fingerprints, so nobody dereferences peer slot data from a
  // mismatched collective. Barrier only — simulated clocks untouched.
  checked_wait("check_verify");
}

void Communicator::checked_wait(const char* what) {
  auto& s = *shared_;
  const check::BlockGuard guard(s.checker, check_global_rank(),
                                check::BlockedState::Kind::kCollective,
                                what, -1, check_seq_, clock_->now());
  s.barrier_wait();
}

void Communicator::check_local_error(const char* code,
                                     const std::string& message) {
  auto& s = *shared_;
  if (s.checker == nullptr) return;
  s.checker->local_error(check_global_rank(), code, message, clock_->now());
}

void Communicator::note_wait(double entry, double released) {
  if (stats::Registry* reg = stats::current()) {
    reg->record_wait(released - entry);
  }
}

Communicator::Communicator(std::shared_ptr<detail::SharedState> shared,
                           int rank)
    : shared_(std::move(shared)), rank_(rank) {}

Communicator::Communicator(std::shared_ptr<detail::SharedState> shared,
                           int rank, simtime::Clock* borrowed_clock)
    : shared_(std::move(shared)), rank_(rank), clock_(borrowed_clock) {}

Communicator::~Communicator() = default;

std::unique_ptr<Communicator> Communicator::split(int color, int key) {
  auto& s = *shared_;
  // Learn every rank's (color, key) to compute group membership and the
  // new rank order deterministically on all members.
  const auto colors = allgather_i64(color);
  const auto keys = allgather_i64(key);
  std::vector<std::pair<std::int64_t, int>> members;  // (key, old rank)
  for (int r = 0; r < s.nranks; ++r) {
    if (colors[static_cast<std::size_t>(r)] == color) {
      members.emplace_back(keys[static_cast<std::size_t>(r)], r);
    }
  }
  std::sort(members.begin(), members.end());
  int new_rank = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].second == rank_) {
      new_rank = static_cast<int>(i);
      break;
    }
  }
  const bool leader = members.front().second == rank_;

  check_announce(check::CollectiveOp::kSplit, 0, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("split");
  check_verify();
  if (leader) {
    auto group = std::make_shared<detail::SharedState>(
        static_cast<int>(members.size()), s.net_latency, s.net_bandwidth);
    // The child inherits the job's checker; map its ranks back to
    // job-global ranks so diagnostics name the real culprits.
    group->checker = s.checker;
    for (std::size_t i = 0; i < members.size(); ++i) {
      group->check_ranks[i] =
          s.check_ranks[static_cast<std::size_t>(members[i].second)];
    }
    {
      const std::scoped_lock lock(s.children_mutex);
      s.children.push_back(group);
    }
    const std::scoped_lock lock(s.split_mutex);
    s.split_groups[color] = std::move(group);
  }
  checked_wait("split");
  std::shared_ptr<detail::SharedState> group;
  {
    const std::scoped_lock lock(s.split_mutex);
    group = s.split_groups.at(color);
  }
  checked_wait("split");
  if (leader) {
    const std::scoped_lock lock(s.split_mutex);
    s.split_groups.erase(color);
  }
  checked_wait("split");
  return std::unique_ptr<Communicator>(
      new Communicator(std::move(group), new_rank, clock_));
}

int Communicator::size() const noexcept { return shared_->nranks; }

namespace {

/// Scan all published clocks; every rank computes the same maximum.
double max_clock(const SharedState& s) {
  double t = 0.0;
  for (const auto& slot : s.slots) t = std::max(t, slot.clock);
  return t;
}

void check_vector_sizes(const SharedState& s, std::size_t counts,
                        std::size_t displs, const char* what) {
  const auto p = static_cast<std::size_t>(s.nranks);
  if (counts != p || displs != p) {
    throw mutil::CommError(std::string("simmpi: ") + what +
                           ": counts/displs must have one entry per rank");
  }
}

}  // namespace

void Communicator::barrier() {
  auto& s = *shared_;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kBarrier, 0, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("barrier");
  check_verify();
  const double t = max_clock(s);
  checked_wait("barrier");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
}

double Communicator::clock_sync() {
  barrier();
  return clock_->now();
}

void Communicator::alltoallv(std::span<const std::byte> send,
                             std::span<const std::uint64_t> send_counts,
                             std::span<const std::uint64_t> send_displs,
                             std::span<std::byte> recv,
                             std::span<const std::uint64_t> recv_counts,
                             std::span<const std::uint64_t> recv_displs) {
  auto& s = *shared_;
  check_vector_sizes(s, send_counts.size(), send_displs.size(), "alltoallv");
  check_vector_sizes(s, recv_counts.size(), recv_displs.size(), "alltoallv");
  for (int i = 0; i < s.nranks; ++i) {
    if (send_displs[i] + send_counts[i] > send.size()) {
      check_local_error("alltoallv-local-bounds",
                        "alltoallv send region for peer " +
                            std::to_string(i) + " ([" +
                            std::to_string(send_displs[i]) + ", " +
                            std::to_string(send_displs[i] + send_counts[i]) +
                            ")) exceeds the send buffer (" +
                            std::to_string(send.size()) + " bytes)");
      throw mutil::CommError("simmpi: alltoallv send region out of bounds");
    }
    if (recv_displs[i] + recv_counts[i] > recv.size()) {
      check_local_error("alltoallv-local-bounds",
                        "alltoallv recv region for peer " +
                            std::to_string(i) + " ([" +
                            std::to_string(recv_displs[i]) + ", " +
                            std::to_string(recv_displs[i] + recv_counts[i]) +
                            ")) exceeds the recv buffer (" +
                            std::to_string(recv.size()) + " bytes)");
      throw mutil::CommError("simmpi: alltoallv recv region out of bounds");
    }
  }

  Slot& mine = s.slots[rank_];
  mine.send = send.data();
  mine.counts = send_counts.data();
  mine.displs = send_displs.data();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kAlltoallv, 1, 0, -1, 0,
                 send_counts.data(), recv_counts.data());
  checked_wait("alltoallv");
  check_verify();

  // Pull model: copy my block out of every sender's buffer.
  std::uint64_t received = 0;
  for (int src = 0; src < s.nranks; ++src) {
    const Slot& theirs = s.slots[src];
    const std::uint64_t len = theirs.counts[rank_];
    if (len != recv_counts[src]) {
      throw mutil::CommError(
          "simmpi: alltoallv recv count mismatch (sender advertised " +
          std::to_string(len) + ", receiver expected " +
          std::to_string(recv_counts[src]) + ")");
    }
    if (len != 0) {
      std::memcpy(recv.data() + recv_displs[src],
                  theirs.send + theirs.displs[rank_], len);
    }
    received += len;
  }
  const std::uint64_t sent =
      std::accumulate(send_counts.begin(), send_counts.end(),
                      std::uint64_t{0});
  const double t = max_clock(s);
  checked_wait("alltoallv");

  clock_->set(t + s.collective_latency() +
             static_cast<double>(std::max(sent, received)) /
                 s.net_bandwidth);
  note_wait(entry, t);
  stats_.bytes_sent += sent;
  stats_.bytes_received += received;
  ++stats_.collectives;
}

std::vector<std::uint64_t> Communicator::alltoall_u64(
    std::span<const std::uint64_t> values) {
  auto& s = *shared_;
  if (values.size() != static_cast<std::size_t>(s.nranks)) {
    throw mutil::CommError("simmpi: alltoall_u64 needs one value per rank");
  }
  Slot& mine = s.slots[rank_];
  mine.counts = values.data();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kAlltoallU64, 8, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("alltoall_u64");
  check_verify();

  std::vector<std::uint64_t> result(static_cast<std::size_t>(s.nranks));
  for (int src = 0; src < s.nranks; ++src) {
    result[static_cast<std::size_t>(src)] = s.slots[src].counts[rank_];
  }
  const double t = max_clock(s);
  checked_wait("alltoall_u64");

  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

namespace {

template <typename T>
T reduce_op(T a, T b, Op op) {
  switch (op) {
    case Op::kSum: return static_cast<T>(a + b);
    case Op::kMax: return std::max(a, b);
    case Op::kMin: return std::min(a, b);
    case Op::kLor: return static_cast<T>((a != T{}) || (b != T{}));
    case Op::kLand: return static_cast<T>((a != T{}) && (b != T{}));
  }
  return a;
}

}  // namespace

std::int64_t Communicator::allreduce_i64(std::int64_t value, Op op) {
  auto& s = *shared_;
  s.slots[rank_].i64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllreduceI64, 8,
                 static_cast<std::uint32_t>(op), -1, 0, nullptr, nullptr);
  checked_wait("allreduce_i64");
  check_verify();
  std::int64_t acc = s.slots[0].i64;
  for (int i = 1; i < s.nranks; ++i) acc = reduce_op(acc, s.slots[i].i64, op);
  const double t = max_clock(s);
  checked_wait("allreduce_i64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return acc;
}

std::uint64_t Communicator::allreduce_u64(std::uint64_t value, Op op) {
  auto& s = *shared_;
  s.slots[rank_].u64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllreduceU64, 8,
                 static_cast<std::uint32_t>(op), -1, 0, nullptr, nullptr);
  checked_wait("allreduce_u64");
  check_verify();
  std::uint64_t acc = s.slots[0].u64;
  for (int i = 1; i < s.nranks; ++i) acc = reduce_op(acc, s.slots[i].u64, op);
  const double t = max_clock(s);
  checked_wait("allreduce_u64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return acc;
}

double Communicator::allreduce_f64(double value, Op op) {
  auto& s = *shared_;
  s.slots[rank_].f64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllreduceF64, 8,
                 static_cast<std::uint32_t>(op), -1, 0, nullptr, nullptr);
  checked_wait("allreduce_f64");
  check_verify();
  double acc = s.slots[0].f64;
  for (int i = 1; i < s.nranks; ++i) acc = reduce_op(acc, s.slots[i].f64, op);
  const double t = max_clock(s);
  checked_wait("allreduce_f64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return acc;
}

bool Communicator::allreduce_lor(bool value) {
  return allreduce_u64(value ? 1 : 0, Op::kLor) != 0;
}

bool Communicator::allreduce_land(bool value) {
  return allreduce_u64(value ? 1 : 0, Op::kLand) != 0;
}

std::vector<std::int64_t> Communicator::allgather_i64(std::int64_t value) {
  auto& s = *shared_;
  s.slots[rank_].i64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllgatherI64, 8, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("allgather_i64");
  check_verify();
  std::vector<std::int64_t> result(static_cast<std::size_t>(s.nranks));
  for (int i = 0; i < s.nranks; ++i) {
    result[static_cast<std::size_t>(i)] = s.slots[i].i64;
  }
  const double t = max_clock(s);
  checked_wait("allgather_i64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

std::vector<std::uint64_t> Communicator::allgather_u64(std::uint64_t value) {
  auto& s = *shared_;
  s.slots[rank_].u64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllgatherU64, 8, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("allgather_u64");
  check_verify();
  std::vector<std::uint64_t> result(static_cast<std::size_t>(s.nranks));
  for (int i = 0; i < s.nranks; ++i) {
    result[static_cast<std::size_t>(i)] = s.slots[i].u64;
  }
  const double t = max_clock(s);
  checked_wait("allgather_u64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

void Communicator::bcast(std::span<std::byte> data, int root) {
  auto& s = *shared_;
  if (root < 0 || root >= s.nranks) {
    throw mutil::CommError("simmpi: bcast: bad root rank");
  }
  Slot& mine = s.slots[rank_];
  mine.send = data.data();
  mine.bytes = data.size();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kBcast, 1, 0, root, data.size(),
                 nullptr, nullptr);
  checked_wait("bcast");
  check_verify();
  const Slot& src = s.slots[root];
  if (src.bytes != data.size()) {
    throw mutil::CommError("simmpi: bcast: buffer size mismatch");
  }
  if (rank_ != root && !data.empty()) {
    std::memcpy(data.data(), src.send, data.size());
  }
  const double t = max_clock(s);
  checked_wait("bcast");
  clock_->set(t + s.collective_latency() +
             static_cast<double>(data.size()) / s.net_bandwidth);
  note_wait(entry, t);
  ++stats_.collectives;
}

std::uint64_t Communicator::bcast_u64(std::uint64_t value, int root) {
  auto& s = *shared_;
  if (root < 0 || root >= s.nranks) {
    throw mutil::CommError("simmpi: bcast_u64: bad root rank");
  }
  s.slots[rank_].u64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kBcastU64, 8, 0, root, 0, nullptr,
                 nullptr);
  checked_wait("bcast_u64");
  check_verify();
  const std::uint64_t result = s.slots[root].u64;
  const double t = max_clock(s);
  checked_wait("bcast_u64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

GatherResult Communicator::gatherv(int root,
                                   std::span<const std::byte> payload) {
  auto& s = *shared_;
  if (root < 0 || root >= s.nranks) {
    throw mutil::CommError("simmpi: gatherv: bad root rank");
  }
  Slot& mine = s.slots[rank_];
  mine.send = payload.data();
  mine.bytes = payload.size();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kGatherv, 1, 0, root, 0, nullptr,
                 nullptr);
  checked_wait("gatherv");
  check_verify();

  GatherResult result;
  std::uint64_t total = 0;
  if (rank_ == root) {
    result.counts.resize(static_cast<std::size_t>(s.nranks));
    for (int i = 0; i < s.nranks; ++i) {
      result.counts[static_cast<std::size_t>(i)] = s.slots[i].bytes;
      total += s.slots[i].bytes;
    }
    result.data.resize(total);
    std::uint64_t offset = 0;
    for (int i = 0; i < s.nranks; ++i) {
      const Slot& theirs = s.slots[i];
      if (theirs.bytes != 0) {
        std::memcpy(result.data.data() + offset, theirs.send, theirs.bytes);
      }
      offset += theirs.bytes;
    }
  }
  const double t = max_clock(s);
  checked_wait("gatherv");

  const std::uint64_t moved = rank_ == root ? total : payload.size();
  clock_->set(t + s.collective_latency() +
             static_cast<double>(moved) / s.net_bandwidth);
  note_wait(entry, t);
  if (rank_ == root) {
    stats_.bytes_received += total;
  } else {
    stats_.bytes_sent += payload.size();
  }
  ++stats_.collectives;
  return result;
}

void Communicator::send(int dest, int tag,
                        std::span<const std::byte> payload) {
  auto& s = *shared_;
  if (dest < 0 || dest >= s.nranks) {
    throw mutil::CommError("simmpi: send: bad destination rank");
  }
  const double transfer =
      s.net_latency + static_cast<double>(payload.size()) / s.net_bandwidth;
  detail::Mailbox::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.arrival = clock_->now() + transfer;
  msg.payload.assign(payload.begin(), payload.end());
  if (s.checker != nullptr) {
    if (check::RaceDetector* race = s.checker->race()) {
      // The send -> recv happens-before edge: snapshot the sender's
      // vector clock into the message for the receiver to join.
      msg.race_clock = race->send_edge(check_global_rank());
    }
  }

  auto& box = *s.mailboxes[static_cast<std::size_t>(dest)];
  {
    const std::scoped_lock lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
  clock_->advance(transfer);
  stats_.bytes_sent += payload.size();
}

std::vector<std::byte> Communicator::recv(int source, int tag) {
  auto& s = *shared_;
  if (source < 0 || source >= s.nranks) {
    throw mutil::CommError("simmpi: recv: bad source rank");
  }
  const check::BlockGuard guard(
      s.checker, check_global_rank(), check::BlockedState::Kind::kRecv,
      "recv", s.check_ranks[static_cast<std::size_t>(source)], 0,
      clock_->now());
  auto& box = *s.mailboxes[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    s.throw_if_aborted();
    const auto it =
        std::find_if(box.messages.begin(), box.messages.end(),
                     [&](const detail::Mailbox::Message& m) {
                       return m.source == source && m.tag == tag;
                     });
    if (it != box.messages.end()) {
      detail::Mailbox::Message msg = std::move(*it);
      box.messages.erase(it);
      lock.unlock();
      if (s.checker != nullptr && !msg.race_clock.empty()) {
        if (check::RaceDetector* race = s.checker->race()) {
          race->recv_edge(check_global_rank(), msg.race_clock);
        }
      }
      const double before = clock_->now();
      clock_->sync_to(msg.arrival);
      // A message that had not yet arrived made the receiver wait.
      if (msg.arrival > before) note_wait(before, msg.arrival);
      stats_.bytes_received += msg.payload.size();
      return std::move(msg.payload);
    }
    box.cv.wait(lock);
  }
}

}  // namespace simmpi
