#include "simmpi/comm.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "check/checker.hpp"
#include "check/race.hpp"
#include "mutil/hash.hpp"
#include "shared_state.hpp"
#include "stats/registry.hpp"

namespace simmpi {

using detail::SharedState;
using detail::Slot;

bool Communicator::checking() const noexcept {
  return shared_->checker != nullptr;
}

int Communicator::check_global_rank() const noexcept {
  return shared_->check_ranks[static_cast<std::size_t>(rank_)];
}

void Communicator::check_announce(check::CollectiveOp op,
                                  std::uint32_t width, std::uint32_t extra,
                                  std::int32_t root, std::uint64_t bytes,
                                  const std::uint64_t* send_counts,
                                  const std::uint64_t* recv_counts) {
  auto& s = *shared_;
  if (s.checker == nullptr) return;
  ++check_seq_;
  check::CollectiveFingerprint& fp =
      s.check_fps[static_cast<std::size_t>(rank_)];
  fp.op = op;
  fp.seq = check_seq_;
  fp.width = width;
  fp.extra = extra;
  fp.root = root;
  fp.bytes = bytes;
  fp.send_counts = send_counts;
  fp.recv_counts = recv_counts;
  fp.sim_time = clock_->now();
  const stats::Registry* reg = stats::current();
  fp.phase = reg != nullptr ? reg->phase_path() : std::string();
  if (check::RaceDetector* race = s.checker->race()) {
    // Feed the cross-run determinism digest: each rank chains its own
    // fingerprint history (announce runs before the entry barrier, so
    // only the owner rank touches its chain).
    race->record_fingerprint(check_global_rank(), fp, s.nranks);
  }
}

void Communicator::check_verify() {
  auto& s = *shared_;
  if (s.checker == nullptr) return;
  if (rank_ == 0) {
    s.checker->verify_collective(s.check_fps, s.check_ranks);
    if (check::RaceDetector* race = s.checker->race()) {
      // Collective rendezvous joins every participant's vector clock.
      // Safe to apply on one rank's behalf: the peers are (or will be)
      // blocked in the verification fence below, and their
      // pre-collective accesses are ordered by the entry barrier.
      race->collective_sync(s.check_ranks);
    }
  }
  // Verification fence: hold every rank until rank 0 accepted the
  // fingerprints, so nobody dereferences peer slot data from a
  // mismatched collective. Barrier only — simulated clocks untouched.
  checked_wait("check_verify");
}

void Communicator::checked_wait(const char* what) {
  auto& s = *shared_;
  const check::BlockGuard guard(s.checker, check_global_rank(),
                                check::BlockedState::Kind::kCollective,
                                what, -1, check_seq_, clock_->now());
  s.barrier_wait();
}

void Communicator::check_local_error(const char* code,
                                     const std::string& message) {
  auto& s = *shared_;
  if (s.checker == nullptr) return;
  s.checker->local_error(check_global_rank(), code, message, clock_->now());
}

void Communicator::note_wait(double entry, double released) {
  if (stats::Registry* reg = stats::current()) {
    reg->record_wait(released - entry);
  }
}

Communicator::Communicator(std::shared_ptr<detail::SharedState> shared,
                           int rank)
    : shared_(std::move(shared)), rank_(rank) {}

Communicator::Communicator(std::shared_ptr<detail::SharedState> shared,
                           int rank, simtime::Clock* borrowed_clock)
    : shared_(std::move(shared)), rank_(rank), clock_(borrowed_clock) {}

Communicator::~Communicator() = default;

std::unique_ptr<Communicator> Communicator::split(int color, int key) {
  auto& s = *shared_;
  // Learn every rank's (color, key) to compute group membership and the
  // new rank order deterministically on all members.
  const auto colors = allgather_i64(color);
  const auto keys = allgather_i64(key);
  std::vector<std::pair<std::int64_t, int>> members;  // (key, old rank)
  for (int r = 0; r < s.nranks; ++r) {
    if (colors[static_cast<std::size_t>(r)] == color) {
      members.emplace_back(keys[static_cast<std::size_t>(r)], r);
    }
  }
  std::sort(members.begin(), members.end());
  int new_rank = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].second == rank_) {
      new_rank = static_cast<int>(i);
      break;
    }
  }
  const bool leader = members.front().second == rank_;

  check_announce(check::CollectiveOp::kSplit, 0, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("split");
  check_verify();
  if (leader) {
    auto group = std::make_shared<detail::SharedState>(
        static_cast<int>(members.size()), s.net_latency, s.net_bandwidth);
    // The child inherits the job's checker; map its ranks back to
    // job-global ranks so diagnostics name the real culprits.
    group->checker = s.checker;
    for (std::size_t i = 0; i < members.size(); ++i) {
      group->check_ranks[i] =
          s.check_ranks[static_cast<std::size_t>(members[i].second)];
    }
    {
      const std::scoped_lock lock(s.children_mutex);
      s.children.push_back(group);
    }
    const std::scoped_lock lock(s.split_mutex);
    s.split_groups[color] = std::move(group);
  }
  checked_wait("split");
  std::shared_ptr<detail::SharedState> group;
  {
    const std::scoped_lock lock(s.split_mutex);
    group = s.split_groups.at(color);
  }
  checked_wait("split");
  if (leader) {
    const std::scoped_lock lock(s.split_mutex);
    s.split_groups.erase(color);
  }
  checked_wait("split");
  return std::unique_ptr<Communicator>(
      new Communicator(std::move(group), new_rank, clock_));
}

int Communicator::size() const noexcept { return shared_->nranks; }

namespace {

/// Scan all published clocks; every rank computes the same maximum.
double max_clock(const SharedState& s) {
  double t = 0.0;
  for (const auto& slot : s.slots) t = std::max(t, slot.clock);
  return t;
}

void check_vector_sizes(const SharedState& s, std::size_t counts,
                        std::size_t displs, const char* what) {
  const auto p = static_cast<std::size_t>(s.nranks);
  if (counts != p || displs != p) {
    throw mutil::CommError(std::string("simmpi: ") + what +
                           ": counts/displs must have one entry per rank");
  }
}

}  // namespace

void Communicator::barrier() {
  auto& s = *shared_;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kBarrier, 0, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("barrier");
  check_verify();
  const double t = max_clock(s);
  checked_wait("barrier");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
}

double Communicator::clock_sync() {
  barrier();
  return clock_->now();
}

void Communicator::alltoallv(std::span<const std::byte> send,
                             std::span<const std::uint64_t> send_counts,
                             std::span<const std::uint64_t> send_displs,
                             std::span<std::byte> recv,
                             std::span<const std::uint64_t> recv_counts,
                             std::span<const std::uint64_t> recv_displs) {
  auto& s = *shared_;
  check_vector_sizes(s, send_counts.size(), send_displs.size(), "alltoallv");
  check_vector_sizes(s, recv_counts.size(), recv_displs.size(), "alltoallv");
  for (int i = 0; i < s.nranks; ++i) {
    if (send_displs[i] + send_counts[i] > send.size()) {
      check_local_error("alltoallv-local-bounds",
                        "alltoallv send region for peer " +
                            std::to_string(i) + " ([" +
                            std::to_string(send_displs[i]) + ", " +
                            std::to_string(send_displs[i] + send_counts[i]) +
                            ")) exceeds the send buffer (" +
                            std::to_string(send.size()) + " bytes)");
      throw mutil::CommError("simmpi: alltoallv send region out of bounds");
    }
    if (recv_displs[i] + recv_counts[i] > recv.size()) {
      check_local_error("alltoallv-local-bounds",
                        "alltoallv recv region for peer " +
                            std::to_string(i) + " ([" +
                            std::to_string(recv_displs[i]) + ", " +
                            std::to_string(recv_displs[i] + recv_counts[i]) +
                            ")) exceeds the recv buffer (" +
                            std::to_string(recv.size()) + " bytes)");
      throw mutil::CommError("simmpi: alltoallv recv region out of bounds");
    }
  }

  Slot& mine = s.slots[rank_];
  mine.send = send.data();
  mine.counts = send_counts.data();
  mine.displs = send_displs.data();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kAlltoallv, 1, 0, -1, 0,
                 send_counts.data(), recv_counts.data());
  checked_wait("alltoallv");
  check_verify();

  // Pull model: copy my block out of every sender's buffer.
  std::uint64_t received = 0;
  for (int src = 0; src < s.nranks; ++src) {
    const Slot& theirs = s.slots[src];
    const std::uint64_t len = theirs.counts[rank_];
    if (len != recv_counts[src]) {
      throw mutil::CommError(
          "simmpi: alltoallv recv count mismatch (sender advertised " +
          std::to_string(len) + ", receiver expected " +
          std::to_string(recv_counts[src]) + ")");
    }
    if (len != 0) {
      std::memcpy(recv.data() + recv_displs[src],
                  theirs.send + theirs.displs[rank_], len);
    }
    received += len;
  }
  const std::uint64_t sent =
      std::accumulate(send_counts.begin(), send_counts.end(),
                      std::uint64_t{0});
  const double t = max_clock(s);
  checked_wait("alltoallv");

  clock_->set(t + s.collective_latency() +
             static_cast<double>(std::max(sent, received)) /
                 s.net_bandwidth);
  note_wait(entry, t);
  stats_.bytes_sent += sent;
  stats_.bytes_received += received;
  ++stats_.collectives;
}

std::vector<std::uint64_t> Communicator::alltoall_u64(
    std::span<const std::uint64_t> values) {
  auto& s = *shared_;
  if (values.size() != static_cast<std::size_t>(s.nranks)) {
    throw mutil::CommError("simmpi: alltoall_u64 needs one value per rank");
  }
  Slot& mine = s.slots[rank_];
  mine.counts = values.data();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kAlltoallU64, 8, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("alltoall_u64");
  check_verify();

  std::vector<std::uint64_t> result(static_cast<std::size_t>(s.nranks));
  for (int src = 0; src < s.nranks; ++src) {
    result[static_cast<std::size_t>(src)] = s.slots[src].counts[rank_];
  }
  const double t = max_clock(s);
  checked_wait("alltoall_u64");

  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

namespace {

template <typename T>
T reduce_op(T a, T b, Op op) {
  switch (op) {
    case Op::kSum: return static_cast<T>(a + b);
    case Op::kMax: return std::max(a, b);
    case Op::kMin: return std::min(a, b);
    case Op::kLor: return static_cast<T>((a != T{}) || (b != T{}));
    case Op::kLand: return static_cast<T>((a != T{}) && (b != T{}));
  }
  return a;
}

}  // namespace

std::int64_t Communicator::allreduce_i64(std::int64_t value, Op op) {
  auto& s = *shared_;
  s.slots[rank_].i64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllreduceI64, 8,
                 static_cast<std::uint32_t>(op), -1, 0, nullptr, nullptr);
  checked_wait("allreduce_i64");
  check_verify();
  std::int64_t acc = s.slots[0].i64;
  for (int i = 1; i < s.nranks; ++i) acc = reduce_op(acc, s.slots[i].i64, op);
  const double t = max_clock(s);
  checked_wait("allreduce_i64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return acc;
}

std::uint64_t Communicator::allreduce_u64(std::uint64_t value, Op op) {
  auto& s = *shared_;
  s.slots[rank_].u64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllreduceU64, 8,
                 static_cast<std::uint32_t>(op), -1, 0, nullptr, nullptr);
  checked_wait("allreduce_u64");
  check_verify();
  std::uint64_t acc = s.slots[0].u64;
  for (int i = 1; i < s.nranks; ++i) acc = reduce_op(acc, s.slots[i].u64, op);
  const double t = max_clock(s);
  checked_wait("allreduce_u64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return acc;
}

double Communicator::allreduce_f64(double value, Op op) {
  auto& s = *shared_;
  s.slots[rank_].f64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllreduceF64, 8,
                 static_cast<std::uint32_t>(op), -1, 0, nullptr, nullptr);
  checked_wait("allreduce_f64");
  check_verify();
  double acc = s.slots[0].f64;
  for (int i = 1; i < s.nranks; ++i) acc = reduce_op(acc, s.slots[i].f64, op);
  const double t = max_clock(s);
  checked_wait("allreduce_f64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return acc;
}

bool Communicator::allreduce_lor(bool value) {
  return allreduce_u64(value ? 1 : 0, Op::kLor) != 0;
}

bool Communicator::allreduce_land(bool value) {
  return allreduce_u64(value ? 1 : 0, Op::kLand) != 0;
}

std::vector<std::int64_t> Communicator::allgather_i64(std::int64_t value) {
  auto& s = *shared_;
  s.slots[rank_].i64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllgatherI64, 8, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("allgather_i64");
  check_verify();
  std::vector<std::int64_t> result(static_cast<std::size_t>(s.nranks));
  for (int i = 0; i < s.nranks; ++i) {
    result[static_cast<std::size_t>(i)] = s.slots[i].i64;
  }
  const double t = max_clock(s);
  checked_wait("allgather_i64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

std::vector<std::uint64_t> Communicator::allgather_u64(std::uint64_t value) {
  auto& s = *shared_;
  s.slots[rank_].u64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kAllgatherU64, 8, 0, -1, 0, nullptr,
                 nullptr);
  checked_wait("allgather_u64");
  check_verify();
  std::vector<std::uint64_t> result(static_cast<std::size_t>(s.nranks));
  for (int i = 0; i < s.nranks; ++i) {
    result[static_cast<std::size_t>(i)] = s.slots[i].u64;
  }
  const double t = max_clock(s);
  checked_wait("allgather_u64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

void Communicator::bcast(std::span<std::byte> data, int root) {
  auto& s = *shared_;
  if (root < 0 || root >= s.nranks) {
    throw mutil::CommError("simmpi: bcast: bad root rank");
  }
  Slot& mine = s.slots[rank_];
  mine.send = data.data();
  mine.bytes = data.size();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kBcast, 1, 0, root, data.size(),
                 nullptr, nullptr);
  checked_wait("bcast");
  check_verify();
  const Slot& src = s.slots[root];
  if (src.bytes != data.size()) {
    throw mutil::CommError("simmpi: bcast: buffer size mismatch");
  }
  if (rank_ != root && !data.empty()) {
    std::memcpy(data.data(), src.send, data.size());
  }
  const double t = max_clock(s);
  checked_wait("bcast");
  clock_->set(t + s.collective_latency() +
             static_cast<double>(data.size()) / s.net_bandwidth);
  note_wait(entry, t);
  ++stats_.collectives;
}

std::uint64_t Communicator::bcast_u64(std::uint64_t value, int root) {
  auto& s = *shared_;
  if (root < 0 || root >= s.nranks) {
    throw mutil::CommError("simmpi: bcast_u64: bad root rank");
  }
  s.slots[rank_].u64 = value;
  const double entry = clock_->now();
  s.slots[rank_].clock = entry;
  check_announce(check::CollectiveOp::kBcastU64, 8, 0, root, 0, nullptr,
                 nullptr);
  checked_wait("bcast_u64");
  check_verify();
  const std::uint64_t result = s.slots[root].u64;
  const double t = max_clock(s);
  checked_wait("bcast_u64");
  clock_->set(t + s.collective_latency());
  note_wait(entry, t);
  ++stats_.collectives;
  return result;
}

GatherResult Communicator::gatherv(int root,
                                   std::span<const std::byte> payload) {
  auto& s = *shared_;
  if (root < 0 || root >= s.nranks) {
    throw mutil::CommError("simmpi: gatherv: bad root rank");
  }
  Slot& mine = s.slots[rank_];
  mine.send = payload.data();
  mine.bytes = payload.size();
  const double entry = clock_->now();
  mine.clock = entry;
  check_announce(check::CollectiveOp::kGatherv, 1, 0, root, 0, nullptr,
                 nullptr);
  checked_wait("gatherv");
  check_verify();

  GatherResult result;
  std::uint64_t total = 0;
  if (rank_ == root) {
    result.counts.resize(static_cast<std::size_t>(s.nranks));
    for (int i = 0; i < s.nranks; ++i) {
      result.counts[static_cast<std::size_t>(i)] = s.slots[i].bytes;
      total += s.slots[i].bytes;
    }
    result.data.resize(total);
    std::uint64_t offset = 0;
    for (int i = 0; i < s.nranks; ++i) {
      const Slot& theirs = s.slots[i];
      if (theirs.bytes != 0) {
        std::memcpy(result.data.data() + offset, theirs.send, theirs.bytes);
      }
      offset += theirs.bytes;
    }
  }
  const double t = max_clock(s);
  checked_wait("gatherv");

  const std::uint64_t moved = rank_ == root ? total : payload.size();
  clock_->set(t + s.collective_latency() +
             static_cast<double>(moved) / s.net_bandwidth);
  note_wait(entry, t);
  if (rank_ == root) {
    stats_.bytes_received += total;
  } else {
    stats_.bytes_sent += payload.size();
  }
  ++stats_.collectives;
  return result;
}

GatherResult Communicator::allgatherv(std::span<const std::byte> payload) {
  // Composition keeps the rendezvous protocol (and the fingerprint
  // verification) unchanged: gather everything at rank 0, then
  // broadcast the counts and the concatenated payload. Costs roughly
  // 2x the payload volume of a tree allgatherv — acceptable for the
  // control-plane blobs this call exists for.
  GatherResult result = gatherv(0, payload);
  const std::uint64_t total =
      bcast_u64(static_cast<std::uint64_t>(result.data.size()), 0);
  if (rank_ != 0) {
    result.counts.assign(static_cast<std::size_t>(size()), 0);
    result.data.resize(total);
  }
  bcast(std::as_writable_bytes(std::span<std::uint64_t>(result.counts)), 0);
  bcast(std::span<std::byte>(result.data), 0);
  return result;
}

// --- non-blocking collectives ---------------------------------------------

namespace {

using detail::NbOp;

std::string current_phase() {
  const stats::Registry* reg = stats::current();
  return reg != nullptr ? reg->phase_path() : std::string();
}

/// Handoff key for the initiate -> wait happens-before edge, salted
/// with the shared-state identity so keys from different communicators
/// (and from sched's (node, rank) keyspace) cannot collide.
std::uint64_t nb_race_key(const SharedState& s, std::uint64_t key) {
  return mutil::mix64(
      reinterpret_cast<std::uintptr_t>(&s) ^ mutil::mix64(key));
}

/// Completion, run by the last initiator while holding s.mutex: verify
/// fingerprints, move all data, publish results, wake waiters. May
/// throw (verification mismatch, receive-buffer overflow) — the
/// thrower unwinds, the runtime aborts the job, and blocked peers wake
/// via the abort channel.
void nb_complete_locked(SharedState& s, NbOp& op) {
  if (s.checker != nullptr && !op.fps.empty()) {
    s.checker->verify_collective(op.fps, s.check_ranks);
  }
  const auto n = static_cast<std::size_t>(s.nranks);
  if (op.kind == NbOp::Kind::kAlltoallv) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      NbOp::Part& to = op.parts[dst];
      std::uint64_t offset = 0;
      for (std::size_t src = 0; src < n; ++src) {
        const NbOp::Part& from = op.parts[src];
        const std::uint64_t len = from.counts[dst];
        if (offset + len > to.recv_cap) {
          throw mutil::CommError(
              "simmpi: ialltoallv recv buffer overflow: rank " +
              std::to_string(dst) + " receives more than " +
              std::to_string(to.recv_cap) + " bytes");
        }
        if (len != 0) {
          std::memcpy(to.recv + offset,
                      from.send + from.displs[dst], len);
        }
        op.recv_counts[dst][src] = len;
        offset += len;
      }
      to.received = offset;
    }
  } else {
    const Op red = static_cast<Op>(op.red_op);
    std::uint64_t acc = op.parts[0].u64;
    for (std::size_t i = 1; i < n; ++i) {
      acc = reduce_op(acc, op.parts[i].u64, red);
    }
    op.reduced = acc;
  }
  double t = 0.0;
  for (const NbOp::Part& part : op.parts) t = std::max(t, part.clock);
  op.t_all = t;
  op.complete = true;
  s.cv.notify_all();
}

}  // namespace

Request Communicator::ialltoallv(std::span<const std::byte> send,
                                 std::span<const std::uint64_t> send_counts,
                                 std::span<const std::uint64_t> send_displs,
                                 std::span<std::byte> recv) {
  auto& s = *shared_;
  check_vector_sizes(s, send_counts.size(), send_displs.size(),
                     "ialltoallv");
  for (int i = 0; i < s.nranks; ++i) {
    if (send_displs[i] + send_counts[i] > send.size()) {
      check_local_error(
          "ialltoallv-local-bounds",
          "ialltoallv send region for peer " + std::to_string(i) + " ([" +
              std::to_string(send_displs[i]) + ", " +
              std::to_string(send_displs[i] + send_counts[i]) +
              ")) exceeds the send buffer (" + std::to_string(send.size()) +
              " bytes)");
      throw mutil::CommError("simmpi: ialltoallv send region out of bounds");
    }
  }

  const std::uint64_t key = ++nb_count_;
  check::RaceDetector* race =
      s.checker != nullptr ? s.checker->race() : nullptr;
  if (race != nullptr) {
    // Publish this rank's clock for the waiters to join at completion
    // (initiate -> wait is the new happens-before edge; initiators are
    // NOT ordered against each other), then freeze both buffers so any
    // touch before wait() — including by this rank itself — is caught.
    const int grank = check_global_rank();
    race->handoff_publish(grank, nb_race_key(s, key));
    race->nb_initiate(send.data(), grank, /*op_writes=*/false,
                      "ialltoallv", clock_->now(), current_phase());
    race->nb_initiate(recv.data(), grank, /*op_writes=*/true, "ialltoallv",
                      clock_->now(), current_phase());
  }

  const std::uint64_t sent = std::accumulate(
      send_counts.begin(), send_counts.end(), std::uint64_t{0});
  {
    std::unique_lock lock(s.mutex);
    if (s.aborted) s.throw_aborted_locked();
    NbOp& op = s.nb_ops[key];
    if (op.parts.empty()) {
      op.kind = NbOp::Kind::kAlltoallv;
      op.parts.resize(static_cast<std::size_t>(s.nranks));
      op.recv_counts.assign(
          static_cast<std::size_t>(s.nranks),
          std::vector<std::uint64_t>(static_cast<std::size_t>(s.nranks)));
      if (s.checker != nullptr) {
        op.fps.resize(static_cast<std::size_t>(s.nranks));
      }
    } else if (op.kind != NbOp::Kind::kAlltoallv) {
      throw mutil::CommError(
          "simmpi: non-blocking collective mismatch: this rank initiated "
          "ialltoallv #" +
          std::to_string(key) + " but a peer initiated iallreduce_u64");
    }
    NbOp::Part& part = op.parts[static_cast<std::size_t>(rank_)];
    part.present = true;
    part.send = send.data();
    part.recv = recv.data();
    part.recv_cap = recv.size();
    part.counts.assign(send_counts.begin(), send_counts.end());
    part.displs.assign(send_displs.begin(), send_displs.end());
    part.clock = clock_->now();
    part.sent = sent;
    if (s.checker != nullptr) {
      ++check_seq_;
      check::CollectiveFingerprint& fp =
          op.fps[static_cast<std::size_t>(rank_)];
      fp.op = check::CollectiveOp::kIalltoallv;
      fp.seq = check_seq_;
      fp.width = 1;
      fp.send_counts = part.counts.data();
      fp.sim_time = part.clock;
      fp.phase = current_phase();
      if (race != nullptr) {
        race->record_fingerprint(check_global_rank(), fp, s.nranks);
      }
    }
    if (++op.arrived == s.nranks) nb_complete_locked(s, op);
  }
  ++stats_.collectives;
  return Request(this, key, /*alltoallv=*/true, send.data(), recv.data());
}

Request Communicator::iallreduce_u64(std::uint64_t value, Op op_kind) {
  auto& s = *shared_;
  const std::uint64_t key = ++nb_count_;
  check::RaceDetector* race =
      s.checker != nullptr ? s.checker->race() : nullptr;
  if (race != nullptr) {
    race->handoff_publish(check_global_rank(), nb_race_key(s, key));
  }
  {
    std::unique_lock lock(s.mutex);
    if (s.aborted) s.throw_aborted_locked();
    NbOp& op = s.nb_ops[key];
    if (op.parts.empty()) {
      op.kind = NbOp::Kind::kAllreduceU64;
      op.red_op = static_cast<std::uint32_t>(op_kind);
      op.parts.resize(static_cast<std::size_t>(s.nranks));
      if (s.checker != nullptr) {
        op.fps.resize(static_cast<std::size_t>(s.nranks));
      }
    } else if (op.kind != NbOp::Kind::kAllreduceU64) {
      throw mutil::CommError(
          "simmpi: non-blocking collective mismatch: this rank initiated "
          "iallreduce_u64 #" +
          std::to_string(key) + " but a peer initiated ialltoallv");
    }
    NbOp::Part& part = op.parts[static_cast<std::size_t>(rank_)];
    part.present = true;
    part.u64 = value;
    part.clock = clock_->now();
    if (s.checker != nullptr) {
      ++check_seq_;
      check::CollectiveFingerprint& fp =
          op.fps[static_cast<std::size_t>(rank_)];
      fp.op = check::CollectiveOp::kIallreduceU64;
      fp.seq = check_seq_;
      fp.width = 8;
      fp.extra = static_cast<std::uint32_t>(op_kind);
      fp.sim_time = part.clock;
      fp.phase = current_phase();
      if (race != nullptr) {
        race->record_fingerprint(check_global_rank(), fp, s.nranks);
      }
    }
    if (++op.arrived == s.nranks) nb_complete_locked(s, op);
  }
  ++stats_.collectives;
  return Request(this, key, /*alltoallv=*/false, nullptr, nullptr);
}

bool Communicator::nb_test(std::uint64_t key) {
  auto& s = *shared_;
  const std::scoped_lock lock(s.mutex);
  if (s.aborted) s.throw_aborted_locked();
  const auto it = s.nb_ops.find(key);
  return it == s.nb_ops.end() || it->second.complete;
}

void Communicator::nb_wait(Request& request) {
  auto& s = *shared_;
  bool alltoallv = false;
  double t_init = 0.0;
  double t_all = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  {
    const check::BlockGuard guard(
        s.checker, check_global_rank(),
        check::BlockedState::Kind::kCollective,
        request.alltoallv_ ? "ialltoallv.wait" : "iallreduce_u64.wait", -1,
        request.key_, clock_->now());
    std::unique_lock lock(s.mutex);
    const auto it = s.nb_ops.find(request.key_);
    if (it == s.nb_ops.end()) {
      if (s.aborted) s.throw_aborted_locked();
      throw mutil::CommError(
          "simmpi: wait on an unknown non-blocking request");
    }
    NbOp& op = it->second;
    s.cv.wait(lock, [&] { return op.complete || s.aborted; });
    if (!op.complete) s.throw_aborted_locked();
    const NbOp::Part& part = op.parts[static_cast<std::size_t>(rank_)];
    alltoallv = op.kind == NbOp::Kind::kAlltoallv;
    t_init = part.clock;
    t_all = op.t_all;
    if (alltoallv) {
      request.recv_counts_ = op.recv_counts[static_cast<std::size_t>(rank_)];
      request.sent_ = part.sent;
      request.received_ = part.received;
      sent = part.sent;
      received = part.received;
    } else {
      request.value_ = op.reduced;
    }
    if (++op.waited == s.nranks) s.nb_ops.erase(it);
  }

  // Cost model: the op completes collective_latency + transfer after
  // the *latest* initiation. Seconds this rank slept until then are
  // blocked wait; seconds the op was in flight while the rank computed
  // are overlap (hidden communication). An initiate-then-wait with no
  // compute in between lands exactly on the blocking collective's time.
  double cost = s.collective_latency();
  if (alltoallv) {
    cost += static_cast<double>(std::max(sent, received)) / s.net_bandwidth;
  }
  const double done_at = t_all + cost;
  const double now = clock_->now();
  note_wait(now, done_at);
  if (stats::Registry* reg = stats::current()) {
    reg->record_overlap(std::max(0.0, std::min(now, done_at) - t_init));
  }
  clock_->set(std::max(now, done_at));

  if (s.checker != nullptr) {
    if (check::RaceDetector* race = s.checker->race()) {
      const int grank = check_global_rank();
      // Join every initiator's published clock: the happens-before edge
      // lands at completion, not initiation.
      race->handoff_acquire(grank, nb_race_key(s, request.key_));
      if (request.send_base_ != nullptr) {
        race->nb_complete(request.send_base_, grank, clock_->now(),
                          current_phase());
      }
      if (request.recv_base_ != nullptr) {
        race->nb_complete(request.recv_base_, grank, clock_->now(),
                          current_phase());
      }
    }
  }
  stats_.bytes_sent += sent;
  stats_.bytes_received += received;
}

bool Request::test() {
  if (comm_ == nullptr || waited_) return true;
  return comm_->nb_test(key_);
}

void Request::wait() {
  if (comm_ == nullptr || waited_) return;
  comm_->nb_wait(*this);
  waited_ = true;
}

void Communicator::send(int dest, int tag,
                        std::span<const std::byte> payload) {
  auto& s = *shared_;
  if (dest < 0 || dest >= s.nranks) {
    throw mutil::CommError("simmpi: send: bad destination rank");
  }
  const double transfer =
      s.net_latency + static_cast<double>(payload.size()) / s.net_bandwidth;
  detail::Mailbox::Message msg;
  msg.source = rank_;
  msg.tag = tag;
  msg.arrival = clock_->now() + transfer;
  msg.payload.assign(payload.begin(), payload.end());
  if (s.checker != nullptr) {
    if (check::RaceDetector* race = s.checker->race()) {
      // The send -> recv happens-before edge: snapshot the sender's
      // vector clock into the message for the receiver to join.
      msg.race_clock = race->send_edge(check_global_rank());
    }
  }

  auto& box = *s.mailboxes[static_cast<std::size_t>(dest)];
  {
    const std::scoped_lock lock(box.mutex);
    box.messages.push_back(std::move(msg));
  }
  box.cv.notify_all();
  clock_->advance(transfer);
  stats_.bytes_sent += payload.size();
}

std::vector<std::byte> Communicator::recv(int source, int tag) {
  auto& s = *shared_;
  if (source < 0 || source >= s.nranks) {
    throw mutil::CommError("simmpi: recv: bad source rank");
  }
  const check::BlockGuard guard(
      s.checker, check_global_rank(), check::BlockedState::Kind::kRecv,
      "recv", s.check_ranks[static_cast<std::size_t>(source)], 0,
      clock_->now());
  auto& box = *s.mailboxes[static_cast<std::size_t>(rank_)];
  std::unique_lock lock(box.mutex);
  for (;;) {
    s.throw_if_aborted();
    const auto it =
        std::find_if(box.messages.begin(), box.messages.end(),
                     [&](const detail::Mailbox::Message& m) {
                       return m.source == source && m.tag == tag;
                     });
    if (it != box.messages.end()) {
      detail::Mailbox::Message msg = std::move(*it);
      box.messages.erase(it);
      lock.unlock();
      if (s.checker != nullptr && !msg.race_clock.empty()) {
        if (check::RaceDetector* race = s.checker->race()) {
          race->recv_edge(check_global_rank(), msg.race_clock);
        }
      }
      const double before = clock_->now();
      clock_->sync_to(msg.arrival);
      // A message that had not yet arrived made the receiver wait.
      if (msg.arrival > before) note_wait(before, msg.arrival);
      stats_.bytes_received += msg.payload.size();
      return std::move(msg.payload);
    }
    box.cv.wait(lock);
  }
}

}  // namespace simmpi
