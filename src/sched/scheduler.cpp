#include "sched/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "check/checker.hpp"
#include "check/race.hpp"
#include "memtrack/tracker.hpp"
#include "mimir/checkpoint.hpp"
#include "mutil/error.hpp"
#include "stats/registry.hpp"
#include "stats/trace.hpp"

namespace sched {

namespace {

/// Per-run knobs shared by every rank thread (read-only during the run,
/// except the atomic resume flags).
struct ExecControl {
  bool checkpoint = false;
  std::string prefix;
  bool keep_checkpoints = false;
  int attempt = 1;
  /// Graph-wide ooc_live_bytes cap from the OOM degradation ladder
  /// (0 = not engaged). Composes with per-node planner overrides.
  std::uint64_t degraded_live = 0;
  const inject::FaultPlan* fault_plan = nullptr;
  double start_offset = 0.0;
  double total_backoff = 0.0;
  /// Graph-wide skew-balance override (-1 inherit node config, 0/1
  /// force off/on); mirrors GraphOptions::balance.
  int balance = -1;
  /// Set per node id when a rank restores it from its checkpoint.
  std::vector<std::atomic<bool>>* resumed_flags = nullptr;
};

std::string node_checkpoint(const std::string& prefix, int id) {
  return prefix + "-n" + std::to_string(id);
}

/// mimir-race handoff-edge key for node `id`'s output on world rank
/// `rank`. The rank is part of the key so the edge stays within one
/// rank's producer -> consumer chain and never invents a cross-rank
/// ordering the executor does not provide.
std::uint64_t handoff_key(int id, int rank) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(rank));
}

/// Execute one group's run of nodes on its (possibly split) context.
void run_group(simmpi::Context& exec, simmpi::Context& world,
               const Graph& graph, const Plan& plan,
               const GroupPlan& group, const ExecControl& ctl,
               void* state) {
  // Producer outputs still owed to consumers, with remaining reader
  // counts — the refcounted handoff. All nodes of a weakly-connected
  // component run in the same group, so no container crosses groups.
  std::map<int, mimir::KVContainer> outputs;
  std::map<int, int> readers_left;

  for (const int id : group.nodes) {
    const JobNode& node = graph.node(id);
    const std::string span = "sched:" + node.name;
    const stats::PhaseScope phase(span);
    NodeCtx nctx{exec, id, world.rank(), world.size(), state};

    mimir::JobConfig cfg = node.config;
    if (plan.live_bytes[static_cast<std::size_t>(id)] != 0) {
      cfg.ooc_live_bytes = plan.live_bytes[static_cast<std::size_t>(id)];
    }
    if (ctl.degraded_live != 0) {
      cfg.ooc_live_bytes =
          cfg.ooc_live_bytes == 0
              ? ctl.degraded_live
              : std::min(cfg.ooc_live_bytes, ctl.degraded_live);
    }
    if (ctl.balance >= 0) {
      cfg.balance.enabled = ctl.balance != 0;
    }

    const std::string ckpt = node_checkpoint(ctl.prefix, id);
    const std::vector<int>& ins = graph.inputs(id);
    // Join each producer's published clock before touching its
    // container: the producer -> consumer handoff happens-before edge.
    for (const int in : ins) {
      check::race_handoff_acquire(handoff_key(in, world.rank()));
    }
    bool skipped = false;
    std::optional<mimir::KVContainer> out;

    if (ctl.checkpoint && ctl.attempt > 1 &&
        mimir::checkpoint_exists(exec, ckpt)) {
      // Completed ancestor: restore its output instead of re-running.
      // The load itself is skipped when nobody reads the output (no
      // consume hook, no data consumers).
      (*ctl.resumed_flags)[static_cast<std::size_t>(id)].store(
          true, std::memory_order_relaxed);
      nctx.resumed = true;
      if (node.consume || graph.data_consumers(id) > 0) {
        // Restored handoff containers are scheduler-owned, not part of
        // any single job — attribute their pages to the handoff.
        const memtrack::TagScope tag("sched.handoff",
                                     memtrack::TagScope::Mode::kFallback);
        out.emplace(mimir::load_container(exec, ckpt, cfg.page_size));
      }
    } else if (node.skip && node.skip(nctx)) {
      skipped = true;
      const memtrack::TagScope tag("sched.handoff");
      out.emplace(exec.tracker, cfg.page_size,
                  cfg.output_hint.value_or(cfg.hint));
    } else {
      mimir::Job job(exec, cfg);
      const auto feed = [&](std::string_view key, std::string_view value,
                            mimir::Emitter& emitter) {
        if (node.kv_map) {
          node.kv_map(nctx, key, value, emitter);
        } else {
          emitter.emit(key, value);
        }
      };
      // A single data input whose last reader we are streams through
      // map_kvs by move — the exact code path (costs, metrics, page
      // frees) of the manual `job.map_kvs(prev.take_output(), ...)`
      // idiom this scheduler replaces.
      if (ins.size() == 1 && !node.producer &&
          readers_left.at(ins.front()) == 1) {
        job.map_kvs(std::move(outputs.at(ins.front())),
                    [&](std::string_view key, std::string_view value,
                        mimir::Emitter& emitter) {
                      feed(key, value, emitter);
                    },
                    node.combiner);
      } else {
        job.map_custom(
            [&](mimir::Emitter& emitter) {
              const double rate = exec.machine.map_rate;
              for (const int in : ins) {
                mimir::KVContainer& src = outputs.at(in);
                const auto visit = [&](const mimir::KVView& kv) {
                  exec.clock().advance(
                      static_cast<double>(kv.key.size() + kv.value.size()) /
                      rate);
                  feed(kv.key, kv.value, emitter);
                };
                if (readers_left.at(in) == 1) {
                  src.consume(visit);  // last reader frees as it reads
                } else {
                  src.scan(visit);
                }
              }
              if (node.producer) node.producer(nctx, emitter);
            },
            node.combiner);
      }
      if (node.reduce) {
        job.reduce(node.reduce);
        out.emplace(job.take_output());
      } else if (node.partial) {
        job.partial_reduce(node.partial);
        out.emplace(job.take_output());
      } else {
        out.emplace(job.take_intermediate());
      }
      if (ctl.checkpoint) {
        mimir::save_container(exec, *out, ckpt);
      }
    }

    // Release input refcounts: the last consumer's decrement frees the
    // producer's container (it was already drained if we streamed it).
    for (const int in : ins) {
      if (--readers_left.at(in) == 0) {
        outputs.erase(in);
        readers_left.erase(in);
      }
    }

    if (node.consume && !skipped && out.has_value()) {
      node.consume(nctx, *out);
    }
    if (graph.data_consumers(id) > 0) {
      readers_left.emplace(id, graph.data_consumers(id));
      outputs.emplace(id, std::move(*out));
      check::race_handoff_publish(handoff_key(id, world.rank()));
    }
    // else: `out` dies here — memory back the moment the last (only)
    // consumer is done, which for a sink is the node itself.
  }
}

/// The rank function for one attempt.
void run_rank(simmpi::Context& world, const Graph& graph, const Plan& plan,
              const GraphOptions& options, const ExecControl& ctl) {
  std::optional<inject::Injector> injector;
  std::optional<inject::ScopedInject> scope;
  if (ctl.fault_plan != nullptr && !ctl.fault_plan->empty()) {
    injector.emplace(*ctl.fault_plan, world.rank(), ctl.attempt);
    injector->bind(&world.clock(), &world.tracker);
    injector->set_topology(world.machine.ranks_per_node);
    scope.emplace(&*injector);
  }
  if (ctl.start_offset > 0.0) world.clock().advance(ctl.start_offset);

  std::shared_ptr<void> state;
  if (options.make_state) state = options.make_state(world);

  for (const WavePlan& wave : plan.waves) {
    if (wave.groups.size() == 1) {
      // One branch: run on the world directly — no communicator split,
      // no synchronization beyond the jobs' own collectives, i.e. the
      // exact execution shape of the manual sequential loop.
      run_group(world, world, graph, plan, wave.groups.front(), ctl,
                state.get());
      continue;
    }
    int color = -1;
    for (std::size_t g = 0; g < wave.groups.size(); ++g) {
      if (world.rank() >= wave.groups[g].rank_begin &&
          world.rank() < wave.groups[g].rank_end) {
        color = static_cast<int>(g);
        break;
      }
    }
    {
      auto sub = world.comm.split(color, world.comm.rank());
      simmpi::Context exec{*sub, world.tracker, world.fs, world.machine};
      run_group(exec, world, graph, plan,
                wave.groups[static_cast<std::size_t>(color)], ctl,
                state.get());
    }
    // Branches finish at different simulated times; the wave boundary
    // synchronizes the world to the slowest one.
    world.comm.clock_sync();
  }

  if (options.epilogue) {
    NodeCtx ectx{world, -1, world.rank(), world.size(), state.get()};
    options.epilogue(ectx);
  }

  if (ctl.checkpoint && !ctl.keep_checkpoints) {
    // Collective cleanup on the *world*: shards were written with
    // group-local rank indices (a subset of world ranks), so every
    // world rank sweeps its own index. Commit markers go first, so a
    // checkpoint never looks committed while half-deleted.
    world.comm.barrier();
    for (int id = 0; id < graph.size(); ++id) {
      const std::string base =
          "ckpt/" + node_checkpoint(ctl.prefix, id) + "/";
      if (world.rank() == 0) world.fs.remove(base + "commit");
    }
    world.comm.barrier();
    for (int id = 0; id < graph.size(); ++id) {
      const std::string base =
          "ckpt/" + node_checkpoint(ctl.prefix, id) + "/";
      const std::string shard =
          base + "shard" + std::to_string(world.rank());
      if (world.fs.exists(shard)) world.fs.remove(shard);
    }
    world.comm.barrier();
  }

  if (stats::Registry* reg = stats::current()) {
    std::uint64_t my_resumed = 0;
    for (const auto& flag : *ctl.resumed_flags) {
      if (flag.load(std::memory_order_relaxed)) ++my_resumed;
    }
    reg->add("sched.jobs", static_cast<std::uint64_t>(graph.size()));
    reg->add("sched.admitted",
             static_cast<std::uint64_t>(graph.size() - plan.queued_nodes));
    reg->add("sched.queued",
             static_cast<std::uint64_t>(plan.queued_nodes));
    reg->add("sched.degraded",
             static_cast<std::uint64_t>(plan.degraded_nodes));
    reg->add("sched.waves",
             static_cast<std::uint64_t>(plan.waves.size()));
    reg->add("sched.attempts", static_cast<std::uint64_t>(ctl.attempt));
    reg->add("sched.resumed_nodes", my_resumed);
    reg->add_seconds("sched.backoff_seconds", ctl.total_backoff);
  }
}

std::uint64_t count_resumed(const std::vector<std::atomic<bool>>& flags) {
  std::uint64_t n = 0;
  for (const auto& flag : flags) {
    if (flag.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

}  // namespace

GraphOutcome run_graph(int nranks, const simtime::MachineProfile& machine,
                       pfs::FileSystem& fs, const Graph& graph,
                       const GraphOptions& options,
                       stats::Collector* collector,
                       check::JobChecker* checker) {
  GraphOutcome out;
  out.plan = plan_graph(graph, nranks, machine, options);

  ExecControl ctl;
  ctl.checkpoint = options.checkpoint;
  ctl.prefix = options.checkpoint_prefix;
  ctl.keep_checkpoints = options.keep_checkpoints;
  ctl.balance = options.balance;
  std::vector<std::atomic<bool>> resumed_flags(
      static_cast<std::size_t>(graph.size()));
  ctl.resumed_flags = &resumed_flags;

  out.stats = simmpi::run(
      nranks, machine, fs,
      [&](simmpi::Context& ctx) {
        run_rank(ctx, graph, out.plan, options, ctl);
      },
      collector, checker);
  out.resumed_nodes = count_resumed(resumed_flags);
  if (collector != nullptr) {
    out.critical = critical_path(graph, out.plan, *collector);
    if (!out.critical.empty()) {
      collector->set_section("critical_path", out.critical.json());
    }
  }
  return out;
}

GraphOutcome run_graph_with_recovery(
    int nranks, const simtime::MachineProfile& machine,
    pfs::FileSystem& fs, const Graph& graph, const GraphOptions& options,
    const mimir::RecoveryPolicy& policy,
    const inject::FaultPlan* fault_plan, stats::Collector* collector,
    check::JobChecker* checker) {
  GraphOutcome out;
  out.plan = plan_graph(graph, nranks, machine, options);

  // The degradation ladder bottoms out when halving again would drop
  // some node's live budget below its page size.
  std::uint64_t max_page = 0;
  for (int id = 0; id < graph.size(); ++id) {
    max_page = std::max(max_page, graph.node(id).config.page_size);
  }

  const auto diag = [&](check::Severity severity, std::string code,
                        std::string message, int failed_rank,
                        double failed_time) {
    if (checker == nullptr) return;
    check::Diagnostic d;
    d.severity = severity;
    d.analyzer = "sched";
    d.code = std::move(code);
    d.message = std::move(message);
    if (failed_rank >= 0) d.ranks = {failed_rank};
    d.sim_time = failed_time;
    checker->report().add(std::move(d));
  };

  ExecControl ctl;
  ctl.checkpoint = true;
  ctl.prefix = policy.checkpoint;
  ctl.keep_checkpoints = policy.keep_checkpoint;
  ctl.fault_plan = fault_plan;
  ctl.balance = options.balance;

  bool resumed_any = false;
  for (int attempt = 1;; ++attempt) {
    mimir::AttemptRecord rec;
    rec.attempt = attempt;
    rec.live_budget = ctl.degraded_live;
    ctl.attempt = attempt;

    std::vector<std::atomic<bool>> resumed_flags(
        static_cast<std::size_t>(graph.size()));
    ctl.resumed_flags = &resumed_flags;

    std::exception_ptr failure;
    bool oom = false;
    try {
      out.stats = simmpi::run(
          nranks, machine, fs,
          [&](simmpi::Context& ctx) {
            run_rank(ctx, graph, out.plan, options, ctl);
          },
          collector, checker);
      rec.ok = true;
      out.history.push_back(rec);
      out.attempts = attempt;
      out.resumed_nodes = count_resumed(resumed_flags);
      out.resumed = resumed_any || out.resumed_nodes != 0;
      out.total_backoff = ctl.total_backoff;
      out.degraded = out.degraded || ctl.degraded_live != 0;
      out.degraded_live_bytes = ctl.degraded_live;
      if (collector != nullptr) {
        out.critical = critical_path(graph, out.plan, *collector);
        if (!out.critical.empty()) {
          collector->set_section("critical_path", out.critical.json());
        }
      }
      return out;
    } catch (const mutil::UsageError&) {
      throw;  // caller bug, not a fault — never retried
    } catch (const mutil::ConfigError&) {
      throw;
    } catch (const mutil::OutOfMemoryError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      oom = true;
    } catch (const mutil::RankFailedError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      rec.failed_rank = e.rank();
      rec.failed_time = e.sim_time();
    } catch (const mutil::TransientIoError& e) {
      failure = std::current_exception();
      rec.error = e.what();
      rec.failed_time = e.sim_time();
    }
    resumed_any = resumed_any || count_resumed(resumed_flags) != 0;

    if (oom) {
      // Graph-wide graceful degradation, mirroring run_with_recovery:
      // restart with out-of-core spill capped at half the previous live
      // budget (starting from the per-rank share of node memory).
      std::uint64_t base = ctl.degraded_live;
      if (base == 0 && machine.node_memory != 0) {
        base = machine.node_memory /
               static_cast<std::uint64_t>(
                   std::max(1, machine.ranks_per_node));
      }
      const std::uint64_t next = base / 2;
      if (!policy.degrade_on_oom || next < max_page) {
        out.history.push_back(rec);
        std::rethrow_exception(failure);
      }
      ctl.degraded_live = next;
      out.degraded = true;
      out.degraded_live_bytes = next;
      diag(check::Severity::kWarning, "oom-degraded",
           "graph attempt " + std::to_string(attempt) +
               " ran out of memory; retrying with ooc_live_bytes=" +
               std::to_string(next),
           -1, rec.failed_time);
    }

    if (attempt >= policy.max_attempts) {
      out.history.push_back(rec);
      out.attempts = attempt;
      diag(check::Severity::kError, "retries-exhausted",
           "giving up on graph after " + std::to_string(attempt) +
               " attempts: " + rec.error,
           rec.failed_rank, rec.failed_time);
      std::rethrow_exception(failure);
    }

    const double backoff =
        policy.backoff_base *
        std::pow(policy.backoff_factor, static_cast<double>(attempt - 1));
    rec.backoff = backoff;
    ctl.total_backoff += backoff;
    ctl.start_offset = std::max(ctl.start_offset, rec.failed_time) + backoff;
    out.history.push_back(rec);
    diag(check::Severity::kWarning, "attempt-failed",
         "graph attempt " + std::to_string(attempt) + " failed (" +
             rec.error + "); retrying after " + std::to_string(backoff) +
             "s simulated backoff",
         rec.failed_rank, rec.failed_time);
  }
}

}  // namespace sched
