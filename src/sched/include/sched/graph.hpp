// Dataflow scheduler — job graphs over the Mimir core (the "sched"
// layer).
//
// The iterative applications and in-situ pipelines in this repository
// were hand-rolled loops of independent mimir::Job runs: every stage
// re-negotiated memory on its own and intermediate KVs were moved by
// the caller. This module makes the multi-job structure explicit: a
// sched::Graph is a DAG of JobNodes, each one MapReduce job with a
// declared peak-memory estimate, data edges that hand the producer's
// output KVContainer straight to the consumer's map phase (no PFS
// round-trip), and order edges for control-only dependencies.
//
// The planner (plan_graph) turns a graph into a deterministic schedule
// every rank computes identically from the graph alone:
//
//   * weakly-connected components are the unit of concurrency —
//     a data or order edge keeps its endpoints in the same component,
//     so handed-off containers never cross rank groups;
//   * admission control: components are packed into waves first-fit
//     while the sum of their estimates fits the global memory budget
//     (GraphOptions::memory_budget, default the machine's node memory)
//     and the wave has fewer than max_concurrency groups; a component
//     that does not fit is queued to a later wave;
//   * a node whose own estimate exceeds the budget is degraded before
//     it is queued: the planner enables the existing out-of-core
//     ladder (halving ooc_live_bytes, floor one page) until its
//     projected resident footprint fits;
//   * with max_concurrency 1 (the default) or a single component, the
//     whole graph runs sequentially on the full world — bit-identical
//     to the manual loop it replaces.
//
// Container ownership: each produced output is held by the executor
// with a reference count equal to its unconsumed data consumers. A
// non-final consumer scans the container; the final consumer takes it
// by move (streamed through Job::map_kvs, pages freed as they are
// read), and the memory is released the moment that consumer's map
// finishes. Outputs with no data consumers are destroyed right after
// the node's consume hook runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mimir/job.hpp"
#include "simmpi/runtime.hpp"
#include "simtime/machine.hpp"

namespace mutil {
class Config;
}

namespace sched {

/// What a node callback sees: the execution context (the node's rank
/// group — the full world unless the wave runs concurrent groups), the
/// node id, this rank's world coordinates, and the per-rank session
/// state created by GraphOptions::make_state (nullptr when unset).
struct NodeCtx {
  simmpi::Context& exec;
  int node = -1;  ///< -1 for the epilogue hook
  int world_rank = 0;
  int world_size = 0;
  void* state = nullptr;
  /// True when this node's output was restored from its checkpoint
  /// instead of re-running the job (recovery resume). Consume hooks
  /// whose state rebuild needs values the skipped producer would have
  /// computed (e.g. a pre-job allreduce) recompute them under this
  /// flag — every rank of the group sees the same value, so added
  /// collectives stay aligned.
  bool resumed = false;
};

/// Custom KV source for a node's map phase (in-situ producers,
/// generators, state-driven emitters). May use collectives on
/// `ctx.exec` — every rank of the node's group runs it.
using ProducerFn = std::function<void(NodeCtx&, mimir::Emitter&)>;

/// Applied to each KV arriving over a data edge; defaults to identity
/// re-emit when unset.
using KvMapFn = std::function<void(NodeCtx&, std::string_view key,
                                   std::string_view value,
                                   mimir::Emitter&)>;

/// Reads the node's output container (fresh, or reloaded from its
/// checkpoint on a recovery resume) — the place to fold results into
/// rank-local state. Must not modify the container; it may still feed
/// downstream consumers.
using ConsumeFn = std::function<void(NodeCtx&, mimir::KVContainer&)>;

/// Deterministic dynamic skip (must return the same value on every
/// rank of the group): a skipped node produces an empty output and
/// runs neither its job nor its consume hook.
using SkipFn = std::function<bool(NodeCtx&)>;

/// One MapReduce job in the graph. The map phase feeds data-edge
/// inputs through `kv_map` and then calls `producer`; the finish phase
/// is `reduce` (convert + reduce), else `partial` (partial_reduce),
/// else map-only (the aggregated intermediate is the output).
struct JobNode {
  std::string name;
  mimir::JobConfig config{};
  /// Declared peak memory per simulated node (bytes) for admission
  /// control; 0 = assume negligible.
  std::uint64_t peak_estimate = 0;
  ProducerFn producer;
  KvMapFn kv_map;
  mimir::CombineFn combiner;  ///< map-side combiner (cps)
  mimir::ReduceFn reduce;
  mimir::CombineFn partial;
  ConsumeFn consume;
  SkipFn skip;
};

/// The job DAG. Node ids are dense, in insertion order.
class Graph {
 public:
  /// Add a node; returns its id.
  int add(JobNode node);

  /// Data edge: `producer`'s output container feeds `consumer`'s map
  /// phase (also an execution-order dependency). Rejects duplicates.
  void add_edge(int producer, int consumer);

  /// Control-only dependency: `before` completes before `after` runs.
  void add_order(int before, int after);

  int size() const noexcept { return static_cast<int>(nodes_.size()); }
  const JobNode& node(int id) const;
  /// Data inputs of `id`, in add_edge order.
  const std::vector<int>& inputs(int id) const;
  /// All predecessors of `id` (data and order edges, in add order).
  const std::vector<int>& predecessors(int id) const;
  /// Number of data consumers of `id`'s output.
  int data_consumers(int id) const;

  /// Execution order over data+order edges (smallest ready id first);
  /// throws mutil::UsageError on a cycle.
  std::vector<int> topo_order() const;

  /// Weakly-connected component id per node, normalized to first
  /// appearance in node-id order.
  std::vector<int> components() const;

 private:
  int check_id(int id, const char* what) const;

  std::vector<JobNode> nodes_;
  std::vector<std::vector<int>> inputs_;     ///< data inputs per node
  std::vector<std::vector<int>> succ_;       ///< data+order successors
  std::vector<std::vector<int>> pred_;       ///< data+order predecessors
  std::vector<int> data_consumers_;
};

/// Scheduler knobs; all deterministic inputs to the plan.
struct GraphOptions {
  /// Global memory budget (bytes per simulated node) for admission
  /// control; 0 = the machine's node_memory (0 there too = unlimited).
  std::uint64_t memory_budget = 0;
  /// Maximum independent DAG branches running concurrently over
  /// disjoint rank groups; 1 = fully sequential on the world.
  int max_concurrency = 1;
  /// Save each node's output to the PFS (commit-marker protocol) so a
  /// retry resumes completed nodes instead of re-running them. Off by
  /// default; run_graph_with_recovery forces it on.
  bool checkpoint = false;
  std::string checkpoint_prefix = "sched";
  bool keep_checkpoints = false;
  /// Skew-aware load balancing override for every node in the graph:
  /// -1 keeps each node's own config.balance.enabled, 0/1 forces it off
  /// or on graph-wide. Safe for any node — the balance merge pass
  /// restores the original key placement before outputs are consumed.
  int balance = -1;
  /// Per-rank session state, created at the start of every attempt and
  /// surfaced via NodeCtx::state. Consume hooks must rebuild all state
  /// they own from node outputs, so a resumed attempt reconstructs it.
  std::function<std::shared_ptr<void>(simmpi::Context&)> make_state;
  /// Runs on every rank (world context) after the last wave.
  std::function<void(NodeCtx&)> epilogue;

  /// Parse "mimir.sched.*" keys (memory_budget, max_concurrency,
  /// checkpoint, checkpoint_prefix, keep_checkpoints, balance).
  static GraphOptions from(const mutil::Config& cfg);
};

/// One rank group within a wave: a run of nodes in topo order on world
/// ranks [rank_begin, rank_end).
struct GroupPlan {
  std::vector<int> nodes;
  int rank_begin = 0;
  int rank_end = 0;
  std::uint64_t estimate = 0;  ///< admission estimate (post-degradation)
};

/// Groups that run concurrently (split communicators when > 1).
struct WavePlan {
  std::vector<GroupPlan> groups;
};

/// The deterministic schedule. Identical on every rank for a fixed
/// (graph, nranks, machine, options) — the executor never communicates
/// to agree on it.
struct Plan {
  std::vector<WavePlan> waves;
  std::uint64_t budget = 0;        ///< effective budget (0 = unlimited)
  int queued_nodes = 0;            ///< nodes deferred past wave 0
  int degraded_nodes = 0;          ///< nodes pre-emptively degraded
  /// Per-node ooc_live_bytes override from admission degradation
  /// (0 = keep the node's configured value).
  std::vector<std::uint64_t> live_bytes;
  std::vector<bool> degraded;
};

/// Compute the schedule (validates the graph; throws mutil::UsageError
/// on cycles or bad edges).
Plan plan_graph(const Graph& graph, int nranks,
                const simtime::MachineProfile& machine,
                const GraphOptions& options);

}  // namespace sched
