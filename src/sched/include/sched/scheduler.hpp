// Graph execution and graph-level recovery.
//
// run_graph executes a planned sched::Graph inside one simmpi::run:
// every rank walks the plan's waves; a wave with several groups splits
// the world communicator so independent DAG branches run concurrently,
// each group running its nodes in topological order. Intermediate
// outputs are handed producer-to-consumer in memory with refcounted
// ownership (see graph.hpp).
//
// run_graph_with_recovery lifts run_with_recovery (core/recovery.hpp)
// to the graph: every completed node's output is checkpointed to the
// PFS under "<prefix>-n<id>", so a retry resumes each completed node by
// reloading its container — completed ancestors are never re-executed,
// only their consume hooks replay to rebuild rank-local state. The
// retry loop classifies failures exactly like the single-job path:
// rank/node crashes and transient PFS errors back off and retry,
// OutOfMemoryError walks the degradation ladder (halving the live-bytes
// budget graph-wide), UsageError/ConfigError are rethrown.
#pragma once

#include <cstdint>
#include <vector>

#include "mimir/recovery.hpp"
#include "sched/critical_path.hpp"
#include "sched/graph.hpp"

namespace stats {
class Collector;
}
namespace check {
class JobChecker;
}

namespace sched {

/// Result of a graph run (successful attempt).
struct GraphOutcome {
  simmpi::JobStats stats;  ///< whole-graph stats (one simmpi::run)
  Plan plan;               ///< the schedule that was executed
  int attempts = 1;
  bool resumed = false;          ///< some attempt reloaded checkpoints
  std::uint64_t resumed_nodes = 0;  ///< nodes restored instead of re-run
  bool degraded = false;         ///< OOM degradation ladder engaged
  std::uint64_t degraded_live_bytes = 0;
  double total_backoff = 0.0;
  std::vector<mimir::AttemptRecord> history;
  /// Longest completion chain of the successful attempt; empty unless a
  /// stats collector was attached (also exported to the collector as
  /// the "critical_path" summary section).
  CriticalPath critical;

  int jobs() const noexcept {
    return static_cast<int>(plan.live_bytes.size());
  }
  int waves() const noexcept { return static_cast<int>(plan.waves.size()); }
  int admitted() const noexcept { return jobs() - plan.queued_nodes; }
};

/// Plan and execute `graph` on `nranks` ranks. Throws the first rank
/// failure like simmpi::run (no retry).
GraphOutcome run_graph(int nranks, const simtime::MachineProfile& machine,
                       pfs::FileSystem& fs, const Graph& graph,
                       const GraphOptions& options = {},
                       stats::Collector* collector = nullptr,
                       check::JobChecker* checker = nullptr);

/// Execute `graph` under the recovery policy: per-node checkpoints are
/// forced on (prefix = policy.checkpoint) and each retry resumes every
/// node whose checkpoint committed. `fault_plan` injects failures per
/// rank (inject/fault.hpp) with node topology bound from `machine`.
GraphOutcome run_graph_with_recovery(
    int nranks, const simtime::MachineProfile& machine,
    pfs::FileSystem& fs, const Graph& graph, const GraphOptions& options,
    const mimir::RecoveryPolicy& policy = {},
    const inject::FaultPlan* fault_plan = nullptr,
    stats::Collector* collector = nullptr,
    check::JobChecker* checker = nullptr);

}  // namespace sched
