// Critical-path extraction over an executed job graph.
//
// After run_graph, every rank's stats::Registry holds one "sched:<name>"
// phase record per node it executed. Folding those records across ranks
// gives each node an interval [begin = min over ranks, end = max over
// ranks] plus the worst per-rank collective wait inside the node. The
// critical path is the backward walk from the last-finishing node along
// its latest-finishing predecessor — where "predecessor" means a graph
// edge (data or order) or the node that precedes it in its group's
// sequential schedule, since admission control serializes groups too.
// Each hop reports its seconds and its slack (idle time between the
// chosen predecessor's end and this node's begin; slack can be negative
// when a node's earliest rank starts before its slowest predecessor
// rank finishes — the intervals are cross-rank envelopes, not a single
// rank's timeline).
#pragma once

#include <string>
#include <vector>

#include "sched/graph.hpp"

namespace stats {
class Collector;
}

namespace sched {

/// One node on the critical path.
struct CriticalStep {
  int node = -1;
  std::string name;
  double begin = 0.0;  ///< min over ranks of the node's phase begin
  double end = 0.0;    ///< max over ranks of the node's phase end
  double wait_seconds = 0.0;  ///< max over ranks of in-node wait
  /// Gap to the previous step's end (the path start's gap to time 0).
  double slack = 0.0;

  double seconds() const noexcept { return end - begin; }
};

/// The longest completion chain of one executed graph.
struct CriticalPath {
  double total_seconds = 0.0;  ///< end of the last step
  std::vector<CriticalStep> steps;

  bool empty() const noexcept { return steps.empty(); }
  /// Serialize as a JSON object (total_seconds plus an ordered steps
  /// array), suitable for Summary::sections / the bench JSON.
  std::string json() const;
};

/// Extract the critical path from the node timings recorded in
/// `collector` during an execution of `plan`. Returns an empty path
/// when no "sched:" phase records exist (e.g. stats were off).
CriticalPath critical_path(const Graph& graph, const Plan& plan,
                           const stats::Collector& collector);

}  // namespace sched
