#include "sched/graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "mutil/config.hpp"
#include "mutil/error.hpp"

namespace sched {

int Graph::check_id(int id, const char* what) const {
  if (id < 0 || id >= size()) {
    throw mutil::UsageError("sched: " + std::string(what) + " id " +
                            std::to_string(id) + " out of range (graph has " +
                            std::to_string(size()) + " nodes)");
  }
  return id;
}

int Graph::add(JobNode node) {
  if (node.name.empty()) {
    node.name = "job" + std::to_string(size());
  }
  nodes_.push_back(std::move(node));
  inputs_.emplace_back();
  succ_.emplace_back();
  pred_.emplace_back();
  data_consumers_.push_back(0);
  return size() - 1;
}

void Graph::add_edge(int producer, int consumer) {
  check_id(producer, "producer");
  check_id(consumer, "consumer");
  if (producer == consumer) {
    throw mutil::UsageError("sched: self edge on node " +
                            std::to_string(producer));
  }
  auto& ins = inputs_[consumer];
  if (std::find(ins.begin(), ins.end(), producer) != ins.end()) {
    throw mutil::UsageError("sched: duplicate data edge " +
                            std::to_string(producer) + " -> " +
                            std::to_string(consumer));
  }
  ins.push_back(producer);
  succ_[producer].push_back(consumer);
  pred_[consumer].push_back(producer);
  ++data_consumers_[producer];
}

void Graph::add_order(int before, int after) {
  check_id(before, "order-before");
  check_id(after, "order-after");
  if (before == after) {
    throw mutil::UsageError("sched: self order edge on node " +
                            std::to_string(before));
  }
  succ_[before].push_back(after);
  pred_[after].push_back(before);
}

const JobNode& Graph::node(int id) const {
  return nodes_[static_cast<std::size_t>(check_id(id, "node"))];
}

const std::vector<int>& Graph::inputs(int id) const {
  return inputs_[static_cast<std::size_t>(check_id(id, "node"))];
}

const std::vector<int>& Graph::predecessors(int id) const {
  return pred_[static_cast<std::size_t>(check_id(id, "node"))];
}

int Graph::data_consumers(int id) const {
  return data_consumers_[static_cast<std::size_t>(check_id(id, "node"))];
}

std::vector<int> Graph::topo_order() const {
  std::vector<int> indegree(nodes_.size(), 0);
  for (const auto& out : succ_) {
    for (int s : out) ++indegree[static_cast<std::size_t>(s)];
  }
  // Smallest ready id first, so the order is a deterministic function of
  // the graph (and matches insertion order for already-sorted chains).
  std::priority_queue<int, std::vector<int>, std::greater<>> ready;
  for (int id = 0; id < size(); ++id) {
    if (indegree[static_cast<std::size_t>(id)] == 0) ready.push(id);
  }
  std::vector<int> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    const int id = ready.top();
    ready.pop();
    order.push_back(id);
    for (int s : succ_[static_cast<std::size_t>(id)]) {
      if (--indegree[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  if (order.size() != nodes_.size()) {
    throw mutil::UsageError("sched: graph has a cycle (" +
                            std::to_string(nodes_.size() - order.size()) +
                            " nodes unreachable in topological order)");
  }
  return order;
}

std::vector<int> Graph::components() const {
  // Union-find over data + order edges (weak connectivity).
  std::vector<int> parent(nodes_.size());
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (int id = 0; id < size(); ++id) {
    for (int s : succ_[static_cast<std::size_t>(id)]) {
      const int a = find(id);
      const int b = find(s);
      if (a != b) parent[static_cast<std::size_t>(std::max(a, b))] =
          std::min(a, b);
    }
  }
  // Normalize to dense ids in order of first appearance.
  std::vector<int> comp(nodes_.size(), -1);
  std::vector<int> remap(nodes_.size(), -1);
  int next = 0;
  for (int id = 0; id < size(); ++id) {
    const int root = find(id);
    if (remap[static_cast<std::size_t>(root)] < 0) {
      remap[static_cast<std::size_t>(root)] = next++;
    }
    comp[static_cast<std::size_t>(id)] =
        remap[static_cast<std::size_t>(root)];
  }
  return comp;
}

GraphOptions GraphOptions::from(const mutil::Config& cfg) {
  GraphOptions opts;
  opts.memory_budget =
      cfg.get_size("mimir.sched.memory_budget", opts.memory_budget);
  opts.max_concurrency = static_cast<int>(
      cfg.get_int("mimir.sched.max_concurrency", opts.max_concurrency));
  opts.checkpoint = cfg.get_bool("mimir.sched.checkpoint", opts.checkpoint);
  opts.checkpoint_prefix =
      cfg.get_string("mimir.sched.checkpoint_prefix", opts.checkpoint_prefix);
  opts.keep_checkpoints =
      cfg.get_bool("mimir.sched.keep_checkpoints", opts.keep_checkpoints);
  if (cfg.contains("mimir.sched.balance")) {
    opts.balance = cfg.get_bool("mimir.sched.balance", false) ? 1 : 0;
  }
  if (opts.max_concurrency < 1) {
    throw mutil::ConfigError("mimir.sched.max_concurrency must be >= 1");
  }
  return opts;
}

Plan plan_graph(const Graph& graph, int nranks,
                const simtime::MachineProfile& machine,
                const GraphOptions& options) {
  if (nranks < 1) {
    throw mutil::UsageError("sched: nranks must be >= 1");
  }
  if (options.max_concurrency < 1) {
    throw mutil::UsageError("sched: max_concurrency must be >= 1");
  }
  const std::vector<int> order = graph.topo_order();  // validates (cycles)

  Plan plan;
  plan.budget =
      options.memory_budget != 0 ? options.memory_budget : machine.node_memory;
  const std::size_t n = static_cast<std::size_t>(graph.size());
  plan.live_bytes.assign(n, 0);
  plan.degraded.assign(n, false);
  if (graph.size() == 0) return plan;

  const std::uint64_t rpn =
      static_cast<std::uint64_t>(std::max(1, machine.ranks_per_node));

  // Pre-emptive degradation: a node whose declared peak exceeds the
  // budget on its own gets the out-of-core ladder enabled up front
  // (halving live bytes, floor one page) instead of being queued
  // forever. Projected resident footprint with spilling on is ~2x the
  // live budget per rank (live pages + in-flight shuffle), times the
  // ranks sharing the node.
  std::vector<std::uint64_t> estimate(n, 0);
  for (int id = 0; id < graph.size(); ++id) {
    const JobNode& node = graph.node(id);
    std::uint64_t est = node.peak_estimate;
    if (plan.budget != 0 && est > plan.budget) {
      std::uint64_t live = node.config.ooc_live_bytes != 0
                               ? node.config.ooc_live_bytes
                               : plan.budget / rpn;
      const std::uint64_t floor = node.config.page_size;
      const auto projected = [&](std::uint64_t l) { return 2 * l * rpn; };
      while (live / 2 >= floor && projected(live) > plan.budget) {
        live /= 2;
      }
      est = std::min(est, projected(live));
      plan.live_bytes[static_cast<std::size_t>(id)] = live;
      plan.degraded[static_cast<std::size_t>(id)] = true;
      ++plan.degraded_nodes;
    }
    estimate[static_cast<std::size_t>(id)] = est;
  }

  // Components are the concurrency unit; a component's admission
  // estimate is its widest node (its jobs run one after another).
  const std::vector<int> comp = graph.components();
  const int ncomp = 1 + *std::max_element(comp.begin(), comp.end());
  std::vector<std::uint64_t> comp_estimate(static_cast<std::size_t>(ncomp), 0);
  std::vector<std::vector<int>> comp_nodes(static_cast<std::size_t>(ncomp));
  for (int id : order) {
    const std::size_t c = static_cast<std::size_t>(comp[
        static_cast<std::size_t>(id)]);
    comp_nodes[c].push_back(id);  // topo order within the component
    comp_estimate[c] =
        std::max(comp_estimate[c], estimate[static_cast<std::size_t>(id)]);
  }

  const int mc = std::min(options.max_concurrency, nranks);
  if (mc == 1 || ncomp == 1) {
    // Sequential: one wave, one group, the whole world — the manual-loop
    // execution shape (no communicator splits, no barriers added).
    WavePlan wave;
    GroupPlan group;
    group.nodes = order;
    group.rank_begin = 0;
    group.rank_end = nranks;
    group.estimate =
        *std::max_element(comp_estimate.begin(), comp_estimate.end());
    wave.groups.push_back(std::move(group));
    plan.waves.push_back(std::move(wave));
    return plan;
  }

  // First-fit wave packing under the global budget: component i goes to
  // the first wave with a free group slot whose admitted estimates plus
  // this one still fit. Components that miss wave 0 are "queued".
  struct WaveAccum {
    std::vector<int> comps;
    std::uint64_t used = 0;
  };
  std::vector<WaveAccum> waves;
  for (int c = 0; c < ncomp; ++c) {
    const std::uint64_t est = comp_estimate[static_cast<std::size_t>(c)];
    bool placed = false;
    for (std::size_t w = 0; w < waves.size(); ++w) {
      if (static_cast<int>(waves[w].comps.size()) >= mc) continue;
      if (plan.budget != 0 && !waves[w].comps.empty() &&
          waves[w].used + est > plan.budget) {
        continue;
      }
      waves[w].comps.push_back(c);
      waves[w].used += est;
      placed = true;
      break;
    }
    if (!placed) {
      waves.push_back(WaveAccum{{c}, est});
    }
  }

  for (std::size_t w = 0; w < waves.size(); ++w) {
    WavePlan wave;
    const int k = static_cast<int>(waves[w].comps.size());
    for (int g = 0; g < k; ++g) {
      const std::size_t c =
          static_cast<std::size_t>(waves[w].comps[static_cast<std::size_t>(g)]);
      GroupPlan group;
      group.nodes = comp_nodes[c];
      // Even rank split; the last group absorbs the remainder.
      group.rank_begin = static_cast<int>(
          static_cast<std::int64_t>(nranks) * g / k);
      group.rank_end = static_cast<int>(
          static_cast<std::int64_t>(nranks) * (g + 1) / k);
      group.estimate = comp_estimate[c];
      wave.groups.push_back(std::move(group));
      if (w > 0) {
        plan.queued_nodes += static_cast<int>(comp_nodes[c].size());
      }
    }
    plan.waves.push_back(std::move(wave));
  }
  return plan;
}

}  // namespace sched
