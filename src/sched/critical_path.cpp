#include "sched/critical_path.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>

#include "stats/jsonlite.hpp"
#include "stats/trace.hpp"

namespace sched {

namespace {

/// Cross-rank envelope of one node's execution.
struct Span {
  bool seen = false;
  double begin = std::numeric_limits<double>::infinity();
  double end = -std::numeric_limits<double>::infinity();
  double wait = 0.0;
};

void append_f64(std::string& out, const char* key, double value,
                bool leading_comma) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%.9g", leading_comma ? "," : "",
                key, value);
  out += buf;
}

}  // namespace

std::string CriticalPath::json() const {
  std::string out = "{";
  append_f64(out, "total_seconds", total_seconds, false);
  out += ",\"steps\":[";
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const CriticalStep& step = steps[i];
    out += i == 0 ? "{" : ",{";
    out += "\"node\":" + std::to_string(step.node);
    out += ",\"name\":\"" + stats::jsonlite::escape(step.name) + "\"";
    append_f64(out, "begin", step.begin, true);
    append_f64(out, "end", step.end, true);
    append_f64(out, "seconds", step.seconds(), true);
    append_f64(out, "wait_seconds", step.wait_seconds, true);
    append_f64(out, "slack", step.slack, true);
    out += "}";
  }
  out += "]}";
  return out;
}

CriticalPath critical_path(const Graph& graph, const Plan& plan,
                           const stats::Collector& collector) {
  CriticalPath path;
  const int n = graph.size();
  if (n == 0) return path;

  // Map each node's executor phase name back to its id. Duplicate node
  // names fold onto the first id with that name — the envelope then
  // covers all of them, which is the honest reading of ambiguous
  // records.
  std::map<std::string, int, std::less<>> name_to_id;
  for (int id = 0; id < n; ++id) {
    name_to_id.emplace("sched:" + graph.node(id).name, id);
  }

  std::vector<Span> spans(static_cast<std::size_t>(n));
  for (int r = 0; r < collector.ranks(); ++r) {
    const stats::Registry& reg = collector.rank(r);
    for (const stats::PhaseRecord& phase : reg.phases()) {
      const auto it = name_to_id.find(phase.name);
      if (it == name_to_id.end()) continue;
      Span& span = spans[static_cast<std::size_t>(it->second)];
      span.seen = true;
      span.begin = std::min(span.begin, phase.begin);
      span.end = std::max(span.end, phase.end);
      span.wait = std::max(span.wait, phase.wait);
    }
  }

  // The group schedule serializes nodes that share a rank group even
  // without a graph edge between them; treat that as one extra
  // predecessor per node.
  std::vector<int> seq_pred(static_cast<std::size_t>(n), -1);
  for (const WavePlan& wave : plan.waves) {
    for (const GroupPlan& group : wave.groups) {
      for (std::size_t i = 1; i < group.nodes.size(); ++i) {
        const int node = group.nodes[i];
        if (node >= 0 && node < n) {
          seq_pred[static_cast<std::size_t>(node)] = group.nodes[i - 1];
        }
      }
    }
  }

  // Start from the last node to finish, then walk backward through the
  // latest-finishing executed predecessor.
  int tail = -1;
  for (int id = 0; id < n; ++id) {
    const Span& span = spans[static_cast<std::size_t>(id)];
    if (!span.seen) continue;
    if (tail < 0 || span.end > spans[static_cast<std::size_t>(tail)].end) {
      tail = id;
    }
  }
  if (tail < 0) return path;  // nothing executed under stats

  std::vector<int> chain;
  for (int id = tail; id >= 0;) {
    chain.push_back(id);
    int next = -1;
    auto consider = [&](int pred) {
      if (pred < 0 || pred >= n) return;
      const Span& span = spans[static_cast<std::size_t>(pred)];
      if (!span.seen) return;
      if (next < 0 || span.end > spans[static_cast<std::size_t>(next)].end) {
        next = pred;
      }
    };
    for (const int pred : graph.predecessors(id)) consider(pred);
    consider(seq_pred[static_cast<std::size_t>(id)]);
    id = next;
  }
  std::reverse(chain.begin(), chain.end());

  path.steps.reserve(chain.size());
  double previous_end = 0.0;
  for (const int id : chain) {
    const Span& span = spans[static_cast<std::size_t>(id)];
    CriticalStep step;
    step.node = id;
    step.name = graph.node(id).name;
    step.begin = span.begin;
    step.end = span.end;
    step.wait_seconds = span.wait;
    step.slack = span.begin - previous_end;
    previous_end = span.end;
    path.steps.push_back(std::move(step));
  }
  path.total_seconds = previous_end;
  return path;
}

}  // namespace sched
