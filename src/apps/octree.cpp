#include "apps/octree.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <unordered_set>

#include "mutil/hash.hpp"
#include "mutil/random.hpp"

namespace apps::oc {

namespace {

/// Spread the low 21 bits of x so there are two zero bits between each.
std::uint64_t spread3(std::uint64_t x) {
  x &= 0x1fffff;
  x = (x | x << 32) & 0x1f00000000ffffULL;
  x = (x | x << 16) & 0x1f0000ff0000ffULL;
  x = (x | x << 8) & 0x100f00f00f00f00fULL;
  x = (x | x << 4) & 0x10c30c30c30c30c3ULL;
  x = (x | x << 2) & 0x1249249249249249ULL;
  return x;
}

std::uint64_t quantize(float v, int depth) {
  const double clamped = std::clamp(static_cast<double>(v), 0.0,
                                    0x1.fffffep-1);
  return static_cast<std::uint64_t>(clamped *
                                    static_cast<double>(1u << depth));
}

/// Count-summing combiner (used for pr and cps; fixed 8-byte values).
void combine_counts(std::string_view, std::string_view a,
                    std::string_view b, std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

std::uint64_t level_digest(std::uint64_t code, int depth) {
  return mutil::mix64(code * 31 + static_cast<std::uint64_t>(depth));
}

mimir::KVHint hint_for(const RunOptions& opts) {
  // Morton code keys and point counts are both 8 bytes.
  return opts.hint ? mimir::KVHint::fixed(8, 8) : mimir::KVHint::variable();
}

/// Per-level accounting shared by both framework drivers.
struct LevelState {
  std::unordered_set<std::uint64_t> dense;  ///< codes dense at level d-1
  std::uint64_t local_checksum = 0;
  int levels = 0;
  std::uint64_t dense_octants = 0;
  std::uint64_t clustered_points = 0;
};

/// Record this rank's dense octants from (code, count) output KVs and
/// exchange the global dense set (every octant is owned by exactly one
/// rank, so local counts are already global).
template <typename ScanFn>
std::uint64_t collect_dense(simmpi::Context& ctx, int depth,
                            std::uint64_t threshold, const ScanFn& scan,
                            LevelState& state) {
  std::vector<std::uint64_t> local_codes;
  std::uint64_t local_points = 0;
  scan([&](const mimir::KVView& kv) {
    const std::uint64_t count = mimir::as_u64(kv.value);
    if (count < threshold) return;
    const std::uint64_t code = mimir::as_u64(kv.key);
    local_codes.push_back(code);
    local_points += count;
    state.local_checksum += level_digest(code, depth);
  });

  // Share the dense set: gather at rank 0, then broadcast.
  const auto gathered = ctx.comm.gatherv(
      0, std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(local_codes.data()),
             local_codes.size() * 8));
  std::uint64_t total_codes = gathered.data.size() / 8;
  total_codes = ctx.comm.bcast_u64(total_codes, 0);
  std::vector<std::uint64_t> all_codes(total_codes);
  if (ctx.rank() == 0 && total_codes != 0) {
    std::memcpy(all_codes.data(), gathered.data.data(), total_codes * 8);
  }
  ctx.comm.bcast(std::span<std::byte>(
                     reinterpret_cast<std::byte*>(all_codes.data()),
                     all_codes.size() * 8),
                 0);

  state.dense.clear();
  state.dense.insert(all_codes.begin(), all_codes.end());
  if (!state.dense.empty()) {
    state.levels = depth;
    state.dense_octants = state.dense.size();
    state.clustered_points =
        ctx.comm.allreduce_u64(local_points, simmpi::Op::kSum);
  }
  return state.dense.size();
}

}  // namespace

std::uint64_t octant_code(const Point& p, int depth) {
  return (spread3(quantize(p.x, depth)) << 2) |
         (spread3(quantize(p.y, depth)) << 1) |
         spread3(quantize(p.z, depth));
}

std::vector<Point> generate_points(std::uint64_t total, int rank,
                                   int nranks, std::uint64_t seed,
                                   double sigma) {
  const std::uint64_t begin = total * static_cast<std::uint64_t>(rank) /
                              static_cast<std::uint64_t>(nranks);
  const std::uint64_t end =
      total * (static_cast<std::uint64_t>(rank) + 1) /
      static_cast<std::uint64_t>(nranks);
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t i = begin; i < end; ++i) {
    // Seeded per point index so the dataset is identical for any rank
    // count (and for the serial reference).
    mutil::Xoshiro256 rng(mutil::mix64(seed * 0x9e3779b9 + i));
    Point p;
    p.x = static_cast<float>(0.5 + sigma * rng.normal());
    p.y = static_cast<float>(0.5 + sigma * rng.normal());
    p.z = static_cast<float>(0.5 + sigma * rng.normal());
    points.push_back(p);
  }
  return points;
}

Result reference(const RunOptions& opts) {
  const std::vector<Point> points =
      generate_points(opts.num_points, 0, 1, opts.seed, opts.sigma);
  const std::uint64_t threshold = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(opts.density *
                                    static_cast<double>(opts.num_points)));
  Result result;
  std::unordered_set<std::uint64_t> dense;
  for (int depth = 1; depth <= opts.max_depth; ++depth) {
    std::map<std::uint64_t, std::uint64_t> counts;
    for (const Point& p : points) {
      if (depth > 1 &&
          dense.find(octant_code(p, depth - 1)) == dense.end()) {
        continue;  // parent octant was not dense: point dropped
      }
      ++counts[octant_code(p, depth)];
    }
    dense.clear();
    std::uint64_t clustered = 0;
    for (const auto& [code, count] : counts) {
      if (count >= threshold) {
        dense.insert(code);
        clustered += count;
        result.checksum += level_digest(code, depth);
      }
    }
    if (dense.empty()) break;
    result.levels = depth;
    result.dense_octants = dense.size();
    result.clustered_points = clustered;
  }
  return result;
}

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts) {
  const std::uint64_t threshold = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(opts.density *
                                    static_cast<double>(opts.num_points)));
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  cfg.hint = hint_for(opts);
  cfg.kv_compression = opts.cps;
  cfg.prefetch = opts.prefetch;
  cfg.ooc_live_bytes = opts.ooc_live_bytes;

  // Points are application state; the MapReduce dataflow carries
  // (octant code, count) KVs. Their storage is charged to the tracker
  // like every other rank-local structure.
  const std::vector<Point> points = generate_points(
      opts.num_points, ctx.rank(), ctx.size(), opts.seed, opts.sigma);
  ctx.tracker.allocate(points.size() * sizeof(Point));

  LevelState state;
  for (int depth = 1; depth <= opts.max_depth; ++depth) {
    mimir::Job job(ctx, cfg);
    job.map_custom(
        [&](mimir::Emitter& out) {
          for (const Point& p : points) {
            if (depth > 1 && state.dense.find(octant_code(p, depth - 1)) ==
                                 state.dense.end()) {
              continue;
            }
            const std::uint64_t code = octant_code(p, depth);
            out.emit(mimir::as_view(code), std::uint64_t{1});
          }
        },
        opts.cps ? mimir::CombineFn(combine_counts) : mimir::CombineFn{});
    if (opts.pr) {
      job.partial_reduce(combine_counts);
    } else {
      job.reduce([](std::string_view key, mimir::ValueReader& values,
                    mimir::Emitter& out) {
        std::uint64_t total = 0;
        std::string_view v;
        while (values.next(v)) total += mimir::as_u64(v);
        out.emit(key, mimir::as_view(total));
      });
    }
    const std::uint64_t dense = collect_dense(
        ctx, depth, threshold,
        [&](const auto& fn) { job.output().scan(fn); }, state);
    if (dense == 0) break;
  }
  ctx.tracker.release(points.size() * sizeof(Point));

  Result result;
  result.levels = state.levels;
  result.dense_octants = state.dense_octants;
  result.clustered_points = state.clustered_points;
  result.checksum =
      ctx.comm.allreduce_u64(state.local_checksum, simmpi::Op::kSum);
  return result;
}

Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc) {
  const std::uint64_t threshold = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(opts.density *
                                    static_cast<double>(opts.num_points)));
  mrmpi::MRConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.out_of_core = ooc;
  mrmpi::MapReduce mr(ctx, cfg);

  const std::vector<Point> points = generate_points(
      opts.num_points, ctx.rank(), ctx.size(), opts.seed, opts.sigma);
  ctx.tracker.allocate(points.size() * sizeof(Point));

  LevelState state;
  for (int depth = 1; depth <= opts.max_depth; ++depth) {
    mr.map_custom([&](mimir::Emitter& out) {
      for (const Point& p : points) {
        if (depth > 1 && state.dense.find(octant_code(p, depth - 1)) ==
                             state.dense.end()) {
          continue;
        }
        const std::uint64_t code = octant_code(p, depth);
        out.emit(mimir::as_view(code), mimir::as_view(std::uint64_t{1}));
      }
    });
    if (opts.cps) mr.compress(combine_counts);
    mr.aggregate();
    mr.convert();
    mr.reduce([](std::string_view key, mimir::ValueReader& values,
                 mimir::Emitter& out) {
      std::uint64_t total = 0;
      std::string_view v;
      while (values.next(v)) total += mimir::as_u64(v);
      out.emit(key, mimir::as_view(total));
    });
    const std::uint64_t dense =
        collect_dense(ctx, depth, threshold,
                      [&](const auto& fn) { mr.scan_kv(fn); }, state);
    if (dense == 0) break;
  }
  ctx.tracker.release(points.size() * sizeof(Point));

  Result result;
  result.levels = state.levels;
  result.dense_octants = state.dense_octants;
  result.clustered_points = state.clustered_points;
  result.checksum =
      ctx.comm.allreduce_u64(state.local_checksum, simmpi::Op::kSum);
  result.spilled = ctx.comm.allreduce_lor(mr.metrics().spilled);
  return result;
}

}  // namespace apps::oc
