#include "apps/bfs.hpp"

#include <algorithm>
#include <cstring>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "apps/csr.hpp"
#include "apps/vertex_map.hpp"
#include "mutil/error.hpp"
#include "mutil/hash.hpp"
#include "mutil/random.hpp"
#include "sched/scheduler.hpp"

namespace apps::bfs {

namespace {

std::string_view id_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), 8};
}

std::uint64_t visit_digest(std::uint64_t vertex, std::uint64_t level) {
  return mutil::mix64(vertex * 31 + level);
}

/// Min-parent combiner for frontier KVs: any parent is a valid BFS tree
/// edge, so keeping the smaller one is partial-reduce invariant for the
/// level structure.
void combine_min_parent(std::string_view, std::string_view a,
                        std::string_view b, std::string& out) {
  out.assign(mimir::as_u64(a) <= mimir::as_u64(b) ? a : b);
}

/// Which rank owns a vertex — must match the shuffle's routing of the
/// vertex's 8-byte key.
int owner_of(std::uint64_t vertex, int nranks) {
  return static_cast<int>(mutil::hash_bytes(id_view(vertex)) %
                          static_cast<std::uint64_t>(nranks));
}

mimir::KVHint hint_for(bool hint) {
  return hint ? mimir::KVHint::fixed(8, 8) : mimir::KVHint::variable();
}

Result finalize(simmpi::Context& ctx, const VertexMap<std::uint64_t>& visited,
                std::uint64_t levels) {
  std::uint64_t local_checksum = 0;
  std::uint64_t max_level = 0;
  visited.for_each([&](std::uint64_t v, std::uint64_t level) {
    local_checksum += visit_digest(v, level);
    max_level = std::max(max_level, level);
  });
  Result r;
  r.visited = ctx.comm.allreduce_u64(visited.size(), simmpi::Op::kSum);
  r.levels = ctx.comm.allreduce_u64(levels, simmpi::Op::kMax);
  r.checksum = ctx.comm.allreduce_u64(local_checksum, simmpi::Op::kSum);
  return r;
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> kronecker_edge(int scale,
                                                       std::uint64_t seed,
                                                       std::uint64_t index) {
  // R-MAT with A=0.57, B=0.19, C=0.19, D=0.05 (Graph500 parameters).
  mutil::Xoshiro256 rng(mutil::mix64(seed * 0x2545f491 + index));
  std::uint64_t u = 0, v = 0;
  for (int bit = 0; bit < scale; ++bit) {
    const double r = rng.uniform();
    u <<= 1;
    v <<= 1;
    if (r < 0.57) {
      // quadrant A: (0, 0)
    } else if (r < 0.76) {
      v |= 1;  // B: (0, 1)
    } else if (r < 0.95) {
      u |= 1;  // C: (1, 0)
    } else {
      u |= 1;  // D: (1, 1)
      v |= 1;
    }
  }
  return {u, v};
}

Result reference(const RunOptions& opts) {
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> adj;
  for (std::uint64_t e = 0; e < opts.num_edges(); ++e) {
    const auto [u, v] = kronecker_edge(opts.scale, opts.seed, e);
    adj[u].push_back(v);
    adj[v].push_back(u);
  }
  std::unordered_map<std::uint64_t, std::uint64_t> level;
  std::deque<std::uint64_t> queue;
  const std::uint64_t root = opts.root();
  level[root] = 0;
  queue.push_back(root);
  std::uint64_t max_level = 0;
  while (!queue.empty()) {
    const std::uint64_t v = queue.front();
    queue.pop_front();
    for (const std::uint64_t n : adj[v]) {
      if (level.emplace(n, level[v] + 1).second) {
        max_level = std::max(max_level, level[v] + 1);
        queue.push_back(n);
      }
    }
  }
  Result r;
  r.visited = level.size();
  r.levels = max_level;
  for (const auto& [v, l] : level) r.checksum += visit_digest(v, l);
  return r;
}

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts) {
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  cfg.hint = hint_for(opts.hint);

  // Phase 1: graph partitioning (map-only job; both edge directions).
  // KV compression applies only to the traversal phase (paper §IV-C:
  // "compression reduces the size of data only during the graph
  // traversal phase, while the peak memory usage occurs in the graph
  // partitioning phase, which remains unaffected").
  mimir::Job partition(ctx, cfg);
  partition.map_custom([&](mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const auto p = static_cast<std::uint64_t>(ctx.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = kronecker_edge(opts.scale, opts.seed, e);
      out.emit(id_view(u), id_view(v));
      out.emit(id_view(v), id_view(u));
    }
  });

  Csr csr(ctx.tracker);
  {
    mimir::KVContainer edges = partition.take_intermediate();
    csr.build([&](const auto& fn) { edges.scan(fn); });
    // edges freed here; the CSR keeps the adjacency.
  }

  // Phase 2: traversal. Frontier KVs are (vertex, parent); the
  // min-parent combiner keeps values at 8 bytes.
  cfg.kv_compression = opts.cps;
  VertexMap<std::uint64_t> visited(ctx.tracker);
  mimir::KVContainer frontier(ctx.tracker, cfg.page_size, cfg.hint);
  const std::uint64_t root = opts.root();
  if (owner_of(root, ctx.size()) == ctx.rank()) {
    frontier.append(id_view(root), id_view(root));
  }

  std::uint64_t level = 0;
  std::uint64_t levels_with_visits = 0;
  while (ctx.comm.allreduce_u64(frontier.num_kvs(), simmpi::Op::kSum) != 0) {
    std::uint64_t new_visits = 0;
    mimir::Job step(ctx, cfg);
    step.map_kvs(
        std::move(frontier),
        [&](std::string_view key, std::string_view, mimir::Emitter& out) {
          const std::uint64_t v = mimir::as_u64(key);
          if (!visited.insert_if_absent(v, level)) return;
          ++new_visits;
          for (const std::uint64_t n : csr.neighbors_of(v)) {
            out.emit(id_view(n), id_view(v));
          }
        },
        opts.cps ? mimir::CombineFn(combine_min_parent)
                 : mimir::CombineFn{});
    frontier = step.take_intermediate();
    if (ctx.comm.allreduce_u64(new_visits, simmpi::Op::kSum) != 0) {
      levels_with_visits = level;
    }
    ++level;
  }
  return finalize(ctx, visited, levels_with_visits);
}

Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc) {
  mrmpi::MRConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.out_of_core = ooc;
  mrmpi::MapReduce mr(ctx, cfg);

  // Phase 1: partition.
  mr.map_custom([&](mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const auto p = static_cast<std::uint64_t>(ctx.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = kronecker_edge(opts.scale, opts.seed, e);
      out.emit(id_view(u), id_view(v));
      out.emit(id_view(v), id_view(u));
    }
  });
  mr.aggregate();

  Csr csr(ctx.tracker);
  csr.build([&](const auto& fn) { mr.scan_kv(fn); });

  // Phase 2: traversal; the MR KV store carries the frontier.
  VertexMap<std::uint64_t> visited(ctx.tracker);
  const std::uint64_t root = opts.root();
  mr.map_custom([&](mimir::Emitter& out) {
    if (owner_of(root, ctx.size()) == ctx.rank()) {
      out.emit(id_view(root), id_view(root));
    }
  });

  std::uint64_t level = 0;
  std::uint64_t levels_with_visits = 0;
  for (;;) {
    std::uint64_t new_visits = 0;
    std::uint64_t emitted = 0;
    mr.map_kv([&](std::string_view key, std::string_view,
                  mimir::Emitter& out) {
      const std::uint64_t v = mimir::as_u64(key);
      if (!visited.insert_if_absent(v, level)) return;
      ++new_visits;
      for (const std::uint64_t n : csr.neighbors_of(v)) {
        out.emit(id_view(n), id_view(v));
        ++emitted;
      }
    });
    if (ctx.comm.allreduce_u64(new_visits, simmpi::Op::kSum) != 0) {
      levels_with_visits = level;
    }
    ++level;
    if (ctx.comm.allreduce_u64(emitted, simmpi::Op::kSum) == 0) break;
    // Compression applies to the traversal exchange only.
    if (opts.cps) mr.compress(combine_min_parent);
    mr.aggregate();  // route the next frontier to its owners
  }
  Result r = finalize(ctx, visited, levels_with_visits);
  r.spilled = ctx.comm.allreduce_lor(mr.metrics().spilled);
  return r;
}

// --- dataflow-scheduler driver -------------------------------------------

namespace {

/// Rank-local traversal state threaded through the graph's node hooks.
struct BfsState {
  explicit BfsState(simmpi::Context& ctx)
      : csr(ctx.tracker), visited(ctx.tracker) {}

  Csr csr;
  VertexMap<std::uint64_t> visited;
  std::uint64_t level = 0;
  std::uint64_t levels_with_visits = 0;
  std::uint64_t new_visits = 0;
  bool done = false;  ///< the global frontier drained — skip the rest
};

BfsState* bfs_state(sched::NodeCtx& nctx) {
  return static_cast<BfsState*>(nctx.state);
}

/// Claim `v` at the current level and emit its neighbours as the next
/// frontier — the loop body of run_mimir's map_kvs.
void visit(BfsState& st, std::uint64_t v, mimir::Emitter& out) {
  if (!st.visited.insert_if_absent(v, st.level)) return;
  ++st.new_visits;
  for (const std::uint64_t n : st.csr.neighbors_of(v)) {
    out.emit(id_view(n), id_view(v));
  }
}

}  // namespace

SchedRun make_sched(const RunOptions& opts, int nranks) {
  if (opts.sched_max_levels < 1) {
    throw mutil::UsageError("bfs: sched_max_levels must be >= 1");
  }
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  cfg.hint = hint_for(opts.hint);
  mimir::JobConfig traversal_cfg = cfg;
  traversal_cfg.kv_compression = opts.cps;
  const mimir::CombineFn combiner = opts.cps
                                        ? mimir::CombineFn(combine_min_parent)
                                        : mimir::CombineFn{};

  SchedRun run;
  run.results = std::make_shared<std::vector<Result>>(nranks);

  sched::JobNode partition;
  partition.name = "bfs-partition";
  partition.config = cfg;
  partition.producer = [opts](sched::NodeCtx& nctx, mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(nctx.exec.rank());
    const auto p = static_cast<std::uint64_t>(nctx.exec.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = kronecker_edge(opts.scale, opts.seed, e);
      out.emit(id_view(u), id_view(v));
      out.emit(id_view(v), id_view(u));
    }
  };
  partition.consume = [](sched::NodeCtx& nctx, mimir::KVContainer& out) {
    bfs_state(nctx)->csr.build([&](const auto& fn) { out.scan(fn); });
  };
  int prev = run.graph.add(std::move(partition));

  // The frontier's emptiness check and the new-visit count land in each
  // node's consume hook, so the collective sequence (and thus the
  // simulated clock) is exactly the manual loop's: check, map, count,
  // check, map, count, ... — the next level's check is merely computed
  // one hook early and carried in BfsState::done.
  const auto consume = [](sched::NodeCtx& nctx, mimir::KVContainer& out) {
    BfsState* st = bfs_state(nctx);
    if (nctx.exec.comm.allreduce_u64(st->new_visits, simmpi::Op::kSum) !=
        0) {
      st->levels_with_visits = st->level;
    }
    ++st->level;
    st->done =
        nctx.exec.comm.allreduce_u64(out.num_kvs(), simmpi::Op::kSum) == 0;
    st->new_visits = 0;
  };

  // Level 0 seeds the frontier itself: the loop-top emptiness check and
  // the map-input cost of the manual code's one seeded (root, root) KV
  // are replayed explicitly so the clocks stay identical.
  sched::JobNode level0;
  level0.name = "bfs-level0";
  level0.config = traversal_cfg;
  level0.combiner = combiner;
  level0.producer = [opts](sched::NodeCtx& nctx, mimir::Emitter& out) {
    BfsState* st = bfs_state(nctx);
    const std::uint64_t root = opts.root();
    const bool owner =
        owner_of(root, nctx.exec.size()) == nctx.exec.rank();
    nctx.exec.comm.allreduce_u64(owner ? 1 : 0, simmpi::Op::kSum);
    if (!owner) return;
    nctx.exec.clock().advance(16.0 / nctx.exec.machine.map_rate);
    visit(*st, root, out);
  };
  level0.consume = consume;
  {
    const int id = run.graph.add(std::move(level0));
    run.graph.add_order(prev, id);
    prev = id;
  }

  for (int l = 1; l < opts.sched_max_levels; ++l) {
    sched::JobNode step;
    step.name = "bfs-level" + std::to_string(l);
    step.config = traversal_cfg;
    step.combiner = combiner;
    step.skip = [](sched::NodeCtx& nctx) { return bfs_state(nctx)->done; };
    step.kv_map = [](sched::NodeCtx& nctx, std::string_view key,
                     std::string_view, mimir::Emitter& out) {
      visit(*bfs_state(nctx), mimir::as_u64(key), out);
    };
    step.consume = consume;
    const int id = run.graph.add(std::move(step));
    run.graph.add_edge(prev, id);
    prev = id;
  }

  run.options.make_state = [](simmpi::Context& ctx) {
    return std::static_pointer_cast<void>(std::make_shared<BfsState>(ctx));
  };
  auto results = run.results;
  run.options.epilogue = [results](sched::NodeCtx& nctx) {
    BfsState* st = bfs_state(nctx);
    if (!st->done) {
      throw mutil::UsageError(
          "bfs: sched_max_levels too small for the BFS depth");
    }
    (*results)[nctx.world_rank] =
        finalize(nctx.exec, st->visited, st->levels_with_visits);
  };
  return run;
}

Result run_sched(int nranks, const simtime::MachineProfile& machine,
                 pfs::FileSystem& fs, const RunOptions& opts) {
  SchedRun run = make_sched(opts, nranks);
  sched::run_graph(nranks, machine, fs, run.graph, run.options);
  return run.results->front();
}

}  // namespace apps::bfs
