#include "apps/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/bfs.hpp"  // kronecker_edge
#include "apps/csr.hpp"
#include "apps/vertex_map.hpp"
#include "mutil/hash.hpp"

namespace apps::pr {

namespace {

std::string_view id_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), 8};
}

int owner_of(std::uint64_t vertex, int nranks) {
  return static_cast<int>(mutil::hash_bytes(id_view(vertex)) %
                          static_cast<std::uint64_t>(nranks));
}

void combine_sum(std::string_view, std::string_view a, std::string_view b,
                 std::string& out) {
  out.assign(mimir::as_view(mimir::as_f64(a) + mimir::as_f64(b)));
}

mimir::KVHint hint_for(bool hint) {
  return hint ? mimir::KVHint::fixed(8, 8) : mimir::KVHint::variable();
}

/// This rank's owned vertices, in increasing id order.
std::vector<std::uint64_t> owned_vertices(std::uint64_t n, int rank,
                                          int nranks) {
  std::vector<std::uint64_t> mine;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (owner_of(v, nranks) == rank) mine.push_back(v);
  }
  return mine;
}

/// Shared per-iteration state update; returns the L1 delta contribution.
double apply_update(const std::vector<std::uint64_t>& owned,
                    const VertexMap<double>& contributions,
                    const Csr& out_edges, double dangling_per_vertex,
                    double base, double damping,
                    VertexMap<double>& ranks, double* dangling_out) {
  double delta = 0;
  double next_dangling = 0;
  for (const std::uint64_t v : owned) {
    const double contrib = contributions.find(v).value_or(0.0);
    const double updated =
        base + damping * (contrib + dangling_per_vertex);
    delta += std::abs(updated - ranks.find(v).value_or(0.0));
    ranks.put(v, updated);
    if (out_edges.degree_of(v) == 0) next_dangling += updated;
  }
  *dangling_out = next_dangling;
  return delta;
}

}  // namespace

std::unordered_map<std::uint64_t, double> reference_ranks(
    const RunOptions& opts) {
  const std::uint64_t n = opts.num_vertices();
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> adj;
  for (std::uint64_t e = 0; e < opts.num_edges(); ++e) {
    const auto [u, v] = bfs::kronecker_edge(opts.scale, opts.seed, e);
    adj[u].push_back(v);
  }
  std::unordered_map<std::uint64_t, double> ranks;
  for (std::uint64_t v = 0; v < n; ++v) {
    ranks[v] = 1.0 / static_cast<double>(n);
  }
  const double base = (1.0 - opts.damping) / static_cast<double>(n);
  for (int it = 0; it < opts.iterations; ++it) {
    std::unordered_map<std::uint64_t, double> contrib;
    double dangling = 0;
    for (const auto& [v, r] : ranks) {
      const auto neighbors = adj.find(v);
      if (neighbors == adj.end() || neighbors->second.empty()) {
        dangling += r;
        continue;
      }
      const double share =
          r / static_cast<double>(neighbors->second.size());
      for (const std::uint64_t t : neighbors->second) contrib[t] += share;
    }
    const double dangling_per_vertex = dangling / static_cast<double>(n);
    for (auto& [v, r] : ranks) {
      double c = 0;
      const auto it2 = contrib.find(v);
      if (it2 != contrib.end()) c = it2->second;
      r = base + opts.damping * (c + dangling_per_vertex);
    }
  }
  return ranks;
}

Result reference(const RunOptions& opts) {
  const auto ranks = reference_ranks(opts);
  Result result;
  for (const auto& [v, r] : ranks) {
    result.total_rank += r;
    if (r > result.max_rank) {
      result.max_rank = r;
      result.max_vertex = v;
    }
  }
  return result;
}

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts) {
  const std::uint64_t n = opts.num_vertices();
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  cfg.hint = hint_for(opts.hint);
  cfg.kv_compression = opts.cps;

  // Partition phase: route each directed edge to its source's owner.
  // Compression applies to the per-iteration contribution exchange, not
  // here (adjacency needs every edge).
  mimir::JobConfig partition_cfg = cfg;
  partition_cfg.kv_compression = false;
  mimir::Job partition(ctx, partition_cfg);
  partition.map_custom([&](mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const auto p = static_cast<std::uint64_t>(ctx.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = bfs::kronecker_edge(opts.scale, opts.seed, e);
      out.emit(id_view(u), id_view(v));
    }
  });
  Csr out_edges(ctx.tracker);
  {
    mimir::KVContainer edges = partition.take_intermediate();
    out_edges.build([&](const auto& fn) { edges.scan(fn); });
  }

  const std::vector<std::uint64_t> owned =
      owned_vertices(n, ctx.rank(), ctx.size());
  ctx.tracker.allocate(owned.size() * 8);
  VertexMap<double> ranks(ctx.tracker);
  double dangling_local = 0;
  for (const std::uint64_t v : owned) {
    ranks.put(v, 1.0 / static_cast<double>(n));
    if (out_edges.degree_of(v) == 0) {
      dangling_local += 1.0 / static_cast<double>(n);
    }
  }
  const double base = (1.0 - opts.damping) / static_cast<double>(n);

  Result result;
  for (int it = 0; it < opts.iterations; ++it) {
    const double dangling =
        ctx.comm.allreduce_f64(dangling_local, simmpi::Op::kSum);
    mimir::Job step(ctx, cfg);
    step.map_custom(
        [&](mimir::Emitter& out) {
          for (const std::uint64_t v : owned) {
            const auto neighbors = out_edges.neighbors_of(v);
            if (neighbors.empty()) continue;
            const double share = ranks.find(v).value_or(0.0) /
                                 static_cast<double>(neighbors.size());
            for (const std::uint64_t t : neighbors) {
              out.emit(id_view(t), mimir::as_view(share));
            }
          }
        },
        opts.cps ? mimir::CombineFn(combine_sum) : mimir::CombineFn{});
    step.partial_reduce(combine_sum);

    VertexMap<double> contributions(ctx.tracker);
    step.output().scan([&](const mimir::KVView& kv) {
      contributions.put(mimir::as_u64(kv.key), mimir::as_f64(kv.value));
    });
    const double local_delta = apply_update(
        owned, contributions, out_edges, dangling / static_cast<double>(n),
        base, opts.damping, ranks, &dangling_local);
    result.last_delta =
        ctx.comm.allreduce_f64(local_delta, simmpi::Op::kSum);
  }

  double local_total = 0, local_max = 0;
  std::uint64_t local_argmax = 0;
  ranks.for_each([&](std::uint64_t v, double r) {
    local_total += r;
    if (r > local_max) {
      local_max = r;
      local_argmax = v;
    }
  });
  result.total_rank =
      ctx.comm.allreduce_f64(local_total, simmpi::Op::kSum);
  result.max_rank = ctx.comm.allreduce_f64(local_max, simmpi::Op::kMax);
  result.max_vertex = ctx.comm.allreduce_u64(
      local_max == result.max_rank ? local_argmax : 0, simmpi::Op::kMax);
  ctx.tracker.release(owned.size() * 8);
  return result;
}

Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc) {
  const std::uint64_t n = opts.num_vertices();
  mrmpi::MRConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.out_of_core = ooc;
  mrmpi::MapReduce mr(ctx, cfg);

  mr.map_custom([&](mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const auto p = static_cast<std::uint64_t>(ctx.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = bfs::kronecker_edge(opts.scale, opts.seed, e);
      out.emit(id_view(u), id_view(v));
    }
  });
  mr.aggregate();
  Csr out_edges(ctx.tracker);
  out_edges.build([&](const auto& fn) { mr.scan_kv(fn); });

  const std::vector<std::uint64_t> owned =
      owned_vertices(n, ctx.rank(), ctx.size());
  ctx.tracker.allocate(owned.size() * 8);
  VertexMap<double> ranks(ctx.tracker);
  double dangling_local = 0;
  for (const std::uint64_t v : owned) {
    ranks.put(v, 1.0 / static_cast<double>(n));
    if (out_edges.degree_of(v) == 0) {
      dangling_local += 1.0 / static_cast<double>(n);
    }
  }
  const double base = (1.0 - opts.damping) / static_cast<double>(n);

  Result result;
  for (int it = 0; it < opts.iterations; ++it) {
    const double dangling =
        ctx.comm.allreduce_f64(dangling_local, simmpi::Op::kSum);
    mr.map_custom([&](mimir::Emitter& out) {
      for (const std::uint64_t v : owned) {
        const auto neighbors = out_edges.neighbors_of(v);
        if (neighbors.empty()) continue;
        const double share = ranks.find(v).value_or(0.0) /
                             static_cast<double>(neighbors.size());
        for (const std::uint64_t t : neighbors) {
          out.emit(id_view(t), mimir::as_view(share));
        }
      }
    });
    if (opts.cps) mr.compress(combine_sum);
    mr.aggregate();
    mr.convert();
    mr.reduce([](std::string_view key, mimir::ValueReader& values,
                 mimir::Emitter& out) {
      double total = 0;
      std::string_view v;
      while (values.next(v)) total += mimir::as_f64(v);
      out.emit(key, mimir::as_view(total));
    });

    VertexMap<double> contributions(ctx.tracker);
    mr.scan_kv([&](const mimir::KVView& kv) {
      contributions.put(mimir::as_u64(kv.key), mimir::as_f64(kv.value));
    });
    const double local_delta = apply_update(
        owned, contributions, out_edges, dangling / static_cast<double>(n),
        base, opts.damping, ranks, &dangling_local);
    result.last_delta =
        ctx.comm.allreduce_f64(local_delta, simmpi::Op::kSum);
  }

  double local_total = 0, local_max = 0;
  std::uint64_t local_argmax = 0;
  ranks.for_each([&](std::uint64_t v, double r) {
    local_total += r;
    if (r > local_max) {
      local_max = r;
      local_argmax = v;
    }
  });
  result.total_rank =
      ctx.comm.allreduce_f64(local_total, simmpi::Op::kSum);
  result.max_rank = ctx.comm.allreduce_f64(local_max, simmpi::Op::kMax);
  result.max_vertex = ctx.comm.allreduce_u64(
      local_max == result.max_rank ? local_argmax : 0, simmpi::Op::kMax);
  result.spilled = ctx.comm.allreduce_lor(mr.metrics().spilled);
  ctx.tracker.release(owned.size() * 8);
  return result;
}

}  // namespace apps::pr
