#include "apps/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "apps/bfs.hpp"  // kronecker_edge
#include "apps/csr.hpp"
#include "apps/vertex_map.hpp"
#include "mutil/error.hpp"
#include "mutil/hash.hpp"
#include "sched/scheduler.hpp"

namespace apps::pr {

namespace {

std::string_view id_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), 8};
}

int owner_of(std::uint64_t vertex, int nranks) {
  return static_cast<int>(mutil::hash_bytes(id_view(vertex)) %
                          static_cast<std::uint64_t>(nranks));
}

void combine_sum(std::string_view, std::string_view a, std::string_view b,
                 std::string& out) {
  out.assign(mimir::as_view(mimir::as_f64(a) + mimir::as_f64(b)));
}

mimir::KVHint hint_for(bool hint) {
  return hint ? mimir::KVHint::fixed(8, 8) : mimir::KVHint::variable();
}

/// This rank's owned vertices, in increasing id order.
std::vector<std::uint64_t> owned_vertices(std::uint64_t n, int rank,
                                          int nranks) {
  std::vector<std::uint64_t> mine;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (owner_of(v, nranks) == rank) mine.push_back(v);
  }
  return mine;
}

/// Shared per-iteration state update; returns the L1 delta contribution.
double apply_update(const std::vector<std::uint64_t>& owned,
                    const VertexMap<double>& contributions,
                    const Csr& out_edges, double dangling_per_vertex,
                    double base, double damping,
                    VertexMap<double>& ranks, double* dangling_out) {
  double delta = 0;
  double next_dangling = 0;
  for (const std::uint64_t v : owned) {
    const double contrib = contributions.find(v).value_or(0.0);
    const double updated =
        base + damping * (contrib + dangling_per_vertex);
    delta += std::abs(updated - ranks.find(v).value_or(0.0));
    ranks.put(v, updated);
    if (out_edges.degree_of(v) == 0) next_dangling += updated;
  }
  *dangling_out = next_dangling;
  return delta;
}

// --- downstream top-k job ------------------------------------------------
//
// Every contribution KV of the final iteration is re-keyed to a single
// well-known key whose value is a packed, sorted, k-truncated list of
// (contribution, vertex) entries; the partial-reduce combiner merges two
// lists. The merged list ends up on the key's hash-owner rank.

constexpr std::uint64_t kTopKey = 0;

std::string pack_topk(const std::vector<TopKEntry>& entries) {
  std::string out;
  out.reserve(entries.size() * 16);
  for (const TopKEntry& e : entries) {
    out.append(reinterpret_cast<const char*>(&e.contribution), 8);
    out.append(reinterpret_cast<const char*>(&e.vertex), 8);
  }
  return out;
}

std::vector<TopKEntry> unpack_topk(std::string_view v) {
  std::vector<TopKEntry> entries(v.size() / 16);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::memcpy(&entries[i].contribution, v.data() + i * 16, 8);
    std::memcpy(&entries[i].vertex, v.data() + i * 16 + 8, 8);
  }
  return entries;
}

/// Highest contribution first; ties broken by smaller vertex id so the
/// merge is a deterministic function of the entry *set*.
bool topk_before(const TopKEntry& a, const TopKEntry& b) {
  if (a.contribution != b.contribution) {
    return a.contribution > b.contribution;
  }
  return a.vertex < b.vertex;
}

mimir::CombineFn topk_combiner(int k) {
  return [k](std::string_view, std::string_view a, std::string_view b,
             std::string& out) {
    std::vector<TopKEntry> merged = unpack_topk(a);
    const std::vector<TopKEntry> other = unpack_topk(b);
    merged.insert(merged.end(), other.begin(), other.end());
    std::sort(merged.begin(), merged.end(), topk_before);
    if (merged.size() > static_cast<std::size_t>(k)) {
      merged.resize(static_cast<std::size_t>(k));
    }
    out.assign(pack_topk(merged));
  };
}

/// Edge `e` of the run's graph: the external edge list when one is
/// supplied (bench power-law graphs), the Kronecker generator otherwise.
std::pair<std::uint64_t, std::uint64_t> edge_of(const RunOptions& opts,
                                                std::uint64_t e) {
  if (opts.edges != nullptr) return (*opts.edges)[e];
  return bfs::kronecker_edge(opts.scale, opts.seed, e);
}

mimir::JobConfig topk_config(const RunOptions& opts) {
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  cfg.hint = mimir::KVHint{8, mimir::KVHint::kVariable};
  return cfg;
}

void topk_map_kv(std::string_view key, std::string_view value,
                 mimir::Emitter& out) {
  const TopKEntry entry{mimir::as_f64(value), mimir::as_u64(key)};
  out.emit(id_view(kTopKey), pack_topk({entry}));
}

}  // namespace

std::unordered_map<std::uint64_t, double> reference_ranks(
    const RunOptions& opts) {
  const std::uint64_t n = opts.num_vertices();
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> adj;
  for (std::uint64_t e = 0; e < opts.num_edges(); ++e) {
    const auto [u, v] = edge_of(opts, e);
    adj[u].push_back(v);
  }
  std::unordered_map<std::uint64_t, double> ranks;
  for (std::uint64_t v = 0; v < n; ++v) {
    ranks[v] = 1.0 / static_cast<double>(n);
  }
  const double base = (1.0 - opts.damping) / static_cast<double>(n);
  for (int it = 0; it < opts.iterations; ++it) {
    std::unordered_map<std::uint64_t, double> contrib;
    double dangling = 0;
    for (const auto& [v, r] : ranks) {
      const auto neighbors = adj.find(v);
      if (neighbors == adj.end() || neighbors->second.empty()) {
        dangling += r;
        continue;
      }
      const double share =
          r / static_cast<double>(neighbors->second.size());
      for (const std::uint64_t t : neighbors->second) contrib[t] += share;
    }
    const double dangling_per_vertex = dangling / static_cast<double>(n);
    for (auto& [v, r] : ranks) {
      double c = 0;
      const auto it2 = contrib.find(v);
      if (it2 != contrib.end()) c = it2->second;
      r = base + opts.damping * (c + dangling_per_vertex);
    }
  }
  return ranks;
}

Result reference(const RunOptions& opts) {
  const auto ranks = reference_ranks(opts);
  Result result;
  for (const auto& [v, r] : ranks) {
    result.total_rank += r;
    if (r > result.max_rank) {
      result.max_rank = r;
      result.max_vertex = v;
    }
  }
  return result;
}

static Result run_mimir_impl(simmpi::Context& ctx, const RunOptions& opts,
                             int k, std::vector<TopKEntry>* top) {
  const std::uint64_t n = opts.num_vertices();
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  cfg.hint = hint_for(opts.hint);
  cfg.kv_compression = opts.cps;
  cfg.overlap = opts.overlap;
  // Balance applies to the per-iteration contribution shuffles, where
  // high-in-degree vertices concentrate received bytes. The merge pass
  // re-homes planned keys, so the owner_of() placement the consume side
  // relies on is preserved.
  cfg.balance.enabled = opts.balance;

  // Partition phase: route each directed edge to its source's owner.
  // Compression applies to the per-iteration contribution exchange, not
  // here (adjacency needs every edge). Balance is off too: the edge
  // list is shuffled exactly once, so a merge pass could only add cost.
  mimir::JobConfig partition_cfg = cfg;
  partition_cfg.kv_compression = false;
  partition_cfg.balance.enabled = false;
  mimir::Job partition(ctx, partition_cfg);
  partition.map_custom([&](mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const auto p = static_cast<std::uint64_t>(ctx.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = edge_of(opts, e);
      out.emit(id_view(u), id_view(v));
    }
  });
  Csr out_edges(ctx.tracker);
  {
    mimir::KVContainer edges = partition.take_intermediate();
    out_edges.build([&](const auto& fn) { edges.scan(fn); });
  }

  const std::vector<std::uint64_t> owned =
      owned_vertices(n, ctx.rank(), ctx.size());
  ctx.tracker.allocate(owned.size() * 8);
  VertexMap<double> ranks(ctx.tracker);
  double dangling_local = 0;
  for (const std::uint64_t v : owned) {
    ranks.put(v, 1.0 / static_cast<double>(n));
    if (out_edges.degree_of(v) == 0) {
      dangling_local += 1.0 / static_cast<double>(n);
    }
  }
  const double base = (1.0 - opts.damping) / static_cast<double>(n);

  Result result;
  std::optional<mimir::KVContainer> final_out;
  for (int it = 0; it < opts.iterations; ++it) {
    const double dangling =
        ctx.comm.allreduce_f64(dangling_local, simmpi::Op::kSum);
    mimir::Job step(ctx, cfg);
    step.map_custom(
        [&](mimir::Emitter& out) {
          for (const std::uint64_t v : owned) {
            const auto neighbors = out_edges.neighbors_of(v);
            if (neighbors.empty()) continue;
            const double share = ranks.find(v).value_or(0.0) /
                                 static_cast<double>(neighbors.size());
            for (const std::uint64_t t : neighbors) {
              out.emit(id_view(t), mimir::as_view(share));
            }
          }
        },
        // Handed over when balance is on too (unused during the map
        // without cps): the merge pass sums each split rank's share of
        // a hot vertex locally before re-homing it.
        opts.cps || opts.balance ? mimir::CombineFn(combine_sum)
                                 : mimir::CombineFn{});
    step.partial_reduce(combine_sum);

    VertexMap<double> contributions(ctx.tracker);
    step.output().scan([&](const mimir::KVView& kv) {
      contributions.put(mimir::as_u64(kv.key), mimir::as_f64(kv.value));
    });
    const double local_delta = apply_update(
        owned, contributions, out_edges, dangling / static_cast<double>(n),
        base, opts.damping, ranks, &dangling_local);
    result.last_delta =
        ctx.comm.allreduce_f64(local_delta, simmpi::Op::kSum);
    if (k > 0 && it + 1 == opts.iterations) {
      final_out = step.take_output();
    }
  }

  // Downstream top-k: a second job chained on the final iteration's
  // output container — the same data handoff the scheduler performs
  // over a data edge.
  if (k > 0) {
    mimir::Job topk(ctx, topk_config(opts));
    topk.map_kvs(std::move(*final_out), topk_map_kv);
    topk.partial_reduce(topk_combiner(k));
    top->clear();
    topk.output().scan([&](const mimir::KVView& kv) {
      const auto entries = unpack_topk(kv.value);
      top->insert(top->end(), entries.begin(), entries.end());
    });
  }

  double local_total = 0, local_max = 0;
  std::uint64_t local_argmax = 0;
  ranks.for_each([&](std::uint64_t v, double r) {
    local_total += r;
    if (r > local_max) {
      local_max = r;
      local_argmax = v;
    }
  });
  result.total_rank =
      ctx.comm.allreduce_f64(local_total, simmpi::Op::kSum);
  result.max_rank = ctx.comm.allreduce_f64(local_max, simmpi::Op::kMax);
  result.max_vertex = ctx.comm.allreduce_u64(
      local_max == result.max_rank ? local_argmax : 0, simmpi::Op::kMax);
  ctx.tracker.release(owned.size() * 8);
  return result;
}

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts) {
  return run_mimir_impl(ctx, opts, 0, nullptr);
}

Result run_mimir_topk(simmpi::Context& ctx, const RunOptions& opts, int k,
                      std::vector<TopKEntry>* top) {
  if (k < 1) throw mutil::UsageError("pagerank: top-k needs k >= 1");
  if (opts.iterations < 1) {
    throw mutil::UsageError("pagerank: top-k needs at least one iteration");
  }
  return run_mimir_impl(ctx, opts, k, top);
}

Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc) {
  const std::uint64_t n = opts.num_vertices();
  mrmpi::MRConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.out_of_core = ooc;
  mrmpi::MapReduce mr(ctx, cfg);

  mr.map_custom([&](mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(ctx.rank());
    const auto p = static_cast<std::uint64_t>(ctx.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = edge_of(opts, e);
      out.emit(id_view(u), id_view(v));
    }
  });
  mr.aggregate();
  Csr out_edges(ctx.tracker);
  out_edges.build([&](const auto& fn) { mr.scan_kv(fn); });

  const std::vector<std::uint64_t> owned =
      owned_vertices(n, ctx.rank(), ctx.size());
  ctx.tracker.allocate(owned.size() * 8);
  VertexMap<double> ranks(ctx.tracker);
  double dangling_local = 0;
  for (const std::uint64_t v : owned) {
    ranks.put(v, 1.0 / static_cast<double>(n));
    if (out_edges.degree_of(v) == 0) {
      dangling_local += 1.0 / static_cast<double>(n);
    }
  }
  const double base = (1.0 - opts.damping) / static_cast<double>(n);

  Result result;
  for (int it = 0; it < opts.iterations; ++it) {
    const double dangling =
        ctx.comm.allreduce_f64(dangling_local, simmpi::Op::kSum);
    mr.map_custom([&](mimir::Emitter& out) {
      for (const std::uint64_t v : owned) {
        const auto neighbors = out_edges.neighbors_of(v);
        if (neighbors.empty()) continue;
        const double share = ranks.find(v).value_or(0.0) /
                             static_cast<double>(neighbors.size());
        for (const std::uint64_t t : neighbors) {
          out.emit(id_view(t), mimir::as_view(share));
        }
      }
    });
    if (opts.cps) mr.compress(combine_sum);
    mr.aggregate();
    mr.convert();
    mr.reduce([](std::string_view key, mimir::ValueReader& values,
                 mimir::Emitter& out) {
      double total = 0;
      std::string_view v;
      while (values.next(v)) total += mimir::as_f64(v);
      out.emit(key, mimir::as_view(total));
    });

    VertexMap<double> contributions(ctx.tracker);
    mr.scan_kv([&](const mimir::KVView& kv) {
      contributions.put(mimir::as_u64(kv.key), mimir::as_f64(kv.value));
    });
    const double local_delta = apply_update(
        owned, contributions, out_edges, dangling / static_cast<double>(n),
        base, opts.damping, ranks, &dangling_local);
    result.last_delta =
        ctx.comm.allreduce_f64(local_delta, simmpi::Op::kSum);
  }

  double local_total = 0, local_max = 0;
  std::uint64_t local_argmax = 0;
  ranks.for_each([&](std::uint64_t v, double r) {
    local_total += r;
    if (r > local_max) {
      local_max = r;
      local_argmax = v;
    }
  });
  result.total_rank =
      ctx.comm.allreduce_f64(local_total, simmpi::Op::kSum);
  result.max_rank = ctx.comm.allreduce_f64(local_max, simmpi::Op::kMax);
  result.max_vertex = ctx.comm.allreduce_u64(
      local_max == result.max_rank ? local_argmax : 0, simmpi::Op::kMax);
  result.spilled = ctx.comm.allreduce_lor(mr.metrics().spilled);
  ctx.tracker.release(owned.size() * 8);
  return result;
}

// --- dataflow-scheduler driver -------------------------------------------

namespace {

/// Rank-local session state threaded through the graph's node hooks;
/// rebuilt from node outputs on every attempt, so recovery resumes can
/// reconstruct it by replaying consume hooks on reloaded checkpoints.
struct PrState {
  explicit PrState(simmpi::Context& ctx)
      : out_edges(ctx.tracker), ranks(ctx.tracker) {}

  Csr out_edges;
  std::vector<std::uint64_t> owned;
  VertexMap<double> ranks;
  double dangling_local = 0;
  double dangling = 0;  ///< global dangling mass of the current iteration
  double base = 0;
  Result result;
  std::vector<TopKEntry> top;
};

PrState* pr_state(sched::NodeCtx& nctx) {
  return static_cast<PrState*>(nctx.state);
}

}  // namespace

SchedRun make_sched(const RunOptions& opts, int nranks, int top_k) {
  if (top_k > 0 && opts.iterations < 1) {
    throw mutil::UsageError("pagerank: top-k needs at least one iteration");
  }
  const std::uint64_t n = opts.num_vertices();
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  cfg.hint = hint_for(opts.hint);
  cfg.kv_compression = opts.cps;
  cfg.overlap = opts.overlap;
  cfg.balance.enabled = opts.balance;
  mimir::JobConfig partition_cfg = cfg;
  partition_cfg.kv_compression = false;
  partition_cfg.balance.enabled = false;

  SchedRun run;
  run.results = std::make_shared<std::vector<Result>>(nranks);
  run.tops = std::make_shared<std::vector<std::vector<TopKEntry>>>(nranks);

  sched::JobNode partition;
  partition.name = "pr-partition";
  partition.config = partition_cfg;
  partition.producer = [opts](sched::NodeCtx& nctx, mimir::Emitter& out) {
    const std::uint64_t edges = opts.num_edges();
    const auto r = static_cast<std::uint64_t>(nctx.exec.rank());
    const auto p = static_cast<std::uint64_t>(nctx.exec.size());
    for (std::uint64_t e = edges * r / p; e < edges * (r + 1) / p; ++e) {
      const auto [u, v] = edge_of(opts, e);
      out.emit(id_view(u), id_view(v));
    }
  };
  partition.consume = [opts, n](sched::NodeCtx& nctx,
                                mimir::KVContainer& out) {
    PrState* st = pr_state(nctx);
    st->out_edges.build([&](const auto& fn) { out.scan(fn); });
    st->owned = owned_vertices(n, nctx.exec.rank(), nctx.exec.size());
    nctx.exec.tracker.allocate(st->owned.size() * 8);
    st->dangling_local = 0;
    for (const std::uint64_t v : st->owned) {
      st->ranks.put(v, 1.0 / static_cast<double>(n));
      if (st->out_edges.degree_of(v) == 0) {
        st->dangling_local += 1.0 / static_cast<double>(n);
      }
    }
    st->base = (1.0 - opts.damping) / static_cast<double>(n);
  };
  int prev = run.graph.add(std::move(partition));

  for (int it = 0; it < opts.iterations; ++it) {
    sched::JobNode step;
    step.name = "pr-iter" + std::to_string(it);
    step.config = cfg;
    step.producer = [](sched::NodeCtx& nctx, mimir::Emitter& out) {
      PrState* st = pr_state(nctx);
      st->dangling = nctx.exec.comm.allreduce_f64(st->dangling_local,
                                                  simmpi::Op::kSum);
      for (const std::uint64_t v : st->owned) {
        const auto neighbors = st->out_edges.neighbors_of(v);
        if (neighbors.empty()) continue;
        const double share = st->ranks.find(v).value_or(0.0) /
                             static_cast<double>(neighbors.size());
        for (const std::uint64_t t : neighbors) {
          out.emit(id_view(t), mimir::as_view(share));
        }
      }
    };
    step.combiner = opts.cps || opts.balance
                        ? mimir::CombineFn(combine_sum)
                        : mimir::CombineFn{};
    step.partial = combine_sum;
    step.consume = [opts, n](sched::NodeCtx& nctx, mimir::KVContainer& out) {
      PrState* st = pr_state(nctx);
      if (nctx.resumed) {
        // The producer (which normally reduces the dangling mass right
        // before emitting) was skipped; recompute it from the rebuilt
        // per-rank state so apply_update below sees the right value.
        st->dangling = nctx.exec.comm.allreduce_f64(st->dangling_local,
                                                    simmpi::Op::kSum);
      }
      VertexMap<double> contributions(nctx.exec.tracker);
      out.scan([&](const mimir::KVView& kv) {
        contributions.put(mimir::as_u64(kv.key), mimir::as_f64(kv.value));
      });
      const double local_delta = apply_update(
          st->owned, contributions, st->out_edges,
          st->dangling / static_cast<double>(n), st->base, opts.damping,
          st->ranks, &st->dangling_local);
      st->result.last_delta =
          nctx.exec.comm.allreduce_f64(local_delta, simmpi::Op::kSum);
    };
    const int id = run.graph.add(std::move(step));
    run.graph.add_order(prev, id);
    prev = id;
  }

  if (top_k > 0) {
    sched::JobNode topk;
    topk.name = "pr-topk";
    topk.config = topk_config(opts);
    topk.kv_map = [](sched::NodeCtx&, std::string_view key,
                     std::string_view value, mimir::Emitter& out) {
      topk_map_kv(key, value, out);
    };
    topk.partial = topk_combiner(top_k);
    topk.consume = [](sched::NodeCtx& nctx, mimir::KVContainer& out) {
      PrState* st = pr_state(nctx);
      st->top.clear();
      out.scan([&](const mimir::KVView& kv) {
        const auto entries = unpack_topk(kv.value);
        st->top.insert(st->top.end(), entries.begin(), entries.end());
      });
    };
    run.graph.add_edge(prev, run.graph.add(std::move(topk)));
  }

  run.options.make_state = [](simmpi::Context& ctx) {
    return std::static_pointer_cast<void>(std::make_shared<PrState>(ctx));
  };
  auto results = run.results;
  auto tops = run.tops;
  run.options.epilogue = [results, tops](sched::NodeCtx& nctx) {
    PrState* st = pr_state(nctx);
    double local_total = 0, local_max = 0;
    std::uint64_t local_argmax = 0;
    st->ranks.for_each([&](std::uint64_t v, double r) {
      local_total += r;
      if (r > local_max) {
        local_max = r;
        local_argmax = v;
      }
    });
    st->result.total_rank =
        nctx.exec.comm.allreduce_f64(local_total, simmpi::Op::kSum);
    st->result.max_rank =
        nctx.exec.comm.allreduce_f64(local_max, simmpi::Op::kMax);
    st->result.max_vertex = nctx.exec.comm.allreduce_u64(
        local_max == st->result.max_rank ? local_argmax : 0,
        simmpi::Op::kMax);
    nctx.exec.tracker.release(st->owned.size() * 8);
    (*results)[nctx.world_rank] = st->result;
    (*tops)[nctx.world_rank] = st->top;
  };
  return run;
}

Result run_sched(int nranks, const simtime::MachineProfile& machine,
                 pfs::FileSystem& fs, const RunOptions& opts, int top_k,
                 std::vector<std::vector<TopKEntry>>* tops) {
  SchedRun run = make_sched(opts, nranks, top_k);
  sched::run_graph(nranks, machine, fs, run.graph, run.options);
  if (tops != nullptr) *tops = *run.tops;
  return run.results->front();
}

}  // namespace apps::pr
