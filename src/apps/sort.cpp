#include "apps/sort.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mutil/hash.hpp"

namespace apps::sort {

namespace {

std::string_view id_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), 8};
}

/// This rank's record index range.
std::pair<std::uint64_t, std::uint64_t> my_slice(std::uint64_t total,
                                                 int rank, int nranks) {
  const auto r = static_cast<std::uint64_t>(rank);
  const auto p = static_cast<std::uint64_t>(nranks);
  return {total * r / p, total * (r + 1) / p};
}

/// Gather `samples_per_rank` evenly spaced local keys, sort the union,
/// and broadcast p-1 splitters.
std::vector<std::uint64_t> make_splitters(simmpi::Context& ctx,
                                          const RunOptions& opts) {
  const auto [begin, end] =
      my_slice(opts.num_records, ctx.rank(), ctx.size());
  std::vector<std::uint64_t> local;
  const std::uint64_t count = end - begin;
  for (int s = 0; s < opts.samples_per_rank; ++s) {
    const std::uint64_t index =
        begin + count * static_cast<std::uint64_t>(s) /
                    static_cast<std::uint64_t>(opts.samples_per_rank);
    if (index < end) local.push_back(record_key(opts.seed, index));
  }
  const auto gathered = ctx.comm.gatherv(
      0, std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(local.data()),
             local.size() * 8));

  const auto p = static_cast<std::size_t>(ctx.size());
  std::vector<std::uint64_t> splitters(p - 1, 0);
  if (ctx.rank() == 0) {
    std::vector<std::uint64_t> samples(gathered.data.size() / 8);
    std::memcpy(samples.data(), gathered.data.data(),
                gathered.data.size());
    std::sort(samples.begin(), samples.end());
    for (std::size_t i = 1; i < p; ++i) {
      splitters[i - 1] = samples[samples.size() * i / p];
    }
  }
  if (!splitters.empty()) {
    ctx.comm.bcast(std::span<std::byte>(
                       reinterpret_cast<std::byte*>(splitters.data()),
                       splitters.size() * 8),
                   0);
  }
  return splitters;
}

mimir::PartitionFn range_partitioner(std::vector<std::uint64_t> splitters) {
  return [splitters = std::move(splitters)](std::string_view key,
                                            int) -> int {
    const std::uint64_t k = mimir::as_u64(key);
    return static_cast<int>(
        std::upper_bound(splitters.begin(), splitters.end(), k) -
        splitters.begin());
  };
}

/// Verify and summarize this rank's received range.
Result finish(simmpi::Context& ctx, std::vector<std::uint64_t> keys,
              std::uint64_t checksum) {
  std::sort(keys.begin(), keys.end());
  const bool locally_sorted = true;  // by construction after the sort
  // Global order: every rank's max must be <= the next rank's min.
  const std::uint64_t my_min = keys.empty() ? ~0ULL : keys.front();
  const std::uint64_t my_max = keys.empty() ? 0 : keys.back();
  const auto mins = ctx.comm.allgather_u64(my_min);
  const auto maxs = ctx.comm.allgather_u64(my_max);
  bool ordered = locally_sorted;
  std::uint64_t prev_max = 0;
  for (int r = 0; r < ctx.size(); ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (maxs[i] == 0 && mins[i] == ~0ULL) continue;  // empty rank
    if (mins[i] < prev_max) ordered = false;
    prev_max = maxs[i];
  }

  Result result;
  result.records = ctx.comm.allreduce_u64(keys.size(), simmpi::Op::kSum);
  result.checksum = ctx.comm.allreduce_u64(checksum, simmpi::Op::kSum);
  result.globally_sorted = ctx.comm.allreduce_land(ordered);
  const auto biggest = ctx.comm.allreduce_u64(keys.size(), simmpi::Op::kMax);
  result.imbalance = static_cast<double>(biggest) *
                     static_cast<double>(ctx.size()) /
                     static_cast<double>(std::max<std::uint64_t>(
                         1, result.records));
  return result;
}

}  // namespace

std::uint64_t record_key(std::uint64_t seed, std::uint64_t index) {
  return mutil::mix64(seed * 0x51ed270b + index);
}

std::uint64_t reference_checksum(const RunOptions& opts) {
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < opts.num_records; ++i) {
    checksum += mutil::mix64(record_key(opts.seed, i));
  }
  return checksum;
}

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts) {
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  if (opts.hint) cfg.hint = mimir::KVHint::fixed(8, 8);
  cfg.partitioner = range_partitioner(make_splitters(ctx, opts));

  mimir::Job job(ctx, cfg);
  job.map_custom([&](mimir::Emitter& out) {
    const auto [begin, end] =
        my_slice(opts.num_records, ctx.rank(), ctx.size());
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t key = record_key(opts.seed, i);
      out.emit(id_view(key), id_view(i));  // payload: original position
    }
  });

  std::vector<std::uint64_t> keys;
  std::uint64_t checksum = 0;
  job.intermediate().scan([&](const mimir::KVView& kv) {
    const std::uint64_t k = mimir::as_u64(kv.key);
    keys.push_back(k);
    checksum += mutil::mix64(k);
  });
  return finish(ctx, std::move(keys), checksum);
}

Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc) {
  mrmpi::MRConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.out_of_core = ooc;
  cfg.partitioner = range_partitioner(make_splitters(ctx, opts));

  mrmpi::MapReduce mr(ctx, cfg);
  mr.map_custom([&](mimir::Emitter& out) {
    const auto [begin, end] =
        my_slice(opts.num_records, ctx.rank(), ctx.size());
    for (std::uint64_t i = begin; i < end; ++i) {
      const std::uint64_t key = record_key(opts.seed, i);
      out.emit(id_view(key), id_view(i));
    }
  });
  mr.aggregate();

  std::vector<std::uint64_t> keys;
  std::uint64_t checksum = 0;
  mr.scan_kv([&](const mimir::KVView& kv) {
    const std::uint64_t k = mimir::as_u64(kv.key);
    keys.push_back(k);
    checksum += mutil::mix64(k);
  });
  return finish(ctx, std::move(keys), checksum);
}

}  // namespace apps::sort
