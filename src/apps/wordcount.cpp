#include "apps/wordcount.hpp"

#include <algorithm>
#include <sstream>

#include "mutil/hash.hpp"
#include "mutil/random.hpp"

namespace apps::wc {

namespace {
constexpr std::uint64_t kOne = 1;

/// Order-independent digest over (word, count) pairs.
std::uint64_t digest(std::string_view word, std::uint64_t count) {
  return mutil::hash_bytes(word) * count;
}

/// Deterministic word for a vocabulary index (fixed length).
std::string uniform_word(std::uint64_t index, int length) {
  std::string word(static_cast<std::size_t>(length), 'a');
  std::uint64_t x = mutil::mix64(index + 1);
  for (auto& c : word) {
    c = static_cast<char>('a' + x % 26);
    x /= 26;
    if (x == 0) x = mutil::mix64(index ^ c);
  }
  return word;
}

/// Deterministic word for a Zipf rank: length grows slowly with rank,
/// matching natural-language statistics (frequent words are short).
std::string wikipedia_word(std::uint64_t rank) {
  const int length = 4 + static_cast<int>(
                             mutil::mix64(rank * 31 + 7) %
                             (8 + rank % 16));
  std::string word(static_cast<std::size_t>(length), 'a');
  std::uint64_t x = mutil::mix64(rank + 0x9e37);
  for (auto& c : word) {
    c = static_cast<char>('a' + x % 26);
    x = mutil::mix64(x);
  }
  return word;
}

std::vector<std::string> generate(
    pfs::FileSystem& fs, const std::string& prefix, const GenOptions& opts,
    const std::function<std::string(mutil::Xoshiro256&)>& next_word) {
  std::vector<std::string> files;
  simtime::Clock setup_clock;  // dataset creation is not part of any job
  mutil::Xoshiro256 rng(opts.seed);
  const std::uint64_t per_file =
      opts.total_bytes / static_cast<std::uint64_t>(opts.num_files);
  for (int f = 0; f < opts.num_files; ++f) {
    const std::string name = prefix + "/part" + std::to_string(f);
    pfs::Writer writer = fs.create(name);
    std::string line;
    std::uint64_t written = 0;
    while (written < per_file) {
      line.clear();
      // ~8 words per line.
      for (int w = 0; w < 8; ++w) {
        line += next_word(rng);
        line += ' ';
      }
      line.back() = '\n';
      writer.write(line, setup_clock);
      written += line.size();
    }
    files.push_back(name);
  }
  return files;
}

}  // namespace

void map_words(std::string_view chunk, mimir::Emitter& out) {
  std::size_t start = 0;
  while (start < chunk.size()) {
    const std::size_t end = chunk.find_first_of(" \n\t\r", start);
    const std::size_t stop =
        end == std::string_view::npos ? chunk.size() : end;
    if (stop > start) {
      out.emit(chunk.substr(start, stop - start), mimir::as_view(kOne));
    }
    start = stop + 1;
  }
}

void reduce_counts(std::string_view key, mimir::ValueReader& values,
                   mimir::Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, mimir::as_view(total));
}

void combine_counts(std::string_view, std::string_view a,
                    std::string_view b, std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

std::vector<std::string> generate_uniform(pfs::FileSystem& fs,
                                          const std::string& prefix,
                                          const GenOptions& opts) {
  return generate(fs, prefix, opts, [&](mutil::Xoshiro256& rng) {
    return uniform_word(rng.below(opts.vocabulary), opts.word_length);
  });
}

std::vector<std::string> generate_wikipedia(pfs::FileSystem& fs,
                                            const std::string& prefix,
                                            const GenOptions& opts) {
  // Large vocabulary; actual usage concentrates on low Zipf ranks.
  // Real corpora reuse words heavily: a bounded vocabulary keeps the
  // unique/total ratio Wikipedia-like (fractions of a percent at scale).
  const std::uint64_t vocab = std::max<std::uint64_t>(opts.vocabulary,
                                                      1 << 16);
  mutil::ZipfSampler zipf(vocab, opts.zipf_exponent);
  return generate(fs, prefix, opts, [&](mutil::Xoshiro256& rng) {
    return wikipedia_word(zipf.sample(rng));
  });
}

std::map<std::string, std::uint64_t> reference_counts(
    pfs::FileSystem& fs, const std::vector<std::string>& files) {
  std::map<std::string, std::uint64_t> counts;
  simtime::Clock clock;
  for (const auto& file : files) {
    const auto bytes = fs.read_file(file, clock);
    std::istringstream in(std::string(
        reinterpret_cast<const char*>(bytes.data()), bytes.size()));
    std::string word;
    while (in >> word) ++counts[word];
  }
  return counts;
}

namespace {

Result finalize(simmpi::Context& ctx, std::uint64_t local_total,
                std::uint64_t local_unique, std::uint64_t local_digest) {
  Result r;
  r.total_words = ctx.comm.allreduce_u64(local_total, simmpi::Op::kSum);
  r.unique_words = ctx.comm.allreduce_u64(local_unique, simmpi::Op::kSum);
  r.checksum = ctx.comm.allreduce_u64(local_digest, simmpi::Op::kSum);
  return r;
}

}  // namespace

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts) {
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  if (opts.hint) cfg.hint = mimir::KVHint::string_key_u64_value();
  cfg.kv_compression = opts.cps;
  cfg.overlap = opts.overlap;
  cfg.balance.enabled = opts.balance;
  cfg.prefetch = opts.prefetch;

  mimir::Job job(ctx, cfg);
  // The combiner is also handed over when balance is on (without cps it
  // is unused during the map): the balance merge pass combines each
  // split rank's share of a heavy word locally before re-homing it.
  job.map_text_files(opts.files, map_words,
                     opts.cps || opts.balance ? combine_counts
                                              : mimir::CombineFn{});
  if (opts.pr) {
    job.partial_reduce(combine_counts);
  } else {
    job.reduce(reduce_counts);
  }

  std::uint64_t total = 0, unique = 0, dig = 0;
  job.output().scan([&](const mimir::KVView& kv) {
    const std::uint64_t count = mimir::as_u64(kv.value);
    total += count;
    ++unique;
    dig += digest(kv.key, count);
  });
  return finalize(ctx, total, unique, dig);
}

Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc) {
  mrmpi::MRConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.out_of_core = ooc;

  mrmpi::MapReduce mr(ctx, cfg);
  mr.map_text_files(opts.files, map_words);
  if (opts.cps) mr.compress(combine_counts);
  mr.aggregate();
  mr.convert();
  mr.reduce(reduce_counts);

  std::uint64_t total = 0, unique = 0, dig = 0;
  mr.scan_kv([&](const mimir::KVView& kv) {
    const std::uint64_t count = mimir::as_u64(kv.value);
    total += count;
    ++unique;
    dig += digest(kv.key, count);
  });
  Result r = finalize(ctx, total, unique, dig);
  r.spilled = ctx.comm.allreduce_lor(mr.metrics().spilled);
  return r;
}

}  // namespace apps::wc
