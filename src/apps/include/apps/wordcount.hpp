// WordCount (WC) — the paper's single-pass benchmark (§IV-A).
//
// Two dataset generators stand in for the paper's inputs:
//   * uniform    — words drawn uniformly from a fixed vocabulary of
//                  equal-length words (the paper's synthetic "Uniform");
//   * wikipedia  — Zipf-distributed word frequencies over a large
//                  vocabulary with heterogeneous word lengths, matching
//                  the properties the paper uses the PUMA Wikipedia
//                  dataset for: heavy key skew (load imbalance across
//                  ranks) and variable-length keys.
//
// The same map/reduce/combine callbacks drive both frameworks, and
// run_mimir / run_mrmpi return an order-independent checksum so tests
// can assert that every optimization path produces identical counts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mimir/job.hpp"
#include "mrmpi/mrmpi.hpp"
#include "pfs/filesystem.hpp"
#include "simmpi/runtime.hpp"

namespace apps::wc {

// --- callbacks (shared by both frameworks) -------------------------------

void map_words(std::string_view chunk, mimir::Emitter& out);
void reduce_counts(std::string_view key, mimir::ValueReader& values,
                   mimir::Emitter& out);
void combine_counts(std::string_view key, std::string_view a,
                    std::string_view b, std::string& out);

// --- dataset generation ---------------------------------------------------

struct GenOptions {
  std::uint64_t total_bytes = 1 << 20;
  int num_files = 1;
  std::uint64_t seed = 1;
  /// uniform: vocabulary size and fixed word length.
  std::uint64_t vocabulary = 4096;
  int word_length = 7;
  /// wikipedia: Zipf exponent (higher = more skew).
  double zipf_exponent = 1.05;
};

/// Write a uniform dataset under `prefix`; returns the file names.
std::vector<std::string> generate_uniform(pfs::FileSystem& fs,
                                          const std::string& prefix,
                                          const GenOptions& opts);

/// Write a Wikipedia-like (Zipf, variable word length) dataset.
std::vector<std::string> generate_wikipedia(pfs::FileSystem& fs,
                                            const std::string& prefix,
                                            const GenOptions& opts);

/// Serial reference: exact counts, for correctness tests.
std::map<std::string, std::uint64_t> reference_counts(
    pfs::FileSystem& fs, const std::vector<std::string>& files);

// --- drivers ---------------------------------------------------------------

struct RunOptions {
  std::vector<std::string> files;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = false;     ///< KV-hint: string key, fixed 8-byte value
  bool pr = false;       ///< partial reduction instead of convert+reduce
  bool cps = false;      ///< KV compression before aggregate
  bool overlap = false;  ///< double-buffered non-blocking shuffle
  bool balance = false;  ///< skew-aware partitioning (src/balance)
  bool prefetch = false; ///< async I/O pipeline (pfs read-ahead)
};

struct Result {
  std::uint64_t total_words = 0;   ///< sum of all counts (global)
  std::uint64_t unique_words = 0;  ///< distinct words (global)
  std::uint64_t checksum = 0;      ///< order-independent digest (global)
  bool spilled = false;            ///< any rank went out of core (MR-MPI)
};

/// Run WordCount on Mimir. Collective; all ranks return the same Result.
Result run_mimir(simmpi::Context& ctx, const RunOptions& opts);

/// Run WordCount on MR-MPI (hint/pr are not available there; cps maps to
/// MR-MPI's compress()).
Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc = mrmpi::OocMode::kSpill);

}  // namespace apps::wc
