// Tracked CSR adjacency shared by the graph applications (BFS,
// PageRank). Built in two passes from shuffled (vertex, neighbour) KVs —
// each scan may stream from a framework store, so spilled data is
// re-read at PFS cost like any other pass. Values may be blobs of
// several 8-byte ids after a concatenating combiner ran.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "apps/vertex_map.hpp"
#include "memtrack/tracker.hpp"
#include "mimir/kv.hpp"

namespace apps {

class Csr {
 public:
  struct Range {
    std::uint32_t offset;
    std::uint32_t degree;
  };

  explicit Csr(memtrack::Tracker& tracker)
      : tracker_(&tracker), index_(tracker) {}

  /// Two-pass build over any KV scan function: fn(visitor) must invoke
  /// visitor(const mimir::KVView&) for every (vertex, neighbour[s]) KV.
  template <typename ScanFn>
  void build(const ScanFn& scan) {
    std::uint64_t total = 0;
    scan([&](const mimir::KVView& kv) {
      const std::uint64_t v = mimir::as_u64(kv.key);
      const auto ids = static_cast<std::uint32_t>(kv.value.size() / 8);
      const auto entry = index_.find(v);
      const std::uint32_t degree = entry ? entry->degree + ids : ids;
      index_.put(v, {0, degree});
      total += ids;
    });
    neighbors_ = memtrack::TrackedBuffer(*tracker_, total * 8);
    // Assign offsets in a stable order.
    std::uint32_t offset = 0;
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
    order.reserve(static_cast<std::size_t>(index_.size()));
    index_.for_each([&](std::uint64_t v, const Range& e) {
      order.emplace_back(v, e.degree);
    });
    for (const auto& [v, degree] : order) {
      index_.put(v, {offset, degree});
      offset += degree;
    }
    // Fill.
    VertexMap<std::uint32_t> cursor(*tracker_);
    scan([&](const mimir::KVView& kv) {
      const std::uint64_t v = mimir::as_u64(kv.key);
      const auto entry = *index_.find(v);
      std::uint32_t at = cursor.find(v).value_or(0);
      for (std::size_t off = 0; off + 8 <= kv.value.size(); off += 8) {
        std::uint64_t n = 0;
        std::memcpy(&n, kv.value.data() + off, 8);
        std::memcpy(neighbors_.data() + (entry.offset + at) * 8ull, &n, 8);
        ++at;
      }
      cursor.put(v, at);
    });
  }

  std::span<const std::uint64_t> neighbors_of(std::uint64_t v) const {
    const auto entry = index_.find(v);
    if (!entry) return {};
    return {reinterpret_cast<const std::uint64_t*>(neighbors_.data()) +
                entry->offset,
            entry->degree};
  }

  std::uint32_t degree_of(std::uint64_t v) const {
    const auto entry = index_.find(v);
    return entry ? entry->degree : 0;
  }

  /// Number of vertices with at least one neighbour.
  std::uint64_t vertices() const { return index_.size(); }

  /// Visit every (vertex, Range) pair.
  template <typename Fn>
  void for_each_vertex(Fn&& fn) const {
    index_.for_each([&](std::uint64_t v, const Range& e) {
      fn(v, e.degree);
    });
  }

 private:
  memtrack::Tracker* tracker_;
  VertexMap<Range> index_;
  memtrack::TrackedBuffer neighbors_;
};

}  // namespace apps
