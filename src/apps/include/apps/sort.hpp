// Distributed sample sort (TeraSort-style) — exercises the paper's
// §III-A "alternative hash functions" hook: instead of hash routing,
// a range partitioner built from sampled splitters sends each key to
// the rank owning its range, so after one map-only job plus a local
// sort the data is globally ordered across ranks.
//
//   1. every rank samples its local keys; samples are gathered and
//      broadcast, yielding p-1 splitters;
//   2. one MapReduce map-only job shuffles (key, payload) records with
//      the range partitioner;
//   3. each rank sorts its received range locally.
//
// Works on both frameworks (MR-MPI's aggregate also accepts the
// partitioner).
#pragma once

#include <cstdint>

#include "mimir/job.hpp"
#include "mrmpi/mrmpi.hpp"
#include "simmpi/runtime.hpp"

namespace apps::sort {

struct RunOptions {
  std::uint64_t num_records = 1 << 14;  ///< total records across ranks
  std::uint64_t seed = 17;
  int samples_per_rank = 32;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = true;  ///< keys and payloads are fixed 8-byte values
};

struct Result {
  std::uint64_t records = 0;       ///< records after the shuffle (global)
  std::uint64_t checksum = 0;      ///< order-independent key digest
  bool globally_sorted = false;    ///< ranges ordered across ranks
  double imbalance = 0.0;          ///< max rank share / ideal share
};

/// The key for a global record index (deterministic).
std::uint64_t record_key(std::uint64_t seed, std::uint64_t index);

/// Serial reference digest over all records.
std::uint64_t reference_checksum(const RunOptions& opts);

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts);
Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc = mrmpi::OocMode::kSpill);

}  // namespace apps::sort
