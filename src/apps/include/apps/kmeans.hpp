// K-means clustering — Lloyd's algorithm as iterative MapReduce, the
// canonical machine-learning workload for MapReduce frameworks.
//
// Points live as rank-local application state (like the octree
// benchmark); each iteration is one MapReduce job:
//
//   map:    point -> (nearest centroid id, partial sum {Σx,Σy,Σz,n=1})
//   reduce: component-wise sum per centroid (a fixed 32-byte value, so
//           the partial-reduction and KV-compression combiners apply
//           naturally);
//
// after which the per-centroid totals are gathered and broadcast and
// every rank computes the new centroids. Runs on both frameworks.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "mimir/job.hpp"
#include "mrmpi/mrmpi.hpp"
#include "sched/graph.hpp"
#include "simmpi/runtime.hpp"

namespace apps::km {

struct RunOptions {
  std::uint64_t num_points = 1 << 13;
  int clusters = 8;       ///< k (also the number of generator blobs)
  int iterations = 10;
  double blob_sigma = 0.04;  ///< well-separated blobs
  std::uint64_t seed = 29;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = true;  ///< fixed 8-byte key / 32-byte partial sum
  bool pr = true;    ///< partial reduction (sum combiner)
  bool cps = false;
};

struct Centroid {
  double x = 0, y = 0, z = 0;
};

struct Result {
  std::vector<Centroid> centroids;       ///< final centers, by cluster id
  std::vector<std::uint64_t> counts;     ///< members per cluster
  double inertia = 0;                    ///< Σ squared distances
  double last_shift = 0;                 ///< centroid movement, last iter
};

/// Deterministic blob point for a global index.
Centroid blob_point(const RunOptions& opts, std::uint64_t index);

/// Serial reference (identical dataset and iteration count).
Result reference(const RunOptions& opts);

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts);
Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc = mrmpi::OocMode::kSpill);

/// Lloyd's algorithm as a sched::Graph: one node per iteration, chained
/// by order edges (the handed-off state is the centroid vector, which
/// lives in the per-rank session state, not a KV container).
struct SchedRun {
  sched::Graph graph;
  sched::GraphOptions options;
  std::shared_ptr<std::vector<Result>> results;  ///< per world rank
};
SchedRun make_sched(const RunOptions& opts, int nranks);

/// Convenience: make_sched + sched::run_graph; returns rank 0's result
/// (identical on every rank).
Result run_sched(int nranks, const simtime::MachineProfile& machine,
                 pfs::FileSystem& fs, const RunOptions& opts);

}  // namespace apps::km
