// PageRank — an additional iterative MapReduce workload of the class the
// paper's introduction motivates (MR-MPI's own flagship applications are
// large-scale graph algorithms; Plimpton & Devine evaluate PageRank-like
// kernels). Exercises floating-point values, dangling-mass reduction,
// and repeated full-graph shuffles on both frameworks.
//
// Power iteration with damping d over the directed Kronecker graph
// (edges u->v only):
//
//   pr'(v) = (1-d)/N + d * (sum_{u->v} pr(u)/outdeg(u) + dangling/N)
//
// Each iteration is one MapReduce job: map emits (v, pr(u)/outdeg(u))
// contributions from the owner of u; the reduction sums contributions
// at the owner of v. The sum-combiner makes pr/cps applicable.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mimir/job.hpp"
#include "mrmpi/mrmpi.hpp"
#include "sched/graph.hpp"
#include "simmpi/runtime.hpp"

namespace apps::pr {

struct RunOptions {
  int scale = 10;        ///< 2^scale vertices
  int edge_factor = 16;  ///< directed edges = edge_factor * vertices
  std::uint64_t seed = 3;
  int iterations = 10;
  double damping = 0.85;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = false;
  bool cps = false;
  bool overlap = false;  ///< double-buffered non-blocking shuffle
  bool balance = false;  ///< skew-aware partitioning on iteration jobs
  /// External edge list (benchmarks: power-law graphs from
  /// bench/workloads). Empty = the default Kronecker generator with
  /// (scale, edge_factor, seed). Shared so RunOptions stays copyable.
  std::shared_ptr<const std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      edges;

  std::uint64_t num_vertices() const { return 1ull << scale; }
  std::uint64_t num_edges() const {
    if (edges != nullptr) return edges->size();
    return num_vertices() * static_cast<std::uint64_t>(edge_factor);
  }
};

struct Result {
  double total_rank = 0;   ///< should stay ~1.0
  double max_rank = 0;     ///< highest PageRank value
  std::uint64_t max_vertex = 0;
  double last_delta = 0;   ///< L1 change of the final iteration
  bool spilled = false;
};

/// Serial reference (same graph, same iteration count).
Result reference(const RunOptions& opts);
/// Reference vector for per-vertex comparisons in tests.
std::unordered_map<std::uint64_t, double> reference_ranks(
    const RunOptions& opts);

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts);
Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc = mrmpi::OocMode::kSpill);

/// One entry of the downstream top-k job: contribution mass received by
/// a vertex in the final iteration.
struct TopKEntry {
  double contribution = 0;
  std::uint64_t vertex = 0;

  friend bool operator==(const TopKEntry&, const TopKEntry&) = default;
};

/// Manual sequential baseline for the pagerank + top-k pipeline: the
/// iteration loop of run_mimir followed by a top-k job fed the final
/// iteration's output via map_kvs. `top` receives this rank's merged
/// entries (non-empty only on the hash owner of the top-k key).
Result run_mimir_topk(simmpi::Context& ctx, const RunOptions& opts, int k,
                      std::vector<TopKEntry>* top);

/// PageRank as a sched::Graph: a partition node, one node per power
/// iteration (chained with order edges), and — when top_k > 0 — a
/// downstream top-k job fed by a data edge from the last iteration.
/// `options` comes prefilled with the per-rank state factory and the
/// epilogue; callers may still set budget/concurrency/checkpoint knobs
/// before running the graph.
struct SchedRun {
  sched::Graph graph;
  sched::GraphOptions options;
  std::shared_ptr<std::vector<Result>> results;  ///< per world rank
  std::shared_ptr<std::vector<std::vector<TopKEntry>>> tops;  ///< per rank
};
SchedRun make_sched(const RunOptions& opts, int nranks, int top_k = 0);

/// Convenience: make_sched + sched::run_graph; returns rank 0's result
/// (identical on every rank). `tops` receives the per-rank top-k lists
/// when top_k > 0.
Result run_sched(int nranks, const simtime::MachineProfile& machine,
                 pfs::FileSystem& fs, const RunOptions& opts,
                 int top_k = 0,
                 std::vector<std::vector<TopKEntry>>* tops = nullptr);

}  // namespace apps::pr
