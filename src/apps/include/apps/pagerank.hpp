// PageRank — an additional iterative MapReduce workload of the class the
// paper's introduction motivates (MR-MPI's own flagship applications are
// large-scale graph algorithms; Plimpton & Devine evaluate PageRank-like
// kernels). Exercises floating-point values, dangling-mass reduction,
// and repeated full-graph shuffles on both frameworks.
//
// Power iteration with damping d over the directed Kronecker graph
// (edges u->v only):
//
//   pr'(v) = (1-d)/N + d * (sum_{u->v} pr(u)/outdeg(u) + dangling/N)
//
// Each iteration is one MapReduce job: map emits (v, pr(u)/outdeg(u))
// contributions from the owner of u; the reduction sums contributions
// at the owner of v. The sum-combiner makes pr/cps applicable.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mimir/job.hpp"
#include "mrmpi/mrmpi.hpp"
#include "simmpi/runtime.hpp"

namespace apps::pr {

struct RunOptions {
  int scale = 10;        ///< 2^scale vertices
  int edge_factor = 16;  ///< directed edges = edge_factor * vertices
  std::uint64_t seed = 3;
  int iterations = 10;
  double damping = 0.85;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = false;
  bool cps = false;

  std::uint64_t num_vertices() const { return 1ull << scale; }
  std::uint64_t num_edges() const {
    return num_vertices() * static_cast<std::uint64_t>(edge_factor);
  }
};

struct Result {
  double total_rank = 0;   ///< should stay ~1.0
  double max_rank = 0;     ///< highest PageRank value
  std::uint64_t max_vertex = 0;
  double last_delta = 0;   ///< L1 change of the final iteration
  bool spilled = false;
};

/// Serial reference (same graph, same iteration count).
Result reference(const RunOptions& opts);
/// Reference vector for per-vertex comparisons in tests.
std::unordered_map<std::uint64_t, double> reference_ranks(
    const RunOptions& opts);

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts);
Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc = mrmpi::OocMode::kSpill);

}  // namespace apps::pr
