// Breadth-first search (BFS) — the paper's iterative map-only benchmark,
// one of the Graph500 kernels.
//
// The graph is generated with the Graph500-style Kronecker (R-MAT)
// sampler (A=.57, B=.19, C=.19, D=.05), scale-free with a configurable
// edge factor (paper: average degree 32). The workload has two phases,
// exactly as the paper describes:
//
//   1. graph partitioning — every rank generates its slice of the edge
//      list and a map-only job shuffles both directions of each edge to
//      the hash owner of its endpoint; the receiving rank builds a
//      tracked CSR adjacency. This is where peak memory occurs.
//   2. traversal — iterative map-only jobs: the frontier KVs
//      (vertex, parent) arrive at each vertex's owner, unvisited
//      vertices are claimed, and their neighbours are emitted as the
//      next frontier. KV compression (a min-parent combiner) shrinks
//      traversal traffic but cannot reduce the partitioning-phase peak.
//
// Keys and values are 64-bit vertex ids, so the KV-hint (fixed 8/8)
// applies naturally.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "mimir/job.hpp"
#include "mrmpi/mrmpi.hpp"
#include "sched/graph.hpp"
#include "simmpi/runtime.hpp"

namespace apps::bfs {

/// Kronecker/R-MAT edge for a global edge index (deterministic).
std::pair<std::uint64_t, std::uint64_t> kronecker_edge(int scale,
                                                       std::uint64_t seed,
                                                       std::uint64_t index);

struct RunOptions {
  int scale = 10;        ///< 2^scale vertices
  int edge_factor = 16;  ///< edges = edge_factor * vertices (undirected)
  std::uint64_t seed = 3;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = false;
  bool cps = false;  ///< min-parent combiner on the frontier exchange
  /// Traversal-level nodes in the sched::Graph form (BFS depth is data
  /// dependent, but a DAG is static — unneeded levels self-skip).
  int sched_max_levels = 48;

  std::uint64_t num_vertices() const {
    return 1ull << scale;
  }
  std::uint64_t num_edges() const {
    return num_vertices() * static_cast<std::uint64_t>(edge_factor);
  }
  /// Deterministic non-isolated root: endpoint of the first edge.
  std::uint64_t root() const {
    return kronecker_edge(scale, seed, 0).first;
  }
};

struct Result {
  std::uint64_t visited = 0;   ///< vertices reached from the root
  std::uint64_t levels = 0;    ///< BFS depth (root = level 0)
  std::uint64_t checksum = 0;  ///< digest over (vertex, level) pairs
  bool spilled = false;            ///< any rank went out of core (MR-MPI)
};

/// Serial reference BFS on the identical generated graph.
Result reference(const RunOptions& opts);

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts);
Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc = mrmpi::OocMode::kSpill);

/// BFS as a sched::Graph: a partition node plus `sched_max_levels`
/// traversal nodes chained by data edges (each level's frontier hands
/// off to the next by move); levels past the data-dependent BFS depth
/// skip themselves. Throws mutil::UsageError from the epilogue when
/// `sched_max_levels` is too small for the actual depth.
///
/// Note: run with run_graph (no checkpoint resume). The visited map is
/// built during the map phase, not derivable from node outputs, so the
/// consume hooks cannot rebuild it on a recovery resume — violating the
/// GraphOptions::make_state contract checkpointed graphs rely on.
struct SchedRun {
  sched::Graph graph;
  sched::GraphOptions options;
  std::shared_ptr<std::vector<Result>> results;  ///< per world rank
};
SchedRun make_sched(const RunOptions& opts, int nranks);

/// Convenience: make_sched + sched::run_graph; returns rank 0's result
/// (identical on every rank).
Result run_sched(int nranks, const simtime::MachineProfile& machine,
                 pfs::FileSystem& fs, const RunOptions& opts);

}  // namespace apps::bfs
