// Octree clustering (OC) — the paper's iterative multi-stage benchmark.
//
// Points in 3-D space (normal distribution, sigma = 0.5, as in Zhang et
// al.'s ligand-geometry dataset) are clustered by iteratively refining
// an octree: at each level every point maps to its octant's Morton code,
// the reduction counts points per octant, and octants holding at least
// `density` (1 %) of all points stay "dense" and are refined further.
// Points outside dense octants are dropped. The algorithm stops when no
// octant is dense or max_depth is reached.
//
// The key is a fixed 8-byte Morton code (KV-hint applies); the value is
// a packed 12-byte point (or a concatenated blob of points after the
// combiner runs, which is how pr/cps apply to this workload).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mimir/job.hpp"
#include "mrmpi/mrmpi.hpp"
#include "simmpi/runtime.hpp"

namespace apps::oc {

struct Point {
  float x, y, z;
};

/// Morton (bit-interleaved) octant code of `p` at `depth` levels;
/// coordinates are clamped into [0, 1).
std::uint64_t octant_code(const Point& p, int depth);

/// Deterministically generate this rank's share of `total` points
/// (normal distribution around 0.5 with the given sigma).
std::vector<Point> generate_points(std::uint64_t total, int rank,
                                   int nranks, std::uint64_t seed,
                                   double sigma = 0.5);

struct RunOptions {
  std::uint64_t num_points = 1 << 14;
  std::uint64_t seed = 7;
  double sigma = 0.5;
  double density = 0.01;  ///< dense threshold as a fraction of all points
  int max_depth = 8;
  std::uint64_t page_size = 64 << 10;
  std::uint64_t comm_buffer = 64 << 10;
  bool hint = false;
  bool pr = false;
  bool cps = false;
  bool prefetch = false;  ///< async I/O pipeline (write-behind spill)
  /// Out-of-core bound for the per-level intermediate container
  /// (0 = in-memory only); the octree is the spill-heavy showcase.
  std::uint64_t ooc_live_bytes = 0;
};

struct Result {
  int levels = 0;                     ///< deepest level with a dense octant
  std::uint64_t dense_octants = 0;    ///< dense octants at that level
  std::uint64_t clustered_points = 0; ///< points inside them
  std::uint64_t checksum = 0;         ///< digest over (level, code) pairs
  bool spilled = false;            ///< any rank went out of core (MR-MPI)
};

/// Serial reference implementation (single rank, no frameworks).
Result reference(const RunOptions& opts);

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts);
Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc = mrmpi::OocMode::kSpill);

}  // namespace apps::oc
