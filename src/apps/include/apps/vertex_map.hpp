// Tracked open-addressing map from 64-bit vertex ids to a POD value.
//
// BFS keeps per-rank traversal state (visited levels, adjacency index)
// outside the MapReduce dataflow; this map charges that state to the
// rank's memory tracker so it shows up in peak-usage measurements like
// any framework buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>

#include "memtrack/tracker.hpp"
#include "mutil/hash.hpp"

namespace apps {

template <typename Value>
class VertexMap {
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  explicit VertexMap(memtrack::Tracker& tracker,
                     std::uint64_t initial_slots = 1024)
      : tracker_(&tracker) {
    slots_ = memtrack::TrackedBuffer(*tracker_,
                                     initial_slots * sizeof(Entry));
    slot_count_ = initial_slots;
    init_slots();
  }

  /// Insert (vertex, value) if absent. Returns true if inserted, false
  /// if the vertex was already present (value unchanged).
  bool insert_if_absent(std::uint64_t vertex, const Value& value) {
    maybe_grow();
    Entry* slot = probe(vertex);
    if (slot->vertex != kEmpty) return false;
    slot->vertex = vertex;
    slot->value = value;
    ++size_;
    return true;
  }

  /// Insert or overwrite.
  void put(std::uint64_t vertex, const Value& value) {
    maybe_grow();
    Entry* slot = probe(vertex);
    if (slot->vertex == kEmpty) {
      slot->vertex = vertex;
      ++size_;
    }
    slot->value = value;
  }

  std::optional<Value> find(std::uint64_t vertex) const {
    const Entry* slot = const_cast<VertexMap*>(this)->probe(vertex);
    if (slot->vertex == kEmpty) return std::nullopt;
    return slot->value;
  }

  bool contains(std::uint64_t vertex) const {
    return find(vertex).has_value();
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    const auto* entries = reinterpret_cast<const Entry*>(slots_.data());
    for (std::uint64_t i = 0; i < slot_count_; ++i) {
      if (entries[i].vertex != kEmpty) {
        fn(entries[i].vertex, entries[i].value);
      }
    }
  }

  std::uint64_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

 private:
  // Vertex ids are < 2^63 in practice; reserve ~0 as the empty marker.
  static constexpr std::uint64_t kEmpty = ~0ULL;

  struct Entry {
    std::uint64_t vertex;
    Value value;
  };

  void init_slots() {
    auto* entries = reinterpret_cast<Entry*>(slots_.data());
    for (std::uint64_t i = 0; i < slot_count_; ++i) {
      entries[i].vertex = kEmpty;
    }
  }

  Entry* probe(std::uint64_t vertex) {
    auto* entries = reinterpret_cast<Entry*>(slots_.data());
    std::uint64_t idx = mutil::mix64(vertex) & (slot_count_ - 1);
    while (entries[idx].vertex != kEmpty &&
           entries[idx].vertex != vertex) {
      idx = (idx + 1) & (slot_count_ - 1);
    }
    return &entries[idx];
  }

  void maybe_grow() {
    if (10 * (size_ + 1) <= 7 * slot_count_) return;
    const std::uint64_t new_count = slot_count_ * 2;
    memtrack::TrackedBuffer bigger(*tracker_, new_count * sizeof(Entry));
    auto* fresh = reinterpret_cast<Entry*>(bigger.data());
    for (std::uint64_t i = 0; i < new_count; ++i) fresh[i].vertex = kEmpty;
    const auto* old = reinterpret_cast<const Entry*>(slots_.data());
    for (std::uint64_t i = 0; i < slot_count_; ++i) {
      if (old[i].vertex == kEmpty) continue;
      std::uint64_t idx = mutil::mix64(old[i].vertex) & (new_count - 1);
      while (fresh[idx].vertex != kEmpty) idx = (idx + 1) & (new_count - 1);
      fresh[idx] = old[i];
    }
    slots_ = std::move(bigger);
    slot_count_ = new_count;
  }

  memtrack::Tracker* tracker_;
  memtrack::TrackedBuffer slots_;
  std::uint64_t slot_count_ = 0;
  std::uint64_t size_ = 0;
};

}  // namespace apps
