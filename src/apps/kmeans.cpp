#include "apps/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

#include "mutil/hash.hpp"
#include "mutil/random.hpp"
#include "sched/scheduler.hpp"

namespace apps::km {

namespace {

/// The 32-byte partial-sum value: component sums plus a member count.
struct Partial {
  double sx = 0, sy = 0, sz = 0;
  std::uint64_t n = 0;
};
static_assert(sizeof(Partial) == 32);

std::string_view partial_view(const Partial& p) {
  return {reinterpret_cast<const char*>(&p), sizeof(p)};
}

Partial as_partial(std::string_view v) {
  Partial p;
  std::memcpy(&p, v.data(), sizeof(p));
  return p;
}

void combine_partials(std::string_view, std::string_view a,
                      std::string_view b, std::string& out) {
  Partial pa = as_partial(a);
  const Partial pb = as_partial(b);
  pa.sx += pb.sx;
  pa.sy += pb.sy;
  pa.sz += pb.sz;
  pa.n += pb.n;
  out.assign(partial_view(pa));
}

double distance2(const Centroid& a, const Centroid& b) {
  const double dx = a.x - b.x, dy = a.y - b.y, dz = a.z - b.z;
  return dx * dx + dy * dy + dz * dz;
}

/// The generator's true blob centers (also the initial centroids, which
/// keeps the assignment deterministic across rank counts for the
/// well-separated default sigma).
std::vector<Centroid> blob_centers(const RunOptions& opts) {
  std::vector<Centroid> centers;
  mutil::Xoshiro256 rng(opts.seed);
  for (int c = 0; c < opts.clusters; ++c) {
    centers.push_back(
        {0.1 + 0.8 * rng.uniform(), 0.1 + 0.8 * rng.uniform(),
         0.1 + 0.8 * rng.uniform()});
  }
  return centers;
}

int nearest(const std::vector<Centroid>& centroids, const Centroid& p) {
  int best = 0;
  double best_d = distance2(centroids[0], p);
  for (int c = 1; c < static_cast<int>(centroids.size()); ++c) {
    const double d = distance2(centroids[static_cast<std::size_t>(c)], p);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

/// Update centroids from gathered totals; returns the total shift.
double apply_totals(const std::vector<Partial>& totals,
                    std::vector<Centroid>& centroids,
                    std::vector<std::uint64_t>& counts) {
  double shift = 0;
  for (std::size_t c = 0; c < centroids.size(); ++c) {
    counts[c] = totals[c].n;
    if (totals[c].n == 0) continue;  // empty cluster keeps its center
    const Centroid updated{totals[c].sx / static_cast<double>(totals[c].n),
                           totals[c].sy / static_cast<double>(totals[c].n),
                           totals[c].sz / static_cast<double>(totals[c].n)};
    shift += std::sqrt(distance2(updated, centroids[c]));
    centroids[c] = updated;
  }
  return shift;
}

}  // namespace

Centroid blob_point(const RunOptions& opts, std::uint64_t index) {
  const auto centers = blob_centers(opts);
  const auto blob = static_cast<std::size_t>(
      index % static_cast<std::uint64_t>(opts.clusters));
  mutil::Xoshiro256 rng(mutil::mix64(opts.seed * 77 + index));
  return {centers[blob].x + opts.blob_sigma * rng.normal(),
          centers[blob].y + opts.blob_sigma * rng.normal(),
          centers[blob].z + opts.blob_sigma * rng.normal()};
}

Result reference(const RunOptions& opts) {
  std::vector<Centroid> points;
  points.reserve(static_cast<std::size_t>(opts.num_points));
  for (std::uint64_t i = 0; i < opts.num_points; ++i) {
    points.push_back(blob_point(opts, i));
  }
  Result result;
  result.centroids = blob_centers(opts);
  result.counts.assign(result.centroids.size(), 0);
  for (int it = 0; it < opts.iterations; ++it) {
    std::vector<Partial> totals(result.centroids.size());
    for (const Centroid& p : points) {
      auto& t = totals[static_cast<std::size_t>(
          nearest(result.centroids, p))];
      t.sx += p.x;
      t.sy += p.y;
      t.sz += p.z;
      ++t.n;
    }
    result.last_shift = apply_totals(totals, result.centroids,
                                     result.counts);
  }
  result.inertia = 0;
  for (const Centroid& p : points) {
    result.inertia += distance2(
        result.centroids[static_cast<std::size_t>(
            nearest(result.centroids, p))],
        p);
  }
  return result;
}

namespace {

/// The distributed iteration shared by both drivers: `run_job` performs
/// one MapReduce over the local points and returns the local per-cluster
/// totals via `scan`; the totals are then gathered and broadcast.
template <typename RunJob>
Result drive(simmpi::Context& ctx, const RunOptions& opts,
             const RunJob& run_job) {
  const auto [begin, end] = std::pair<std::uint64_t, std::uint64_t>{
      opts.num_points * static_cast<std::uint64_t>(ctx.rank()) /
          static_cast<std::uint64_t>(ctx.size()),
      opts.num_points * (static_cast<std::uint64_t>(ctx.rank()) + 1) /
          static_cast<std::uint64_t>(ctx.size())};
  std::vector<Centroid> points;
  points.reserve(static_cast<std::size_t>(end - begin));
  for (std::uint64_t i = begin; i < end; ++i) {
    points.push_back(blob_point(opts, i));
  }
  ctx.tracker.allocate(points.size() * sizeof(Centroid));

  Result result;
  result.centroids = blob_centers(opts);
  result.counts.assign(result.centroids.size(), 0);

  const auto k = result.centroids.size();
  for (int it = 0; it < opts.iterations; ++it) {
    // One MapReduce: local per-rank totals for every cluster id that
    // hashes to this rank.
    std::vector<Partial> local(k);
    run_job(points, result.centroids, local);

    // Gather per-cluster totals everywhere (cluster ids are owned by
    // their key-hash rank; summing the gathered vectors is exact
    // because non-owned slots are zero).
    std::vector<Partial> totals(k);
    const auto gathered = ctx.comm.gatherv(
        0, std::span<const std::byte>(
               reinterpret_cast<const std::byte*>(local.data()),
               local.size() * sizeof(Partial)));
    if (ctx.rank() == 0) {
      for (int r = 0; r < ctx.size(); ++r) {
        const auto* part = reinterpret_cast<const Partial*>(
            gathered.data.data() + static_cast<std::size_t>(r) * k *
                                       sizeof(Partial));
        for (std::size_t c = 0; c < k; ++c) {
          totals[c].sx += part[c].sx;
          totals[c].sy += part[c].sy;
          totals[c].sz += part[c].sz;
          totals[c].n += part[c].n;
        }
      }
    }
    ctx.comm.bcast(std::span<std::byte>(
                       reinterpret_cast<std::byte*>(totals.data()),
                       totals.size() * sizeof(Partial)),
                   0);
    result.last_shift =
        apply_totals(totals, result.centroids, result.counts);
  }

  double inertia = 0;
  for (const Centroid& p : points) {
    inertia += distance2(
        result.centroids[static_cast<std::size_t>(
            nearest(result.centroids, p))],
        p);
  }
  result.inertia = ctx.comm.allreduce_f64(inertia, simmpi::Op::kSum);
  ctx.tracker.release(points.size() * sizeof(Centroid));
  return result;
}

std::string_view id_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), 8};
}

}  // namespace

Result run_mimir(simmpi::Context& ctx, const RunOptions& opts) {
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  if (opts.hint) cfg.hint = mimir::KVHint::fixed(8, sizeof(Partial));
  cfg.kv_compression = opts.cps;

  return drive(ctx, opts, [&](const std::vector<Centroid>& points,
                              const std::vector<Centroid>& centroids,
                              std::vector<Partial>& local) {
    mimir::Job job(ctx, cfg);
    job.map_custom(
        [&](mimir::Emitter& out) {
          for (const Centroid& p : points) {
            const auto c =
                static_cast<std::uint64_t>(nearest(centroids, p));
            const Partial one{p.x, p.y, p.z, 1};
            out.emit(id_view(c), partial_view(one));
          }
        },
        opts.cps ? mimir::CombineFn(combine_partials) : mimir::CombineFn{});
    if (opts.pr) {
      job.partial_reduce(combine_partials);
    } else {
      job.reduce([](std::string_view key, mimir::ValueReader& values,
                    mimir::Emitter& out) {
        Partial total;
        std::string_view v;
        while (values.next(v)) {
          const Partial p = as_partial(v);
          total.sx += p.sx;
          total.sy += p.sy;
          total.sz += p.sz;
          total.n += p.n;
        }
        out.emit(key, partial_view(total));
      });
    }
    job.output().scan([&](const mimir::KVView& kv) {
      local[static_cast<std::size_t>(mimir::as_u64(kv.key))] =
          as_partial(kv.value);
    });
  });
}

Result run_mrmpi(simmpi::Context& ctx, const RunOptions& opts,
                 mrmpi::OocMode ooc) {
  mrmpi::MRConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.out_of_core = ooc;
  mrmpi::MapReduce mr(ctx, cfg);

  return drive(ctx, opts, [&](const std::vector<Centroid>& points,
                              const std::vector<Centroid>& centroids,
                              std::vector<Partial>& local) {
    mr.map_custom([&](mimir::Emitter& out) {
      for (const Centroid& p : points) {
        const auto c = static_cast<std::uint64_t>(nearest(centroids, p));
        const Partial one{p.x, p.y, p.z, 1};
        out.emit(id_view(c), partial_view(one));
      }
    });
    if (opts.cps) mr.compress(combine_partials);
    mr.aggregate();
    mr.convert();
    mr.reduce([](std::string_view key, mimir::ValueReader& values,
                 mimir::Emitter& out) {
      Partial total;
      std::string_view v;
      while (values.next(v)) {
        const Partial p = as_partial(v);
        total.sx += p.sx;
        total.sy += p.sy;
        total.sz += p.sz;
        total.n += p.n;
      }
      out.emit(key, partial_view(total));
    });
    mr.scan_kv([&](const mimir::KVView& kv) {
      local[static_cast<std::size_t>(mimir::as_u64(kv.key))] =
          as_partial(kv.value);
    });
  });
}

// --- dataflow-scheduler driver -------------------------------------------

namespace {

/// Rank-local session state: the point slice (mirroring drive()'s
/// up-front generation and tracker charge) plus the evolving result.
struct KmState {
  KmState(simmpi::Context& ctx, const RunOptions& opts) {
    const auto begin =
        opts.num_points * static_cast<std::uint64_t>(ctx.rank()) /
        static_cast<std::uint64_t>(ctx.size());
    const auto end =
        opts.num_points * (static_cast<std::uint64_t>(ctx.rank()) + 1) /
        static_cast<std::uint64_t>(ctx.size());
    points.reserve(static_cast<std::size_t>(end - begin));
    for (std::uint64_t i = begin; i < end; ++i) {
      points.push_back(blob_point(opts, i));
    }
    ctx.tracker.allocate(points.size() * sizeof(Centroid));
    result.centroids = blob_centers(opts);
    result.counts.assign(result.centroids.size(), 0);
  }

  std::vector<Centroid> points;
  Result result;
};

KmState* km_state(sched::NodeCtx& nctx) {
  return static_cast<KmState*>(nctx.state);
}

/// The gather/sum/broadcast/update tail of one drive() iteration.
void km_fold_totals(sched::NodeCtx& nctx, mimir::KVContainer& out) {
  KmState* st = km_state(nctx);
  const auto k = st->result.centroids.size();
  std::vector<Partial> local(k);
  out.scan([&](const mimir::KVView& kv) {
    local[static_cast<std::size_t>(mimir::as_u64(kv.key))] =
        as_partial(kv.value);
  });
  std::vector<Partial> totals(k);
  const auto gathered = nctx.exec.comm.gatherv(
      0, std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(local.data()),
             local.size() * sizeof(Partial)));
  if (nctx.exec.rank() == 0) {
    for (int r = 0; r < nctx.exec.size(); ++r) {
      const auto* part = reinterpret_cast<const Partial*>(
          gathered.data.data() +
          static_cast<std::size_t>(r) * k * sizeof(Partial));
      for (std::size_t c = 0; c < k; ++c) {
        totals[c].sx += part[c].sx;
        totals[c].sy += part[c].sy;
        totals[c].sz += part[c].sz;
        totals[c].n += part[c].n;
      }
    }
  }
  nctx.exec.comm.bcast(
      std::span<std::byte>(reinterpret_cast<std::byte*>(totals.data()),
                           totals.size() * sizeof(Partial)),
      0);
  st->result.last_shift =
      apply_totals(totals, st->result.centroids, st->result.counts);
}

}  // namespace

SchedRun make_sched(const RunOptions& opts, int nranks) {
  mimir::JobConfig cfg;
  cfg.page_size = opts.page_size;
  cfg.comm_buffer = opts.comm_buffer;
  if (opts.hint) cfg.hint = mimir::KVHint::fixed(8, sizeof(Partial));
  cfg.kv_compression = opts.cps;

  SchedRun run;
  run.results = std::make_shared<std::vector<Result>>(nranks);

  int prev = -1;
  for (int it = 0; it < opts.iterations; ++it) {
    sched::JobNode step;
    step.name = "km-iter" + std::to_string(it);
    step.config = cfg;
    step.producer = [](sched::NodeCtx& nctx, mimir::Emitter& out) {
      KmState* st = km_state(nctx);
      for (const Centroid& p : st->points) {
        const auto c = static_cast<std::uint64_t>(
            nearest(st->result.centroids, p));
        const Partial one{p.x, p.y, p.z, 1};
        out.emit(id_view(c), partial_view(one));
      }
    };
    step.combiner =
        opts.cps ? mimir::CombineFn(combine_partials) : mimir::CombineFn{};
    if (opts.pr) {
      step.partial = combine_partials;
    } else {
      step.reduce = [](std::string_view key, mimir::ValueReader& values,
                       mimir::Emitter& out) {
        Partial total;
        std::string_view v;
        while (values.next(v)) {
          const Partial p = as_partial(v);
          total.sx += p.sx;
          total.sy += p.sy;
          total.sz += p.sz;
          total.n += p.n;
        }
        out.emit(key, partial_view(total));
      };
    }
    step.consume = km_fold_totals;
    const int id = run.graph.add(std::move(step));
    if (prev >= 0) run.graph.add_order(prev, id);
    prev = id;
  }

  run.options.make_state = [opts](simmpi::Context& ctx) {
    return std::static_pointer_cast<void>(
        std::make_shared<KmState>(ctx, opts));
  };
  auto results = run.results;
  run.options.epilogue = [results](sched::NodeCtx& nctx) {
    KmState* st = km_state(nctx);
    double inertia = 0;
    for (const Centroid& p : st->points) {
      inertia += distance2(
          st->result.centroids[static_cast<std::size_t>(
              nearest(st->result.centroids, p))],
          p);
    }
    st->result.inertia =
        nctx.exec.comm.allreduce_f64(inertia, simmpi::Op::kSum);
    nctx.exec.tracker.release(st->points.size() * sizeof(Centroid));
    (*results)[nctx.world_rank] = st->result;
  };
  return run;
}

Result run_sched(int nranks, const simtime::MachineProfile& machine,
                 pfs::FileSystem& fs, const RunOptions& opts) {
  SchedRun run = make_sched(opts, nranks);
  sched::run_graph(nranks, machine, fs, run.graph, run.options);
  return run.results->front();
}

}  // namespace apps::km
