// Asynchronous PFS pipeline: read-ahead and write-behind.
//
// The cost model in filesystem.hpp charges every operation to the
// caller's simulated clock synchronously — on a Comet-scaled client
// link that serializes map with its input reads and reduce with its
// spill writes. This layer overlaps them the same way the overlapped
// shuffle (simmpi ialltoallv) overlaps collectives:
//
//   * AsyncReader — N-deep double-buffered read-ahead over a Reader.
//     Requests are issued eagerly against the shared-bandwidth model
//     but charged lazily: each in-flight operation k has a ready time
//
//         ready_k = max(issue_now_k, ready_{k-1}) + cost_k
//
//     (operations queue behind each other on the shared link), and the
//     caller's wait does clock.sync_to(ready_k). The exposed stall is
//     max(0, ready_k - now); the rest of cost_k completed under
//     compute and is recorded as hidden I/O. An immediate wait — no
//     compute between next() calls — reproduces the blocking clock
//     *exactly*, for any depth (test-enforced).
//
//   * AsyncWriter — a write-behind queue in front of a Writer. The
//     file mutates at enqueue (bytes, ordering, and reader visibility
//     are bit-identical to blocking mode); only the clock charge is
//     deferred to flush(), which syncs to the chained ready time of
//     the queue. Checkpoint shards flush before the commit barrier;
//     OOC spill files flush before they are streamed back.
//
// Determinism contract: issues happen in operation order on the same
// Reader/Writer, so fs-level op counts, injected-fault schedules, and
// file bytes are identical to blocking mode. A TransientIoError raised
// at issue/enqueue is stashed and re-thrown at the wait/flush — the
// same program point where blocking mode would have thrown (nothing
// later was issued, matching the blocking truncation). The
// inject::phase_point hooks pfs.prefetch / pfs.flush fire outside that
// stash, so an injected rank crash lands in the issue→wait window.
//
// Accounting closure: per rank, io_wait + io_hidden always equals the
// charged pfs.io_seconds timer. Internal operations run under a
// pfs::detail::DeferredIoScope (suppressing the blocking io-wait
// attribution) and the split is recorded at the wait; costs issued but
// never waited on (destructor drain, discard()) count as hidden.
//
// mimir-race integration: each prefetch buffer is frozen between issue
// and wait (check::race_nb_initiate/race_nb_complete) — a write into
// an in-flight prefetch buffer is a reported race, mirroring the
// non-blocking collective freeze.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <span>
#include <string_view>

#include "memtrack/tracker.hpp"
#include "pfs/filesystem.hpp"
#include "simtime/clock.hpp"

namespace pfs {

/// N-deep read-ahead over a Reader. Non-copyable, non-movable (frozen
/// race regions and in-flight accounting pin the buffers).
class AsyncReader {
 public:
  /// Takes ownership of `reader` and issues up to `depth` chunk reads
  /// immediately (chunk buffers are tracker-charged under the "io"
  /// tag). `clock` stamps the issue times; it is not advanced.
  AsyncReader(Reader reader, memtrack::Tracker& tracker,
              std::size_t chunk_bytes, int depth, simtime::Clock& clock);
  ~AsyncReader();

  AsyncReader(const AsyncReader&) = delete;
  AsyncReader& operator=(const AsyncReader&) = delete;

  /// Wait for the oldest in-flight chunk and return its data (empty at
  /// end of file), re-issuing the freed buffer so the next chunk is in
  /// flight while the caller processes this one. The returned span is
  /// valid until the next call. Charges the exposed remainder of the
  /// chunk's ready time to `clock`; re-throws a stashed
  /// mutil::TransientIoError at the wait (the blocking program point).
  std::span<const std::byte> next(simtime::Clock& clock);

  // --- test introspection --------------------------------------------------

  /// Buffer base of the oldest in-flight (frozen) chunk; nullptr when
  /// nothing is in flight.
  const void* in_flight_base() const noexcept {
    return in_flight_.empty() ? nullptr : in_flight_.front().buffer.data();
  }
  int in_flight() const noexcept {
    return static_cast<int>(in_flight_.size());
  }

 private:
  struct Slot {
    memtrack::TrackedBuffer buffer;
    std::size_t bytes = 0;   ///< payload actually read (0 at EOF)
    double cost = 0.0;       ///< charged operation cost
    double ready = 0.0;      ///< chained completion time
    std::exception_ptr fault;  ///< stashed TransientIoError, if any
  };

  /// Issue one read into `buffer`; no-op once EOF or a fault was seen.
  void issue(memtrack::TrackedBuffer buffer, const simtime::Clock& clock);

  Reader reader_;
  std::size_t chunk_;
  std::deque<Slot> in_flight_;
  Slot current_;
  double last_ready_ = 0.0;
  bool done_issuing_ = false;
};

/// Write-behind queue in front of append Writers. Disabled (the
/// default) it forwards every write synchronously, so blocking mode
/// never changes. Movable so containers can own one.
class AsyncWriter {
 public:
  AsyncWriter() noexcept = default;  ///< disabled
  explicit AsyncWriter(bool enabled) noexcept : enabled_(enabled) {}

  AsyncWriter(AsyncWriter&&) = default;
  AsyncWriter& operator=(AsyncWriter&&) = default;
  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  bool enabled() const noexcept { return enabled_; }

  /// Append `data` through `writer`. Enabled: the file mutates now,
  /// the clock charge is queued for flush(); a TransientIoError is
  /// stashed (delivered at flush) and later writes become no-ops,
  /// matching where blocking mode would have stopped. Disabled:
  /// synchronous writer.write().
  void write(Writer& writer, std::span<const std::byte> data,
             simtime::Clock& clock);
  void write(Writer& writer, std::string_view text, simtime::Clock& clock);

  /// Drain the queue: charge `clock` the exposed remainder of the
  /// chained ready time (or re-throw the stashed fault). The commit
  /// point — checkpoints flush before their commit barrier, spill
  /// files before they are streamed back. No-op when disabled.
  void flush(simtime::Clock& clock);

  /// Abandon queued charges without draining (the data is being
  /// deleted unread, e.g. drop_spill_file). Closes the accounting by
  /// recording them as hidden.
  void discard() noexcept;

  double queued_cost() const noexcept { return queued_cost_; }

 private:
  bool enabled_ = false;
  bool poisoned_ = false;
  double queued_cost_ = 0.0;
  double last_ready_ = 0.0;
  std::exception_ptr fault_;
};

}  // namespace pfs
