// Simulated global parallel file system (Lustre/GPFS stand-in).
//
// Supercomputer nodes have no local disk; both job input and any
// out-of-core spill go to one globally shared file system whose
// bandwidth is divided among all clients. That sharing is what makes
// MR-MPI's spillover catastrophic in the paper, so the cost model
// charges the calling rank's simulated clock:
//
//     cost(bytes) = pfs_latency
//                 + bytes / min(pfs_client_bandwidth,
//                               pfs_bandwidth / num_clients)
//
// i.e. a fixed RPC latency per operation plus the byte time at the
// rank's share of the file system: narrow jobs are limited by each
// client's own link, very wide jobs contend for the backend. File contents are
// kept byte-exact in memory (they are data, not accounting), and are
// deliberately NOT charged to memtrack — they model disk, not DRAM.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "simtime/clock.hpp"
#include "simtime/machine.hpp"

namespace pfs {

/// Aggregate I/O counters for a FileSystem.
struct IoStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
};

namespace detail {
struct FileData {
  mutable std::mutex mutex;
  std::vector<std::byte> bytes;
};

/// While one of these is alive on the calling thread, Reader/Writer
/// operations still count bytes/ops and charge pfs.io_seconds, but skip
/// the per-phase io-wait attribution: the async layer (pfs/async.hpp)
/// runs the op against a throwaway clock and records the exposed/hidden
/// split itself when the caller actually waits. Blocking callers never
/// see this — without a scope, every operation's full cost is io-wait.
class DeferredIoScope {
 public:
  DeferredIoScope() noexcept;
  ~DeferredIoScope();

  DeferredIoScope(const DeferredIoScope&) = delete;
  DeferredIoScope& operator=(const DeferredIoScope&) = delete;

  static bool active() noexcept;

 private:
  bool previous_;
};
}  // namespace detail

class FileSystem;

/// Sequential append-only writer. Each write charges the caller's clock.
class Writer {
 public:
  Writer() = default;

  void write(std::span<const std::byte> data, simtime::Clock& clock);
  void write(std::string_view text, simtime::Clock& clock);
  std::uint64_t bytes_written() const noexcept { return written_; }
  bool valid() const noexcept { return file_ != nullptr; }

 private:
  friend class FileSystem;
  Writer(FileSystem* fs, std::shared_ptr<detail::FileData> file)
      : fs_(fs), file_(std::move(file)) {}

  FileSystem* fs_ = nullptr;
  std::shared_ptr<detail::FileData> file_;
  std::uint64_t written_ = 0;
};

/// Sequential reader with random seek. Each read charges the caller's
/// clock.
class Reader {
 public:
  Reader() = default;

  /// Read up to out.size() bytes; returns the number actually read
  /// (0 at end of file).
  std::size_t read(std::span<std::byte> out, simtime::Clock& clock);

  /// Read the entire remaining contents as one operation: the buffer is
  /// sized from the file length up front (single allocation, one op
  /// charge — no growth through repeated reads).
  std::vector<std::byte> read_all(simtime::Clock& clock);

  std::uint64_t size() const;
  std::uint64_t tell() const noexcept { return offset_; }
  void seek(std::uint64_t offset) noexcept { offset_ = offset; }
  bool valid() const noexcept { return file_ != nullptr; }

 private:
  friend class FileSystem;
  Reader(FileSystem* fs, std::shared_ptr<detail::FileData> file)
      : fs_(fs), file_(std::move(file)) {}

  FileSystem* fs_ = nullptr;
  std::shared_ptr<detail::FileData> file_;
  std::uint64_t offset_ = 0;
};

/// The shared file system. Thread-safe: ranks are threads.
class FileSystem {
 public:
  /// `num_clients` is the number of ranks sharing the aggregate
  /// bandwidth (>= 1).
  FileSystem(const simtime::MachineProfile& profile, int num_clients);

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  /// Create (or truncate) a file and return an append writer.
  Writer create(const std::string& name);

  /// Open an existing file for appending, creating it if absent.
  Writer append(const std::string& name);

  /// Open an existing file for reading; throws mutil::IoError if absent.
  Reader open(const std::string& name);

  bool exists(const std::string& name) const;
  std::uint64_t file_size(const std::string& name) const;
  void remove(const std::string& name);
  /// Names of all files whose name starts with `prefix`, sorted.
  std::vector<std::string> list(std::string_view prefix = "") const;

  /// Convenience: whole-file write/read.
  void write_file(const std::string& name, std::span<const std::byte> data,
                  simtime::Clock& clock);
  void write_file(const std::string& name, std::string_view text,
                  simtime::Clock& clock);
  std::vector<std::byte> read_file(const std::string& name,
                                   simtime::Clock& clock);

  IoStats stats() const;
  /// Seconds charged for an operation moving `bytes`.
  double cost(std::uint64_t bytes) const noexcept;

  int num_clients() const noexcept { return num_clients_; }

 private:
  friend class Writer;
  friend class Reader;

  void record_read(std::uint64_t bytes) noexcept;
  void record_write(std::uint64_t bytes) noexcept;

  double latency_;
  double bandwidth_;
  double client_bandwidth_;
  int num_clients_;

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<detail::FileData>, std::less<>>
      files_;

  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> read_ops_{0};
  std::atomic<std::uint64_t> write_ops_{0};
};

}  // namespace pfs
