#include "pfs/filesystem.hpp"

#include <algorithm>
#include <cstring>

#include "inject/fault.hpp"
#include "mutil/error.hpp"
#include "stats/registry.hpp"

namespace pfs {

namespace {

/// Per-rank I/O accounting (counters + simulated I/O time) when the
/// calling thread is a rank thread bound to a stats registry; no-op
/// otherwise. Accounting only — never touches the clock or tracker.
void record_io(const char* bytes_counter, const char* ops_counter,
               std::uint64_t bytes, double seconds) {
  if (stats::Registry* reg = stats::current()) {
    reg->add(bytes_counter, bytes);
    reg->add(ops_counter, 1);
    reg->add_seconds("pfs.io_seconds", seconds);
    // A blocking operation stalls the rank for its whole cost. Async
    // operations run under a DeferredIoScope and attribute their
    // exposed/hidden split at the wait instead, keeping the closure
    // io_wait + io_hidden == pfs.io_seconds per rank.
    if (!detail::DeferredIoScope::active()) reg->record_io_wait(seconds);
  }
}

thread_local bool t_deferred_io = false;

}  // namespace

namespace detail {

DeferredIoScope::DeferredIoScope() noexcept : previous_(t_deferred_io) {
  t_deferred_io = true;
}

DeferredIoScope::~DeferredIoScope() { t_deferred_io = previous_; }

bool DeferredIoScope::active() noexcept { return t_deferred_io; }

}  // namespace detail

FileSystem::FileSystem(const simtime::MachineProfile& profile,
                       int num_clients)
    : latency_(profile.pfs_latency),
      bandwidth_(profile.pfs_bandwidth),
      client_bandwidth_(profile.pfs_client_bandwidth > 0
                            ? profile.pfs_client_bandwidth
                            : profile.pfs_bandwidth),
      num_clients_(std::max(1, num_clients)) {
  if (bandwidth_ <= 0.0) {
    throw mutil::ConfigError("pfs: bandwidth must be positive");
  }
}

double FileSystem::cost(std::uint64_t bytes) const noexcept {
  // Per-client link ceiling, or the job's share of the backend when the
  // job is wide enough to contend for it.
  const double share =
      std::min(client_bandwidth_, bandwidth_ / num_clients_);
  return latency_ + static_cast<double>(bytes) / share;
}

Writer FileSystem::create(const std::string& name) {
  auto file = std::make_shared<detail::FileData>();
  {
    const std::scoped_lock lock(mutex_);
    files_[name] = file;
  }
  return Writer(this, std::move(file));
}

Writer FileSystem::append(const std::string& name) {
  std::shared_ptr<detail::FileData> file;
  {
    const std::scoped_lock lock(mutex_);
    auto& slot = files_[name];
    if (!slot) slot = std::make_shared<detail::FileData>();
    file = slot;
  }
  return Writer(this, std::move(file));
}

Reader FileSystem::open(const std::string& name) {
  std::shared_ptr<detail::FileData> file;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = files_.find(name);
    if (it == files_.end()) {
      throw mutil::IoError("pfs: no such file '" + name + "'");
    }
    file = it->second;
  }
  return Reader(this, std::move(file));
}

bool FileSystem::exists(const std::string& name) const {
  const std::scoped_lock lock(mutex_);
  return files_.find(name) != files_.end();
}

std::uint64_t FileSystem::file_size(const std::string& name) const {
  std::shared_ptr<detail::FileData> file;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = files_.find(name);
    if (it == files_.end()) {
      throw mutil::IoError("pfs: no such file '" + name + "'");
    }
    file = it->second;
  }
  const std::scoped_lock file_lock(file->mutex);
  return file->bytes.size();
}

void FileSystem::remove(const std::string& name) {
  const std::scoped_lock lock(mutex_);
  files_.erase(name);
}

std::vector<std::string> FileSystem::list(std::string_view prefix) const {
  std::vector<std::string> names;
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, file] : files_) {
    if (name.size() >= prefix.size() &&
        std::string_view(name).substr(0, prefix.size()) == prefix) {
      names.push_back(name);
    }
  }
  return names;  // std::map iteration is already sorted
}

void FileSystem::write_file(const std::string& name,
                            std::span<const std::byte> data,
                            simtime::Clock& clock) {
  Writer writer = create(name);
  writer.write(data, clock);
}

void FileSystem::write_file(const std::string& name, std::string_view text,
                            simtime::Clock& clock) {
  write_file(name,
             std::span<const std::byte>(
                 reinterpret_cast<const std::byte*>(text.data()),
                 text.size()),
             clock);
}

std::vector<std::byte> FileSystem::read_file(const std::string& name,
                                             simtime::Clock& clock) {
  Reader reader = open(name);
  return reader.read_all(clock);
}

IoStats FileSystem::stats() const {
  IoStats s;
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.read_ops = read_ops_.load(std::memory_order_relaxed);
  s.write_ops = write_ops_.load(std::memory_order_relaxed);
  return s;
}

void FileSystem::record_read(std::uint64_t bytes) noexcept {
  bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  read_ops_.fetch_add(1, std::memory_order_relaxed);
}

void FileSystem::record_write(std::uint64_t bytes) noexcept {
  bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
  write_ops_.fetch_add(1, std::memory_order_relaxed);
}

void Writer::write(std::span<const std::byte> data, simtime::Clock& clock) {
  if (!valid()) throw mutil::IoError("pfs: write on invalid Writer");
  // Fault hook fires before the mutation: a transient injected error
  // leaves the file untouched, so the caller can simply retry.
  const double slow = inject::pfs_point(data.size());
  {
    const std::scoped_lock lock(file_->mutex);
    file_->bytes.insert(file_->bytes.end(), data.begin(), data.end());
  }
  written_ += data.size();
  fs_->record_write(data.size());
  double cost = fs_->cost(data.size());
  if (slow != 1.0) cost *= slow;
  record_io("pfs.bytes_written", "pfs.write_ops", data.size(), cost);
  clock.advance(cost);
}

void Writer::write(std::string_view text, simtime::Clock& clock) {
  write(std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(text.data()), text.size()),
        clock);
}

std::size_t Reader::read(std::span<std::byte> out, simtime::Clock& clock) {
  if (!valid()) throw mutil::IoError("pfs: read on invalid Reader");
  const double slow = inject::pfs_point(out.size());
  std::size_t n = 0;
  {
    const std::scoped_lock lock(file_->mutex);
    if (offset_ < file_->bytes.size()) {
      n = std::min<std::size_t>(out.size(), file_->bytes.size() - offset_);
      std::memcpy(out.data(), file_->bytes.data() + offset_, n);
    }
  }
  offset_ += n;
  fs_->record_read(n);
  double cost = fs_->cost(n);
  if (slow != 1.0) cost *= slow;
  record_io("pfs.bytes_read", "pfs.read_ops", n, cost);
  clock.advance(cost);
  return n;
}

std::vector<std::byte> Reader::read_all(simtime::Clock& clock) {
  if (!valid()) throw mutil::IoError("pfs: read on invalid Reader");
  // Size the buffer from the file length up front: one allocation and
  // one operation charge, no growth through repeated reads. The fault
  // hook fires before the copy (like read), now with the real size.
  std::uint64_t remaining = 0;
  {
    const std::scoped_lock lock(file_->mutex);
    if (offset_ < file_->bytes.size()) {
      remaining = file_->bytes.size() - offset_;
    }
  }
  const double slow = inject::pfs_point(remaining);
  std::vector<std::byte> out(remaining);
  std::size_t n = 0;
  {
    const std::scoped_lock lock(file_->mutex);
    if (offset_ < file_->bytes.size()) {
      n = std::min<std::size_t>(out.size(), file_->bytes.size() - offset_);
      std::memcpy(out.data(), file_->bytes.data() + offset_, n);
    }
  }
  out.resize(n);
  offset_ += n;
  fs_->record_read(n);
  double cost = fs_->cost(n);
  if (slow != 1.0) cost *= slow;
  record_io("pfs.bytes_read", "pfs.read_ops", n, cost);
  clock.advance(cost);
  return out;
}

std::uint64_t Reader::size() const {
  if (!valid()) throw mutil::IoError("pfs: size on invalid Reader");
  const std::scoped_lock lock(file_->mutex);
  return file_->bytes.size();
}

}  // namespace pfs
