#include "pfs/async.hpp"

#include <algorithm>
#include <utility>

#include "check/race.hpp"
#include "inject/fault.hpp"
#include "mutil/error.hpp"
#include "stats/registry.hpp"

namespace pfs {

namespace {

void record_split(double exposed, double hidden) {
  if (stats::Registry* reg = stats::current()) {
    reg->record_io_wait(exposed);
    reg->record_io_hidden(hidden);
  }
}

void record_hidden(double seconds) {
  if (stats::Registry* reg = stats::current()) {
    reg->record_io_hidden(seconds);
  }
}

}  // namespace

// --- AsyncReader -----------------------------------------------------------

AsyncReader::AsyncReader(Reader reader, memtrack::Tracker& tracker,
                         std::size_t chunk_bytes, int depth,
                         simtime::Clock& clock)
    : reader_(std::move(reader)), chunk_(chunk_bytes) {
  if (chunk_ == 0) {
    throw mutil::UsageError("pfs: AsyncReader chunk size must be positive");
  }
  depth = std::max(depth, 1);
  const memtrack::TagScope tag("io", memtrack::TagScope::Mode::kFallback);
  for (int i = 0; i < depth && !done_issuing_; ++i) {
    issue(memtrack::TrackedBuffer(tracker, chunk_), clock);
  }
}

AsyncReader::~AsyncReader() {
  // Issued but never waited on (early loop exit, unwinding after a
  // fault): their costs were charged to pfs.io_seconds at issue, so
  // close the accounting by counting them as hidden.
  while (!in_flight_.empty()) {
    Slot& slot = in_flight_.front();
    check::race_nb_complete(slot.buffer.data());
    if (slot.fault == nullptr) record_hidden(slot.cost);
    in_flight_.pop_front();
  }
}

void AsyncReader::issue(memtrack::TrackedBuffer buffer,
                        const simtime::Clock& clock) {
  if (done_issuing_) return;
  // The crash hook fires outside the stash below, so an injected
  // rank_crash@pfs.prefetch propagates here — between issue and wait.
  inject::phase_point("pfs.prefetch");
  Slot slot;
  slot.buffer = std::move(buffer);
  // The operation owns the buffer until the wait: freeze it so a
  // same-rank write into an in-flight prefetch buffer is a race.
  check::race_nb_initiate(slot.buffer.data(), /*op_writes=*/true,
                          "pfs.prefetch");
  simtime::Clock io;
  try {
    const detail::DeferredIoScope defer;
    slot.bytes = reader_.read(slot.buffer.span(), io);
  } catch (const mutil::TransientIoError&) {
    // Blocking mode would throw at this operation; deliver at the
    // wait instead and issue nothing further (nothing after the throw
    // would have happened).
    slot.fault = std::current_exception();
    done_issuing_ = true;
  }
  slot.cost = io.now();
  // Shared-bandwidth operations queue behind each other: this request
  // completes one cost after the later of "issued now" and "previous
  // request done".
  last_ready_ = std::max(clock.now(), last_ready_) + slot.cost;
  slot.ready = last_ready_;
  // EOF is a real zero-byte operation (it still cost one latency, same
  // as the blocking loop's terminating read); stop issuing past it.
  if (slot.fault == nullptr && slot.bytes == 0) done_issuing_ = true;
  in_flight_.push_back(std::move(slot));
}

std::span<const std::byte> AsyncReader::next(simtime::Clock& clock) {
  // Recycle the chunk the caller just finished: its buffer becomes the
  // next read-ahead request. This must precede the empty check — at
  // depth 1 the queue is empty between consecutive chunks, and the
  // recycled buffer is what keeps the file advancing.
  if (current_.buffer.size() > 0 && !done_issuing_) {
    issue(std::move(current_.buffer), clock);
  }
  if (in_flight_.empty()) return {};
  Slot slot = std::move(in_flight_.front());
  in_flight_.pop_front();
  check::race_nb_complete(slot.buffer.data());
  if (slot.fault != nullptr) {
    std::rethrow_exception(std::exchange(slot.fault, nullptr));
  }
  // Charge the wait: sync to the chained ready time. What the clock
  // had already passed of the cost completed under compute — hidden.
  const double exposed = std::max(0.0, slot.ready - clock.now());
  clock.sync_to(slot.ready);
  record_split(exposed, slot.cost - exposed);
  current_ = std::move(slot);
  return std::span<const std::byte>(current_.buffer.data(), current_.bytes);
}

// --- AsyncWriter -----------------------------------------------------------

void AsyncWriter::write(Writer& writer, std::span<const std::byte> data,
                        simtime::Clock& clock) {
  if (!enabled_) {
    writer.write(data, clock);
    return;
  }
  // Blocking mode stopped at the faulted write; so do we.
  if (poisoned_) return;
  simtime::Clock io;
  try {
    const detail::DeferredIoScope defer;
    // The file mutates here, at enqueue — bytes, ordering, and reader
    // visibility are identical to blocking mode. Only the clock charge
    // is deferred.
    writer.write(data, io);
  } catch (const mutil::TransientIoError&) {
    fault_ = std::current_exception();
    poisoned_ = true;
    return;
  }
  queued_cost_ += io.now();
  last_ready_ = std::max(clock.now(), last_ready_) + io.now();
}

void AsyncWriter::write(Writer& writer, std::string_view text,
                        simtime::Clock& clock) {
  write(writer,
        std::span<const std::byte>(
            reinterpret_cast<const std::byte*>(text.data()), text.size()),
        clock);
}

void AsyncWriter::flush(simtime::Clock& clock) {
  if (!enabled_) return;
  inject::phase_point("pfs.flush");
  if (fault_ != nullptr) {
    // Costs queued before the fault were charged to pfs.io_seconds at
    // enqueue; close the accounting before delivering the throw at
    // the drain point. poisoned_ stays set: the queue is dead.
    record_hidden(queued_cost_);
    queued_cost_ = 0.0;
    std::rethrow_exception(std::exchange(fault_, nullptr));
  }
  const double exposed = std::max(0.0, last_ready_ - clock.now());
  clock.sync_to(last_ready_);
  record_split(exposed, queued_cost_ - exposed);
  queued_cost_ = 0.0;
}

void AsyncWriter::discard() noexcept {
  if (!enabled_) return;
  record_hidden(queued_cost_);
  queued_cost_ = 0.0;
  fault_ = nullptr;
  poisoned_ = false;
}

}  // namespace pfs
