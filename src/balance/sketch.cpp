#include "balance/sketch.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "mutil/error.hpp"
#include "mutil/hash.hpp"

namespace balance {

namespace {

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_u64(std::span<const std::byte> blob, std::size_t& pos) {
  if (pos + 8 > blob.size()) {
    throw mutil::UsageError("balance: truncated sketch blob");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(blob[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return v;
}

}  // namespace

KeyFreqSketch::KeyFreqSketch(std::size_t capacity,
                             std::size_t reservoir_capacity, int ndests)
    : capacity_(capacity),
      reservoir_capacity_(reservoir_capacity),
      dest_bytes_(static_cast<std::size_t>(ndests < 0 ? 0 : ndests), 0) {}

void KeyFreqSketch::offer(std::string_view key, std::uint64_t bytes,
                          int dest) {
  total_bytes_ += bytes;
  ++offered_;
  if (dest >= 0 && static_cast<std::size_t>(dest) < dest_bytes_.size()) {
    dest_bytes_[static_cast<std::size_t>(dest)] += bytes;
  }
  if (reservoir_capacity_ > 0) {
    reservoir_.insert(mutil::hash_bytes(key));
    if (reservoir_.size() > reservoir_capacity_) {
      reservoir_.erase(std::prev(reservoir_.end()));
    }
  }
  if (capacity_ == 0) return;
  if (const auto it = heavy_.find(key); it != heavy_.end()) {
    it->second.bytes += bytes;
    return;
  }
  if (heavy_.size() < capacity_) {
    heavy_.emplace(std::string(key), HeavyEntry{bytes, 0});
    return;
  }
  // SpaceSaving eviction: replace the minimum-bytes entry; the map's
  // key order makes the first minimal entry the lexicographically
  // smallest, so eviction is deterministic.
  auto victim = heavy_.begin();
  for (auto it = heavy_.begin(); it != heavy_.end(); ++it) {
    if (it->second.bytes < victim->second.bytes) victim = it;
  }
  const std::uint64_t floor = victim->second.bytes;
  heavy_.erase(victim);
  heavy_.emplace(std::string(key), HeavyEntry{floor + bytes, floor});
}

std::uint64_t KeyFreqSketch::distinct_estimate() const {
  if (reservoir_.empty()) return 0;
  if (reservoir_.size() < reservoir_capacity_) {
    return reservoir_.size();
  }
  // Bottom-k estimator: k-th smallest of d uniform hashes sits near
  // k/d of the hash space.
  const double kth = static_cast<double>(*reservoir_.rbegin());
  if (kth <= 0.0) return reservoir_.size();
  const double space =
      static_cast<double>(std::numeric_limits<std::uint64_t>::max());
  const double estimate =
      static_cast<double>(reservoir_.size() - 1) * (space / kth);
  return estimate < static_cast<double>(reservoir_.size())
             ? reservoir_.size()
             : static_cast<std::uint64_t>(estimate);
}

std::vector<std::byte> KeyFreqSketch::serialize() const {
  std::vector<std::byte> out;
  put_u64(out, capacity_);
  put_u64(out, reservoir_capacity_);
  put_u64(out, dest_bytes_.size());
  put_u64(out, total_bytes_);
  put_u64(out, offered_);
  for (const std::uint64_t b : dest_bytes_) put_u64(out, b);
  put_u64(out, heavy_.size());
  for (const auto& [key, entry] : heavy_) {
    put_u64(out, key.size());
    const auto* bytes = reinterpret_cast<const std::byte*>(key.data());
    out.insert(out.end(), bytes, bytes + key.size());
    put_u64(out, entry.bytes);
    put_u64(out, entry.error);
  }
  put_u64(out, reservoir_.size());
  for (const std::uint64_t h : reservoir_) put_u64(out, h);
  return out;
}

KeyFreqSketch KeyFreqSketch::deserialize(std::span<const std::byte> blob) {
  std::size_t pos = 0;
  KeyFreqSketch out;
  out.capacity_ = static_cast<std::size_t>(get_u64(blob, pos));
  out.reservoir_capacity_ = static_cast<std::size_t>(get_u64(blob, pos));
  const std::uint64_t ndests = get_u64(blob, pos);
  out.total_bytes_ = get_u64(blob, pos);
  out.offered_ = get_u64(blob, pos);
  out.dest_bytes_.resize(static_cast<std::size_t>(ndests));
  for (auto& b : out.dest_bytes_) b = get_u64(blob, pos);
  const std::uint64_t nheavy = get_u64(blob, pos);
  for (std::uint64_t i = 0; i < nheavy; ++i) {
    const std::uint64_t len = get_u64(blob, pos);
    if (pos + len > blob.size()) {
      throw mutil::UsageError("balance: truncated sketch key");
    }
    std::string key(reinterpret_cast<const char*>(blob.data() + pos),
                    static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);
    HeavyEntry entry;
    entry.bytes = get_u64(blob, pos);
    entry.error = get_u64(blob, pos);
    out.heavy_.emplace(std::move(key), entry);
  }
  const std::uint64_t nres = get_u64(blob, pos);
  for (std::uint64_t i = 0; i < nres; ++i) {
    out.reservoir_.insert(get_u64(blob, pos));
  }
  if (pos != blob.size()) {
    throw mutil::UsageError("balance: trailing bytes in sketch blob");
  }
  return out;
}

void KeyFreqSketch::merge(const KeyFreqSketch& other) {
  if (dest_bytes_.size() != other.dest_bytes_.size()) {
    throw mutil::UsageError(
        "balance: merging sketches with different destination counts");
  }
  total_bytes_ += other.total_bytes_;
  offered_ += other.offered_;
  for (std::size_t d = 0; d < dest_bytes_.size(); ++d) {
    dest_bytes_[d] += other.dest_bytes_[d];
  }
  for (const auto& [key, entry] : other.heavy_) {
    HeavyEntry& mine = heavy_[key];
    mine.bytes += entry.bytes;
    mine.error += entry.error;
  }
  for (const std::uint64_t h : other.reservoir_) {
    reservoir_.insert(h);
    if (reservoir_capacity_ > 0 &&
        reservoir_.size() > reservoir_capacity_) {
      reservoir_.erase(std::prev(reservoir_.end()));
    }
  }
}

}  // namespace balance
