#include "balance/plan.hpp"

#include <algorithm>
#include <cmath>

#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "mutil/hash.hpp"

namespace balance {

Options Options::from(const mutil::Config& cfg) {
  Options out;
  out.enabled = cfg.get_bool("mimir.balance", out.enabled);
  out.sketch_capacity = static_cast<std::size_t>(
      cfg.get_int("mimir.balance.sketch_capacity",
                  static_cast<std::int64_t>(out.sketch_capacity)));
  out.reservoir_capacity = static_cast<std::size_t>(
      cfg.get_int("mimir.balance.reservoir_capacity",
                  static_cast<std::int64_t>(out.reservoir_capacity)));
  out.allow_split = cfg.get_bool("mimir.balance.split", out.allow_split);
  out.max_splits = static_cast<std::size_t>(
      cfg.get_int("mimir.balance.max_splits",
                  static_cast<std::int64_t>(out.max_splits)));
  out.split_threshold =
      cfg.get_double("mimir.balance.split_threshold", out.split_threshold);
  if (out.sketch_capacity == 0) {
    throw mutil::ConfigError("mimir.balance.sketch_capacity must be >= 1");
  }
  if (out.max_splits == 0) {
    throw mutil::ConfigError("mimir.balance.max_splits must be >= 1");
  }
  if (out.split_threshold <= 0.0) {
    throw mutil::ConfigError("mimir.balance.split_threshold must be > 0");
  }
  return out;
}

void Plan::insert(std::string key, PlanEntry entry) {
  if (entry.ranks.empty()) {
    throw mutil::UsageError("balance: plan entry without destinations");
  }
  if (entry.ranks.size() > 1) ++split_keys_;
  entries_.insert_or_assign(std::move(key), std::move(entry));
}

std::uint64_t Plan::fingerprint() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const auto& [key, entry] : entries_) {
    h = mutil::mix64(h ^ mutil::hash_bytes(key));
    for (const int r : entry.ranks) {
      h = mutil::mix64(h ^ static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(r)));
    }
  }
  return h;
}

Plan build_plan(const KeyFreqSketch& merged, int nranks,
                const Options& opts) {
  Plan plan;
  if (nranks <= 1 || merged.total_bytes() == 0) return plan;
  const auto p = static_cast<std::size_t>(nranks);

  // Tail load per rank: exact per-destination totals minus the heavy
  // bytes hashed there. The hash fallback keeps routing these bytes, so
  // they are the fixed floor the heavy keys are packed on top of.
  std::vector<double> load(p, 0.0);
  for (std::size_t d = 0; d < p && d < merged.dest_bytes().size(); ++d) {
    load[d] = static_cast<double>(merged.dest_bytes()[d]);
  }
  for (const auto& [key, entry] : merged.heavy()) {
    const auto d = static_cast<std::size_t>(
        mutil::hash_bytes(key) % static_cast<std::uint64_t>(nranks));
    load[d] -= static_cast<double>(entry.bytes);
    if (load[d] < 0.0) load[d] = 0.0;
  }

  // Largest keys first; ties by key order. Deterministic given the
  // deterministic merged sketch.
  std::vector<std::pair<std::string_view, std::uint64_t>> keys;
  keys.reserve(merged.heavy().size());
  for (const auto& [key, entry] : merged.heavy()) {
    keys.emplace_back(key, entry.bytes);
  }
  std::sort(keys.begin(), keys.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  const double target =
      static_cast<double>(merged.total_bytes()) / static_cast<double>(p);

  std::vector<char> taken(p, 0);  // per-key distinct-rank mask
  for (const auto& [key, bytes] : keys) {
    const double w = static_cast<double>(bytes);
    std::size_t shares = 1;
    if (opts.allow_split && target > 0.0 &&
        w > opts.split_threshold * target) {
      shares = static_cast<std::size_t>(std::ceil(w / target));
      shares = std::min({shares, opts.max_splits, p});
      if (shares == 0) shares = 1;
    }
    std::fill(taken.begin(), taken.end(), 0);
    PlanEntry entry;
    entry.ranks.reserve(shares);
    for (std::size_t s = 0; s < shares; ++s) {
      std::size_t best = p;
      for (std::size_t r = 0; r < p; ++r) {
        if (taken[r]) continue;
        if (best == p || load[r] < load[best]) best = r;
      }
      taken[best] = 1;
      load[best] += w / static_cast<double>(shares);
      entry.ranks.push_back(static_cast<int>(best));
    }
    const int fallback = static_cast<int>(
        mutil::hash_bytes(key) % static_cast<std::uint64_t>(nranks));
    if (entry.ranks.size() == 1 && entry.ranks[0] == fallback) {
      continue;  // routing unchanged; skip the per-emit lookup
    }
    plan.insert(std::string(key), std::move(entry));
  }
  return plan;
}

}  // namespace balance
