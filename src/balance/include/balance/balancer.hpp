// Per-rank balance driver: sample -> exchange -> plan -> route.
//
// One Balancer lives on each rank of a job (owned by mimir::Job, handed
// to the Shuffle). The protocol piggybacks on the shuffle's own round
// structure:
//
//   1. While no plan exists, Shuffle::emit feeds every KV to sample()
//      — the first partition-buffer fill is the sampling window.
//   2. At the top of the first exchange round (blocking or overlapped:
//      rounds are collective, so all ranks arrive here together) the
//      Shuffle calls exchange_and_plan(): local sketches are
//      allgatherv'd, merged in rank order, and build_plan runs on the
//      identical merged view — every rank installs the identical plan
//      with no second communication step.
//   3. Subsequent emits go through route(): heavy keys follow the plan,
//      the tail keeps the hash/partitioner fallback.
//
// mimir-race integration: the sketch and the installed plan are
// registered SharedRegions; sample() and the plan install are writes,
// route() is a read. The allgatherv rendezvous between the last write
// of phase 1 and the install of phase 2 is the happens-before edge that
// keeps the discipline race-free — exactly what the race tests assert.
//
// Fault injection: exchange_and_plan opens the `balance.plan` phase
// point, so FaultPlans can crash a rank mid-plan-exchange
// (rank_crash:R@balance.plan) and recovery tests can prove the job
// restarts cleanly.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>

#include "balance/plan.hpp"
#include "balance/sketch.hpp"
#include "check/race.hpp"
#include "simmpi/runtime.hpp"

namespace balance {

class Balancer {
 public:
  Balancer(Options opts, int nranks);

  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  const Options& options() const noexcept { return opts_; }
  int nranks() const noexcept { return nranks_; }

  /// Record one emitted KV during the sampling window (`dest` is the
  /// fallback destination the KV was routed to).
  void sample(std::string_view key, std::uint64_t bytes, int dest);

  bool planned() const noexcept { return planned_; }

  /// Collective: serialize the local sketch, allgatherv, merge in rank
  /// order, build and install the plan (identical on every rank).
  /// Idempotent after the first call.
  void exchange_and_plan(simmpi::Context& ctx);

  /// Post-plan destination for `key` (fallback for tail keys). Valid
  /// only after exchange_and_plan.
  int route(std::string_view key, int fallback, int sender) const;

  bool is_planned_key(std::string_view key) const {
    return plan_.planned(key);
  }

  const Plan& plan() const noexcept { return plan_; }
  const KeyFreqSketch& sketch() const noexcept { return sketch_; }

  /// Observer slot fired on every rank right after the plan install
  /// (tests, diagnostics). Runs on the rank thread; a shared capture
  /// here is exactly the hazard lint_capture.py scans sinks for.
  std::function<void(const Plan&)> on_plan;

 private:
  Options opts_;
  int nranks_;
  KeyFreqSketch sketch_;
  Plan plan_;
  bool planned_ = false;
  check::SharedRegion sketch_region_;
  check::SharedRegion plan_region_;
};

}  // namespace balance
