// Streaming key-frequency sampler for skew-aware partitioning.
//
// Each rank feeds the sketch from its map emissions during the first
// partition-buffer fill (before the first exchange round). Two bounded
// structures capture the distribution:
//
//   * a SpaceSaving heavy-hitter table over encoded key bytes: at most
//     `capacity` keys with (bytes, error) estimates. The classic
//     guarantee holds per rank: a key whose true byte volume exceeds
//     total/capacity is present, and estimate - error <= true <=
//     estimate. Eviction picks the minimum-bytes entry, ties broken by
//     the lexicographically smallest key, so the table contents are a
//     deterministic function of the offered stream.
//   * a bottom-k min-hash reservoir over distinct keys, giving a cheap
//     distinct-key estimate for the tail without storing tail keys.
//
// Per-destination byte totals (under the fallback hash routing) are
// tracked exactly; the planner derives the un-plannable tail load of a
// rank as total[d] minus the heavy bytes hashed to d.
//
// Sketches serialize to a deterministic, byte-ordered format (sorted
// keys, fixed-width little-endian integers) so the allgatherv'd blobs —
// and therefore the merged global sketch and the plan built from it —
// are bit-identical across runs and independent of host scheduling.
//
// Like the stats registry, sketch storage is bounded, rank-private and
// untracked: sampling never advances a simulated clock and never
// charges a memory tracker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace balance {

/// SpaceSaving estimate for one heavy key (byte volume, not counts:
/// balancing cares about shuffle bytes, and KVs vary in size).
struct HeavyEntry {
  std::uint64_t bytes = 0;  ///< estimated encoded bytes (overestimate)
  std::uint64_t error = 0;  ///< overestimation bound (0 = exact)
};

class KeyFreqSketch {
 public:
  KeyFreqSketch() = default;
  /// `ndests` is the rank count of the fallback routing (sizes the
  /// per-destination totals).
  KeyFreqSketch(std::size_t capacity, std::size_t reservoir_capacity,
                int ndests);

  /// Record one emitted KV: `bytes` encoded bytes routed to fallback
  /// destination `dest`.
  void offer(std::string_view key, std::uint64_t bytes, int dest);

  const std::map<std::string, HeavyEntry, std::less<>>& heavy()
      const noexcept {
    return heavy_;
  }
  /// Exact bytes offered toward each fallback destination.
  const std::vector<std::uint64_t>& dest_bytes() const noexcept {
    return dest_bytes_;
  }
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  std::uint64_t offered_kvs() const noexcept { return offered_; }
  std::size_t capacity() const noexcept { return capacity_; }
  int ndests() const noexcept {
    return static_cast<int>(dest_bytes_.size());
  }

  /// Estimated distinct keys (bottom-k min-hash; exact while fewer than
  /// `reservoir_capacity` distinct hashes were seen).
  std::uint64_t distinct_estimate() const;

  /// Deterministic byte serialization (sorted keys, little-endian).
  std::vector<std::byte> serialize() const;
  /// Inverse of serialize(); throws mutil::UsageError on a malformed
  /// blob (truncation, destination-count mismatch with `ndests`).
  static KeyFreqSketch deserialize(std::span<const std::byte> blob);

  /// Fold `other` into this sketch: per-destination totals and matching
  /// heavy entries are summed, the reservoirs are unioned (trimmed back
  /// to capacity). The merged heavy table deliberately keeps the union
  /// of keys (up to ranks x capacity entries) — the planner wants the
  /// complete global candidate set, and the union is still tiny.
  void merge(const KeyFreqSketch& other);

 private:
  std::size_t capacity_ = 0;
  std::size_t reservoir_capacity_ = 0;
  std::map<std::string, HeavyEntry, std::less<>> heavy_;
  std::vector<std::uint64_t> dest_bytes_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t offered_ = 0;
  std::set<std::uint64_t> reservoir_;  ///< k smallest key hashes
};

}  // namespace balance
