// Partition planner: merged key-frequency sketch -> balanced assignment.
//
// The planner sees the globally merged sketch (identical on every rank
// after the allgatherv) and produces a Plan mapping each heavy key to
// one or more shuffle destinations:
//
//   * tail load per rank is seeded from the exact per-destination byte
//     totals minus the heavy bytes hashed there — the un-plannable
//     bytes the hash fallback will keep routing to that rank;
//   * heavy keys are bin-packed greedily, largest first (ties broken by
//     key order), each onto the currently least-loaded rank (ties
//     broken by lowest rank id);
//   * a key whose estimated bytes exceed split_threshold x the per-rank
//     target is split across up to max_splits distinct ranks; senders
//     spread their emissions round-robin over the shares, and the
//     framework's merge pass re-homes the combined shares after the
//     map (safe for any reduce, profitable for associative ones);
//   * an unsplit key that lands on its own hash destination is dropped
//     from the plan — routing would not change, so the lookup is waste.
//
// The algorithm consumes only the merged sketch, the rank count, and
// the options — all identical across ranks and runs — so every rank
// computes the same Plan locally with no further communication, and
// plans are bit-identical across repeated runs (test-enforced).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "balance/sketch.hpp"

namespace mutil {
class Config;
}

namespace balance {

/// Balance knobs ("mimir.balance" / "mimir.balance.*" config keys).
struct Options {
  bool enabled = false;           ///< mimir.balance
  std::size_t sketch_capacity = 64;     ///< heavy-hitter table entries
  std::size_t reservoir_capacity = 256; ///< tail distinct-estimate size
  bool allow_split = true;        ///< mimir.balance.split
  std::size_t max_splits = 4;     ///< shares per split key
  /// Split a key when its bytes exceed this multiple of the per-rank
  /// byte target.
  double split_threshold = 1.25;

  /// Parse mimir.balance and mimir.balance.{sketch_capacity,
  /// reservoir_capacity, split, max_splits, split_threshold}.
  static Options from(const mutil::Config& cfg);
};

/// Shuffle destinations for one planned key. `ranks` is never empty;
/// size 1 = the key was moved, size > 1 = split across shares.
struct PlanEntry {
  std::vector<int> ranks;
};

/// Deterministic key -> destination override; identical on every rank.
class Plan {
 public:
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t split_keys() const noexcept { return split_keys_; }

  bool planned(std::string_view key) const {
    return entries_.find(key) != entries_.end();
  }

  /// Destination for `key` emitted by rank `sender`: the fallback for
  /// tail keys, otherwise one of the key's shares (senders spread
  /// round-robin so split shares fill evenly).
  int route(std::string_view key, int fallback, int sender) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return fallback;
    const std::vector<int>& ranks = it->second.ranks;
    return ranks[static_cast<std::size_t>(sender) % ranks.size()];
  }

  const std::map<std::string, PlanEntry, std::less<>>& entries()
      const noexcept {
    return entries_;
  }

  void insert(std::string key, PlanEntry entry);

  /// Chained hash over the sorted entries; equal plans hash equal
  /// (the determinism tests compare fingerprints across runs).
  std::uint64_t fingerprint() const;

 private:
  std::map<std::string, PlanEntry, std::less<>> entries_;
  std::size_t split_keys_ = 0;
};

/// Build the balanced assignment from the merged global sketch.
/// Deterministic in (merged, nranks, opts); every rank calls this on
/// identical inputs and obtains the identical plan.
Plan build_plan(const KeyFreqSketch& merged, int nranks,
                const Options& opts);

}  // namespace balance
