#include "balance/balancer.hpp"

#include <utility>

#include "inject/fault.hpp"
#include "stats/registry.hpp"

namespace balance {

Balancer::Balancer(Options opts, int nranks)
    : opts_(opts),
      nranks_(nranks),
      sketch_(opts.sketch_capacity, opts.reservoir_capacity, nranks),
      sketch_region_("balance.sketch", &sketch_, sizeof(sketch_)),
      plan_region_("balance.plan", &plan_, sizeof(plan_)) {}

void Balancer::sample(std::string_view key, std::uint64_t bytes, int dest) {
  sketch_region_.note_write();
  sketch_.offer(key, bytes, dest);
}

void Balancer::exchange_and_plan(simmpi::Context& ctx) {
  if (planned_) return;
  inject::phase_point("balance.plan");
  sketch_region_.note_read();
  const std::vector<std::byte> blob = sketch_.serialize();
  const simmpi::GatherResult all = ctx.comm.allgatherv(blob);

  // Merge in rank order: every rank folds the same blobs in the same
  // order, so the merged sketch — and the plan below — is identical
  // everywhere without a second agreement step.
  KeyFreqSketch merged;
  std::size_t offset = 0;
  for (std::size_t r = 0; r < all.counts.size(); ++r) {
    const auto n = static_cast<std::size_t>(all.counts[r]);
    const std::span<const std::byte> part(all.data.data() + offset, n);
    offset += n;
    if (r == 0) {
      merged = KeyFreqSketch::deserialize(part);
    } else {
      merged.merge(KeyFreqSketch::deserialize(part));
    }
  }

  plan_region_.note_write();
  plan_ = build_plan(merged, nranks_, opts_);
  planned_ = true;

  if (stats::Registry* reg = stats::current()) {
    reg->instant("balance.plan");
    reg->add("balance.sampled_kvs", sketch_.offered_kvs());
    reg->add("balance.sampled_bytes", sketch_.total_bytes());
    reg->add("balance.sketch_bytes", blob.size());
    reg->add("balance.plan_keys", plan_.size());
    reg->add("balance.split_keys", plan_.split_keys());
    reg->add("balance.heavy_keys", merged.heavy().size());
    reg->add("balance.tail_distinct_est", merged.distinct_estimate());
  }
  if (on_plan) on_plan(plan_);
}

int Balancer::route(std::string_view key, int fallback, int sender) const {
  plan_region_.note_read();
  return plan_.route(key, fallback, sender);
}

}  // namespace balance
