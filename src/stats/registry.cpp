#include "stats/registry.hpp"

#include <algorithm>

#include "memtrack/tracker.hpp"
#include "mutil/error.hpp"
#include "simtime/clock.hpp"

namespace stats {

namespace {
Registry*& current_slot() noexcept {
  thread_local Registry* bound = nullptr;
  return bound;
}
}  // namespace

Registry* current() noexcept { return current_slot(); }

ScopedBind::ScopedBind(Registry* registry) noexcept
    : previous_(current_slot()) {
  current_slot() = registry;
}

ScopedBind::~ScopedBind() { current_slot() = previous_; }

void Registry::bind(int rank, int nranks, const simtime::Clock* clock,
                    const memtrack::Tracker* tracker) {
  rank_ = rank;
  nranks_ = nranks;
  clock_ = clock;
  tracker_ = tracker;
  traffic_.assign(static_cast<std::size_t>(std::max(nranks, 0)), 0);
}

double Registry::now() const noexcept {
  return clock_ != nullptr ? clock_->now() : 0.0;
}

std::uint64_t Registry::mem_current() const noexcept {
  return tracker_ != nullptr ? tracker_->current() : 0;
}

std::uint64_t Registry::mem_peak() const noexcept {
  return tracker_ != nullptr ? tracker_->peak() : 0;
}

void Registry::phase_begin(std::string_view name) {
  OpenPhase open;
  open.name.assign(name);
  open.begin = now();
  open.mem_begin = mem_current();
  open.peak_at_begin = mem_peak();
  open.wait_at_begin = wait_total_;
  open.overlap_at_begin = overlap_total_;
  open.io_wait_at_begin = io_wait_total_;
  open.io_hidden_at_begin = io_hidden_total_;
  open_.push_back(std::move(open));
}

PhaseRecord Registry::close_top() {
  OpenPhase open = std::move(open_.back());
  open_.pop_back();

  PhaseRecord record;
  record.name = std::move(open.name);
  record.depth = static_cast<int>(open_.size());
  record.begin = open.begin;
  record.end = now();
  record.mem_begin = open.mem_begin;
  record.mem_end = mem_current();
  // The tracker's high-water is monotone, so a peak raised during this
  // phase is the phase's true high-water; otherwise the best
  // non-invasive sample is the larger endpoint.
  const std::uint64_t peak_now = mem_peak();
  record.mem_peak = peak_now > open.peak_at_begin
                        ? peak_now
                        : std::max(record.mem_begin, record.mem_end);
  record.wait = wait_total_ - open.wait_at_begin;
  record.overlap = overlap_total_ - open.overlap_at_begin;
  record.io_wait = io_wait_total_ - open.io_wait_at_begin;
  record.io_hidden = io_hidden_total_ - open.io_hidden_at_begin;
  return record;
}

void Registry::phase_end() {
  if (open_.empty()) {
    throw mutil::UsageError(
        "stats: phase_end with no open phase (rank " +
        std::to_string(rank_) + ")");
  }
  phases_.push_back(close_top());
}

void Registry::phase_end(std::string_view expected) {
  if (open_.empty()) {
    throw mutil::UsageError("stats: phase_end('" + std::string(expected) +
                            "') with no open phase (rank " +
                            std::to_string(rank_) + ")");
  }
  if (open_.back().name != expected) {
    throw mutil::UsageError("stats: phase_end('" + std::string(expected) +
                            "') but the innermost open phase is '" +
                            open_.back().name + "' (open: " + phase_path() +
                            ", rank " + std::to_string(rank_) + ")");
  }
  phases_.push_back(close_top());
}

bool Registry::phase_end_nothrow() noexcept {
  if (open_.empty()) return false;
  try {
    phases_.push_back(close_top());
  } catch (...) {
    return false;  // allocation failure while unwinding: drop the record
  }
  return true;
}

std::string Registry::phase_path() const {
  std::string path;
  for (const OpenPhase& open : open_) {
    if (!path.empty()) path += '/';
    path += open.name;
  }
  return path;
}

void Registry::add(std::string_view counter, std::uint64_t delta) {
  auto it = counters_.find(counter);
  if (it == counters_.end()) {
    counters_.emplace(std::string(counter), delta);
  } else {
    it->second += delta;
  }
}

void Registry::add_seconds(std::string_view timer, double seconds) {
  auto it = timers_.find(timer);
  if (it == timers_.end()) {
    timers_.emplace(std::string(timer), seconds);
  } else {
    it->second += seconds;
  }
}

void Registry::instant(std::string_view name) {
  instants_.push_back({std::string(name), now()});
}

void Registry::record_traffic(int dest, std::uint64_t bytes) {
  if (dest < 0 || static_cast<std::size_t>(dest) >= traffic_.size()) return;
  traffic_[static_cast<std::size_t>(dest)] += bytes;
}

void Registry::record_wait(double seconds) {
  if (seconds <= 0.0) return;
  wait_total_ += seconds;
  waits_.push_back({now(), seconds});
}

void Registry::record_overlap(double seconds) {
  if (seconds <= 0.0) return;
  overlap_total_ += seconds;
  overlaps_.push_back({now(), seconds});
}

void Registry::record_io_wait(double seconds) {
  if (seconds <= 0.0) return;
  io_wait_total_ += seconds;
}

void Registry::record_io_hidden(double seconds) {
  if (seconds <= 0.0) return;
  io_hidden_total_ += seconds;
  io_hiddens_.push_back({now(), seconds});
}

void Registry::capture_memory() {
  memory_ = MemorySnapshot{};
  if (tracker_ == nullptr) return;
  memory_.captured = true;
  memory_.current = tracker_->current();
  memory_.peak = tracker_->peak();
  for (const auto& [tag, usage] : tracker_->tags()) {
    memory_.components.push_back({tag, usage.current, usage.peak});
  }
}

std::uint64_t Registry::counter(std::string_view name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace stats
