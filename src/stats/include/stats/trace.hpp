// Aggregation and export of per-rank stats::Registry data.
//
//   * Collector   — one Registry per rank of a job; passed to
//                   simmpi::run, which binds each rank thread to its
//                   registry for the duration of the rank function.
//   * Summary     — cross-rank aggregate: summed counters/timers,
//                   per-phase time (max over ranks, the job-completion
//                   view) and memory high-water, and the full src->dst
//                   shuffle traffic matrix. Exports as a JSON object.
//   * TraceWriter — Chrome/Perfetto trace-event JSON: one track (tid)
//                   per rank, phases as duration ("X") events stamped
//                   with *simulated* microseconds, exchange rounds as
//                   instant events, and one cumulative-wait counter
//                   track ("C") per rank. Multiple runs stack as
//                   separate pids, so one trace file can hold a whole
//                   benchmark sweep (load in ui.perfetto.dev or
//                   chrome://tracing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "stats/registry.hpp"

namespace stats {

/// Cross-rank compute/wait attribution of one phase name.
struct PhaseAttr {
  double wait_seconds = 0.0;     ///< max over ranks of in-phase wait
  double compute_seconds = 0.0;  ///< max over ranks of (total - wait)
  /// Max over ranks of in-phase hidden communication (non-blocking
  /// collectives in flight while the rank computed). Not part of the
  /// compute/wait split — overlapped seconds are compute seconds that
  /// *also* moved bytes.
  double overlap_seconds = 0.0;
  /// Max over ranks of in-phase PFS stall time (exposed I/O wait). A
  /// subset of the phase's wall seconds, like wait_seconds, but kept
  /// separate: collective wait and I/O wait have different cures.
  double io_wait_seconds = 0.0;
  /// Max over ranks of in-phase PFS cost hidden under compute by the
  /// async I/O pipeline (read-ahead in flight while the rank mapped).
  double io_hidden_seconds = 0.0;
  /// Load imbalance of the compute share: max over mean (1.0 means
  /// perfectly balanced or no compute at all).
  double imbalance = 1.0;
  int straggler = -1;  ///< rank with the largest compute share
  std::vector<double> per_rank_compute;
  std::vector<double> per_rank_wait;
  std::vector<double> per_rank_overlap;
};

/// Per-component memory usage aggregated across ranks.
struct ComponentMem {
  std::uint64_t current = 0;  ///< summed across ranks at capture time
  std::uint64_t peak = 0;     ///< max over ranks of the tag high-water
};

/// Cross-rank aggregate of one collected run.
struct Summary {
  /// Counters summed across ranks.
  std::map<std::string, std::uint64_t, std::less<>> counters;
  /// Simulated-seconds timers summed across ranks.
  std::map<std::string, double, std::less<>> timers;
  /// Per phase name: max over ranks of the rank's total seconds in that
  /// phase (collectives sync clocks, so the max is the phase's
  /// contribution to job completion time).
  std::map<std::string, double, std::less<>> phase_seconds;
  /// Per phase name: max over ranks of the phase memory high-water.
  std::map<std::string, std::uint64_t, std::less<>> phase_mem_peak;
  /// Per phase name: compute vs wait split and imbalance metrics.
  std::map<std::string, PhaseAttr, std::less<>> phase_attr;
  /// Shuffle traffic matrix: traffic[src][dst] = bytes src sent to dst.
  std::vector<std::vector<std::uint64_t>> traffic;
  /// Column sums of the traffic matrix: bytes received per rank. The
  /// receive side is where key skew concentrates, so this is the raw
  /// material for the post-balance imbalance view.
  std::vector<std::uint64_t> recv_per_rank;
  /// Receive-volume imbalance: max over mean of recv_per_rank (1.0 =
  /// perfectly balanced or no traffic). With mimir.balance=1 this is
  /// the post-plan value the ablation compares against balance off.
  double recv_imbalance = 1.0;
  /// Total simulated seconds blocked in collectives, per rank and
  /// summed (rank-seconds, so the sum can exceed the job time).
  std::vector<double> wait_per_rank;
  double wait_total = 0.0;
  /// Simulated seconds of communication hidden under compute by
  /// non-blocking collectives, per rank and summed. Zero for blocking
  /// runs.
  std::vector<double> overlap_per_rank;
  double overlap_total = 0.0;
  /// PFS stall and hidden-I/O attribution, per rank and summed. Per
  /// rank, wait + hidden equals the charged pfs.io_seconds share (the
  /// closure check_bench_json enforces: hidden <= charged overall).
  std::vector<double> io_wait_per_rank;
  double io_wait_total = 0.0;
  std::vector<double> io_hidden_per_rank;
  double io_hidden_total = 0.0;
  /// Tagged memory attribution from the per-rank capture_memory()
  /// snapshots. The component currents sum to memory_current_total;
  /// every component peak is <= memory_peak_max.
  std::map<std::string, ComponentMem, std::less<>> memory_components;
  std::uint64_t memory_current_total = 0;  ///< summed rank currents
  std::uint64_t memory_peak_max = 0;       ///< max rank high-water
  /// Extra pre-serialized JSON sections (e.g. the scheduler's
  /// "critical_path"), emitted verbatim as top-level keys.
  std::map<std::string, std::string, std::less<>> sections;

  std::uint64_t traffic_total() const noexcept;
  /// Serialize as a JSON object (counters, timers, phases, traffic,
  /// wait, memory, plus any extra sections).
  std::string json() const;
};

/// Owns one Registry per rank of a job. Create one, pass its address to
/// simmpi::run, then read summary()/trace_json() after the run returns.
class Collector {
 public:
  Collector() = default;

  /// (Re-)size for a job; called by simmpi::run before rank threads
  /// start. Discards any previous run's data.
  void reset(int nranks);

  int ranks() const noexcept { return static_cast<int>(registries_.size()); }
  Registry& rank(int r) { return registries_[static_cast<std::size_t>(r)]; }
  const Registry& rank(int r) const {
    return registries_[static_cast<std::size_t>(r)];
  }

  /// Attach a pre-serialized JSON value under a top-level key of the
  /// summary (replaces any previous value for `name`; cleared by
  /// reset()). `json` must be a complete JSON value.
  void set_section(std::string_view name, std::string json);

  Summary summary() const;
  /// Complete single-run Chrome trace-event document.
  std::string trace_json() const;

 private:
  std::vector<Registry> registries_;
  std::map<std::string, std::string, std::less<>> sections_;
};

/// Incremental trace-event document builder (one pid per added run).
class TraceWriter {
 public:
  /// Append all events of a collected run as process `pid = runs so
  /// far`, labelled `process_name` in the viewer.
  void add_run(const Collector& collector, std::string_view process_name);

  bool empty() const noexcept { return runs_ == 0; }
  int runs() const noexcept { return runs_; }

  /// Complete trace-event JSON document.
  std::string json() const;

 private:
  std::string events_;  // comma-separated event objects
  int runs_ = 0;
};

}  // namespace stats
