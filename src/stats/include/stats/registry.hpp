// Per-rank profiling registry (the paper's PROFILER/TRACKER stand-in).
//
// The paper's entire evaluation is phase-resolved: peak memory per node,
// map/aggregate/convert/reduce timings, and shuffle volume. This module
// collects exactly those measurements per rank:
//
//   * hierarchical phase timers driven by the rank's *simulated* clock
//     (wall time on an oversubscribed laptop core is meaningless here);
//   * named monotonic counters and simulated-seconds timers;
//   * per-phase memory samples read from the rank's memtrack::Tracker;
//   * a shuffle traffic row (bytes this rank sent to each destination),
//     assembled into a full src->dst matrix by stats::Collector.
//
// Instrumentation is accounting-only by construction: a Registry never
// advances a clock and never charges a Tracker (its own storage is
// untracked heap), so simulated times and peak-memory results are
// bit-identical whether stats are collected or not.
//
// Threading model mirrors memtrack::Tracker: each rank thread owns one
// Registry and is the only writer; aggregation happens after the job
// joins. Framework code reaches its rank's registry through the
// thread-local stats::current(), bound by simmpi::run for the duration
// of the rank function (nullptr outside a collected run, making every
// probe a cheap no-op).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace simtime {
class Clock;
}
namespace memtrack {
class Tracker;
}

namespace stats {

/// One completed phase on one rank. Timestamps are simulated seconds.
struct PhaseRecord {
  std::string name;
  int depth = 0;               ///< 0 = top level; children are deeper
  double begin = 0.0;
  double end = 0.0;
  std::uint64_t mem_begin = 0; ///< tracker bytes live at phase begin
  std::uint64_t mem_end = 0;   ///< tracker bytes live at phase end
  /// Phase high-water sample: the rank's true high-water when the phase
  /// set a new rank-lifetime peak, otherwise max(mem_begin, mem_end).
  std::uint64_t mem_peak = 0;

  double seconds() const noexcept { return end - begin; }
};

/// A point event (e.g. one shuffle exchange round).
struct InstantRecord {
  std::string name;
  double time = 0.0;
};

class Registry {
 public:
  Registry() = default;

  Registry(Registry&&) = default;
  Registry& operator=(Registry&&) = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Attach this registry to a rank's substrate. `clock` and `tracker`
  /// may be null (standalone use in tests records zero times/memory).
  void bind(int rank, int nranks, const simtime::Clock* clock,
            const memtrack::Tracker* tracker);

  int rank() const noexcept { return rank_; }
  int ranks() const noexcept { return nranks_; }

  // --- phases ------------------------------------------------------------

  void phase_begin(std::string_view name);
  void phase_end();
  int open_depth() const noexcept { return static_cast<int>(open_.size()); }
  /// Slash-joined path of the currently open phases ("map/aggregate");
  /// empty at top level. Owner-thread only, like every other probe.
  std::string phase_path() const;

  // --- counters / timers / events ----------------------------------------

  /// Monotonic counter: only ever incremented.
  void add(std::string_view counter, std::uint64_t delta);
  /// Simulated-seconds accumulator (e.g. PFS I/O time).
  void add_seconds(std::string_view timer, double seconds);
  void instant(std::string_view name);
  /// Bytes this rank sent to `dest` through the shuffle.
  void record_traffic(int dest, std::uint64_t bytes);

  // --- introspection (export and tests) ----------------------------------

  /// Completed phases, in completion order (children before parents).
  const std::vector<PhaseRecord>& phases() const noexcept { return phases_; }
  const std::vector<InstantRecord>& instants() const noexcept {
    return instants_;
  }
  const std::map<std::string, std::uint64_t, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& timers() const noexcept {
    return timers_;
  }
  /// This rank's traffic row: traffic()[d] = bytes sent to rank d.
  const std::vector<std::uint64_t>& traffic() const noexcept {
    return traffic_;
  }
  std::uint64_t counter(std::string_view name) const noexcept;

 private:
  struct OpenPhase {
    std::string name;
    double begin = 0.0;
    std::uint64_t mem_begin = 0;
    std::uint64_t peak_at_begin = 0;
  };

  double now() const noexcept;
  std::uint64_t mem_current() const noexcept;
  std::uint64_t mem_peak() const noexcept;

  int rank_ = -1;
  int nranks_ = 0;
  const simtime::Clock* clock_ = nullptr;
  const memtrack::Tracker* tracker_ = nullptr;

  std::vector<OpenPhase> open_;
  std::vector<PhaseRecord> phases_;
  std::vector<InstantRecord> instants_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> timers_;
  std::vector<std::uint64_t> traffic_;
};

/// The calling thread's registry, or nullptr when stats are not being
/// collected. Bound by simmpi::run via ScopedBind.
Registry* current() noexcept;

/// RAII thread-local binding of a registry (nestable; restores the
/// previous binding on destruction).
class ScopedBind {
 public:
  explicit ScopedBind(Registry* registry) noexcept;
  ~ScopedBind();

  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;

 private:
  Registry* previous_;
};

/// RAII phase timer. Null-safe: with no registry it is a no-op, so
/// framework code can open scopes unconditionally.
class PhaseScope {
 public:
  /// Scope on the calling thread's registry (stats::current()).
  explicit PhaseScope(std::string_view name) : PhaseScope(current(), name) {}
  PhaseScope(Registry* registry, std::string_view name)
      : registry_(registry) {
    if (registry_ != nullptr) registry_->phase_begin(name);
  }
  ~PhaseScope() {
    if (registry_ != nullptr) registry_->phase_end();
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Registry* registry_;
};

}  // namespace stats
