// Per-rank profiling registry (the paper's PROFILER/TRACKER stand-in).
//
// The paper's entire evaluation is phase-resolved: peak memory per node,
// map/aggregate/convert/reduce timings, and shuffle volume. This module
// collects exactly those measurements per rank:
//
//   * hierarchical phase timers driven by the rank's *simulated* clock
//     (wall time on an oversubscribed laptop core is meaningless here);
//   * named monotonic counters and simulated-seconds timers;
//   * per-phase memory samples read from the rank's memtrack::Tracker;
//   * a shuffle traffic row (bytes this rank sent to each destination),
//     assembled into a full src->dst matrix by stats::Collector.
//
// Instrumentation is accounting-only by construction: a Registry never
// advances a clock and never charges a Tracker (its own storage is
// untracked heap), so simulated times and peak-memory results are
// bit-identical whether stats are collected or not.
//
// Threading model mirrors memtrack::Tracker: each rank thread owns one
// Registry and is the only writer; aggregation happens after the job
// joins. Framework code reaches its rank's registry through the
// thread-local stats::current(), bound by simmpi::run for the duration
// of the rank function (nullptr outside a collected run, making every
// probe a cheap no-op).
#pragma once

#include <cstdint>
#include <exception>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace simtime {
class Clock;
}
namespace memtrack {
class Tracker;
}

namespace stats {

/// One completed phase on one rank. Timestamps are simulated seconds.
struct PhaseRecord {
  std::string name;
  int depth = 0;               ///< 0 = top level; children are deeper
  double begin = 0.0;
  double end = 0.0;
  std::uint64_t mem_begin = 0; ///< tracker bytes live at phase begin
  std::uint64_t mem_end = 0;   ///< tracker bytes live at phase end
  /// Phase high-water sample: the rank's true high-water when the phase
  /// set a new rank-lifetime peak, otherwise max(mem_begin, mem_end).
  std::uint64_t mem_peak = 0;
  /// Simulated seconds this rank spent blocked in collectives / recv
  /// while the phase was open (always <= seconds(): a collective that
  /// makes a rank wait also advances its clock at least that far).
  double wait = 0.0;
  /// Simulated seconds of communication this rank *hid* under compute
  /// while the phase was open: for each non-blocking collective, the
  /// in-flight time between initiation and the earlier of completion
  /// and wait(). Zero for purely blocking runs.
  double overlap = 0.0;
  /// Simulated seconds this rank spent stalled on PFS operations while
  /// the phase was open: the full cost of every blocking read/write plus
  /// the *exposed* remainder of every prefetch/write-behind wait.
  double io_wait = 0.0;
  /// Simulated seconds of PFS cost this rank *hid* under compute while
  /// the phase was open (async I/O in flight while the rank kept
  /// mapping). Per rank, io_wait + io_hidden always equals the charged
  /// pfs.io_seconds timer — the accounting closure the io tests enforce.
  double io_hidden = 0.0;

  double seconds() const noexcept { return end - begin; }
  double compute_seconds() const noexcept { return end - begin - wait; }
};

/// A point event (e.g. one shuffle exchange round).
struct InstantRecord {
  std::string name;
  double time = 0.0;
};

/// One blocked interval: this rank arrived at a rendezvous `seconds`
/// of simulated time before it was released at `time`.
struct WaitRecord {
  double time = 0.0;     ///< release timestamp (simulated seconds)
  double seconds = 0.0;  ///< how long the rank waited
};

/// Snapshot of the rank's memtrack state, taken on the rank thread
/// before the Tracker goes away (the Registry outlives the run but its
/// tracker pointer does not).
struct MemorySnapshot {
  struct Component {
    std::string tag;
    std::uint64_t current = 0;
    std::uint64_t peak = 0;
  };
  bool captured = false;
  std::uint64_t current = 0;  ///< rank bytes live at capture time
  std::uint64_t peak = 0;     ///< rank lifetime high-water
  std::vector<Component> components;
};

class Registry {
 public:
  Registry() = default;

  Registry(Registry&&) = default;
  Registry& operator=(Registry&&) = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Attach this registry to a rank's substrate. `clock` and `tracker`
  /// may be null (standalone use in tests records zero times/memory).
  void bind(int rank, int nranks, const simtime::Clock* clock,
            const memtrack::Tracker* tracker);

  int rank() const noexcept { return rank_; }
  int ranks() const noexcept { return nranks_; }

  // --- phases ------------------------------------------------------------

  void phase_begin(std::string_view name);
  /// Close the innermost open phase. Throws mutil::UsageError when no
  /// phase is open (an unbalanced end is an instrumentation bug).
  void phase_end();
  /// Close the innermost open phase, verifying it is named `expected`.
  /// Throws mutil::UsageError on an empty stack or a name mismatch (the
  /// message includes the open phase path); the stack is left unchanged
  /// on mismatch.
  void phase_end(std::string_view expected);
  /// Best-effort close for unwinding paths: pops the innermost open
  /// phase if any, never throws. Returns false when nothing was open.
  bool phase_end_nothrow() noexcept;
  int open_depth() const noexcept { return static_cast<int>(open_.size()); }
  /// Slash-joined path of the currently open phases ("map/aggregate");
  /// empty at top level. Owner-thread only, like every other probe.
  std::string phase_path() const;

  // --- counters / timers / events ----------------------------------------

  /// Monotonic counter: only ever incremented.
  void add(std::string_view counter, std::uint64_t delta);
  /// Simulated-seconds accumulator (e.g. PFS I/O time).
  void add_seconds(std::string_view timer, double seconds);
  void instant(std::string_view name);
  /// Bytes this rank sent to `dest` through the shuffle.
  void record_traffic(int dest, std::uint64_t bytes);
  /// This rank just left a rendezvous it had been blocked in for
  /// `seconds` of simulated time. Attributed to every open phase and to
  /// the rank total; `seconds <= 0` records nothing.
  void record_wait(double seconds);
  /// A non-blocking collective this rank waited on had been in flight
  /// for `seconds` of simulated time while the rank kept computing
  /// (communication hidden under compute). Attribution mirrors
  /// record_wait; `seconds <= 0` records nothing.
  void record_overlap(double seconds);
  /// This rank was stalled on a PFS operation for `seconds` of simulated
  /// time: the whole cost of a blocking op, or the exposed tail of an
  /// async wait. Attribution mirrors record_wait (kept separate from it
  /// so collective wait and I/O wait stay distinguishable);
  /// `seconds <= 0` records nothing.
  void record_io_wait(double seconds);
  /// `seconds` of PFS cost completed under this rank's compute instead
  /// of stalling it (async read-ahead / write-behind). Attribution
  /// mirrors record_wait; `seconds <= 0` records nothing.
  void record_io_hidden(double seconds);
  /// Snapshot the bound Tracker's totals and per-tag breakdown into
  /// memory(). Must run on the rank thread while the tracker is alive.
  void capture_memory();

  // --- introspection (export and tests) ----------------------------------

  /// Completed phases, in completion order (children before parents).
  const std::vector<PhaseRecord>& phases() const noexcept { return phases_; }
  const std::vector<InstantRecord>& instants() const noexcept {
    return instants_;
  }
  const std::map<std::string, std::uint64_t, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& timers() const noexcept {
    return timers_;
  }
  /// This rank's traffic row: traffic()[d] = bytes sent to rank d.
  const std::vector<std::uint64_t>& traffic() const noexcept {
    return traffic_;
  }
  std::uint64_t counter(std::string_view name) const noexcept;
  /// Blocked intervals in release order (for counter tracks).
  const std::vector<WaitRecord>& waits() const noexcept { return waits_; }
  /// Total simulated seconds this rank spent blocked.
  double wait_total() const noexcept { return wait_total_; }
  /// Hidden-communication intervals in completion order.
  const std::vector<WaitRecord>& overlaps() const noexcept {
    return overlaps_;
  }
  /// Total simulated seconds of communication hidden under compute.
  double overlap_total() const noexcept { return overlap_total_; }
  /// Total simulated seconds this rank stalled on PFS operations.
  double io_wait_total() const noexcept { return io_wait_total_; }
  /// Hidden-I/O intervals in wait order (for counter tracks).
  const std::vector<WaitRecord>& io_hiddens() const noexcept {
    return io_hiddens_;
  }
  /// Total simulated seconds of PFS cost hidden under compute.
  double io_hidden_total() const noexcept { return io_hidden_total_; }
  /// The memory snapshot taken by capture_memory() (default-constructed
  /// with captured == false if never taken).
  const MemorySnapshot& memory() const noexcept { return memory_; }

 private:
  struct OpenPhase {
    std::string name;
    double begin = 0.0;
    std::uint64_t mem_begin = 0;
    std::uint64_t peak_at_begin = 0;
    double wait_at_begin = 0.0;
    double overlap_at_begin = 0.0;
    double io_wait_at_begin = 0.0;
    double io_hidden_at_begin = 0.0;
  };

  PhaseRecord close_top();

  double now() const noexcept;
  std::uint64_t mem_current() const noexcept;
  std::uint64_t mem_peak() const noexcept;

  int rank_ = -1;
  int nranks_ = 0;
  const simtime::Clock* clock_ = nullptr;
  const memtrack::Tracker* tracker_ = nullptr;

  std::vector<OpenPhase> open_;
  std::vector<PhaseRecord> phases_;
  std::vector<InstantRecord> instants_;
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> timers_;
  std::vector<std::uint64_t> traffic_;
  std::vector<WaitRecord> waits_;
  double wait_total_ = 0.0;
  std::vector<WaitRecord> overlaps_;
  double overlap_total_ = 0.0;
  double io_wait_total_ = 0.0;
  std::vector<WaitRecord> io_hiddens_;
  double io_hidden_total_ = 0.0;
  MemorySnapshot memory_;
};

/// The calling thread's registry, or nullptr when stats are not being
/// collected. Bound by simmpi::run via ScopedBind.
Registry* current() noexcept;

/// RAII thread-local binding of a registry (nestable; restores the
/// previous binding on destruction).
class ScopedBind {
 public:
  explicit ScopedBind(Registry* registry) noexcept;
  ~ScopedBind();

  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;

 private:
  Registry* previous_;
};

/// RAII phase timer. Null-safe: with no registry it is a no-op, so
/// framework code can open scopes unconditionally. The destructor
/// verifies it closes the phase it opened (mutil::UsageError on nesting
/// bugs) — except during unwinding, where it closes best-effort rather
/// than terminate the process.
class PhaseScope {
 public:
  /// Scope on the calling thread's registry (stats::current()).
  explicit PhaseScope(std::string_view name) : PhaseScope(current(), name) {}
  PhaseScope(Registry* registry, std::string_view name)
      : registry_(registry), uncaught_(std::uncaught_exceptions()) {
    if (registry_ != nullptr) {
      name_.assign(name);
      registry_->phase_begin(name_);
    }
  }
  ~PhaseScope() noexcept(false) {
    if (registry_ == nullptr) return;
    if (std::uncaught_exceptions() > uncaught_) {
      registry_->phase_end_nothrow();
    } else {
      registry_->phase_end(name_);
    }
  }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Registry* registry_;
  std::string name_;
  int uncaught_;
};

}  // namespace stats
