// Minimal JSON support for the stats subsystem: an escaper for the
// writers (trace events, bench metrics) and a small strict parser used
// by tests and the bench round-trip checker to validate that emitted
// documents are well-formed. Deliberately tiny — no external JSON
// dependency is available in this environment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace stats::jsonlite {

/// Escape a string for inclusion inside JSON double quotes.
std::string escape(std::string_view text);

/// Parsed JSON value. Numbers are kept as double (adequate for the
/// validation use; exact integers up to 2^53).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value, std::less<>> object;

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_bool() const noexcept { return type == Type::kBool; }
  bool is_number() const noexcept { return type == Type::kNumber; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_object() const noexcept { return type == Type::kObject; }

  /// Object member access; throws mutil::ConfigError when absent or not
  /// an object.
  const Value& at(std::string_view key) const;
  /// Object member lookup; nullptr when absent.
  const Value* find(std::string_view key) const noexcept;
  std::uint64_t as_u64() const noexcept {
    return number < 0 ? 0 : static_cast<std::uint64_t>(number);
  }
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws mutil::ConfigError on malformed input.
Value parse(std::string_view text);

}  // namespace stats::jsonlite
