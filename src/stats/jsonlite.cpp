#include "stats/jsonlite.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "mutil/error.hpp"

namespace stats::jsonlite {

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value& Value::at(std::string_view key) const {
  const Value* found = find(key);
  if (found == nullptr) {
    throw mutil::ConfigError("jsonlite: missing object member '" +
                             std::string(key) + "'");
  }
  return *found;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (type != Type::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw mutil::ConfigError("jsonlite: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = c == 't';
        if (!consume_literal(c == 't' ? "true" : "false")) {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Validation use only: encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    Value v;
    v.type = Value::Type::kNumber;
    const auto [ptr, ec] = std::from_chars(
        text_.data() + start, text_.data() + pos_, v.number);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      pos_ = start;
      fail("bad number");
    }
    return v;
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace stats::jsonlite
