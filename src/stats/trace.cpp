#include "stats/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "stats/jsonlite.hpp"

namespace stats {

namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t value,
                   bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, *first ? "" : ",",
                key, value);
  out += buf;
  *first = false;
}

void append_kv_f64(std::string& out, const char* key, double value,
                   bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%.9g", *first ? "" : ",", key,
                value);
  out += buf;
  *first = false;
}

constexpr double kMicros = 1e6;  // simulated seconds -> trace microseconds

}  // namespace

std::uint64_t Summary::traffic_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& row : traffic) {
    for (const std::uint64_t cell : row) total += cell;
  }
  return total;
}

std::string Summary::json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    append_kv_u64(out, jsonlite::escape(name).c_str(), value, &first);
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, value] : timers) {
    append_kv_f64(out, jsonlite::escape(name).c_str(), value, &first);
  }
  out += "},\"phases\":{";
  first = true;
  for (const auto& [name, seconds] : phase_seconds) {
    out += first ? "" : ",";
    first = false;
    out += "\"" + jsonlite::escape(name) + "\":{";
    bool inner = true;
    append_kv_f64(out, "seconds", seconds, &inner);
    const auto peak = phase_mem_peak.find(name);
    append_kv_u64(out, "mem_peak",
                  peak == phase_mem_peak.end() ? 0 : peak->second, &inner);
    out += "}";
  }
  out += "},\"traffic\":{";
  {
    bool inner = true;
    append_kv_u64(out, "total_bytes", traffic_total(), &inner);
  }
  out += ",\"matrix\":[";
  for (std::size_t src = 0; src < traffic.size(); ++src) {
    out += src == 0 ? "[" : ",[";
    for (std::size_t dst = 0; dst < traffic[src].size(); ++dst) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%s%" PRIu64, dst == 0 ? "" : ",",
                    traffic[src][dst]);
      out += buf;
    }
    out += "]";
  }
  out += "]}}";
  return out;
}

void Collector::reset(int nranks) {
  registries_.clear();
  registries_.resize(static_cast<std::size_t>(std::max(nranks, 0)));
}

Summary Collector::summary() const {
  Summary out;
  out.traffic.assign(registries_.size(),
                     std::vector<std::uint64_t>(registries_.size(), 0));
  // Per-rank totals per phase name, folded into the cross-rank max.
  std::map<std::string, double, std::less<>> rank_phase;
  for (std::size_t r = 0; r < registries_.size(); ++r) {
    const Registry& reg = registries_[r];
    for (const auto& [name, value] : reg.counters()) {
      out.counters[name] += value;
    }
    for (const auto& [name, value] : reg.timers()) {
      out.timers[name] += value;
    }
    rank_phase.clear();
    for (const PhaseRecord& phase : reg.phases()) {
      rank_phase[phase.name] += phase.seconds();
      auto& peak = out.phase_mem_peak[phase.name];
      peak = std::max(peak, phase.mem_peak);
    }
    for (const auto& [name, seconds] : rank_phase) {
      auto& slot = out.phase_seconds[name];
      slot = std::max(slot, seconds);
    }
    const auto& row = reg.traffic();
    for (std::size_t d = 0; d < row.size() && d < registries_.size(); ++d) {
      out.traffic[r][d] = row[d];
    }
  }
  return out;
}

std::string Collector::trace_json() const {
  TraceWriter writer;
  writer.add_run(*this, "job");
  return writer.json();
}

void TraceWriter::add_run(const Collector& collector,
                          std::string_view process_name) {
  const int pid = runs_++;
  char buf[256];
  auto event = [&](const char* text) {
    if (!events_.empty()) events_ += ",\n";
    events_ += text;
  };

  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":"
                "\"process_name\",\"args\":{\"name\":\"%s\"}}",
                pid, jsonlite::escape(process_name).c_str());
  event(buf);

  for (int r = 0; r < collector.ranks(); ++r) {
    const Registry& reg = collector.rank(r);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"rank %d\"}}",
                  pid, r, r);
    event(buf);
    for (const PhaseRecord& phase : reg.phases()) {
      std::snprintf(
          buf, sizeof(buf),
          "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
          "\"ts\":%.6f,\"dur\":%.6f,\"args\":{\"depth\":%d,"
          "\"mem_begin\":%" PRIu64 ",\"mem_end\":%" PRIu64
          ",\"mem_peak\":%" PRIu64 "}}",
          pid, r, jsonlite::escape(phase.name).c_str(),
          phase.begin * kMicros, phase.seconds() * kMicros, phase.depth,
          phase.mem_begin, phase.mem_end, phase.mem_peak);
      event(buf);
    }
    for (const InstantRecord& mark : reg.instants()) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                    "\"name\":\"%s\",\"ts\":%.6f}",
                    pid, r, jsonlite::escape(mark.name).c_str(),
                    mark.time * kMicros);
      event(buf);
    }
  }
}

std::string TraceWriter::json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += events_;
  out += "\n]}\n";
  return out;
}

}  // namespace stats
