#include "stats/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "stats/jsonlite.hpp"

namespace stats {

namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t value,
                   bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, *first ? "" : ",",
                key, value);
  out += buf;
  *first = false;
}

void append_kv_f64(std::string& out, const char* key, double value,
                   bool* first) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%.9g", *first ? "" : ",", key,
                value);
  out += buf;
  *first = false;
}

void append_f64_array(std::string& out, const std::vector<double>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%s%.9g", i == 0 ? "" : ",", values[i]);
    out += buf;
  }
  out += ']';
}

constexpr double kMicros = 1e6;  // simulated seconds -> trace microseconds

}  // namespace

std::uint64_t Summary::traffic_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& row : traffic) {
    for (const std::uint64_t cell : row) total += cell;
  }
  return total;
}

std::string Summary::json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    append_kv_u64(out, jsonlite::escape(name).c_str(), value, &first);
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, value] : timers) {
    append_kv_f64(out, jsonlite::escape(name).c_str(), value, &first);
  }
  out += "},\"phases\":{";
  first = true;
  for (const auto& [name, seconds] : phase_seconds) {
    out += first ? "" : ",";
    first = false;
    out += "\"" + jsonlite::escape(name) + "\":{";
    bool inner = true;
    append_kv_f64(out, "seconds", seconds, &inner);
    const auto peak = phase_mem_peak.find(name);
    append_kv_u64(out, "mem_peak",
                  peak == phase_mem_peak.end() ? 0 : peak->second, &inner);
    if (const auto attr = phase_attr.find(name); attr != phase_attr.end()) {
      const PhaseAttr& a = attr->second;
      append_kv_f64(out, "wait_seconds", a.wait_seconds, &inner);
      append_kv_f64(out, "compute_seconds", a.compute_seconds, &inner);
      append_kv_f64(out, "overlap_seconds", a.overlap_seconds, &inner);
      append_kv_f64(out, "io_wait_seconds", a.io_wait_seconds, &inner);
      append_kv_f64(out, "io_hidden_seconds", a.io_hidden_seconds, &inner);
      append_kv_f64(out, "imbalance", a.imbalance, &inner);
      out += ",\"straggler\":" + std::to_string(a.straggler);
      out += ",\"per_rank_compute\":";
      append_f64_array(out, a.per_rank_compute);
      out += ",\"per_rank_wait\":";
      append_f64_array(out, a.per_rank_wait);
      out += ",\"per_rank_overlap\":";
      append_f64_array(out, a.per_rank_overlap);
    }
    out += "}";
  }
  out += "},\"traffic\":{";
  {
    bool inner = true;
    append_kv_u64(out, "total_bytes", traffic_total(), &inner);
    append_kv_f64(out, "recv_imbalance", recv_imbalance, &inner);
  }
  out += ",\"recv_per_rank\":[";
  for (std::size_t r = 0; r < recv_per_rank.size(); ++r) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64, r == 0 ? "" : ",",
                  recv_per_rank[r]);
    out += buf;
  }
  out += "],\"matrix\":[";
  for (std::size_t src = 0; src < traffic.size(); ++src) {
    out += src == 0 ? "[" : ",[";
    for (std::size_t dst = 0; dst < traffic[src].size(); ++dst) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%s%" PRIu64, dst == 0 ? "" : ",",
                    traffic[src][dst]);
      out += buf;
    }
    out += "]";
  }
  out += "]}";
  out += ",\"wait\":{";
  {
    bool inner = true;
    append_kv_f64(out, "total_seconds", wait_total, &inner);
  }
  out += ",\"per_rank\":";
  append_f64_array(out, wait_per_rank);
  out += "},\"overlap\":{";
  {
    bool inner = true;
    append_kv_f64(out, "total_seconds", overlap_total, &inner);
  }
  out += ",\"per_rank\":";
  append_f64_array(out, overlap_per_rank);
  out += "},\"io\":{";
  {
    bool inner = true;
    append_kv_f64(out, "wait_seconds", io_wait_total, &inner);
    append_kv_f64(out, "hidden_seconds", io_hidden_total, &inner);
  }
  out += ",\"per_rank_wait\":";
  append_f64_array(out, io_wait_per_rank);
  out += ",\"per_rank_hidden\":";
  append_f64_array(out, io_hidden_per_rank);
  out += "},\"memory\":{";
  {
    bool inner = true;
    append_kv_u64(out, "current_total", memory_current_total, &inner);
    append_kv_u64(out, "peak_max", memory_peak_max, &inner);
  }
  out += ",\"components\":{";
  first = true;
  for (const auto& [tag, mem] : memory_components) {
    out += first ? "" : ",";
    first = false;
    out += "\"" + jsonlite::escape(tag) + "\":{";
    bool inner = true;
    append_kv_u64(out, "current", mem.current, &inner);
    append_kv_u64(out, "peak", mem.peak, &inner);
    out += "}";
  }
  out += "}}";
  // Pre-serialized extra sections (already complete JSON values).
  for (const auto& [name, raw] : sections) {
    out += ",\"" + jsonlite::escape(name) + "\":" + raw;
  }
  out += "}";
  return out;
}

void Collector::reset(int nranks) {
  registries_.clear();
  registries_.resize(static_cast<std::size_t>(std::max(nranks, 0)));
  sections_.clear();
}

void Collector::set_section(std::string_view name, std::string json) {
  sections_.insert_or_assign(std::string(name), std::move(json));
}

Summary Collector::summary() const {
  Summary out;
  const std::size_t n = registries_.size();
  out.traffic.assign(n, std::vector<std::uint64_t>(n, 0));
  out.wait_per_rank.assign(n, 0.0);
  out.overlap_per_rank.assign(n, 0.0);
  out.io_wait_per_rank.assign(n, 0.0);
  out.io_hidden_per_rank.assign(n, 0.0);
  out.sections = sections_;
  // Per-rank totals per phase name, folded into the cross-rank max and
  // into the per-phase attribution arrays.
  std::vector<std::map<std::string, double, std::less<>>> totals(n);
  std::vector<std::map<std::string, double, std::less<>>> waits(n);
  std::vector<std::map<std::string, double, std::less<>>> overlaps(n);
  std::vector<std::map<std::string, double, std::less<>>> io_waits(n);
  std::vector<std::map<std::string, double, std::less<>>> io_hiddens(n);
  for (std::size_t r = 0; r < n; ++r) {
    const Registry& reg = registries_[r];
    for (const auto& [name, value] : reg.counters()) {
      out.counters[name] += value;
    }
    for (const auto& [name, value] : reg.timers()) {
      out.timers[name] += value;
    }
    for (const PhaseRecord& phase : reg.phases()) {
      totals[r][phase.name] += phase.seconds();
      waits[r][phase.name] += phase.wait;
      overlaps[r][phase.name] += phase.overlap;
      io_waits[r][phase.name] += phase.io_wait;
      io_hiddens[r][phase.name] += phase.io_hidden;
      auto& peak = out.phase_mem_peak[phase.name];
      peak = std::max(peak, phase.mem_peak);
    }
    for (const auto& [name, seconds] : totals[r]) {
      auto& slot = out.phase_seconds[name];
      slot = std::max(slot, seconds);
    }
    const auto& row = reg.traffic();
    for (std::size_t d = 0; d < row.size() && d < n; ++d) {
      out.traffic[r][d] = row[d];
    }
    out.wait_per_rank[r] = reg.wait_total();
    out.wait_total += reg.wait_total();
    out.overlap_per_rank[r] = reg.overlap_total();
    out.overlap_total += reg.overlap_total();
    out.io_wait_per_rank[r] = reg.io_wait_total();
    out.io_wait_total += reg.io_wait_total();
    out.io_hidden_per_rank[r] = reg.io_hidden_total();
    out.io_hidden_total += reg.io_hidden_total();
    // Tagged memory: components sum rank currents; peaks are the max
    // over ranks of each tag's (and the rank's) high-water.
    const MemorySnapshot& mem = reg.memory();
    if (mem.captured) {
      out.memory_current_total += mem.current;
      out.memory_peak_max = std::max(out.memory_peak_max, mem.peak);
      for (const MemorySnapshot::Component& comp : mem.components) {
        ComponentMem& slot = out.memory_components[comp.tag];
        slot.current += comp.current;
        slot.peak = std::max(slot.peak, comp.peak);
      }
    }
  }
  // Receive-volume view of the traffic matrix: column sums and their
  // max-over-mean imbalance (skewed keys concentrate received bytes).
  out.recv_per_rank.assign(n, 0);
  std::uint64_t recv_total = 0;
  std::uint64_t recv_max = 0;
  for (std::size_t d = 0; d < n; ++d) {
    std::uint64_t col = 0;
    for (std::size_t s = 0; s < n; ++s) col += out.traffic[s][d];
    out.recv_per_rank[d] = col;
    recv_total += col;
    recv_max = std::max(recv_max, col);
  }
  if (recv_total > 0 && n > 0) {
    const double mean =
        static_cast<double>(recv_total) / static_cast<double>(n);
    out.recv_imbalance = static_cast<double>(recv_max) / mean;
  }
  // Compute/wait attribution per phase name: compute_r = total_r -
  // wait_r; the straggler is the rank with the largest compute share
  // and imbalance is max-over-mean of the compute shares.
  for (const auto& [name, seconds] : out.phase_seconds) {
    PhaseAttr attr;
    attr.per_rank_compute.assign(n, 0.0);
    attr.per_rank_wait.assign(n, 0.0);
    attr.per_rank_overlap.assign(n, 0.0);
    double sum = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const auto total_it = totals[r].find(name);
      const double total =
          total_it == totals[r].end() ? 0.0 : total_it->second;
      const auto wait_it = waits[r].find(name);
      const double wait = wait_it == waits[r].end() ? 0.0 : wait_it->second;
      const auto overlap_it = overlaps[r].find(name);
      const double overlap =
          overlap_it == overlaps[r].end() ? 0.0 : overlap_it->second;
      const auto io_wait_it = io_waits[r].find(name);
      const double io_wait =
          io_wait_it == io_waits[r].end() ? 0.0 : io_wait_it->second;
      const auto io_hidden_it = io_hiddens[r].find(name);
      const double io_hidden =
          io_hidden_it == io_hiddens[r].end() ? 0.0 : io_hidden_it->second;
      const double compute = total - wait;
      attr.per_rank_compute[r] = compute;
      attr.per_rank_wait[r] = wait;
      attr.per_rank_overlap[r] = overlap;
      attr.wait_seconds = std::max(attr.wait_seconds, wait);
      attr.overlap_seconds = std::max(attr.overlap_seconds, overlap);
      attr.io_wait_seconds = std::max(attr.io_wait_seconds, io_wait);
      attr.io_hidden_seconds = std::max(attr.io_hidden_seconds, io_hidden);
      sum += compute;
      if (compute > attr.compute_seconds || attr.straggler < 0) {
        attr.compute_seconds = std::max(compute, 0.0);
        attr.straggler = static_cast<int>(r);
      }
    }
    const double mean = n == 0 ? 0.0 : sum / static_cast<double>(n);
    attr.imbalance = mean > 0.0 ? attr.compute_seconds / mean : 1.0;
    out.phase_attr.emplace(name, std::move(attr));
  }
  return out;
}

std::string Collector::trace_json() const {
  TraceWriter writer;
  writer.add_run(*this, "job");
  return writer.json();
}

void TraceWriter::add_run(const Collector& collector,
                          std::string_view process_name) {
  const int pid = runs_++;
  char buf[256];
  auto event = [&](const char* text) {
    if (!events_.empty()) events_ += ",\n";
    events_ += text;
  };

  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":"
                "\"process_name\",\"args\":{\"name\":\"%s\"}}",
                pid, jsonlite::escape(process_name).c_str());
  event(buf);

  for (int r = 0; r < collector.ranks(); ++r) {
    const Registry& reg = collector.rank(r);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":"
                  "\"thread_name\",\"args\":{\"name\":\"rank %d\"}}",
                  pid, r, r);
    event(buf);
    for (const PhaseRecord& phase : reg.phases()) {
      std::snprintf(
          buf, sizeof(buf),
          "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\","
          "\"ts\":%.6f,\"dur\":%.6f,\"args\":{\"depth\":%d,"
          "\"mem_begin\":%" PRIu64 ",\"mem_end\":%" PRIu64
          ",\"mem_peak\":%" PRIu64 "}}",
          pid, r, jsonlite::escape(phase.name).c_str(),
          phase.begin * kMicros, phase.seconds() * kMicros, phase.depth,
          phase.mem_begin, phase.mem_end, phase.mem_peak);
      event(buf);
    }
    for (const InstantRecord& mark : reg.instants()) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,"
                    "\"name\":\"%s\",\"ts\":%.6f}",
                    pid, r, jsonlite::escape(mark.name).c_str(),
                    mark.time * kMicros);
      event(buf);
    }
    // One cumulative-wait counter track per rank (the name carries the
    // rank so tracks never merge across tids in the viewer).
    double cumulative = 0.0;
    for (const WaitRecord& wait : reg.waits()) {
      cumulative += wait.seconds;
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"name\":"
                    "\"wait.rank%d\",\"ts\":%.6f,\"args\":{\"seconds\":"
                    "%.9g}}",
                    pid, r, r, wait.time * kMicros, cumulative);
      event(buf);
    }
    // And a cumulative hidden-communication track: how many seconds of
    // collective time non-blocking overlap kept off the critical path.
    double hidden = 0.0;
    for (const WaitRecord& overlap : reg.overlaps()) {
      hidden += overlap.seconds;
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"name\":"
                    "\"overlap.rank%d\",\"ts\":%.6f,\"args\":{\"seconds\":"
                    "%.9g}}",
                    pid, r, r, overlap.time * kMicros, hidden);
      event(buf);
    }
    // Cumulative hidden-I/O track: PFS cost the async pipeline kept
    // under compute instead of stalling the rank.
    double io_hidden = 0.0;
    for (const WaitRecord& io : reg.io_hiddens()) {
      io_hidden += io.seconds;
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"name\":"
                    "\"io.rank%d\",\"ts\":%.6f,\"args\":{\"seconds\":"
                    "%.9g}}",
                    pid, r, r, io.time * kMicros, io_hidden);
      event(buf);
    }
  }
}

std::string TraceWriter::json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out += events_;
  out += "\n]}\n";
  return out;
}

}  // namespace stats
