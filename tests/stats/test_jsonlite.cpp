#include "stats/jsonlite.hpp"

#include <gtest/gtest.h>

#include "mutil/error.hpp"

namespace {

using stats::jsonlite::escape;
using stats::jsonlite::parse;
using stats::jsonlite::Value;

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(escape("plain"), "plain");
  EXPECT_EQ(escape("a\"b"), "a\\\"b");
  EXPECT_EQ(escape("a\\b"), "a\\\\b");
  EXPECT_EQ(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(JsonParse, ParsesScalarsArraysAndObjects) {
  const Value doc = parse(
      R"({"name":"wc","ok":true,"none":null,"n":42,"f":-1.5,)"
      R"("xs":[1,2,3],"nested":{"deep":"value"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("name").str, "wc");
  EXPECT_TRUE(doc.at("ok").boolean);
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_EQ(doc.at("n").as_u64(), 42u);
  EXPECT_DOUBLE_EQ(doc.at("f").number, -1.5);
  ASSERT_EQ(doc.at("xs").array.size(), 3u);
  EXPECT_EQ(doc.at("xs").array[2].as_u64(), 3u);
  EXPECT_EQ(doc.at("nested").at("deep").str, "value");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), mutil::ConfigError);
}

TEST(JsonParse, EscapeRoundTrips) {
  const std::string original = "mix \"quotes\"\\slashes\n\ttabs";
  const Value doc = parse("{\"s\":\"" + escape(original) + "\"}");
  EXPECT_EQ(doc.at("s").str, original);
}

TEST(JsonParse, DecodesUnicodeEscapes) {
  const Value doc = parse(R"(["\u0041\u00e9"])");
  EXPECT_EQ(doc.array[0].str, "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(parse(""), mutil::ConfigError);
  EXPECT_THROW(parse("{"), mutil::ConfigError);
  EXPECT_THROW(parse("[1,]"), mutil::ConfigError);
  EXPECT_THROW(parse("{\"a\":1,}"), mutil::ConfigError);
  EXPECT_THROW(parse("\"unterminated"), mutil::ConfigError);
  EXPECT_THROW(parse("tru"), mutil::ConfigError);
  EXPECT_THROW(parse("{} garbage"), mutil::ConfigError);
  EXPECT_THROW(parse("{\"a\" 1}"), mutil::ConfigError);
}

}  // namespace
