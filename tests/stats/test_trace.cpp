#include "stats/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "simtime/clock.hpp"
#include "stats/jsonlite.hpp"

namespace {

using stats::Collector;
using stats::jsonlite::Value;
using stats::jsonlite::parse;

/// Three ranks, two phases each, one exchange-round instant, and a full
/// traffic matrix. Clocks live alongside the collector (registries keep
/// pointers to them).
struct Sample {
  std::vector<simtime::Clock> clocks = std::vector<simtime::Clock>(3);
  Collector collector;

  Sample() {
    collector.reset(3);
    for (int r = 0; r < 3; ++r) {
      simtime::Clock& clock = clocks[static_cast<std::size_t>(r)];
      auto& reg = collector.rank(r);
      reg.bind(r, 3, &clock, nullptr);
      reg.phase_begin("map");
      clock.advance(1.0 + r);
      reg.instant("exchange_round");
      for (int d = 0; d < 3; ++d) {
        const auto bytes = static_cast<std::uint64_t>(100 * (r + 1) + d);
        reg.record_traffic(d, bytes);
        reg.add("shuffle.bytes_sent", bytes);
      }
      reg.phase_end();
      reg.phase_begin("reduce");
      clock.advance(0.5);
      reg.phase_end();
      reg.add("reduce.output_kvs", static_cast<std::uint64_t>(10 + r));
    }
  }
};

TEST(Summary, AggregatesAcrossRanks) {
  const Sample sample;
  const auto summary = sample.collector.summary();

  // Counters sum across ranks.
  EXPECT_EQ(summary.counters.at("reduce.output_kvs"), 33u);
  // Phase seconds are the max over ranks (rank 2 is slowest: 3.0s map).
  EXPECT_DOUBLE_EQ(summary.phase_seconds.at("map"), 3.0);
  EXPECT_DOUBLE_EQ(summary.phase_seconds.at("reduce"), 0.5);

  // Row r of the matrix is rank r's traffic row, and row+column sums
  // account for every shuffled byte.
  ASSERT_EQ(summary.traffic.size(), 3u);
  std::uint64_t row_sum = 0, col_sum = 0;
  for (int i = 0; i < 3; ++i) {
    row_sum += summary.traffic[1][static_cast<std::size_t>(i)];
    col_sum += summary.traffic[static_cast<std::size_t>(i)][1];
  }
  EXPECT_EQ(row_sum, 200u + 201u + 202u);
  EXPECT_EQ(col_sum, 101u + 201u + 301u);
  EXPECT_EQ(summary.traffic_total(), 303u + 603u + 903u);
  EXPECT_EQ(summary.traffic_total(),
            summary.counters.at("shuffle.bytes_sent"));
}

TEST(Summary, JsonRoundTrips) {
  const Sample sample;
  const auto summary = sample.collector.summary();
  const Value doc = parse(summary.json());
  EXPECT_EQ(doc.at("counters").at("reduce.output_kvs").as_u64(), 33u);
  EXPECT_DOUBLE_EQ(doc.at("phases").at("map").at("seconds").number, 3.0);
  EXPECT_EQ(doc.at("traffic").at("total_bytes").as_u64(),
            summary.traffic_total());
  std::uint64_t matrix_total = 0;
  for (const Value& row : doc.at("traffic").at("matrix").array) {
    for (const Value& cell : row.array) matrix_total += cell.as_u64();
  }
  EXPECT_EQ(matrix_total, summary.traffic_total());
}

TEST(TraceWriter, OneDurationEventPerPhasePerRank) {
  const Sample sample;
  const Value doc = parse(sample.collector.trace_json());
  const Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // (tid, name) -> count of complete duration events.
  std::map<std::pair<int, std::string>, int> durations;
  int instants = 0;
  for (const Value& event : events.array) {
    const std::string& ph = event.at("ph").str;
    const int tid = static_cast<int>(event.at("tid").number);
    if (ph == "X") {
      EXPECT_GE(event.at("ts").number, 0.0);
      EXPECT_GE(event.at("dur").number, 0.0);
      ++durations[{tid, event.at("name").str}];
    } else if (ph == "i") {
      EXPECT_EQ(event.at("name").str, "exchange_round");
      ++instants;
    }
  }
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ((durations[{r, "map"}]), 1) << "rank " << r;
    EXPECT_EQ((durations[{r, "reduce"}]), 1) << "rank " << r;
  }
  EXPECT_EQ(durations.size(), 6u);  // no stray duration events
  EXPECT_EQ(instants, 3);
}

TEST(TraceWriter, MultipleRunsGetDistinctPids) {
  stats::TraceWriter writer;
  EXPECT_TRUE(writer.empty());
  const Sample sample;
  writer.add_run(sample.collector, "first");
  writer.add_run(sample.collector, "second");
  EXPECT_EQ(writer.runs(), 2);

  const Value doc = parse(writer.json());
  bool saw_pid0 = false, saw_pid1 = false;
  for (const Value& event : doc.at("traceEvents").array) {
    const int pid = static_cast<int>(event.at("pid").number);
    EXPECT_TRUE(pid == 0 || pid == 1);
    saw_pid0 = saw_pid0 || pid == 0;
    saw_pid1 = saw_pid1 || pid == 1;
  }
  EXPECT_TRUE(saw_pid0);
  EXPECT_TRUE(saw_pid1);
}

}  // namespace
