#include "stats/trace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "simtime/clock.hpp"
#include "stats/jsonlite.hpp"

namespace {

using stats::Collector;
using stats::jsonlite::Value;
using stats::jsonlite::parse;

/// Three ranks, two phases each, one exchange-round instant, and a full
/// traffic matrix. Clocks live alongside the collector (registries keep
/// pointers to them).
struct Sample {
  std::vector<simtime::Clock> clocks = std::vector<simtime::Clock>(3);
  Collector collector;

  Sample() {
    collector.reset(3);
    for (int r = 0; r < 3; ++r) {
      simtime::Clock& clock = clocks[static_cast<std::size_t>(r)];
      auto& reg = collector.rank(r);
      reg.bind(r, 3, &clock, nullptr);
      reg.phase_begin("map");
      clock.advance(1.0 + r);
      reg.record_wait(0.25);  // every rank blocked 0.25s in the shuffle
      reg.instant("exchange_round");
      for (int d = 0; d < 3; ++d) {
        const auto bytes = static_cast<std::uint64_t>(100 * (r + 1) + d);
        reg.record_traffic(d, bytes);
        reg.add("shuffle.bytes_sent", bytes);
      }
      reg.phase_end();
      reg.phase_begin("reduce");
      clock.advance(0.5);
      reg.record_wait(0.5);  // the whole reduce was one collective wait
      reg.phase_end();
      reg.add("reduce.output_kvs", static_cast<std::uint64_t>(10 + r));
    }
  }
};

TEST(Summary, AggregatesAcrossRanks) {
  const Sample sample;
  const auto summary = sample.collector.summary();

  // Counters sum across ranks.
  EXPECT_EQ(summary.counters.at("reduce.output_kvs"), 33u);
  // Phase seconds are the max over ranks (rank 2 is slowest: 3.0s map).
  EXPECT_DOUBLE_EQ(summary.phase_seconds.at("map"), 3.0);
  EXPECT_DOUBLE_EQ(summary.phase_seconds.at("reduce"), 0.5);

  // Row r of the matrix is rank r's traffic row, and row+column sums
  // account for every shuffled byte.
  ASSERT_EQ(summary.traffic.size(), 3u);
  std::uint64_t row_sum = 0, col_sum = 0;
  for (int i = 0; i < 3; ++i) {
    row_sum += summary.traffic[1][static_cast<std::size_t>(i)];
    col_sum += summary.traffic[static_cast<std::size_t>(i)][1];
  }
  EXPECT_EQ(row_sum, 200u + 201u + 202u);
  EXPECT_EQ(col_sum, 101u + 201u + 301u);
  EXPECT_EQ(summary.traffic_total(), 303u + 603u + 903u);
  EXPECT_EQ(summary.traffic_total(),
            summary.counters.at("shuffle.bytes_sent"));
}

TEST(Summary, JsonRoundTrips) {
  const Sample sample;
  const auto summary = sample.collector.summary();
  const Value doc = parse(summary.json());
  EXPECT_EQ(doc.at("counters").at("reduce.output_kvs").as_u64(), 33u);
  EXPECT_DOUBLE_EQ(doc.at("phases").at("map").at("seconds").number, 3.0);
  EXPECT_EQ(doc.at("traffic").at("total_bytes").as_u64(),
            summary.traffic_total());
  std::uint64_t matrix_total = 0;
  for (const Value& row : doc.at("traffic").at("matrix").array) {
    for (const Value& cell : row.array) matrix_total += cell.as_u64();
  }
  EXPECT_EQ(matrix_total, summary.traffic_total());
}

TEST(Summary, AttributesWaitAndComputePerPhase) {
  const Sample sample;
  const auto summary = sample.collector.summary();

  // Ranks spend 0.25s of their map waiting; compute is the remainder,
  // so the straggler is the slowest rank (rank 2: 3.0 - 0.25 = 2.75s).
  const stats::PhaseAttr& map = summary.phase_attr.at("map");
  EXPECT_DOUBLE_EQ(map.wait_seconds, 0.25);
  EXPECT_DOUBLE_EQ(map.compute_seconds, 2.75);
  EXPECT_EQ(map.straggler, 2);
  EXPECT_DOUBLE_EQ(map.imbalance, 2.75 / ((0.75 + 1.75 + 2.75) / 3.0));
  ASSERT_EQ(map.per_rank_compute.size(), 3u);
  ASSERT_EQ(map.per_rank_wait.size(), 3u);
  EXPECT_DOUBLE_EQ(map.per_rank_compute[0], 0.75);
  EXPECT_DOUBLE_EQ(map.per_rank_wait[1], 0.25);

  // The reduce was one pure wait on every rank: zero compute, balanced.
  const stats::PhaseAttr& reduce = summary.phase_attr.at("reduce");
  EXPECT_DOUBLE_EQ(reduce.wait_seconds, 0.5);
  EXPECT_DOUBLE_EQ(reduce.compute_seconds, 0.0);
  EXPECT_DOUBLE_EQ(reduce.imbalance, 1.0);  // mean compute is 0

  // Whole-run wait totals.
  EXPECT_DOUBLE_EQ(summary.wait_total, 3 * 0.75);
  ASSERT_EQ(summary.wait_per_rank.size(), 3u);
  EXPECT_DOUBLE_EQ(summary.wait_per_rank[1], 0.75);
}

TEST(Summary, JsonCarriesAttributionWaitMemoryAndSections) {
  Sample sample;
  sample.collector.set_section("critical_path",
                               "{\"total_seconds\":1.5,\"steps\":[]}");
  const Value doc = parse(sample.collector.summary().json());

  const Value& map = doc.at("phases").at("map");
  EXPECT_DOUBLE_EQ(map.at("wait_seconds").number, 0.25);
  EXPECT_DOUBLE_EQ(map.at("compute_seconds").number, 2.75);
  EXPECT_EQ(static_cast<int>(map.at("straggler").number), 2);
  EXPECT_EQ(map.at("per_rank_compute").array.size(), 3u);
  EXPECT_EQ(map.at("per_rank_wait").array.size(), 3u);
  EXPECT_GT(map.at("imbalance").number, 1.0);

  EXPECT_DOUBLE_EQ(doc.at("wait").at("total_seconds").number, 2.25);
  EXPECT_EQ(doc.at("wait").at("per_rank").array.size(), 3u);

  // No tracker was bound, so the memory section is present but empty.
  EXPECT_EQ(doc.at("memory").at("current_total").as_u64(), 0u);
  EXPECT_TRUE(doc.at("memory").at("components").object.empty());

  // Raw sections round-trip as structured JSON members.
  EXPECT_DOUBLE_EQ(
      doc.at("critical_path").at("total_seconds").number, 1.5);
  EXPECT_TRUE(doc.at("critical_path").at("steps").array.empty());
}

TEST(TraceWriter, OneDurationEventPerPhasePerRank) {
  const Sample sample;
  const Value doc = parse(sample.collector.trace_json());
  const Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // (tid, name) -> count of complete duration events.
  std::map<std::pair<int, std::string>, int> durations;
  int instants = 0;
  for (const Value& event : events.array) {
    const std::string& ph = event.at("ph").str;
    const int tid = static_cast<int>(event.at("tid").number);
    if (ph == "X") {
      EXPECT_GE(event.at("ts").number, 0.0);
      EXPECT_GE(event.at("dur").number, 0.0);
      ++durations[{tid, event.at("name").str}];
    } else if (ph == "i") {
      EXPECT_EQ(event.at("name").str, "exchange_round");
      ++instants;
    }
  }
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ((durations[{r, "map"}]), 1) << "rank " << r;
    EXPECT_EQ((durations[{r, "reduce"}]), 1) << "rank " << r;
  }
  EXPECT_EQ(durations.size(), 6u);  // no stray duration events
  EXPECT_EQ(instants, 3);
}

TEST(TraceWriter, EmitsOneCumulativeWaitCounterTrackPerRank) {
  const Sample sample;
  const Value doc = parse(sample.collector.trace_json());

  // tid -> (track name, timestamps, cumulative values) of "C" events.
  std::map<int, std::string> names;
  std::map<int, std::vector<double>> ts, values;
  for (const Value& event : doc.at("traceEvents").array) {
    if (event.at("ph").str != "C") continue;
    const int tid = static_cast<int>(event.at("tid").number);
    if (names.count(tid) != 0) {
      EXPECT_EQ(names[tid], event.at("name").str)
          << "one counter track per rank";
    } else {
      names[tid] = event.at("name").str;
    }
    ts[tid].push_back(event.at("ts").number);
    values[tid].push_back(event.at("args").at("seconds").number);
  }
  ASSERT_EQ(names.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(names[r], "wait.rank" + std::to_string(r));
    ASSERT_EQ(ts[r].size(), 2u) << "one sample per recorded wait";
    // Timestamps and the cumulative counter are both non-decreasing.
    EXPECT_LE(ts[r][0], ts[r][1]);
    EXPECT_LT(values[r][0], values[r][1]);
    EXPECT_DOUBLE_EQ(values[r][1], 0.75);  // total wait of the rank
  }
}

/// Two ranks; rank 1 hides 0.5s of communication behind compute in its
/// map phase (the overlapped shuffle's attribution path).
struct OverlapSample {
  std::vector<simtime::Clock> clocks = std::vector<simtime::Clock>(2);
  Collector collector;

  OverlapSample() {
    collector.reset(2);
    for (int r = 0; r < 2; ++r) {
      simtime::Clock& clock = clocks[static_cast<std::size_t>(r)];
      auto& reg = collector.rank(r);
      reg.bind(r, 2, &clock, nullptr);
      reg.phase_begin("map");
      clock.advance(2.0);
      if (r == 1) {
        reg.record_overlap(0.3);
        reg.record_overlap(0.2);
      }
      reg.record_wait(0.25);
      reg.phase_end();
    }
  }
};

TEST(Summary, AttributesOverlapSeparatelyFromWait) {
  const OverlapSample sample;
  const auto summary = sample.collector.summary();

  EXPECT_DOUBLE_EQ(summary.overlap_total, 0.5);
  ASSERT_EQ(summary.overlap_per_rank.size(), 2u);
  EXPECT_DOUBLE_EQ(summary.overlap_per_rank[0], 0.0);
  EXPECT_DOUBLE_EQ(summary.overlap_per_rank[1], 0.5);
  // Hidden time never leaks into blocked time.
  EXPECT_DOUBLE_EQ(summary.wait_total, 0.5);

  const stats::PhaseAttr& map = summary.phase_attr.at("map");
  EXPECT_DOUBLE_EQ(map.overlap_seconds, 0.5);
  ASSERT_EQ(map.per_rank_overlap.size(), 2u);
  EXPECT_DOUBLE_EQ(map.per_rank_overlap[0], 0.0);
  EXPECT_DOUBLE_EQ(map.per_rank_overlap[1], 0.5);
  EXPECT_DOUBLE_EQ(map.wait_seconds, 0.25);

  const Value doc = parse(summary.json());
  EXPECT_DOUBLE_EQ(doc.at("overlap").at("total_seconds").number, 0.5);
  ASSERT_EQ(doc.at("overlap").at("per_rank").array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("overlap").at("per_rank").array[1].number, 0.5);
  const Value& map_json = doc.at("phases").at("map");
  EXPECT_DOUBLE_EQ(map_json.at("overlap_seconds").number, 0.5);
  ASSERT_EQ(map_json.at("per_rank_overlap").array.size(), 2u);
  EXPECT_DOUBLE_EQ(map_json.at("per_rank_overlap").array[1].number, 0.5);
}

TEST(TraceWriter, EmitsOverlapCounterTracksOnlyForOverlappingRanks) {
  const OverlapSample sample;
  const Value doc = parse(sample.collector.trace_json());

  std::vector<double> overlap_values;
  int wait_tracks = 0;
  for (const Value& event : doc.at("traceEvents").array) {
    if (event.at("ph").str != "C") continue;
    const std::string& name = event.at("name").str;
    if (name == "overlap.rank1") {
      overlap_values.push_back(event.at("args").at("seconds").number);
    } else if (name == "overlap.rank0") {
      ADD_FAILURE() << "rank 0 recorded no overlap";
    } else {
      ++wait_tracks;
    }
  }
  // Cumulative hidden-communication track: one sample per record.
  ASSERT_EQ(overlap_values.size(), 2u);
  EXPECT_DOUBLE_EQ(overlap_values[0], 0.3);
  EXPECT_DOUBLE_EQ(overlap_values[1], 0.5);
  EXPECT_EQ(wait_tracks, 2);  // both ranks still carry wait samples
}

TEST(TraceWriter, MultipleRunsGetDistinctPids) {
  stats::TraceWriter writer;
  EXPECT_TRUE(writer.empty());
  const Sample sample;
  writer.add_run(sample.collector, "first");
  writer.add_run(sample.collector, "second");
  EXPECT_EQ(writer.runs(), 2);

  const Value doc = parse(writer.json());
  bool saw_pid0 = false, saw_pid1 = false;
  for (const Value& event : doc.at("traceEvents").array) {
    const int pid = static_cast<int>(event.at("pid").number);
    EXPECT_TRUE(pid == 0 || pid == 1);
    saw_pid0 = saw_pid0 || pid == 0;
    saw_pid1 = saw_pid1 || pid == 1;
  }
  EXPECT_TRUE(saw_pid0);
  EXPECT_TRUE(saw_pid1);
}

}  // namespace
