// End-to-end stats collection through the simulated runtime: phase
// scopes, counters, the traffic matrix, and — crucially — the
// accounting-only invariant: collecting stats must not change any
// simulated result.
#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <numeric>
#include <string>
#include <vector>

#include "apps/wordcount.hpp"
#include "mimir/checkpoint.hpp"
#include "simmpi/runtime.hpp"
#include "stats/registry.hpp"
#include "stats/trace.hpp"

namespace {

using simmpi::Context;

struct Workload {
  simtime::MachineProfile machine;
  pfs::FileSystem fs;
  apps::wc::RunOptions opts;

  static simtime::MachineProfile profile() {
    auto machine = simtime::MachineProfile::test_profile();
    machine.ranks_per_node = 1;  // deterministic per-node peaks
    return machine;
  }

  explicit Workload(int ranks) : machine(profile()), fs(machine, ranks) {
    apps::wc::GenOptions gen;
    gen.total_bytes = 64 << 10;
    gen.num_files = 2;
    opts.files = apps::wc::generate_uniform(fs, "wc", gen);
    // Small buffers force several exchange rounds per rank.
    opts.page_size = 4 << 10;
    opts.comm_buffer = 4 << 10;
  }
};

constexpr int kRanks = 4;

/// Run wordcount and capture rank 0's Result plus the JobStats.
template <typename RunFn>
std::pair<simmpi::JobStats, apps::wc::Result> run_wc(
    Workload& wl, stats::Collector* collector, const RunFn& fn) {
  std::mutex mutex;
  apps::wc::Result result;
  const auto stats = simmpi::run(
      kRanks, wl.machine, wl.fs,
      [&](Context& ctx) {
        const auto local = fn(ctx, wl.opts);
        if (ctx.rank() == 0) {
          const std::scoped_lock lock(mutex);
          result = local;
        }
      },
      collector);
  return {stats, result};
}

TEST(StatsCollection, CollectionIsAccountingOnly) {
  // Identical runs with and without a collector must produce identical
  // simulated times, identical peak memory, and identical answers.
  Workload wl(kRanks);
  const auto run = [](Context& ctx, const apps::wc::RunOptions& opts) {
    return apps::wc::run_mimir(ctx, opts);
  };
  const auto [plain, plain_result] = run_wc(wl, nullptr, run);
  stats::Collector collector;
  const auto [collected, collected_result] = run_wc(wl, &collector, run);

  EXPECT_EQ(plain.sim_time, collected.sim_time);  // bit-identical
  EXPECT_EQ(plain.node_peak, collected.node_peak);
  EXPECT_EQ(plain.node_peaks, collected.node_peaks);
  EXPECT_EQ(plain.shuffle_bytes, collected.shuffle_bytes);
  EXPECT_EQ(plain_result.checksum, collected_result.checksum);
  EXPECT_EQ(plain_result.total_words, collected_result.total_words);
  EXPECT_GT(collector.summary().traffic_total(), 0u);
}

TEST(StatsCollection, CollectionIsAccountingOnlyForMrMpi) {
  Workload wl(kRanks);
  const auto run = [](Context& ctx, const apps::wc::RunOptions& opts) {
    return apps::wc::run_mrmpi(ctx, opts);
  };
  const auto [plain, plain_result] = run_wc(wl, nullptr, run);
  stats::Collector collector;
  const auto [collected, collected_result] = run_wc(wl, &collector, run);

  EXPECT_EQ(plain.sim_time, collected.sim_time);
  EXPECT_EQ(plain.node_peak, collected.node_peak);
  EXPECT_EQ(plain_result.checksum, collected_result.checksum);
  EXPECT_GT(collector.summary().traffic_total(), 0u);
}

TEST(StatsCollection, PhasesCountersAndTrafficAreConsistent) {
  Workload wl(kRanks);
  stats::Collector collector;
  run_wc(wl, &collector, [](Context& ctx, const apps::wc::RunOptions& o) {
    return apps::wc::run_mimir(ctx, o);
  });

  ASSERT_EQ(collector.ranks(), kRanks);
  std::uint64_t matrix_from_rows = 0;
  for (int r = 0; r < kRanks; ++r) {
    const stats::Registry& reg = collector.rank(r);
    ASSERT_EQ(reg.open_depth(), 0) << "rank " << r;

    auto count = [&](std::string_view name) {
      return std::count_if(
          reg.phases().begin(), reg.phases().end(),
          [&](const stats::PhaseRecord& p) { return p.name == name; });
    };
    EXPECT_EQ(count("map"), 1) << "rank " << r;
    EXPECT_EQ(count("convert"), 1) << "rank " << r;
    EXPECT_EQ(count("convert.pass1"), 1) << "rank " << r;
    EXPECT_EQ(count("convert.pass2"), 1) << "rank " << r;
    EXPECT_EQ(count("reduce"), 1) << "rank " << r;
    // One aggregate scope and one instant per exchange round.
    EXPECT_EQ(static_cast<std::uint64_t>(count("aggregate")),
              reg.counter("shuffle.rounds"));
    EXPECT_EQ(reg.instants().size(), reg.counter("shuffle.rounds"));
    EXPECT_GE(reg.counter("shuffle.rounds"), 2u);  // buffers were small

    // Aggregate scopes nest inside the map scope; convert passes nest
    // inside convert.
    for (const auto& phase : reg.phases()) {
      if (phase.name == "aggregate" || phase.name == "convert.pass1" ||
          phase.name == "convert.pass2") {
        EXPECT_EQ(phase.depth, 1) << phase.name;
      } else {
        EXPECT_EQ(phase.depth, 0) << phase.name;
      }
      EXPECT_LE(phase.begin, phase.end) << phase.name;
    }

    // The rank's traffic row accounts for exactly the bytes its shuffle
    // counters saw.
    const auto row_sum = std::accumulate(reg.traffic().begin(),
                                         reg.traffic().end(),
                                         std::uint64_t{0});
    EXPECT_EQ(row_sum, reg.counter("shuffle.bytes_sent")) << "rank " << r;
    matrix_from_rows += row_sum;
  }

  // Matrix row and column sums both equal the total shuffled bytes.
  const auto summary = collector.summary();
  EXPECT_EQ(summary.traffic_total(), matrix_from_rows);
  std::uint64_t col_total = 0;
  for (std::size_t dst = 0; dst < summary.traffic.size(); ++dst) {
    for (std::size_t src = 0; src < summary.traffic.size(); ++src) {
      col_total += summary.traffic[src][dst];
    }
  }
  EXPECT_EQ(col_total, summary.traffic_total());
  EXPECT_EQ(summary.counters.at("shuffle.bytes_sent"),
            summary.traffic_total());

  // Every phase got a cross-rank time and memory aggregate.
  for (const char* name : {"map", "aggregate", "convert", "reduce"}) {
    EXPECT_GT(summary.phase_seconds.at(name), 0.0) << name;
    EXPECT_GT(summary.phase_mem_peak.at(name), 0u) << name;
  }
}

TEST(StatsCollection, WaitAttributionNamesTheStraggler) {
  // Rank 2 computes 1s longer than everyone else before a barrier: the
  // others must be charged ~1s of wait, and the phase attribution must
  // name rank 2 as the straggler.
  stats::Collector collector;
  simmpi::run_test(
      kRanks,
      [](Context& ctx) {
        const stats::PhaseScope phase("skewed");
        ctx.clock().advance(0.125);
        if (ctx.rank() == 2) ctx.clock().advance(1.0);
        ctx.comm.barrier();
      },
      &collector);

  const auto summary = collector.summary();
  const stats::PhaseAttr& attr = summary.phase_attr.at("skewed");
  EXPECT_EQ(attr.straggler, 2);
  EXPECT_GT(attr.imbalance, 1.5);
  EXPECT_DOUBLE_EQ(attr.compute_seconds, 1.125);
  ASSERT_EQ(attr.per_rank_wait.size(),
            static_cast<std::size_t>(kRanks));
  for (int r = 0; r < kRanks; ++r) {
    const auto i = static_cast<std::size_t>(r);
    if (r == 2) {
      EXPECT_DOUBLE_EQ(attr.per_rank_wait[i], 0.0) << "straggler waits 0";
      EXPECT_DOUBLE_EQ(attr.per_rank_compute[i], 1.125);
    } else {
      EXPECT_DOUBLE_EQ(attr.per_rank_wait[i], 1.0) << "rank " << r;
      EXPECT_DOUBLE_EQ(attr.per_rank_compute[i], 0.125) << "rank " << r;
    }
  }
  EXPECT_DOUBLE_EQ(summary.wait_total, 3.0);
}

TEST(StatsCollection, TaggedMemoryReconcilesWithUntaggedTotals) {
  Workload wl(kRanks);
  stats::Collector collector;
  run_wc(wl, &collector, [](Context& ctx, const apps::wc::RunOptions& o) {
    return apps::wc::run_mimir(ctx, o);
  });

  // Per rank: the end-of-run snapshot's component currents partition
  // the rank's untagged current exactly (tags are pure attribution).
  for (int r = 0; r < kRanks; ++r) {
    const stats::MemorySnapshot& mem = collector.rank(r).memory();
    ASSERT_TRUE(mem.captured) << "rank " << r;
    std::uint64_t components = 0;
    for (const auto& component : mem.components) {
      components += component.current;
      EXPECT_LE(component.peak, mem.peak) << component.tag;
    }
    EXPECT_EQ(components, mem.current) << "rank " << r;
  }

  // Aggregated: same reconciliation, and the expected core components
  // actually allocated something during the run.
  const auto summary = collector.summary();
  std::uint64_t components_current = 0;
  for (const auto& [tag, mem] : summary.memory_components) {
    components_current += mem.current;
    EXPECT_LE(mem.peak, summary.memory_peak_max) << tag;
  }
  EXPECT_EQ(components_current, summary.memory_current_total);
  EXPECT_GT(summary.memory_peak_max, 0u);
  for (const char* tag : {"pages", "shuffle", "convert"}) {
    ASSERT_NE(summary.memory_components.find(tag),
              summary.memory_components.end())
        << tag;
    EXPECT_GT(summary.memory_components.at(tag).peak, 0u) << tag;
  }
}

TEST(StatsCollection, CheckpointAndPfsCountersBalance) {
  stats::Collector collector;
  simmpi::run_test(
      2,
      [](Context& ctx) {
        mimir::JobConfig cfg;
        cfg.page_size = 4 << 10;
        cfg.comm_buffer = 4 << 10;
        mimir::Job job(ctx, cfg);
        job.map_custom([&](mimir::Emitter& out) {
          for (int i = 0; i < 200; ++i) {
            out.emit("key" + std::to_string(i), "value");
          }
        });
        mimir::checkpoint_job(job, "ck");
        mimir::Job resumed = mimir::resume_job(ctx, cfg, "ck");
        resumed.partial_reduce(
            [](std::string_view, std::string_view a, std::string_view,
               std::string& out) { out.assign(a); });
      },
      &collector);

  for (int r = 0; r < 2; ++r) {
    const stats::Registry& reg = collector.rank(r);
    auto has_phase = [&](std::string_view name) {
      return std::any_of(
          reg.phases().begin(), reg.phases().end(),
          [&](const stats::PhaseRecord& p) { return p.name == name; });
    };
    EXPECT_TRUE(has_phase("checkpoint_save")) << "rank " << r;
    EXPECT_TRUE(has_phase("checkpoint_load")) << "rank " << r;
    EXPECT_TRUE(has_phase("partial_reduce")) << "rank " << r;
    // The shard written is the shard read back.
    EXPECT_GT(reg.counter("checkpoint.bytes_written"), 0u);
    EXPECT_EQ(reg.counter("checkpoint.bytes_written"),
              reg.counter("checkpoint.bytes_read"));
    // The PFS counters saw at least the checkpoint traffic, and the
    // simulated I/O time was attributed.
    EXPECT_GE(reg.counter("pfs.bytes_written"),
              reg.counter("checkpoint.bytes_written"));
    EXPECT_GE(reg.counter("pfs.bytes_read"),
              reg.counter("checkpoint.bytes_read"));
    EXPECT_GT(reg.counter("pfs.write_ops"), 0u);
    EXPECT_GT(reg.timers().at("pfs.io_seconds"), 0.0);
  }
}

}  // namespace
