#include "stats/registry.hpp"

#include <gtest/gtest.h>

#include "memtrack/tracker.hpp"
#include "simtime/clock.hpp"

namespace {

using memtrack::TrackedBuffer;
using memtrack::Tracker;
using simtime::Clock;
using stats::PhaseScope;
using stats::Registry;
using stats::ScopedBind;

TEST(Registry, PhaseNestingAndOrdering) {
  Clock clock;
  Registry reg;
  reg.bind(0, 1, &clock, nullptr);

  reg.phase_begin("outer");
  clock.advance(1.0);
  reg.phase_begin("inner");
  EXPECT_EQ(reg.open_depth(), 2);
  clock.advance(0.5);
  reg.phase_end();
  clock.advance(0.25);
  reg.phase_end();
  EXPECT_EQ(reg.open_depth(), 0);

  // Completion order: children close before their parents.
  ASSERT_EQ(reg.phases().size(), 2u);
  const auto& inner = reg.phases()[0];
  const auto& outer = reg.phases()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_DOUBLE_EQ(inner.begin, 1.0);
  EXPECT_DOUBLE_EQ(inner.end, 1.5);
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_DOUBLE_EQ(outer.begin, 0.0);
  EXPECT_DOUBLE_EQ(outer.end, 1.75);
  // The child interval lies inside the parent interval.
  EXPECT_GE(inner.begin, outer.begin);
  EXPECT_LE(inner.end, outer.end);
}

TEST(Registry, UnbalancedPhaseEndIsIgnored) {
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  reg.phase_end();  // no open phase: must not crash or record anything
  EXPECT_TRUE(reg.phases().empty());
}

TEST(Registry, CountersAreMonotonic) {
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  EXPECT_EQ(reg.counter("bytes"), 0u);
  std::uint64_t previous = 0;
  for (const std::uint64_t delta : {5u, 0u, 17u, 1u}) {
    reg.add("bytes", delta);
    EXPECT_GE(reg.counter("bytes"), previous);
    previous = reg.counter("bytes");
  }
  EXPECT_EQ(reg.counter("bytes"), 23u);
  reg.add_seconds("io", 0.5);
  reg.add_seconds("io", 0.25);
  EXPECT_DOUBLE_EQ(reg.timers().at("io"), 0.75);
}

TEST(Registry, PhaseMemorySamplesTrackHighWater) {
  Clock clock;
  Tracker tracker;
  Registry reg;
  reg.bind(0, 1, &clock, &tracker);

  TrackedBuffer base(tracker, 100);
  reg.phase_begin("allocating");
  {
    TrackedBuffer spike(tracker, 1000);  // raises the rank's high-water
  }
  reg.phase_end();
  ASSERT_EQ(reg.phases().size(), 1u);
  EXPECT_EQ(reg.phases()[0].mem_begin, 100u);
  EXPECT_EQ(reg.phases()[0].mem_end, 100u);
  EXPECT_EQ(reg.phases()[0].mem_peak, 1100u);

  // A phase that does not move the lifetime peak samples its endpoints.
  reg.phase_begin("quiet");
  TrackedBuffer small(tracker, 50);
  reg.phase_end();
  ASSERT_EQ(reg.phases().size(), 2u);
  EXPECT_EQ(reg.phases()[1].mem_peak, 150u);
}

TEST(Registry, TrafficRowIsBoundsChecked) {
  Registry reg;
  reg.bind(2, 4, nullptr, nullptr);
  reg.record_traffic(0, 10);
  reg.record_traffic(3, 30);
  reg.record_traffic(3, 5);
  reg.record_traffic(-1, 99);  // dropped
  reg.record_traffic(4, 99);   // dropped
  ASSERT_EQ(reg.traffic().size(), 4u);
  EXPECT_EQ(reg.traffic()[0], 10u);
  EXPECT_EQ(reg.traffic()[1], 0u);
  EXPECT_EQ(reg.traffic()[3], 35u);
}

TEST(Registry, ScopedBindRestoresPreviousBinding) {
  EXPECT_EQ(stats::current(), nullptr);
  Registry a, b;
  {
    ScopedBind bind_a(&a);
    EXPECT_EQ(stats::current(), &a);
    {
      ScopedBind bind_b(&b);
      EXPECT_EQ(stats::current(), &b);
    }
    EXPECT_EQ(stats::current(), &a);
  }
  EXPECT_EQ(stats::current(), nullptr);
}

TEST(Registry, PhaseScopeIsNullSafeWithoutBinding) {
  ASSERT_EQ(stats::current(), nullptr);
  {
    PhaseScope scope("ignored");  // must be a no-op, not a crash
  }
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  {
    ScopedBind bind(&reg);
    PhaseScope scope("seen");
  }
  ASSERT_EQ(reg.phases().size(), 1u);
  EXPECT_EQ(reg.phases()[0].name, "seen");
}

}  // namespace
