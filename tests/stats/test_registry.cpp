#include "stats/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "memtrack/tracker.hpp"
#include "mutil/error.hpp"
#include "simtime/clock.hpp"

namespace {

using memtrack::TrackedBuffer;
using memtrack::Tracker;
using simtime::Clock;
using stats::PhaseScope;
using stats::Registry;
using stats::ScopedBind;

TEST(Registry, PhaseNestingAndOrdering) {
  Clock clock;
  Registry reg;
  reg.bind(0, 1, &clock, nullptr);

  reg.phase_begin("outer");
  clock.advance(1.0);
  reg.phase_begin("inner");
  EXPECT_EQ(reg.open_depth(), 2);
  clock.advance(0.5);
  reg.phase_end();
  clock.advance(0.25);
  reg.phase_end();
  EXPECT_EQ(reg.open_depth(), 0);

  // Completion order: children close before their parents.
  ASSERT_EQ(reg.phases().size(), 2u);
  const auto& inner = reg.phases()[0];
  const auto& outer = reg.phases()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_DOUBLE_EQ(inner.begin, 1.0);
  EXPECT_DOUBLE_EQ(inner.end, 1.5);
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_DOUBLE_EQ(outer.begin, 0.0);
  EXPECT_DOUBLE_EQ(outer.end, 1.75);
  // The child interval lies inside the parent interval.
  EXPECT_GE(inner.begin, outer.begin);
  EXPECT_LE(inner.end, outer.end);
}

TEST(Registry, UnbalancedPhaseEndThrows) {
  Registry reg;
  reg.bind(3, 4, nullptr, nullptr);
  try {
    reg.phase_end();  // no open phase: a caller bug, reported as such
    FAIL() << "expected UsageError";
  } catch (const mutil::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("no open phase"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("rank 3"), std::string::npos);
  }
  EXPECT_TRUE(reg.phases().empty());
}

TEST(Registry, MismatchedPhaseEndThrowsAndLeavesStackIntact) {
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  reg.phase_begin("outer");
  reg.phase_begin("inner");
  try {
    reg.phase_end("outer");  // the top is "inner" — nesting bug
    FAIL() << "expected UsageError";
  } catch (const mutil::UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("innermost open phase is 'inner'"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("outer/inner"), std::string::npos) << what;
  }
  // The open stack is untouched, so the caller can still unwind it.
  EXPECT_EQ(reg.open_depth(), 2);
  reg.phase_end("inner");
  reg.phase_end("outer");
  EXPECT_EQ(reg.open_depth(), 0);
  ASSERT_EQ(reg.phases().size(), 2u);

  // Closing past the bottom of the stack names the expected phase.
  EXPECT_THROW(reg.phase_end("outer"), mutil::UsageError);
}

TEST(Registry, PhaseEndNothrowReportsEmptyStack) {
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  EXPECT_FALSE(reg.phase_end_nothrow());
  reg.phase_begin("p");
  EXPECT_TRUE(reg.phase_end_nothrow());
  ASSERT_EQ(reg.phases().size(), 1u);
}

TEST(Registry, PhaseScopeSurvivesExceptionUnwinding) {
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  ScopedBind bind(&reg);
  // A throw inside the scope unwinds through the destructor; the phase
  // still closes and the exception propagates untouched.
  EXPECT_THROW(
      {
        PhaseScope scope("body");
        throw std::runtime_error("boom");
      },
      std::runtime_error);
  EXPECT_EQ(reg.open_depth(), 0);
  ASSERT_EQ(reg.phases().size(), 1u);
  EXPECT_EQ(reg.phases()[0].name, "body");
}

TEST(Registry, WaitRecordsAccumulateAndAttributeToPhases) {
  Clock clock;
  Registry reg;
  reg.bind(0, 1, &clock, nullptr);

  reg.phase_begin("collective-heavy");
  clock.advance(2.0);
  reg.record_wait(0.5);
  reg.record_wait(0.25);
  reg.record_wait(0.0);    // ignored: nothing was waited
  reg.record_wait(-1.0);   // ignored: defensive against clock skew
  reg.phase_end();

  reg.phase_begin("compute-only");
  clock.advance(1.0);
  reg.phase_end();

  EXPECT_DOUBLE_EQ(reg.wait_total(), 0.75);
  ASSERT_EQ(reg.waits().size(), 2u);
  EXPECT_DOUBLE_EQ(reg.waits()[0].seconds, 0.5);
  ASSERT_EQ(reg.phases().size(), 2u);
  EXPECT_DOUBLE_EQ(reg.phases()[0].wait, 0.75);
  EXPECT_DOUBLE_EQ(reg.phases()[0].compute_seconds(), 1.25);
  EXPECT_DOUBLE_EQ(reg.phases()[1].wait, 0.0);
  EXPECT_DOUBLE_EQ(reg.phases()[1].compute_seconds(), 1.0);
}

TEST(Registry, OverlapRecordsAccumulateAndAttributeToPhases) {
  // Overlap (communication hidden behind compute by a non-blocking
  // collective) is tracked like wait but in its own ledger: per-phase
  // attribution, zero/negative records ignored.
  Clock clock;
  Registry reg;
  reg.bind(0, 1, &clock, nullptr);

  reg.phase_begin("overlapped-shuffle");
  clock.advance(2.0);
  reg.record_overlap(0.75);
  reg.record_overlap(0.25);
  reg.record_overlap(0.0);   // ignored: nothing was hidden
  reg.record_overlap(-1.0);  // ignored: defensive against clock skew
  reg.phase_end();

  reg.phase_begin("blocking");
  clock.advance(1.0);
  reg.record_wait(0.5);
  reg.phase_end();

  EXPECT_DOUBLE_EQ(reg.overlap_total(), 1.0);
  ASSERT_EQ(reg.overlaps().size(), 2u);
  EXPECT_DOUBLE_EQ(reg.overlaps()[0].seconds, 0.75);
  ASSERT_EQ(reg.phases().size(), 2u);
  EXPECT_DOUBLE_EQ(reg.phases()[0].overlap, 1.0);
  EXPECT_DOUBLE_EQ(reg.phases()[0].wait, 0.0);
  EXPECT_DOUBLE_EQ(reg.phases()[1].overlap, 0.0);
  EXPECT_DOUBLE_EQ(reg.phases()[1].wait, 0.5);
  // Overlap is hidden time, not blocked time: wait stays separate.
  EXPECT_DOUBLE_EQ(reg.wait_total(), 0.5);
}

TEST(Registry, CountersAreMonotonic) {
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  EXPECT_EQ(reg.counter("bytes"), 0u);
  std::uint64_t previous = 0;
  for (const std::uint64_t delta : {5u, 0u, 17u, 1u}) {
    reg.add("bytes", delta);
    EXPECT_GE(reg.counter("bytes"), previous);
    previous = reg.counter("bytes");
  }
  EXPECT_EQ(reg.counter("bytes"), 23u);
  reg.add_seconds("io", 0.5);
  reg.add_seconds("io", 0.25);
  EXPECT_DOUBLE_EQ(reg.timers().at("io"), 0.75);
}

TEST(Registry, PhaseMemorySamplesTrackHighWater) {
  Clock clock;
  Tracker tracker;
  Registry reg;
  reg.bind(0, 1, &clock, &tracker);

  TrackedBuffer base(tracker, 100);
  reg.phase_begin("allocating");
  {
    TrackedBuffer spike(tracker, 1000);  // raises the rank's high-water
  }
  reg.phase_end();
  ASSERT_EQ(reg.phases().size(), 1u);
  EXPECT_EQ(reg.phases()[0].mem_begin, 100u);
  EXPECT_EQ(reg.phases()[0].mem_end, 100u);
  EXPECT_EQ(reg.phases()[0].mem_peak, 1100u);

  // A phase that does not move the lifetime peak samples its endpoints.
  reg.phase_begin("quiet");
  TrackedBuffer small(tracker, 50);
  reg.phase_end();
  ASSERT_EQ(reg.phases().size(), 2u);
  EXPECT_EQ(reg.phases()[1].mem_peak, 150u);
}

TEST(Registry, TrafficRowIsBoundsChecked) {
  Registry reg;
  reg.bind(2, 4, nullptr, nullptr);
  reg.record_traffic(0, 10);
  reg.record_traffic(3, 30);
  reg.record_traffic(3, 5);
  reg.record_traffic(-1, 99);  // dropped
  reg.record_traffic(4, 99);   // dropped
  ASSERT_EQ(reg.traffic().size(), 4u);
  EXPECT_EQ(reg.traffic()[0], 10u);
  EXPECT_EQ(reg.traffic()[1], 0u);
  EXPECT_EQ(reg.traffic()[3], 35u);
}

TEST(Registry, ScopedBindRestoresPreviousBinding) {
  EXPECT_EQ(stats::current(), nullptr);
  Registry a, b;
  {
    ScopedBind bind_a(&a);
    EXPECT_EQ(stats::current(), &a);
    {
      ScopedBind bind_b(&b);
      EXPECT_EQ(stats::current(), &b);
    }
    EXPECT_EQ(stats::current(), &a);
  }
  EXPECT_EQ(stats::current(), nullptr);
}

TEST(Registry, PhaseScopeIsNullSafeWithoutBinding) {
  ASSERT_EQ(stats::current(), nullptr);
  {
    PhaseScope scope("ignored");  // must be a no-op, not a crash
  }
  Registry reg;
  reg.bind(0, 1, nullptr, nullptr);
  {
    ScopedBind bind(&reg);
    PhaseScope scope("seen");
  }
  ASSERT_EQ(reg.phases().size(), 1u);
  EXPECT_EQ(reg.phases()[0].name, "seen");
}

}  // namespace
