#include "mutil/config.hpp"

#include <gtest/gtest.h>

#include "mutil/error.hpp"

namespace {

TEST(Config, FromArgsParsesPairs) {
  const auto cfg = mutil::Config::from_args({"a=1", "b=hello", "c=64M"});
  EXPECT_EQ(cfg.get_int("a", 0), 1);
  EXPECT_EQ(cfg.get_string("b", ""), "hello");
  EXPECT_EQ(cfg.get_size("c", 0), 64u << 20);
}

TEST(Config, FromArgsRejectsMalformed) {
  EXPECT_THROW(mutil::Config::from_args({"novalue"}), mutil::ConfigError);
  EXPECT_THROW(mutil::Config::from_args({"=x"}), mutil::ConfigError);
}

TEST(Config, FallbacksApplyWhenMissing) {
  const mutil::Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_EQ(cfg.get_double("missing", 2.5), 2.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(cfg.get_size("missing", 42), 42u);
}

TEST(Config, BoolAcceptsCommonSpellings) {
  auto cfg = mutil::Config::from_args(
      {"a=true", "b=0", "c=YES", "d=off", "e=1"});
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_FALSE(cfg.get_bool("b", true));
  EXPECT_TRUE(cfg.get_bool("c", false));
  EXPECT_FALSE(cfg.get_bool("d", true));
  EXPECT_TRUE(cfg.get_bool("e", false));
}

TEST(Config, TypedGettersRejectGarbage) {
  auto cfg = mutil::Config::from_args({"n=abc", "x=1.2.3", "b=maybe"});
  EXPECT_THROW(cfg.get_int("n", 0), mutil::ConfigError);
  EXPECT_THROW(cfg.get_double("x", 0), mutil::ConfigError);
  EXPECT_THROW(cfg.get_bool("b", false), mutil::ConfigError);
}

TEST(Config, MergeOtherWins) {
  auto base = mutil::Config::from_args({"a=1", "b=2"});
  const auto over = mutil::Config::from_args({"b=20", "c=30"});
  base.merge(over);
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 20);
  EXPECT_EQ(base.get_int("c", 0), 30);
}

TEST(Config, SetOverwrites) {
  mutil::Config cfg;
  cfg.set("k", "1");
  cfg.set("k", "2");
  EXPECT_EQ(cfg.get_int("k", 0), 2);
  EXPECT_TRUE(cfg.contains("k"));
  EXPECT_FALSE(cfg.contains("z"));
}

}  // namespace
