#include "mutil/sizes.hpp"

#include <gtest/gtest.h>

#include "mutil/error.hpp"

namespace {

TEST(Sizes, ParsePlainBytes) {
  EXPECT_EQ(mutil::parse_size("0"), 0u);
  EXPECT_EQ(mutil::parse_size("123"), 123u);
  EXPECT_EQ(mutil::parse_size("123B"), 123u);
}

TEST(Sizes, ParseSuffixes) {
  EXPECT_EQ(mutil::parse_size("1K"), 1024u);
  EXPECT_EQ(mutil::parse_size("64k"), 64u * 1024);
  EXPECT_EQ(mutil::parse_size("64M"), 64u * 1024 * 1024);
  EXPECT_EQ(mutil::parse_size("2G"), 2ull << 30);
  EXPECT_EQ(mutil::parse_size("1T"), 1ull << 40);
  EXPECT_EQ(mutil::parse_size("64MB"), 64u * 1024 * 1024);
  EXPECT_EQ(mutil::parse_size("64MiB"), 64u * 1024 * 1024);
}

TEST(Sizes, ParseFractional) {
  EXPECT_EQ(mutil::parse_size("0.5K"), 512u);
  EXPECT_EQ(mutil::parse_size("1.5M"), (3u << 20) / 2);
}

TEST(Sizes, ParseRejectsGarbage) {
  EXPECT_THROW(mutil::parse_size(""), mutil::ConfigError);
  EXPECT_THROW(mutil::parse_size("abc"), mutil::ConfigError);
  EXPECT_THROW(mutil::parse_size("12Q"), mutil::ConfigError);
  EXPECT_THROW(mutil::parse_size("12Kxx"), mutil::ConfigError);
  EXPECT_THROW(mutil::parse_size("-5K"), mutil::ConfigError);
}

TEST(Sizes, FormatPaperStyle) {
  EXPECT_EQ(mutil::format_size(256u << 20), "256M");
  EXPECT_EQ(mutil::format_size(1u << 30), "1G");
  EXPECT_EQ(mutil::format_size(64u << 10), "64K");
  EXPECT_EQ(mutil::format_size(512), "512");
}

TEST(Sizes, FormatRoundTrip) {
  for (const std::uint64_t v :
       {1ull << 10, 1ull << 20, 64ull << 20, 3ull << 30}) {
    EXPECT_EQ(mutil::parse_size(mutil::format_size(v)), v);
  }
}

TEST(Sizes, FormatPow2) {
  EXPECT_EQ(mutil::format_pow2(1u << 24), "2^24");
  EXPECT_EQ(mutil::format_pow2(3000000), "3000000");
}

}  // namespace
