#include "mutil/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "mutil/error.hpp"

namespace {

TEST(Random, DeterministicAcrossInstances) {
  mutil::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Random, DifferentSeedsDiffer) {
  mutil::Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, BelowStaysInRange) {
  mutil::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Random, BelowIsRoughlyUniform) {
  mutil::Xoshiro256 rng(13);
  constexpr std::uint64_t kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Random, UniformInUnitInterval) {
  mutil::Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Random, NormalMomentsMatch) {
  mutil::Xoshiro256 rng(11);
  constexpr int kSamples = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Random, SplitStreamsAreIndependent) {
  mutil::Xoshiro256 a(99);
  mutil::Xoshiro256 b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(mutil::ZipfSampler(0, 1.0), mutil::ConfigError);
  EXPECT_THROW(mutil::ZipfSampler(10, 0.0), mutil::ConfigError);
}

TEST(Zipf, SamplesStayInDomain) {
  mutil::ZipfSampler zipf(100, 1.1);
  mutil::Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.sample(rng), 100u);
  }
}

class ZipfExponentTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentTest, FrequenciesFollowPowerLaw) {
  const double s = GetParam();
  mutil::ZipfSampler zipf(1000, s);
  mutil::Xoshiro256 rng(17);
  constexpr int kSamples = 200000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];

  // The ratio of frequency(rank 1) / frequency(rank 4) should be about
  // 4^s for a Zipf law.
  const double f1 = counts[0];
  const double f4 = counts[3];
  ASSERT_GT(f4, 100);  // enough mass to compare
  const double expected = std::pow(4.0, s);
  EXPECT_NEAR(f1 / f4, expected, expected * 0.25);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentTest,
                         ::testing::Values(0.8, 1.0, 1.2));

}  // namespace
