#include "mutil/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace {

TEST(Hash, Fnv1aMatchesKnownVectors) {
  // Reference values for FNV-1a 64-bit.
  EXPECT_EQ(mutil::fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(mutil::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(mutil::fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(Hash, ByteAndStringViewsAgree) {
  const std::string text = "the quick brown fox";
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(text.data()), text.size());
  EXPECT_EQ(mutil::fnv1a(text), mutil::fnv1a(bytes));
  EXPECT_EQ(mutil::hash_bytes(text), mutil::hash_bytes(bytes));
}

TEST(Hash, MixedHashDiffersFromRawFnv) {
  EXPECT_NE(mutil::hash_bytes("key"), mutil::fnv1a("key"));
}

TEST(Hash, SequentialKeysSpreadAcrossBuckets) {
  // Partitioning quality: 1000 sequential keys into 16 buckets should
  // put something in every bucket and nothing grossly overloaded.
  constexpr int kBuckets = 16;
  int counts[kBuckets] = {};
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "word" + std::to_string(i);
    ++counts[mutil::hash_bytes(key) % kBuckets];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 20);
    EXPECT_LT(c, 140);
  }
}

TEST(Hash, Mix64IsBijectivePrefix) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    seen.insert(mutil::mix64(i));
  }
  EXPECT_EQ(seen.size(), 4096u);
}

}  // namespace
