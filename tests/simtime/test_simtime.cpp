#include "simtime/clock.hpp"
#include "simtime/machine.hpp"

#include <gtest/gtest.h>

#include "mutil/config.hpp"
#include "mutil/error.hpp"

namespace {

TEST(Clock, AdvanceAndSync) {
  simtime::Clock c;
  EXPECT_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(0.5);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  c.sync_to(1.0);  // behind: no change
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  c.sync_to(3.0);
  EXPECT_DOUBLE_EQ(c.now(), 3.0);
  c.reset();
  EXPECT_EQ(c.now(), 0.0);
}

TEST(Machine, ProfilesExist) {
  const auto comet = simtime::MachineProfile::comet_sim();
  const auto mira = simtime::MachineProfile::mira_sim();
  EXPECT_EQ(comet.ranks_per_node, 24);
  EXPECT_EQ(mira.ranks_per_node, 16);
  // Scaled 1/1024: 128 GB -> 128 MB, 16 GB -> 16 MB.
  EXPECT_EQ(comet.node_memory, 128ull << 20);
  EXPECT_EQ(mira.node_memory, 16ull << 20);
  // Mira cores are slower than Comet cores.
  EXPECT_LT(mira.map_rate, comet.map_rate);
}

TEST(Machine, ByNameAndAliases) {
  EXPECT_EQ(simtime::MachineProfile::by_name("comet").name, "comet_sim");
  EXPECT_EQ(simtime::MachineProfile::by_name("mira_sim").name, "mira_sim");
  EXPECT_EQ(simtime::MachineProfile::by_name("test").name, "test");
  EXPECT_THROW(simtime::MachineProfile::by_name("titan"),
               mutil::ConfigError);
}

TEST(Machine, OverridesApply) {
  auto prof = simtime::MachineProfile::comet_sim();
  const auto cfg = mutil::Config::from_args(
      {"machine.ranks_per_node=4", "machine.node_memory=32M",
       "machine.map_rate=123.5"});
  prof.apply_overrides(cfg);
  EXPECT_EQ(prof.ranks_per_node, 4);
  EXPECT_EQ(prof.node_memory, 32ull << 20);
  EXPECT_DOUBLE_EQ(prof.map_rate, 123.5);
  // Untouched fields keep profile values.
  EXPECT_DOUBLE_EQ(prof.net_latency,
                   simtime::MachineProfile::comet_sim().net_latency);
}

}  // namespace
