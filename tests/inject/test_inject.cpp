// Fault-plan parsing and injector hook semantics.
#include "inject/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "memtrack/tracker.hpp"
#include "mimir/mimir.hpp"
#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "mutil/hash.hpp"
#include "simmpi/runtime.hpp"
#include "simtime/clock.hpp"

namespace {

using inject::FaultPlan;
using inject::Injector;

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan = FaultPlan::parse(
      "rank_crash:2@reduce#2,pfs_error:0.01,pfs_slow:3,"
      "mem_spike:8K@convert,seed:42");
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].rank, 2);
  EXPECT_EQ(plan.crashes[0].trigger.phase, "reduce");
  EXPECT_FALSE(plan.crashes[0].trigger.is_time());
  EXPECT_EQ(plan.crashes[0].attempt, 2);
  ASSERT_EQ(plan.spikes.size(), 1u);
  EXPECT_EQ(plan.spikes[0].bytes, 8u << 10);
  EXPECT_EQ(plan.spikes[0].trigger.phase, "convert");
  EXPECT_EQ(plan.spikes[0].attempt, 1);
  EXPECT_DOUBLE_EQ(plan.pfs_error_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan.pfs_slowdown, 3.0);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, ParsesTimeTrigger) {
  const FaultPlan plan = FaultPlan::parse("rank_crash:0@1.5");
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_TRUE(plan.crashes[0].trigger.is_time());
  EXPECT_DOUBLE_EQ(plan.crashes[0].trigger.at_time, 1.5);
}

TEST(FaultPlan, EmptySpecAndConfigRoundTrip) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  mutil::Config cfg;
  EXPECT_FALSE(FaultPlan::from(cfg).has_value());
  cfg.set("mimir.inject", "pfs_error:0.5");
  const auto plan = FaultPlan::from(cfg);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->pfs_error_rate, 0.5);
}

TEST(FaultPlan, ParsesNodeCrashClause) {
  const FaultPlan plan = FaultPlan::parse("node_crash:1@reduce#2");
  ASSERT_EQ(plan.node_crashes.size(), 1u);
  EXPECT_EQ(plan.node_crashes[0].node, 1);
  EXPECT_EQ(plan.node_crashes[0].trigger.phase, "reduce");
  EXPECT_EQ(plan.node_crashes[0].attempt, 2);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("node_crash:-1@map"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("node_crash:1"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("bogus:1@map"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("rank_crash"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("rank_crash:1"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("rank_crash:-1@map"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("rank_crash:1@map#0"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("rank_crash:1@-2"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("pfs_error:1.5"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("pfs_error:x"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("pfs_slow:0.5"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("seed:-3"), mutil::ConfigError);
  EXPECT_THROW(FaultPlan::parse("mem_spike:8K"), mutil::ConfigError);
}

TEST(Injector, CrashFiresOnMatchingRankPhaseAndAttempt) {
  const FaultPlan plan = FaultPlan::parse("rank_crash:1@reduce");
  Injector other_rank(plan, 0);
  other_rank.at_phase("reduce");  // wrong rank: no-op

  Injector wrong_phase(plan, 1);
  wrong_phase.at_phase("map");  // wrong phase: no-op

  Injector wrong_attempt(plan, 1, 2);
  wrong_attempt.at_phase("reduce");  // clause is for attempt 1: no-op

  Injector victim(plan, 1);
  try {
    victim.at_phase("reduce");
    FAIL() << "expected RankFailedError";
  } catch (const mutil::RankFailedError& e) {
    EXPECT_EQ(e.rank(), 1);
  }
}

TEST(Injector, NodeCrashKillsEveryRankOfTheNodeGroup) {
  const FaultPlan plan = FaultPlan::parse("node_crash:1@reduce");
  // With two ranks per node, node 1 hosts world ranks 2 and 3.
  for (const int rank : {2, 3}) {
    Injector victim(plan, rank);
    victim.set_topology(2);
    try {
      victim.at_phase("reduce");
      FAIL() << "expected RankFailedError on rank " << rank;
    } catch (const mutil::RankFailedError& e) {
      EXPECT_EQ(e.rank(), rank);
    }
  }
  Injector survivor(plan, 1);  // node 0 under the same topology
  survivor.set_topology(2);
  survivor.at_phase("reduce");  // no-op

  // Default topology is one rank per node: rank 1 IS node 1.
  Injector single(plan, 1);
  try {
    single.at_phase("reduce");
    FAIL() << "expected RankFailedError";
  } catch (const mutil::RankFailedError& e) {
    EXPECT_EQ(e.rank(), 1);
  }

  Injector bad(plan, 0);
  EXPECT_THROW(bad.set_topology(0), mutil::UsageError);
}

TEST(Injector, TimeTriggerFiresOncePastDeadline) {
  const FaultPlan plan = FaultPlan::parse("rank_crash:0@2.0");
  simtime::Clock clock;
  memtrack::Tracker tracker;
  Injector injector(plan, 0);
  injector.bind(&clock, &tracker);

  EXPECT_DOUBLE_EQ(injector.on_pfs(64), 1.0);  // before the deadline
  clock.advance(3.0);
  try {
    injector.on_pfs(64);
    FAIL() << "expected RankFailedError";
  } catch (const mutil::RankFailedError& e) {
    EXPECT_EQ(e.rank(), 0);
    EXPECT_DOUBLE_EQ(e.sim_time(), 3.0);
  }
}

TEST(Injector, MemSpikeRaisesTrackerPeakWithoutResidualCharge) {
  const FaultPlan plan = FaultPlan::parse("mem_spike:4K@convert");
  simtime::Clock clock;
  memtrack::Tracker tracker;
  Injector injector(plan, 0);
  injector.bind(&clock, &tracker);
  injector.at_phase("convert");
  EXPECT_EQ(tracker.peak(), 4u << 10);
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_EQ(injector.stats().mem_spikes, 1u);
}

TEST(Injector, PfsErrorsAreDeterministicPerRankAndAttempt) {
  const FaultPlan plan = FaultPlan::parse("pfs_error:0.2,seed:7");
  const auto error_pattern = [&](int rank, int attempt) {
    Injector injector(plan, rank, attempt);
    std::vector<bool> failed;
    for (int op = 0; op < 200; ++op) {
      try {
        injector.on_pfs(128);
        failed.push_back(false);
      } catch (const mutil::TransientIoError&) {
        failed.push_back(true);
      }
    }
    return failed;
  };
  const auto run1 = error_pattern(0, 1);
  EXPECT_EQ(run1, error_pattern(0, 1)) << "same stream must replay";
  EXPECT_NE(run1, error_pattern(1, 1)) << "ranks draw independent streams";
  EXPECT_NE(run1, error_pattern(0, 2)) << "attempts draw fresh streams";
  EXPECT_GT(std::count(run1.begin(), run1.end(), true), 0);
}

TEST(Injector, PfsSlowdownReturnedForSurvivingOps) {
  const FaultPlan plan = FaultPlan::parse("pfs_slow:4");
  Injector injector(plan, 0);
  EXPECT_DOUBLE_EQ(injector.on_pfs(1024), 4.0);
}

TEST(InjectHooks, NoOpWhenUnbound) {
  EXPECT_EQ(inject::current(), nullptr);
  inject::phase_point("map");  // must not crash
  EXPECT_DOUBLE_EQ(inject::pfs_point(4096), 1.0);
}

TEST(InjectHooks, ScopedBindRestoresPrevious) {
  const FaultPlan plan = FaultPlan::parse("pfs_slow:2");
  Injector injector(plan, 0);
  {
    inject::ScopedInject scope(&injector);
    EXPECT_EQ(inject::current(), &injector);
    EXPECT_DOUBLE_EQ(inject::pfs_point(1), 2.0);
  }
  EXPECT_EQ(inject::current(), nullptr);
}

// The acceptance bar for the whole layer: with injection disabled (an
// injector bound with an empty plan, or none at all), simulated results
// are bit-identical to an uninstrumented run.
TEST(InjectEquivalence, EmptyPlanIsBitIdentical) {
  constexpr int kRanks = 3;
  const FaultPlan empty_plan;
  ASSERT_TRUE(empty_plan.empty());

  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;

  const auto workload = [&](bool bind_injector) {
    pfs::FileSystem fs(machine, kRanks);
    return simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
      std::optional<Injector> injector;
      std::optional<inject::ScopedInject> scope;
      if (bind_injector) {
        injector.emplace(empty_plan, ctx.rank());
        injector->bind(&ctx.clock(), &ctx.tracker);
        scope.emplace(&*injector);
      }
      mimir::JobConfig cfg;
      cfg.page_size = 512;
      cfg.comm_buffer = 512;
      cfg.ooc_live_bytes = 2048;  // exercise the PFS hook path too
      mimir::Job job(ctx, cfg);
      job.map_custom([&](mimir::Emitter& out) {
        for (int i = 0; i < 800; ++i) {
          out.emit("w" + std::to_string((i * 31 + ctx.rank()) % 67),
                   std::uint64_t{1});
        }
      });
      job.partial_reduce([](std::string_view, std::string_view a,
                            std::string_view b, std::string& out) {
        out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
      });
    });
  };

  const auto plain = workload(false);
  const auto with_injector = workload(true);
  // Simulated results must match exactly. (node_peak is deliberately
  // not compared: it aggregates live thread interleavings across the
  // rank threads and varies run to run even without any injector.)
  EXPECT_EQ(plain.sim_time, with_injector.sim_time);
  EXPECT_EQ(plain.io.bytes_written, with_injector.io.bytes_written);
  EXPECT_EQ(plain.io.bytes_read, with_injector.io.bytes_read);
}

}  // namespace
