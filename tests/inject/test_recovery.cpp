// Checkpoint-based recovery under injected faults.
#include "mimir/recovery.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "inject/fault.hpp"
#include "mimir/mimir.hpp"
#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"

namespace {

using inject::FaultPlan;
using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::KVView;
using mimir::RecoveryJob;
using mimir::RecoveryOutcome;
using mimir::RecoveryPolicy;
using simmpi::Context;

void sum_reduce(std::string_view key, mimir::ValueReader& values,
                Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, total);
}

void sum_combine(std::string_view, std::string_view a, std::string_view b,
                 std::string& out) {
  out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
}

/// Thread-safe collection of the whole job output across ranks. Keyed
/// by rank and overwritten per attempt: a rank that finished an attempt
/// another rank failed would otherwise double-count on the retry.
struct OutputSink {
  std::mutex mutex;
  std::map<int, std::map<std::string, std::uint64_t>> by_rank;

  void take(Job& job) {
    std::map<std::string, std::uint64_t> mine;
    job.output().scan([&](const KVView& kv) {
      mine[std::string(kv.key)] += mimir::as_u64(kv.value);
    });
    const std::scoped_lock lock(mutex);
    by_rank[job.context().rank()] = std::move(mine);
  }
  std::map<std::string, std::uint64_t> merged() const {
    std::map<std::string, std::uint64_t> all;
    for (const auto& [rank, kvs] : by_rank) {
      for (const auto& [key, value] : kvs) all[key] += value;
    }
    return all;
  }
};

/// The shared wordcount-ish workload: 3 ranks, 500 emissions each over a
/// 59-key space.
constexpr int kRanks = 3;

RecoveryJob make_job(OutputSink& sink, JobConfig cfg, bool use_pr,
                     bool use_cps) {
  RecoveryJob spec;
  spec.config = cfg;
  spec.map = [use_cps](Job& job) {
    const int rank = job.context().rank();
    const auto produce = [rank](Emitter& out) {
      for (int i = 0; i < 500; ++i) {
        out.emit("w" + std::to_string((i * 13 + rank) % 59),
                 std::uint64_t{1});
      }
    };
    if (use_cps) {
      job.map_custom(produce, sum_combine);
    } else {
      job.map_custom(produce);
    }
  };
  spec.finish = [&sink, use_pr](Job& job) {
    if (use_pr) {
      job.partial_reduce(sum_combine);
    } else {
      job.reduce(sum_reduce);
    }
    sink.take(job);
  };
  return spec;
}

simtime::MachineProfile profile_with_io() {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  return machine;
}

TEST(Recovery, CompletesWithoutFaultsInOneAttempt) {
  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, kRanks);
  OutputSink sink;
  const RecoveryOutcome out = mimir::run_with_recovery(
      kRanks, machine, fs, make_job(sink, {}, false, false));
  EXPECT_EQ(out.attempts, 1);
  EXPECT_FALSE(out.resumed);
  EXPECT_FALSE(out.degraded);
  EXPECT_DOUBLE_EQ(out.total_backoff, 0.0);
  ASSERT_EQ(out.history.size(), 1u);
  EXPECT_TRUE(out.history[0].ok);
  EXPECT_EQ(sink.merged().size(), 59u);
  // The throwaway checkpoint is cleaned up by default.
  EXPECT_TRUE(fs.list("ckpt/").empty());
}

TEST(Recovery, RankCrashDuringReduceResumesFromCheckpoint) {
  const auto machine = profile_with_io();
  const FaultPlan plan = FaultPlan::parse("rank_crash:1@reduce");

  // Reference: same job, no faults.
  OutputSink expected;
  {
    pfs::FileSystem fs(machine, kRanks);
    (void)mimir::run_with_recovery(kRanks, machine, fs,
                                   make_job(expected, {}, false, false));
  }

  pfs::FileSystem fs(machine, kRanks);
  OutputSink sink;
  const RecoveryOutcome out = mimir::run_with_recovery(
      kRanks, machine, fs, make_job(sink, {}, false, false), {}, &plan);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.resumed) << "map completed, so the retry must resume";
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_FALSE(out.history[0].ok);
  EXPECT_EQ(out.history[0].failed_rank, 1);
  EXPECT_DOUBLE_EQ(out.history[0].backoff, 0.5);
  EXPECT_TRUE(out.history[1].ok);
  EXPECT_DOUBLE_EQ(out.total_backoff, 0.5);
  EXPECT_GE(out.stats.sim_time, 0.5) << "backoff rides the simulated clock";
  EXPECT_EQ(sink.merged(), expected.merged());
}

TEST(Recovery, NodeCrashLosesWholeNodeAndResumesFromCheckpoint) {
  // Two simulated nodes of two ranks each; losing node 0 kills ranks 0
  // and 1 at once. The map checkpoint is striped across all four ranks,
  // so the resume proves checkpoint placement survives losing every
  // shard a whole node wrote.
  constexpr int kNodes = 2, kRpn = 2, kWorld = kNodes * kRpn;
  auto machine = profile_with_io();
  machine.ranks_per_node = kRpn;
  const FaultPlan plan = FaultPlan::parse("node_crash:0@reduce");

  OutputSink expected;
  {
    pfs::FileSystem fs(machine, kWorld);
    (void)mimir::run_with_recovery(kWorld, machine, fs,
                                   make_job(expected, {}, false, false));
  }

  pfs::FileSystem fs(machine, kWorld);
  OutputSink sink;
  const RecoveryOutcome out = mimir::run_with_recovery(
      kWorld, machine, fs, make_job(sink, {}, false, false), {}, &plan);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.resumed);
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_FALSE(out.history[0].ok);
  const int failed = out.history[0].failed_rank;
  EXPECT_TRUE(failed == 0 || failed == 1)
      << "node 0 hosts ranks 0 and 1, got " << failed;
  EXPECT_TRUE(out.history[1].ok);
  EXPECT_EQ(sink.merged(), expected.merged());
}

TEST(Recovery, FixedPlanYieldsIdenticalRunsTwice) {
  const auto machine = profile_with_io();
  const FaultPlan plan =
      FaultPlan::parse("rank_crash:2@convert,pfs_slow:2,seed:11");

  const auto once = [&] {
    pfs::FileSystem fs(machine, kRanks);
    OutputSink sink;
    const RecoveryOutcome out = mimir::run_with_recovery(
        kRanks, machine, fs, make_job(sink, {}, false, false), {}, &plan);
    return std::make_tuple(out.attempts, out.total_backoff,
                           out.stats.sim_time, sink.merged());
  };
  const auto run1 = once();
  const auto run2 = once();
  EXPECT_EQ(std::get<0>(run1), std::get<0>(run2));
  EXPECT_EQ(std::get<1>(run1), std::get<1>(run2));
  EXPECT_EQ(std::get<2>(run1), std::get<2>(run2));
  EXPECT_EQ(std::get<3>(run1), std::get<3>(run2));
}

TEST(Recovery, RetriesExhaustedRethrowsAndReportsDiagnostics) {
  const auto machine = profile_with_io();
  const FaultPlan plan =
      FaultPlan::parse("rank_crash:0@map#1,rank_crash:0@map#2");
  RecoveryPolicy policy;
  policy.max_attempts = 2;

  check::Report report;
  check::JobChecker checker(report);
  pfs::FileSystem fs(machine, kRanks);
  OutputSink sink;
  EXPECT_THROW(mimir::run_with_recovery(kRanks, machine, fs,
                                        make_job(sink, {}, false, false),
                                        policy, &plan, nullptr, &checker),
               mutil::RankFailedError);
  EXPECT_EQ(report.count("attempt-failed"), 1u);
  EXPECT_EQ(report.count("retries-exhausted"), 1u);
  EXPECT_EQ(report.first("retries-exhausted").ranks, std::vector<int>{0});
}

TEST(Recovery, UsageErrorsAreNeverRetried) {
  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, 1);
  RecoveryJob spec;
  spec.map = [](Job& job) {
    job.map_custom([](Emitter&) {});
    job.map_custom([](Emitter&) {});  // second map: caller bug
  };
  EXPECT_THROW(mimir::run_with_recovery(1, machine, fs, spec),
               mutil::UsageError);
}

TEST(Recovery, TransientPfsErrorsRetryDeterministically) {
  const auto machine = profile_with_io();
  // The spill config below issues a few hundred PFS ops per attempt
  // across the three ranks, so the per-op rate must stay small for an
  // attempt to survive, yet large enough that some attempt dies and the
  // retry path actually runs. The seed makes the whole schedule
  // reproducible.
  const FaultPlan plan = FaultPlan::parse("pfs_error:0.01,seed:3");
  RecoveryPolicy policy;
  policy.max_attempts = 12;

  JobConfig cfg;
  cfg.page_size = 512;
  cfg.comm_buffer = 512;
  cfg.ooc_live_bytes = 2048;  // spill -> plenty of PFS ops to fault

  const auto once = [&] {
    pfs::FileSystem fs(machine, kRanks);
    OutputSink sink;
    const RecoveryOutcome out = mimir::run_with_recovery(
        kRanks, machine, fs, make_job(sink, cfg, true, false), policy,
        &plan);
    return std::make_pair(out.attempts, sink.merged());
  };
  const auto run1 = once();
  const auto run2 = once();
  EXPECT_GT(run1.first, 1) << "plan must actually kill an attempt";
  EXPECT_EQ(run1.first, run2.first);
  EXPECT_EQ(run1.second, run2.second);
  EXPECT_EQ(run1.second.size(), 59u);
}

TEST(Recovery, OomDegradesToOutOfCoreAndCompletes) {
  // Node too small for the in-memory intermediate (cf. the ooc tests:
  // ~88K/rank in memory, ~42K/rank out of core plus the spill budget):
  // the first attempt OOMs, recovery re-runs with the spill budget
  // halved until the job fits out of core. One rank per node keeps each
  // budget single-threaded, so whether an attempt OOMs depends only on
  // its spill budget — never on how the scheduler interleaves two ranks'
  // allocations against a shared node budget.
  constexpr int kOomRanks = 2;
  auto machine = profile_with_io();
  machine.ranks_per_node = 1;
  machine.node_memory = 64 << 10;
  pfs::FileSystem fs(machine, kOomRanks);

  JobConfig cfg;
  cfg.page_size = 2 << 10;
  cfg.comm_buffer = 2 << 10;

  RecoveryJob spec;
  spec.config = cfg;
  spec.map = [](Job& job) {
    const int rank = job.context().rank();
    job.map_custom([rank](Emitter& out) {
      for (int i = 0; i < 4000; ++i) {
        out.emit("key" + std::to_string((i * 2 + rank) % 800),
                 std::uint64_t{1});
      }
    });
  };
  OutputSink sink;
  spec.finish = [&sink](Job& job) {
    job.partial_reduce(sum_combine);
    sink.take(job);
  };

  RecoveryPolicy policy;
  policy.max_attempts = 8;
  const RecoveryOutcome out =
      mimir::run_with_recovery(kOomRanks, machine, fs, spec, policy);
  EXPECT_TRUE(out.degraded);
  EXPECT_GT(out.attempts, 1);
  EXPECT_GT(out.degraded_live_bytes, 0u);
  EXPECT_LT(out.degraded_live_bytes, 48u << 10);
  EXPECT_EQ(sink.merged().size(), 800u);
  for (const auto& [key, count] : sink.merged()) EXPECT_EQ(count, 10u);
}

TEST(Recovery, MemSpikeOverNodeBudgetRecoversOnRetry) {
  constexpr int kSpikeRanks = 2;
  auto machine = profile_with_io();
  machine.ranks_per_node = kSpikeRanks;
  machine.node_memory = 1 << 20;
  pfs::FileSystem fs(machine, kSpikeRanks);
  // Far over the node budget; fires on attempt 1 only.
  const FaultPlan plan = FaultPlan::parse("mem_spike:2M@reduce");

  OutputSink sink;
  const RecoveryOutcome out = mimir::run_with_recovery(
      kSpikeRanks, machine, fs, make_job(sink, {}, false, false), {},
      &plan);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_FALSE(out.history[0].ok);
  EXPECT_TRUE(out.history[1].ok);
  EXPECT_EQ(sink.merged().size(), 59u);
}

TEST(Recovery, OverlappedShuffleCrashBetweenInitiateAndWait) {
  // The overlapped shuffle opens a window where a round is in flight:
  // after aggregate.initiate and before aggregate.wait. A rank dying in
  // that window leaves peers blocked in a non-blocking wait that can
  // never complete; the abort channel must wake them so the attempt
  // unwinds cleanly, and the retry must reproduce the undisturbed
  // output exactly.
  const auto machine = profile_with_io();

  JobConfig cfg;
  cfg.page_size = 1 << 10;
  cfg.comm_buffer = 1 << 10;  // many rounds -> the window opens often
  cfg.overlap = true;

  OutputSink expected;
  {
    pfs::FileSystem fs(machine, kRanks);
    (void)mimir::run_with_recovery(kRanks, machine, fs,
                                   make_job(expected, cfg, false, false));
  }
  ASSERT_EQ(expected.merged().size(), 59u);

  for (const char* phase : {"aggregate.initiate", "aggregate.wait"}) {
    SCOPED_TRACE(phase);
    const FaultPlan plan =
        FaultPlan::parse(std::string("rank_crash:1@") + phase);
    pfs::FileSystem fs(machine, kRanks);
    OutputSink sink;
    const RecoveryOutcome out = mimir::run_with_recovery(
        kRanks, machine, fs, make_job(sink, cfg, false, false), {},
        &plan);
    EXPECT_EQ(out.attempts, 2);
    ASSERT_EQ(out.history.size(), 2u);
    EXPECT_FALSE(out.history[0].ok);
    EXPECT_EQ(out.history[0].failed_rank, 1);
    EXPECT_TRUE(out.history[1].ok);
    EXPECT_EQ(sink.merged(), expected.merged());
  }
}

// The property test: kill rank 1 at every phase boundary in turn; the
// recovered output must be identical to the undisturbed run — across
// the baseline, partial-reduce, KV-compression, and KV-hint configs.
struct PhaseKillCase {
  const char* name;
  bool use_pr;
  bool use_cps;
  bool use_hint;
};

class PhaseKill : public ::testing::TestWithParam<PhaseKillCase> {};

TEST_P(PhaseKill, ResumeIsBitIdenticalAtEveryBoundary) {
  const PhaseKillCase& param = GetParam();
  const auto machine = profile_with_io();

  JobConfig cfg;
  cfg.page_size = 1 << 10;
  cfg.comm_buffer = 1 << 10;
  if (param.use_cps) cfg.kv_compression = true;
  if (param.use_hint) cfg.hint = mimir::KVHint::string_key_u64_value();

  // Undisturbed reference.
  OutputSink expected;
  {
    pfs::FileSystem fs(machine, kRanks);
    (void)mimir::run_with_recovery(
        kRanks, machine, fs,
        make_job(expected, cfg, param.use_pr, param.use_cps));
  }
  ASSERT_EQ(expected.merged().size(), 59u);

  std::vector<std::string> phases = {"map", "aggregate", "checkpoint_save"};
  if (param.use_pr) {
    phases.push_back("partial_reduce");
  } else {
    phases.push_back("convert");
    phases.push_back("reduce");
  }

  for (const std::string& phase : phases) {
    SCOPED_TRACE("kill at " + phase);
    const FaultPlan plan = FaultPlan::parse("rank_crash:1@" + phase);
    pfs::FileSystem fs(machine, kRanks);
    OutputSink sink;
    const RecoveryOutcome out = mimir::run_with_recovery(
        kRanks, machine, fs,
        make_job(sink, cfg, param.use_pr, param.use_cps), {}, &plan);
    EXPECT_EQ(out.attempts, 2);
    EXPECT_EQ(sink.merged(), expected.merged());
    // Phases past the checkpoint must resume rather than re-map.
    if (phase == "convert" || phase == "reduce" ||
        phase == "partial_reduce") {
      EXPECT_TRUE(out.resumed);
    }
  }

  // And a second-generation failure: die during the checkpoint *load*
  // of the resumed attempt, then recover again.
  if (!param.use_pr) {
    const FaultPlan plan = FaultPlan::parse(
        "rank_crash:1@reduce,rank_crash:1@checkpoint_load#2");
    pfs::FileSystem fs(machine, kRanks);
    OutputSink sink;
    const RecoveryOutcome out = mimir::run_with_recovery(
        kRanks, machine, fs,
        make_job(sink, cfg, param.use_pr, param.use_cps), {}, &plan);
    EXPECT_EQ(out.attempts, 3);
    EXPECT_TRUE(out.resumed);
    EXPECT_EQ(sink.merged(), expected.merged());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PhaseKill,
    ::testing::Values(PhaseKillCase{"baseline", false, false, false},
                      PhaseKillCase{"pr", true, false, false},
                      PhaseKillCase{"cps", false, true, false},
                      PhaseKillCase{"hint", false, false, true}),
    [](const auto& param_info) {
      return std::string(param_info.param.name);
    });

TEST(RecoveryPolicy, ParsesConfigAndRejectsBadValues) {
  mutil::Config cfg;
  cfg.set("mimir.recovery.max_attempts", "3");
  cfg.set("mimir.recovery.backoff_base", "0.25");
  cfg.set("mimir.recovery.backoff_factor", "4");
  cfg.set("mimir.recovery.degrade_on_oom", "false");
  cfg.set("mimir.recovery.checkpoint", "ck");
  cfg.set("mimir.recovery.keep_checkpoint", "true");
  const RecoveryPolicy policy = RecoveryPolicy::from(cfg);
  EXPECT_EQ(policy.max_attempts, 3);
  EXPECT_DOUBLE_EQ(policy.backoff_base, 0.25);
  EXPECT_DOUBLE_EQ(policy.backoff_factor, 4.0);
  EXPECT_FALSE(policy.degrade_on_oom);
  EXPECT_EQ(policy.checkpoint, "ck");
  EXPECT_TRUE(policy.keep_checkpoint);

  mutil::Config bad;
  bad.set("mimir.recovery.max_attempts", "0");
  EXPECT_THROW(RecoveryPolicy::from(bad), mutil::ConfigError);
}

}  // namespace
