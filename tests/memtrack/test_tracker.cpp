#include "memtrack/tracker.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mutil/error.hpp"

namespace {

TEST(NodeBudget, TracksCurrentAndPeak) {
  memtrack::NodeBudget node;
  node.charge(100);
  node.charge(50);
  EXPECT_EQ(node.current(), 150u);
  EXPECT_EQ(node.peak(), 150u);
  node.release(120);
  EXPECT_EQ(node.current(), 30u);
  EXPECT_EQ(node.peak(), 150u);
  node.charge(10);
  EXPECT_EQ(node.peak(), 150u);  // below the previous high-water mark
}

TEST(NodeBudget, EnforcesLimit) {
  memtrack::NodeBudget node(1000);
  node.charge(900);
  EXPECT_THROW(node.charge(200), mutil::OutOfMemoryError);
  // Failed charge must be rolled back.
  EXPECT_EQ(node.current(), 900u);
  node.charge(100);  // exactly at the limit is fine
  EXPECT_EQ(node.current(), 1000u);
}

TEST(NodeBudget, OomCarriesDetails) {
  memtrack::NodeBudget node(10);
  try {
    node.charge(64);
    FAIL() << "expected OutOfMemoryError";
  } catch (const mutil::OutOfMemoryError& e) {
    EXPECT_EQ(e.requested(), 64u);
    EXPECT_EQ(e.limit(), 10u);
  }
}

TEST(NodeBudget, ResetPeak) {
  memtrack::NodeBudget node;
  node.charge(500);
  node.release(400);
  node.reset_peak();
  EXPECT_EQ(node.peak(), 100u);
}

TEST(NodeBudget, ConcurrentChargesAreExact) {
  memtrack::NodeBudget node;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        node.charge(3);
        node.release(3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(node.current(), 0u);
  EXPECT_GE(node.peak(), 3u);
  EXPECT_LE(node.peak(), 3u * kThreads);
}

TEST(Tracker, ForwardsToNode) {
  memtrack::NodeBudget node(1024);
  memtrack::Tracker a(&node), b(&node);
  a.allocate(600);
  EXPECT_THROW(b.allocate(600), mutil::OutOfMemoryError);
  EXPECT_EQ(b.current(), 0u) << "failed allocation must not charge rank";
  b.allocate(400);
  EXPECT_EQ(node.current(), 1000u);
  a.release(600);
  b.release(400);
  EXPECT_EQ(node.current(), 0u);
  EXPECT_EQ(a.peak(), 600u);
  EXPECT_EQ(b.peak(), 400u);
}

TEST(Tracker, StandaloneWorksWithoutNode) {
  memtrack::Tracker t;
  t.allocate(128);
  EXPECT_EQ(t.current(), 128u);
  EXPECT_EQ(t.peak(), 128u);
  t.release(128);
  EXPECT_EQ(t.current(), 0u);
}

TEST(TrackedBuffer, RaiiChargesAndReleases) {
  memtrack::Tracker t;
  {
    memtrack::TrackedBuffer buf(t, 256);
    EXPECT_EQ(t.current(), 256u);
    EXPECT_EQ(buf.size(), 256u);
    EXPECT_NE(buf.data(), nullptr);
  }
  EXPECT_EQ(t.current(), 0u);
  EXPECT_EQ(t.peak(), 256u);
}

TEST(TrackedBuffer, MoveTransfersOwnership) {
  memtrack::Tracker t;
  memtrack::TrackedBuffer a(t, 100);
  memtrack::TrackedBuffer b = std::move(a);
  EXPECT_EQ(t.current(), 100u);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from probe
  b.reset();
  EXPECT_EQ(t.current(), 0u);
}

TEST(TrackedBuffer, MoveAssignReleasesOld) {
  memtrack::Tracker t;
  memtrack::TrackedBuffer a(t, 100);
  memtrack::TrackedBuffer b(t, 50);
  EXPECT_EQ(t.current(), 150u);
  b = std::move(a);
  EXPECT_EQ(t.current(), 100u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(TrackedBuffer, FailedAllocationChargesNothing) {
  memtrack::NodeBudget node(64);
  memtrack::Tracker t(&node);
  EXPECT_THROW(memtrack::TrackedBuffer(t, 128), mutil::OutOfMemoryError);
  EXPECT_EQ(t.current(), 0u);
  EXPECT_EQ(node.current(), 0u);
}

}  // namespace
