#include "memtrack/tracker.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mutil/error.hpp"

namespace {

TEST(NodeBudget, TracksCurrentAndPeak) {
  memtrack::NodeBudget node;
  node.charge(100);
  node.charge(50);
  EXPECT_EQ(node.current(), 150u);
  EXPECT_EQ(node.peak(), 150u);
  node.release(120);
  EXPECT_EQ(node.current(), 30u);
  EXPECT_EQ(node.peak(), 150u);
  node.charge(10);
  EXPECT_EQ(node.peak(), 150u);  // below the previous high-water mark
}

TEST(NodeBudget, EnforcesLimit) {
  memtrack::NodeBudget node(1000);
  node.charge(900);
  EXPECT_THROW(node.charge(200), mutil::OutOfMemoryError);
  // Failed charge must be rolled back.
  EXPECT_EQ(node.current(), 900u);
  node.charge(100);  // exactly at the limit is fine
  EXPECT_EQ(node.current(), 1000u);
}

TEST(NodeBudget, OomCarriesDetails) {
  memtrack::NodeBudget node(10);
  try {
    node.charge(64);
    FAIL() << "expected OutOfMemoryError";
  } catch (const mutil::OutOfMemoryError& e) {
    EXPECT_EQ(e.requested(), 64u);
    EXPECT_EQ(e.limit(), 10u);
  }
}

TEST(NodeBudget, ResetPeak) {
  memtrack::NodeBudget node;
  node.charge(500);
  node.release(400);
  node.reset_peak();
  EXPECT_EQ(node.peak(), 100u);
}

TEST(NodeBudget, ConcurrentChargesAreExact) {
  memtrack::NodeBudget node;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        node.charge(3);
        node.release(3);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(node.current(), 0u);
  EXPECT_GE(node.peak(), 3u);
  EXPECT_LE(node.peak(), 3u * kThreads);
}

TEST(Tracker, ForwardsToNode) {
  memtrack::NodeBudget node(1024);
  memtrack::Tracker a(&node), b(&node);
  a.allocate(600);
  EXPECT_THROW(b.allocate(600), mutil::OutOfMemoryError);
  EXPECT_EQ(b.current(), 0u) << "failed allocation must not charge rank";
  b.allocate(400);
  EXPECT_EQ(node.current(), 1000u);
  a.release(600);
  b.release(400);
  EXPECT_EQ(node.current(), 0u);
  EXPECT_EQ(a.peak(), 600u);
  EXPECT_EQ(b.peak(), 400u);
}

TEST(Tracker, StandaloneWorksWithoutNode) {
  memtrack::Tracker t;
  t.allocate(128);
  EXPECT_EQ(t.current(), 128u);
  EXPECT_EQ(t.peak(), 128u);
  t.release(128);
  EXPECT_EQ(t.current(), 0u);
}

TEST(TrackedBuffer, RaiiChargesAndReleases) {
  memtrack::Tracker t;
  {
    memtrack::TrackedBuffer buf(t, 256);
    EXPECT_EQ(t.current(), 256u);
    EXPECT_EQ(buf.size(), 256u);
    EXPECT_NE(buf.data(), nullptr);
  }
  EXPECT_EQ(t.current(), 0u);
  EXPECT_EQ(t.peak(), 256u);
}

TEST(TrackedBuffer, MoveTransfersOwnership) {
  memtrack::Tracker t;
  memtrack::TrackedBuffer a(t, 100);
  memtrack::TrackedBuffer b = std::move(a);
  EXPECT_EQ(t.current(), 100u);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): moved-from probe
  b.reset();
  EXPECT_EQ(t.current(), 0u);
}

TEST(TrackedBuffer, MoveAssignReleasesOld) {
  memtrack::Tracker t;
  memtrack::TrackedBuffer a(t, 100);
  memtrack::TrackedBuffer b(t, 50);
  EXPECT_EQ(t.current(), 150u);
  b = std::move(a);
  EXPECT_EQ(t.current(), 100u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(TrackedBuffer, FailedAllocationChargesNothing) {
  memtrack::NodeBudget node(64);
  memtrack::Tracker t(&node);
  EXPECT_THROW(memtrack::TrackedBuffer(t, 128), mutil::OutOfMemoryError);
  EXPECT_EQ(t.current(), 0u);
  EXPECT_EQ(node.current(), 0u);
}

std::uint64_t tag_current(const memtrack::Tracker& t, const char* tag) {
  const auto it = t.tags().find(tag);
  return it == t.tags().end() ? 0 : it->second.current;
}

std::uint64_t tag_peak(const memtrack::Tracker& t, const char* tag) {
  const auto it = t.tags().find(tag);
  return it == t.tags().end() ? 0 : it->second.peak;
}

/// The attribution invariant: tag currents always partition current().
void expect_tags_reconcile(const memtrack::Tracker& t) {
  std::uint64_t sum = 0;
  for (const auto& [tag, usage] : t.tags()) {
    sum += usage.current;
    EXPECT_LE(usage.peak, t.peak()) << tag;
  }
  EXPECT_EQ(sum, t.current());
}

TEST(TagScope, AttributesChargesToTheActiveTag) {
  memtrack::Tracker t;
  EXPECT_EQ(memtrack::current_tag(), nullptr);
  {
    const memtrack::TagScope tag("pages");
    EXPECT_STREQ(memtrack::current_tag(), "pages");
    t.allocate(100);
    {
      const memtrack::TagScope inner("shuffle");
      t.allocate(40);
    }
    EXPECT_STREQ(memtrack::current_tag(), "pages");
    t.allocate(10);
  }
  EXPECT_EQ(memtrack::current_tag(), nullptr);
  t.allocate(5);  // untagged -> "other"

  EXPECT_EQ(tag_current(t, "pages"), 110u);
  EXPECT_EQ(tag_current(t, "shuffle"), 40u);
  EXPECT_EQ(tag_current(t, "other"), 5u);
  expect_tags_reconcile(t);

  {
    const memtrack::TagScope tag("pages");
    t.release(110);
  }
  {
    const memtrack::TagScope tag("shuffle");
    t.release(40);
  }
  t.release(5);
  EXPECT_EQ(t.current(), 0u);
  EXPECT_EQ(tag_current(t, "pages"), 0u);
  EXPECT_EQ(tag_peak(t, "pages"), 110u);  // peaks survive the release
  expect_tags_reconcile(t);
}

TEST(TagScope, FallbackModeOnlyAppliesWhenUntagged) {
  memtrack::Tracker t;
  {
    // No enclosing tag: the fallback applies.
    const memtrack::TagScope tag("pages", memtrack::TagScope::Mode::kFallback);
    EXPECT_STREQ(memtrack::current_tag(), "pages");
    t.allocate(10);
  }
  {
    const memtrack::TagScope outer("combine_table");
    // Enclosing tag present: the fallback defers to it.
    const memtrack::TagScope tag("pages", memtrack::TagScope::Mode::kFallback);
    EXPECT_STREQ(memtrack::current_tag(), "combine_table");
    t.allocate(20);
  }
  EXPECT_EQ(tag_current(t, "pages"), 10u);
  EXPECT_EQ(tag_current(t, "combine_table"), 20u);
  expect_tags_reconcile(t);
}

TEST(TagScope, TrackedBufferReleasesUnderItsAllocationTag) {
  memtrack::Tracker t;
  memtrack::TrackedBuffer buf;
  {
    const memtrack::TagScope tag("shuffle");
    buf = memtrack::TrackedBuffer(t, 64);
  }
  EXPECT_EQ(tag_current(t, "shuffle"), 64u);
  {
    // Destroyed under a different active tag: the release still lands
    // on the allocation tag, never going negative elsewhere.
    const memtrack::TagScope tag("pages");
    buf.reset();
  }
  EXPECT_EQ(tag_current(t, "shuffle"), 0u);
  EXPECT_EQ(tag_current(t, "pages"), 0u);
  EXPECT_EQ(t.current(), 0u);
  expect_tags_reconcile(t);
}

TEST(TagScope, TagsNeverChangeWhatIsCharged) {
  // Identical allocation sequences with and without tags must see
  // identical tracker and node accounting (tags are attribution only).
  memtrack::NodeBudget plain_node(1024), tagged_node(1024);
  memtrack::Tracker plain(&plain_node), tagged(&tagged_node);

  plain.allocate(600);
  plain.release(200);
  EXPECT_THROW(plain.allocate(900), mutil::OutOfMemoryError);

  {
    const memtrack::TagScope tag("pages");
    tagged.allocate(600);
    tagged.release(200);
    EXPECT_THROW(tagged.allocate(900), mutil::OutOfMemoryError);
  }

  EXPECT_EQ(plain.current(), tagged.current());
  EXPECT_EQ(plain.peak(), tagged.peak());
  EXPECT_EQ(plain_node.current(), tagged_node.current());
  EXPECT_EQ(plain_node.peak(), tagged_node.peak());
  // The failed charge was rolled back, so it must not be attributed.
  EXPECT_EQ(tag_current(tagged, "pages"), 400u);
  EXPECT_EQ(tag_peak(tagged, "pages"), 600u);
  expect_tags_reconcile(tagged);
}

TEST(TagScope, ResetPeakResetsEveryTagHighWater) {
  memtrack::Tracker t;
  {
    const memtrack::TagScope tag("pages");
    t.allocate(500);
    t.release(400);
  }
  t.reset_peak();
  EXPECT_EQ(t.peak(), 100u);
  EXPECT_EQ(tag_peak(t, "pages"), 100u);
  {
    const memtrack::TagScope tag("pages");
    t.allocate(50);
  }
  EXPECT_EQ(tag_peak(t, "pages"), 150u);
  expect_tags_reconcile(t);
}

}  // namespace
