#include "mimir/job.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "simmpi/runtime.hpp"

namespace {

using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::KVHint;
using mimir::KVView;
using mimir::ValueReader;
using simmpi::Context;

constexpr std::uint64_t kOne = 1;

void wc_map(std::string_view chunk, Emitter& out) {
  std::size_t start = 0;
  while (start < chunk.size()) {
    const std::size_t end = chunk.find_first_of(" \n\t", start);
    const std::size_t stop = end == std::string_view::npos ? chunk.size()
                                                           : end;
    if (stop > start) {
      out.emit(chunk.substr(start, stop - start), mimir::as_view(kOne));
    }
    start = stop + 1;
  }
}

void wc_reduce(std::string_view key, ValueReader& values, Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, mimir::as_view(total));
}

void wc_combine(std::string_view, std::string_view a, std::string_view b,
                std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

/// Gather all output KVs at rank 0 as a word->count map.
std::map<std::string, std::uint64_t> gather_counts(Context& ctx,
                                                   mimir::KVContainer& out) {
  std::string flat;
  out.scan([&](const KVView& kv) {
    flat += std::string(kv.key) + ' ' + std::to_string(mimir::as_u64(kv.value)) + '\n';
  });
  const auto gathered = ctx.comm.gatherv(
      0, std::span<const std::byte>(
             reinterpret_cast<const std::byte*>(flat.data()), flat.size()));
  std::map<std::string, std::uint64_t> counts;
  if (ctx.rank() == 0) {
    std::istringstream in(std::string(
        reinterpret_cast<const char*>(gathered.data.data()),
        gathered.data.size()));
    std::string word;
    std::uint64_t n = 0;
    while (in >> word >> n) counts[word] += n;
  }
  return counts;
}

void write_inputs(pfs::FileSystem& fs, const std::vector<std::string>& lines) {
  simtime::Clock clock;
  std::string text;
  for (const auto& line : lines) text += line + "\n";
  fs.write_file("input/part0", text, clock);
}

class JobWordCount : public ::testing::TestWithParam<int> {};

TEST_P(JobWordCount, CountsMatchAcrossRankCounts) {
  const int ranks = GetParam();
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, ranks);
  write_inputs(fs, {"the cat sat on the mat", "the dog sat", "cat and dog"});
  const std::vector<std::string> files{"input/part0"};

  simmpi::run(ranks, machine, fs, [&](Context& ctx) {
    JobConfig cfg;
    cfg.page_size = 1024;
    cfg.comm_buffer = 1024;
    Job job(ctx, cfg);
    job.map_text_files(files, wc_map);
    job.reduce(wc_reduce);
    const auto counts = gather_counts(ctx, job.output());
    if (ctx.rank() == 0) {
      EXPECT_EQ(counts.at("the"), 3u);
      EXPECT_EQ(counts.at("cat"), 2u);
      EXPECT_EQ(counts.at("sat"), 2u);
      EXPECT_EQ(counts.at("dog"), 2u);
      EXPECT_EQ(counts.at("mat"), 1u);
      EXPECT_EQ(counts.at("and"), 1u);
      EXPECT_EQ(counts.at("on"), 1u);
      EXPECT_EQ(counts.size(), 7u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, JobWordCount, ::testing::Values(1, 2, 5, 8));

struct OptCase {
  bool hint;
  bool pr;
  bool cps;
  const char* name;
};

class JobOptimizations : public ::testing::TestWithParam<OptCase> {};

TEST_P(JobOptimizations, AllPathsProduceIdenticalCounts) {
  const OptCase opt = GetParam();
  constexpr int kRanks = 4;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);
  // Repetitive text so combining has work to do.
  std::vector<std::string> lines;
  for (int i = 0; i < 50; ++i) {
    lines.push_back("alpha beta gamma alpha beta alpha w" +
                    std::to_string(i % 7));
  }
  write_inputs(fs, lines);
  const std::vector<std::string> files{"input/part0"};

  simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
    JobConfig cfg;
    cfg.page_size = 2048;
    cfg.comm_buffer = 2048;
    if (opt.hint) cfg.hint = KVHint::string_key_u64_value();
    cfg.kv_compression = opt.cps;
    Job job(ctx, cfg);
    job.map_text_files(files, wc_map, opt.cps ? wc_combine : mimir::CombineFn{});
    if (opt.pr) {
      job.partial_reduce(wc_combine);
    } else {
      job.reduce(wc_reduce);
    }
    const auto counts = gather_counts(ctx, job.output());
    if (ctx.rank() == 0) {
      EXPECT_EQ(counts.at("alpha"), 150u);
      EXPECT_EQ(counts.at("beta"), 100u);
      EXPECT_EQ(counts.at("gamma"), 50u);
      EXPECT_EQ(counts.at("w0"), 8u);
      EXPECT_EQ(counts.at("w6"), 7u);
    }
    if (opt.cps) {
      // One input file -> one mapping rank; check totals globally.
      const auto combined = ctx.comm.allreduce_u64(
          job.metrics().combined_kvs, simmpi::Op::kSum);
      EXPECT_GT(combined, 0u);
      // Compression must shrink shuffle traffic versus the 350 raw KVs.
      const auto shuffled = ctx.comm.allreduce_u64(
          job.metrics().map_emitted_kvs, simmpi::Op::kSum);
      EXPECT_LT(shuffled, 350u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, JobOptimizations,
    ::testing::Values(OptCase{false, false, false, "baseline"},
                      OptCase{true, false, false, "hint"},
                      OptCase{true, true, false, "hint_pr"},
                      OptCase{true, true, true, "hint_pr_cps"},
                      OptCase{false, false, true, "cps_only"},
                      OptCase{false, true, false, "pr_only"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(Job, MapKvsChainsJobs) {
  simmpi::run_test(3, [](Context& ctx) {
    JobConfig cfg;
    cfg.page_size = 1024;
    cfg.comm_buffer = 1024;
    // Stage 1: produce (i % 5, 1) from a custom source.
    Job first(ctx, cfg);
    first.map_custom([&](Emitter& out) {
      for (int i = ctx.rank(); i < 60; i += ctx.size()) {
        out.emit("g" + std::to_string(i % 5), mimir::as_view(kOne));
      }
    });
    // Stage 2: feed stage 1's aggregated KVs into a second job that
    // re-keys everything onto one key.
    Job second(ctx, cfg);
    second.map_kvs(first.take_intermediate(),
                   [](std::string_view, std::string_view value,
                      Emitter& out) { out.emit("total", value); });
    second.reduce(wc_reduce);
    std::uint64_t local = 0;
    second.output().scan(
        [&](const KVView& kv) { local += mimir::as_u64(kv.value); });
    const auto total = ctx.comm.allreduce_u64(local, simmpi::Op::kSum);
    EXPECT_EQ(total, 60u);
  });
}

TEST(Job, MapOnlyJobExposesIntermediate) {
  simmpi::run_test(2, [](Context& ctx) {
    Job job(ctx, {});
    job.map_custom([&](Emitter& out) {
      if (ctx.rank() == 0) {
        for (int i = 0; i < 10; ++i) {
          out.emit("v" + std::to_string(i), "payload");
        }
      }
    });
    const auto total = ctx.comm.allreduce_u64(job.intermediate().num_kvs(),
                                              simmpi::Op::kSum);
    EXPECT_EQ(total, 10u);
  });
}

TEST(Job, PhaseErrorsAreRejected) {
  simmpi::run_test(1, [](Context& ctx) {
    Job job(ctx, {});
    EXPECT_THROW(job.reduce(wc_reduce), mutil::UsageError);
    job.map_custom([](Emitter&) {});
    EXPECT_THROW(job.map_custom([](Emitter&) {}), mutil::UsageError);
    job.reduce(wc_reduce);
  });
}

TEST(Job, CompressionWithoutCombinerRejected) {
  simmpi::run_test(1, [](Context& ctx) {
    JobConfig cfg;
    cfg.kv_compression = true;
    Job job(ctx, cfg);
    EXPECT_THROW(job.map_custom([](Emitter&) {}), mutil::UsageError);
  });
}

TEST(Job, MetricsPopulated) {
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 2);
  write_inputs(fs, {"a b c a", "b a"});
  const std::vector<std::string> files{"input/part0"};
  simmpi::run(2, machine, fs, [&](Context& ctx) {
    Job job(ctx, {});
    job.map_text_files(files, wc_map);
    const auto& m = job.metrics();
    const auto emitted =
        ctx.comm.allreduce_u64(m.map_emitted_kvs, simmpi::Op::kSum);
    EXPECT_EQ(emitted, 6u);
    job.reduce(wc_reduce);
    const auto uniq =
        ctx.comm.allreduce_u64(job.metrics().unique_keys, simmpi::Op::kSum);
    EXPECT_EQ(uniq, 3u);
    EXPECT_GE(job.metrics().reduce_end_time, job.metrics().map_end_time);
  });
}

class PipelinedCps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinedCps, BoundedBucketKeepsCountsExact) {
  // Extension of paper §III-C2: flushing the compression bucket at a
  // byte bound must not change results, only bound memory.
  const std::uint64_t bound = GetParam();
  constexpr int kRanks = 3;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back("alpha beta w" + std::to_string(i % 13) + " alpha");
  }
  write_inputs(fs, lines);
  const std::vector<std::string> files{"input/part0"};

  simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
    JobConfig cfg;
    cfg.kv_compression = true;
    cfg.cps_max_bucket = bound;
    Job job(ctx, cfg);
    job.map_text_files(files, wc_map, wc_combine);
    job.reduce(wc_reduce);
    const auto counts = gather_counts(ctx, job.output());
    if (ctx.rank() == 0) {
      EXPECT_EQ(counts.at("alpha"), 400u);
      EXPECT_EQ(counts.at("beta"), 200u);
      EXPECT_EQ(counts.at("w0"), 16u);
      EXPECT_EQ(counts.at("w12"), 15u);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Bounds, PipelinedCps,
                         ::testing::Values(0, 64, 512, 4096, 1u << 20));

TEST(Job, PipelinedCpsBoundsBucketMemory) {
  // With a tiny bound the peak must stay well below the unbounded
  // bucket's (which holds every unique key at once).
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 1;
  std::vector<std::string> lines;
  for (int i = 0; i < 3000; ++i) {
    lines.push_back("unique-word-" + std::to_string(i));
  }
  std::uint64_t peaks[2] = {0, 0};
  int idx = 0;
  for (const std::uint64_t bound : {std::uint64_t{0}, std::uint64_t{2048}}) {
    pfs::FileSystem fs(machine, 1);
    write_inputs(fs, lines);
    const std::vector<std::string> files{"input/part0"};
    // Map phase only: the bucket lives there, and the later convert
    // phase's index would dominate both peaks equally.
    const auto stats = simmpi::run(1, machine, fs, [&](Context& ctx) {
      JobConfig cfg;
      cfg.page_size = 4 << 10;
      cfg.comm_buffer = 4 << 10;
      cfg.kv_compression = true;
      cfg.cps_max_bucket = bound;
      Job job(ctx, cfg);
      job.map_text_files(files, wc_map, wc_combine);
    });
    peaks[idx++] = stats.node_peak;
  }
  EXPECT_LT(peaks[1], peaks[0]);
}

TEST(Job, ConfigFromParsesMimirKeys) {
  const auto cfg = mutil::Config::from_args(
      {"mimir.page_size=128K", "mimir.comm_buffer=32K",
       "mimir.kv_compression=true", "mimir.key_hint=str",
       "mimir.value_hint=8"});
  const JobConfig jc = JobConfig::from(cfg);
  EXPECT_EQ(jc.page_size, 128u << 10);
  EXPECT_EQ(jc.comm_buffer, 32u << 10);
  EXPECT_TRUE(jc.kv_compression);
  EXPECT_EQ(jc.hint.key_len, KVHint::kString);
  EXPECT_EQ(jc.hint.value_len, 8);
}

}  // namespace
