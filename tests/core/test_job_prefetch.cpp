// mimir.prefetch end-to-end: the knob parses, results / intermediate
// placement / checkpoint shard bytes are bit-identical prefetch on or
// off (including under the race detector), the write-behind OOC spill
// changes nothing, and an injected crash between prefetch issue and
// wait — or at a write-behind flush — recovers to the exact
// undisturbed output.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apps/wordcount.hpp"
#include "check/checker.hpp"
#include "check/report.hpp"
#include "inject/fault.hpp"
#include "mimir/checkpoint.hpp"
#include "mimir/job.hpp"
#include "mimir/recovery.hpp"
#include "mutil/config.hpp"
#include "simmpi/runtime.hpp"

namespace {

using inject::FaultPlan;
using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::KVView;
using mimir::RecoveryJob;
using mimir::RecoveryOutcome;
using simmpi::Context;

constexpr int kRanks = 3;
constexpr int kFiles = 3;

check::CheckConfig race_config() {
  check::CheckConfig cfg;
  cfg.race = true;
  return cfg;
}

simtime::MachineProfile profile_with_io() {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  return machine;
}

/// Small chunks so every file runs a deep read-ahead pipeline.
JobConfig small_cfg(bool prefetch) {
  JobConfig cfg;
  cfg.page_size = 4 << 10;
  cfg.comm_buffer = 4 << 10;
  cfg.input_chunk = 512;
  cfg.prefetch = prefetch;
  cfg.prefetch_depth = 3;
  return cfg;
}

std::vector<std::string> part_names(const std::string& prefix, int count) {
  std::vector<std::string> files;
  for (int f = 0; f < count; ++f) {
    files.push_back(prefix + "/part" + std::to_string(f));
  }
  return files;
}

/// Generate the shared dataset on rank 0 (names are deterministic).
void generate_input(Context& ctx, const std::string& prefix) {
  if (ctx.rank() == 0) {
    apps::wc::GenOptions gen;
    gen.total_bytes = 24 << 10;
    gen.num_files = kFiles;
    (void)apps::wc::generate_uniform(ctx.fs, prefix, gen);
  }
  ctx.comm.barrier();
}

using PerRank = std::vector<std::vector<std::string>>;

/// WordCount over text files; returns each rank's reduced output in
/// scan order — placement-sensitive, so equality across modes proves
/// intermediate placement, not just global counts.
PerRank run_wc(bool prefetch, check::JobChecker* checker) {
  auto per_rank = std::make_shared<PerRank>(kRanks);
  simmpi::run_test(
      kRanks,
      [&](Context& ctx) {
        generate_input(ctx, "wc");
        Job job(ctx, small_cfg(prefetch));
        job.map_text_files(part_names("wc", kFiles), apps::wc::map_words);
        job.reduce(apps::wc::reduce_counts);
        auto& mine = (*per_rank)[static_cast<std::size_t>(ctx.rank())];
        job.output().scan([&](const KVView& kv) {
          mine.push_back(std::string(kv.key) + "=" +
                         std::to_string(mimir::as_u64(kv.value)));
        });
      },
      nullptr, checker);
  return *per_rank;
}

TEST(JobPrefetch, ConfigKnobReachesTheJob) {
  mutil::Config cfg;
  cfg.set("mimir.prefetch", "1");
  cfg.set("mimir.prefetch_depth", "4");
  JobConfig parsed = JobConfig::from(cfg);
  EXPECT_TRUE(parsed.prefetch);
  EXPECT_EQ(parsed.prefetch_depth, 4);

  cfg.set("mimir.prefetch", "0");
  cfg.set("mimir.prefetch_depth", "0");
  parsed = JobConfig::from(cfg);
  EXPECT_FALSE(parsed.prefetch);
  EXPECT_EQ(parsed.prefetch_depth, 1) << "depth clamps to at least 1";

  EXPECT_FALSE(JobConfig{}.prefetch);
  EXPECT_EQ(JobConfig{}.prefetch_depth, 2);
}

TEST(JobPrefetch, BitIdenticalResultsAndIntermediateAcrossModes) {
  const PerRank blocking = run_wc(false, nullptr);
  const PerRank prefetched = run_wc(true, nullptr);
  EXPECT_EQ(blocking, prefetched);
  std::size_t total = 0;
  for (const auto& rank : blocking) total += rank.size();
  EXPECT_GT(total, 0u);

  // Same equality with the race detector watching both modes: the
  // prefetch buffers freeze/thaw cleanly and change nothing.
  for (const bool prefetch : {false, true}) {
    check::Report report;
    check::JobChecker checker(report, race_config());
    EXPECT_EQ(run_wc(prefetch, &checker), blocking)
        << "prefetch=" << prefetch;
    EXPECT_TRUE(report.empty())
        << "prefetch=" << prefetch << "\n"
        << report.text();
  }
}

TEST(JobPrefetch, CheckpointShardBytesIdenticalAcrossModes) {
  const auto machine = profile_with_io();
  const auto shards_for = [&](bool prefetch) {
    pfs::FileSystem fs(machine, kRanks);
    simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
      generate_input(ctx, "in");
      Job job(ctx, small_cfg(prefetch));
      job.map_text_files(part_names("in", kFiles), apps::wc::map_words);
      mimir::checkpoint_job(job, "pf");
    });
    std::vector<std::vector<std::byte>> shards;
    simtime::Clock clock;
    for (int r = 0; r < kRanks; ++r) {
      shards.push_back(
          fs.read_file("ckpt/pf/shard" + std::to_string(r), clock));
    }
    return shards;
  };
  const auto blocking = shards_for(false);
  const auto behind = shards_for(true);
  EXPECT_EQ(blocking, behind) << "write-behind must not change one byte";
  for (const auto& shard : blocking) EXPECT_FALSE(shard.empty());
}

TEST(JobPrefetch, OocSpillWriteBehindBitIdentical) {
  const auto run_once = [](bool prefetch) {
    auto per_rank = std::make_shared<PerRank>(kRanks);
    simmpi::run_test(kRanks, [&](Context& ctx) {
      JobConfig cfg;
      cfg.page_size = 512;
      cfg.comm_buffer = 512;
      cfg.ooc_live_bytes = 2048;  // force the spill path
      cfg.prefetch = prefetch;    // -> write-behind spill files
      Job job(ctx, cfg);
      job.map_custom([&](Emitter& out) {
        for (int i = 0; i < 2000; ++i) {
          out.emit("k" + std::to_string((i * 7 + ctx.rank()) % 97),
                   std::uint64_t{1});
        }
      });
      job.reduce(apps::wc::reduce_counts);
      auto& mine = (*per_rank)[static_cast<std::size_t>(ctx.rank())];
      job.output().scan([&](const KVView& kv) {
        mine.push_back(std::string(kv.key) + "=" +
                       std::to_string(mimir::as_u64(kv.value)));
      });
    });
    return *per_rank;
  };
  const PerRank blocking = run_once(false);
  EXPECT_EQ(blocking, run_once(true));
  std::size_t total = 0;
  for (const auto& rank : blocking) total += rank.size();
  EXPECT_EQ(total, 97u);
}

// --- crash-window recovery -------------------------------------------------

/// Thread-safe whole-job output collection (cf. tests/inject).
struct OutputSink {
  std::mutex mutex;
  std::map<int, std::map<std::string, std::uint64_t>> by_rank;

  void take(Job& job) {
    std::map<std::string, std::uint64_t> mine;
    job.output().scan([&](const KVView& kv) {
      mine[std::string(kv.key)] += mimir::as_u64(kv.value);
    });
    const std::scoped_lock lock(mutex);
    by_rank[job.context().rank()] = std::move(mine);
  }
  std::map<std::string, std::uint64_t> merged() const {
    std::map<std::string, std::uint64_t> all;
    for (const auto& [rank, kvs] : by_rank) {
      for (const auto& [key, value] : kvs) all[key] += value;
    }
    return all;
  }
};

RecoveryJob prefetch_job(OutputSink& sink,
                         const std::vector<std::string>& files,
                         bool prefetch) {
  RecoveryJob spec;
  spec.config = small_cfg(prefetch);
  spec.map = [files](Job& job) {
    job.map_text_files(files, apps::wc::map_words);
  };
  spec.finish = [&sink](Job& job) {
    job.reduce(apps::wc::reduce_counts);
    sink.take(job);
  };
  return spec;
}

std::vector<std::string> generate_recovery_input(pfs::FileSystem& fs) {
  apps::wc::GenOptions gen;
  gen.total_bytes = 24 << 10;
  gen.num_files = kFiles;  // one file per rank: every rank prefetches
  return apps::wc::generate_uniform(fs, "in", gen);
}

TEST(JobPrefetch, CrashBetweenPrefetchIssueAndWaitRecovers) {
  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, kRanks);
  const auto files = generate_recovery_input(fs);

  // Undisturbed blocking-mode reference: the recovered prefetch run
  // must land on exactly this output.
  OutputSink expected;
  (void)mimir::run_with_recovery(kRanks, machine, fs,
                                 prefetch_job(expected, files, false));
  ASSERT_FALSE(expected.merged().empty());

  // The pfs.prefetch point fires right after a read-ahead is issued —
  // the crash lands in the issue->wait window with a request in flight.
  const FaultPlan plan = FaultPlan::parse("rank_crash:1@pfs.prefetch");
  OutputSink sink;
  const RecoveryOutcome out = mimir::run_with_recovery(
      kRanks, machine, fs, prefetch_job(sink, files, true), {}, &plan);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_FALSE(out.history[0].ok);
  EXPECT_EQ(out.history[0].failed_rank, 1);
  EXPECT_TRUE(out.history[1].ok);
  EXPECT_EQ(sink.merged(), expected.merged());
}

TEST(JobPrefetch, CrashAtWriteBehindFlushRecovers) {
  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, kRanks);
  const auto files = generate_recovery_input(fs);

  OutputSink expected;
  (void)mimir::run_with_recovery(kRanks, machine, fs,
                                 prefetch_job(expected, files, false));

  // With prefetch on, checkpoint shards go through the write-behind
  // queue; pfs.flush fires at the pre-barrier drain. A crash there
  // leaves an uncommitted checkpoint, which the retry must ignore.
  const FaultPlan plan = FaultPlan::parse("rank_crash:1@pfs.flush");
  OutputSink sink;
  const RecoveryOutcome out = mimir::run_with_recovery(
      kRanks, machine, fs, prefetch_job(sink, files, true), {}, &plan);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_EQ(out.history.size(), 2u);
  EXPECT_FALSE(out.history[0].ok);
  EXPECT_EQ(out.history[0].failed_rank, 1);
  EXPECT_TRUE(out.history[1].ok);
  EXPECT_EQ(sink.merged(), expected.merged());
}

}  // namespace
