#include "mimir/typed.hpp"

#include <gtest/gtest.h>

#include <map>

#include "simmpi/runtime.hpp"

namespace {

using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::Typed;
using simmpi::Context;

struct Point3 {
  float x, y, z;
};

TEST(Typed, ViewRoundTripsPods) {
  const std::uint64_t u = 0xdeadbeefcafef00dULL;
  EXPECT_EQ(mimir::from_view<std::uint64_t>(mimir::view_of(u)), u);
  const double d = 3.14159;
  EXPECT_EQ(mimir::from_view<double>(mimir::view_of(d)), d);
  const Point3 p{1.5f, -2.5f, 0.0f};
  const Point3 q = mimir::from_view<Point3>(mimir::view_of(p));
  EXPECT_EQ(q.x, p.x);
  EXPECT_EQ(q.y, p.y);
  EXPECT_EQ(q.z, p.z);
}

TEST(Typed, HintMatchesSizes) {
  constexpr auto hint = Typed<std::uint64_t, Point3>::hint();
  EXPECT_EQ(hint.key_len, 8);
  EXPECT_EQ(hint.value_len, 12);
}

TEST(Typed, EndToEndSumPipeline) {
  using Pair = Typed<std::uint32_t, std::uint64_t>;
  simmpi::run_test(3, [](Context& ctx) {
    JobConfig cfg;
    cfg.hint = Pair::hint();
    Job job(ctx, cfg);
    job.map_custom([&](Emitter& out) {
      for (std::uint32_t i = 0; i < 300; ++i) {
        Pair::emit(out, i % 10, std::uint64_t{1});
      }
    });
    job.reduce([](std::string_view key, mimir::ValueReader& values,
                  Emitter& out) {
      std::uint64_t total = 0;
      for (const std::uint64_t v : Pair::values(values)) total += v;
      Pair::emit(out, Pair::key(key), total);
    });

    std::map<std::uint32_t, std::uint64_t> counts;
    Pair::scan(job.output(), [&](std::uint32_t k, std::uint64_t v) {
      counts[k] = v;
    });
    std::uint64_t local = 0;
    for (const auto& [k, v] : counts) local += v;
    EXPECT_EQ(ctx.comm.allreduce_u64(local, simmpi::Op::kSum),
              300u * 3);
  });
}

TEST(Typed, ValueRangeIsSinglePassAndComplete) {
  memtrack::Tracker tracker;
  mimir::KMVContainer kmvc(tracker, 1024,
                           Typed<std::uint64_t, std::uint32_t>::hint());
  auto slot = kmvc.reserve(mimir::view_of(std::uint64_t{5}), 4, 16);
  for (std::uint32_t v = 10; v < 14; ++v) {
    kmvc.add_value(slot, mimir::view_of(v));
  }
  kmvc.for_each([](std::string_view, mimir::ValueReader& values) {
    std::uint32_t expected = 10;
    for (const std::uint32_t v :
         mimir::TypedValueRange<std::uint32_t>(values)) {
      EXPECT_EQ(v, expected++);
    }
    EXPECT_EQ(expected, 14u);
  });
}

TEST(Typed, StructValuesSurviveShuffle) {
  using Pair = Typed<std::uint64_t, Point3>;
  simmpi::run_test(2, [](Context& ctx) {
    JobConfig cfg;
    cfg.hint = Pair::hint();
    Job job(ctx, cfg);
    job.map_custom([&](Emitter& out) {
      for (int i = 0; i < 50; ++i) {
        Pair::emit(out, static_cast<std::uint64_t>(i),
                   Point3{static_cast<float>(i), 2.0f * i, -1.0f});
      }
    });
    std::uint64_t seen = 0;
    Pair::scan(job.intermediate(), [&](std::uint64_t k, const Point3& p) {
      EXPECT_EQ(p.x, static_cast<float>(k));
      EXPECT_EQ(p.y, 2.0f * k);
      ++seen;
    });
    // Two producing ranks emitted each key once.
    EXPECT_EQ(ctx.comm.allreduce_u64(seen, simmpi::Op::kSum), 100u);
  });
}

}  // namespace
