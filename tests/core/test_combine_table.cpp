#include "mimir/combine_table.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace {

using mimir::CombineTable;
using mimir::KVHint;
using mimir::KVView;

/// WordCount-style combiner: sum two u64 values.
void sum_u64(std::string_view, std::string_view a, std::string_view b,
             std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

/// Concatenating combiner: value size grows on every combine.
void concat(std::string_view, std::string_view a, std::string_view b,
            std::string& out) {
  out.assign(a);
  out.append(",");
  out.append(b);
}

std::map<std::string, std::string> drain(const CombineTable& table) {
  std::map<std::string, std::string> out;
  table.for_each([&](const KVView& kv) {
    out[std::string(kv.key)] = std::string(kv.value);
  });
  return out;
}

TEST(CombineTable, RequiresCombiner) {
  memtrack::Tracker tracker;
  EXPECT_THROW(CombineTable(tracker, 256, {}, nullptr),
               mutil::ConfigError);
}

TEST(CombineTable, DistinctKeysPassThrough) {
  memtrack::Tracker tracker;
  CombineTable table(tracker, 1024, KVHint::string_key_u64_value(),
                     sum_u64);
  table.upsert("a", mimir::as_view(std::uint64_t{1}));
  table.upsert("b", mimir::as_view(std::uint64_t{2}));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.combined_kvs(), 0u);
}

TEST(CombineTable, DuplicatesCombineInPlace) {
  memtrack::Tracker tracker;
  CombineTable table(tracker, 1024, KVHint::string_key_u64_value(),
                     sum_u64);
  for (int i = 0; i < 100; ++i) {
    table.upsert("word", mimir::as_view(std::uint64_t{1}));
  }
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.combined_kvs(), 99u);
  EXPECT_EQ(table.dead_bytes(), 0u) << "fixed-size values combine in place";
  const auto result = drain(table);
  EXPECT_EQ(mimir::as_u64(result.at("word")), 100u);
}

TEST(CombineTable, SizeChangingCombineLeavesGarbage) {
  memtrack::Tracker tracker;
  CombineTable table(tracker, 1024, {}, concat);
  table.upsert("k", "a");
  table.upsert("k", "b");
  table.upsert("k", "c");
  EXPECT_EQ(table.size(), 1u);
  EXPECT_GT(table.dead_bytes(), 0u);
  EXPECT_EQ(drain(table).at("k"), "a,b,c");
}

TEST(CombineTable, GrowsPastInitialCapacity) {
  memtrack::Tracker tracker;
  CombineTable table(tracker, 4096, KVHint::string_key_u64_value(),
                     sum_u64);
  constexpr int kKeys = 5000;  // > initial 1024 slots
  for (int i = 0; i < kKeys; ++i) {
    table.upsert("key" + std::to_string(i),
                 mimir::as_view(std::uint64_t{1}));
  }
  EXPECT_EQ(table.size(), static_cast<std::uint64_t>(kKeys));
  // Every key still reachable and correct after rehashing.
  for (int i = 0; i < kKeys; i += 500) {
    table.upsert("key" + std::to_string(i),
                 mimir::as_view(std::uint64_t{10}));
  }
  const auto result = drain(table);
  EXPECT_EQ(mimir::as_u64(result.at("key0")), 11u);
  EXPECT_EQ(mimir::as_u64(result.at("key1")), 1u);
}

TEST(CombineTable, MemoryChargedAndReleased) {
  memtrack::Tracker tracker;
  {
    CombineTable table(tracker, 1024, KVHint::string_key_u64_value(),
                       sum_u64);
    for (int i = 0; i < 1000; ++i) {
      table.upsert("k" + std::to_string(i),
                   mimir::as_view(std::uint64_t{1}));
    }
    EXPECT_GT(tracker.current(), 0u);
    table.clear();
    // Slots stay allocated after clear, arena is gone.
    EXPECT_GT(tracker.current(), 0u);
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.live_bytes(), 0u);
  }
  EXPECT_EQ(tracker.current(), 0u);
}

TEST(CombineTable, ClearThenReuse) {
  memtrack::Tracker tracker;
  CombineTable table(tracker, 1024, KVHint::string_key_u64_value(),
                     sum_u64);
  table.upsert("a", mimir::as_view(std::uint64_t{5}));
  table.clear();
  table.upsert("a", mimir::as_view(std::uint64_t{7}));
  const auto result = drain(table);
  EXPECT_EQ(mimir::as_u64(result.at("a")), 7u);
}

TEST(CombineTable, SizeChangingCombinesKeepFootprintBounded) {
  // Regression: before compaction existed, every size-changing combine
  // left its superseded record in the arena forever, so a growing-value
  // workload ballooned the footprint without bound. The arena must now
  // stay within a small multiple of the live data, with the transient
  // compaction copy keeping the tracker peak bounded too.
  memtrack::Tracker tracker;
  constexpr std::uint64_t kPage = 1024;
  CombineTable table(tracker, kPage, {}, concat);
  std::map<std::string, std::string> reference;
  for (int round = 0; round < 400; ++round) {
    for (int k = 0; k < 8; ++k) {
      const std::string key = "k" + std::to_string(k);
      const std::string piece = std::to_string(round);
      table.upsert(key, piece);
      if (reference[key].empty()) {
        reference[key] = piece;
      } else {
        reference[key] += "," + piece;
      }
    }
  }
  EXPECT_GT(table.compactions(), 0u);
  // Invariant from the header: dead bytes never exceed
  // max(live_bytes, page) before compaction fires, so the arena holds at
  // most live + dead + one page of slack per page boundary. Allow 3x
  // live + a couple of pages of slack as the bound.
  EXPECT_LE(table.arena_bytes(), 3 * table.live_bytes() + 4 * kPage)
      << "arena grew out of proportion to live data";
  EXPECT_LE(table.dead_bytes(),
            std::max(table.live_bytes(), kPage));
  // The peak includes one transient copy of the live data during
  // compaction; it must not scale with the total garbage ever produced
  // (which is ~100x the live size in this workload).
  EXPECT_LE(tracker.peak(), 8 * table.live_bytes() + 16 * kPage)
      << "compaction peak not bounded";
  // Compaction preserved every record.
  const auto result = drain(table);
  for (const auto& [key, expected] : reference) {
    EXPECT_EQ(result.at(key), expected) << key;
  }
}

// Property: combining N random increments per key equals the serial sum,
// for several key cardinalities.
class CombineSumProperty : public ::testing::TestWithParam<int> {};

TEST_P(CombineSumProperty, MatchesSerialSums) {
  const int num_keys = GetParam();
  memtrack::Tracker tracker;
  CombineTable table(tracker, 4096, KVHint::string_key_u64_value(),
                     sum_u64);
  std::map<std::string, std::uint64_t> reference;
  std::uint64_t state = 12345;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::string key =
        "k" + std::to_string(state % static_cast<unsigned>(num_keys));
    const std::uint64_t inc = (state >> 33) % 10;
    reference[key] += inc;
    table.upsert(key, mimir::as_view(inc));
  }
  EXPECT_EQ(table.size(), reference.size());
  const auto result = drain(table);
  for (const auto& [key, total] : reference) {
    EXPECT_EQ(mimir::as_u64(result.at(key)), total) << key;
  }
}

INSTANTIATE_TEST_SUITE_P(KeyCardinalities, CombineSumProperty,
                         ::testing::Values(1, 16, 1000, 20000));

}  // namespace
