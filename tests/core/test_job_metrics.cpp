// JobMetrics consistency across the paper's optimization paths: the
// baseline, KV compression (cps), partial reduction (pr), and the KV
// hint must all produce the same answer on the same input while their
// metrics expose exactly the volume differences the optimizations
// promise.
#include "mimir/job.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "simmpi/runtime.hpp"

namespace {

using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::JobMetrics;
using mimir::KVView;
using mimir::ValueReader;
using simmpi::Context;

constexpr std::uint64_t kOne = 1;
constexpr int kRanks = 4;

void wc_map(std::string_view chunk, Emitter& out) {
  std::size_t start = 0;
  while (start < chunk.size()) {
    const std::size_t end = chunk.find_first_of(" \n\t", start);
    const std::size_t stop =
        end == std::string_view::npos ? chunk.size() : end;
    if (stop > start) {
      out.emit(chunk.substr(start, stop - start), mimir::as_view(kOne));
    }
    start = stop + 1;
  }
}

void wc_reduce(std::string_view key, ValueReader& values, Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, mimir::as_view(total));
}

void wc_combine(std::string_view, std::string_view a, std::string_view b,
                std::string& out) {
  const std::uint64_t total = mimir::as_u64(a) + mimir::as_u64(b);
  out.assign(mimir::as_view(total));
}

constexpr std::uint64_t kVocabulary = 97;

/// Deterministic wordcount input: every word of a 97-word vocabulary,
/// repeated with an LCG-scrambled order so keys interleave across pages.
void write_inputs(pfs::FileSystem& fs) {
  std::uint64_t state = 12345;
  std::string text;
  for (int i = 0; i < 480; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    // First pass covers the whole vocabulary; the rest is scrambled.
    const auto word = i < static_cast<int>(kVocabulary)
                          ? static_cast<std::uint64_t>(i)
                          : (state >> 33) % kVocabulary;
    text += "word" + std::to_string(word);
    text += (i % 11 == 10) ? '\n' : ' ';
  }
  text += '\n';
  simtime::Clock clock;
  fs.write_file("input/part0", text, clock);
}

struct VariantRun {
  std::vector<JobMetrics> metrics{kRanks};  ///< indexed by rank
  std::map<std::string, std::uint64_t> counts;  ///< gathered at rank 0

  std::uint64_t sum(std::uint64_t JobMetrics::* field) const {
    return std::accumulate(metrics.begin(), metrics.end(),
                           std::uint64_t{0},
                           [field](std::uint64_t acc, const JobMetrics& m) {
                             return acc + m.*field;
                           });
  }
};

VariantRun run_variant(bool hint, bool pr, bool cps) {
  const auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);
  write_inputs(fs);

  VariantRun result;
  std::mutex mutex;
  simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
    JobConfig cfg;
    cfg.page_size = 1 << 10;
    cfg.comm_buffer = 1 << 10;  // small: forces several exchange rounds
    if (hint) cfg.hint = mimir::KVHint::string_key_u64_value();
    cfg.kv_compression = cps;

    Job job(ctx, cfg);
    const std::vector<std::string> files{"input/part0"};
    job.map_text_files(files, wc_map,
                       cps ? wc_combine : mimir::CombineFn{});
    if (pr) {
      job.partial_reduce(wc_combine);
    } else {
      job.reduce(wc_reduce);
    }

    std::string flat;
    job.output().scan([&](const KVView& kv) {
      flat += std::string(kv.key) + ' ' +
              std::to_string(mimir::as_u64(kv.value)) + '\n';
    });
    const auto gathered = ctx.comm.gatherv(
        0, std::span<const std::byte>(
               reinterpret_cast<const std::byte*>(flat.data()),
               flat.size()));

    const std::scoped_lock lock(mutex);
    result.metrics[static_cast<std::size_t>(ctx.rank())] = job.metrics();
    if (ctx.rank() == 0) {
      std::istringstream in(std::string(
          reinterpret_cast<const char*>(gathered.data.data()),
          gathered.data.size()));
      std::string word;
      std::uint64_t n = 0;
      while (in >> word >> n) result.counts[word] += n;
    }
  });
  return result;
}

class JobMetricsConsistency : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    baseline_ = new VariantRun(run_variant(false, false, false));
    hint_ = new VariantRun(run_variant(true, false, false));
    pr_ = new VariantRun(run_variant(false, true, false));
    cps_ = new VariantRun(run_variant(false, false, true));
  }
  static void TearDownTestSuite() {
    delete baseline_; baseline_ = nullptr;
    delete hint_; hint_ = nullptr;
    delete pr_; pr_ = nullptr;
    delete cps_; cps_ = nullptr;
  }

  static const VariantRun* baseline_;
  static const VariantRun* hint_;
  static const VariantRun* pr_;
  static const VariantRun* cps_;
};

const VariantRun* JobMetricsConsistency::baseline_ = nullptr;
const VariantRun* JobMetricsConsistency::hint_ = nullptr;
const VariantRun* JobMetricsConsistency::pr_ = nullptr;
const VariantRun* JobMetricsConsistency::cps_ = nullptr;

TEST_F(JobMetricsConsistency, AllVariantsProduceIdenticalOutput) {
  ASSERT_FALSE(baseline_->counts.empty());
  EXPECT_EQ(baseline_->counts.size(), kVocabulary);
  EXPECT_EQ(hint_->counts, baseline_->counts);
  EXPECT_EQ(pr_->counts, baseline_->counts);
  EXPECT_EQ(cps_->counts, baseline_->counts);
}

TEST_F(JobMetricsConsistency, ExchangeRoundsAgreeAcrossRanks) {
  // alltoall is collective: every rank must see the same round count,
  // and the small comm buffer must have forced more than one round.
  for (const VariantRun* run : {baseline_, hint_, pr_, cps_}) {
    const std::uint64_t rounds = run->metrics[0].exchange_rounds;
    EXPECT_GE(rounds, 2u);
    for (const JobMetrics& m : run->metrics) {
      EXPECT_EQ(m.exchange_rounds, rounds);
    }
  }
}

TEST_F(JobMetricsConsistency, UniqueKeysAgreeAcrossVariants) {
  // Keys are partitioned by hash, so per-rank unique key counts sum to
  // the vocabulary size no matter which optimization path ran.
  const auto unique = &JobMetrics::unique_keys;
  EXPECT_EQ(baseline_->sum(unique), kVocabulary);
  EXPECT_EQ(hint_->sum(unique), kVocabulary);
  EXPECT_EQ(pr_->sum(unique), kVocabulary);
  EXPECT_EQ(cps_->sum(unique), kVocabulary);
  EXPECT_EQ(baseline_->sum(&JobMetrics::output_kvs), kVocabulary);
  EXPECT_EQ(pr_->sum(&JobMetrics::output_kvs), kVocabulary);
}

TEST_F(JobMetricsConsistency, CompressionShrinksShuffleVolume) {
  // cps merges duplicate keys before the exchange: fewer emitted KVs,
  // fewer bytes on the wire, and a nonzero combined count. The other
  // variants never combine during map.
  EXPECT_EQ(baseline_->sum(&JobMetrics::combined_kvs), 0u);
  EXPECT_EQ(hint_->sum(&JobMetrics::combined_kvs), 0u);
  EXPECT_EQ(pr_->sum(&JobMetrics::combined_kvs), 0u);
  EXPECT_GT(cps_->sum(&JobMetrics::combined_kvs), 0u);

  EXPECT_LT(cps_->sum(&JobMetrics::map_emitted_kvs),
            baseline_->sum(&JobMetrics::map_emitted_kvs));
  EXPECT_LT(cps_->sum(&JobMetrics::map_emitted_bytes),
            baseline_->sum(&JobMetrics::map_emitted_bytes));
  EXPECT_EQ(cps_->sum(&JobMetrics::map_emitted_kvs) +
                cps_->sum(&JobMetrics::combined_kvs),
            baseline_->sum(&JobMetrics::map_emitted_kvs));
}

TEST_F(JobMetricsConsistency, HintShrinksEncodedBytes) {
  // The KV hint drops the per-record value-length field: same KV count,
  // strictly smaller encoding, both on the wire and in the container.
  EXPECT_EQ(hint_->sum(&JobMetrics::map_emitted_kvs),
            baseline_->sum(&JobMetrics::map_emitted_kvs));
  EXPECT_LT(hint_->sum(&JobMetrics::map_emitted_bytes),
            baseline_->sum(&JobMetrics::map_emitted_bytes));
  EXPECT_LT(hint_->sum(&JobMetrics::intermediate_bytes),
            baseline_->sum(&JobMetrics::intermediate_bytes));
}

TEST_F(JobMetricsConsistency, InputAndIntermediateAccountingMatches) {
  // Every variant reads the same input, and for the non-combining
  // variants every emitted KV lands in some rank's intermediate
  // container.
  const auto input = baseline_->sum(&JobMetrics::input_bytes);
  EXPECT_GT(input, 0u);
  EXPECT_EQ(hint_->sum(&JobMetrics::input_bytes), input);
  EXPECT_EQ(pr_->sum(&JobMetrics::input_bytes), input);
  EXPECT_EQ(cps_->sum(&JobMetrics::input_bytes), input);
  for (const VariantRun* run : {baseline_, hint_, pr_}) {
    EXPECT_EQ(run->sum(&JobMetrics::intermediate_kvs),
              run->sum(&JobMetrics::map_emitted_kvs));
  }
}

}  // namespace
