#include <gtest/gtest.h>

#include <map>
#include <string>

#include "mimir/containers.hpp"
#include "mimir/convert.hpp"
#include "mimir/shuffle.hpp"
#include "mutil/hash.hpp"
#include "simmpi/runtime.hpp"

namespace {

using mimir::KVContainer;
using mimir::KVView;
using mimir::Shuffle;
using simmpi::Context;

TEST(Shuffle, RoutesEveryKeyToItsHashOwner) {
  constexpr int kRanks = 4;
  simmpi::run_test(kRanks, [](Context& ctx) {
    KVContainer dest(ctx.tracker, 4096);
    Shuffle shuffle(ctx, 4096, {}, dest);
    for (int i = 0; i < 200; ++i) {
      shuffle.emit("key" + std::to_string(i), "v");
    }
    shuffle.finalize();
    // Every received key must hash to this rank.
    dest.scan([&](const KVView& kv) {
      EXPECT_EQ(mutil::hash_bytes(kv.key) %
                    static_cast<std::uint64_t>(ctx.size()),
                static_cast<std::uint64_t>(ctx.rank()));
    });
    // Total across ranks preserved.
    const auto total = ctx.comm.allreduce_u64(dest.num_kvs(),
                                              simmpi::Op::kSum);
    EXPECT_EQ(total, 200u * kRanks);
  });
}

TEST(Shuffle, SmallBufferForcesManyRounds) {
  simmpi::run_test(2, [](Context& ctx) {
    KVContainer dest(ctx.tracker, 4096);
    // 64-byte buffer -> 32-byte partitions: a few KVs per round.
    Shuffle shuffle(ctx, 64, {}, dest);
    for (int i = 0; i < 100; ++i) {
      shuffle.emit("k" + std::to_string(i), "value");
    }
    shuffle.finalize();
    EXPECT_GT(shuffle.rounds(), 5u);
    const auto total = ctx.comm.allreduce_u64(dest.num_kvs(),
                                              simmpi::Op::kSum);
    EXPECT_EQ(total, 200u);
  });
}

TEST(Shuffle, ImbalancedProducersStillTerminate) {
  // Only rank 0 produces; everyone else must keep participating in the
  // exchange protocol until rank 0 drains.
  simmpi::run_test(3, [](Context& ctx) {
    KVContainer dest(ctx.tracker, 4096);
    Shuffle shuffle(ctx, 96, {}, dest);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 300; ++i) {
        shuffle.emit("key" + std::to_string(i), "v");
      }
    }
    shuffle.finalize();
    const auto total = ctx.comm.allreduce_u64(dest.num_kvs(),
                                              simmpi::Op::kSum);
    EXPECT_EQ(total, 300u);
  });
}

TEST(Shuffle, SkewedKeysNeverOverflowReceiveBuffer) {
  // All KVs share one key -> one rank receives everything. The paper's
  // §III-B argues the receive buffer still never overflows because each
  // sender is bounded by its partition size.
  simmpi::run_test(4, [](Context& ctx) {
    KVContainer dest(ctx.tracker, 4096);
    Shuffle shuffle(ctx, 256, {}, dest);
    for (int i = 0; i < 200; ++i) {
      shuffle.emit("hot", "xxxxxxxx");
    }
    shuffle.finalize();
    const auto total = ctx.comm.allreduce_u64(dest.num_kvs(),
                                              simmpi::Op::kSum);
    EXPECT_EQ(total, 800u);
    const auto mine = dest.num_kvs();
    EXPECT_TRUE(mine == 0 || mine == 800u);
  });
}

TEST(Shuffle, OversizedKvRejected) {
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](Context& ctx) {
                         KVContainer dest(ctx.tracker, 4096);
                         Shuffle shuffle(ctx, 64, {}, dest);
                         shuffle.emit("key", std::string(100, 'x'));
                       }),
      mutil::UsageError);
}

TEST(Shuffle, EmitAfterFinalizeRejected) {
  EXPECT_THROW(simmpi::run_test(1,
                                [](Context& ctx) {
                                  KVContainer dest(ctx.tracker, 4096);
                                  Shuffle shuffle(ctx, 64, {}, dest);
                                  shuffle.finalize();
                                  shuffle.emit("k", "v");
                                }),
               mutil::UsageError);
}

TEST(Shuffle, NegativePartitionerResultRejectedWhileSigned) {
  // Regression: the partitioner's int result used to be cast straight to
  // size_t, so a buggy partitioner returning -1 either indexed the
  // partition table at 2^64-1 or surfaced as a nonsense "rank
  // 18446744073709551615" error. The check must happen on the signed
  // value and the error must name the partitioner contract.
  try {
    simmpi::run_test(2, [](Context& ctx) {
      KVContainer dest(ctx.tracker, 4096);
      Shuffle shuffle(ctx, 256, {}, dest,
                      [](std::string_view, int) { return -1; });
      shuffle.emit("k", "v");
    });
    FAIL() << "expected UsageError";
  } catch (const mutil::UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("partitioner returned rank -1"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("partitioner contract"),
              std::string::npos)
        << e.what();
  }
}

TEST(Shuffle, OutOfRangePartitionerResultRejected) {
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](Context& ctx) {
                         KVContainer dest(ctx.tracker, 4096);
                         Shuffle shuffle(
                             ctx, 256, {}, dest,
                             [](std::string_view, int nranks) {
                               return nranks;  // one past the end
                             });
                         shuffle.emit("k", "v");
                       }),
      mutil::UsageError);
}

TEST(Convert, GroupsValuesByKey) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 4096);
    kvc.append("a", "1");
    kvc.append("b", "2");
    kvc.append("a", "3");
    kvc.append("c", "4");
    kvc.append("a", "5");
    mimir::ConvertStats stats;
    auto kmvc = mimir::convert(ctx, kvc, 4096, &stats);
    EXPECT_EQ(stats.input_kvs, 5u);
    EXPECT_EQ(stats.unique_keys, 3u);
    EXPECT_TRUE(kvc.empty()) << "convert consumes its input";

    std::map<std::string, std::string> joined;
    kmvc.for_each([&](std::string_view key, mimir::ValueReader& values) {
      std::string acc;
      std::string_view v;
      while (values.next(v)) acc.append(v);
      joined[std::string(key)] = acc;
    });
    EXPECT_EQ(joined.at("a"), "135");
    EXPECT_EQ(joined.at("b"), "2");
    EXPECT_EQ(joined.at("c"), "4");
  });
}

TEST(Convert, ManyKeysSurviveRehash) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 1 << 16);
    constexpr int kKeys = 4000;  // > initial index capacity
    for (int pass = 0; pass < 3; ++pass) {
      for (int i = 0; i < kKeys; ++i) {
        kvc.append("key" + std::to_string(i), "v" + std::to_string(pass));
      }
    }
    mimir::ConvertStats stats;
    auto kmvc = mimir::convert(ctx, kvc, 1 << 16, &stats);
    EXPECT_EQ(stats.unique_keys, static_cast<std::uint64_t>(kKeys));
    kmvc.for_each([&](std::string_view, mimir::ValueReader& values) {
      EXPECT_EQ(values.count(), 3u);
    });
  });
}

TEST(Convert, PreservesPerKeyValueOrderWithinRank) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 4096);
    for (int i = 0; i < 10; ++i) {
      kvc.append("k", std::to_string(i));
    }
    auto kmvc = mimir::convert(ctx, kvc, 4096);
    kmvc.for_each([&](std::string_view, mimir::ValueReader& values) {
      std::string_view v;
      int expected = 0;
      while (values.next(v)) {
        EXPECT_EQ(v, std::to_string(expected++));
      }
      EXPECT_EQ(expected, 10);
    });
  });
}

TEST(Convert, EmptyInputYieldsEmptyOutput) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 4096);
    mimir::ConvertStats stats;
    auto kmvc = mimir::convert(ctx, kvc, 4096, &stats);
    EXPECT_EQ(stats.unique_keys, 0u);
    EXPECT_TRUE(kmvc.empty());
  });
}

}  // namespace
