#include "mimir/containers.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace {

using mimir::KVContainer;
using mimir::KMVContainer;
using mimir::KVHint;
using mimir::KVView;
using mimir::ValueReader;

TEST(KVContainer, AppendAndScan) {
  memtrack::Tracker tracker;
  KVContainer kvc(tracker, 1024);
  kvc.append("alpha", "1");
  kvc.append("beta", "22");
  EXPECT_EQ(kvc.num_kvs(), 2u);
  std::vector<std::string> seen;
  kvc.scan([&](const KVView& kv) {
    seen.push_back(std::string(kv.key) + "=" + std::string(kv.value));
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "alpha=1");
  EXPECT_EQ(seen[1], "beta=22");
}

TEST(KVContainer, GrowsPagesOnDemand) {
  memtrack::Tracker tracker;
  KVContainer kvc(tracker, 64);
  for (int i = 0; i < 50; ++i) {
    kvc.append("key" + std::to_string(i), "value");
  }
  EXPECT_GT(kvc.num_pages(), 1u);
  EXPECT_EQ(kvc.num_kvs(), 50u);
  EXPECT_GE(kvc.allocated_bytes(), kvc.data_bytes());
  EXPECT_EQ(tracker.current(), kvc.allocated_bytes());
}

TEST(KVContainer, ConsumeFreesPagesProgressively) {
  memtrack::Tracker tracker;
  KVContainer kvc(tracker, 64);
  for (int i = 0; i < 100; ++i) kvc.append("k" + std::to_string(i), "v");
  const std::uint64_t before = tracker.current();
  std::uint64_t min_seen = before;
  int count = 0;
  kvc.consume([&](const KVView&) {
    ++count;
    min_seen = std::min(min_seen, tracker.current());
  });
  EXPECT_EQ(count, 100);
  EXPECT_LT(min_seen, before) << "pages must be freed during consumption";
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_TRUE(kvc.empty());
}

TEST(KVContainer, OversizedRecordGetsDedicatedPage) {
  memtrack::Tracker tracker;
  KVContainer kvc(tracker, 32);
  const std::string big(500, 'x');
  kvc.append("k", big);
  EXPECT_EQ(kvc.num_kvs(), 1u);
  std::string out;
  kvc.scan([&](const KVView& kv) { out = std::string(kv.value); });
  EXPECT_EQ(out, big);
}

TEST(KVContainer, AppendEncodedRepacks) {
  memtrack::Tracker tracker;
  KVContainer src(tracker, 256), dst(tracker, 64);
  for (int i = 0; i < 20; ++i) src.append("k" + std::to_string(i), "vv");
  // Concatenate src's single page region into dst with a smaller page.
  src.scan([](const KVView&) {});
  std::vector<std::byte> flat;
  // Use the public path: encode via scan + append, then compare against
  // append_encoded of a manually built stream.
  const mimir::KVCodec& codec = src.codec();
  src.scan([&](const KVView& kv) {
    const std::size_t old = flat.size();
    flat.resize(old + codec.encoded_size(kv.key, kv.value));
    codec.encode(flat.data() + old, kv.key, kv.value);
  });
  dst.append_encoded(flat);
  EXPECT_EQ(dst.num_kvs(), 20u);
  EXPECT_EQ(dst.data_bytes(), src.data_bytes());
}

TEST(KVContainer, HintPropagatesToStorage) {
  memtrack::Tracker tracker;
  KVContainer plain(tracker, 4096, KVHint::variable());
  KVContainer hinted(tracker, 4096, KVHint::string_key_u64_value());
  const std::string value(8, 'v');
  for (int i = 0; i < 100; ++i) {
    plain.append("word" + std::to_string(i), value);
    hinted.append("word" + std::to_string(i), value);
  }
  EXPECT_LT(hinted.data_bytes(), plain.data_bytes());
}

TEST(KVContainer, ClearReleasesMemory) {
  memtrack::Tracker tracker;
  KVContainer kvc(tracker, 64);
  for (int i = 0; i < 40; ++i) kvc.append("key", "value");
  EXPECT_GT(tracker.current(), 0u);
  kvc.clear();
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_EQ(kvc.num_kvs(), 0u);
}

TEST(KVContainer, RejectsZeroPageSize) {
  memtrack::Tracker tracker;
  EXPECT_THROW(KVContainer(tracker, 0), mutil::ConfigError);
}

// --- KMV -------------------------------------------------------------------

TEST(KMVContainer, ReserveFillIterate) {
  memtrack::Tracker tracker;
  KMVContainer kmvc(tracker, 1024);
  auto slot = kmvc.reserve("fruit", 3, 5 + 4 + 6);
  kmvc.add_value(slot, "apple");
  kmvc.add_value(slot, "pear");
  kmvc.add_value(slot, "banana");
  auto slot2 = kmvc.reserve("empty", 0, 0);
  (void)slot2;

  std::map<std::string, std::vector<std::string>> seen;
  kmvc.for_each([&](std::string_view key, ValueReader& values) {
    auto& list = seen[std::string(key)];
    std::string_view v;
    while (values.next(v)) list.emplace_back(v);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["fruit"],
            (std::vector<std::string>{"apple", "pear", "banana"}));
  EXPECT_TRUE(seen["empty"].empty());
}

TEST(KMVContainer, ValueReaderRewind) {
  memtrack::Tracker tracker;
  KMVContainer kmvc(tracker, 1024);
  auto slot = kmvc.reserve("k", 2, 2);
  kmvc.add_value(slot, "a");
  kmvc.add_value(slot, "b");
  kmvc.for_each([&](std::string_view, ValueReader& values) {
    EXPECT_EQ(values.count(), 2u);
    std::string_view v;
    EXPECT_TRUE(values.next(v));
    EXPECT_EQ(v, "a");
    values.rewind();
    int n = 0;
    while (values.next(v)) ++n;
    EXPECT_EQ(n, 2);
  });
}

TEST(KMVContainer, FixedValueHintPacksTightly) {
  memtrack::Tracker tracker;
  KMVContainer plain(tracker, 4096, KVHint::variable());
  KMVContainer hinted(tracker, 4096, {KVHint::kString, 8});
  const std::string value(8, 'v');
  auto sp = plain.reserve("key", 4, 32);
  auto sh = hinted.reserve("key", 4, 32);
  for (int i = 0; i < 4; ++i) {
    plain.add_value(sp, value);
    hinted.add_value(sh, value);
  }
  EXPECT_LT(hinted.data_bytes(), plain.data_bytes());
}

TEST(KMVContainer, KeyOfReturnsStableView) {
  memtrack::Tracker tracker;
  KMVContainer kmvc(tracker, 256);
  auto slot = kmvc.reserve("stable-key", 1, 1);
  const std::string_view key = kmvc.key_of(slot);
  kmvc.add_value(slot, "x");
  // Force more pages; the original view must stay valid.
  for (int i = 0; i < 10; ++i) {
    auto s = kmvc.reserve("k" + std::to_string(i), 1, 50);
    kmvc.add_value(s, std::string(50, 'y'));
  }
  EXPECT_EQ(key, "stable-key");
}

TEST(KMVContainer, ConsumeFreesEverything) {
  memtrack::Tracker tracker;
  KMVContainer kmvc(tracker, 128);
  for (int i = 0; i < 30; ++i) {
    auto slot = kmvc.reserve("k" + std::to_string(i), 1, 10);
    kmvc.add_value(slot, std::string(10, 'z'));
  }
  int seen = 0;
  kmvc.consume([&](std::string_view, ValueReader&) { ++seen; });
  EXPECT_EQ(seen, 30);
  EXPECT_EQ(tracker.current(), 0u);
  EXPECT_TRUE(kmvc.empty());
}

TEST(KMVContainer, FixedHintViolationsRejected) {
  memtrack::Tracker tracker;
  KMVContainer kmvc(tracker, 256, KVHint::fixed(4, 8));
  EXPECT_THROW(kmvc.reserve("toolong", 1, 8), mutil::UsageError);
  auto slot = kmvc.reserve("four", 1, 8);
  EXPECT_THROW(kmvc.add_value(slot, "tiny"), mutil::UsageError);
}

}  // namespace
