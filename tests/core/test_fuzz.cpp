// Property/fuzz tests: random KV streams through the full Mimir pipeline
// must match a simple std::map reference, for every hint mode, random
// binary payloads, and several rank counts.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "mimir/mimir.hpp"
#include "mutil/hash.hpp"
#include "mutil/random.hpp"
#include "simmpi/runtime.hpp"

namespace {

using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::KVHint;
using mimir::KVView;
using simmpi::Context;

struct FuzzCase {
  std::uint64_t seed;
  int ranks;
  int key_mode;  // 0 = variable binary, 1 = string keys, 2 = fixed 8
};

std::string random_key(mutil::Xoshiro256& rng, int mode) {
  switch (mode) {
    case 1: {  // printable string key (NUL-free for the string hint)
      const std::size_t len = 1 + rng.below(12);
      std::string key(len, 'a');
      for (auto& c : key) c = static_cast<char>('a' + rng.below(26));
      return key;
    }
    case 2: {  // fixed 8-byte binary key
      std::string key(8, '\0');
      for (auto& c : key) c = static_cast<char>(rng.below(256));
      return key;
    }
    default: {  // variable binary key (may contain NULs), non-empty
      const std::size_t len = 1 + rng.below(20);
      std::string key(len, '\0');
      for (auto& c : key) c = static_cast<char>(rng.below(256));
      return key;
    }
  }
}

std::string random_value(mutil::Xoshiro256& rng) {
  const std::size_t len = rng.below(24);
  std::string value(len, '\0');
  for (auto& c : value) c = static_cast<char>(rng.below(256));
  return value;
}

class PipelineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PipelineFuzz, MatchesMapReference) {
  const FuzzCase fc = GetParam();
  // Fixed pool of keys so duplicates occur; values random per emission.
  mutil::Xoshiro256 keygen(fc.seed);
  std::vector<std::string> pool;
  std::set<std::string> pool_dedup;
  for (int i = 0; i < 40; ++i) {
    const std::string key = random_key(keygen, fc.key_mode);
    if (pool_dedup.insert(key).second) pool.push_back(key);
  }

  // Reference: every rank r emits a deterministic stream.
  constexpr int kPerRank = 500;
  std::map<std::string, std::vector<std::string>> reference;
  for (int r = 0; r < fc.ranks; ++r) {
    mutil::Xoshiro256 rng(fc.seed * 1000 + static_cast<unsigned>(r));
    for (int i = 0; i < kPerRank; ++i) {
      const auto& key = pool[rng.below(pool.size())];
      reference[key].push_back(random_value(rng));
    }
  }
  // Reduce result: multiset digest of values per key.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> expected;
  for (auto& [key, values] : reference) {
    std::uint64_t digest = 0;
    for (const auto& v : values) digest += mutil::hash_bytes(v);
    expected[key] = {values.size(), digest};
  }

  KVHint hint;
  if (fc.key_mode == 1) hint.key_len = KVHint::kString;
  if (fc.key_mode == 2) hint.key_len = 8;

  simmpi::run_test(fc.ranks, [&](Context& ctx) {
    JobConfig cfg;
    cfg.page_size = 2048;
    cfg.comm_buffer = 2048;
    cfg.hint = hint;
    Job job(ctx, cfg);
    job.map_custom([&](Emitter& out) {
      mutil::Xoshiro256 rng(fc.seed * 1000 +
                            static_cast<unsigned>(ctx.rank()));
      for (int i = 0; i < kPerRank; ++i) {
        const auto& key = pool[rng.below(pool.size())];
        out.emit(key, random_value(rng));
      }
    });
    job.reduce([](std::string_view key, mimir::ValueReader& values,
                  Emitter& out) {
      std::uint64_t digest = 0;
      std::uint64_t count = 0;
      std::string_view v;
      while (values.next(v)) {
        digest += mutil::hash_bytes(v);
        ++count;
      }
      std::string packed(16, '\0');
      std::memcpy(packed.data(), &count, 8);
      std::memcpy(packed.data() + 8, &digest, 8);
      out.emit(key, packed);
    });

    // Collect per-rank results and verify against the reference.
    std::uint64_t seen = 0;
    job.output().scan([&](const KVView& kv) {
      const auto it = expected.find(std::string(kv.key));
      ASSERT_NE(it, expected.end()) << "unexpected key in output";
      std::uint64_t count = 0, digest = 0;
      std::memcpy(&count, kv.value.data(), 8);
      std::memcpy(&digest, kv.value.data() + 8, 8);
      EXPECT_EQ(count, it->second.first);
      EXPECT_EQ(digest, it->second.second);
      ++seen;
    });
    const auto total = ctx.comm.allreduce_u64(seen, simmpi::Op::kSum);
    EXPECT_EQ(total, expected.size()) << "every key reduced exactly once";
  });
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    for (const int ranks : {1, 4}) {
      for (const int mode : {0, 1, 2}) {
        cases.push_back({seed, ranks, mode});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Streams, PipelineFuzz, ::testing::ValuesIn(fuzz_cases()),
    [](const auto& param_info) {
      const FuzzCase& fc = param_info.param;
      return "seed" + std::to_string(fc.seed) + "_p" +
             std::to_string(fc.ranks) + "_mode" +
             std::to_string(fc.key_mode);
    });

TEST(PipelineDeterminism, IdenticalRunsProduceIdenticalStats) {
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = 4;
  double times[2];
  std::uint64_t peaks[2], shuffled[2];
  for (int round = 0; round < 2; ++round) {
    pfs::FileSystem fs(machine, 4);
    const auto stats = simmpi::run(4, machine, fs, [](Context& ctx) {
      Job job(ctx, {});
      job.map_custom([&](Emitter& out) {
        for (int i = 0; i < 1000; ++i) {
          out.emit("key" + std::to_string((i * 7 + ctx.rank()) % 50),
                   std::uint64_t{1});
        }
      });
      job.reduce([](std::string_view key, mimir::ValueReader& values,
                    Emitter& out) {
        std::uint64_t total = 0;
        std::string_view v;
        while (values.next(v)) total += mimir::as_u64(v);
        out.emit(key, total);
      });
    });
    times[round] = stats.sim_time;
    peaks[round] = stats.node_peak;
    shuffled[round] = stats.shuffle_bytes;
  }
  EXPECT_EQ(times[0], times[1]) << "simulated time must be deterministic";
  EXPECT_EQ(peaks[0], peaks[1]);
  EXPECT_EQ(shuffled[0], shuffled[1]);
}

}  // namespace
