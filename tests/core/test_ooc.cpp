// Out-of-core KVContainer / Job tests (extension feature).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "mimir/mimir.hpp"
#include "mutil/error.hpp"
#include "mutil/hash.hpp"
#include "simmpi/runtime.hpp"

namespace {

using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::KVContainer;
using mimir::KVView;
using mimir::SpillConfig;
using simmpi::Context;

SpillConfig spill_for(Context& ctx, const std::string& file,
                      std::uint64_t live) {
  return {&ctx.fs, &ctx.clock(), file, live};
}

TEST(OocContainer, SpillsOldestPagesAndRoundTrips) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 256);
    kvc.enable_spill(spill_for(ctx, "spill/a", 1024));
    std::map<std::string, std::string> expected;
    for (int i = 0; i < 200; ++i) {
      const std::string key = "key" + std::to_string(i);
      kvc.append(key, "value");
      expected[key] = "value";
    }
    EXPECT_TRUE(kvc.spilled());
    EXPECT_LE(kvc.allocated_bytes(), 1024u + 256u)
        << "live pages stay within the bound";
    EXPECT_LE(ctx.tracker.current(), 1024u + 256u);

    // Order-preserving, content-exact streaming.
    std::map<std::string, std::string> seen;
    int order_probe = 0;
    kvc.scan([&](const KVView& kv) {
      seen[std::string(kv.key)] = std::string(kv.value);
      if (kv.key == "key0") EXPECT_EQ(order_probe, 0);
      ++order_probe;
    });
    EXPECT_EQ(seen, expected);
    // Scans are repeatable.
    std::uint64_t again = 0;
    kvc.scan([&](const KVView&) { ++again; });
    EXPECT_EQ(again, 200u);
  });
}

TEST(OocContainer, ConsumeDrainsAndRemovesSpillFile) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 128);
    kvc.enable_spill(spill_for(ctx, "spill/b", 512));
    for (int i = 0; i < 100; ++i) kvc.append("k" + std::to_string(i), "v");
    EXPECT_TRUE(ctx.fs.exists("spill/b"));
    int count = 0;
    kvc.consume([&](const KVView&) { ++count; });
    EXPECT_EQ(count, 100);
    EXPECT_FALSE(ctx.fs.exists("spill/b"));
    EXPECT_TRUE(kvc.empty());
    EXPECT_EQ(ctx.tracker.current(), 0u);
  });
}

TEST(OocContainer, DestructorRemovesSpillFile) {
  simmpi::run_test(1, [](Context& ctx) {
    {
      KVContainer kvc(ctx.tracker, 128);
      kvc.enable_spill(spill_for(ctx, "spill/c", 256));
      for (int i = 0; i < 60; ++i) kvc.append("k" + std::to_string(i), "v");
      EXPECT_TRUE(ctx.fs.exists("spill/c"));
    }
    EXPECT_FALSE(ctx.fs.exists("spill/c"));
  });
}

TEST(OocContainer, EnableSpillOnNonEmptyRejected) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 128);
    kvc.append("k", "v");
    EXPECT_THROW(kvc.enable_spill(spill_for(ctx, "spill/d", 256)),
                 mutil::UsageError);
  });
}

TEST(OocContainer, MoveTransfersSpillOwnership) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer a(ctx.tracker, 128);
    a.enable_spill(spill_for(ctx, "spill/e", 256));
    for (int i = 0; i < 60; ++i) a.append("k" + std::to_string(i), "v");
    KVContainer b = std::move(a);
    EXPECT_TRUE(ctx.fs.exists("spill/e"));
    std::uint64_t count = 0;
    b.scan([&](const KVView&) { ++count; });
    EXPECT_EQ(count, 60u);
    b.clear();
    EXPECT_FALSE(ctx.fs.exists("spill/e"));
  });
}

void sum_reduce(std::string_view key, mimir::ValueReader& values,
                Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, total);
}

void sum_combine(std::string_view, std::string_view a, std::string_view b,
                 std::string& out) {
  out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
}

class OocJob : public ::testing::TestWithParam<bool> {};

TEST_P(OocJob, ResultsMatchInMemoryRun) {
  const bool use_pr = GetParam();
  constexpr int kRanks = 3;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);

  std::uint64_t digests[2] = {0, 0};
  int idx = 0;
  for (const std::uint64_t ooc : {std::uint64_t{0}, std::uint64_t{2048}}) {
    simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
      JobConfig cfg;
      cfg.page_size = 512;
      cfg.comm_buffer = 512;
      cfg.ooc_live_bytes = ooc;
      Job job(ctx, cfg);
      job.map_custom([&](Emitter& out) {
        for (int i = 0; i < 2000; ++i) {
          out.emit("w" + std::to_string((i * 31 + ctx.rank()) % 97),
                   std::uint64_t{1});
        }
      });
      if (ooc != 0) {
        EXPECT_TRUE(ctx.comm.allreduce_lor(job.intermediate().spilled()))
            << "the tiny budget must force spilling somewhere";
      }
      if (use_pr) {
        job.partial_reduce(sum_combine);
      } else {
        job.reduce(sum_reduce);
      }
      std::uint64_t digest = 0;
      job.output().scan([&](const KVView& kv) {
        digest +=
            mutil::hash_bytes(kv.key) * mimir::as_u64(kv.value);
      });
      const auto total = ctx.comm.allreduce_u64(digest, simmpi::Op::kSum);
      if (ctx.rank() == 0) digests[idx] = total;
    });
    ++idx;
  }
  EXPECT_EQ(digests[0], digests[1])
      << "out-of-core execution must be result-identical";
}

INSTANTIATE_TEST_SUITE_P(ReducePaths, OocJob, ::testing::Values(false, true),
                         [](const auto& param_info) {
                           return param_info.param ? "partial_reduce"
                                                   : "reduce";
                         });

TEST(OocJob, SurvivesNodeBudgetThatKillsInMemoryRun) {
  // A node too small for the intermediate data: the in-memory run OOMs,
  // the out-of-core run completes (slowly, on the PFS).
  // The budget must be deterministic under concurrent rank allocation:
  // far below the in-memory intermediate (~176K node-wide) and far above
  // the OOC working set (~84K worst case with both ranks at peak
  // simultaneously).
  constexpr int kRanks = 2;
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = kRanks;
  machine.node_memory = 96 << 10;
  pfs::FileSystem fs(machine, kRanks);

  const auto workload = [](Context& ctx, std::uint64_t ooc) {
    JobConfig cfg;
    cfg.page_size = 2 << 10;
    cfg.comm_buffer = 2 << 10;
    cfg.ooc_live_bytes = ooc;
    Job job(ctx, cfg);
    // High duplication over a bounded key set: the raw intermediate
    // volume (which the OOC budget bounds) dwarfs the combiner bucket.
    job.map_custom([&](Emitter& out) {
      for (int i = 0; i < 4000; ++i) {
        out.emit("key" + std::to_string((i * 2 + ctx.rank()) % 800),
                 std::uint64_t{1});
      }
    });
    job.partial_reduce(sum_combine);
    std::uint64_t n = 0;
    job.output().scan([&](const KVView&) { ++n; });
    return ctx.comm.allreduce_u64(n, simmpi::Op::kSum);
  };

  EXPECT_THROW(simmpi::run(kRanks, machine, fs,
                           [&](Context& ctx) { workload(ctx, 0); }),
               mutil::OutOfMemoryError);

  std::uint64_t unique = 0;
  simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
    const auto n = workload(ctx, 8 << 10);
    if (ctx.rank() == 0) unique = n;
  });
  EXPECT_EQ(unique, 800u);
}

TEST(OocJob, SpillingChargesSimulatedTime) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e5;
  machine.pfs_client_bandwidth = 1e5;
  double times[2];
  int idx = 0;
  for (const std::uint64_t ooc : {std::uint64_t{0}, std::uint64_t{1024}}) {
    pfs::FileSystem fs(machine, 1);
    const auto stats = simmpi::run(1, machine, fs, [&](Context& ctx) {
      JobConfig cfg;
      cfg.page_size = 512;
      cfg.comm_buffer = 512;
      cfg.ooc_live_bytes = ooc;
      Job job(ctx, cfg);
      job.map_custom([](Emitter& out) {
        for (int i = 0; i < 1500; ++i) {
          out.emit("k" + std::to_string(i), std::uint64_t{1});
        }
      });
      job.partial_reduce(sum_combine);
    });
    times[idx++] = stats.sim_time;
  }
  EXPECT_GT(times[1], times[0] * 2)
      << "going out of core must cost simulated I/O time";
}

}  // namespace
