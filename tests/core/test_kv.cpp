#include "mimir/kv.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using mimir::KVCodec;
using mimir::KVHint;
using mimir::KVView;

struct HintCase {
  KVHint hint;
  const char* name;
};

class CodecRoundTrip : public ::testing::TestWithParam<HintCase> {};

TEST_P(CodecRoundTrip, EncodeDecode) {
  const KVCodec codec(GetParam().hint);
  const std::string key = GetParam().hint.key_len >= 0
                              ? std::string(GetParam().hint.key_len, 'k')
                              : "somekey";
  const std::string value = GetParam().hint.value_len >= 0
                                ? std::string(GetParam().hint.value_len, 'v')
                                : "a value";
  std::vector<std::byte> buf(codec.encoded_size(key, value));
  EXPECT_EQ(codec.encode(buf.data(), key, value), buf.size());
  std::size_t consumed = 0;
  const KVView kv = codec.decode(buf.data(), &consumed);
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(kv.key, key);
  EXPECT_EQ(kv.value, value);
}

INSTANTIATE_TEST_SUITE_P(
    Hints, CodecRoundTrip,
    ::testing::Values(
        HintCase{KVHint::variable(), "variable"},
        HintCase{KVHint::string_key_u64_value(), "wc_hint"},
        HintCase{KVHint::fixed(8, 16), "fixed"},
        HintCase{{KVHint::kString, KVHint::kString}, "both_strings"},
        HintCase{{KVHint::kVariable, 8}, "var_key_fixed_value"},
        HintCase{{4, KVHint::kVariable}, "fixed_key_var_value"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(Codec, VariableHeaderIsEightBytes) {
  // The paper: two 32-bit lengths precede each variable KV.
  const KVCodec codec{KVHint::variable()};
  EXPECT_EQ(codec.encoded_size("abc", "xy"), 8u + 3 + 2);
}

TEST(Codec, HintRemovesHeader) {
  // WordCount hint: NUL-terminated key (+1 byte), fixed 8-byte value.
  const KVCodec codec{KVHint::string_key_u64_value()};
  EXPECT_EQ(codec.encoded_size("abc", std::string(8, 'v')), 3u + 1 + 8);
}

TEST(Codec, HintSavesSpaceOnShortKeys) {
  const KVCodec plain{KVHint::variable()};
  const KVCodec hinted{KVHint::string_key_u64_value()};
  const std::string value(8, 'v');
  // For a 5-char word: plain = 8+5+8 = 21, hinted = 5+1+8 = 14 (~33 %).
  EXPECT_LT(hinted.encoded_size("hello", value),
            plain.encoded_size("hello", value));
}

TEST(Codec, FixedHintRejectsWrongLengths) {
  const KVCodec codec{KVHint::fixed(4, 8)};
  EXPECT_THROW(codec.encoded_size("toolongkey", std::string(8, 'v')),
               mutil::UsageError);
  EXPECT_THROW(codec.encoded_size("four", "short"), mutil::UsageError);
}

TEST(Codec, RejectsNonsenseHints) {
  EXPECT_THROW(KVCodec(KVHint{-3, 0}), mutil::ConfigError);
  EXPECT_THROW(KVCodec(KVHint{0, -7}), mutil::ConfigError);
}

TEST(Codec, StringHintRejectsEmbeddedNul) {
  // The kString encoding is NUL-terminated and decodes with strlen, so
  // an embedded NUL would silently truncate the field and desynchronize
  // every record behind it. encoded_size() (hence every encode path)
  // must reject it up front.
  const KVCodec key_hinted{KVHint::string_key_u64_value()};
  const std::string poisoned = std::string("ab\0cd", 5);
  EXPECT_THROW(key_hinted.encoded_size(poisoned, std::string(8, 'v')),
               mutil::UsageError);

  const KVCodec value_hinted{{KVHint::kVariable, KVHint::kString}};
  EXPECT_THROW(value_hinted.encoded_size("key", poisoned),
               mutil::UsageError);

  // Binary data is fine under hints that can represent it.
  const KVCodec variable{KVHint::variable()};
  std::vector<std::byte> buf(variable.encoded_size(poisoned, poisoned));
  variable.encode(buf.data(), poisoned, poisoned);
  std::size_t consumed = 0;
  const KVView kv = variable.decode(buf.data(), &consumed);
  EXPECT_EQ(kv.key, poisoned);
  EXPECT_EQ(kv.value, poisoned);

  // And NUL-free strings still round-trip under the string hint.
  std::vector<std::byte> ok(key_hinted.encoded_size("abcd",
                                                    std::string(8, 'v')));
  EXPECT_EQ(ok.size(), 4u + 1 + 8);
}

TEST(Codec, ForEachWalksAStream) {
  const KVCodec codec{KVHint::variable()};
  std::vector<std::byte> buf;
  for (int i = 0; i < 10; ++i) {
    const std::string key = "k" + std::to_string(i);
    const std::string value(static_cast<std::size_t>(i), 'x');
    const std::size_t old = buf.size();
    buf.resize(old + codec.encoded_size(key, value));
    codec.encode(buf.data() + old, key, value);
  }
  int count = 0;
  codec.for_each(buf, [&](const KVView& kv) {
    EXPECT_EQ(kv.key, "k" + std::to_string(count));
    EXPECT_EQ(kv.value.size(), static_cast<std::size_t>(count));
    ++count;
  });
  EXPECT_EQ(count, 10);
}

TEST(Codec, BinaryValuesSurvive) {
  const KVCodec codec{KVHint::variable()};
  const std::uint64_t raw = 0x0011223344556677ULL;
  std::vector<std::byte> buf(codec.encoded_size("k", mimir::as_view(raw)));
  codec.encode(buf.data(), "k", mimir::as_view(raw));
  std::size_t consumed = 0;
  const KVView kv = codec.decode(buf.data(), &consumed);
  EXPECT_EQ(mimir::as_u64(kv.value), raw);
}

TEST(Codec, EmptyKeyAndValueAllowedWhenVariable) {
  const KVCodec codec{KVHint::variable()};
  std::vector<std::byte> buf(codec.encoded_size("", ""));
  EXPECT_EQ(buf.size(), 8u);
  codec.encode(buf.data(), "", "");
  std::size_t consumed = 0;
  const KVView kv = codec.decode(buf.data(), &consumed);
  EXPECT_TRUE(kv.key.empty());
  EXPECT_TRUE(kv.value.empty());
}

}  // namespace
