#include "mimir/checkpoint.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "mutil/error.hpp"
#include "mutil/hash.hpp"
#include "simmpi/runtime.hpp"

namespace {

using mimir::Emitter;
using mimir::Job;
using mimir::JobConfig;
using mimir::KVContainer;
using mimir::KVHint;
using mimir::KVView;
using simmpi::Context;

void sum_reduce(std::string_view key, mimir::ValueReader& values,
                Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, total);
}

TEST(Checkpoint, ContainerRoundTrips) {
  simmpi::run_test(3, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 512);
    for (int i = 0; i < 50; ++i) {
      kvc.append("r" + std::to_string(ctx.rank()) + "k" + std::to_string(i),
                 "value" + std::to_string(i));
    }
    mimir::save_container(ctx, kvc, "trip");
    EXPECT_TRUE(mimir::checkpoint_exists(ctx, "trip"));

    const KVContainer loaded = mimir::load_container(ctx, "trip", 512);
    EXPECT_EQ(loaded.num_kvs(), kvc.num_kvs());
    EXPECT_EQ(loaded.data_bytes(), kvc.data_bytes());
    std::map<std::string, std::string> original, restored;
    kvc.scan([&](const KVView& kv) {
      original[std::string(kv.key)] = std::string(kv.value);
    });
    loaded.scan([&](const KVView& kv) {
      restored[std::string(kv.key)] = std::string(kv.value);
    });
    EXPECT_EQ(original, restored);
  });
}

TEST(Checkpoint, PreservesHint) {
  simmpi::run_test(1, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 512, KVHint::string_key_u64_value());
    kvc.append("word", mimir::as_view(std::uint64_t{7}));
    mimir::save_container(ctx, kvc, "hinted");
    const KVContainer loaded = mimir::load_container(ctx, "hinted", 512);
    EXPECT_EQ(loaded.codec().hint(), KVHint::string_key_u64_value());
    loaded.scan([](const KVView& kv) {
      EXPECT_EQ(kv.key, "word");
      EXPECT_EQ(mimir::as_u64(kv.value), 7u);
    });
  });
}

TEST(Checkpoint, MissingCheckpointDetectedAndThrows) {
  simmpi::run_test(2, [](Context& ctx) {
    EXPECT_FALSE(mimir::checkpoint_exists(ctx, "never-saved"));
  });
  EXPECT_THROW(
      simmpi::run_test(1,
                       [](Context& ctx) {
                         (void)mimir::load_container(ctx, "never-saved",
                                                     512);
                       }),
      mutil::IoError);
}

TEST(Checkpoint, WorldSizeMismatchRejected) {
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 4);
  simmpi::run(2, machine, fs, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 512);
    kvc.append("k", "v");
    mimir::save_container(ctx, kvc, "sized");
  });
  EXPECT_THROW(simmpi::run(4, machine, fs,
                           [](Context& ctx) {
                             (void)mimir::load_container(ctx, "sized", 512);
                           }),
               mutil::IoError);
}

TEST(Checkpoint, RemoveDeletesShards) {
  simmpi::run_test(2, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 512);
    kvc.append("k", "v");
    mimir::save_container(ctx, kvc, "gone");
    EXPECT_TRUE(mimir::checkpoint_exists(ctx, "gone"));
    mimir::remove_checkpoint(ctx, "gone");
    EXPECT_FALSE(mimir::checkpoint_exists(ctx, "gone"));
  });
}

TEST(Checkpoint, FailAfterMapThenResumeMatchesUninterruptedRun) {
  // The fault-tolerance scenario: a job checkpoints after the expensive
  // map+aggregate, "fails" during reduce, and a second incarnation
  // resumes from the checkpoint. Results must match an uninterrupted
  // run exactly.
  constexpr int kRanks = 4;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);

  const auto produce = [](Context& ctx, Emitter& out) {
    for (int i = 0; i < 400; ++i) {
      out.emit("g" + std::to_string((i * 13 + ctx.rank()) % 37),
               std::uint64_t{1});
    }
  };
  const auto collect = [](Context& ctx, Job& job) {
    std::uint64_t digest = 0;
    job.output().scan([&](const KVView& kv) {
      digest += mutil::hash_bytes(kv.key) * mimir::as_u64(kv.value);
    });
    return ctx.comm.allreduce_u64(digest, simmpi::Op::kSum);
  };

  // Uninterrupted reference run.
  std::uint64_t expected = 0;
  simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
    Job job(ctx, {});
    job.map_custom([&](Emitter& out) { produce(ctx, out); });
    job.reduce(sum_reduce);
    const auto digest = collect(ctx, job);
    if (ctx.rank() == 0) expected = digest;
  });

  // Run 1: map, checkpoint, then die mid-reduce.
  EXPECT_THROW(
      simmpi::run(kRanks, machine, fs,
                  [&](Context& ctx) {
                    Job job(ctx, {});
                    job.map_custom(
                        [&](Emitter& out) { produce(ctx, out); });
                    mimir::checkpoint_job(job, "wc");
                    throw mutil::Error("injected node failure");
                  }),
      mutil::Error);

  // Run 2: resume from the checkpoint; no map phase re-executed.
  std::uint64_t resumed_digest = 0;
  simmpi::run(kRanks, machine, fs, [&](Context& ctx) {
    ASSERT_TRUE(mimir::checkpoint_exists(ctx, "wc"));
    Job job = mimir::resume_job(ctx, {}, "wc");
    job.reduce(sum_reduce);
    const auto digest = collect(ctx, job);
    if (ctx.rank() == 0) resumed_digest = digest;
  });
  EXPECT_EQ(resumed_digest, expected);
}

TEST(Checkpoint, ResumedJobSupportsPartialReduce) {
  simmpi::run_test(2, [](Context& ctx) {
    Job job(ctx, {});
    job.map_custom([&](Emitter& out) {
      for (int i = 0; i < 100; ++i) out.emit("key", std::uint64_t{1});
    });
    mimir::checkpoint_job(job, "pr");
    Job again = mimir::resume_job(ctx, {}, "pr");
    again.partial_reduce([](std::string_view, std::string_view a,
                            std::string_view b, std::string& out) {
      out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
    });
    std::uint64_t local = 0;
    again.output().scan(
        [&](const KVView& kv) { local += mimir::as_u64(kv.value); });
    EXPECT_EQ(ctx.comm.allreduce_u64(local, simmpi::Op::kSum), 200u);
  });
}

TEST(Checkpoint, IoChargedToSimulatedClock) {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 0.01;
  pfs::FileSystem fs(machine, 1);
  simmpi::run(1, machine, fs, [](Context& ctx) {
    KVContainer kvc(ctx.tracker, 512);
    for (int i = 0; i < 20; ++i) kvc.append("k" + std::to_string(i), "v");
    const double before = ctx.clock().now();
    mimir::save_container(ctx, kvc, "cost");
    EXPECT_GT(ctx.clock().now(), before + 0.01);
  });
}

}  // namespace
