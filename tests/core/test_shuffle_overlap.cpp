// Overlapped (double-buffered, non-blocking) shuffle: bit-identity of
// results against the blocking mode, the charged == usable buffer-size
// regression (prime comm-buffer sizes), the zero-emit-rank finalize
// drain, and edge geometries (single-rank communicator, a KV of exactly
// one partition capacity, comm buffers smaller than a cache line) —
// each under both mimir.overlap settings and under the race detector.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/report.hpp"
#include "mimir/containers.hpp"
#include "mimir/job.hpp"
#include "mimir/shuffle.hpp"
#include "mutil/config.hpp"
#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"

namespace {

using mimir::KVContainer;
using mimir::KVHint;
using mimir::KVView;
using mimir::Shuffle;
using simmpi::Context;

check::CheckConfig race_config() {
  check::CheckConfig cfg;
  cfg.race = true;
  return cfg;
}

/// Runs `body` bare, then once per overlap setting under the race
/// detector, asserting the detector stays silent each time.
template <typename Fn>
void run_all_modes(int nranks, const Fn& body) {
  for (const bool overlap : {false, true}) {
    simmpi::run_test(nranks,
                     [&](Context& ctx) { body(ctx, overlap); });
    check::Report report;
    check::JobChecker checker(report, race_config());
    simmpi::run_test(
        nranks, [&](Context& ctx) { body(ctx, overlap); }, nullptr,
        &checker);
    EXPECT_TRUE(report.empty())
        << "overlap=" << overlap << "\n"
        << report.text();
  }
}

TEST(ShuffleOverlap, ConfigKnobReachesTheShuffle) {
  mutil::Config cfg;
  cfg.set("mimir.overlap", "1");
  EXPECT_TRUE(mimir::JobConfig::from(cfg).overlap);
  cfg.set("mimir.overlap", "0");
  EXPECT_FALSE(mimir::JobConfig::from(cfg).overlap);
  EXPECT_FALSE(mimir::JobConfig{}.overlap);
}

TEST(ShuffleOverlap, BitIdenticalIntermediateAcrossModes) {
  auto run_once = [](bool overlap) {
    auto per_rank =
        std::make_shared<std::vector<std::vector<std::string>>>(4);
    simmpi::run_test(4, [&](Context& ctx) {
      KVContainer dest(ctx.tracker, 4096);
      Shuffle shuffle(ctx, 128, {}, dest, {}, overlap);
      for (int i = 0; i < 500; ++i) {
        shuffle.emit("key" + std::to_string((ctx.rank() * 500 + i) % 61),
                     "v" + std::to_string(i));
      }
      shuffle.finalize();
      auto& mine = (*per_rank)[static_cast<std::size_t>(ctx.rank())];
      dest.scan([&](const KVView& kv) {
        mine.push_back(std::string(kv.key) + "=" + std::string(kv.value));
      });
    });
    return *per_rank;
  };
  const auto blocking = run_once(false);
  const auto overlapped = run_once(true);
  EXPECT_EQ(blocking, overlapped);
  std::size_t total = 0;
  for (const auto& rank : blocking) total += rank.size();
  EXPECT_EQ(total, 2000u);
}

// Regression: part_cap_ = comm_buffer / nranks used to leave
// comm_buffer % nranks bytes charged but unusable (past the last
// partition). The buffers must charge exactly what the partitions can
// hold — visible at a prime comm-buffer size.
TEST(ShuffleOverlap, PrimeCommBufferChargesExactlyUsableBytes) {
  constexpr std::uint64_t kPrime = 1031;
  constexpr int kRanks = 4;
  for (const bool overlap : {false, true}) {
    simmpi::run_test(kRanks, [&](Context& ctx) {
      const std::uint64_t base = ctx.tracker.current();
      KVContainer dest(ctx.tracker, 4096);
      const std::uint64_t with_dest = ctx.tracker.current();
      Shuffle shuffle(ctx, kPrime, {}, dest, {}, overlap);
      const std::uint64_t part_cap = kPrime / kRanks;
      EXPECT_EQ(shuffle.partition_capacity(), part_cap);
      const std::uint64_t usable = part_cap * kRanks;
      const std::uint64_t buffers = overlap ? 3 * usable : 2 * usable;
      EXPECT_EQ(ctx.tracker.current() - with_dest, buffers)
          << "overlap=" << overlap;
      const auto it = ctx.tracker.tags().find("shuffle");
      ASSERT_NE(it, ctx.tracker.tags().end());
      EXPECT_EQ(it->second.current, buffers);
      shuffle.finalize();
      (void)base;
    });
  }
}

// One rank emits nothing and calls finalize immediately; a peer emits
// enough for several mid-map rounds. The zero-emit rank must keep
// participating (neither hanging nor leaving early) until the peer's
// flush round votes done, in both modes.
TEST(ShuffleOverlap, ZeroEmitRankDrainsPeersRounds) {
  run_all_modes(3, [](Context& ctx, bool overlap) {
    KVContainer dest(ctx.tracker, 8192);
    // 96-byte buffer -> 32-byte partitions; rank 1 routes ~3 KB through
    // them, forcing well over three rounds.
    Shuffle shuffle(ctx, 96, {}, dest, {}, overlap);
    if (ctx.rank() == 1) {
      for (int i = 0; i < 200; ++i) {
        shuffle.emit("k" + std::to_string(i), "value");
      }
    }
    shuffle.finalize();
    EXPECT_GT(shuffle.rounds(), 3u);
    const auto total =
        ctx.comm.allreduce_u64(dest.num_kvs(), simmpi::Op::kSum);
    EXPECT_EQ(total, 200u);
    // Every rank participates in every round: round counts agree.
    const auto max_rounds =
        ctx.comm.allreduce_u64(shuffle.rounds(), simmpi::Op::kMax);
    EXPECT_EQ(max_rounds, shuffle.rounds());
  });
}

TEST(ShuffleOverlap, SingleRankCommunicator) {
  run_all_modes(1, [](Context& ctx, bool overlap) {
    KVContainer dest(ctx.tracker, 4096);
    Shuffle shuffle(ctx, 64, {}, dest, {}, overlap);
    for (int i = 0; i < 50; ++i) {
      shuffle.emit("key" + std::to_string(i), "v");
    }
    shuffle.finalize();
    EXPECT_EQ(dest.num_kvs(), 50u);
  });
}

TEST(ShuffleOverlap, KvOfExactlyPartitionCapacity) {
  // Fixed 8+8 hint: every KV encodes to exactly 16 bytes = part_cap_
  // (comm_buffer 32, 2 ranks). The overflow check is strict-greater, so
  // each KV fills its partition exactly and ships one KV per round.
  run_all_modes(2, [](Context& ctx, bool overlap) {
    const KVHint hint{8, 8};
    KVContainer dest(ctx.tracker, 4096, hint);
    Shuffle shuffle(ctx, 32, hint, dest, {}, overlap);
    EXPECT_EQ(shuffle.partition_capacity(), 16u);
    for (int i = 0; i < 20; ++i) {
      const std::string key = "key" + std::to_string(1000 + i);  // 7 ch
      shuffle.emit(key + "x", "8bytes!!");
    }
    shuffle.finalize();
    const auto total =
        ctx.comm.allreduce_u64(dest.num_kvs(), simmpi::Op::kSum);
    EXPECT_EQ(total, 40u);
  });
}

TEST(ShuffleOverlap, CommBufferSmallerThanACacheLine) {
  // 8-byte comm buffer, 2 ranks -> 4-byte partitions; fixed 1+1 hint
  // keeps each KV at 2 encoded bytes.
  run_all_modes(2, [](Context& ctx, bool overlap) {
    const KVHint hint{1, 1};
    KVContainer dest(ctx.tracker, 4096, hint);
    Shuffle shuffle(ctx, 8, hint, dest, {}, overlap);
    EXPECT_EQ(shuffle.partition_capacity(), 4u);
    for (int i = 0; i < 26; ++i) {
      const char c = static_cast<char>('a' + i);
      shuffle.emit({&c, 1}, {&c, 1});
    }
    shuffle.finalize();
    const auto total =
        ctx.comm.allreduce_u64(dest.num_kvs(), simmpi::Op::kSum);
    EXPECT_EQ(total, 52u);
  });
}

TEST(ShuffleOverlap, OversizedKvStillThrows) {
  for (const bool overlap : {false, true}) {
    EXPECT_THROW(
        simmpi::run_test(2,
                         [&](Context& ctx) {
                           KVContainer dest(ctx.tracker, 4096);
                           Shuffle shuffle(ctx, 16, {}, dest, {}, overlap);
                           shuffle.emit("a-key-larger-than-8-bytes",
                                        "and-a-long-value");
                           shuffle.finalize();
                         }),
        mutil::UsageError);
  }
}

}  // namespace
