#include "apps/pagerank.hpp"

#include <gtest/gtest.h>

namespace {

using apps::pr::RunOptions;

TEST(PageRank, ReferenceConservesRankMass) {
  RunOptions opts;
  opts.scale = 8;
  opts.iterations = 5;
  const auto ref = apps::pr::reference(opts);
  EXPECT_NEAR(ref.total_rank, 1.0, 1e-9);
  EXPECT_GT(ref.max_rank, 1.0 / (1 << 8))
      << "hubs must rank above the uniform value";
}

TEST(PageRank, HubsOutrankLeaves) {
  RunOptions opts;
  opts.scale = 8;
  opts.iterations = 10;
  const auto ranks = apps::pr::reference_ranks(opts);
  // Vertex 0 is the densest R-MAT corner; it should be near the top.
  std::size_t better = 0;
  for (const auto& [v, r] : ranks) {
    if (r > ranks.at(0)) ++better;
  }
  EXPECT_LT(better, ranks.size() / 100);
}

struct PrCase {
  bool mrmpi;
  bool hint;
  bool cps;
  int ranks;
  const char* name;
};

class PageRankFrameworks : public ::testing::TestWithParam<PrCase> {};

TEST_P(PageRankFrameworks, MatchesSerialReference) {
  const PrCase c = GetParam();
  RunOptions opts;
  opts.scale = 8;
  opts.edge_factor = 8;
  opts.iterations = 6;
  opts.page_size = 32 << 10;
  opts.comm_buffer = 32 << 10;
  opts.hint = c.hint;
  opts.cps = c.cps;
  const auto ref = apps::pr::reference(opts);

  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, c.ranks);
  simmpi::run(c.ranks, machine, fs, [&](simmpi::Context& ctx) {
    const auto result = c.mrmpi ? apps::pr::run_mrmpi(ctx, opts)
                                : apps::pr::run_mimir(ctx, opts);
    // Floating-point sums are order-sensitive across rank counts; the
    // tolerance covers reassociation, not algorithmic drift.
    EXPECT_NEAR(result.total_rank, ref.total_rank, 1e-9);
    EXPECT_NEAR(result.max_rank, ref.max_rank, 1e-12);
    EXPECT_EQ(result.max_vertex, ref.max_vertex);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, PageRankFrameworks,
    ::testing::Values(PrCase{false, false, false, 1, "mimir_serial"},
                      PrCase{false, false, false, 4, "mimir_base"},
                      PrCase{false, true, false, 4, "mimir_hint"},
                      PrCase{false, true, true, 4, "mimir_hint_cps"},
                      PrCase{true, false, false, 3, "mrmpi_base"},
                      PrCase{true, false, true, 3, "mrmpi_cps"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(PageRank, OverlappedShuffleIsBitIdentical) {
  // Floating-point makes bit-identity the strictest possible check:
  // the overlapped shuffle delivers the same bytes in the same order,
  // so every double comes out of an identical reduction sequence and
  // exact == must hold between the two modes.
  RunOptions opts;
  opts.scale = 8;
  opts.edge_factor = 8;
  opts.iterations = 6;
  opts.page_size = 32 << 10;
  opts.comm_buffer = 4 << 10;

  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 4);
  apps::pr::Result results[2];
  for (const bool overlap : {false, true}) {
    opts.overlap = overlap;
    simmpi::run(4, machine, fs, [&](simmpi::Context& ctx) {
      const auto result = apps::pr::run_mimir(ctx, opts);
      if (ctx.rank() == 0) results[overlap ? 1 : 0] = result;
    });
  }
  EXPECT_EQ(results[0].total_rank, results[1].total_rank);
  EXPECT_EQ(results[0].max_rank, results[1].max_rank);
  EXPECT_EQ(results[0].max_vertex, results[1].max_vertex);
  EXPECT_EQ(results[0].last_delta, results[1].last_delta);
}

TEST(PageRank, PerVertexValuesMatchReference) {
  RunOptions opts;
  opts.scale = 7;
  opts.edge_factor = 8;
  opts.iterations = 4;
  const auto ref = apps::pr::reference_ranks(opts);

  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, 4);
  simmpi::run(4, machine, fs, [&](simmpi::Context& ctx) {
    // Re-run and compare every owned vertex against the reference by
    // recomputing through the public API (run_mimir reports aggregates,
    // so we check the aggregate derived from ref instead).
    const auto result = apps::pr::run_mimir(ctx, opts);
    double expected_total = 0;
    for (const auto& [v, r] : ref) expected_total += r;
    EXPECT_NEAR(result.total_rank, expected_total, 1e-9);
  });
}

TEST(PageRank, DampingOneConcentratesOnCycles) {
  // Sanity: with damping ~1 and enough iterations, total mass is still
  // conserved (dangling redistribution keeps the chain stochastic).
  RunOptions opts;
  opts.scale = 6;
  opts.iterations = 20;
  opts.damping = 0.99;
  const auto ref = apps::pr::reference(opts);
  EXPECT_NEAR(ref.total_rank, 1.0, 1e-9);
}

}  // namespace
