#include "apps/bfs.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/vertex_map.hpp"

namespace {

using apps::bfs::RunOptions;

TEST(VertexMapTest, InsertFindGrow) {
  memtrack::Tracker tracker;
  apps::VertexMap<std::uint64_t> map(tracker, 16);
  for (std::uint64_t v = 0; v < 1000; ++v) {
    EXPECT_TRUE(map.insert_if_absent(v, v * 10));
  }
  EXPECT_EQ(map.size(), 1000u);
  for (std::uint64_t v = 0; v < 1000; ++v) {
    EXPECT_FALSE(map.insert_if_absent(v, 0)) << "duplicate must not insert";
    EXPECT_EQ(map.find(v).value(), v * 10) << "value must be preserved";
  }
  EXPECT_FALSE(map.find(5000).has_value());
  EXPECT_GT(tracker.current(), 0u);
}

TEST(VertexMapTest, PutOverwritesAndForEachVisitsAll) {
  memtrack::Tracker tracker;
  apps::VertexMap<std::uint32_t> map(tracker);
  map.put(1, 10);
  map.put(1, 20);
  map.put(2, 30);
  EXPECT_EQ(map.size(), 2u);
  std::map<std::uint64_t, std::uint32_t> seen;
  map.for_each([&](std::uint64_t v, std::uint32_t x) { seen[v] = x; });
  EXPECT_EQ(seen.at(1), 20u);
  EXPECT_EQ(seen.at(2), 30u);
}

TEST(Kronecker, DeterministicAndInRange) {
  for (std::uint64_t e = 0; e < 1000; ++e) {
    const auto [u, v] = apps::bfs::kronecker_edge(10, 3, e);
    EXPECT_LT(u, 1u << 10);
    EXPECT_LT(v, 1u << 10);
    const auto again = apps::bfs::kronecker_edge(10, 3, e);
    EXPECT_EQ(again.first, u);
    EXPECT_EQ(again.second, v);
  }
}

TEST(Kronecker, PowerLawDegrees) {
  // Scale-free: a small set of hub vertices should hold a large share of
  // edge endpoints.
  constexpr int kScale = 10;
  constexpr std::uint64_t kEdges = 16u << kScale;
  std::map<std::uint64_t, std::uint64_t> degree;
  for (std::uint64_t e = 0; e < kEdges; ++e) {
    const auto [u, v] = apps::bfs::kronecker_edge(kScale, 3, e);
    ++degree[u];
    ++degree[v];
  }
  std::vector<std::uint64_t> degrees;
  degrees.reserve(degree.size());
  for (const auto& [v, d] : degree) degrees.push_back(d);
  std::sort(degrees.rbegin(), degrees.rend());
  std::uint64_t top16 = 0, total = 0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    if (i < 16) top16 += degrees[i];
    total += degrees[i];
  }
  EXPECT_GT(top16 * 10, total)
      << "top 16 vertices should hold >10% of endpoints";
}

TEST(Bfs, ReferenceReachesMostOfTheGraph) {
  RunOptions opts;
  opts.scale = 8;
  const auto ref = apps::bfs::reference(opts);
  EXPECT_GT(ref.visited, (1u << 8) / 4);
  EXPECT_GT(ref.levels, 1u);
}

struct BfsCase {
  bool mrmpi;
  bool hint;
  bool cps;
  int ranks;
  const char* name;
};

class BfsFrameworks : public ::testing::TestWithParam<BfsCase> {};

TEST_P(BfsFrameworks, MatchesSerialReference) {
  const BfsCase c = GetParam();
  RunOptions opts;
  opts.scale = 8;
  opts.edge_factor = 8;
  opts.page_size = 32 << 10;
  opts.comm_buffer = 32 << 10;
  opts.hint = c.hint;
  opts.cps = c.cps;
  const auto ref = apps::bfs::reference(opts);

  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, c.ranks);
  simmpi::run(c.ranks, machine, fs, [&](simmpi::Context& ctx) {
    const auto result = c.mrmpi ? apps::bfs::run_mrmpi(ctx, opts)
                                : apps::bfs::run_mimir(ctx, opts);
    EXPECT_EQ(result.visited, ref.visited);
    EXPECT_EQ(result.levels, ref.levels);
    EXPECT_EQ(result.checksum, ref.checksum);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, BfsFrameworks,
    ::testing::Values(BfsCase{false, false, false, 1, "mimir_serial"},
                      BfsCase{false, false, false, 4, "mimir_base"},
                      BfsCase{false, true, false, 4, "mimir_hint"},
                      BfsCase{false, true, true, 4, "mimir_hint_cps"},
                      BfsCase{true, false, false, 4, "mrmpi_base"},
                      BfsCase{true, false, true, 4, "mrmpi_cps"},
                      BfsCase{false, false, false, 5, "mimir_p5"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(Bfs, CompressionReducesPartitionKvCount) {
  // Kronecker graphs have many duplicate / hub edges, so concatenating
  // combiners shrink the number of shuffled KVs.
  constexpr int kRanks = 2;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);
  RunOptions opts;
  opts.scale = 8;
  opts.edge_factor = 8;

  std::uint64_t kvs_plain = 0, kvs_cps = 0;
  for (const bool cps : {false, true}) {
    simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
      mimir::JobConfig cfg;
      cfg.kv_compression = cps;
      mimir::Job job(ctx, cfg);
      const mimir::CombineFn concat =
          [](std::string_view, std::string_view a, std::string_view b,
             std::string& out) {
            out.assign(a);
            out.append(b);
          };
      job.map_custom(
          [&](mimir::Emitter& out) {
            const std::uint64_t edges = opts.num_edges();
            const auto r = static_cast<std::uint64_t>(ctx.rank());
            const auto p = static_cast<std::uint64_t>(ctx.size());
            for (std::uint64_t e = edges * r / p;
                 e < edges * (r + 1) / p; ++e) {
              const auto [u, v] =
                  apps::bfs::kronecker_edge(opts.scale, opts.seed, e);
              const std::string_view uv = mimir::as_view(u);
              const std::string_view vv = mimir::as_view(v);
              out.emit(uv, vv);
              out.emit(vv, uv);
            }
          },
          cps ? concat : mimir::CombineFn{});
      const auto sent = ctx.comm.allreduce_u64(
          job.metrics().map_emitted_kvs, simmpi::Op::kSum);
      if (ctx.rank() == 0) (cps ? kvs_cps : kvs_plain) = sent;
    });
  }
  EXPECT_LT(kvs_cps, kvs_plain / 2);
}

}  // namespace
