#include "apps/sort.hpp"

#include <gtest/gtest.h>

namespace {

using apps::sort::RunOptions;

TEST(SampleSort, KeysAreDeterministic) {
  EXPECT_EQ(apps::sort::record_key(17, 5), apps::sort::record_key(17, 5));
  EXPECT_NE(apps::sort::record_key(17, 5), apps::sort::record_key(18, 5));
}

struct SortCase {
  bool mrmpi;
  int ranks;
  std::uint64_t records;
  const char* name;
};

class SampleSortFrameworks : public ::testing::TestWithParam<SortCase> {};

TEST_P(SampleSortFrameworks, ProducesGlobalOrder) {
  const SortCase c = GetParam();
  RunOptions opts;
  opts.num_records = c.records;
  const std::uint64_t expected = apps::sort::reference_checksum(opts);

  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, c.ranks);
  simmpi::run(c.ranks, machine, fs, [&](simmpi::Context& ctx) {
    const auto result = c.mrmpi ? apps::sort::run_mrmpi(ctx, opts)
                                : apps::sort::run_mimir(ctx, opts);
    EXPECT_TRUE(result.globally_sorted);
    EXPECT_EQ(result.records, opts.num_records)
        << "no record may be lost or duplicated";
    EXPECT_EQ(result.checksum, expected);
    // Sampling should keep ranks within a reasonable factor of ideal.
    EXPECT_LT(result.imbalance, 3.0);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SampleSortFrameworks,
    ::testing::Values(SortCase{false, 1, 1 << 10, "mimir_serial"},
                      SortCase{false, 4, 1 << 14, "mimir_p4"},
                      SortCase{false, 7, 1 << 14, "mimir_p7"},
                      SortCase{true, 4, 1 << 13, "mrmpi_p4"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(SampleSort, RangePartitionBeatsHashForOrdering) {
  // Sanity check of the mechanism: with the default hash partitioner
  // the ranges interleave, so a hash-shuffled job is NOT globally
  // ordered — the custom partitioner is what makes sorting work.
  constexpr int kRanks = 4;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);
  simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
    mimir::Job job(ctx, {});
    job.map_custom([&](mimir::Emitter& out) {
      for (std::uint64_t i = ctx.rank(); i < 2000;
           i += static_cast<std::uint64_t>(ctx.size())) {
        const std::uint64_t key = apps::sort::record_key(1, i);
        out.emit({reinterpret_cast<const char*>(&key), 8}, "x");
      }
    });
    std::uint64_t my_min = ~0ULL, my_max = 0;
    job.intermediate().scan([&](const mimir::KVView& kv) {
      const std::uint64_t k = mimir::as_u64(kv.key);
      my_min = std::min(my_min, k);
      my_max = std::max(my_max, k);
    });
    const auto mins = ctx.comm.allgather_u64(my_min);
    const auto maxs = ctx.comm.allgather_u64(my_max);
    bool ordered = true;
    for (std::size_t r = 1; r < mins.size(); ++r) {
      if (mins[r] < maxs[r - 1]) ordered = false;
    }
    EXPECT_FALSE(ordered) << "hash routing must interleave key ranges";
  });
}

TEST(SampleSort, PartitionerValidation) {
  // A partitioner returning a bad rank must be rejected loudly.
  EXPECT_THROW(
      simmpi::run_test(2,
                       [](simmpi::Context& ctx) {
                         mimir::JobConfig cfg;
                         cfg.partitioner = [](std::string_view, int) {
                           return 99;
                         };
                         mimir::Job job(ctx, cfg);
                         job.map_custom([](mimir::Emitter& out) {
                           out.emit("k", "v");
                         });
                       }),
      mutil::UsageError);
}

}  // namespace
