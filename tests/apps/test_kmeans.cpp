#include "apps/kmeans.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using apps::km::RunOptions;

TEST(KMeans, BlobPointsAreDeterministic) {
  RunOptions opts;
  const auto a = apps::km::blob_point(opts, 42);
  const auto b = apps::km::blob_point(opts, 42);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  EXPECT_EQ(a.z, b.z);
}

TEST(KMeans, ReferenceRecoversBlobs) {
  RunOptions opts;
  opts.num_points = 1 << 12;
  opts.clusters = 6;
  const auto ref = apps::km::reference(opts);
  ASSERT_EQ(ref.centroids.size(), 6u);
  // Well-separated blobs: every cluster keeps ~1/6 of the points and the
  // average within-cluster distance is on the order of sigma.
  std::uint64_t total = 0;
  for (const auto n : ref.counts) {
    EXPECT_GT(n, (1u << 12) / 12);
    total += n;
  }
  EXPECT_EQ(total, 1u << 12);
  EXPECT_LT(ref.inertia / static_cast<double>(total),
            10 * opts.blob_sigma * opts.blob_sigma);
  // Converged: last centroid shift negligible.
  EXPECT_LT(ref.last_shift, 1e-6);
}

struct KmCase {
  bool mrmpi;
  bool pr;
  bool cps;
  int ranks;
  const char* name;
};

class KMeansFrameworks : public ::testing::TestWithParam<KmCase> {};

TEST_P(KMeansFrameworks, MatchesSerialReference) {
  const KmCase c = GetParam();
  RunOptions opts;
  opts.num_points = 1 << 12;
  opts.clusters = 5;
  opts.iterations = 8;
  opts.pr = c.pr;
  opts.cps = c.cps;
  const auto ref = apps::km::reference(opts);

  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, c.ranks);
  simmpi::run(c.ranks, machine, fs, [&](simmpi::Context& ctx) {
    const auto result = c.mrmpi ? apps::km::run_mrmpi(ctx, opts)
                                : apps::km::run_mimir(ctx, opts);
    ASSERT_EQ(result.centroids.size(), ref.centroids.size());
    for (std::size_t k = 0; k < ref.centroids.size(); ++k) {
      EXPECT_NEAR(result.centroids[k].x, ref.centroids[k].x, 1e-9);
      EXPECT_NEAR(result.centroids[k].y, ref.centroids[k].y, 1e-9);
      EXPECT_NEAR(result.centroids[k].z, ref.centroids[k].z, 1e-9);
      EXPECT_EQ(result.counts[k], ref.counts[k]);
    }
    EXPECT_NEAR(result.inertia, ref.inertia, 1e-9);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, KMeansFrameworks,
    ::testing::Values(KmCase{false, true, false, 1, "mimir_serial"},
                      KmCase{false, true, false, 4, "mimir_pr"},
                      KmCase{false, false, false, 4, "mimir_reduce"},
                      KmCase{false, true, true, 4, "mimir_pr_cps"},
                      KmCase{true, false, false, 3, "mrmpi"},
                      KmCase{true, false, true, 3, "mrmpi_cps"}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
