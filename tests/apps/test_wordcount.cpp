#include "apps/wordcount.hpp"

#include <gtest/gtest.h>

#include "mutil/hash.hpp"

namespace {

using apps::wc::GenOptions;
using apps::wc::RunOptions;

simtime::MachineProfile test_machine() {
  return simtime::MachineProfile::test_profile();
}

/// Compute the reference checksum the drivers should reproduce.
std::uint64_t reference_checksum(pfs::FileSystem& fs,
                                 const std::vector<std::string>& files,
                                 std::uint64_t* total,
                                 std::uint64_t* unique) {
  const auto counts = apps::wc::reference_counts(fs, files);
  std::uint64_t checksum = 0;
  *total = 0;
  *unique = counts.size();
  for (const auto& [word, count] : counts) {
    checksum += mutil::hash_bytes(word) * count;
    *total += count;
  }
  return checksum;
}

TEST(WcGenerators, UniformProducesRequestedVolume) {
  auto machine = test_machine();
  pfs::FileSystem fs(machine, 1);
  GenOptions gen;
  gen.total_bytes = 64 << 10;
  gen.num_files = 4;
  const auto files = apps::wc::generate_uniform(fs, "wc", gen);
  ASSERT_EQ(files.size(), 4u);
  std::uint64_t total = 0;
  for (const auto& f : files) total += fs.file_size(f);
  EXPECT_NEAR(static_cast<double>(total), 64 << 10, 4096);
}

TEST(WcGenerators, UniformIsDeterministic) {
  auto machine = test_machine();
  pfs::FileSystem fs(machine, 1);
  GenOptions gen;
  gen.total_bytes = 8 << 10;
  apps::wc::generate_uniform(fs, "a", gen);
  apps::wc::generate_uniform(fs, "b", gen);
  simtime::Clock clock;
  EXPECT_EQ(fs.read_file("a/part0", clock), fs.read_file("b/part0", clock));
}

TEST(WcGenerators, WikipediaIsSkewed) {
  auto machine = test_machine();
  pfs::FileSystem fs(machine, 1);
  GenOptions gen;
  gen.total_bytes = 256 << 10;
  const auto files = apps::wc::generate_wikipedia(fs, "wiki", gen);
  const auto counts = apps::wc::reference_counts(fs, files);
  std::uint64_t total = 0, top = 0;
  for (const auto& [word, count] : counts) {
    total += count;
    top = std::max(top, count);
  }
  // Zipf 1.05: the most frequent word should dominate far beyond a
  // uniform share.
  EXPECT_GT(top * counts.size(), total * 5)
      << "top word must be many times the mean frequency";
}

TEST(WcGenerators, UniformIsNotSkewed) {
  auto machine = test_machine();
  pfs::FileSystem fs(machine, 1);
  GenOptions gen;
  gen.total_bytes = 256 << 10;
  gen.vocabulary = 512;
  const auto files = apps::wc::generate_uniform(fs, "uni", gen);
  const auto counts = apps::wc::reference_counts(fs, files);
  std::uint64_t total = 0, top = 0;
  for (const auto& [word, count] : counts) {
    total += count;
    top = std::max(top, count);
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(counts.size());
  EXPECT_LT(static_cast<double>(top), mean * 2.0);
}

struct WcCase {
  bool mrmpi;
  bool hint;
  bool pr;
  bool cps;
  const char* name;
};

class WcFrameworks : public ::testing::TestWithParam<WcCase> {};

TEST_P(WcFrameworks, MatchesSerialReference) {
  const WcCase c = GetParam();
  constexpr int kRanks = 4;
  auto machine = test_machine();
  pfs::FileSystem fs(machine, kRanks);
  GenOptions gen;
  gen.total_bytes = 96 << 10;
  gen.num_files = kRanks;
  const auto files = apps::wc::generate_wikipedia(fs, "wc", gen);

  std::uint64_t ref_total = 0, ref_unique = 0;
  const std::uint64_t ref_checksum =
      reference_checksum(fs, files, &ref_total, &ref_unique);

  simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
    RunOptions opts;
    opts.files = files;
    // Large enough that the hottest Zipf word's KMV fits an MR-MPI page
    // (MR-MPI cannot represent a KMV larger than one page).
    opts.page_size = 64 << 10;
    opts.comm_buffer = 16 << 10;
    opts.hint = c.hint;
    opts.pr = c.pr;
    opts.cps = c.cps;
    const auto result = c.mrmpi ? apps::wc::run_mrmpi(ctx, opts)
                                : apps::wc::run_mimir(ctx, opts);
    EXPECT_EQ(result.total_words, ref_total);
    EXPECT_EQ(result.unique_words, ref_unique);
    EXPECT_EQ(result.checksum, ref_checksum);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, WcFrameworks,
    ::testing::Values(WcCase{false, false, false, false, "mimir_base"},
                      WcCase{false, true, false, false, "mimir_hint"},
                      WcCase{false, true, true, false, "mimir_hint_pr"},
                      WcCase{false, true, true, true, "mimir_all"},
                      WcCase{true, false, false, false, "mrmpi_base"},
                      WcCase{true, false, false, true, "mrmpi_cps"}),
    [](const auto& param_info) { return param_info.param.name; });

TEST(WcOverlap, OverlappedShuffleIsBitIdentical) {
  // The overlapped (double-buffered, non-blocking) shuffle must change
  // only the timing model, never the answer: same totals, same checksum,
  // both equal to the serial reference. Zipf input keeps the partitions
  // skewed and the small comm buffer forces many exchange rounds.
  constexpr int kRanks = 4;
  auto machine = test_machine();
  pfs::FileSystem fs(machine, kRanks);
  GenOptions gen;
  gen.total_bytes = 96 << 10;
  gen.num_files = kRanks;
  const auto files = apps::wc::generate_wikipedia(fs, "wc_ov", gen);

  std::uint64_t ref_total = 0, ref_unique = 0;
  const std::uint64_t ref_checksum =
      reference_checksum(fs, files, &ref_total, &ref_unique);

  apps::wc::Result results[2];
  for (const bool overlap : {false, true}) {
    simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
      RunOptions opts;
      opts.files = files;
      opts.page_size = 64 << 10;
      opts.comm_buffer = 4 << 10;
      opts.overlap = overlap;
      const auto result = apps::wc::run_mimir(ctx, opts);
      if (ctx.rank() == 0) results[overlap ? 1 : 0] = result;
    });
  }
  EXPECT_EQ(results[0].total_words, results[1].total_words);
  EXPECT_EQ(results[0].unique_words, results[1].unique_words);
  EXPECT_EQ(results[0].checksum, results[1].checksum);
  EXPECT_EQ(results[1].total_words, ref_total);
  EXPECT_EQ(results[1].unique_words, ref_unique);
  EXPECT_EQ(results[1].checksum, ref_checksum);
}

TEST(WcMemory, MimirUsesLessPeakMemoryThanMrMpiInMemory) {
  // The paper's claim is about *in-memory* executions: when the dataset
  // fits MR-MPI's pages, MR-MPI still pays for all statically allocated
  // pages while Mimir's usage tracks live data.
  constexpr int kRanks = 4;
  auto machine = test_machine();
  machine.ranks_per_node = kRanks;
  pfs::FileSystem fs(machine, kRanks);
  GenOptions gen;
  gen.total_bytes = 128 << 10;
  gen.num_files = kRanks;
  const auto files = apps::wc::generate_uniform(fs, "wc", gen);

  RunOptions opts;
  opts.files = files;
  opts.page_size = 64 << 10;  // one rank's whole dataset fits a page
  opts.comm_buffer = 16 << 10;

  const auto mimir_stats = simmpi::run(
      kRanks, machine, fs,
      [&](simmpi::Context& ctx) { apps::wc::run_mimir(ctx, opts); });
  const auto mrmpi_stats = simmpi::run(
      kRanks, machine, fs,
      [&](simmpi::Context& ctx) { apps::wc::run_mrmpi(ctx, opts); });

  EXPECT_LT(mimir_stats.node_peak, mrmpi_stats.node_peak)
      << "the paper's headline claim: Mimir uses less memory";
}

TEST(WcHint, HintReducesIntermediateBytes) {
  // Reproduces the mechanism behind paper Figure 7 (~26 % KV size cut).
  constexpr int kRanks = 2;
  auto machine = test_machine();
  pfs::FileSystem fs(machine, kRanks);
  GenOptions gen;
  gen.total_bytes = 64 << 10;
  gen.num_files = kRanks;
  const auto files = apps::wc::generate_wikipedia(fs, "wc", gen);

  std::uint64_t bytes_plain = 0, bytes_hint = 0;
  for (const bool hint : {false, true}) {
    simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
      mimir::JobConfig cfg;
      cfg.page_size = 16 << 10;
      cfg.comm_buffer = 16 << 10;
      if (hint) cfg.hint = mimir::KVHint::string_key_u64_value();
      mimir::Job job(ctx, cfg);
      job.map_text_files(files, apps::wc::map_words);
      const auto total = ctx.comm.allreduce_u64(
          job.metrics().intermediate_bytes, simmpi::Op::kSum);
      if (ctx.rank() == 0) {
        (hint ? bytes_hint : bytes_plain) = total;
      }
    });
  }
  // Expect roughly the paper's ~26 % reduction; accept 15-40 %.
  EXPECT_LT(bytes_hint, bytes_plain * 0.85);
  EXPECT_GT(bytes_hint, bytes_plain * 0.60);
}

}  // namespace
