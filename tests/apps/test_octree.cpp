#include "apps/octree.hpp"

#include <gtest/gtest.h>

namespace {

using apps::oc::octant_code;
using apps::oc::Point;
using apps::oc::RunOptions;

TEST(Octree, MortonCodeBasics) {
  // Depth 1: each coordinate contributes one bit (x highest).
  EXPECT_EQ(octant_code({0.1f, 0.1f, 0.1f}, 1), 0u);
  EXPECT_EQ(octant_code({0.9f, 0.1f, 0.1f}, 1), 4u);
  EXPECT_EQ(octant_code({0.1f, 0.9f, 0.1f}, 1), 2u);
  EXPECT_EQ(octant_code({0.1f, 0.1f, 0.9f}, 1), 1u);
  EXPECT_EQ(octant_code({0.9f, 0.9f, 0.9f}, 1), 7u);
}

TEST(Octree, MortonCodeRefines) {
  const Point p{0.3f, 0.6f, 0.9f};
  // A child code's top three bits are its parent's code.
  for (int depth = 1; depth < 8; ++depth) {
    EXPECT_EQ(octant_code(p, depth + 1) >> 3, octant_code(p, depth))
        << "depth " << depth;
  }
}

TEST(Octree, OutOfRangeCoordinatesClamp) {
  EXPECT_EQ(octant_code({-3.0f, -1.0f, -0.5f}, 2), octant_code({0, 0, 0}, 2));
  EXPECT_EQ(octant_code({4.0f, 2.0f, 1.5f}, 2),
            octant_code({0.999f, 0.999f, 0.999f}, 2));
}

TEST(Octree, GenerationIsRankPartitioned) {
  const auto all = apps::oc::generate_points(1000, 0, 1, 42);
  const auto first = apps::oc::generate_points(1000, 0, 4, 42);
  const auto last = apps::oc::generate_points(1000, 3, 4, 42);
  ASSERT_EQ(all.size(), 1000u);
  ASSERT_EQ(first.size(), 250u);
  EXPECT_EQ(all[0].x, first[0].x);
  EXPECT_EQ(all[750].x, last[0].x);
}

TEST(Octree, PointsFollowNormalDistribution) {
  const auto points = apps::oc::generate_points(20000, 0, 1, 7, 0.5);
  double sum = 0, sum_sq = 0;
  for (const auto& p : points) {
    sum += p.x;
    sum_sq += static_cast<double>(p.x) * p.x;
  }
  const double mean = sum / static_cast<double>(points.size());
  const double var = sum_sq / static_cast<double>(points.size()) -
                     mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(Octree, ReferenceFindsDenseRegions) {
  RunOptions opts;
  opts.num_points = 1 << 12;
  opts.density = 0.01;
  opts.max_depth = 8;
  const auto ref = apps::oc::reference(opts);
  EXPECT_GT(ref.levels, 1);
  EXPECT_GT(ref.dense_octants, 0u);
  EXPECT_GT(ref.clustered_points, 0u);
}

struct OcCase {
  bool mrmpi;
  bool hint;
  bool pr;
  bool cps;
  int ranks;
  const char* name;
};

class OcFrameworks : public ::testing::TestWithParam<OcCase> {};

TEST_P(OcFrameworks, MatchesSerialReference) {
  const OcCase c = GetParam();
  RunOptions opts;
  opts.num_points = 1 << 12;
  opts.density = 0.01;
  opts.max_depth = 6;
  opts.page_size = 32 << 10;
  opts.comm_buffer = 32 << 10;
  opts.hint = c.hint;
  opts.pr = c.pr;
  opts.cps = c.cps;
  const auto ref = apps::oc::reference(opts);

  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, c.ranks);
  simmpi::run(c.ranks, machine, fs, [&](simmpi::Context& ctx) {
    const auto result = c.mrmpi ? apps::oc::run_mrmpi(ctx, opts)
                                : apps::oc::run_mimir(ctx, opts);
    EXPECT_EQ(result.levels, ref.levels);
    EXPECT_EQ(result.dense_octants, ref.dense_octants);
    EXPECT_EQ(result.clustered_points, ref.clustered_points);
    EXPECT_EQ(result.checksum, ref.checksum);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Paths, OcFrameworks,
    ::testing::Values(OcCase{false, false, false, false, 1, "mimir_serial"},
                      OcCase{false, false, false, false, 4, "mimir_base"},
                      OcCase{false, true, false, false, 4, "mimir_hint"},
                      OcCase{false, true, true, false, 4, "mimir_hint_pr"},
                      OcCase{false, true, true, true, 4, "mimir_all"},
                      OcCase{true, false, false, false, 4, "mrmpi_base"},
                      OcCase{true, false, false, true, 4, "mrmpi_cps"},
                      OcCase{false, false, false, false, 7, "mimir_p7"}),
    [](const auto& param_info) { return param_info.param.name; });

}  // namespace
