// Planner and executor semantics of the dataflow scheduler.
#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "inject/fault.hpp"
#include "mutil/config.hpp"
#include "mutil/error.hpp"

namespace {

using sched::Graph;
using sched::GraphOptions;
using sched::JobNode;
using sched::NodeCtx;
using sched::Plan;

simtime::MachineProfile profile_with_io() {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  return machine;
}

// --- graph validation ----------------------------------------------------

TEST(SchedGraph, RejectsBadEdges) {
  Graph g;
  const int a = g.add({});
  const int b = g.add({});
  EXPECT_THROW(g.add_edge(a, a), mutil::UsageError);
  EXPECT_THROW(g.add_edge(a, 7), mutil::UsageError);
  EXPECT_THROW(g.add_edge(-1, b), mutil::UsageError);
  g.add_edge(a, b);
  EXPECT_THROW(g.add_edge(a, b), mutil::UsageError) << "duplicate data edge";
  EXPECT_THROW(g.add_order(b, b), mutil::UsageError);
  EXPECT_EQ(g.data_consumers(a), 1);
  EXPECT_EQ(g.inputs(b), std::vector<int>{a});
}

TEST(SchedGraph, TopoOrderDetectsCycles) {
  Graph g;
  const int a = g.add({});
  const int b = g.add({});
  const int c = g.add({});
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.add_order(c, a);
  EXPECT_THROW(g.topo_order(), mutil::UsageError);
}

TEST(SchedGraph, TopoOrderPrefersSmallestReadyId) {
  // Diamond with inverted insertion: 0 -> {2, 1} -> 3.
  Graph g;
  const int src = g.add({});
  const int right = g.add({});
  const int left = g.add({});
  const int sink = g.add({});
  g.add_edge(src, left);
  g.add_edge(src, right);
  g.add_edge(left, sink);
  g.add_edge(right, sink);
  EXPECT_EQ(g.topo_order(), (std::vector<int>{0, 1, 2, 3}));
}

TEST(SchedGraph, ComponentsNormalizedByFirstAppearance) {
  Graph g;
  (void)g.add({});  // isolated node 0
  const int b = g.add({});
  const int c = g.add({});
  (void)g.add({});  // isolated node 3
  g.add_edge(b, c);
  EXPECT_EQ(g.components(), (std::vector<int>{0, 1, 1, 2}));
}

// --- planning ------------------------------------------------------------

Graph two_chains(std::uint64_t estimate) {
  Graph g;
  JobNode node;
  node.peak_estimate = estimate;
  const int a0 = g.add(node);
  const int a1 = g.add(node);
  const int b0 = g.add(node);
  const int b1 = g.add(node);
  g.add_edge(a0, a1);
  g.add_edge(b0, b1);
  return g;
}

TEST(SchedPlan, SequentialDefaultIsOneWaveOverTheWorld) {
  const Graph g = two_chains(1 << 20);
  const auto machine = profile_with_io();
  GraphOptions opts;  // max_concurrency = 1
  const Plan plan = sched::plan_graph(g, 4, machine, opts);
  ASSERT_EQ(plan.waves.size(), 1u);
  ASSERT_EQ(plan.waves[0].groups.size(), 1u);
  EXPECT_EQ(plan.waves[0].groups[0].rank_begin, 0);
  EXPECT_EQ(plan.waves[0].groups[0].rank_end, 4);
  EXPECT_EQ(plan.waves[0].groups[0].nodes.size(), 4u);
  EXPECT_EQ(plan.queued_nodes, 0);
  EXPECT_EQ(plan.degraded_nodes, 0);
}

TEST(SchedPlan, PacksIndependentChainsUnderBudget) {
  const Graph g = two_chains(4ull << 20);
  const auto machine = profile_with_io();
  GraphOptions opts;
  opts.max_concurrency = 2;
  opts.memory_budget = 16ull << 20;
  const Plan plan = sched::plan_graph(g, 4, machine, opts);
  ASSERT_EQ(plan.waves.size(), 1u);
  ASSERT_EQ(plan.waves[0].groups.size(), 2u);
  EXPECT_EQ(plan.waves[0].groups[0].rank_begin, 0);
  EXPECT_EQ(plan.waves[0].groups[0].rank_end, 2);
  EXPECT_EQ(plan.waves[0].groups[1].rank_begin, 2);
  EXPECT_EQ(plan.waves[0].groups[1].rank_end, 4);
  EXPECT_EQ(plan.queued_nodes, 0);
}

TEST(SchedPlan, QueuesComponentPastBudgetToLaterWave) {
  const Graph g = two_chains(4ull << 20);
  const auto machine = profile_with_io();
  GraphOptions opts;
  opts.max_concurrency = 2;
  opts.memory_budget = 5ull << 20;  // fits one chain, not two
  const Plan plan = sched::plan_graph(g, 4, machine, opts);
  ASSERT_EQ(plan.waves.size(), 2u);
  EXPECT_EQ(plan.waves[0].groups.size(), 1u);
  EXPECT_EQ(plan.waves[1].groups.size(), 1u);
  EXPECT_EQ(plan.queued_nodes, 2);
  // A single-group wave spans the whole world again.
  EXPECT_EQ(plan.waves[1].groups[0].rank_begin, 0);
  EXPECT_EQ(plan.waves[1].groups[0].rank_end, 4);
}

TEST(SchedPlan, DegradesNodeWiderThanTheBudget) {
  Graph g;
  JobNode node;
  node.peak_estimate = 64ull << 20;
  node.config.page_size = 64 << 10;
  (void)g.add(node);
  auto machine = profile_with_io();
  machine.ranks_per_node = 2;
  GraphOptions opts;
  opts.memory_budget = 1ull << 20;
  const Plan plan = sched::plan_graph(g, 4, machine, opts);
  EXPECT_EQ(plan.degraded_nodes, 1);
  ASSERT_EQ(plan.live_bytes.size(), 1u);
  // Ladder: budget/rpn = 512K, halved once -> 256K (projected 2*l*rpn
  // = 1M fits the budget).
  EXPECT_EQ(plan.live_bytes[0], 256u << 10);
  EXPECT_TRUE(plan.degraded[0]);
}

TEST(SchedPlan, OptionsParseFromConfig) {
  mutil::Config cfg;
  cfg.set("mimir.sched.memory_budget", "2M");
  cfg.set("mimir.sched.max_concurrency", "3");
  cfg.set("mimir.sched.checkpoint", "true");
  cfg.set("mimir.sched.checkpoint_prefix", "pipe");
  cfg.set("mimir.sched.keep_checkpoints", "true");
  const GraphOptions opts = GraphOptions::from(cfg);
  EXPECT_EQ(opts.memory_budget, 2u << 20);
  EXPECT_EQ(opts.max_concurrency, 3);
  EXPECT_TRUE(opts.checkpoint);
  EXPECT_EQ(opts.checkpoint_prefix, "pipe");
  EXPECT_TRUE(opts.keep_checkpoints);

  mutil::Config bad;
  bad.set("mimir.sched.max_concurrency", "0");
  EXPECT_THROW(GraphOptions::from(bad), mutil::ConfigError);
}

// --- execution -----------------------------------------------------------

std::string_view u64_view(const std::uint64_t& v) {
  return {reinterpret_cast<const char*>(&v), 8};
}

/// Collects per-rank sink outputs across rank threads.
struct Sink {
  std::mutex mutex;
  std::map<std::uint64_t, std::uint64_t> merged;

  void add(mimir::KVContainer& out) {
    const std::scoped_lock lock(mutex);
    out.scan([&](const mimir::KVView& kv) {
      merged[mimir::as_u64(kv.key)] += mimir::as_u64(kv.value);
    });
  }
};

TEST(SchedExec, DataEdgesHandContainersThroughTheChain) {
  // produce -> double -> sink: 3-node chain, each stage transforms.
  Graph g;
  JobNode produce;
  produce.name = "produce";
  produce.producer = [](NodeCtx& nctx, mimir::Emitter& out) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      if (static_cast<int>(i % static_cast<std::uint64_t>(
                               nctx.exec.size())) != nctx.exec.rank()) {
        continue;
      }
      out.emit(u64_view(i % 10), std::uint64_t{1});
    }
  };
  JobNode twice;
  twice.name = "twice";
  twice.kv_map = [](NodeCtx&, std::string_view key, std::string_view value,
                    mimir::Emitter& out) {
    out.emit(key, mimir::as_u64(value) * 2);
  };
  JobNode total;
  total.name = "total";
  total.partial = [](std::string_view, std::string_view a,
                     std::string_view b, std::string& out) {
    out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
  };
  auto sink = std::make_shared<Sink>();
  total.consume = [sink](NodeCtx&, mimir::KVContainer& out) {
    sink->add(out);
  };

  const int a = g.add(produce);
  const int b = g.add(twice);
  const int c = g.add(total);
  g.add_edge(a, b);
  g.add_edge(b, c);

  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, 4);
  const auto outcome = sched::run_graph(4, machine, fs, g, {});
  EXPECT_EQ(outcome.jobs(), 3);
  EXPECT_EQ(outcome.waves(), 1u);
  ASSERT_EQ(sink->merged.size(), 10u);
  for (const auto& [key, value] : sink->merged) {
    EXPECT_EQ(value, 20u) << "key " << key;
  }
}

TEST(SchedExec, FanOutScansForAllButTheLastReader) {
  // One producer feeding two consumers: the first consumer must see the
  // full container (scan), the second takes it by move.
  Graph g;
  JobNode produce;
  produce.producer = [](NodeCtx& nctx, mimir::Emitter& out) {
    if (nctx.exec.rank() == 0) {
      for (std::uint64_t i = 0; i < 50; ++i) out.emit(u64_view(i), i);
    }
  };
  auto seen = std::make_shared<std::atomic<std::uint64_t>>(0);
  JobNode read1, read2;
  read1.kv_map = read2.kv_map =
      [seen](NodeCtx&, std::string_view key, std::string_view,
             mimir::Emitter& out) {
        seen->fetch_add(1, std::memory_order_relaxed);
        out.emit(key, std::uint64_t{1});
      };
  const int a = g.add(produce);
  const int b = g.add(read1);
  const int c = g.add(read2);
  g.add_edge(a, b);
  g.add_edge(a, c);

  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, 2);
  (void)sched::run_graph(2, machine, fs, g, {});
  EXPECT_EQ(seen->load(), 100u) << "both consumers see all 50 KVs";
}

TEST(SchedExec, SkippedNodePropagatesEmptyOutput) {
  Graph g;
  JobNode produce;
  produce.producer = [](NodeCtx& nctx, mimir::Emitter& out) {
    if (nctx.exec.rank() == 0) out.emit(u64_view(7), std::uint64_t{7});
  };
  JobNode skipper;
  skipper.skip = [](NodeCtx&) { return true; };
  auto skipped_kvs = std::make_shared<std::atomic<std::uint64_t>>(0);
  skipper.kv_map = [skipped_kvs](NodeCtx&, std::string_view,
                                 std::string_view, mimir::Emitter&) {
    skipped_kvs->fetch_add(1);
  };
  auto sink_kvs = std::make_shared<std::atomic<std::uint64_t>>(0);
  JobNode sink;
  sink.consume = [sink_kvs](NodeCtx&, mimir::KVContainer& out) {
    sink_kvs->fetch_add(out.num_kvs());
  };
  const int a = g.add(produce);
  const int b = g.add(skipper);
  const int c = g.add(sink);
  g.add_edge(a, b);
  g.add_edge(b, c);

  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, 2);
  (void)sched::run_graph(2, machine, fs, g, {});
  EXPECT_EQ(skipped_kvs->load(), 0u);
  EXPECT_EQ(sink_kvs->load(), 0u) << "skipped node hands an empty container";
}

/// Two independent branches whose peak is dominated by an explicit
/// tracker charge, for deterministic admission arithmetic.
Graph two_allocating_branches(std::uint64_t bytes_per_rank,
                              std::uint64_t estimate,
                              std::shared_ptr<Sink> sink) {
  Graph g;
  for (int branch = 0; branch < 2; ++branch) {
    JobNode work;
    work.name = "branch" + std::to_string(branch);
    work.peak_estimate = estimate;
    work.producer = [bytes_per_rank](NodeCtx& nctx, mimir::Emitter& out) {
      nctx.exec.tracker.allocate(bytes_per_rank);
      for (std::uint64_t i = 0; i < 32; ++i) {
        out.emit(u64_view(i), std::uint64_t{1});
      }
    };
    work.partial = [](std::string_view, std::string_view a,
                      std::string_view b, std::string& out) {
      out.assign(mimir::as_view(mimir::as_u64(a) + mimir::as_u64(b)));
    };
    work.consume = [bytes_per_rank, sink](NodeCtx& nctx,
                                          mimir::KVContainer& out) {
      sink->add(out);
      nctx.exec.tracker.release(bytes_per_rank);
    };
    (void)g.add(work);
  }
  return g;
}

TEST(SchedExec, ConcurrentBranchesStayUnderTheConfiguredBudget) {
  constexpr std::uint64_t kPerRank = 1u << 20;
  constexpr std::uint64_t kEstimate = 4u << 20;  // per-rank charge + slack
  auto machine = profile_with_io();
  machine.ranks_per_node = 2;

  auto sink = std::make_shared<Sink>();
  const Graph g = two_allocating_branches(kPerRank, kEstimate, sink);
  GraphOptions opts;
  opts.max_concurrency = 2;
  opts.memory_budget = 16ull << 20;

  pfs::FileSystem fs(machine, 4);
  const auto outcome = sched::run_graph(4, machine, fs, g, opts);
  EXPECT_EQ(outcome.waves(), 1u) << "both branches admitted concurrently";
  ASSERT_EQ(outcome.plan.waves[0].groups.size(), 2u);
  EXPECT_LE(outcome.stats.node_peak, opts.memory_budget);
  EXPECT_EQ(outcome.admitted(), 2);
  ASSERT_EQ(sink->merged.size(), 32u);
  for (const auto& [key, value] : sink->merged) {
    EXPECT_EQ(value, 4u) << "2 branches x 2 ranks each emit key " << key;
  }
}

TEST(SchedExec, OversubscriptionQueuesAndPeakStaysBounded) {
  constexpr std::uint64_t kPerRank = 1u << 20;
  constexpr std::uint64_t kEstimate = 4u << 20;
  auto machine = profile_with_io();
  machine.ranks_per_node = 2;

  auto sink = std::make_shared<Sink>();
  const Graph g = two_allocating_branches(kPerRank, kEstimate, sink);
  GraphOptions opts;
  opts.max_concurrency = 2;
  opts.memory_budget = 6ull << 20;  // admits one branch per wave

  pfs::FileSystem fs(machine, 4);
  const auto outcome = sched::run_graph(4, machine, fs, g, opts);
  EXPECT_EQ(outcome.waves(), 2u);
  EXPECT_EQ(outcome.plan.queued_nodes, 1);
  EXPECT_EQ(outcome.admitted(), 1);
  EXPECT_LE(outcome.stats.node_peak, opts.memory_budget);
  for (const auto& [key, value] : sink->merged) {
    EXPECT_EQ(value, 8u) << "single-group waves span all 4 ranks";
  }
}

// --- recovery over the graph ----------------------------------------------

void sum_reduce(std::string_view key, mimir::ValueReader& values,
                mimir::Emitter& out) {
  std::uint64_t total = 0;
  std::string_view v;
  while (values.next(v)) total += mimir::as_u64(v);
  out.emit(key, total);
}

/// A 3-node chain where only the sink has a reduce phase, so a
/// "@reduce" fault fires mid-graph — after the ancestors completed and
/// checkpointed. Producer-call counters prove ancestors don't re-run.
struct CountedChain {
  Graph graph;
  std::shared_ptr<std::atomic<int>> head_calls;
  std::shared_ptr<std::atomic<int>> mid_calls;
  std::shared_ptr<Sink> sink;
};

CountedChain counted_chain() {
  CountedChain c;
  c.head_calls = std::make_shared<std::atomic<int>>(0);
  c.mid_calls = std::make_shared<std::atomic<int>>(0);
  c.sink = std::make_shared<Sink>();

  JobNode head;
  head.name = "head";
  auto head_calls = c.head_calls;
  head.producer = [head_calls](NodeCtx& nctx, mimir::Emitter& out) {
    head_calls->fetch_add(1);
    for (int i = 0; i < 200; ++i) {
      if (i % nctx.exec.size() != nctx.exec.rank()) continue;
      out.emit(u64_view(static_cast<std::uint64_t>(i % 23)),
               std::uint64_t{1});
    }
  };

  JobNode mid;
  mid.name = "mid";
  auto mid_calls = c.mid_calls;
  mid.producer = [mid_calls](NodeCtx&, mimir::Emitter&) {
    mid_calls->fetch_add(1);
  };
  mid.kv_map = [](NodeCtx&, std::string_view key, std::string_view value,
                  mimir::Emitter& out) {
    out.emit(key, mimir::as_u64(value) * 3);
  };

  JobNode tail;
  tail.name = "tail";
  tail.reduce = sum_reduce;
  auto sink = c.sink;
  tail.consume = [sink](NodeCtx&, mimir::KVContainer& out) {
    sink->add(out);
  };

  const int a = c.graph.add(head);
  const int b = c.graph.add(mid);
  const int d = c.graph.add(tail);
  c.graph.add_edge(a, b);
  c.graph.add_edge(b, d);
  return c;
}

TEST(SchedRecovery, NodeCrashMidGraphResumesWithoutRerunningAncestors) {
  constexpr int kRanks = 4;
  auto machine = profile_with_io();
  machine.ranks_per_node = 2;

  // Undisturbed reference.
  std::map<std::uint64_t, std::uint64_t> expected;
  {
    CountedChain ref = counted_chain();
    pfs::FileSystem fs(machine, kRanks);
    (void)sched::run_graph_with_recovery(kRanks, machine, fs, ref.graph,
                                         {}, {});
    expected = ref.sink->merged;
    EXPECT_EQ(ref.head_calls->load(), kRanks);
  }
  ASSERT_EQ(expected.size(), 23u);

  // Lose a whole node when the tail enters its reduce. The head and mid
  // nodes are checkpointed; the retry must restore their outputs rather
  // than call their producers again.
  const inject::FaultPlan plan =
      inject::FaultPlan::parse("node_crash:1@reduce");
  CountedChain c = counted_chain();
  pfs::FileSystem fs(machine, kRanks);
  check::Report report;
  check::JobChecker checker(report);
  const auto outcome = sched::run_graph_with_recovery(
      kRanks, machine, fs, c.graph, {}, {}, &plan, nullptr, &checker);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_TRUE(outcome.resumed);
  EXPECT_EQ(outcome.resumed_nodes, 2u) << "head and mid restore";
  EXPECT_EQ(c.head_calls->load(), kRanks)
      << "completed ancestors never re-run";
  EXPECT_EQ(c.mid_calls->load(), kRanks);
  EXPECT_EQ(c.sink->merged, expected);
  ASSERT_EQ(outcome.history.size(), 2u);
  EXPECT_FALSE(outcome.history[0].ok);
  const int failed = outcome.history[0].failed_rank;
  EXPECT_TRUE(failed == 2 || failed == 3)
      << "node 1 hosts ranks 2 and 3, got " << failed;
  EXPECT_EQ(report.count("attempt-failed"), 1u);
  // Throwaway checkpoints are swept after success.
  EXPECT_TRUE(fs.list("ckpt/").empty());
}

TEST(SchedRecovery, UsageErrorsAreNotRetried) {
  Graph g;
  JobNode node;
  node.producer = [](NodeCtx&, mimir::Emitter&) {
    throw mutil::UsageError("caller bug");
  };
  (void)g.add(node);
  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, 2);
  EXPECT_THROW(
      (void)sched::run_graph_with_recovery(2, machine, fs, g, {}, {}),
      mutil::UsageError);
}

TEST(SchedRecovery, RetriesExhaustedRethrowsWithDiagnostics) {
  const inject::FaultPlan plan =
      inject::FaultPlan::parse("rank_crash:0@map#1,rank_crash:0@map#2");
  mimir::RecoveryPolicy policy;
  policy.max_attempts = 2;

  Graph g;
  JobNode node;
  node.producer = [](NodeCtx&, mimir::Emitter& out) {
    out.emit("k", std::uint64_t{1});
  };
  (void)g.add(node);

  const auto machine = profile_with_io();
  pfs::FileSystem fs(machine, 2);
  check::Report report;
  check::JobChecker checker(report);
  EXPECT_THROW((void)sched::run_graph_with_recovery(
                   2, machine, fs, g, {}, policy, &plan, nullptr, &checker),
               mutil::RankFailedError);
  EXPECT_EQ(report.count("attempt-failed"), 1u);
  EXPECT_EQ(report.count("retries-exhausted"), 1u);
}

}  // namespace
