// Critical-path extraction over executed job graphs.
#include "sched/critical_path.hpp"

#include <gtest/gtest.h>

#include <string>

#include "sched/scheduler.hpp"
#include "simtime/clock.hpp"
#include "stats/jsonlite.hpp"
#include "stats/registry.hpp"
#include "stats/trace.hpp"

namespace {

using sched::Graph;
using sched::JobNode;
using sched::NodeCtx;

JobNode named(const char* name) {
  JobNode node;
  node.name = name;
  return node;
}

TEST(CriticalPath, FollowsLatestFinishingPredecessors) {
  // Diamond src -> {left, right} -> sink, executed serially by one rank
  // (one group), with right the slow branch.
  Graph g;
  const int src = g.add(named("src"));
  const int left = g.add(named("left"));
  const int right = g.add(named("right"));
  const int sink = g.add(named("sink"));
  g.add_edge(src, left);
  g.add_edge(src, right);
  g.add_edge(left, sink);
  g.add_edge(right, sink);

  const auto machine = simtime::MachineProfile::test_profile();
  const sched::Plan plan = sched::plan_graph(g, 1, machine, {});

  simtime::Clock clock;
  stats::Collector collector;
  collector.reset(1);
  stats::Registry& reg = collector.rank(0);
  reg.bind(0, 1, &clock, nullptr);
  const auto phase = [&](const std::string& name, double seconds,
                         double wait) {
    reg.phase_begin("sched:" + name);
    clock.advance(seconds);
    if (wait > 0.0) reg.record_wait(wait);
    reg.phase_end();
  };
  phase("src", 1.0, 0.0);
  phase("left", 0.5, 0.0);
  phase("right", 2.0, 0.25);
  phase("sink", 1.0, 0.0);

  const sched::CriticalPath path = sched::critical_path(g, plan, collector);
  // Serial execution: the group sequence chains every node, so the
  // whole run is the critical path, back-to-back (zero slack).
  ASSERT_EQ(path.steps.size(), 4u);
  const char* expected[] = {"src", "left", "right", "sink"};
  double previous_end = 0.0;
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const sched::CriticalStep& step = path.steps[i];
    EXPECT_EQ(step.name, expected[i]);
    EXPECT_DOUBLE_EQ(step.begin, previous_end);
    EXPECT_DOUBLE_EQ(step.slack, 0.0);
    previous_end = step.end;
  }
  EXPECT_DOUBLE_EQ(path.total_seconds, 4.5);
  EXPECT_DOUBLE_EQ(path.steps[2].wait_seconds, 0.25);
  EXPECT_DOUBLE_EQ(path.steps[2].seconds(), 2.0);

  // JSON serialization round-trips through the strict parser.
  const auto doc = stats::jsonlite::parse(path.json());
  EXPECT_DOUBLE_EQ(doc.at("total_seconds").number, 4.5);
  ASSERT_EQ(doc.at("steps").array.size(), 4u);
  EXPECT_EQ(doc.at("steps").array[2].at("name").str, "right");
  EXPECT_DOUBLE_EQ(doc.at("steps").array[2].at("wait_seconds").number,
                   0.25);
}

TEST(CriticalPath, EmptyWithoutPhaseRecords) {
  Graph g;
  (void)g.add(named("only"));
  const auto machine = simtime::MachineProfile::test_profile();
  const sched::Plan plan = sched::plan_graph(g, 1, machine, {});
  stats::Collector collector;  // no records at all
  EXPECT_TRUE(sched::critical_path(g, plan, collector).empty());
}

TEST(CriticalPath, ExtractedFromAnExecutedGraph) {
  Graph g;
  JobNode produce = named("produce");
  produce.producer = [](NodeCtx& nctx, mimir::Emitter& out) {
    for (int i = nctx.exec.rank(); i < 64; i += nctx.exec.size()) {
      out.emit("key" + std::to_string(i % 8), "v");
    }
  };
  JobNode fold = named("fold");
  fold.partial = [](std::string_view, std::string_view a, std::string_view,
                    std::string& out) { out.assign(a); };
  const int a = g.add(produce);
  const int b = g.add(fold);
  g.add_edge(a, b);

  const auto machine = simtime::MachineProfile::test_profile();

  // Without a collector the outcome carries no path (stats were off).
  {
    pfs::FileSystem fs(machine, 2);
    const auto outcome = sched::run_graph(2, machine, fs, g, {});
    EXPECT_TRUE(outcome.critical.empty());
  }

  pfs::FileSystem fs(machine, 2);
  stats::Collector collector;
  const auto outcome =
      sched::run_graph(2, machine, fs, g, {}, &collector);

  ASSERT_EQ(outcome.critical.steps.size(), 2u);
  EXPECT_EQ(outcome.critical.steps[0].name, "produce");
  EXPECT_EQ(outcome.critical.steps[1].name, "fold");
  double previous_end = 0.0;
  for (const sched::CriticalStep& step : outcome.critical.steps) {
    EXPECT_GE(step.end + 1e-12, previous_end);
    EXPECT_GE(step.seconds(), 0.0);
    previous_end = step.end;
  }
  EXPECT_DOUBLE_EQ(outcome.critical.total_seconds, previous_end);
  EXPECT_LE(outcome.critical.total_seconds,
            outcome.stats.sim_time + 1e-12);

  // The path is also exported as a summary section, as structured JSON.
  const auto doc = stats::jsonlite::parse(collector.summary().json());
  ASSERT_EQ(doc.at("critical_path").at("steps").array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("critical_path").at("total_seconds").number,
                   outcome.critical.total_seconds);
}

}  // namespace
