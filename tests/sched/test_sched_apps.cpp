// Iterative applications through the dataflow scheduler must be
// bit-identical to the hand-rolled job loops they replace: same
// results, same simulated clock (the cost-model charges and collective
// sequence match exactly).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/kmeans.hpp"
#include "apps/pagerank.hpp"
#include "check/checker.hpp"
#include "inject/fault.hpp"
#include "mutil/error.hpp"
#include "sched/scheduler.hpp"

namespace {

simtime::MachineProfile profile_with_io() {
  auto machine = simtime::MachineProfile::test_profile();
  machine.pfs_latency = 1e-3;
  machine.pfs_bandwidth = 1e6;
  machine.pfs_client_bandwidth = 1e6;
  return machine;
}

// --- pagerank + top-k ----------------------------------------------------

struct AppCase {
  bool hint;
  bool cps;
  int ranks;
  const char* name;
};

apps::pr::RunOptions pr_options(const AppCase& c) {
  apps::pr::RunOptions opts;
  opts.scale = 7;
  opts.edge_factor = 8;
  opts.iterations = 5;
  opts.page_size = 32 << 10;
  opts.comm_buffer = 32 << 10;
  opts.hint = c.hint;
  opts.cps = c.cps;
  return opts;
}

class SchedPageRank : public ::testing::TestWithParam<AppCase> {};

TEST_P(SchedPageRank, BitIdenticalToManualLoopIncludingTopK) {
  const AppCase c = GetParam();
  const apps::pr::RunOptions opts = pr_options(c);
  constexpr int kTopK = 5;
  const auto machine = simtime::MachineProfile::test_profile();

  // Manual sequential baseline: the iteration loop plus the downstream
  // top-k job, run per rank inside one simmpi::run.
  std::vector<apps::pr::Result> manual(
      static_cast<std::size_t>(c.ranks));
  std::vector<std::vector<apps::pr::TopKEntry>> manual_tops(
      static_cast<std::size_t>(c.ranks));
  pfs::FileSystem manual_fs(machine, c.ranks);
  const simmpi::JobStats manual_stats = simmpi::run(
      c.ranks, machine, manual_fs, [&](simmpi::Context& ctx) {
        manual[static_cast<std::size_t>(ctx.rank())] =
            apps::pr::run_mimir_topk(
                ctx, opts, kTopK,
                &manual_tops[static_cast<std::size_t>(ctx.rank())]);
      });

  auto run = apps::pr::make_sched(opts, c.ranks, kTopK);
  ASSERT_GE(run.graph.size(), 3)
      << "partition + iterations + top-k is at least a 3-node DAG";
  pfs::FileSystem sched_fs(machine, c.ranks);
  const auto outcome = sched::run_graph(c.ranks, machine, sched_fs,
                                        run.graph, run.options);

  EXPECT_EQ(outcome.stats.sim_time, manual_stats.sim_time)
      << "scheduler must charge the exact same simulated clock";
  for (int rank = 0; rank < c.ranks; ++rank) {
    const auto& got = (*run.results)[static_cast<std::size_t>(rank)];
    const auto& want = manual[static_cast<std::size_t>(rank)];
    EXPECT_EQ(got.total_rank, want.total_rank) << "rank " << rank;
    EXPECT_EQ(got.max_rank, want.max_rank) << "rank " << rank;
    EXPECT_EQ(got.max_vertex, want.max_vertex) << "rank " << rank;
    EXPECT_EQ(got.last_delta, want.last_delta) << "rank " << rank;
    EXPECT_EQ((*run.tops)[static_cast<std::size_t>(rank)],
              manual_tops[static_cast<std::size_t>(rank)])
        << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SchedPageRank,
    ::testing::Values(AppCase{false, false, 1, "serial"},
                      AppCase{false, false, 4, "base"},
                      AppCase{true, false, 4, "hint"},
                      AppCase{true, true, 4, "hint_cps"}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(SchedPageRank, MidGraphNodeCrashResumesAndMatchesManual) {
  AppCase c{true, true, 4, "recovery"};
  const apps::pr::RunOptions opts = pr_options(c);
  constexpr int kTopK = 5;
  auto machine = profile_with_io();
  machine.ranks_per_node = 2;

  // Fault-free manual baseline, and its wall clock so the node crash
  // can be aimed at the middle of the graph via a time trigger.
  std::vector<apps::pr::Result> manual(
      static_cast<std::size_t>(c.ranks));
  std::vector<std::vector<apps::pr::TopKEntry>> manual_tops(
      static_cast<std::size_t>(c.ranks));
  pfs::FileSystem manual_fs(machine, c.ranks);
  const simmpi::JobStats manual_stats = simmpi::run(
      c.ranks, machine, manual_fs, [&](simmpi::Context& ctx) {
        manual[static_cast<std::size_t>(ctx.rank())] =
            apps::pr::run_mimir_topk(
                ctx, opts, kTopK,
                &manual_tops[static_cast<std::size_t>(ctx.rank())]);
      });
  ASSERT_GT(manual_stats.sim_time, 0.0);

  // Aim the crash at the midpoint of the *checkpointed* graph run (the
  // checkpoint I/O slows the simulated clock, so the manual loop's wall
  // time would land too early — before the first commit).
  double fault_free_time = 0.0;
  {
    auto probe = apps::pr::make_sched(opts, c.ranks, kTopK);
    pfs::FileSystem probe_fs(machine, c.ranks);
    fault_free_time = sched::run_graph_with_recovery(
                          c.ranks, machine, probe_fs, probe.graph,
                          probe.options, {})
                          .stats.sim_time;
  }
  const inject::FaultPlan plan = inject::FaultPlan::parse(
      "node_crash:1@" + std::to_string(fault_free_time / 2));
  auto run = apps::pr::make_sched(opts, c.ranks, kTopK);
  pfs::FileSystem fs(machine, c.ranks);
  check::Report report;
  check::JobChecker checker(report);
  const auto outcome = sched::run_graph_with_recovery(
      c.ranks, machine, fs, run.graph, run.options, {}, &plan, nullptr,
      &checker);

  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_TRUE(outcome.resumed);
  EXPECT_GT(outcome.resumed_nodes, 0u)
      << "mid-graph crash must find completed ancestors to restore";
  ASSERT_EQ(outcome.history.size(), 2u);
  const int failed = outcome.history[0].failed_rank;
  EXPECT_TRUE(failed == 2 || failed == 3)
      << "node 1 hosts ranks 2 and 3, got " << failed;
  // Results match the manual run exactly; sim_time is NOT compared —
  // checkpoint I/O and the retry legitimately change the clock.
  for (int rank = 0; rank < c.ranks; ++rank) {
    const auto& got = (*run.results)[static_cast<std::size_t>(rank)];
    const auto& want = manual[static_cast<std::size_t>(rank)];
    EXPECT_EQ(got.total_rank, want.total_rank) << "rank " << rank;
    EXPECT_EQ(got.max_rank, want.max_rank) << "rank " << rank;
    EXPECT_EQ(got.max_vertex, want.max_vertex) << "rank " << rank;
    EXPECT_EQ(got.last_delta, want.last_delta) << "rank " << rank;
    EXPECT_EQ((*run.tops)[static_cast<std::size_t>(rank)],
              manual_tops[static_cast<std::size_t>(rank)])
        << "rank " << rank;
  }
}

// --- BFS -----------------------------------------------------------------

class SchedBfs : public ::testing::TestWithParam<AppCase> {};

TEST_P(SchedBfs, BitIdenticalToManualLoop) {
  const AppCase c = GetParam();
  apps::bfs::RunOptions opts;
  opts.scale = 7;
  opts.edge_factor = 8;
  opts.page_size = 32 << 10;
  opts.comm_buffer = 32 << 10;
  opts.hint = c.hint;
  opts.cps = c.cps;
  const auto machine = simtime::MachineProfile::test_profile();

  std::vector<apps::bfs::Result> manual(
      static_cast<std::size_t>(c.ranks));
  pfs::FileSystem manual_fs(machine, c.ranks);
  const simmpi::JobStats manual_stats = simmpi::run(
      c.ranks, machine, manual_fs, [&](simmpi::Context& ctx) {
        manual[static_cast<std::size_t>(ctx.rank())] =
            apps::bfs::run_mimir(ctx, opts);
      });

  auto run = apps::bfs::make_sched(opts, c.ranks);
  pfs::FileSystem sched_fs(machine, c.ranks);
  const auto outcome = sched::run_graph(c.ranks, machine, sched_fs,
                                        run.graph, run.options);

  EXPECT_EQ(outcome.stats.sim_time, manual_stats.sim_time);
  for (int rank = 0; rank < c.ranks; ++rank) {
    const auto& got = (*run.results)[static_cast<std::size_t>(rank)];
    const auto& want = manual[static_cast<std::size_t>(rank)];
    EXPECT_EQ(got.visited, want.visited) << "rank " << rank;
    EXPECT_EQ(got.levels, want.levels) << "rank " << rank;
    EXPECT_EQ(got.checksum, want.checksum) << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SchedBfs,
    ::testing::Values(AppCase{false, false, 1, "serial"},
                      AppCase{false, false, 4, "base"},
                      AppCase{true, false, 4, "hint"},
                      AppCase{true, true, 4, "hint_cps"}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

TEST(SchedBfs, TooFewLevelsIsAUsageError) {
  apps::bfs::RunOptions opts;
  opts.scale = 7;
  opts.edge_factor = 8;
  opts.sched_max_levels = 1;  // the graph is deeper than one level
  const auto machine = simtime::MachineProfile::test_profile();
  auto run = apps::bfs::make_sched(opts, 2);
  pfs::FileSystem fs(machine, 2);
  EXPECT_THROW(
      (void)sched::run_graph(2, machine, fs, run.graph, run.options),
      mutil::UsageError);
}

// --- k-means -------------------------------------------------------------

struct KmCase {
  bool hint;
  bool pr;
  bool cps;
  int ranks;
  const char* name;
};

class SchedKmeans : public ::testing::TestWithParam<KmCase> {};

TEST_P(SchedKmeans, BitIdenticalToManualLoop) {
  const KmCase c = GetParam();
  apps::km::RunOptions opts;
  opts.num_points = 1 << 11;
  opts.iterations = 4;
  opts.page_size = 32 << 10;
  opts.comm_buffer = 32 << 10;
  opts.hint = c.hint;
  opts.pr = c.pr;
  opts.cps = c.cps;
  const auto machine = simtime::MachineProfile::test_profile();

  std::vector<apps::km::Result> manual(
      static_cast<std::size_t>(c.ranks));
  pfs::FileSystem manual_fs(machine, c.ranks);
  const simmpi::JobStats manual_stats = simmpi::run(
      c.ranks, machine, manual_fs, [&](simmpi::Context& ctx) {
        manual[static_cast<std::size_t>(ctx.rank())] =
            apps::km::run_mimir(ctx, opts);
      });

  auto run = apps::km::make_sched(opts, c.ranks);
  pfs::FileSystem sched_fs(machine, c.ranks);
  const auto outcome = sched::run_graph(c.ranks, machine, sched_fs,
                                        run.graph, run.options);

  EXPECT_EQ(outcome.stats.sim_time, manual_stats.sim_time);
  for (int rank = 0; rank < c.ranks; ++rank) {
    const auto& got = (*run.results)[static_cast<std::size_t>(rank)];
    const auto& want = manual[static_cast<std::size_t>(rank)];
    ASSERT_EQ(got.centroids.size(), want.centroids.size());
    for (std::size_t k = 0; k < want.centroids.size(); ++k) {
      EXPECT_EQ(got.centroids[k].x, want.centroids[k].x);
      EXPECT_EQ(got.centroids[k].y, want.centroids[k].y);
      EXPECT_EQ(got.centroids[k].z, want.centroids[k].z);
    }
    EXPECT_EQ(got.counts, want.counts) << "rank " << rank;
    EXPECT_EQ(got.inertia, want.inertia) << "rank " << rank;
    EXPECT_EQ(got.last_shift, want.last_shift) << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paths, SchedKmeans,
    ::testing::Values(KmCase{true, true, false, 1, "serial"},
                      KmCase{true, true, false, 4, "hint_pr"},
                      KmCase{false, false, false, 4, "base_reduce"},
                      KmCase{true, true, true, 4, "hint_pr_cps"}),
    [](const auto& param_info) { return std::string(param_info.param.name); });

}  // namespace
