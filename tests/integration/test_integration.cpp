// Cross-framework and failure-injection integration tests: the paper's
// qualitative claims expressed as assertions, plus abort-path checks
// under induced memory pressure.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/octree.hpp"
#include "apps/wordcount.hpp"
#include "mutil/error.hpp"

namespace {

simtime::MachineProfile small_node(std::uint64_t node_memory, int rpn) {
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = rpn;
  machine.node_memory = node_memory;
  return machine;
}

TEST(CrossFramework, WordCountChecksumsAgree) {
  constexpr int kRanks = 4;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);
  apps::wc::GenOptions gen;
  gen.total_bytes = 64 << 10;
  gen.num_files = kRanks;
  const auto files = apps::wc::generate_wikipedia(fs, "x", gen);

  apps::wc::RunOptions opts;
  opts.files = files;
  apps::wc::Result results[2];
  int idx = 0;
  for (const bool mrmpi : {false, true}) {
    simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
      const auto r = mrmpi ? apps::wc::run_mrmpi(ctx, opts)
                           : apps::wc::run_mimir(ctx, opts);
      if (ctx.rank() == 0) results[mrmpi ? 1 : 0] = r;
    });
    ++idx;
  }
  EXPECT_EQ(results[0].total_words, results[1].total_words);
  EXPECT_EQ(results[0].unique_words, results[1].unique_words);
  EXPECT_EQ(results[0].checksum, results[1].checksum);
}

TEST(CrossFramework, OctreeAndBfsAgreeAcrossFrameworks) {
  constexpr int kRanks = 3;
  auto machine = simtime::MachineProfile::test_profile();
  pfs::FileSystem fs(machine, kRanks);

  apps::oc::RunOptions oc_opts;
  oc_opts.num_points = 1 << 12;
  apps::bfs::RunOptions bfs_opts;
  bfs_opts.scale = 8;
  bfs_opts.edge_factor = 8;

  apps::oc::Result oc_results[2];
  apps::bfs::Result bfs_results[2];
  for (const bool mrmpi : {false, true}) {
    simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
      const auto oc = mrmpi ? apps::oc::run_mrmpi(ctx, oc_opts)
                            : apps::oc::run_mimir(ctx, oc_opts);
      const auto bfs = mrmpi ? apps::bfs::run_mrmpi(ctx, bfs_opts)
                             : apps::bfs::run_mimir(ctx, bfs_opts);
      if (ctx.rank() == 0) {
        oc_results[mrmpi ? 1 : 0] = oc;
        bfs_results[mrmpi ? 1 : 0] = bfs;
      }
    });
  }
  EXPECT_EQ(oc_results[0].checksum, oc_results[1].checksum);
  EXPECT_EQ(oc_results[0].dense_octants, oc_results[1].dense_octants);
  EXPECT_EQ(bfs_results[0].checksum, bfs_results[1].checksum);
  EXPECT_EQ(bfs_results[0].visited, bfs_results[1].visited);
}

TEST(FailureInjection, MimirOomAbortsCleanlyMidJob) {
  // A node budget too small for the intermediate data: some rank OOMs
  // in the middle of map+aggregate while others are inside collectives.
  // The whole job must unwind without deadlock.
  const auto machine = small_node(96 << 10, 4);
  pfs::FileSystem fs(machine, 4);
  apps::wc::GenOptions gen;
  gen.total_bytes = 256 << 10;  // far beyond the 96K node
  gen.num_files = 4;
  const auto files = apps::wc::generate_uniform(fs, "oom", gen);
  apps::wc::RunOptions opts;
  opts.files = files;
  opts.page_size = 8 << 10;
  opts.comm_buffer = 8 << 10;
  EXPECT_THROW(
      simmpi::run(4, machine, fs,
                  [&](simmpi::Context& ctx) {
                    apps::wc::run_mimir(ctx, opts);
                  }),
      mutil::OutOfMemoryError);
}

TEST(FailureInjection, MrMpiOomOnPageAllocation) {
  // MR-MPI allocates 7 pages per rank for aggregate; a node that cannot
  // hold them fails at allocation time (before any data moves).
  const auto machine = small_node(40 << 10, 4);  // 4 ranks * 7 * 8K > 40K
  pfs::FileSystem fs(machine, 4);
  apps::wc::GenOptions gen;
  gen.total_bytes = 8 << 10;
  gen.num_files = 4;
  const auto files = apps::wc::generate_uniform(fs, "oom2", gen);
  apps::wc::RunOptions opts;
  opts.files = files;
  opts.page_size = 8 << 10;
  EXPECT_THROW(
      simmpi::run(4, machine, fs,
                  [&](simmpi::Context& ctx) {
                    apps::wc::run_mrmpi(ctx, opts);
                  }),
      mutil::OutOfMemoryError);
}

TEST(FailureInjection, IterativeJobOomDuringLaterIteration) {
  // OC grows no intermediate state across iterations, but a tight node
  // budget plus deep refinement can OOM after several successful
  // MapReduce stages; the abort must still unwind cleanly.
  const auto machine = small_node(48 << 10, 2);
  pfs::FileSystem fs(machine, 2);
  apps::oc::RunOptions opts;
  opts.num_points = 1 << 14;
  opts.page_size = 4 << 10;
  opts.comm_buffer = 4 << 10;
  try {
    simmpi::run(2, machine, fs, [&](simmpi::Context& ctx) {
      apps::oc::run_mimir(ctx, opts);
    });
    // Small enough data may fit; either outcome is acceptable, but no
    // deadlock or crash is allowed.
    SUCCEED();
  } catch (const mutil::OutOfMemoryError&) {
    SUCCEED();
  }
}

TEST(PaperClaims, PartialReductionFasterWithoutMoreMemory) {
  // Paper Figure 13: adding pr to WC improves execution time while peak
  // memory stays the same or slightly lower (both runs peak during
  // map+aggregate; pr skips the convert work and the KMV materialization
  // afterwards). Simulated time is deterministic, so assert on it; the
  // node peak is compared with slack because concurrent rank allocation
  // makes its exact value timing-dependent.
  constexpr int kRanks = 4;
  auto machine = simtime::MachineProfile::comet_sim();
  machine.ranks_per_node = kRanks;
  machine.node_memory = 0;  // unlimited: this test is not about OOM
  std::uint64_t peaks[2];
  double times[2];
  int idx = 0;
  for (const bool pr : {false, true}) {
    pfs::FileSystem fs(machine, kRanks);
    apps::wc::GenOptions gen;
    gen.total_bytes = 512 << 10;
    gen.vocabulary = 512;
    gen.num_files = kRanks;
    const auto files = apps::wc::generate_uniform(fs, "pr", gen);
    apps::wc::RunOptions opts;
    opts.files = files;
    opts.pr = pr;
    const auto stats =
        simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
          apps::wc::run_mimir(ctx, opts);
        });
    peaks[idx] = stats.node_peak;
    times[idx] = stats.sim_time;
    ++idx;
  }
  EXPECT_LT(times[1], times[0]) << "pr must beat convert+reduce on time";
  EXPECT_LT(peaks[1], peaks[0] * 1.15)
      << "pr must not cost extra memory";
}

TEST(PaperClaims, SkewConcentratesMemoryOnOneNode) {
  // The Wikipedia hot key lands on a single rank; its node's peak must
  // exceed the average node peak noticeably (the mechanism behind the
  // paper's weak-scaling failures).
  constexpr int kRanks = 8;
  auto machine = simtime::MachineProfile::test_profile();
  machine.ranks_per_node = 1;  // 8 nodes of 1 rank
  pfs::FileSystem fs(machine, kRanks);
  apps::wc::GenOptions gen;
  gen.total_bytes = 512 << 10;
  gen.num_files = kRanks;
  gen.zipf_exponent = 1.3;  // strong skew
  const auto files = apps::wc::generate_wikipedia(fs, "skew", gen);
  apps::wc::RunOptions opts;
  opts.files = files;
  const auto stats =
      simmpi::run(kRanks, machine, fs, [&](simmpi::Context& ctx) {
        apps::wc::run_mimir(ctx, opts);
      });
  std::uint64_t total = 0;
  for (const auto peak : stats.node_peaks) total += peak;
  const double avg =
      static_cast<double>(total) / static_cast<double>(stats.nodes);
  EXPECT_GT(static_cast<double>(stats.node_peak), 1.5 * avg);
}

TEST(PaperClaims, MimirInMemoryRangeExceedsMrMpi) {
  // Sweep dataset sizes on a limited node: find each framework's
  // largest in-memory size; Mimir's must be at least 4x MR-MPI's
  // (paper: "at least 4-fold larger", up to 16-fold with cps).
  auto machine = small_node(2 << 20, 4);
  std::uint64_t mimir_max = 0, mrmpi_max = 0;
  for (const std::uint64_t size :
       {16u << 10, 32u << 10, 64u << 10, 128u << 10, 256u << 10,
        512u << 10}) {
    pfs::FileSystem fs(machine, 4);
    apps::wc::GenOptions gen;
    gen.total_bytes = size;
    gen.num_files = 4;
    const auto files = apps::wc::generate_uniform(fs, "rng", gen);
    apps::wc::RunOptions opts;
    opts.files = files;
    opts.page_size = 16 << 10;
    opts.comm_buffer = 8 << 10;
    try {
      bool spilled = false;
      simmpi::run(4, machine, fs, [&](simmpi::Context& ctx) {
        if (apps::wc::run_mimir(ctx, opts).spilled) spilled = true;
      });
      if (!spilled) mimir_max = size;
    } catch (const mutil::Error&) {
    }
    try {
      std::atomic<bool> spilled{false};
      simmpi::run(4, machine, fs, [&](simmpi::Context& ctx) {
        if (apps::wc::run_mrmpi(ctx, opts).spilled) spilled = true;
      });
      if (!spilled) mrmpi_max = size;
    } catch (const mutil::Error&) {
    }
  }
  EXPECT_GE(mimir_max, 4 * mrmpi_max)
      << "Mimir's in-memory range must be at least 4x MR-MPI's";
}

}  // namespace
