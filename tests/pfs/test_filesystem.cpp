#include "pfs/filesystem.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "mutil/error.hpp"

namespace {

simtime::MachineProfile profile_with(double latency, double bandwidth) {
  auto p = simtime::MachineProfile::test_profile();
  p.pfs_latency = latency;
  p.pfs_bandwidth = bandwidth;
  return p;
}

std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

std::string to_string(const std::vector<std::byte>& v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

TEST(Pfs, WriteThenReadRoundTrips) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  fs.write_file("input/a.txt", "hello pfs", clock);
  EXPECT_TRUE(fs.exists("input/a.txt"));
  EXPECT_EQ(fs.file_size("input/a.txt"), 9u);
  EXPECT_EQ(to_string(fs.read_file("input/a.txt", clock)), "hello pfs");
}

TEST(Pfs, OpenMissingThrows) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  EXPECT_THROW(fs.open("nope"), mutil::IoError);
  EXPECT_THROW(fs.file_size("nope"), mutil::IoError);
}

TEST(Pfs, CreateTruncates) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  fs.write_file("f", "0123456789", clock);
  fs.write_file("f", "xy", clock);
  EXPECT_EQ(fs.file_size("f"), 2u);
}

TEST(Pfs, AppendAcrossWrites) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  auto w = fs.create("log");
  w.write("one,", clock);
  w.write("two", clock);
  EXPECT_EQ(w.bytes_written(), 7u);
  EXPECT_EQ(to_string(fs.read_file("log", clock)), "one,two");
}

TEST(Pfs, PartialReadsAndSeek) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  fs.write_file("f", "abcdefgh", clock);
  auto r = fs.open("f");
  std::byte buf[3];
  EXPECT_EQ(r.read(buf, clock), 3u);
  EXPECT_EQ(static_cast<char>(buf[0]), 'a');
  EXPECT_EQ(r.tell(), 3u);
  r.seek(6);
  EXPECT_EQ(r.read(buf, clock), 2u);
  EXPECT_EQ(static_cast<char>(buf[0]), 'g');
  EXPECT_EQ(r.read(buf, clock), 0u) << "read at EOF returns 0";
}

TEST(Pfs, RemoveAndList) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  fs.write_file("spill/r0.dat", "x", clock);
  fs.write_file("spill/r1.dat", "y", clock);
  fs.write_file("input/a", "z", clock);
  const auto spills = fs.list("spill/");
  ASSERT_EQ(spills.size(), 2u);
  EXPECT_EQ(spills[0], "spill/r0.dat");
  fs.remove("spill/r0.dat");
  EXPECT_FALSE(fs.exists("spill/r0.dat"));
  EXPECT_EQ(fs.list("").size(), 2u);
}

TEST(Pfs, CostModelChargesLatencyPlusBytes) {
  // latency 1 ms, bandwidth 1 MB/s, 4 clients -> contention factor 4.
  pfs::FileSystem fs(profile_with(1e-3, 1e6), 4);
  EXPECT_DOUBLE_EQ(fs.cost(0), 1e-3);
  EXPECT_DOUBLE_EQ(fs.cost(1000), 1e-3 + 1000.0 * 4 / 1e6);
  simtime::Clock clock;
  fs.write_file("f", "0123456789", clock);
  EXPECT_DOUBLE_EQ(clock.now(), fs.cost(10));
}

TEST(Pfs, MoreClientsMeanSlowerIo) {
  pfs::FileSystem small(profile_with(0, 1e6), 2);
  pfs::FileSystem big(profile_with(0, 1e6), 64);
  EXPECT_LT(small.cost(4096), big.cost(4096));
}

TEST(Pfs, ClientLinkCapsNarrowJobs) {
  // A narrow job cannot exceed its per-client link even when the
  // backend has plenty of headroom; a wide one contends for the backend.
  auto prof = profile_with(0, 1e6);
  prof.pfs_client_bandwidth = 1e4;
  pfs::FileSystem narrow(prof, 2);   // backend share 5e5 > client 1e4
  pfs::FileSystem wide(prof, 1000);  // backend share 1e3 < client 1e4
  EXPECT_DOUBLE_EQ(narrow.cost(1000), 1000.0 / 1e4);
  EXPECT_DOUBLE_EQ(wide.cost(1000), 1000.0 / 1e3);
}

TEST(Pfs, StatsAccumulate) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  fs.write_file("f", "0123456789", clock);
  (void)fs.read_file("f", clock);
  const auto stats = fs.stats();
  EXPECT_EQ(stats.bytes_written, 10u);
  EXPECT_EQ(stats.bytes_read, 10u);
  EXPECT_EQ(stats.write_ops, 1u);
  EXPECT_EQ(stats.read_ops, 1u);
}

TEST(Pfs, ConcurrentWritersToDistinctFiles) {
  pfs::FileSystem fs(profile_with(0, 1e9), 8);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fs, t] {
      simtime::Clock clock;
      const std::string payload(1000, static_cast<char>('a' + t));
      auto w = fs.create("spill/rank" + std::to_string(t));
      for (int i = 0; i < 10; ++i) w.write(as_bytes(payload), clock);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(fs.file_size("spill/rank" + std::to_string(t)), 10000u);
  }
  EXPECT_EQ(fs.stats().bytes_written, 80000u);
}

TEST(Pfs, RejectsNonPositiveBandwidth) {
  EXPECT_THROW(pfs::FileSystem(profile_with(0, 0), 1), mutil::ConfigError);
}

}  // namespace
