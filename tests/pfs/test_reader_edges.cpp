// pfs::Reader edge geometries: zero-byte files, reads exactly at and
// past EOF, many sub-latency tiny reads, concurrent readers splitting
// the backend bandwidth, and the pre-sized single-op read_all.
#include "pfs/filesystem.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "mutil/error.hpp"

namespace {

simtime::MachineProfile profile_with(double latency, double bandwidth,
                                     double client_bandwidth = 0) {
  auto p = simtime::MachineProfile::test_profile();
  p.pfs_latency = latency;
  p.pfs_bandwidth = bandwidth;
  p.pfs_client_bandwidth = client_bandwidth;
  return p;
}

std::string to_string(const std::vector<std::byte>& v) {
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

TEST(PfsReaderEdges, ZeroByteFileReadsNothingButCostsLatency) {
  pfs::FileSystem fs(profile_with(1e-3, 1e6), 1);
  simtime::Clock clock;
  fs.write_file("empty", "", clock);
  const double after_write = clock.now();
  auto r = fs.open("empty");
  EXPECT_EQ(r.size(), 0u);
  std::byte buf[16];
  EXPECT_EQ(r.read(buf, clock), 0u);
  // A zero-byte operation is still an operation: one RPC latency.
  EXPECT_DOUBLE_EQ(clock.now() - after_write, fs.cost(0));
  EXPECT_DOUBLE_EQ(fs.cost(0), 1e-3);
}

TEST(PfsReaderEdges, ReadExactlyAtEofThenPast) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  fs.write_file("f", "12345678", clock);
  auto r = fs.open("f");
  std::byte buf[8];
  // Buffer exactly the file size: one full read, then a clean EOF.
  EXPECT_EQ(r.read(buf, clock), 8u);
  EXPECT_EQ(r.tell(), 8u);
  EXPECT_EQ(r.read(buf, clock), 0u);
  EXPECT_EQ(r.tell(), 8u);
  // Seek past EOF: reads return 0, tell() stays put.
  r.seek(100);
  EXPECT_EQ(r.read(buf, clock), 0u);
  EXPECT_EQ(r.tell(), 100u);
}

TEST(PfsReaderEdges, ReadPastEofReturnsRemainder) {
  pfs::FileSystem fs(profile_with(0, 1e9), 1);
  simtime::Clock clock;
  fs.write_file("f", "abcde", clock);
  auto r = fs.open("f");
  r.seek(3);
  std::byte buf[64];
  EXPECT_EQ(r.read(buf, clock), 2u);
  EXPECT_EQ(static_cast<char>(buf[0]), 'd');
  EXPECT_EQ(static_cast<char>(buf[1]), 'e');
}

TEST(PfsReaderEdges, ManySubLatencyTinyReadsChargeLatencyEach) {
  // 1-byte reads where the byte time (1 us) is dwarfed by the RPC
  // latency (1 ms): the model must charge the latency per operation,
  // not amortize it away.
  pfs::FileSystem fs(profile_with(1e-3, 1e6), 1);
  simtime::Clock clock;
  fs.write_file("tiny", std::string(100, 'x'), clock);
  auto r = fs.open("tiny");
  const double start = clock.now();
  double expected = 0.0;
  std::byte buf[1];
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(r.read(buf, clock), 1u);
    expected += fs.cost(1);
  }
  EXPECT_DOUBLE_EQ(clock.now() - start, expected);
  EXPECT_GE(clock.now() - start, 100 * 1e-3);
}

TEST(PfsReaderEdges, ConcurrentReadersSplitBackendBandwidth) {
  // Four clients, each with a fat local link: the backend share
  // bandwidth/4 is the binding term of the cost model.
  constexpr int kClients = 4;
  pfs::FileSystem fs(profile_with(1e-3, 1e6, 1e9), kClients);
  EXPECT_DOUBLE_EQ(fs.cost(1000),
                   1e-3 + 1000.0 / (1e6 / kClients));
  {
    simtime::Clock clock;
    fs.write_file("shared", std::string(4096, 's'), clock);
  }
  std::vector<double> elapsed(kClients, 0.0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&fs, &elapsed, c] {
      simtime::Clock clock;
      auto r = fs.open("shared");
      std::vector<std::byte> buf(1024);
      ASSERT_EQ(r.read(buf, clock), 1024u);
      elapsed[static_cast<std::size_t>(c)] = clock.now();
    });
  }
  for (auto& t : threads) t.join();
  for (const double seconds : elapsed) {
    EXPECT_DOUBLE_EQ(seconds, fs.cost(1024));
  }
  EXPECT_EQ(fs.stats().read_ops, 4u);
  EXPECT_EQ(fs.stats().bytes_read, 4096u);
}

TEST(PfsReaderEdges, ReadAllIsOneOpSizedUpFront) {
  pfs::FileSystem fs(profile_with(1e-3, 1e6), 1);
  simtime::Clock clock;
  fs.write_file("f", "0123456789", clock);
  auto r = fs.open("f");
  r.seek(4);
  const std::uint64_t ops_before = fs.stats().read_ops;
  const double t0 = clock.now();
  const std::vector<std::byte> rest = r.read_all(clock);
  EXPECT_EQ(to_string(rest), "456789");
  EXPECT_EQ(rest.capacity(), rest.size()) << "buffer pre-sized, no growth";
  EXPECT_EQ(fs.stats().read_ops - ops_before, 1u);
  EXPECT_DOUBLE_EQ(clock.now() - t0, fs.cost(6));
  // At EOF it is still one (zero-byte) operation.
  const std::vector<std::byte> empty = r.read_all(clock);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(fs.stats().read_ops - ops_before, 2u);
}

}  // namespace
