// pfs::AsyncReader / AsyncWriter: the immediate-wait == blocking-clock
// contract, data equality, the io accounting closure (wait + hidden ==
// charged), EOF semantics, fault delivery at the wait/flush, and the
// in-flight buffer freeze under mimir-race.
#include "pfs/async.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/race.hpp"
#include "check/report.hpp"
#include "inject/fault.hpp"
#include "memtrack/tracker.hpp"
#include "mutil/error.hpp"
#include "simmpi/runtime.hpp"
#include "stats/registry.hpp"

namespace {

using inject::FaultPlan;
using inject::Injector;

simtime::MachineProfile io_profile() {
  auto p = simtime::MachineProfile::test_profile();
  p.pfs_latency = 1e-3;
  p.pfs_bandwidth = 1e6;
  p.pfs_client_bandwidth = 0;
  return p;
}

std::string payload(std::size_t n) {
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<char>('a' + i % 26);
  }
  return s;
}

/// Blocking reference: chunked reads on a fresh clock; returns the
/// concatenated data and leaves the clock at the blocking finish time.
std::string blocking_read(pfs::FileSystem& fs, const std::string& name,
                          std::size_t chunk_bytes, simtime::Clock& clock) {
  auto reader = fs.open(name);
  std::vector<std::byte> chunk(chunk_bytes);
  std::string data;
  for (;;) {
    const std::size_t n = reader.read(chunk, clock);
    if (n == 0) break;
    data.append(reinterpret_cast<const char*>(chunk.data()), n);
  }
  return data;
}

TEST(AsyncReader, ImmediateWaitReproducesBlockingClockExactly) {
  // Odd file and chunk sizes so the last chunk is partial; every depth
  // must reproduce the blocking clock bit-for-bit when the caller does
  // no compute between waits (the acceptance-criterion contract).
  const std::string text = payload(10007);
  for (const std::size_t chunk : {64u + 1u, 1024u, 4096u + 3u}) {
    for (const int depth : {1, 2, 4}) {
      pfs::FileSystem fs(io_profile(), 1);
      memtrack::Tracker tracker;
      {
        simtime::Clock setup;
        fs.write_file("in", text, setup);
      }
      simtime::Clock blocking_clock;
      const std::string expect = blocking_read(fs, "in", chunk,
                                               blocking_clock);
      const std::uint64_t blocking_ops = fs.stats().read_ops;

      simtime::Clock clock;
      std::string got;
      {
        pfs::AsyncReader reader(fs.open("in"), tracker, chunk, depth,
                                clock);
        for (;;) {
          const auto data = reader.next(clock);
          if (data.empty()) break;
          got.append(reinterpret_cast<const char*>(data.data()),
                     data.size());
        }
      }
      EXPECT_EQ(got, expect) << "chunk=" << chunk << " depth=" << depth;
      EXPECT_DOUBLE_EQ(clock.now(), blocking_clock.now())
          << "chunk=" << chunk << " depth=" << depth;
      // Same operation sequence: the read-ahead never changes op
      // counts (EOF is a real zero-byte op in both modes).
      EXPECT_EQ(fs.stats().read_ops, 2 * blocking_ops);
      EXPECT_EQ(tracker.current(), 0u) << "buffers released";
    }
  }
}

TEST(AsyncReader, ComputeBetweenWaitsHidesIoAndClosesAccounting) {
  const std::string text = payload(8192);
  pfs::FileSystem fs(io_profile(), 1);
  memtrack::Tracker tracker;
  simtime::Clock clock;
  fs.write_file("in", text, clock);

  // Blocking reference runs before the registry binds, so the
  // accounting below covers exactly the prefetched reads.
  simtime::Clock blocking_clock;
  blocking_read(fs, "in", 1024, blocking_clock);

  stats::Registry reg;
  reg.bind(0, 1, &clock, &tracker);
  const stats::ScopedBind bind(&reg);

  const double t0 = clock.now();
  std::size_t bytes = 0;
  {
    pfs::AsyncReader reader(fs.open("in"), tracker, 1024, 2, clock);
    for (;;) {
      const auto data = reader.next(clock);
      if (data.empty()) break;
      bytes += data.size();
      // "Map" each chunk for longer than one chunk's I/O cost: all
      // later reads complete under compute.
      clock.advance(2 * fs.cost(1024));
    }
  }
  EXPECT_EQ(bytes, text.size());
  // 8 data chunks: the first read is exposed, the other 7 (and the
  // EOF op) complete entirely under compute.
  EXPECT_GT(reg.io_hidden_total(), 6 * fs.cost(1024));
  // Closure: every charged second is either exposed wait or hidden.
  EXPECT_NEAR(reg.io_wait_total() + reg.io_hidden_total(),
              reg.timers().at("pfs.io_seconds"), 1e-12);
  // The compute dominated, so the exposed read wait stays under the
  // blocking total...
  EXPECT_LT(reg.io_wait_total(), blocking_clock.now());
  // ...and the loop beats compute-then-blocking-reads wall clock.
  EXPECT_LT(clock.now() - t0,
            blocking_clock.now() + 8 * 2 * fs.cost(1024));
}

TEST(AsyncReader, ZeroByteFileIsOneOpAndEmpty) {
  pfs::FileSystem fs(io_profile(), 1);
  memtrack::Tracker tracker;
  simtime::Clock clock;
  fs.write_file("empty", "", clock);
  const std::uint64_t ops = fs.stats().read_ops;
  const double t0 = clock.now();
  pfs::AsyncReader reader(fs.open("empty"), tracker, 256, 4, clock);
  EXPECT_EQ(reader.in_flight(), 1) << "EOF stops the issue pipeline";
  EXPECT_TRUE(reader.next(clock).empty());
  EXPECT_TRUE(reader.next(clock).empty()) << "stays empty after EOF";
  EXPECT_EQ(fs.stats().read_ops - ops, 1u);
  EXPECT_DOUBLE_EQ(clock.now() - t0, fs.cost(0));
}

TEST(AsyncReader, DestructorDrainsInFlightCostAsHidden) {
  pfs::FileSystem fs(io_profile(), 1);
  memtrack::Tracker tracker;
  simtime::Clock clock;
  fs.write_file("in", payload(4096), clock);

  stats::Registry reg;
  reg.bind(0, 1, &clock, &tracker);
  const stats::ScopedBind bind(&reg);
  const double wait_before = reg.io_wait_total();
  {
    pfs::AsyncReader reader(fs.open("in"), tracker, 1024, 3, clock);
    (void)reader.next(clock);  // consume one chunk, abandon the rest
  }
  EXPECT_NEAR(reg.io_wait_total() - wait_before + reg.io_hidden_total(),
              reg.timers().at("pfs.io_seconds"), 1e-12);
  EXPECT_EQ(tracker.current(), 0u);
}

TEST(AsyncReader, TransientFaultDeliveredAtTheWait) {
  pfs::FileSystem fs(io_profile(), 1);
  memtrack::Tracker tracker;
  simtime::Clock clock;
  fs.write_file("in", payload(4096), clock);

  const FaultPlan plan = FaultPlan::parse("pfs_error:1.0");
  Injector injector(plan, /*rank=*/0);
  injector.bind(&clock, &tracker);
  const inject::ScopedInject scoped(&injector);

  const double t0 = clock.now();
  pfs::AsyncReader reader(fs.open("in"), tracker, 1024, 3, clock);
  EXPECT_EQ(reader.in_flight(), 1) << "a stashed fault stops issuing";
  // Construction must not throw — the fault belongs to the wait.
  EXPECT_THROW((void)reader.next(clock), mutil::TransientIoError);
  EXPECT_DOUBLE_EQ(clock.now(), t0) << "a faulted op charges nothing";
}

TEST(AsyncWriter, DisabledForwardsSynchronously) {
  pfs::FileSystem fs(io_profile(), 1);
  simtime::Clock clock;
  pfs::Writer writer = fs.create("out");
  pfs::AsyncWriter behind;  // disabled
  behind.write(writer, std::string_view("hello"), clock);
  EXPECT_DOUBLE_EQ(clock.now(), fs.cost(5));
  EXPECT_EQ(fs.file_size("out"), 5u);
  behind.flush(clock);  // no-op
  EXPECT_DOUBLE_EQ(clock.now(), fs.cost(5));
}

TEST(AsyncWriter, ImmediateFlushReproducesBlockingClockExactly) {
  const std::string chunk = payload(700);
  pfs::FileSystem fs(io_profile(), 1);
  simtime::Clock blocking;
  {
    pfs::Writer writer = fs.create("a");
    for (int i = 0; i < 5; ++i) writer.write(chunk, blocking);
  }
  simtime::Clock clock;
  {
    pfs::Writer writer = fs.create("b");
    pfs::AsyncWriter behind(true);
    for (int i = 0; i < 5; ++i) behind.write(writer, chunk, clock);
    behind.flush(clock);
  }
  EXPECT_DOUBLE_EQ(clock.now(), blocking.now());
  EXPECT_EQ(fs.read_file("b", clock), fs.read_file("a", clock))
      << "bytes identical write-behind on or off";
}

TEST(AsyncWriter, ComputeBeforeFlushHidesTheCost) {
  pfs::FileSystem fs(io_profile(), 1);
  memtrack::Tracker tracker;
  simtime::Clock clock;
  stats::Registry reg;
  reg.bind(0, 1, &clock, &tracker);
  const stats::ScopedBind bind(&reg);

  pfs::Writer writer = fs.create("out");
  pfs::AsyncWriter behind(true);
  behind.write(writer, std::string_view("0123456789"), clock);
  EXPECT_DOUBLE_EQ(behind.queued_cost(), fs.cost(10));
  EXPECT_EQ(fs.file_size("out"), 10u) << "file mutates at enqueue";
  clock.advance(10 * fs.cost(10));  // compute longer than the write
  const double before_flush = clock.now();
  behind.flush(clock);
  EXPECT_DOUBLE_EQ(clock.now(), before_flush) << "fully hidden";
  EXPECT_DOUBLE_EQ(reg.io_hidden_total(), fs.cost(10));
  EXPECT_NEAR(reg.io_wait_total() + reg.io_hidden_total(),
              reg.timers().at("pfs.io_seconds"), 1e-12);
}

TEST(AsyncWriter, TransientFaultDeliveredAtTheFlush) {
  pfs::FileSystem fs(io_profile(), 1);
  memtrack::Tracker tracker;
  simtime::Clock clock;

  const FaultPlan plan = FaultPlan::parse("pfs_error:1.0");
  Injector injector(plan, /*rank=*/0);
  injector.bind(&clock, &tracker);
  const inject::ScopedInject scoped(&injector);

  pfs::Writer writer = fs.create("out");
  pfs::AsyncWriter behind(true);
  behind.write(writer, std::string_view("doomed"), clock);  // no throw
  EXPECT_EQ(fs.file_size("out"), 0u) << "faulted write never lands";
  behind.write(writer, std::string_view("more"), clock);
  EXPECT_EQ(fs.file_size("out"), 0u)
      << "poisoned queue drops later writes, like blocking truncation";
  EXPECT_THROW(behind.flush(clock), mutil::TransientIoError);
  // The queue stays poisoned; discarding resets it.
  behind.discard();
}

TEST(AsyncRace, WriteIntoInFlightPrefetchBufferIsReported) {
  check::Report report;
  check::CheckConfig cfg;
  cfg.race = true;
  check::JobChecker checker(report, cfg);
  simmpi::run_test(
      1,
      [](simmpi::Context& ctx) {
        ctx.fs.write_file("in", std::string(2048, 'x'), ctx.clock());
        pfs::AsyncReader reader(ctx.fs.open("in"), ctx.tracker, 512, 2,
                                ctx.clock());
        // Buggy: scribble over a buffer the in-flight prefetch still
        // owns.
        check::race_note_access(reader.in_flight_base(), /*write=*/true);
        while (!reader.next(ctx.clock()).empty()) {
        }
      },
      nullptr, &checker);
  ASSERT_EQ(report.count("write-after-initiate"), 1u) << report.text();
  const check::Diagnostic d = report.first("write-after-initiate");
  EXPECT_NE(d.message.find("pfs.prefetch"), std::string::npos) << d.message;
}

TEST(AsyncRace, CleanPrefetchRunStaysSilent) {
  check::Report report;
  check::CheckConfig cfg;
  cfg.race = true;
  check::JobChecker checker(report, cfg);
  simmpi::run_test(
      2,
      [](simmpi::Context& ctx) {
        if (ctx.rank() == 0) {
          ctx.fs.write_file("in2", std::string(4099, 'y'), ctx.clock());
        }
        ctx.comm.barrier();
        pfs::AsyncReader reader(ctx.fs.open("in2"), ctx.tracker, 777, 3,
                                ctx.clock());
        std::size_t bytes = 0;
        for (;;) {
          const auto data = reader.next(ctx.clock());
          if (data.empty()) break;
          bytes += data.size();
        }
        EXPECT_EQ(bytes, 4099u);
      },
      nullptr, &checker);
  EXPECT_TRUE(report.empty()) << report.text();
}

}  // namespace
